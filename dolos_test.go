package dolos

import "testing"

func TestFacadeQuickstart(t *testing.T) {
	runner := NewRunner(Options{Transactions: 120})
	base, err := runner.Run("Hashmap", Spec{Scheme: PreWPQSecure, Tree: BMTEager})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := runner.Run("Hashmap", Spec{Scheme: DolosPartial, Tree: BMTEager})
	if err != nil {
		t.Fatal(err)
	}
	if s := Speedup(base, fast); s <= 1 {
		t.Fatalf("Dolos speedup = %.2f, want > 1", s)
	}
}

func TestFacadeStatics(t *testing.T) {
	if len(Workloads()) != 6 {
		t.Fatalf("workloads = %v", Workloads())
	}
	if len(MicroWorkloads()) != 2 {
		t.Fatalf("micro workloads = %v", MicroWorkloads())
	}
	if Table3().Rows() == 0 {
		t.Fatal("empty Table 3")
	}
	if ADRCompliance().Rows() != 3 {
		t.Fatal("ADR table wrong")
	}
	if len(Sec55Recovery()) != 3 {
		t.Fatal("recovery estimates wrong")
	}
}
