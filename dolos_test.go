package dolos

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

func TestFacadeQuickstart(t *testing.T) {
	runner := NewRunner(Options{Transactions: 120})
	base, err := runner.Run("Hashmap", Spec{Scheme: PreWPQSecure, Tree: BMTEager})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := runner.Run("Hashmap", Spec{Scheme: DolosPartial, Tree: BMTEager})
	if err != nil {
		t.Fatal(err)
	}
	if s := Speedup(base, fast); s <= 1 {
		t.Fatalf("Dolos speedup = %.2f, want > 1", s)
	}
}

// TestParseWorkload pins the spelling rules of the typed workload API:
// canonical names, case folds, scheme-style separator folds, the YCSB
// short forms, the microbenchmarks — and the ErrUnknownWorkload
// sentinel on everything else.
func TestParseWorkload(t *testing.T) {
	accept := map[string]Workload{
		"Hashmap":     WorkloadHashmap,
		"hashmap":     WorkloadHashmap,
		"HASHMAP":     WorkloadHashmap,
		"NStore:YCSB": WorkloadYCSB,
		"nstore-ycsb": WorkloadYCSB,
		"nstore_ycsb": WorkloadYCSB,
		"ycsb":        WorkloadYCSB,
		"nstore":      WorkloadYCSB,
		"rbtree":      WorkloadRBtree,
		"RB-Tree":     WorkloadRBtree,
		"txstream":    WorkloadTxStream,
		"pqueue":      WorkloadPQueue,
	}
	for in, want := range accept {
		got, err := ParseWorkload(in)
		if err != nil {
			t.Errorf("ParseWorkload(%q): %v", in, err)
			continue
		}
		if got != want {
			t.Errorf("ParseWorkload(%q) = %q, want %q", in, got, want)
		}
	}
	for _, in := range []string{"", "NoSuchThing", "hash map x"} {
		if _, err := ParseWorkload(in); !errors.Is(err, ErrUnknownWorkload) {
			t.Errorf("ParseWorkload(%q) err = %v, want ErrUnknownWorkload", in, err)
		}
	}
	if all := AllWorkloads(); len(all) != 6 || all[0] != WorkloadHashmap {
		t.Errorf("AllWorkloads() = %v", all)
	}
}

// TestSentinelErrors pins the errors.Is surface of the façade: an
// unknown workload surfaces ErrUnknownWorkload through a run, and a
// pre-cancelled context surfaces ErrCanceled alongside the context's
// own cause.
func TestSentinelErrors(t *testing.T) {
	runner := NewRunner(Options{Transactions: 50})

	_, err := runner.RunContext(context.Background(), "NoSuchWorkload", Spec{Scheme: DolosPartial})
	if !errors.Is(err, ErrUnknownWorkload) {
		t.Errorf("unknown-workload run err = %v, want ErrUnknownWorkload", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = runner.RunContext(ctx, "Hashmap", Spec{Scheme: DolosPartial})
	if !errors.Is(err, ErrCanceled) {
		t.Errorf("cancelled run err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled run err = %v, want context.Canceled in chain", err)
	}
}

// TestRunContextMatchesRun: RunContext with a background context is
// Run — identical results through either entry point.
func TestRunContextMatchesRun(t *testing.T) {
	runner := NewRunner(Options{Transactions: 80})
	spec := Spec{Scheme: DolosPartial, Tree: BMTEager}
	viaRun, err := runner.Run(WorkloadHashmap.String(), spec)
	if err != nil {
		t.Fatal(err)
	}
	viaCtx, err := runner.RunContext(context.Background(), WorkloadHashmap.String(), spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(viaRun, viaCtx) {
		t.Errorf("RunContext result differs from Run:\n%+v\nvs\n%+v", viaCtx, viaRun)
	}
}

func TestFacadeStatics(t *testing.T) {
	if len(Workloads()) != 6 {
		t.Fatalf("workloads = %v", Workloads())
	}
	if len(MicroWorkloads()) != 2 {
		t.Fatalf("micro workloads = %v", MicroWorkloads())
	}
	if Table3().Rows() == 0 {
		t.Fatal("empty Table 3")
	}
	if ADRCompliance().Rows() != 3 {
		t.Fatal("ADR table wrong")
	}
	if len(Sec55Recovery()) != 3 {
		t.Fatal("recovery estimates wrong")
	}
}
