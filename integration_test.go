package dolos_test

// System-level integration matrix: exercise the public experiment API
// across workloads x schemes x backends and check the paper's ordering
// invariants hold everywhere, at small scale. This is the test that
// fails first when a timing or functional regression sneaks into any
// layer of the stack.

import (
	"testing"

	"dolos"
)

func TestIntegrationSchemeMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run")
	}
	runner := dolos.NewRunner(dolos.Options{Transactions: 120})
	for _, workload := range []string{"Ctree", "Redis"} {
		for _, tree := range []dolos.TreeKind{dolos.BMTEager, dolos.ToCLazy} {
			base, err := runner.Run(workload, dolos.Spec{Scheme: dolos.PreWPQSecure, Tree: tree})
			if err != nil {
				t.Fatal(err)
			}
			ideal, err := runner.Run(workload, dolos.Spec{Scheme: dolos.NonSecureADR, Tree: tree})
			if err != nil {
				t.Fatal(err)
			}
			eadr, err := runner.Run(workload, dolos.Spec{Scheme: dolos.EADRSecure, Tree: tree})
			if err != nil {
				t.Fatal(err)
			}
			if !(eadr.Cycles <= ideal.Cycles && ideal.Cycles < base.Cycles) {
				t.Fatalf("%s/%v bound ordering broken: eadr=%d ideal=%d base=%d",
					workload, tree, eadr.Cycles, ideal.Cycles, base.Cycles)
			}
			for _, s := range []dolos.Scheme{dolos.DolosFull, dolos.DolosPartial, dolos.DolosPost} {
				res, err := runner.Run(workload, dolos.Spec{Scheme: s, Tree: tree})
				if err != nil {
					t.Fatal(err)
				}
				if res.Cycles >= base.Cycles {
					t.Fatalf("%s/%v: %s (%d cycles) not faster than baseline (%d)",
						workload, tree, res.Scheme, res.Cycles, base.Cycles)
				}
				if res.Cycles < eadr.Cycles {
					t.Fatalf("%s/%v: %s beat the eADR bound", workload, tree, res.Scheme)
				}
				if res.Transactions != base.Transactions {
					t.Fatalf("paired replay broke: %d vs %d transactions",
						res.Transactions, base.Transactions)
				}
			}
		}
	}
}

func TestIntegrationTxSizeMonotonicity(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run")
	}
	// Figures 13-14 at matrix scale: for every workload, retries rise
	// and speedups shrink (weakly) from 128B to 2048B.
	runner := dolos.NewRunner(dolos.Options{Transactions: 100})
	for _, workload := range dolos.Workloads() {
		small := speedupAt(t, runner, workload, 128)
		large := speedupAt(t, runner, workload, 2048)
		if large > small*1.15 {
			t.Fatalf("%s: speedup grew with tx size (%.2f -> %.2f)", workload, small, large)
		}
		if large < 1.0 {
			t.Fatalf("%s: Dolos lost at 2048B (%.2f)", workload, large)
		}
	}
}

func speedupAt(t *testing.T, r *dolos.Runner, workload string, size int) float64 {
	t.Helper()
	base, err := r.Run(workload, dolos.Spec{Scheme: dolos.PreWPQSecure, TxSize: size})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := r.Run(workload, dolos.Spec{Scheme: dolos.DolosPartial, TxSize: size})
	if err != nil {
		t.Fatal(err)
	}
	return dolos.Speedup(base, fast)
}

func TestIntegrationTailLatencyImproves(t *testing.T) {
	runner := dolos.NewRunner(dolos.Options{Transactions: 150})
	base, err := runner.Run("RBtree", dolos.Spec{Scheme: dolos.PreWPQSecure})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := runner.Run("RBtree", dolos.Spec{Scheme: dolos.DolosPartial})
	if err != nil {
		t.Fatal(err)
	}
	if base.P99TxCycles <= fast.P99TxCycles {
		t.Fatalf("p99 did not improve: base %.0f vs dolos %.0f", base.P99TxCycles, fast.P99TxCycles)
	}
	if base.MedianTxCycles <= fast.MedianTxCycles {
		t.Fatalf("median did not improve: %.0f vs %.0f", base.MedianTxCycles, fast.MedianTxCycles)
	}
}

func TestIntegrationMicroWorkloads(t *testing.T) {
	runner := dolos.NewRunner(dolos.Options{Transactions: 100, Workloads: []string{"TxStream"}})
	base, err := runner.Run("TxStream", dolos.Spec{Scheme: dolos.PreWPQSecure})
	if err != nil {
		t.Fatal(err)
	}
	fast, err := runner.Run("PQueue", dolos.Spec{Scheme: dolos.DolosPartial})
	if err != nil {
		t.Fatal(err)
	}
	if base.Transactions == 0 || fast.Transactions == 0 {
		t.Fatal("micro workloads did not run")
	}
}
