// Transaction-size sweep: mirror Figures 13-14 for one workload — run
// Redis at payload sizes from 128 B to 2048 B under the baseline and
// Dolos Partial-WPQ, reporting speedup and WPQ retry pressure at each
// point. Larger transactions fill the queue faster, so retries rise and
// the speedup narrows, but Dolos keeps winning even at 2048 B.
package main

import (
	"fmt"
	"log"

	"dolos"
)

func main() {
	runner := dolos.NewRunner(dolos.Options{Transactions: 400})

	fmt.Printf("Redis, eager BMT, 13-entry Partial-WPQ vs 16-entry baseline\n\n")
	fmt.Printf("%8s %14s %14s %10s %12s\n", "tx size", "baseline cyc", "dolos cyc", "speedup", "retry/KWR")

	for _, size := range []int{128, 256, 512, 1024, 2048} {
		base, err := runner.Run("Redis", dolos.Spec{
			Scheme: dolos.PreWPQSecure, Tree: dolos.BMTEager, TxSize: size,
		})
		if err != nil {
			log.Fatal(err)
		}
		fast, err := runner.Run("Redis", dolos.Spec{
			Scheme: dolos.DolosPartial, Tree: dolos.BMTEager, TxSize: size,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%7dB %14d %14d %9.2fx %12.1f\n",
			size, base.Cycles, fast.Cycles, dolos.Speedup(base, fast), fast.RetryPerKWR)
	}
}
