// Crash recovery: run the WHISPER Hashmap under Dolos, cut power at
// several points mid-run, drain the WPQ on the standard ADR reserve,
// recover, and audit at three levels — every accepted write reads back
// decrypted and integrity-verified; the application undo log resolves
// any interrupted transaction; and a structural walk of the recovered
// persistent hashmap finds every bucket chain well-formed.
package main

import (
	"fmt"
	"log"

	"dolos/internal/cliutil"
	"dolos/internal/controller"
	"dolos/internal/crash"
	"dolos/internal/layout"
	"dolos/internal/sim"
	"dolos/internal/whisper"
)

func main() {
	params := whisper.Params{Transactions: 150, TxSize: 512, Seed: 7, HeapSize: 16 << 20}
	tr := whisper.Hashmap{}.Generate(params)
	fmt.Printf("trace: %d transactions, %d ops, %d checkpoint lines\n\n",
		tr.Transactions, len(tr.Ops), len(tr.InitImage))

	for _, crashAt := range []sim.Cycle{10_000, 120_000, 600_000, 1_500_000} {
		cfg := controller.Config{Scheme: controller.DolosPartial, Layout: layout.Small()}
		cfg.AESKey, cfg.MACKey = cliutil.DemoKeys("examp")

		d, err := crash.NewDriver(cfg)
		if err != nil {
			log.Fatalf("driver: %v", err)
		}
		out, err := d.RunAndCrash(tr, crashAt, controller.AnubisRecovery)
		if err != nil {
			log.Fatalf("crash at %d: %v", crashAt, err)
		}

		// Application-level recovery: roll back any interrupted
		// transaction from the undo log, ...
		rolledBack, err := d.ResolveLog(whisper.LogBase(params), whisper.LogCapacity(params))
		if err != nil {
			log.Fatalf("log resolution: %v", err)
		}

		// ... then structurally walk the recovered hashmap through
		// verified reads.
		ma := d.System().Ctrl.MaSU()
		read := func(addr uint64) ([64]byte, error) {
			line, _, err := ma.ReadLine(addr)
			return line, err
		}
		p := params.WithDefaults()
		rep, err := whisper.WalkRecoveredHashmap(read,
			whisper.StructureBase(params), p.HeapBase, p.HeapSize)
		if err != nil {
			log.Fatalf("structure walk at %d: %v", crashAt, err)
		}

		fmt.Printf("crash @ %8d: %3d WPQ entries drained (%4d B on ADR), "+
			"%3d replayed, %4d lines audited, rollback=%v, hashmap: %d entries / %d buckets ok\n",
			out.CrashCycle, out.Crash.LiveEntries, out.Crash.BytesFlushed,
			out.Recover.WPQReplayed, out.LinesAudited, rolledBack,
			rep.Entries, rep.Buckets)
	}
	fmt.Println("\nevery crash point: accepted writes intact, undo log resolved, structure verified")
}
