// Attack detection: exercise the paper's threat model (Section 4.1)
// against a recovered memory image. An adversary who can scan and tamper
// with the NVM module mounts spoofing, relocation, targeted-replay and
// WPQ-drain-image attacks; every one must be detected by the MAC /
// Merkle-tree machinery at read or recovery time.
package main

import (
	"fmt"
	"log"

	"dolos/internal/attack"
	"dolos/internal/crypt"
	"dolos/internal/layout"
	"dolos/internal/masu"
	"dolos/internal/misu"
	"dolos/internal/nvm"
)

func main() {
	lay := layout.Small()
	var aesKey, macKey [16]byte
	copy(aesKey[:], "attck-aes-key-16")
	copy(macKey[:], "attck-mac-key-16")
	eng := crypt.NewEngine(aesKey, macKey)

	dev := nvm.NewDevice(nil, lay.DeviceSize, 0)
	ma := masu.New(masu.BMTEager, eng, dev, lay, 0)

	// Persist a working set.
	var p [64]byte
	for i := uint64(0); i < 16; i++ {
		for j := range p {
			p[j] = byte(i + uint64(j))
		}
		ma.ProcessWrite(0x1000+i*64, p, -1)
	}
	fmt.Println("victim state: 16 lines persisted under counter-mode encryption + BMT")

	adv := attack.New(dev, 1337)

	check := func(name string, tamper func(), read func() error) {
		tamper()
		if err := read(); err != nil {
			fmt.Printf("  %-28s DETECTED: %v\n", name, err)
		} else {
			log.Fatalf("%s went undetected", name)
		}
	}

	fmt.Println("\nattacks on the data region (detected at read):")
	check("spoof (overwrite line)",
		func() { adv.Spoof(0x1000, 64) },
		func() error { _, _, err := ma.ReadLine(0x1000); return err })

	check("spoof (single bit flip)",
		func() { adv.FlipBit(0x1040, 5) },
		func() error { _, _, err := ma.ReadLine(0x1040); return err })

	check("relocation (swap two lines)",
		func() { adv.Relocate(0x1080, 0x10C0) },
		func() error { _, _, err := ma.ReadLine(0x1080); return err })

	check("targeted replay (old ciphertext)",
		func() {
			adv.Snapshot("old")
			var q [64]byte
			q[0] = 0xFE
			ma.ProcessWrite(0x1100, q, -1) // counter advances
			if err := adv.ReplayRange("old", 0x1100, 64); err != nil {
				log.Fatal(err)
			}
		},
		func() error { _, _, err := ma.ReadLine(0x1100); return err })

	// WPQ drain-image attack: tamper the ADR-flushed queue before boot.
	fmt.Println("\nattack on the drained WPQ image (detected at recovery):")
	mi := misu.New(misu.PartialWPQ, eng, dev, lay.DrainBase, 13)
	var w [64]byte
	w[0] = 0x42
	mi.Protect(0x2000, w)
	mi.Drain()
	adv.Spoof(lay.DrainBase+8+8, 4) // inside slot 0's ciphertext
	if _, err := mi.Recover(); err != nil {
		fmt.Printf("  %-28s DETECTED: %v\n", "WPQ image tamper", err)
	} else {
		log.Fatal("WPQ image tamper went undetected")
	}

	fmt.Println("\nadversary log:")
	for _, l := range adv.Log() {
		fmt.Printf("  %s\n", l)
	}
}
