// Quickstart: build two secure-memory systems — the state-of-the-art
// baseline and Dolos with the Partial-WPQ Mi-SU — run the WHISPER
// Hashmap workload on both, and report the speedup, reproducing the
// paper's headline result at small scale.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dolos"
)

func main() {
	runner := dolos.NewRunner(dolos.Options{Transactions: 500})

	// Workload names fold case and aliases; unknown names fail with an
	// error matching dolos.ErrUnknownWorkload under errors.Is.
	workload, err := dolos.ParseWorkload("hashmap")
	if err != nil {
		log.Fatal(err)
	}

	// RunContext bounds each simulation; Run is the same call with
	// context.Background().
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()

	baseline, err := runner.RunContext(ctx, workload.String(), dolos.Spec{
		Scheme: dolos.PreWPQSecure, // security before the WPQ (Figure 5-b)
		Tree:   dolos.BMTEager,
	})
	if err != nil {
		log.Fatal(err)
	}

	fast, err := runner.RunContext(ctx, workload.String(), dolos.Spec{
		Scheme: dolos.DolosPartial, // Mi-SU protects the WPQ (Figure 5-d)
		Tree:   dolos.BMTEager,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Hashmap, 1024B transactions, eager Merkle tree\n\n")
	fmt.Printf("%-22s %12s %14s %10s\n", "scheme", "cycles", "cycles/tx", "retry/KWR")
	fmt.Printf("%-22s %12d %14.0f %10.1f\n", baseline.Scheme, baseline.Cycles, baseline.CyclesPerTx, baseline.RetryPerKWR)
	fmt.Printf("%-22s %12d %14.0f %10.1f\n", fast.Scheme, fast.Cycles, fast.CyclesPerTx, fast.RetryPerKWR)
	fmt.Printf("\nDolos speedup: %.2fx (paper reports 1.66x on average at 50000 transactions)\n",
		dolos.Speedup(baseline, fast))
}
