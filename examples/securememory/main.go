// Secure memory API tour: use the Ma-SU as a standalone secure-memory
// library — counter-mode encryption with split counters, per-line MACs,
// a Bonsai Merkle Tree, Anubis shadow tracking — without the timing
// simulator. Shows what "functional, not mocked" means: every byte on
// the device is real ciphertext, and the printout walks the metadata
// that protects one line.
package main

import (
	"fmt"

	"dolos/internal/cliutil"
	"dolos/internal/crypt"
	"dolos/internal/ctr"
	"dolos/internal/layout"
	"dolos/internal/masu"
	"dolos/internal/nvm"
)

func main() {
	aesKey, macKey := cliutil.DemoKeys("tour")
	eng := crypt.NewEngine(aesKey, macKey)
	lay := layout.Small()
	dev := nvm.NewDevice(nil, lay.DeviceSize, 0)
	ma := masu.New(masu.BMTEager, eng, dev, lay, 0)

	// 1. Write a line through the full pipeline.
	addr := uint64(0x4000)
	var plain [64]byte
	copy(plain[:], "attack at dawn — secret persistent state 0123456789abcdef")
	cost := ma.ProcessWrite(addr, plain, -1)
	fmt.Printf("wrote line at %#x: %d serial MACs, %d NVM writes, %d shadow writes\n",
		addr, cost.SerialMACs, cost.NVMWrites, cost.ShadowWrites)

	// 2. What the adversary sees on the device.
	ct := dev.ReadLine(addr)
	fmt.Printf("\nciphertext on NVM:  %x...\n", ct[:16])
	var mac [8]byte
	dev.Read(lay.LineMACAddr(addr), mac[:])
	fmt.Printf("line MAC:           %x\n", mac)
	fmt.Printf("counter (live):     %d\n", ma.Counters().Counter(addr))
	fmt.Printf("counter (in NVM):   %d (Osiris persists every %d updates)\n",
		ma.Counters().StoredCounter(addr), ma.Counters().Period())
	blk := ctr.DecodeBlock(ma.Counters().ImageByIndex(lay.LeafIndex(addr)))
	fmt.Printf("counter block:      major=%d minor[%d]=%d\n",
		blk.Major, addr/64%64, blk.Minors[addr/64%64])
	fmt.Printf("BMT root register:  %x (levels=%d, leaves=%d)\n",
		ma.BMT().Root(), ma.BMT().Levels(), ma.BMT().Leaves())

	// 3. Verified read.
	got, rcost, err := ma.ReadLine(addr)
	if err != nil {
		panic(err)
	}
	fmt.Printf("\nverified read ok (%d MACs checked): %q\n",
		rcost.TotalMACs, string(got[:24]))

	// 4. Overwrite: the counter advances, the ciphertext changes even
	// for identical plaintext.
	ma.ProcessWrite(addr, plain, -1)
	ct2 := dev.ReadLine(addr)
	fmt.Printf("\nsame plaintext rewritten: ciphertext now %x... (counter %d)\n",
		ct2[:16], ma.Counters().Counter(addr))

	// 5. Crash: volatile state gone; shadow region + root register
	// recover everything.
	ma.CrashVolatile()
	rep, err := ma.RecoverAnubis()
	if err != nil {
		panic(err)
	}
	fmt.Printf("\npower failure -> Anubis recovery: %d metadata blocks restored, %d lines verified\n",
		rep.ShadowRestored, rep.LinesVerified)
	got2, _, err := ma.ReadLine(addr)
	if err != nil || got2 != plain {
		panic("data lost")
	}
	fmt.Println("plaintext intact after crash + recovery")

	// 6. Tamper with one ciphertext bit: the read must refuse.
	ct2[0] ^= 1
	dev.WriteLine(addr, ct2)
	if _, _, err := ma.ReadLine(addr); err != nil {
		fmt.Printf("\nbit-flip on NVM: %v\n", err)
	} else {
		panic("tamper undetected")
	}
}
