// Package dolos is the public API of the Dolos reproduction: a
// functional + cycle-approximate model of "Dolos: Improving the
// Performance of Persistent Applications in ADR-Supported Secure Memory"
// (Han, Tuck, Awad — MICRO 2021).
//
// The package re-exports the experiment layer: configure a Spec (scheme,
// integrity backend, transaction size, WPQ size), run WHISPER-style
// workloads through a full simulated machine, and regenerate every table
// and figure of the paper's evaluation. Lower-level machinery (the WPQ,
// Mi-SU/Ma-SU units, Merkle trees, crash and attack drivers) lives under
// internal/ and is exercised through this facade, the cmd/ binaries and
// the examples/.
//
// Quick start:
//
//	runner := dolos.NewRunner(dolos.Options{Transactions: 500})
//	base, _ := runner.Run("Hashmap", dolos.Spec{Scheme: dolos.PreWPQSecure})
//	fast, _ := runner.Run("Hashmap", dolos.Spec{Scheme: dolos.DolosPartial})
//	fmt.Printf("speedup: %.2fx\n", dolos.Speedup(base, fast))
package dolos

import (
	"dolos/internal/controller"
	"dolos/internal/core"
	"dolos/internal/cpu"
	"dolos/internal/masu"
	"dolos/internal/stats"
	"dolos/internal/whisper"
)

// Sentinel errors of the public API, matchable with errors.Is anywhere
// in a wrapped chain. The HTTP serving stack preserves them too: a
// misspelled workload in a service request fails normalization with an
// error wrapping ErrUnknownWorkload before it is mapped to a 400.
var (
	// ErrUnknownWorkload reports a workload name no spelling rule can
	// resolve. ParseWorkload, Runner.Run and Runner.RunContext all wrap
	// it.
	ErrUnknownWorkload = whisper.ErrUnknown
	// ErrCanceled reports a run or sweep cut short by its context. The
	// chain still carries the underlying context.Canceled or
	// context.DeadlineExceeded for callers that care why.
	ErrCanceled = core.ErrCanceled
)

// Scheme selects the secure memory controller configuration.
type Scheme = controller.Scheme

// The five controller configurations of the evaluation.
const (
	// NonSecureADR is the infeasible ideal reference (Figure 5-c).
	NonSecureADR = controller.NonSecureADR
	// PreWPQSecure is the state-of-the-art baseline (Figure 5-b).
	PreWPQSecure = controller.PreWPQSecure
	// DolosFull is Dolos with the Full-WPQ Mi-SU design.
	DolosFull = controller.DolosFull
	// DolosPartial is Dolos with the Partial-WPQ Mi-SU design.
	DolosPartial = controller.DolosPartial
	// DolosPost is Dolos with the Post-WPQ Mi-SU design.
	DolosPost = controller.DolosPost
	// EADRSecure is the extended-ADR platform bound (persistent caches):
	// the expensive alternative the paper positions Dolos against.
	EADRSecure = controller.EADRSecure
)

// Related-work schemes (internal/scheme registry): the persistent-
// security competitors the paper's related-work section positions Dolos
// against, runnable through the same Runner and bench grids. Each
// additionally reports a recovery-cycle estimate (Result.RecoveryCycles)
// — the axis the runtime/recovery trade-off is measured on.
const (
	// TriadNVM persists the counters and the first N BMT levels
	// (Triad-NVM, ISCA 2019); Spec.TriadLevels tunes N (default 1).
	TriadNVM = controller.TriadNVM
	// SuperMem is a write-through counter cache with cross-bank
	// coalescing (SuperMem, MICRO 2019) — Triad with N = 0.
	SuperMem = controller.SuperMem
	// Phoenix keeps the counter tree persistently secure via shadow
	// updates over the lazy ToC backend (Phoenix, 2019).
	Phoenix = controller.Phoenix
	// STUM streamlines BMT updates by skipping shared-ancestor MACs on
	// consecutive persists (STUM-style coalescing).
	STUM = controller.STUM
)

// TreeKind selects the Ma-SU integrity backend.
type TreeKind = masu.TreeKind

// The two integrity backends of Section 5.
const (
	// BMTEager is the 8-ary Bonsai Merkle Tree with eager AGIT updates.
	BMTEager = masu.BMTEager
	// ToCLazy is the lazily-updated Tree of Counters with Phoenix-style
	// shadow protection.
	ToCLazy = masu.ToCLazy
)

// Options configures an experiment batch (transaction count, workload
// subset, seed, sweep parallelism).
type Options = core.Options

// Spec pins one simulated configuration (scheme, tree, transaction size,
// WPQ size).
type Spec = core.Spec

// Runner executes simulations with trace caching for paired comparisons.
// Safe for concurrent use; sweep experiments run their cells on a worker
// pool sized by Options.Parallelism with byte-identical output at any
// setting.
//
// Context-aware callers use RunContext(ctx, workload, spec); Run is
// exactly RunContext with context.Background(). A run bounded by a
// context that is already done fails with an error matching both
// ErrCanceled and the context's own cause.
type Runner = core.Runner

// Result summarizes one simulation (cycles, CPI, retry events, ...).
// Multi-core runs (Spec.Cores > 1) additionally carry the core count,
// OoO window, prefetch count and one CoreResult per core.
type Result = cpu.Result

// CoreResult is one core's share of a multi-core Result: its own
// cycles and progress counters plus the shared-controller fairness
// view (arbiter grants, cumulative wait cycles).
type CoreResult = cpu.CoreResult

// Table is a rendered experiment table.
type Table = stats.Table

// NewRunner creates an experiment runner.
func NewRunner(opts Options) *Runner { return core.NewRunner(opts) }

// Speedup is the paper's metric: baseline cycles over candidate cycles.
func Speedup(baseline, candidate Result) float64 { return core.Speedup(baseline, candidate) }

// Workload names one benchmark. The constants below cover the six
// WHISPER-style workloads of the paper's figures plus the two in-house
// microbenchmarks; ParseWorkload folds any accepted spelling onto them.
type Workload string

// The WHISPER benchmarks in figure order, then the microbenchmarks.
const (
	WorkloadHashmap  Workload = "Hashmap"
	WorkloadCtree    Workload = "Ctree"
	WorkloadBtree    Workload = "Btree"
	WorkloadRBtree   Workload = "RBtree"
	WorkloadYCSB     Workload = "NStore:YCSB"
	WorkloadRedis    Workload = "Redis"
	WorkloadTxStream Workload = "TxStream"
	WorkloadPQueue   Workload = "PQueue"
)

// String returns the canonical name — the spelling Runner.Run and the
// paper's figures use.
func (w Workload) String() string { return string(w) }

// ParseWorkload resolves any accepted workload spelling: canonical
// names in any case or hyphenation ("hashmap", "NStore:YCSB",
// "nstore-ycsb") plus the YCSB short forms ("ycsb", "nstore") — the
// same folding the scheme aliases use. Unknown names fail with an
// error wrapping ErrUnknownWorkload.
func ParseWorkload(name string) (Workload, error) {
	canon, err := whisper.Resolve(name)
	if err != nil {
		return "", err
	}
	return Workload(canon), nil
}

// AllWorkloads lists the six WHISPER-style benchmarks in figure order.
func AllWorkloads() []Workload {
	names := whisper.Names()
	out := make([]Workload, len(names))
	for i, n := range names {
		out[i] = Workload(n)
	}
	return out
}

// Workloads lists the six WHISPER-style benchmarks in figure order.
//
// Deprecated: use AllWorkloads (typed) or the Workload constants.
func Workloads() []string { return whisper.Names() }

// MicroWorkloads lists the in-house microbenchmarks (TxStream, PQueue),
// mirroring the paper's "in-house developed workloads".
func MicroWorkloads() []string { return whisper.MicroNames() }

// Table3 returns the static Mi-SU storage-overhead table.
func Table3() *Table { return core.Table3() }

// ADRCompliance returns the drain-cost-versus-ADR-budget audit table.
func ADRCompliance() *Table { return core.ADRCompliance() }

// RecoveryEstimate is the Section 5.5 Mi-SU recovery-time analysis.
type RecoveryEstimate = core.RecoveryEstimate

// Sec55Recovery returns the recovery-time estimates per Mi-SU design.
func Sec55Recovery() []RecoveryEstimate { return core.Sec55Recovery() }
