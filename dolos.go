// Package dolos is the public API of the Dolos reproduction: a
// functional + cycle-approximate model of "Dolos: Improving the
// Performance of Persistent Applications in ADR-Supported Secure Memory"
// (Han, Tuck, Awad — MICRO 2021).
//
// The package re-exports the experiment layer: configure a Spec (scheme,
// integrity backend, transaction size, WPQ size), run WHISPER-style
// workloads through a full simulated machine, and regenerate every table
// and figure of the paper's evaluation. Lower-level machinery (the WPQ,
// Mi-SU/Ma-SU units, Merkle trees, crash and attack drivers) lives under
// internal/ and is exercised through this facade, the cmd/ binaries and
// the examples/.
//
// Quick start:
//
//	runner := dolos.NewRunner(dolos.Options{Transactions: 500})
//	base, _ := runner.Run("Hashmap", dolos.Spec{Scheme: dolos.PreWPQSecure})
//	fast, _ := runner.Run("Hashmap", dolos.Spec{Scheme: dolos.DolosPartial})
//	fmt.Printf("speedup: %.2fx\n", dolos.Speedup(base, fast))
package dolos

import (
	"dolos/internal/controller"
	"dolos/internal/core"
	"dolos/internal/cpu"
	"dolos/internal/masu"
	"dolos/internal/stats"
	"dolos/internal/whisper"
)

// Scheme selects the secure memory controller configuration.
type Scheme = controller.Scheme

// The five controller configurations of the evaluation.
const (
	// NonSecureADR is the infeasible ideal reference (Figure 5-c).
	NonSecureADR = controller.NonSecureADR
	// PreWPQSecure is the state-of-the-art baseline (Figure 5-b).
	PreWPQSecure = controller.PreWPQSecure
	// DolosFull is Dolos with the Full-WPQ Mi-SU design.
	DolosFull = controller.DolosFull
	// DolosPartial is Dolos with the Partial-WPQ Mi-SU design.
	DolosPartial = controller.DolosPartial
	// DolosPost is Dolos with the Post-WPQ Mi-SU design.
	DolosPost = controller.DolosPost
	// EADRSecure is the extended-ADR platform bound (persistent caches):
	// the expensive alternative the paper positions Dolos against.
	EADRSecure = controller.EADRSecure
)

// TreeKind selects the Ma-SU integrity backend.
type TreeKind = masu.TreeKind

// The two integrity backends of Section 5.
const (
	// BMTEager is the 8-ary Bonsai Merkle Tree with eager AGIT updates.
	BMTEager = masu.BMTEager
	// ToCLazy is the lazily-updated Tree of Counters with Phoenix-style
	// shadow protection.
	ToCLazy = masu.ToCLazy
)

// Options configures an experiment batch (transaction count, workload
// subset, seed, sweep parallelism).
type Options = core.Options

// Spec pins one simulated configuration (scheme, tree, transaction size,
// WPQ size).
type Spec = core.Spec

// Runner executes simulations with trace caching for paired comparisons.
// Safe for concurrent use; sweep experiments run their cells on a worker
// pool sized by Options.Parallelism with byte-identical output at any
// setting.
type Runner = core.Runner

// Result summarizes one simulation (cycles, CPI, retry events, ...).
type Result = cpu.Result

// Table is a rendered experiment table.
type Table = stats.Table

// NewRunner creates an experiment runner.
func NewRunner(opts Options) *Runner { return core.NewRunner(opts) }

// Speedup is the paper's metric: baseline cycles over candidate cycles.
func Speedup(baseline, candidate Result) float64 { return core.Speedup(baseline, candidate) }

// Workloads lists the six WHISPER-style benchmarks in figure order.
func Workloads() []string { return whisper.Names() }

// MicroWorkloads lists the in-house microbenchmarks (TxStream, PQueue),
// mirroring the paper's "in-house developed workloads".
func MicroWorkloads() []string { return whisper.MicroNames() }

// Table3 returns the static Mi-SU storage-overhead table.
func Table3() *Table { return core.Table3() }

// ADRCompliance returns the drain-cost-versus-ADR-budget audit table.
func ADRCompliance() *Table { return core.ADRCompliance() }

// RecoveryEstimate is the Section 5.5 Mi-SU recovery-time analysis.
type RecoveryEstimate = core.RecoveryEstimate

// Sec55Recovery returns the recovery-time estimates per Mi-SU design.
func Sec55Recovery() []RecoveryEstimate { return core.Sec55Recovery() }
