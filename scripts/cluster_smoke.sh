#!/usr/bin/env bash
# Cluster smoke test (make cluster-smoke, runs in CI):
#
#   1. start a 3-node dolos-serve cluster, each node with its own
#      durable store and the other two as -peers;
#   2. submit a 6-cell grid over POST /v2/jobs to node 1;
#   3. SIGKILL node 2 while the grid is in flight — forwards to it
#      fail over to local execution (DESIGN.md §16);
#   4. assert the job completes with every cell, the result document
#      holds exactly one record per cell, and an SSE reconnect with
#      Last-Event-ID replays the remaining cells plus the terminal
#      done event;
#   5. restart node 2 on its old store and assert it rejoins (healthz
#      up, /v2/cluster shows all three nodes) and can serve the grid
#      as a warm cluster;
#   6. drive the survivors with dolos-load -stream to print
#      time-to-first-cell percentiles with zero errors.
#
# Ports are fixed (8094-8096) so failures are reproducible; state and
# logs live in a temp directory wiped on exit.
set -euo pipefail

GO=${GO:-go}
P1=8094 P2=8095 P3=8096
TMP=$(mktemp -d /tmp/dolos-cluster-smoke.XXXXXX)
PIDS=()

cleanup() {
    for pid in "${PIDS[@]:-}"; do kill -9 "$pid" 2>/dev/null || true; done
    rm -rf "$TMP"
}
trap cleanup EXIT

fail() {
    echo "cluster-smoke: FAIL: $*" >&2
    echo "--- node logs ---" >&2
    tail -n 20 "$TMP"/n*.log >&2 || true
    exit 1
}

$GO build -o "$TMP/dolos-serve" ./cmd/dolos-serve
$GO build -o "$TMP/dolos-load" ./cmd/dolos-load

start_node() { # id port peers extra...
    local id=$1 port=$2 peers=$3
    shift 3
    "$TMP/dolos-serve" -addr "127.0.0.1:$port" -node-id "$id" -peers "$peers" \
        -store-dir "$TMP/store-$id" "$@" >>"$TMP/$id.log" 2>&1 &
    PIDS+=($!)
    disown $!
    echo $!
}

wait_healthy() { # port...
    for port in "$@"; do
        for _ in $(seq 1 100); do
            curl -fsS "http://127.0.0.1:$port/healthz" >/dev/null 2>&1 && continue 2
            sleep 0.1
        done
        fail "node on :$port never became healthy"
    done
}

start_node n1 $P1 "n2=http://127.0.0.1:$P2,n3=http://127.0.0.1:$P3" \
    -faults 'cell-latency:1:150ms' -faults-seed 42 >/dev/null
N2_PID=$(start_node n2 $P2 "n1=http://127.0.0.1:$P1,n3=http://127.0.0.1:$P3")
start_node n3 $P3 "n1=http://127.0.0.1:$P1,n2=http://127.0.0.1:$P2" >/dev/null
wait_healthy $P1 $P2 $P3
echo "cluster-smoke: 3 nodes up"

# Submit a 6-cell grid to n1. The cell-latency fault on n1 paces its
# local cells so the SIGKILL below lands mid-grid, not after it.
JOB=$(curl -fsS -X POST "http://127.0.0.1:$P1/v2/jobs" \
    -d '{"workloads":["Hashmap","Btree","Ctree"],"schemes":["baseline","dolos-partial"],"transactions":400}')
ID=$(jq -r .id <<<"$JOB")
CELLS=$(jq -r .cells <<<"$JOB")
[ "$CELLS" = 6 ] || fail "submitted grid has $CELLS cells, want 6"
echo "cluster-smoke: submitted $ID ($CELLS cells)"

# SIGKILL one worker while the grid runs: no drain, no goodbye — the
# coordinator's forwards to it must fail over locally.
sleep 0.2
kill -9 "$N2_PID"
echo "cluster-smoke: SIGKILLed n2 (pid $N2_PID) mid-grid"

# The grid must still complete, with every cell accounted for.
STATUS=""
for _ in $(seq 1 300); do
    STATUS=$(curl -fsS "http://127.0.0.1:$P1/v2/jobs/$ID")
    case $(jq -r .status <<<"$STATUS") in
        done) break ;;
        failed) fail "job failed: $(jq -r .error <<<"$STATUS")" ;;
    esac
    sleep 0.2
done
[ "$(jq -r .status <<<"$STATUS")" = done ] || fail "job not done after 60s: $STATUS"
[ "$(jq -r .cells_done <<<"$STATUS")" = "$CELLS" ] || fail "cells_done $(jq -r .cells_done <<<"$STATUS") != $CELLS"
RECORDS=$(curl -fsS "http://127.0.0.1:$P1/v2/jobs/$ID/result" | jq length)
[ "$RECORDS" = "$CELLS" ] || fail "result has $RECORDS records, want $CELLS"
echo "cluster-smoke: grid completed with all $CELLS cells despite the kill"

# Stream replay: reconnect with Last-Event-ID 2 — the server must
# replay exactly cells 2..5 and the terminal done event.
REPLAY=$(curl -fsS -m 10 -H 'Last-Event-ID: 2' "http://127.0.0.1:$P1/v2/jobs/$ID/stream")
GOT_CELLS=$(grep -c '^event: cell$' <<<"$REPLAY" || true)
GOT_DONE=$(grep -c '^event: done$' <<<"$REPLAY" || true)
[ "$GOT_CELLS" = 4 ] && [ "$GOT_DONE" = 1 ] || \
    fail "replay from Last-Event-ID 2 gave $GOT_CELLS cells / $GOT_DONE done, want 4 / 1"
echo "cluster-smoke: SSE replay from Last-Event-ID 2 returned cells 2..5 + done"

# Restart the killed node on its old store: it must rejoin and see the
# full ring.
start_node n2 $P2 "n1=http://127.0.0.1:$P1,n3=http://127.0.0.1:$P3" >/dev/null
wait_healthy $P2
NODES=$(curl -fsS "http://127.0.0.1:$P2/v2/cluster" | jq '.nodes | length')
[ "$NODES" = 3 ] || fail "restarted n2 sees $NODES nodes, want 3"
echo "cluster-smoke: n2 restarted on its store and rejoined the ring"

# Streaming load against the coordinator: every stream must deliver
# every cell in order with zero errors; prints first-cell percentiles.
"$TMP/dolos-load" -addr "http://127.0.0.1:$P3" -stream -tenant smoke \
    -workloads Hashmap,Btree -schemes baseline,dolos-partial \
    -duration 3s -concurrency 2 -txns 200 -max-errors 0

echo "cluster-smoke: PASS"
