// Command dolos-profile runs one scheme×workload simulation with the
// telemetry probe enabled and exports the run's timeline as Chrome
// trace-event JSON (loadable in ui.perfetto.dev or chrome://tracing)
// plus a flat metrics JSON dump. It is the observability entry point for
// answering *why* a scheme wins: where a persist's critical path stalls,
// how WPQ occupancy evolves around commit bursts, and what occupies the
// Mi-SU/Ma-SU engines and the NVM banks.
//
// Usage:
//
//	dolos-profile -scheme DolosPartial -workload Hashmap
//	dolos-profile -scheme baseline -workload Redis -trace base.json -metrics base-metrics.json
//	dolos-profile -grid -o BENCH_baseline.json   # fixed-seed bench grid, no trace
//	dolos-profile -grid -o BENCH_pr5.json -compare BENCH_baseline.json  # bit-identity + perf delta
//	dolos-profile -workload Hashmap -prom -      # Prometheus text exposition on stdout
//	dolos-profile -grid -cpuprofile cpu.pprof    # host-side hot-path hunt (go tool pprof)
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"dolos/internal/cliutil"
	"dolos/internal/controller"
	"dolos/internal/cpu"
	"dolos/internal/masu"
	"dolos/internal/mcore"
	schemereg "dolos/internal/scheme"
	"dolos/internal/telemetry"
	"dolos/internal/trace"
	"dolos/internal/whisper"
)

func main() {
	// The actual work lives in run so pprof teardown (deferred) happens
	// before the process exits; os.Exit in main would skip it.
	os.Exit(run())
}

func run() int {
	workload := flag.String("workload", "Hashmap", "workload: Hashmap, Ctree, Btree, RBtree, NStore:YCSB, Redis")
	scheme := flag.String("scheme", "DolosPartial", "controller scheme (any spelling: dolos-partial, DolosPartial, Dolos-Partial-WPQ)")
	tree := flag.String("tree", "eager", "integrity backend: eager (BMT) or lazy (ToC)")
	txns := flag.Int("txns", 200, "measured transactions")
	txSize := flag.Int("txsize", 1024, "transaction payload bytes (128-2048)")
	wpqSize := flag.Int("wpq", 16, "hardware WPQ entries")
	seed := flag.Int64("seed", 1, "workload seed")
	traceOut := flag.String("trace", "trace.json", "Chrome trace-event JSON output path")
	metricsOut := flag.String("metrics", "metrics.json", "metrics JSON output path")
	promOut := flag.String("prom", "", "also write the run's metrics in Prometheus text exposition format to this path (\"-\" = stdout)")
	eventLimit := flag.Int("event-limit", 2_000_000, "max retained trace events (0 = unlimited)")
	grid := flag.Bool("grid", false, "run the fixed-seed scheme×workload bench grid instead of one profiled run")
	gridOut := flag.String("o", "BENCH_baseline.json", "bench grid JSON output path")
	parallel := flag.Int("parallel", 0, "concurrent grid simulations (0 = GOMAXPROCS, 1 = serial); output is identical at any setting")
	compare := flag.String("compare", "", "grid mode: verify deterministic fields bit-identical against this trajectory file and report the throughput delta (exit 1 on divergence)")
	mcoreExt := flag.Bool("mcore", false, "grid mode: append multi-core contention records (shared-controller cells at 2 and 4 cores) after the legacy grid")
	relatedExt := flag.Bool("related", false, "grid mode: append related-work scheme records (Triad-NVM, SuperMem, Phoenix, STUM with recovery_cycles) after the legacy grid")
	fast := flag.Bool("fast", false, "single run: use the latency-only crypto provider; grid mode: append fast-mode and parallel-DES re-runs of the legacy cells, checked bit-identical in-run")
	repeat := flag.Int("repeat", 1, "grid mode: run each cell this many times and keep the fastest wall time (deterministic fields are identical across runs, so only the throughput axis changes)")
	pdesFloor := flag.String("pdes-floor", "", "grid mode with -fast: exit 1 if the parallel-DES sim_events_per_sec geomean falls below this ratio of functional serial (empty = no gate; 'auto' = 1.0 on multi-core hosts, 0.85 on a single-core host where the two stages cannot overlap)")
	cpuProfile := flag.String("cpuprofile", "", "write a host-side CPU profile (go tool pprof) to this path")
	memProfile := flag.String("memprofile", "", "write a host-side heap profile (after GC) to this path on exit")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dolos-profile: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "dolos-profile: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			if err := writeHeapProfile(*memProfile); err != nil {
				fmt.Fprintf(os.Stderr, "dolos-profile: %v\n", err)
			}
		}()
	}

	if *grid {
		floor, err := parsePdesFloor(*pdesFloor)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dolos-profile: %v\n", err)
			return 2
		}
		if err := runGrid(*gridOut, *txns, *txSize, *parallel, *compare, *relatedExt, *mcoreExt, *fast, *repeat, floor); err != nil {
			fmt.Fprintf(os.Stderr, "dolos-profile: %v\n", err)
			return 1
		}
		return 0
	}

	sch, err := cliutil.ParseScheme(*scheme)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dolos-profile: %v\n", err)
		return 2
	}
	kind, err := cliutil.ParseTree(*tree)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dolos-profile: %v\n", err)
		return 2
	}
	w, err := whisper.ByName(*workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dolos-profile: %v\n", err)
		return 1
	}
	tr := w.Generate(whisper.Params{Transactions: *txns, TxSize: *txSize, Seed: *seed})

	cfg := controller.Config{Scheme: sch, Tree: kind, HardwareWPQ: *wpqSize, FastMode: *fast}
	cfg.AESKey, cfg.MACKey = cliutil.DemoKeys("profile")
	var sys *cpu.System
	var res cpu.Result
	var wall time.Duration
	var probe *telemetry.Probe
	// The profile labels let `go tool pprof -tagfocus` split host CPU by
	// crypto provider and DES parallelism, so a -cpuprofile of a mixed
	// session attributes SHA-256 time to the runs that actually paid it.
	pprof.Do(context.Background(), runLabels(cfg), func(context.Context) {
		sys = cpu.NewSystem(cfg)
		probe = telemetry.NewProbe(sys.Eng.Now)
		probe.SetEventLimit(*eventLimit)
		sys.SetProbe(probe)
		start := time.Now()
		res = sys.Run(tr)
		wall = time.Since(start)
	})

	if err := writeTrace(*traceOut, probe); err != nil {
		fmt.Fprintf(os.Stderr, "dolos-profile: %v\n", err)
		return 1
	}
	rec := cliutil.BuildRunRecord(res, kind, *txSize, *seed, sys.Eng.Processed(), wall, sys.Ctrl.Stats(), probe.Registry())
	rec.Mode = cliutil.ModeLabel(cfg.FastMode, cfg.ParallelDES)
	if err := writeMetrics(*metricsOut, rec); err != nil {
		fmt.Fprintf(os.Stderr, "dolos-profile: %v\n", err)
		return 1
	}
	if *promOut != "" {
		// The same exposition renderer the service's /metrics endpoint
		// uses, over the identical snapshot the JSON dump carries — so a
		// one-shot profile can feed the same dashboards as the daemon.
		if err := writeProm(*promOut, rec.Metrics); err != nil {
			fmt.Fprintf(os.Stderr, "dolos-profile: %v\n", err)
			return 1
		}
	}

	fmt.Printf("profiled %s under %s: %d cycles, %d transactions\n",
		res.Workload, res.Scheme, res.Cycles, res.Transactions)
	fmt.Printf("trace    %s (%d events on %d tracks", *traceOut, probe.Len(), len(probe.TrackNames()))
	if d := probe.Dropped(); d > 0 {
		fmt.Printf(", %d dropped by -event-limit", d)
	}
	fmt.Printf(")\nmetrics  %s\n", *metricsOut)
	fmt.Println("open the trace at https://ui.perfetto.dev or chrome://tracing")
	return 0
}

// writeHeapProfile forces a GC so the heap profile reflects live objects,
// then writes it — the standard -memprofile teardown.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeTrace(path string, p *telemetry.Probe) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteChromeTrace(f, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeProm(path string, snap telemetry.MetricsSnapshot) error {
	if path == "-" {
		return telemetry.WritePrometheus(os.Stdout, snap)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WritePrometheus(f, snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func writeMetrics(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteJSON(f, v); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// runGrid executes the fixed-seed scheme×workload grid whose records
// seed BENCH_baseline.json — the per-PR perf trajectory. No probe is
// attached: the grid measures the plain simulator, and its cycle counts
// must stay bit-identical whenever a PR claims zero timing impact.
// Cells run concurrently (one independent system each; the trace per
// workload is generated once up front and replayed read-only), but
// records and report lines are assembled in enumeration order, so the
// output is identical at every -parallel setting.
//
// When comparePath is non-empty the freshly produced records are checked
// field-by-field against that trajectory file: any deterministic-field
// divergence is an error (the timing model changed), while the host-side
// throughput fields are summarized as a speedup ratio.
//
// With fastExt the legacy cells are re-run twice more — once with the
// latency-only provider (mode "fast") and once pipelined across two host
// cores (mode "pdes") — and each re-run is diffed in-run against its
// functional serial record: a single divergent deterministic field fails
// the grid. The extension records append after the mcore block.
func runGrid(path string, txns, txSize, parallel int, comparePath string, relatedExt, mcoreExt, fastExt bool, repeat int, pdesFloor float64) error {
	schemes := []controller.Scheme{
		controller.PreWPQSecure,
		controller.DolosFull,
		controller.DolosPartial,
		controller.DolosPost,
	}
	workloads := []string{"Hashmap", "Btree"}
	const gridSeed = 1

	var cells []gridCell
	for _, wl := range workloads {
		w, err := whisper.ByName(wl)
		if err != nil {
			return err
		}
		tr := w.Generate(whisper.Params{Transactions: txns, TxSize: txSize, Seed: gridSeed})
		for _, sch := range schemes {
			cells = append(cells, gridCell{wl, tr, sch})
		}
	}

	// Trace generation just produced hundreds of MB of short-lived
	// recorder state; collect it now so the GC doesn't run inside the
	// timed windows below. Host-side only — simulated timing is
	// unaffected.
	runtime.GC()

	workers := parallel
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	records := make([]telemetry.RunRecord, len(cells))
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(cells) {
					return
				}
				c := cells[i]
				cfg := controller.Config{Scheme: c.scheme, Tree: masu.BMTEager, HardwareWPQ: 16}
				cfg.AESKey, cfg.MACKey = cliutil.DemoKeys("profile")
				records[i] = runGridCellBest(cfg, c.tr, txSize, repeat)
			}
		}()
	}
	wg.Wait()

	for i, c := range cells {
		fmt.Printf("%-10s %-20s %12d cycles  %6.2f retry/KWR\n",
			c.workload, records[i].Scheme, records[i].Cycles, records[i].RetryPerKWR)
	}
	if relatedExt {
		records = append(records, relatedRecords(txns, txSize)...)
	}
	if mcoreExt {
		records = append(records, mcoreRecords(txns, txSize)...)
	}
	if fastExt {
		ext, err := fastRecords(cells, records[:len(cells)], txSize, repeat, pdesFloor)
		if err != nil {
			return err
		}
		records = append(records, ext...)
	}
	if err := writeMetrics(path, records); err != nil {
		return err
	}
	if comparePath == "" {
		return nil
	}
	base, err := cliutil.LoadBenchRecords(comparePath)
	if err != nil {
		return err
	}
	delta := cliutil.CompareBenchRecords(records, base)
	fmt.Printf("compared %d records against %s\n", delta.Records, comparePath)
	if delta.EPSRatio > 0 {
		fmt.Printf("sim_events_per_sec: %.2fx the baseline (geomean); wall_seconds: %.2fx\n",
			delta.EPSRatio, delta.WallRatio)
	}
	if !delta.Identical() {
		const maxShown = 20
		diffs := delta.Diffs
		if len(diffs) > maxShown {
			diffs = diffs[:maxShown]
		}
		for _, d := range diffs {
			fmt.Fprintln(os.Stderr, "  "+d)
		}
		if n := len(delta.Diffs) - maxShown; n > 0 {
			fmt.Fprintf(os.Stderr, "  ... and %d more\n", n)
		}
		return fmt.Errorf("deterministic fields diverged from %s (%d diffs): the timing model changed",
			comparePath, len(delta.Diffs))
	}
	fmt.Println("deterministic fields are bit-identical to the baseline")
	return nil
}

// parsePdesFloor resolves the -pdes-floor flag. "auto" picks the gate
// the host can actually honor: on a multi-core host the two pipeline
// stages overlap and parallel DES must beat serial outright (1.0); on a
// single core there is nothing to overlap with — the pipeline runs
// timing and shadow stages time-sliced, so the gate only guards against
// regressing to duplicated per-op bookkeeping (0.85, below which the
// cost-count stage has stopped paying for the pipeline machinery).
func parsePdesFloor(s string) (float64, error) {
	switch s {
	case "":
		return 0, nil
	case "auto":
		if runtime.NumCPU() >= 2 {
			return 1.0, nil
		}
		return 0.85, nil
	}
	f, err := strconv.ParseFloat(s, 64)
	if err != nil || f < 0 {
		return 0, fmt.Errorf("invalid -pdes-floor %q (want a ratio or 'auto')", s)
	}
	return f, nil
}

// gridCell is one scheme×workload cell of the bench grid, with the
// workload's pre-generated trace (shared read-only between runs).
type gridCell struct {
	workload string
	tr       *trace.Trace
	scheme   controller.Scheme
}

// runLabels builds the pprof label set describing how cfg executes:
// crypto=functional|fast (which provider computes pads and MACs) and
// des=serial|parallel (whether a shadow stage rides a second core). The
// pipeline consumer goroutine is spawned under pprof.Do, so it inherits
// the same labels and its SHA-256 time stays attributed to the run.
func runLabels(cfg controller.Config) pprof.LabelSet {
	crypto := "functional"
	if cfg.FastMode {
		crypto = "fast"
	}
	des := "serial"
	if cfg.ParallelDES && !cfg.FastMode {
		des = "parallel"
	}
	return pprof.Labels("crypto", crypto, "des", des)
}

// runGridCell runs one bench cell under its pprof labels and returns the
// record (Mode set from the config).
func runGridCell(cfg controller.Config, tr *trace.Trace, txSize int) telemetry.RunRecord {
	const gridSeed = 1
	var rec telemetry.RunRecord
	pprof.Do(context.Background(), runLabels(cfg), func(context.Context) {
		sys := cpu.NewSystem(cfg)
		start := time.Now()
		res := sys.Run(tr)
		rec = cliutil.BuildRunRecord(res, cfg.EffectiveTree(), txSize, gridSeed,
			sys.Eng.Processed(), time.Since(start), sys.Ctrl.Stats(), nil)
		rec.Mode = cliutil.ModeLabel(cfg.FastMode, cfg.ParallelDES)
	})
	return rec
}

// runGridCellBest is runGridCell repeated, keeping the record with the
// smallest wall time. Every deterministic field is identical across the
// repeats (the simulation is a pure function of its config and trace),
// so only the host-throughput axis changes — min wall is the standard
// capability estimator, damping GC and scheduler noise that single runs
// pick up, especially on small hosts.
func runGridCellBest(cfg controller.Config, tr *trace.Trace, txSize, repeat int) telemetry.RunRecord {
	best := runGridCell(cfg, tr, txSize)
	for r := 1; r < repeat; r++ {
		if rec := runGridCell(cfg, tr, txSize); rec.WallSeconds < best.WallSeconds {
			best = rec
		}
	}
	return best
}

// relatedRecords is the -related grid extension: the related-work
// schemes (every registry entry that models a recovery procedure) over
// the legacy grid's workloads, one single-core record each, carrying
// the recovery_cycles axis. Appended after the legacy cells so a
// pre-extension baseline still compares clean; the tree label reports
// the backend the scheme actually forces (Phoenix pins the lazy ToC).
func relatedRecords(txns, txSize int) []telemetry.RunRecord {
	const gridSeed = 1
	var out []telemetry.RunRecord
	for _, wl := range []string{"Hashmap", "Btree"} {
		w, err := whisper.ByName(wl)
		if err != nil {
			panic(err)
		}
		tr := w.Generate(whisper.Params{Transactions: txns, TxSize: txSize, Seed: gridSeed})
		for _, e := range schemereg.All() {
			if !e.Pipeline.ReportsRecovery {
				continue
			}
			cfg := controller.Config{Scheme: e.ID, Tree: masu.BMTEager, HardwareWPQ: 16}
			cfg.AESKey, cfg.MACKey = cliutil.DemoKeys("profile")
			rec := runGridCell(cfg, tr, txSize)
			fmt.Printf("%-10s %-20s %12d cycles  %6.2f retry/KWR  (%d recovery cyc)\n",
				wl, rec.Scheme, rec.Cycles, rec.RetryPerKWR, rec.RecoveryCycles)
			out = append(out, rec)
		}
	}
	return out
}

// fastRecords is the -fast grid extension: every legacy cell re-run in
// fast mode and again under parallel DES, each checked bit-identical to
// its functional serial record before the grid is allowed to land. The
// printed geomean is the headline fast-mode speedup (host throughput;
// the simulated model is unchanged by construction, and the diff proves
// it).
func fastRecords(cells []gridCell, funcRecs []telemetry.RunRecord, txSize, repeat int, pdesFloor float64) ([]telemetry.RunRecord, error) {
	var out []telemetry.RunRecord
	for _, mode := range []struct {
		name       string
		fast, pdes bool
	}{{"fast", true, false}, {"pdes", false, true}} {
		recs := make([]telemetry.RunRecord, len(cells))
		for i, c := range cells {
			cfg := controller.Config{Scheme: c.scheme, Tree: masu.BMTEager, HardwareWPQ: 16,
				FastMode: mode.fast, ParallelDES: mode.pdes}
			cfg.AESKey, cfg.MACKey = cliutil.DemoKeys("profile")
			recs[i] = runGridCellBest(cfg, c.tr, txSize, repeat)
			fmt.Printf("%-10s %-20s %12d cycles  %6.2f retry/KWR  (%s)\n",
				c.workload, recs[i].Scheme, recs[i].Cycles, recs[i].RetryPerKWR, mode.name)
		}
		delta := cliutil.CompareBenchRecords(recs, funcRecs)
		if !delta.Identical() {
			for _, d := range delta.Diffs {
				fmt.Fprintln(os.Stderr, "  "+d)
			}
			return nil, fmt.Errorf("%s mode diverged from the functional serial grid (%d diffs)",
				mode.name, len(delta.Diffs))
		}
		fmt.Printf("%s mode: bit-identical to functional serial, %.2fx sim_events_per_sec (geomean)\n",
			mode.name, delta.EPSRatio)
		if mode.pdes && pdesFloor > 0 && delta.EPSRatio < pdesFloor {
			return nil, fmt.Errorf("pdes geomean %.2fx is below the %.2fx floor: the two-stage pipeline regressed",
				delta.EPSRatio, pdesFloor)
		}
		out = append(out, recs...)
	}
	return out, nil
}

// mcoreRecords runs the contention axis of the bench grid: the
// security-before-WPQ baseline and Dolos Partial-WPQ at 2 and 4
// Hashmap instances sharing one controller. Records are appended after
// the legacy grid (never compared against a pre-mcore baseline, whose
// record count would differ), extending the trajectory with the
// multi-core shape: cores, ooo_window, per_core and the shared-WPQ
// occupancy/fairness metrics.
func mcoreRecords(txns, txSize int) []telemetry.RunRecord {
	const gridSeed = 1
	w, err := whisper.ByName("Hashmap")
	if err != nil {
		panic(err)
	}
	var out []telemetry.RunRecord
	for _, n := range []int{2, 4} {
		specs := make([]mcore.CoreSpec, n)
		for i := range specs {
			coreSeed := mcore.CoreSeed(gridSeed, i)
			specs[i] = mcore.CoreSpec{
				Workload: "Hashmap",
				Seed:     coreSeed,
				Trace: w.Generate(whisper.Params{
					Transactions: txns, TxSize: txSize, Seed: coreSeed,
					HeapBase: mcore.CoreHeapBase(i),
				}),
			}
		}
		for _, sch := range []controller.Scheme{controller.PreWPQSecure, controller.DolosPartial} {
			cfg := controller.Config{Scheme: sch, Tree: masu.BMTEager, HardwareWPQ: 16}
			cfg.AESKey, cfg.MACKey = cliutil.DemoKeys("profile")
			sys := mcore.NewSystem(mcore.Config{Ctrl: cfg, Window: 2}, specs)
			start := time.Now()
			res := sys.Run()
			rec := cliutil.BuildRunRecord(res, masu.BMTEager, txSize, gridSeed,
				sys.Eng.Processed(), time.Since(start), sys.Ctrl.Stats(), nil)
			fmt.Printf("%-10s %-20s %12d cycles  %6.2f retry/KWR  (%d cores)\n",
				"Hashmap", rec.Scheme, rec.Cycles, rec.RetryPerKWR, n)
			out = append(out, rec)
		}
	}
	return out
}
