// Command dolos-trace inspects the memory traces the workload generators
// produce: operation composition, flush/fence cadence, per-transaction
// footprints and line-reuse statistics. Useful when calibrating the
// model (DESIGN.md §7) or adding workloads.
//
// Usage:
//
//	dolos-trace -workload Hashmap -txsize 1024
//	dolos-trace -workload Redis -txns 500 -txsize 256
package main

import (
	"flag"
	"fmt"
	"os"

	"dolos/internal/sim"
	"dolos/internal/trace"
	"dolos/internal/whisper"
)

func main() {
	workload := flag.String("workload", "Hashmap", "workload to generate")
	txns := flag.Int("txns", 200, "measured transactions")
	txSize := flag.Int("txsize", 1024, "transaction payload bytes")
	seed := flag.Int64("seed", 1, "generator seed")
	save := flag.String("save", "", "write the generated trace to this file (gzipped gob)")
	load := flag.String("load", "", "inspect a previously saved trace instead of generating")
	dump := flag.Int("dump", 0, "print the first N operations")
	flag.Parse()

	var tr *trace.Trace
	if *load != "" {
		var err error
		tr, err = trace.LoadFile(*load)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dolos-trace: %v\n", err)
			os.Exit(1)
		}
	} else {
		w, err := whisper.ByName(*workload)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dolos-trace: %v\n", err)
			os.Exit(1)
		}
		tr = w.Generate(whisper.Params{Transactions: *txns, TxSize: *txSize, Seed: *seed})
	}
	if *save != "" {
		if err := tr.SaveFile(*save); err != nil {
			fmt.Fprintf(os.Stderr, "dolos-trace: save: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("saved trace to %s\n", *save)
	}
	c := tr.Count()

	fmt.Printf("workload       %s (txsize %dB, %d transactions)\n", tr.Name, tr.TxSize, tr.Transactions)
	fmt.Printf("ops            %d\n", len(tr.Ops))
	fmt.Printf("reads          %d (%.1f per tx)\n", c.Reads, per(c.Reads, tr.Transactions))
	fmt.Printf("writes         %d (%.1f per tx)\n", c.Writes, per(c.Writes, tr.Transactions))
	fmt.Printf("flushes        %d (%.1f per tx)\n", c.Flushes, per(c.Flushes, tr.Transactions))
	fmt.Printf("fences         %d (%.1f per tx)\n", c.Fences, per(c.Fences, tr.Transactions))
	fmt.Printf("compute        %d cycles (%.0f per tx, %.0f per flush)\n",
		c.ComputeCycles, per(int(c.ComputeCycles), tr.Transactions), per(int(c.ComputeCycles), c.Flushes))

	// Line-reuse: how often a flushed line repeats within the trace —
	// the coalescing opportunity.
	lines := map[uint64]int{}
	var flushBurst, burst, maxBurst int
	var computeBetweenFlushes []sim.Cycle
	var sinceFlush sim.Cycle
	for _, op := range tr.Ops {
		switch op.Kind {
		case trace.Flush:
			lines[op.Addr]++
			burst++
			if burst > maxBurst {
				maxBurst = burst
			}
			computeBetweenFlushes = append(computeBetweenFlushes, sinceFlush)
			sinceFlush = 0
		case trace.Fence:
			burst = 0
		case trace.Compute:
			sinceFlush += op.Cycles
		}
	}
	flushBurst = maxBurst
	reused := 0
	for _, n := range lines {
		if n > 1 {
			reused++
		}
	}
	var gapSum sim.Cycle
	for _, g := range computeBetweenFlushes {
		gapSum += g
	}
	fmt.Printf("distinct lines %d flushed, %d (%.1f%%) flushed more than once\n",
		len(lines), reused, 100*float64(reused)/float64(len(lines)))
	fmt.Printf("max flush burst between fences: %d lines\n", flushBurst)
	if len(computeBetweenFlushes) > 0 {
		fmt.Printf("mean compute between flushes: %.0f cycles\n",
			float64(gapSum)/float64(len(computeBetweenFlushes)))
	}

	if *dump > 0 {
		fmt.Printf("\nfirst %d operations:\n", *dump)
		for i, op := range tr.Ops {
			if i >= *dump {
				break
			}
			switch op.Kind {
			case trace.Compute:
				fmt.Printf("%6d  compute %d cycles\n", i, op.Cycles)
			case trace.Fence, trace.TxBegin, trace.TxEnd:
				fmt.Printf("%6d  %s\n", i, op.Kind)
			default:
				fmt.Printf("%6d  %-7s %#x\n", i, op.Kind, op.Addr)
			}
		}
	}
}

func per(n, d int) float64 {
	if d == 0 {
		return 0
	}
	return float64(n) / float64(d)
}
