// Command dolos-sim runs one simulation: a workload under a controller
// scheme, printing the timing result and controller statistics.
//
// Usage:
//
//	dolos-sim -workload Hashmap -scheme dolos-partial -txns 1000
//	dolos-sim -workload Redis -scheme baseline -tree lazy -txsize 512
//	dolos-sim -workload Btree -scheme dolos-full -wpq 32 -stats
//	dolos-sim -workload Hashmap -json                      # machine-readable result
//	dolos-sim -workload Hashmap -trace run.json            # Perfetto/Chrome trace
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dolos/internal/cliutil"
	"dolos/internal/controller"
	"dolos/internal/cpu"
	"dolos/internal/masu"
	"dolos/internal/mcore"
	"dolos/internal/telemetry"
	"dolos/internal/whisper"
)

func main() {
	workload := flag.String("workload", "Hashmap", "workload: Hashmap, Ctree, Btree, RBtree, NStore:YCSB, Redis")
	scheme := flag.String("scheme", "dolos-partial", "scheme: "+strings.Join(cliutil.SchemeNames(), ", "))
	tree := flag.String("tree", "eager", "integrity backend: eager (BMT) or lazy (ToC)")
	txns := flag.Int("txns", 1000, "measured transactions")
	txSize := flag.Int("txsize", 1024, "transaction payload bytes (128-2048)")
	wpqSize := flag.Int("wpq", 16, "hardware WPQ entries")
	seed := flag.Int64("seed", 1, "workload seed")
	noCoalesce := flag.Bool("no-coalesce", false, "disable WPQ write coalescing")
	cores := flag.Int("cores", 1, "workload instances contending for one shared controller")
	oooWindow := flag.Int("ooo-window", 0, "out-of-order issue window (0 = in-order front-end)")
	showStats := flag.Bool("stats", false, "dump controller counters")
	jsonOut := flag.Bool("json", false, "emit the run result as JSON on stdout instead of text")
	traceOut := flag.String("trace", "", "write a Chrome trace-event JSON timeline to this path")
	fast := flag.Bool("fast", false, "latency-only crypto provider (bit-identical timing, no real AES/SHA-256)")
	pdes := flag.Bool("pdes", false, "parallel DES: pipeline functional crypto onto a second host core (ignored with -fast)")
	flag.Parse()

	sch, err := cliutil.ParseScheme(*scheme)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dolos-sim: %v\n", err)
		os.Exit(2)
	}
	kind, err := cliutil.ParseTree(*tree)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dolos-sim: %v\n", err)
		os.Exit(2)
	}

	w, err := whisper.ByName(*workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dolos-sim: %v\n", err)
		os.Exit(1)
	}

	cfg := controller.Config{
		Scheme:            sch,
		Tree:              kind,
		HardwareWPQ:       *wpqSize,
		DisableCoalescing: *noCoalesce,
		FastMode:          *fast,
		ParallelDES:       *pdes,
	}
	cfg.AESKey, cfg.MACKey = cliutil.DemoKeys("sim")
	// Some schemes pin the integrity backend (Phoenix is the lazy ToC by
	// definition); report the one the controller actually simulates.
	kind = cfg.EffectiveTree()

	if *cores > 1 {
		if cfg.ParallelDES && !cfg.FastMode {
			fmt.Fprintf(os.Stderr, "dolos-sim: -pdes with -cores > 1: %v\n", controller.ErrParallelDES)
			os.Exit(2)
		}
		runMulti(w, cfg, kind, *cores, *oooWindow, *txns, *txSize, *seed, *jsonOut, *showStats, *traceOut)
		return
	}

	tr := w.Generate(whisper.Params{Transactions: *txns, TxSize: *txSize, Seed: *seed})
	sys := cpu.NewSystem(cfg)
	if *traceOut != "" {
		// The probe is attached only on request: without -trace the run
		// takes the uninstrumented (nil-probe) fast path.
		sys.SetProbe(telemetry.NewProbe(sys.Eng.Now))
	}
	start := time.Now()
	var res cpu.Result
	if *oooWindow > 0 {
		fe := mcore.NewOoO(*oooWindow)
		res = sys.RunWith(tr, fe)
		res.OoOWindow = fe.Window()
		res.Prefetches = fe.Prefetches()
	} else {
		res = sys.Run(tr)
	}
	wall := time.Since(start)

	if *traceOut != "" {
		if err := writeTrace(*traceOut, sys.Probe()); err != nil {
			fmt.Fprintf(os.Stderr, "dolos-sim: %v\n", err)
			os.Exit(1)
		}
	}

	if *jsonOut {
		var reg *telemetry.Registry
		if p := sys.Probe(); p != nil {
			reg = p.Registry()
		}
		rec := cliutil.BuildRunRecord(res, kind, *txSize, *seed, sys.Eng.Processed(), wall, sys.Ctrl.Stats(), reg)
		rec.Mode = cliutil.ModeLabel(cfg.FastMode, cfg.ParallelDES)
		if err := telemetry.WriteJSON(os.Stdout, rec); err != nil {
			fmt.Fprintf(os.Stderr, "dolos-sim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("workload          %s\n", res.Workload)
	fmt.Printf("scheme            %s (%s, %d-entry hardware WPQ, %dB tx)\n",
		res.Scheme, kind, *wpqSize, *txSize)
	fmt.Printf("cycles            %d\n", res.Cycles)
	fmt.Printf("transactions      %d\n", res.Transactions)
	fmt.Printf("cycles/tx         %.0f\n", res.CyclesPerTx)
	fmt.Printf("CPI (per op)      %.2f\n", res.CPI)
	fmt.Printf("fence stalls      %d cycles\n", res.FenceStalls)
	fmt.Printf("write requests    %d\n", res.WriteRequests)
	fmt.Printf("retry events      %d (%.2f per KWR)\n", res.RetryEvents, res.RetryPerKWR)
	fmt.Printf("WPQ read hits     %d\n", res.WPQReadHits)
	fmt.Printf("mem reads         %d\n", res.MemReads)
	fmt.Printf("mean interarrival %.0f cycles\n", res.MeanInterarrival)
	fmt.Printf("mean WPQ occupancy %.1f entries\n", res.WPQMeanOccupancy)

	if *showStats {
		fmt.Println("\ncontroller counters:")
		fmt.Print(sys.Ctrl.Stats())
		fmt.Printf("\ncache hit rates: L1 %.1f%%  L2 %.1f%%  LLC %.1f%%\n",
			hitRate(sys.Hier.L1().Hits(), sys.Hier.L1().Misses()),
			hitRate(sys.Hier.L2().Hits(), sys.Hier.L2().Misses()),
			hitRate(sys.Hier.LLC().Hits(), sys.Hier.LLC().Misses()))
		cc, mc := sys.Ctrl.MetaCaches()
		fmt.Printf("metadata caches: counter %.1f%%  MT %.1f%%\n",
			hitRate(cc.Hits(), cc.Misses()),
			hitRate(mc.Hits(), mc.Misses()))
	}
}

// runMulti simulates n instances of the workload (per-core seeds,
// disjoint heaps) contending for one shared controller through the
// mcore arbiter, and prints the aggregate plus per-core results.
func runMulti(w whisper.Workload, cfg controller.Config, kind masu.TreeKind,
	n, window, txns, txSize int, seed int64, jsonOut, showStats bool, traceOut string) {
	if traceOut != "" {
		fmt.Fprintln(os.Stderr, "dolos-sim: -trace is not supported with -cores > 1")
		os.Exit(2)
	}
	specs := make([]mcore.CoreSpec, n)
	for i := range specs {
		coreSeed := mcore.CoreSeed(seed, i)
		specs[i] = mcore.CoreSpec{
			Workload: w.Name(),
			Seed:     coreSeed,
			Trace: w.Generate(whisper.Params{
				Transactions: txns, TxSize: txSize, Seed: coreSeed,
				HeapBase: mcore.CoreHeapBase(i),
			}),
		}
	}
	sys := mcore.NewSystem(mcore.Config{Ctrl: cfg, Window: window}, specs)
	start := time.Now()
	res := sys.Run()
	wall := time.Since(start)

	if jsonOut {
		rec := cliutil.BuildRunRecord(res, kind, txSize, seed, sys.Eng.Processed(), wall, sys.Ctrl.Stats(), nil)
		rec.Mode = cliutil.ModeLabel(cfg.FastMode, cfg.ParallelDES)
		if err := telemetry.WriteJSON(os.Stdout, rec); err != nil {
			fmt.Fprintf(os.Stderr, "dolos-sim: %v\n", err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("workload          %s × %d cores (OoO window %d)\n", res.Workload, res.Cores, res.OoOWindow)
	fmt.Printf("scheme            %s (%s, %d-entry shared WPQ, %dB tx)\n",
		res.Scheme, kind, cfg.HardwareWPQ, txSize)
	fmt.Printf("cycles            %d (slowest core)\n", res.Cycles)
	fmt.Printf("transactions      %d (all cores)\n", res.Transactions)
	fmt.Printf("cycles/tx         %.0f\n", res.CyclesPerTx)
	fmt.Printf("fence stalls      %d cycles (summed)\n", res.FenceStalls)
	fmt.Printf("write requests    %d\n", res.WriteRequests)
	fmt.Printf("retry events      %d (%.2f per KWR)\n", res.RetryEvents, res.RetryPerKWR)
	fmt.Printf("prefetches        %d\n", res.Prefetches)
	for _, pc := range res.PerCore {
		fmt.Printf("core %d            %s seed %d: %d cycles, %d tx, %d grants, %d wait cycles\n",
			pc.Core, pc.Workload, pc.Seed, pc.Cycles, pc.Transactions, pc.ArbGrants, pc.ArbWaitCycles)
	}

	if showStats {
		fmt.Println("\ncontroller counters:")
		fmt.Print(sys.Ctrl.Stats())
	}
}

func writeTrace(path string, p *telemetry.Probe) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := telemetry.WriteChromeTrace(f, p); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func hitRate(hits, misses uint64) float64 {
	if hits+misses == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(hits+misses)
}
