// Command dolos-serve runs the Dolos simulator as a long-lived service:
// a bounded job queue and worker pool over the experiment executor, an
// LRU result cache with single-flight deduplication, and a small HTTP
// API (see internal/service and DESIGN.md §10).
//
// Usage:
//
//	dolos-serve                          # :8080, GOMAXPROCS workers
//	dolos-serve -addr :9090 -workers 8 -queue 128 -cache 512
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/jobs -d '{"workloads":["Hashmap"],"schemes":["dolos-partial"]}'
//	curl -s localhost:8080/v1/jobs/j00000001/result
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM shut the server down gracefully: intake stops (503),
// queued and in-flight jobs drain, and the final Prometheus metrics
// snapshot is written to stderr before exit.
//
// Chaos mode arms the deterministic fault injector (internal/fault) at
// the server's named fault points:
//
//	dolos-serve -faults 'job-panic:0.2,queue-full:0.1,cell-latency:0.5:2ms' -faults-seed 42
//	DOLOS_FAULTS='cache-corrupt:1' DOLOS_FAULTS_SEED=7 dolos-serve
//
// The flag wins over the environment; with neither set, nothing is
// injected and the fault paths cost one nil check each.
//
// Durable and distributed mode (see README "Running a cluster" and
// DESIGN.md §16):
//
//	dolos-serve -store-dir /var/lib/dolos        # WAL-backed job store, crash recovery
//	dolos-serve -node-id n1 -peers 'n2=http://h2:8080,n3=http://h3:8080'
//	dolos-serve -tenant-quotas 'acme:5,*:100'    # per-tenant token buckets
//
// With -peers, grid cells are routed across the ring by their request
// hashes (consistent hashing), deduplicated cluster-wide, and streamed
// back per-cell over GET /v2/jobs/{id}/stream.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dolos/internal/cluster"
	"dolos/internal/fault"
	"dolos/internal/service"
	"dolos/internal/store"
	"dolos/internal/telemetry"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "max queued jobs before submissions get 429")
	cacheEntries := flag.Int("cache", 256, "LRU result cache capacity (entries)")
	maxBody := flag.Int64("max-body", 1<<20, "max request body bytes")
	timeout := flag.Duration("timeout", 2*time.Minute, "default per-job deadline (queue wait + execution)")
	txnsCap := flag.Int("txns-cap", 20000, "max transactions one request may ask for")
	cellsCap := flag.Int("cells-cap", 64, "max workloads×schemes cells per request")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Minute, "how long shutdown waits for in-flight jobs")
	faultSpec := flag.String("faults", os.Getenv("DOLOS_FAULTS"),
		"arm deterministic fault injection: point:rate[:delay],... (env DOLOS_FAULTS)")
	faultSeed := flag.Int64("faults-seed", envInt64("DOLOS_FAULTS_SEED", 1),
		"seed for the fault injector's PRNG (env DOLOS_FAULTS_SEED)")
	storeDir := flag.String("store-dir", "",
		"directory for the durable job store WAL (empty = in-memory only)")
	compactAt := flag.Int64("store-compact", 16<<20,
		"auto-compact the WAL into a snapshot past this many bytes (0 = never)")
	nodeID := flag.String("node-id", "", "this node's cluster identity (required with -peers)")
	peersSpec := flag.String("peers", "",
		"cluster peers as id=url,... (e.g. 'n2=http://h2:8080,n3=http://h3:8080')")
	quotaSpec := flag.String("tenant-quotas", "",
		"per-tenant token buckets as tenant:rate[:burst],... ('*' = catch-all)")
	flag.Parse()

	var injector *fault.Injector
	if *faultSpec != "" {
		var err error
		if injector, err = fault.FromSpec(*faultSeed, *faultSpec); err != nil {
			fmt.Fprintf(os.Stderr, "dolos-serve: -faults: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "dolos-serve: fault injection armed (seed %d): %s\n",
			*faultSeed, injector)
	}

	quotas, err := service.ParseQuotas(*quotaSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dolos-serve: -tenant-quotas: %v\n", err)
		os.Exit(2)
	}

	var st *store.Store
	if *storeDir != "" {
		st, err = store.Open(*storeDir, store.WithAutoCompact(*compactAt))
		if err != nil {
			fmt.Fprintf(os.Stderr, "dolos-serve: -store-dir: %v\n", err)
			os.Exit(1)
		}
		defer st.Close()
		fmt.Fprintf(os.Stderr, "dolos-serve: durable store at %s\n", *storeDir)
	}

	// Cluster and service share one registry so /metrics exposes both.
	reg := telemetry.NewRegistry()
	var ring *cluster.Cluster
	if *peersSpec != "" || *nodeID != "" {
		peers, err := parsePeers(*peersSpec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dolos-serve: -peers: %v\n", err)
			os.Exit(2)
		}
		ring, err = cluster.New(cluster.Config{SelfID: *nodeID, Peers: peers, Registry: reg})
		if err != nil {
			fmt.Fprintf(os.Stderr, "dolos-serve: %v\n", err)
			os.Exit(2)
		}
		ring.Start()
		defer ring.Close()
		fmt.Fprintf(os.Stderr, "dolos-serve: cluster node %s with %d peer(s)\n", *nodeID, len(peers))
	}

	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheEntries,
		MaxBodyBytes:   *maxBody,
		DefaultTimeout: *timeout,
		Limits: service.Limits{
			MaxTransactions: *txnsCap,
			MaxCells:        *cellsCap,
		},
		Faults:   injector,
		Store:    st,
		Cluster:  ring,
		Quotas:   quotas,
		Registry: reg,
	})

	httpServer := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "dolos-serve: listening on %s\n", *addr)

	select {
	case <-ctx.Done():
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "dolos-serve: %v\n", err)
		os.Exit(1)
	}

	// Drain order: first stop job intake and wait for in-flight work
	// (the HTTP listener stays up so clients can poll their jobs to
	// completion), then close the listener.
	fmt.Fprintln(os.Stderr, "dolos-serve: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "dolos-serve: drain: %v\n", err)
	}
	if err := httpServer.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "dolos-serve: http shutdown: %v\n", err)
	}
	if final := svc.FinalMetrics(); final != nil {
		fmt.Fprintln(os.Stderr, "dolos-serve: final metrics snapshot:")
		os.Stderr.Write(final)
	}
}

// parsePeers decodes the -peers flag: comma-separated id=url pairs.
func parsePeers(spec string) (map[string]string, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]string)
	for _, entry := range strings.Split(spec, ",") {
		id, url, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok || id == "" || url == "" {
			return nil, fmt.Errorf("peer entry %q: want id=url", entry)
		}
		out[id] = url
	}
	return out, nil
}

// envInt64 reads an int64 environment variable, falling back on
// absence or a parse failure.
func envInt64(key string, fallback int64) int64 {
	if v := os.Getenv(key); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return fallback
}
