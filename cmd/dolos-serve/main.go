// Command dolos-serve runs the Dolos simulator as a long-lived service:
// a bounded job queue and worker pool over the experiment executor, an
// LRU result cache with single-flight deduplication, and a small HTTP
// API (see internal/service and DESIGN.md §10).
//
// Usage:
//
//	dolos-serve                          # :8080, GOMAXPROCS workers
//	dolos-serve -addr :9090 -workers 8 -queue 128 -cache 512
//	curl -s localhost:8080/healthz
//	curl -s -X POST localhost:8080/v1/jobs -d '{"workloads":["Hashmap"],"schemes":["dolos-partial"]}'
//	curl -s localhost:8080/v1/jobs/j00000001/result
//	curl -s localhost:8080/metrics
//
// SIGINT/SIGTERM shut the server down gracefully: intake stops (503),
// queued and in-flight jobs drain, and the final Prometheus metrics
// snapshot is written to stderr before exit.
//
// Chaos mode arms the deterministic fault injector (internal/fault) at
// the server's named fault points:
//
//	dolos-serve -faults 'job-panic:0.2,queue-full:0.1,cell-latency:0.5:2ms' -faults-seed 42
//	DOLOS_FAULTS='cache-corrupt:1' DOLOS_FAULTS_SEED=7 dolos-serve
//
// The flag wins over the environment; with neither set, nothing is
// injected and the fault paths cost one nil check each.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"syscall"
	"time"

	"dolos/internal/fault"
	"dolos/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "simulation worker pool size (0 = GOMAXPROCS)")
	queue := flag.Int("queue", 64, "max queued jobs before submissions get 429")
	cacheEntries := flag.Int("cache", 256, "LRU result cache capacity (entries)")
	maxBody := flag.Int64("max-body", 1<<20, "max request body bytes")
	timeout := flag.Duration("timeout", 2*time.Minute, "default per-job deadline (queue wait + execution)")
	txnsCap := flag.Int("txns-cap", 20000, "max transactions one request may ask for")
	cellsCap := flag.Int("cells-cap", 64, "max workloads×schemes cells per request")
	drainTimeout := flag.Duration("drain-timeout", 5*time.Minute, "how long shutdown waits for in-flight jobs")
	faultSpec := flag.String("faults", os.Getenv("DOLOS_FAULTS"),
		"arm deterministic fault injection: point:rate[:delay],... (env DOLOS_FAULTS)")
	faultSeed := flag.Int64("faults-seed", envInt64("DOLOS_FAULTS_SEED", 1),
		"seed for the fault injector's PRNG (env DOLOS_FAULTS_SEED)")
	flag.Parse()

	var injector *fault.Injector
	if *faultSpec != "" {
		var err error
		if injector, err = fault.FromSpec(*faultSeed, *faultSpec); err != nil {
			fmt.Fprintf(os.Stderr, "dolos-serve: -faults: %v\n", err)
			os.Exit(2)
		}
		fmt.Fprintf(os.Stderr, "dolos-serve: fault injection armed (seed %d): %s\n",
			*faultSeed, injector)
	}

	svc := service.New(service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		CacheEntries:   *cacheEntries,
		MaxBodyBytes:   *maxBody,
		DefaultTimeout: *timeout,
		Limits: service.Limits{
			MaxTransactions: *txnsCap,
			MaxCells:        *cellsCap,
		},
		Faults: injector,
	})

	httpServer := &http.Server{Addr: *addr, Handler: svc.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpServer.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "dolos-serve: listening on %s\n", *addr)

	select {
	case <-ctx.Done():
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "dolos-serve: %v\n", err)
		os.Exit(1)
	}

	// Drain order: first stop job intake and wait for in-flight work
	// (the HTTP listener stays up so clients can poll their jobs to
	// completion), then close the listener.
	fmt.Fprintln(os.Stderr, "dolos-serve: draining")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := svc.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "dolos-serve: drain: %v\n", err)
	}
	if err := httpServer.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "dolos-serve: http shutdown: %v\n", err)
	}
	if final := svc.FinalMetrics(); final != nil {
		fmt.Fprintln(os.Stderr, "dolos-serve: final metrics snapshot:")
		os.Stderr.Write(final)
	}
}

// envInt64 reads an int64 environment variable, falling back on
// absence or a parse failure.
func envInt64(key string, fallback int64) int64 {
	if v := os.Getenv(key); v != "" {
		if n, err := strconv.ParseInt(v, 10, 64); err == nil {
			return n
		}
	}
	return fallback
}
