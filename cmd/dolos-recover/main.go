// Command dolos-recover demonstrates the crash-consistency and security
// machinery end to end: run a workload, cut power at a chosen cycle,
// drain the WPQ on the ADR reserve, optionally let an adversary tamper
// with the NVM image, then recover and audit every accepted write.
//
// Usage:
//
//	dolos-recover -workload Hashmap -crash 50000
//	dolos-recover -scheme dolos-post -crash 20000 -recovery osiris
//	dolos-recover -crash 30000 -attack spoof     (recovery must fail)
package main

import (
	"flag"
	"fmt"
	"os"

	"dolos/internal/attack"
	"dolos/internal/cliutil"
	"dolos/internal/controller"
	"dolos/internal/crash"
	"dolos/internal/layout"
	"dolos/internal/sim"
	"dolos/internal/whisper"
)

func main() {
	workload := flag.String("workload", "Hashmap", "workload to run")
	scheme := flag.String("scheme", "dolos-partial", "controller scheme")
	crashAt := flag.Uint64("crash", 50000, "cycle to cut power at")
	txns := flag.Int("txns", 200, "transactions in the trace")
	recovery := flag.String("recovery", "anubis", "recovery mode: anubis or osiris")
	attackKind := flag.String("attack", "", "tamper with NVM before recovery: spoof, replay, relocate, wpq")
	flag.Parse()

	sch, err := cliutil.ParseScheme(*scheme)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dolos-recover: %v\n", err)
		os.Exit(2)
	}
	mode := controller.AnubisRecovery
	if *recovery == "osiris" {
		mode = controller.OsirisRecovery
	}

	w, err := whisper.ByName(*workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dolos-recover: %v\n", err)
		os.Exit(1)
	}
	tr := w.Generate(whisper.Params{Transactions: *txns, TxSize: 512, Seed: 1, HeapSize: 32 << 20})

	lay := layout.Small()
	cfg := controller.Config{Scheme: sch, Layout: lay}
	cfg.AESKey, cfg.MACKey = cliutil.DemoKeys("recov")

	d, err := crash.NewDriver(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dolos-recover: %v\n", err)
		os.Exit(1)
	}
	sys := d.System()

	// Run to the crash point and cut power.
	sys.Start(tr)
	sys.Eng.RunUntil(sim.Cycle(*crashAt))
	fmt.Printf("power failure at cycle %d\n", sys.Eng.Now())

	crashRep, err := sys.Ctrl.Crash()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dolos-recover: ADR drain failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("ADR drain: %d live WPQ entries, %d bytes flushed (budget %d)\n",
		crashRep.LiveEntries, crashRep.BytesFlushed,
		controller.StandardADR(sys.Ctrl.Config().HardwareWPQ).FlushBytes)

	if *attackKind != "" {
		adv := attack.New(sys.Dev, 42)
		switch *attackKind {
		case "spoof":
			adv.Spoof(lay.DataBase+4096, 64)
		case "relocate":
			adv.Relocate(lay.DataBase+4096, lay.DataBase+4160)
		case "wpq":
			adv.Spoof(lay.DrainBase+16, 8)
		case "replay":
			// Snapshot-now / restore-now is a no-op; flip a MAC to model
			// a stale-MAC replay on one line.
			adv.FlipBit(lay.MACBase+8, 0)
		default:
			fmt.Fprintf(os.Stderr, "dolos-recover: unknown attack %q\n", *attackKind)
			os.Exit(2)
		}
		for _, l := range adv.Log() {
			fmt.Printf("adversary: %s\n", l)
		}
	}

	recRep, err := sys.Ctrl.Recover(mode)
	if err != nil {
		fmt.Printf("recovery REJECTED the memory image: %v\n", err)
		if *attackKind != "" {
			fmt.Println("attack detected — system refused to boot on tampered state")
			return
		}
		os.Exit(1)
	}
	fmt.Printf("recovery ok: %d WPQ writes replayed, %d metadata blocks restored, %d lines verified\n",
		recRep.WPQReplayed, recRep.MaSU.ShadowRestored, recRep.MaSU.LinesVerified)
	if *attackKind != "" {
		fmt.Fprintln(os.Stderr, "dolos-recover: ATTACK WAS NOT DETECTED")
		os.Exit(1)
	}

	// Final scrub: re-verify the entire protected working set.
	lines, err := sys.Ctrl.MaSU().Audit()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dolos-recover: post-recovery scrub failed: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("post-recovery scrub: %d lines clean\n", lines)
}
