// Command dolos-load is a closed-loop load generator for dolos-serve,
// built on the official client package: a pool of concurrent clients
// submits jobs through client.Run — which retries 429/503 rejections
// with backoff, honors Retry-After, and resubmits failed jobs — and
// reports throughput, latency percentiles, the cache hit rate, and the
// client's retry/resubmission counts.
//
// Usage:
//
//	dolos-load -addr http://127.0.0.1:8080 -duration 5s -concurrency 4
//	dolos-load -schemes dolos-partial,baseline -workloads Hashmap,Btree -rps 50
//	dolos-load -duration 5s -min-hits 1 -max-errors 0   # smoke-check mode (make load-smoke)
//	dolos-load -duration 5s -faults -max-errors 0       # chaos mode (make chaos-smoke)
//
// With -rps 0 (default) each client issues its next request as soon as
// the previous one completes; with -rps > 0 a shared pacer caps the
// aggregate submission rate. -min-hits/-max-errors turn the run into a
// pass/fail check. -faults declares that the server was started with
// fault injection armed: the run then also fails unless the client's
// retry/resubmission machinery actually fired — proving the resilience
// path absorbed the injected adversity rather than never meeting it.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"dolos/client"
)

type result struct {
	latency time.Duration
	ttfc    time.Duration // streaming: time to first cell
	cells   int           // streaming: cells delivered
	cached  bool
	err     error
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of dolos-serve")
	duration := flag.Duration("duration", 5*time.Second, "how long to generate load")
	concurrency := flag.Int("concurrency", 4, "concurrent closed-loop clients")
	rps := flag.Float64("rps", 0, "target aggregate requests/second (0 = unpaced closed loop)")
	workloads := flag.String("workloads", "Hashmap", "comma-separated workloads to rotate through")
	schemes := flag.String("schemes", "dolos-partial,baseline", "comma-separated schemes to rotate through")
	txns := flag.Int("txns", 100, "transactions per job")
	txSize := flag.Int("txsize", 1024, "transaction payload bytes")
	seed := flag.Int64("seed", 1, "workload seed")
	wait := flag.Duration("wait", 10*time.Second, "how long to wait for the server's /healthz before starting")
	minHits := flag.Int("min-hits", -1, "fail unless at least this many responses were cache hits (-1 = no check)")
	maxErrors := flag.Int("max-errors", -1, "fail if more than this many requests errored (-1 = no check)")
	faults := flag.Bool("faults", false,
		"the server has fault injection armed: fail unless the client retried or resubmitted at least once")
	stream := flag.Bool("stream", false,
		"submit full grids via POST /v2/jobs and consume per-cell SSE streams; reports time-to-first-cell percentiles")
	tenant := flag.String("tenant", "", "tenant identity sent as X-Dolos-Tenant on /v2 submissions")
	flag.Parse()

	if err := waitHealthy(*addr, *wait); err != nil {
		fmt.Fprintf(os.Stderr, "dolos-load: %v\n", err)
		os.Exit(1)
	}

	// One single-cell request per workload×scheme combination; clients
	// rotate through them, so every combination after its first
	// submission should be served from the result cache. Streaming mode
	// instead submits the whole grid in one request — that is what
	// exercises per-cell delivery.
	var reqs []client.Request
	if *stream {
		req := client.Request{Transactions: *txns, TxSize: *txSize, Seed: *seed}
		for _, wl := range strings.Split(*workloads, ",") {
			req.Workloads = append(req.Workloads, strings.TrimSpace(wl))
		}
		for _, sch := range strings.Split(*schemes, ",") {
			req.Schemes = append(req.Schemes, strings.TrimSpace(sch))
		}
		reqs = []client.Request{req}
	} else {
		for _, wl := range strings.Split(*workloads, ",") {
			for _, sch := range strings.Split(*schemes, ",") {
				reqs = append(reqs, client.Request{
					Workloads:    []string{strings.TrimSpace(wl)},
					Schemes:      []string{strings.TrimSpace(sch)},
					Transactions: *txns,
					TxSize:       *txSize,
					Seed:         *seed,
				})
			}
		}
	}

	var pace <-chan time.Time
	if *rps > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / *rps))
		defer t.Stop()
		pace = t.C
	}

	// One shared client: its single-flight layer mirrors production use,
	// and its retry/resubmission counters aggregate across the pool.
	cl := client.New(*addr, client.WithSeed(*seed),
		client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 8}))
	deadline := time.Now().Add(*duration)
	resultCh := make(chan result, 1024)
	var wg sync.WaitGroup
	var rotor int64
	var rotorMu sync.Mutex
	nextReq := func() client.Request {
		rotorMu.Lock()
		defer rotorMu.Unlock()
		r := reqs[rotor%int64(len(reqs))]
		rotor++
		return r
	}

	start := time.Now()
	wg.Add(*concurrency)
	for c := 0; c < *concurrency; c++ {
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if pace != nil {
					select {
					case <-pace:
					case <-time.After(time.Until(deadline)):
						return
					}
				}
				if *stream {
					resultCh <- runOneStream(cl, *tenant, nextReq(), deadline)
				} else {
					resultCh <- runOne(cl, nextReq(), deadline)
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(resultCh)
	}()

	var latencies, ttfcs []time.Duration
	var errorsSeen, hits, cellsDelivered int
	for r := range resultCh {
		if r.err != nil {
			errorsSeen++
			if errorsSeen <= 5 {
				fmt.Fprintf(os.Stderr, "dolos-load: request failed: %v\n", r.err)
			}
			continue
		}
		latencies = append(latencies, r.latency)
		if *stream {
			ttfcs = append(ttfcs, r.ttfc)
			cellsDelivered += r.cells
		}
		if r.cached {
			hits++
		}
	}
	elapsed := time.Since(start)

	total := len(latencies) + errorsSeen
	fmt.Printf("dolos-load: %d requests in %.1fs (%.1f req/s), %d errors\n",
		total, elapsed.Seconds(), float64(total)/elapsed.Seconds(), errorsSeen)
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		fmt.Printf("latency  p50 %s  p90 %s  p99 %s  max %s\n",
			percentile(latencies, 50), percentile(latencies, 90),
			percentile(latencies, 99), latencies[len(latencies)-1].Round(time.Microsecond))
		fmt.Printf("cache    %d hits / %d ok (%.1f%%)\n",
			hits, len(latencies), 100*float64(hits)/float64(len(latencies)))
	}
	if *stream && len(ttfcs) > 0 {
		sort.Slice(ttfcs, func(i, j int) bool { return ttfcs[i] < ttfcs[j] })
		fmt.Printf("stream   first-cell p50 %s  p90 %s  p99 %s; %d cells over %d streams\n",
			percentile(ttfcs, 50), percentile(ttfcs, 90), percentile(ttfcs, 99),
			cellsDelivered, len(ttfcs))
	}
	retries, resubmits := cl.Retries(), cl.Resubmits()
	fmt.Printf("resilience  %d retries, %d resubmissions\n", retries, resubmits)

	failed := false
	if *maxErrors >= 0 && errorsSeen > *maxErrors {
		fmt.Fprintf(os.Stderr, "dolos-load: FAIL: %d errors > allowed %d\n", errorsSeen, *maxErrors)
		failed = true
	}
	if *minHits >= 0 && hits < *minHits {
		fmt.Fprintf(os.Stderr, "dolos-load: FAIL: %d cache hits < required %d\n", hits, *minHits)
		failed = true
	}
	if *faults && retries+resubmits == 0 {
		fmt.Fprintln(os.Stderr, "dolos-load: FAIL: -faults set but the client never retried or resubmitted "+
			"— the injected adversity was not exercised")
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// runOne drives one request to a settled result through the client's
// retry machinery, returning the end-to-end latency and whether the
// result was served from the cache or a deduplicated flight.
func runOne(cl *client.Client, req client.Request, deadline time.Time) result {
	// The request budget extends past the load deadline so jobs
	// submitted near the end still settle.
	ctx, cancel := context.WithDeadline(context.Background(), deadline.Add(30*time.Second))
	defer cancel()
	start := time.Now()
	res, err := cl.Run(ctx, req)
	if err != nil {
		return result{err: err}
	}
	return result{latency: time.Since(start), cached: res.Job.Cached}
}

// runOneStream drives one grid job through the /v2 streaming surface:
// submit, open the SSE stream, and consume every per-cell event. The
// assertions ride along: the stream must deliver exactly the job's
// cell count, in order, exactly once — the Stream iterator already
// refuses duplicates and reconnects with Last-Event-ID on drops.
func runOneStream(cl *client.Client, tenant string, req client.Request, deadline time.Time) result {
	ctx, cancel := context.WithDeadline(context.Background(), deadline.Add(30*time.Second))
	defer cancel()
	v2 := cl.V2()
	v2.Tenant = tenant
	start := time.Now()
	job, err := v2.SubmitGrid(ctx, req)
	if err != nil {
		return result{err: err}
	}
	st, err := v2.Stream(ctx, job.ID)
	if err != nil {
		return result{err: err}
	}
	defer st.Close()
	var ttfc time.Duration
	next := 0
	for {
		ev, err := st.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			return result{err: err}
		}
		if ev.Index != next {
			return result{err: fmt.Errorf("stream out of order: cell %d, want %d", ev.Index, next)}
		}
		if next == 0 {
			ttfc = time.Since(start)
		}
		next++
	}
	if job.Cells > 0 && next != job.Cells {
		return result{err: fmt.Errorf("stream delivered %d/%d cells", next, job.Cells)}
	}
	return result{latency: time.Since(start), ttfc: ttfc, cells: next, cached: job.Cached}
}

func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)-1)*p + 50
	return sorted[idx/100].Round(time.Microsecond)
}

// waitHealthy polls GET /healthz until the server answers 200.
func waitHealthy(addr string, timeout time.Duration) error {
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	hc := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := hc.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s", addr, timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
