// Command dolos-load is a closed-loop load generator for dolos-serve:
// a pool of concurrent clients submits jobs, polls them to completion,
// and reports throughput, latency percentiles and the cache hit rate —
// a serving benchmark alongside the simulator benchmark.
//
// Usage:
//
//	dolos-load -addr http://127.0.0.1:8080 -duration 5s -concurrency 4
//	dolos-load -schemes dolos-partial,baseline -workloads Hashmap,Btree -rps 50
//	dolos-load -duration 5s -min-hits 1 -max-errors 0   # smoke-check mode (make load-smoke)
//
// With -rps 0 (default) each client issues its next request as soon as
// the previous one completes; with -rps > 0 a shared pacer caps the
// aggregate submission rate. -min-hits/-max-errors turn the run into a
// pass/fail check: the exit status is 1 when the run saw fewer cache
// hits or more errors than allowed.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"
)

type submitResponse struct {
	ID     string `json:"id"`
	Status string `json:"status"`
	Cached bool   `json:"cached"`
	Error  string `json:"error"`
}

type result struct {
	latency time.Duration
	cached  bool
	err     error
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "base URL of dolos-serve")
	duration := flag.Duration("duration", 5*time.Second, "how long to generate load")
	concurrency := flag.Int("concurrency", 4, "concurrent closed-loop clients")
	rps := flag.Float64("rps", 0, "target aggregate requests/second (0 = unpaced closed loop)")
	workloads := flag.String("workloads", "Hashmap", "comma-separated workloads to rotate through")
	schemes := flag.String("schemes", "dolos-partial,baseline", "comma-separated schemes to rotate through")
	txns := flag.Int("txns", 100, "transactions per job")
	txSize := flag.Int("txsize", 1024, "transaction payload bytes")
	seed := flag.Int64("seed", 1, "workload seed")
	wait := flag.Duration("wait", 10*time.Second, "how long to wait for the server's /healthz before starting")
	minHits := flag.Int("min-hits", -1, "fail unless at least this many responses were cache hits (-1 = no check)")
	maxErrors := flag.Int("max-errors", -1, "fail if more than this many requests errored (-1 = no check)")
	flag.Parse()

	// Accept both "host:port" and a full base URL.
	if !strings.Contains(*addr, "://") {
		*addr = "http://" + *addr
	}

	if err := waitHealthy(*addr, *wait); err != nil {
		fmt.Fprintf(os.Stderr, "dolos-load: %v\n", err)
		os.Exit(1)
	}

	// One single-cell request body per workload×scheme combination;
	// clients rotate through them, so every combination after its first
	// submission should be served from the result cache.
	var bodies [][]byte
	for _, wl := range strings.Split(*workloads, ",") {
		for _, sch := range strings.Split(*schemes, ",") {
			body, err := json.Marshal(map[string]any{
				"workloads":    []string{strings.TrimSpace(wl)},
				"schemes":      []string{strings.TrimSpace(sch)},
				"transactions": *txns,
				"tx_size":      *txSize,
				"seed":         *seed,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "dolos-load: %v\n", err)
				os.Exit(1)
			}
			bodies = append(bodies, body)
		}
	}

	var pace <-chan time.Time
	if *rps > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / *rps))
		defer t.Stop()
		pace = t.C
	}

	client := &http.Client{Timeout: 30 * time.Second}
	deadline := time.Now().Add(*duration)
	resultCh := make(chan result, 1024)
	var wg sync.WaitGroup
	var rotor int64
	var rotorMu sync.Mutex
	nextBody := func() []byte {
		rotorMu.Lock()
		defer rotorMu.Unlock()
		b := bodies[rotor%int64(len(bodies))]
		rotor++
		return b
	}

	start := time.Now()
	wg.Add(*concurrency)
	for c := 0; c < *concurrency; c++ {
		go func() {
			defer wg.Done()
			for time.Now().Before(deadline) {
				if pace != nil {
					select {
					case <-pace:
					case <-time.After(time.Until(deadline)):
						return
					}
				}
				resultCh <- runOne(client, *addr, nextBody(), deadline)
			}
		}()
	}
	go func() {
		wg.Wait()
		close(resultCh)
	}()

	var latencies []time.Duration
	var errorsSeen, hits int
	for r := range resultCh {
		if r.err != nil {
			errorsSeen++
			if errorsSeen <= 5 {
				fmt.Fprintf(os.Stderr, "dolos-load: request failed: %v\n", r.err)
			}
			continue
		}
		latencies = append(latencies, r.latency)
		if r.cached {
			hits++
		}
	}
	elapsed := time.Since(start)

	total := len(latencies) + errorsSeen
	fmt.Printf("dolos-load: %d requests in %.1fs (%.1f req/s), %d errors\n",
		total, elapsed.Seconds(), float64(total)/elapsed.Seconds(), errorsSeen)
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		fmt.Printf("latency  p50 %s  p90 %s  p99 %s  max %s\n",
			percentile(latencies, 50), percentile(latencies, 90),
			percentile(latencies, 99), latencies[len(latencies)-1].Round(time.Microsecond))
		fmt.Printf("cache    %d hits / %d ok (%.1f%%)\n",
			hits, len(latencies), 100*float64(hits)/float64(len(latencies)))
	}

	failed := false
	if *maxErrors >= 0 && errorsSeen > *maxErrors {
		fmt.Fprintf(os.Stderr, "dolos-load: FAIL: %d errors > allowed %d\n", errorsSeen, *maxErrors)
		failed = true
	}
	if *minHits >= 0 && hits < *minHits {
		fmt.Fprintf(os.Stderr, "dolos-load: FAIL: %d cache hits < required %d\n", hits, *minHits)
		failed = true
	}
	if failed {
		os.Exit(1)
	}
}

// runOne submits one job and polls it to completion, returning the
// submit-to-done latency and whether the result was served from cache.
func runOne(client *http.Client, addr string, body []byte, deadline time.Time) result {
	start := time.Now()
	resp, err := client.Post(addr+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return result{err: err}
	}
	sub, err := decodeSubmit(resp)
	if err != nil {
		return result{err: err}
	}
	// Poll until the job settles. The poll budget extends past the load
	// deadline so jobs submitted near the end still settle.
	pollDeadline := deadline.Add(30 * time.Second)
	for sub.Status != "done" && sub.Status != "failed" {
		if time.Now().After(pollDeadline) {
			return result{err: fmt.Errorf("job %s did not settle before the poll deadline", sub.ID)}
		}
		time.Sleep(5 * time.Millisecond)
		resp, err := client.Get(addr + "/v1/jobs/" + sub.ID)
		if err != nil {
			return result{err: err}
		}
		if sub, err = decodeSubmit(resp); err != nil {
			return result{err: err}
		}
	}
	if sub.Status == "failed" {
		return result{err: fmt.Errorf("job %s failed: %s", sub.ID, sub.Error)}
	}
	return result{latency: time.Since(start), cached: sub.Cached}
}

func decodeSubmit(resp *http.Response) (submitResponse, error) {
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		return submitResponse{}, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return submitResponse{}, fmt.Errorf("HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(b)))
	}
	var sub submitResponse
	if err := json.Unmarshal(b, &sub); err != nil {
		return submitResponse{}, err
	}
	return sub, nil
}

func percentile(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	idx := (len(sorted)-1)*p + 50
	return sorted[idx/100].Round(time.Microsecond)
}

// waitHealthy polls GET /healthz until the server answers 200.
func waitHealthy(addr string, timeout time.Duration) error {
	client := &http.Client{Timeout: time.Second}
	deadline := time.Now().Add(timeout)
	for {
		resp, err := client.Get(addr + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server at %s not healthy after %s", addr, timeout)
		}
		time.Sleep(100 * time.Millisecond)
	}
}
