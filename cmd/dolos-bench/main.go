// Command dolos-bench regenerates the tables and figures of the Dolos
// paper's evaluation (Section 5). Each experiment prints the same rows
// and series the paper reports; EXPERIMENTS.md records a reference run.
//
// Usage:
//
//	dolos-bench -exp all -txns 1000
//	dolos-bench -exp fig12
//	dolos-bench -exp fig15 -workloads Hashmap,Redis
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dolos/internal/core"
	"dolos/internal/stats"
)

var experiments = []string{
	"fig6", "fig12", "table2", "fig13", "fig14", "fig15", "fig16",
	"table3", "recovery", "adr", "ablate-coalesce", "ablate-cc",
	"ablate-backend", "ablate-osiris", "eadr", "writes", "tail", "variance",
	"contention", "schemes", "validate",
}

// contention experiment knobs (set from flags in main).
var (
	contentionCores  []int
	contentionWindow int
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: "+strings.Join(experiments, ", ")+", or all")
	txns := flag.Int("txns", 1000, "measured transactions per run (paper: 50000)")
	workloads := flag.String("workloads", "", "comma-separated workload subset (default: all six)")
	format := flag.String("format", "table", "output format: table or csv")
	seed := flag.Int64("seed", 1, "workload generator seed")
	parallel := flag.Int("parallel", 0, "concurrent simulations per sweep (0 = GOMAXPROCS, 1 = serial); tables are identical at any setting")
	coresFlag := flag.String("cores", "1,2,4,8", "comma-separated core counts for the contention experiment")
	oooWindow := flag.Int("ooo-window", 0, "OoO issue window for the contention experiment (0 = in-order)")
	fast := flag.Bool("fast", false, "latency-only crypto provider for every sweep cell (bit-identical tables, fraction of the wall-clock; crash/recovery experiments ignore it)")
	pdes := flag.Bool("pdes", false, "two-stage cost-count pipeline for every single-core sweep cell (bit-identical tables with full functional state; multi-core and crash/recovery cells stay serial; -fast wins when both are set)")
	flag.Parse()

	for _, s := range strings.Split(*coresFlag, ",") {
		var n int
		if _, err := fmt.Sscanf(strings.TrimSpace(s), "%d", &n); err != nil || n < 1 {
			fmt.Fprintf(os.Stderr, "dolos-bench: bad -cores entry %q\n", s)
			os.Exit(2)
		}
		contentionCores = append(contentionCores, n)
	}
	contentionWindow = *oooWindow

	opts := core.Options{Transactions: *txns, Seed: *seed, Parallelism: *parallel, FastMode: *fast, ParallelDES: *pdes}
	if *workloads != "" {
		opts.Workloads = strings.Split(*workloads, ",")
	}
	r := core.NewRunner(opts)
	asCSV = *format == "csv"

	selected := experiments
	if *exp != "all" {
		selected = strings.Split(*exp, ",")
	}
	for _, e := range selected {
		start := time.Now()
		if err := run(r, strings.TrimSpace(e)); err != nil {
			fmt.Fprintf(os.Stderr, "dolos-bench: %s: %v\n", e, err)
			os.Exit(1)
		}
		fmt.Printf("[%s completed in %.1fs]\n\n", e, time.Since(start).Seconds())
	}
}

// asCSV selects CSV output for tables.
var asCSV bool

// emit prints a table in the selected format.
func emit(t *stats.Table) {
	if asCSV {
		if t.Title != "" {
			fmt.Printf("# %s\n", t.Title)
		}
		fmt.Print(t.CSV())
		fmt.Println()
		return
	}
	fmt.Println(t)
}

func run(r *core.Runner, exp string) error {
	switch exp {
	case "fig6":
		t, err := r.Fig6()
		if err != nil {
			return err
		}
		emit(t)
	case "fig12":
		t, err := r.Fig12()
		if err != nil {
			return err
		}
		emit(t)
	case "table2":
		t, err := r.Table2()
		if err != nil {
			return err
		}
		emit(t)
	case "fig13":
		t, err := r.Fig13()
		if err != nil {
			return err
		}
		emit(t)
	case "fig14":
		t, err := r.Fig14()
		if err != nil {
			return err
		}
		emit(t)
	case "fig15":
		spd, rtr, err := r.Fig15()
		if err != nil {
			return err
		}
		emit(spd)
		emit(rtr)
	case "fig16":
		t, err := r.Fig16()
		if err != nil {
			return err
		}
		emit(t)
	case "table3":
		emit(core.Table3())
	case "recovery":
		fmt.Println("Section 5.5: Mi-SU recovery time estimates")
		for _, e := range core.Sec55Recovery() {
			fmt.Printf("%-18s entries=%-3d read=%-6d pads=%-5d drain=%-6d total=%d cycles (%.4f ms)\n",
				e.Design, e.Entries, e.ReadCycles, e.PadCycles, e.DrainCycles, e.TotalCycles, e.Milliseconds)
		}
		fmt.Println()
	case "adr":
		emit(core.ADRCompliance())
	case "ablate-coalesce":
		t, err := r.AblateCoalescing()
		if err != nil {
			return err
		}
		emit(t)
	case "ablate-cc":
		t, err := r.AblateCounterCache()
		if err != nil {
			return err
		}
		emit(t)
	case "ablate-backend":
		t, err := r.AblateBackend()
		if err != nil {
			return err
		}
		emit(t)
	case "ablate-osiris":
		t, err := r.AblateOsiris("Hashmap")
		if err != nil {
			return err
		}
		emit(t)
	case "eadr":
		t, err := r.EADRComparison()
		if err != nil {
			return err
		}
		emit(t)
	case "writes":
		t, err := r.WriteAmplification()
		if err != nil {
			return err
		}
		emit(t)
	case "tail":
		t, err := r.TailLatency()
		if err != nil {
			return err
		}
		emit(t)
	case "variance":
		t, err := r.SeedSweep(3)
		if err != nil {
			return err
		}
		emit(t)
	case "contention":
		t, err := r.Contention("Hashmap", contentionCores, contentionWindow)
		if err != nil {
			return err
		}
		emit(t)
	case "schemes":
		// Related-work comparison over the whole scheme registry:
		// single-core runtime + recovery axis, then the contended grid.
		t, err := r.SchemeComparison()
		if err != nil {
			return err
		}
		emit(t)
		t, err = r.SchemeContention("Hashmap", 2, contentionWindow)
		if err != nil {
			return err
		}
		emit(t)
	case "validate":
		claims, allPassed, err := r.Validate()
		if err != nil {
			return err
		}
		fmt.Print(core.FormatClaims(claims))
		if !allPassed {
			return fmt.Errorf("reproduction claims failed")
		}
		fmt.Println("\nall qualitative claims of the evaluation reproduce")
	default:
		return fmt.Errorf("unknown experiment %q (want one of %s)", exp, strings.Join(experiments, ", "))
	}
	return nil
}
