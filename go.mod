module dolos

go 1.22
