package dolos_test

import (
	"bytes"
	"flag"
	"go/ast"
	"go/doc"
	"go/parser"
	"go/printer"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

var updateAPI = flag.Bool("update-api", false,
	"rewrite testdata/api_surface.golden from the current source")

// TestPublicAPISurfacePinned pins the exported surface of the two
// public packages — dolos (the façade) and client (the service
// client) — against a golden file, in the style of the RunRecord
// schema pin in internal/cliutil. Every exported const, var, func,
// type declaration (struct fields included) and method signature is
// rendered from the source via go/doc; adding, renaming, or changing
// any of them must show up as a deliberate edit to the golden:
//
//	go test . -run TestPublicAPISurfacePinned -update-api
func TestPublicAPISurfacePinned(t *testing.T) {
	var b strings.Builder
	for i, pkg := range []struct{ dir, path string }{
		{".", "dolos"},
		{"client", "dolos/client"},
	} {
		if i > 0 {
			b.WriteString("\n")
		}
		b.WriteString(renderAPI(t, pkg.dir, pkg.path))
	}
	got := b.String()

	golden := filepath.Join("testdata", "api_surface.golden")
	if *updateAPI {
		if err := os.MkdirAll(filepath.Dir(golden), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", golden)
		return
	}

	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading %s: %v (run with -update-api to create it)", golden, err)
	}
	if got != string(want) {
		t.Fatalf("public API surface changed.\n"+
			"If the change is intentional, rerun with -update-api and commit the golden.\n%s",
			firstDiff(got, string(want)))
	}
}

// renderAPI renders one package's exported surface as sorted
// declaration lines.
func renderAPI(t *testing.T, dir, importPath string) string {
	t.Helper()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi fs.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var astPkg *ast.Package
	for _, p := range pkgs {
		astPkg = p
	}
	if astPkg == nil {
		t.Fatalf("no package found in %s", dir)
	}
	docPkg := doc.New(astPkg, importPath, 0)

	var entries []string
	add := func(s string) { entries = append(entries, s) }

	values := func(vals []*doc.Value) {
		for _, v := range vals {
			kind := "const"
			if v.Decl.Tok == token.VAR {
				kind = "var"
			}
			for _, name := range v.Names {
				if token.IsExported(name) {
					add(kind + " " + name)
				}
			}
		}
	}
	funcs := func(fns []*doc.Func) {
		for _, f := range fns {
			if token.IsExported(f.Name) {
				add(renderFunc(fset, f.Decl))
			}
		}
	}

	values(docPkg.Consts)
	values(docPkg.Vars)
	funcs(docPkg.Funcs)
	for _, typ := range docPkg.Types {
		if !token.IsExported(typ.Name) {
			continue
		}
		for _, spec := range typ.Decl.Specs {
			ts, ok := spec.(*ast.TypeSpec)
			if !ok || !token.IsExported(ts.Name.Name) {
				continue
			}
			add("type " + renderNode(fset, stripComments(ts)))
		}
		values(typ.Consts)
		values(typ.Vars)
		funcs(typ.Funcs)
		funcs(typ.Methods)
	}
	sort.Strings(entries)
	return "package " + importPath + "\n\n" + strings.Join(entries, "\n") + "\n"
}

// renderFunc prints a function or method signature without body or
// comments.
func renderFunc(fset *token.FileSet, decl *ast.FuncDecl) string {
	fd := *decl
	fd.Body = nil
	fd.Doc = nil
	return renderNode(fset, &fd)
}

func renderNode(fset *token.FileSet, node any) string {
	var buf bytes.Buffer
	cfg := printer.Config{Mode: printer.UseSpaces, Tabwidth: 4}
	if err := cfg.Fprint(&buf, fset, node); err != nil {
		return "<print error: " + err.Error() + ">"
	}
	return buf.String()
}

// stripComments deep-copies nothing but nils out doc comments inside a
// type spec so the golden holds only declarations, not prose.
func stripComments(ts *ast.TypeSpec) *ast.TypeSpec {
	cp := *ts
	cp.Doc, cp.Comment = nil, nil
	ast.Inspect(cp.Type, func(n ast.Node) bool {
		if f, ok := n.(*ast.Field); ok {
			f.Doc, f.Comment = nil, nil
		}
		return true
	})
	return &cp
}

// firstDiff points at the first differing line of two renderings.
func firstDiff(got, want string) string {
	g, w := strings.Split(got, "\n"), strings.Split(want, "\n")
	for i := 0; i < len(g) && i < len(w); i++ {
		if g[i] != w[i] {
			return "first difference at line " + itoa(i+1) + ":\n  got:  " + g[i] + "\n  want: " + w[i]
		}
	}
	if len(g) != len(w) {
		return "line counts differ: got " + itoa(len(g)) + ", want " + itoa(len(w))
	}
	return "renderings differ"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var digits []byte
	for ; n > 0; n /= 10 {
		digits = append([]byte{byte('0' + n%10)}, digits...)
	}
	return string(digits)
}
