package dolos

import "testing"

func TestSystemFacade(t *testing.T) {
	tr, err := GenerateTrace("Ctree", WorkloadParams{
		Transactions: 30, Warmup: 20, TxSize: 256, Seed: 4, HeapSize: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := SystemConfig{Scheme: DolosPartial, Tree: BMTEager, Layout: SmallAddressMap()}
	copy(cfg.AESKey[:], "facade-aes-key16")
	copy(cfg.MACKey[:], "facade-mac-key16")
	sys := NewSystem(cfg)
	res := sys.Run(tr)
	if res.Transactions < 30 || res.Cycles == 0 {
		t.Fatalf("degenerate run: %+v", res)
	}
}

func TestCrashFacade(t *testing.T) {
	tr, err := GenerateTrace("Hashmap", WorkloadParams{
		Transactions: 20, Warmup: 10, TxSize: 256, Seed: 4, HeapSize: 16 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := SystemConfig{Scheme: DolosPost, Layout: SmallAddressMap()}
	copy(cfg.AESKey[:], "facade-aes-key16")
	copy(cfg.MACKey[:], "facade-mac-key16")
	d, err := NewCrashDriver(cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := d.RunAndCrash(tr, 40_000, AnubisRecovery)
	if err != nil {
		t.Fatalf("crash experiment: %v (%+v)", err, out)
	}
}

func TestAdversaryFacade(t *testing.T) {
	cfg := SystemConfig{Scheme: DolosPartial, Layout: SmallAddressMap()}
	copy(cfg.AESKey[:], "facade-aes-key16")
	copy(cfg.MACKey[:], "facade-mac-key16")
	sys := NewSystem(cfg)
	var p [64]byte
	p[0] = 1
	sys.Ctrl.MaSU().ProcessWrite(0x1000, p, -1)
	adv := NewAdversary(sys.Dev, 1)
	adv.FlipBit(0x1000, 0)
	if _, _, err := sys.Ctrl.MaSU().ReadLine(0x1000); err == nil {
		t.Fatal("facade adversary tamper undetected")
	}
}

func TestTraceSaveLoadFacade(t *testing.T) {
	tr, err := GenerateTrace("TxStream", WorkloadParams{Transactions: 10, Warmup: 5, TxSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/t.trace"
	if err := tr.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTrace(path)
	if err != nil || got.Transactions != tr.Transactions {
		t.Fatalf("trace facade round trip: %v", err)
	}
}

func TestAddressMaps(t *testing.T) {
	if DefaultAddressMap().DataSpan != 16<<30 || SmallAddressMap().DataSpan != 64<<20 {
		t.Fatal("address map facades wrong")
	}
}
