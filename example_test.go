package dolos_test

import (
	"fmt"

	"dolos"
)

// The headline comparison: the same Hashmap trace under the baseline and
// under Dolos.
func ExampleSpeedup() {
	runner := dolos.NewRunner(dolos.Options{Transactions: 100})
	base, _ := runner.Run("Hashmap", dolos.Spec{Scheme: dolos.PreWPQSecure})
	fast, _ := runner.Run("Hashmap", dolos.Spec{Scheme: dolos.DolosPartial})
	fmt.Println(dolos.Speedup(base, fast) > 1.2)
	// Output: true
}

// Static results need no simulation: Table 3's storage overhead and the
// Section 5.5 recovery-time analysis.
func ExampleTable3() {
	t := dolos.Table3()
	fmt.Println(t.RowLabel(0), int(t.Cell(0, 0)), "bytes")
	// Output: Persistent Counter 8 bytes
}

// The Section 5.5 recovery estimate reproduces the paper's arithmetic
// exactly for the Full-WPQ design.
func ExampleSec55Recovery() {
	for _, e := range dolos.Sec55Recovery() {
		if e.Design.String() == "Full-WPQ-MiSU" {
			fmt.Println(e.TotalCycles, "cycles")
		}
	}
	// Output: 44480 cycles
}

// Workload traces are generated once and can be inspected or replayed
// under any scheme.
func ExampleGenerateTrace() {
	tr, _ := dolos.GenerateTrace("TxStream", dolos.WorkloadParams{
		Transactions: 10, Warmup: 5, TxSize: 128,
	})
	fmt.Println(tr.Name, tr.Transactions)
	// Output: TxStream 10
}
