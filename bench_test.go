// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 5). Each benchmark runs the corresponding
// experiment end to end — workload generation, trace replay through the
// simulated machine under every scheme involved — and reports the
// headline numbers as benchmark metrics, so
//
//	go test -bench=. -benchmem
//
// prints the reproduction alongside the harness cost. dolos-bench prints
// the full per-workload tables; EXPERIMENTS.md records a reference run.
package dolos_test

import (
	"testing"

	"dolos/internal/core"
	"dolos/internal/stats"
)

// benchTxns keeps a full figure regeneration in the tens of seconds;
// queueing steady state is reached well before this.
const benchTxns = 300

func newBenchRunner() *core.Runner {
	return core.NewRunner(core.Options{Transactions: benchTxns})
}

// reportColumns attaches each column's mean as a benchmark metric.
func reportColumns(b *testing.B, t *stats.Table, names ...string) {
	b.Helper()
	for i, n := range names {
		b.ReportMetric(stats.Mean(t.ColumnValues(i)), n)
	}
}

// BenchmarkFig06MotivationCPI regenerates Figure 6: CPI with security
// before the WPQ vs after it (paper: 2.1x average slowdown).
func BenchmarkFig06MotivationCPI(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		t, err := r.Fig6()
		if err != nil {
			b.Fatal(err)
		}
		reportColumns(b, t, "preCPI", "postCPI", "slowdown")
	}
}

// BenchmarkFig12SpeedupEager regenerates Figure 12: Dolos speedup with
// the eager BMT (paper: 1.66 / 1.66 / 1.59 for Full / Partial / Post).
func BenchmarkFig12SpeedupEager(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		t, err := r.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		reportColumns(b, t, "full-x", "partial-x", "post-x")
	}
}

// BenchmarkTable2RetryKWR regenerates Table 2: WPQ insertion retry
// events per kilo write requests.
func BenchmarkTable2RetryKWR(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		t, err := r.Table2()
		if err != nil {
			b.Fatal(err)
		}
		reportColumns(b, t, "full-rkwr", "partial-rkwr", "post-rkwr")
	}
}

// BenchmarkFig13RetrySweep regenerates Figure 13: Partial-WPQ retry
// pressure across transaction sizes 128 B - 2048 B.
func BenchmarkFig13RetrySweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		t, err := r.Fig13()
		if err != nil {
			b.Fatal(err)
		}
		reportColumns(b, t, "rkwr-128", "rkwr-256", "rkwr-512", "rkwr-1024", "rkwr-2048")
	}
}

// BenchmarkFig14SpeedupSweep regenerates Figure 14: Partial-WPQ speedup
// across transaction sizes (higher at small transactions).
func BenchmarkFig14SpeedupSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		t, err := r.Fig14()
		if err != nil {
			b.Fatal(err)
		}
		reportColumns(b, t, "x-128", "x-256", "x-512", "x-1024", "x-2048")
	}
}

// BenchmarkFig15WPQSizeSweep regenerates Figure 15: speedup vs WPQ size
// (paper: 1.66 / 1.85 / 1.87 / 1.88 — saturating past ~28 entries).
func BenchmarkFig15WPQSizeSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		spd, rtr, err := r.Fig15()
		if err != nil {
			b.Fatal(err)
		}
		reportColumns(b, spd, "x-wpq14", "x-wpq28", "x-wpq56", "x-wpq113")
		b.ReportMetric(stats.Mean(rtr.ColumnValues(0)), "rkwr-wpq14")
		b.ReportMetric(stats.Mean(rtr.ColumnValues(3)), "rkwr-wpq113")
	}
}

// BenchmarkFig16SpeedupLazy regenerates Figure 16: Dolos speedup with
// the lazy ToC backend (paper: 1.044 / 1.079 / 1.071).
func BenchmarkFig16SpeedupLazy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := newBenchRunner()
		t, err := r.Fig16()
		if err != nil {
			b.Fatal(err)
		}
		reportColumns(b, t, "full-x", "partial-x", "post-x")
	}
}

// BenchmarkTable3Storage regenerates Table 3: Mi-SU storage overhead.
func BenchmarkTable3Storage(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := core.Table3()
		b.ReportMetric(t.Cell(2, 0), "full-padB")
		b.ReportMetric(t.Cell(2, 1), "partial-padB")
		b.ReportMetric(t.Cell(2, 2), "post-padB")
	}
}

// BenchmarkSec55Recovery regenerates the Section 5.5 Mi-SU recovery-time
// estimate (paper: ~44480 cycles / ~0.01 ms for Full-WPQ).
func BenchmarkSec55Recovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ests := core.Sec55Recovery()
		for _, e := range ests {
			switch e.Design.String() {
			case "Full-WPQ-MiSU":
				b.ReportMetric(float64(e.TotalCycles), "full-cyc")
			case "Partial-WPQ-MiSU":
				b.ReportMetric(float64(e.TotalCycles), "partial-cyc")
			case "Post-WPQ-MiSU":
				b.ReportMetric(float64(e.TotalCycles), "post-cyc")
			}
		}
	}
}

// BenchmarkADRCompliance audits that every design's crash drain fits the
// standard ADR budget (the paper's central hardware constraint).
func BenchmarkADRCompliance(b *testing.B) {
	for i := 0; i < b.N; i++ {
		t := core.ADRCompliance()
		for row := 0; row < t.Rows(); row++ {
			if t.Cell(row, 0) > t.Cell(row, 1) || t.Cell(row, 2) > t.Cell(row, 3) {
				b.Fatalf("%s exceeds the ADR budget", t.RowLabel(row))
			}
		}
		b.ReportMetric(t.Cell(0, 0), "full-bytes")
		b.ReportMetric(t.Cell(1, 0), "partial-bytes")
	}
}

// BenchmarkExtEADRComparison measures how much of the extended-ADR
// platform bound Dolos captures within the standard ADR budget.
func BenchmarkExtEADRComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.NewRunner(core.Options{Transactions: benchTxns, Workloads: []string{"Hashmap", "Redis"}})
		t, err := r.EADRComparison()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(stats.Mean(t.ColumnValues(0)), "eadr-x")
		b.ReportMetric(stats.Mean(t.ColumnValues(1)), "dolos-x")
		b.ReportMetric(stats.Mean(t.ColumnValues(2)), "frac")
	}
}

// BenchmarkExtTailLatency measures p99 transaction-latency improvement.
func BenchmarkExtTailLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.NewRunner(core.Options{Transactions: benchTxns, Workloads: []string{"Hashmap"}})
		t, err := r.TailLatency()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Cell(0, 4), "p99-x")
	}
}

// BenchmarkExtWriteAmplification measures NVM write amplification.
func BenchmarkExtWriteAmplification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.NewRunner(core.Options{Transactions: benchTxns, Workloads: []string{"Hashmap"}})
		t, err := r.WriteAmplification()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Cell(0, 0), "wpl-base")
		b.ReportMetric(t.Cell(0, 1), "wpl-dolos")
	}
}

// BenchmarkAblateCoalescing measures the WPQ write-coalescing ablation
// (DESIGN.md §6) on the coalescing-friendly YCSB workload.
func BenchmarkAblateCoalescing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		r := core.NewRunner(core.Options{Transactions: benchTxns, Workloads: []string{"NStore:YCSB"}})
		t, err := r.AblateCoalescing()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t.Cell(0, 0), "x-coalesce-on")
		b.ReportMetric(t.Cell(0, 1), "x-coalesce-off")
	}
}
