package dolos

import (
	"dolos/internal/attack"
	"dolos/internal/controller"
	"dolos/internal/cpu"
	"dolos/internal/crash"
	"dolos/internal/layout"
	"dolos/internal/nvm"
	"dolos/internal/sim"
	"dolos/internal/trace"
	"dolos/internal/whisper"
)

// Lower-level facade: full machine construction, workload generation,
// crash orchestration and the adversary, for users who need more than
// the Runner's experiment API.

// SystemConfig parameterizes a secure memory controller (scheme, tree,
// WPQ size, metadata caches, keys).
type SystemConfig = controller.Config

// System is a complete simulated machine: engine, caches, controller,
// NVM device.
type System = cpu.System

// Trace is a recorded workload operation stream.
type Trace = trace.Trace

// WorkloadParams configures a workload generation run.
type WorkloadParams = whisper.Params

// AddressMap is the NVM physical address map.
type AddressMap = layout.Map

// Cycle is simulated time in 4 GHz CPU cycles.
type Cycle = sim.Cycle

// RecoveryMode selects Anubis (shadow replay) or Osiris (ECC probing)
// metadata recovery.
type RecoveryMode = controller.RecoveryMode

// Recovery modes.
const (
	// AnubisRecovery replays the shadow-tracker region (fast path).
	AnubisRecovery = controller.AnubisRecovery
	// OsirisRecovery probes counters against stored ECC (slow path).
	OsirisRecovery = controller.OsirisRecovery
)

// CrashDriver runs power-failure experiments with durability auditing.
type CrashDriver = crash.Driver

// CrashOutcome reports a crash-recovery experiment.
type CrashOutcome = crash.Outcome

// Adversary tampers with the NVM image per the paper's threat model.
type Adversary = attack.Adversary

// NewSystem builds a complete simulated machine for the configuration.
func NewSystem(cfg SystemConfig) *System { return cpu.NewSystem(cfg) }

// NewCrashDriver builds a machine with crash-audit instrumentation.
// It refuses FastMode or ParallelDES configs with a typed error
// (masu.ErrFastMode / controller.ErrParallelDES): crash experiments
// need real crypto resident on the timing stage.
func NewCrashDriver(cfg SystemConfig) (*CrashDriver, error) { return crash.NewDriver(cfg) }

// NewAdversary binds an adversary to a device (reproducible via seed).
func NewAdversary(dev *nvm.Device, seed int64) *Adversary { return attack.New(dev, seed) }

// GenerateTrace runs the named workload and returns its memory trace.
func GenerateTrace(workload string, p WorkloadParams) (*Trace, error) {
	w, err := whisper.ByName(workload)
	if err != nil {
		return nil, err
	}
	return w.Generate(p), nil
}

// LoadTrace reads a trace saved with Trace.SaveFile.
func LoadTrace(path string) (*Trace, error) { return trace.LoadFile(path) }

// SmallAddressMap returns the compact test address map (64 MB of data);
// DefaultAddressMap returns the paper's 16 GB configuration.
func SmallAddressMap() AddressMap { return layout.Small() }

// DefaultAddressMap returns the Table 1 address map.
func DefaultAddressMap() AddressMap { return layout.Default() }
