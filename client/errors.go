package client

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Sentinel errors of the client API. Every error the client returns
// wraps the matching sentinel, so errors.Is works end-to-end from the
// HTTP status the server sent to the caller's switch:
//
//	res, err := cl.Run(ctx, req)
//	switch {
//	case errors.Is(err, client.ErrQueueFull):   // server said 429
//	case errors.Is(err, client.ErrUnavailable): // server said 503 (draining)
//	case errors.Is(err, client.ErrJobNotFound): // server said 404
//	case errors.Is(err, client.ErrJobFailed):   // job settled "failed"
//	}
var (
	// ErrQueueFull reports a 429: the server's job queue is saturated.
	// Submit and Run retry it automatically, honoring Retry-After; it
	// surfaces only once the retry budget is spent.
	ErrQueueFull = errors.New("client: server job queue is full")
	// ErrUnavailable reports a 503: the server is draining or down for
	// the moment. Retried like ErrQueueFull.
	ErrUnavailable = errors.New("client: server unavailable")
	// ErrJobNotFound reports a 404 for a job id the server does not
	// know. Not retried — a new id requires a new submission.
	ErrJobNotFound = errors.New("client: unknown job id")
	// ErrJobFailed reports a job that settled in status "failed"; the
	// wrapping error carries the server's failure cause. Run resubmits
	// failed jobs (idempotently) before surfacing this.
	ErrJobFailed = errors.New("client: job failed")
	// ErrJobNotDone reports a Result call on a job that has not settled
	// yet. WaitResult is the polling entry point that never returns it.
	ErrJobNotDone = errors.New("client: job not done")
)

// StatusError is an HTTP-level rejection from the server: the status
// code, the server's error message, and any Retry-After hint. It
// unwraps to the matching sentinel (429 → ErrQueueFull, 503 →
// ErrUnavailable, 404 → ErrJobNotFound), so callers rarely need the
// type itself.
type StatusError struct {
	Code       int
	Message    string
	RetryAfter time.Duration
	// APICode is the server's stable machine-readable error code from
	// the versioned envelope ("queue_full", "quota_exceeded", ...).
	// Empty when the server predates the envelope.
	APICode string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("client: HTTP %d: %s", e.Code, e.Message)
}

// Unwrap maps the status code onto the client's sentinel errors.
func (e *StatusError) Unwrap() error {
	switch e.Code {
	case http.StatusTooManyRequests:
		return ErrQueueFull
	case http.StatusServiceUnavailable:
		return ErrUnavailable
	case http.StatusNotFound:
		return ErrJobNotFound
	}
	return nil
}

// statusError builds a StatusError from a non-2xx response whose body
// has already been read.
func statusError(resp *http.Response, body []byte) *StatusError {
	msg := strings.TrimSpace(string(body))
	var envelope struct {
		Code       string `json:"code"`
		Message    string `json:"message"`
		RetryAfter int64  `json:"retry_after"`
		Error      string `json:"error"` // legacy pre-envelope key
	}
	se := &StatusError{
		Code:       resp.StatusCode,
		RetryAfter: parseRetryAfter(resp.Header.Get("Retry-After")),
	}
	if err := json.Unmarshal(body, &envelope); err == nil {
		switch {
		case envelope.Message != "":
			msg = envelope.Message
		case envelope.Error != "":
			msg = envelope.Error
		}
		se.APICode = envelope.Code
		if se.RetryAfter == 0 && envelope.RetryAfter > 0 {
			se.RetryAfter = time.Duration(envelope.RetryAfter) * time.Second
		}
	}
	se.Message = msg
	return se
}

// parseRetryAfter decodes a Retry-After header: delay-seconds or an
// HTTP date (0 when absent or unparseable).
func parseRetryAfter(h string) time.Duration {
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil && secs >= 0 {
		return time.Duration(secs) * time.Second
	}
	if at, err := http.ParseTime(h); err == nil {
		if d := time.Until(at); d > 0 {
			return d
		}
	}
	return 0
}
