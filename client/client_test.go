package client

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestClient wires a Client to handler with the backoff sleep
// replaced by a recorder, so tests observe the exact delay sequence
// without waiting it out.
func newTestClient(t *testing.T, handler http.Handler, opts ...Option) (*Client, *[]time.Duration) {
	t.Helper()
	srv := httptest.NewServer(handler)
	t.Cleanup(srv.Close)
	c := New(srv.URL, opts...)
	var mu sync.Mutex
	slept := &[]time.Duration{}
	c.sleepFn = func(ctx context.Context, d time.Duration) error {
		mu.Lock()
		*slept = append(*slept, d)
		mu.Unlock()
		return ctx.Err()
	}
	return c, slept
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// TestSubmitRetriesQueueFull: 429s with Retry-After are retried, the
// server's hint overrides the computed backoff, and the eventual 202
// succeeds.
func TestSubmitRetriesQueueFull(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Retry-After", "3")
			writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "job queue is full"})
			return
		}
		writeJSON(w, http.StatusAccepted, Job{ID: "j1", Status: StatusQueued})
	})
	c, slept := newTestClient(t, h)

	job, err := c.Submit(context.Background(), Request{Workloads: []string{"Hashmap"}})
	if err != nil {
		t.Fatal(err)
	}
	if job.ID != "j1" || job.Status != StatusQueued {
		t.Fatalf("job = %+v", job)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d submits, want 3", got)
	}
	if c.Retries() != 2 {
		t.Fatalf("Retries() = %d, want 2", c.Retries())
	}
	if len(*slept) != 2 {
		t.Fatalf("slept %v, want 2 delays", *slept)
	}
	for i, d := range *slept {
		if d != 3*time.Second {
			t.Errorf("delay %d = %v, want the Retry-After 3s", i, d)
		}
	}
}

// TestSubmitGivesUp: a server that always says 503 exhausts the retry
// budget and surfaces ErrUnavailable (and ErrQueueFull for 429).
func TestSubmitGivesUp(t *testing.T) {
	var calls atomic.Int64
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "draining"})
	})
	c, _ := newTestClient(t, h, WithRetryPolicy(RetryPolicy{MaxAttempts: 3}))

	_, err := c.Submit(context.Background(), Request{})
	if !errors.Is(err, ErrUnavailable) {
		t.Fatalf("err = %v, want ErrUnavailable", err)
	}
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want a 503 StatusError in the chain", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d submits, want MaxAttempts=3", got)
	}
}

// TestBackoffDeterminism: two clients with the same seed compute the
// same jittered delay sequence; the sequence grows exponentially and
// caps at MaxDelay.
func TestBackoffDeterminism(t *testing.T) {
	policy := RetryPolicy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond,
		Multiplier: 2, Jitter: 0.2, MaxAttempts: 6}
	a := New("127.0.0.1:0", WithSeed(42), WithRetryPolicy(policy))
	b := New("127.0.0.1:0", WithSeed(42), WithRetryPolicy(policy))
	for i := 0; i < 6; i++ {
		da, db := a.backoff(i), b.backoff(i)
		if da != db {
			t.Fatalf("attempt %d: %v vs %v — same seed must give same delays", i, da, db)
		}
		lo := time.Duration(float64(policy.BaseDelay) * 0.8 * pow2(i))
		hi := time.Duration(float64(policy.MaxDelay) * 1.2)
		if da < lo/1 && float64(da) < float64(policy.MaxDelay)*0.8 {
			t.Errorf("attempt %d: delay %v below jitter floor %v", i, da, lo)
		}
		if da > hi {
			t.Errorf("attempt %d: delay %v above MaxDelay+jitter %v", i, da, hi)
		}
	}
}

func pow2(n int) float64 {
	f := 1.0
	for i := 0; i < n; i++ {
		f *= 2
	}
	return f
}

// TestRunPollsToDone: Run submits, polls through queued → running →
// done, fetches the result bytes.
func TestRunPollsToDone(t *testing.T) {
	statuses := []Status{StatusQueued, StatusRunning, StatusDone}
	var polls atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusAccepted, Job{ID: "j7", Status: StatusQueued, QueuePosition: 1})
	})
	mux.HandleFunc("GET /v1/jobs/j7", func(w http.ResponseWriter, r *http.Request) {
		i := polls.Add(1) - 1
		if i >= int64(len(statuses)) {
			i = int64(len(statuses)) - 1
		}
		writeJSON(w, http.StatusOK, Job{ID: "j7", Status: statuses[i]})
	})
	mux.HandleFunc("GET /v1/jobs/j7/result", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`[{"workload":"Hashmap"}]`))
	})
	c, _ := newTestClient(t, mux)

	res, err := c.Run(context.Background(), Request{Workloads: []string{"Hashmap"}})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Bytes) != `[{"workload":"Hashmap"}]` {
		t.Fatalf("bytes = %q", res.Bytes)
	}
	if res.Job.Status != StatusDone {
		t.Fatalf("job = %+v", res.Job)
	}
}

// TestRunResubmitsFailedJob: a job that settles "failed" is
// resubmitted; the second submission succeeds and Run returns its
// result, counting one resubmit.
func TestRunResubmitsFailedJob(t *testing.T) {
	var submits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("j%d", submits.Add(1))
		writeJSON(w, http.StatusAccepted, Job{ID: id, Status: StatusQueued})
	})
	mux.HandleFunc("GET /v1/jobs/j1", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Job{ID: "j1", Status: StatusFailed, Err: "injected panic"})
	})
	mux.HandleFunc("GET /v1/jobs/j2", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Job{ID: "j2", Status: StatusDone})
	})
	mux.HandleFunc("GET /v1/jobs/j2/result", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`[{"ok":true}]`))
	})
	c, _ := newTestClient(t, mux)

	res, err := c.Run(context.Background(), Request{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if string(res.Bytes) != `[{"ok":true}]` {
		t.Fatalf("bytes = %q", res.Bytes)
	}
	if c.Resubmits() != 1 {
		t.Fatalf("Resubmits() = %d, want 1", c.Resubmits())
	}
}

// TestRunGivesUpOnPersistentFailure: jobs that always fail exhaust the
// resubmission budget and surface ErrJobFailed with the server cause.
func TestRunGivesUpOnPersistentFailure(t *testing.T) {
	var submits atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusAccepted, Job{ID: fmt.Sprintf("j%d", submits.Add(1)), Status: StatusQueued})
	})
	mux.HandleFunc("GET /v1/jobs/", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, Job{ID: "j", Status: StatusFailed, Err: "boom"})
	})
	c, _ := newTestClient(t, mux, WithRetryPolicy(RetryPolicy{MaxAttempts: 2}))

	_, err := c.Run(context.Background(), Request{})
	if !errors.Is(err, ErrJobFailed) {
		t.Fatalf("err = %v, want ErrJobFailed", err)
	}
	if got := submits.Load(); got != 2 {
		t.Fatalf("server saw %d submits, want MaxAttempts=2", got)
	}
	if c.Resubmits() != 1 {
		t.Fatalf("Resubmits() = %d, want 1", c.Resubmits())
	}
}

// TestStatusNotFound: an unknown job id matches ErrJobNotFound.
func TestStatusNotFound(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusNotFound, map[string]string{"error": "unknown job"})
	})
	c, _ := newTestClient(t, h)

	if _, err := c.Status(context.Background(), "nope"); !errors.Is(err, ErrJobNotFound) {
		t.Fatalf("Status err = %v, want ErrJobNotFound", err)
	}
	if _, err := c.Result(context.Background(), "nope"); !errors.Is(err, ErrJobNotFound) {
		t.Fatalf("Result err = %v, want ErrJobNotFound", err)
	}
}

// TestResultNotDone: Result on an unsettled job matches ErrJobNotDone.
func TestResultNotDone(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusAccepted, Job{ID: "j1", Status: StatusRunning})
	})
	c, _ := newTestClient(t, h)
	if _, err := c.Result(context.Background(), "j1"); !errors.Is(err, ErrJobNotDone) {
		t.Fatalf("err = %v, want ErrJobNotDone", err)
	}
}

// TestRunSingleFlight: concurrent Runs of the identical request share
// one submission.
func TestRunSingleFlight(t *testing.T) {
	var submits atomic.Int64
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		submits.Add(1)
		<-release
		writeJSON(w, http.StatusOK, Job{ID: "j1", Status: StatusDone, Cached: true})
	})
	mux.HandleFunc("GET /v1/jobs/j1/result", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`[{}]`))
	})
	srv := httptest.NewServer(mux)
	t.Cleanup(srv.Close)
	c := New(srv.URL)

	req := Request{Workloads: []string{"Hashmap"}, Seed: 3}
	const callers = 8
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Run(context.Background(), req)
		}(i)
	}
	// Let the followers pile onto the leader's flight before the server
	// answers.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d: %v", i, err)
		}
	}
	if got := submits.Load(); got != 1 {
		t.Fatalf("server saw %d submits, want 1 (single-flight)", got)
	}
}

// TestContextCancelPropagates: a cancelled context stops the retry
// loop immediately with the context's error, not a retry exhaustion.
func TestContextCancelPropagates(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": "full"})
	})
	c, _ := newTestClient(t, h)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := c.Submit(ctx, Request{})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestParseRetryAfter covers the seconds and HTTP-date forms.
func TestParseRetryAfter(t *testing.T) {
	if d := parseRetryAfter("2"); d != 2*time.Second {
		t.Errorf("seconds form = %v", d)
	}
	if d := parseRetryAfter(""); d != 0 {
		t.Errorf("empty = %v", d)
	}
	if d := parseRetryAfter("garbage"); d != 0 {
		t.Errorf("garbage = %v", d)
	}
	future := time.Now().Add(5 * time.Second).UTC().Format(http.TimeFormat)
	if d := parseRetryAfter(future); d <= 0 || d > 5*time.Second {
		t.Errorf("http-date form = %v", d)
	}
}

// TestHashStability: the idempotency key is stable across calls and
// distinguishes distinct requests.
func TestHashStability(t *testing.T) {
	a := Request{Workloads: []string{"Hashmap"}, Seed: 1}
	b := Request{Workloads: []string{"Hashmap"}, Seed: 1}
	if a.Hash() != b.Hash() {
		t.Fatal("equal requests must hash equal")
	}
	c := Request{Workloads: []string{"Hashmap"}, Seed: 2}
	if a.Hash() == c.Hash() {
		t.Fatal("distinct requests must hash distinct")
	}
}
