package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
)

// V2 returns the client's /v2 API surface: context-first submission,
// resumable result streaming, and cluster introspection. The same
// retry policy, backoff and HTTP client as the v1 methods apply.
func (c *Client) V2() *V2Client { return &V2Client{c: c} }

// V2Client speaks the /v2 API of one dolos-serve node (or the
// coordinator of a cluster — any node can accept any job).
type V2Client struct {
	c *Client
	// Tenant, when set, is sent as X-Dolos-Tenant on submissions, which
	// attributes the job in the audit trail and selects its quota
	// bucket.
	Tenant string
}

// JobV2 is the server's /v2 job envelope.
type JobV2 struct {
	ID            string `json:"id"`
	Status        Status `json:"status"`
	Tenant        string `json:"tenant,omitempty"`
	Cached        bool   `json:"cached"`
	Cells         int    `json:"cells"`
	CellsDone     int    `json:"cells_done"`
	QueuePosition int    `json:"queue_position,omitempty"`
	Err           string `json:"error,omitempty"`
}

// ClusterNode is one row of the /v2/cluster view.
type ClusterNode struct {
	ID    string  `json:"id"`
	Addr  string  `json:"addr,omitempty"`
	Self  bool    `json:"self,omitempty"`
	Alive bool    `json:"alive"`
	Share float64 `json:"keyspace_share"`
}

// ClusterInfo is the /v2/cluster view: ring membership, health and
// keyspace shares.
type ClusterInfo struct {
	Self        string        `json:"self"`
	RingVersion uint64        `json:"ring_version"`
	Nodes       []ClusterNode `json:"nodes"`
}

// StreamEvent is one cell's result pushed over /v2/jobs/{id}/stream:
// the cell's index in grid enumeration order, the grid size, and the
// cell's RunRecord JSON.
type StreamEvent struct {
	Index  int             `json:"index"`
	Total  int             `json:"total"`
	Record json.RawMessage `json:"record"`

	failure string // terminal failed event's cause (internal)
}

// SubmitGrid posts the request to POST /v2/jobs, retrying 429/503 and
// transport errors per the client's policy, and returns the job
// envelope (status "done" on a submission-time cache hit).
func (v *V2Client) SubmitGrid(ctx context.Context, req Request) (*JobV2, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	c := v.c
	var last error
	for attempt := 0; attempt < c.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
		}
		job, err := v.postOnce(ctx, body)
		if err == nil {
			return job, nil
		}
		last = err
		if !retryable(err) || attempt == c.policy.MaxAttempts-1 {
			break
		}
		d := c.backoff(attempt)
		var se *StatusError
		if errors.As(err, &se) && se.RetryAfter > 0 {
			d = se.RetryAfter
		}
		if err := c.sleep(ctx, d); err != nil {
			return nil, errors.Join(err, last)
		}
	}
	return nil, fmt.Errorf("client: v2 submit gave up after %d attempts: %w",
		c.policy.MaxAttempts, last)
}

func (v *V2Client) postOnce(ctx context.Context, body []byte) (*JobV2, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		v.c.base+"/v2/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if v.Tenant != "" {
		req.Header.Set("X-Dolos-Tenant", v.Tenant)
	}
	resp, err := v.c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	b, err := readBody(resp)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, statusError(resp, b)
	}
	var job JobV2
	if err := json.Unmarshal(b, &job); err != nil {
		return nil, fmt.Errorf("client: malformed v2 submit response: %w", err)
	}
	return &job, nil
}

// Status fetches a job's /v2 envelope.
func (v *V2Client) Status(ctx context.Context, id string) (*JobV2, error) {
	b, resp, err := v.c.get(ctx, "/v2/jobs/"+id)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp, b)
	}
	var job JobV2
	if err := json.Unmarshal(b, &job); err != nil {
		return nil, fmt.Errorf("client: malformed v2 status response: %w", err)
	}
	return &job, nil
}

// Result fetches a settled job's RunRecord bytes from /v2. Sentinels
// match the v1 Result method.
func (v *V2Client) Result(ctx context.Context, id string) ([]byte, error) {
	b, resp, err := v.c.get(ctx, "/v2/jobs/"+id+"/result")
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return b, nil
	case http.StatusAccepted:
		return nil, fmt.Errorf("%w: job %s still settling", ErrJobNotDone, id)
	case http.StatusInternalServerError:
		se := statusError(resp, b)
		return nil, fmt.Errorf("%w: job %s: %s", ErrJobFailed, id, se.Message)
	}
	return nil, statusError(resp, b)
}

// ClusterInfo fetches GET /v2/cluster.
func (v *V2Client) ClusterInfo(ctx context.Context) (*ClusterInfo, error) {
	b, resp, err := v.c.get(ctx, "/v2/cluster")
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp, b)
	}
	var info ClusterInfo
	if err := json.Unmarshal(b, &info); err != nil {
		return nil, fmt.Errorf("client: malformed cluster response: %w", err)
	}
	return &info, nil
}

// Stream opens GET /v2/jobs/{id}/stream and returns an iterator over
// the job's per-cell results. Next delivers each cell exactly once in
// index order; a dropped connection reconnects automatically with
// Last-Event-ID, so already-delivered cells are neither repeated nor
// lost. Next returns io.EOF after the terminal done event, or an error
// wrapping ErrJobFailed when the job fails.
func (v *V2Client) Stream(ctx context.Context, id string) (*Stream, error) {
	s := &Stream{v: v, ctx: ctx, id: id}
	if err := s.connect(); err != nil {
		return nil, err
	}
	return s, nil
}

// Stream iterates the SSE result stream of one job. Not safe for
// concurrent use. Close releases the connection; it is safe to call
// after Next returned io.EOF.
type Stream struct {
	v    *V2Client
	ctx  context.Context
	id   string
	last int // cells already delivered; the Last-Event-ID resume point

	body io.ReadCloser
	rd   *bufio.Reader
	done bool
}

func (s *Stream) connect() error {
	req, err := http.NewRequestWithContext(s.ctx, http.MethodGet,
		s.v.c.base+"/v2/jobs/"+s.id+"/stream", nil)
	if err != nil {
		return err
	}
	req.Header.Set("Accept", "text/event-stream")
	if s.last > 0 {
		req.Header.Set("Last-Event-ID", strconv.Itoa(s.last))
	}
	resp, err := s.v.c.hc.Do(req)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		b, _ := readBody(resp)
		return statusError(resp, b)
	}
	s.body = resp.Body
	s.rd = bufio.NewReader(resp.Body)
	return nil
}

// Next returns the next cell event. io.EOF means the job settled
// successfully and the stream is complete.
func (s *Stream) Next() (*StreamEvent, error) {
	if s.done {
		return nil, io.EOF
	}
	misses := 0
	for {
		ev, kind, err := s.readEvent()
		if err != nil {
			if s.ctx.Err() != nil {
				return nil, s.ctx.Err()
			}
			// The connection dropped mid-stream (a worker restart, a
			// proxy timeout). Resume from the last delivered cell.
			if misses++; misses >= s.v.c.policy.MaxAttempts {
				return nil, err
			}
			s.v.c.retries.Add(1)
			s.Close()
			if serr := s.v.c.sleep(s.ctx, s.v.c.backoff(misses-1)); serr != nil {
				return nil, errors.Join(serr, err)
			}
			if cerr := s.connect(); cerr != nil {
				if !retryable(cerr) {
					return nil, cerr
				}
			}
			continue
		}
		misses = 0
		switch kind {
		case "cell":
			if ev.Index < s.last {
				continue // replay overlap after reconnect: already delivered
			}
			s.last = ev.Index + 1
			return ev, nil
		case "done":
			s.done = true
			s.Close()
			return nil, io.EOF
		case "failed":
			s.done = true
			s.Close()
			return nil, fmt.Errorf("%w: job %s: %s", ErrJobFailed, s.id, ev.failure)
		}
	}
}

// Delivered returns how many cells the stream has delivered so far —
// also the resume point a reconnect presents as Last-Event-ID.
func (s *Stream) Delivered() int { return s.last }

// Close releases the stream's connection.
func (s *Stream) Close() error {
	if s.body == nil {
		return nil
	}
	err := s.body.Close()
	s.body, s.rd = nil, nil
	return err
}

// readEvent parses one SSE event from the wire.
func (s *Stream) readEvent() (*StreamEvent, string, error) {
	if s.rd == nil {
		if err := s.connect(); err != nil {
			return nil, "", err
		}
	}
	var kind, data string
	for {
		line, err := s.rd.ReadString('\n')
		if err != nil {
			return nil, "", err
		}
		line = strings.TrimRight(line, "\r\n")
		switch {
		case line == "":
			if kind == "" && data == "" {
				continue // stray keep-alive separator
			}
			return parseEvent(kind, data)
		case strings.HasPrefix(line, "event:"):
			kind = strings.TrimSpace(strings.TrimPrefix(line, "event:"))
		case strings.HasPrefix(line, "data:"):
			if data != "" {
				data += "\n"
			}
			data += strings.TrimPrefix(strings.TrimPrefix(line, "data:"), " ")
		}
		// id: lines are redundant with the cell's own index field.
	}
}

func parseEvent(kind, data string) (*StreamEvent, string, error) {
	switch kind {
	case "cell":
		var ev StreamEvent
		if err := json.Unmarshal([]byte(data), &ev); err != nil {
			return nil, "", fmt.Errorf("client: malformed cell event: %w", err)
		}
		return &ev, kind, nil
	case "done":
		return &StreamEvent{}, kind, nil
	case "failed":
		var body struct {
			Error string `json:"error"`
		}
		json.Unmarshal([]byte(data), &body)
		ev := &StreamEvent{}
		ev.failure = body.Error
		return ev, kind, nil
	}
	return nil, "", fmt.Errorf("client: unknown stream event %q", kind)
}
