// Package client is the official Go client for the dolos-serve
// /v1/jobs API: submit simulation requests, poll them to completion,
// and fetch RunRecord JSON — with context deadlines on every call,
// exponential backoff with deterministic jitter that honors the
// server's Retry-After on 429/503, and idempotent resubmission of
// failed jobs keyed by the request hash (the server's result cache and
// single-flight dedup key on the normalized request, so a resubmitted
// job reuses completed work instead of repeating it).
//
// The one-call entry point:
//
//	cl := client.New("127.0.0.1:8080")
//	res, err := cl.Run(ctx, client.Request{
//		Workloads: []string{"Hashmap"},
//		Schemes:   []string{"dolos-partial"},
//	})
//
// Run submits, waits, and retries through queue-full rejections,
// drain windows and server-side job failures; errors that survive the
// retry budget match the package sentinels under errors.Is (see
// errors.go). Submit / Status / Result / WaitResult expose the same
// machinery one step at a time. See DESIGN.md §11 for the retry
// policy's backoff table.
package client

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Request is the body of POST /v1/jobs, mirroring the server's wire
// schema: a workloads × schemes grid (or a single cell), the
// simulation parameters, and an optional per-job timeout. Zero values
// take the server's defaults.
type Request struct {
	Workloads    []string `json:"workloads,omitempty"`
	Schemes      []string `json:"schemes,omitempty"`
	Tree         string   `json:"tree,omitempty"`
	Transactions int      `json:"transactions,omitempty"`
	TxSize       int      `json:"tx_size,omitempty"`
	Seed         int64    `json:"seed,omitempty"`
	WPQ          int      `json:"wpq,omitempty"`
	NoCoalesce   bool     `json:"no_coalesce,omitempty"`
	TimeoutMS    int64    `json:"timeout_ms,omitempty"`
}

// Status is a job's lifecycle state as the server reports it.
type Status string

const (
	StatusQueued  Status = "queued"
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
)

// Job is the server's job envelope: identity, lifecycle status,
// whether the result came from the result cache or dedup, queue
// position while queued, and the failure cause once failed.
type Job struct {
	ID            string `json:"id"`
	Status        Status `json:"status"`
	Cached        bool   `json:"cached"`
	QueuePosition int    `json:"queue_position,omitempty"`
	Err           string `json:"error,omitempty"`
}

// RunResult is a completed Run: the settled job envelope and the
// RunRecord JSON bytes (one object for a single cell, an array for a
// grid — the dolos-sim -json schema).
type RunResult struct {
	Job   Job
	Bytes []byte
}

// RetryPolicy shapes the client's backoff. The nominal delay before
// retry n (0-based) is BaseDelay·Multiplierⁿ capped at MaxDelay, then
// spread by ±Jitter (a fraction); a server Retry-After overrides the
// computed delay. The zero value takes the defaults noted per field.
type RetryPolicy struct {
	// MaxAttempts bounds tries per operation — submission attempts per
	// Submit, resubmissions per Run (default 6).
	MaxAttempts int
	// BaseDelay is the first retry delay (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth (default 2s).
	MaxDelay time.Duration
	// Multiplier is the exponential growth factor (default 2).
	Multiplier float64
	// Jitter spreads each delay by ±this fraction (default 0.2). The
	// jitter stream is seeded (WithSeed), so a pinned seed replays the
	// same delays.
	Jitter float64
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 6
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Multiplier <= 0 {
		p.Multiplier = 2
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	return p
}

// flight is one in-process single-flight slot: concurrent Run calls
// for the identical request share one submission and result.
type flight struct {
	done chan struct{}
	res  *RunResult
	err  error
}

// Client talks to one dolos-serve instance. It is safe for concurrent
// use; create with New.
type Client struct {
	base   string
	hc     *http.Client
	policy RetryPolicy
	poll   time.Duration

	mu      sync.Mutex
	rng     *rand.Rand
	flights map[string]*flight

	retries   atomic.Uint64
	resubmits atomic.Uint64

	// sleepFn, when set (tests only), replaces the real backoff sleep.
	sleepFn func(ctx context.Context, d time.Duration) error
}

// Option configures a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (default: a
// client with a 30s overall timeout).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetryPolicy replaces the retry policy (zero fields keep their
// defaults).
func WithRetryPolicy(p RetryPolicy) Option {
	return func(c *Client) { c.policy = p.withDefaults() }
}

// WithSeed seeds the jitter PRNG (default 1), pinning the exact delay
// sequence for reproducible load runs and tests.
func WithSeed(seed int64) Option {
	return func(c *Client) { c.rng = rand.New(rand.NewSource(seed)) }
}

// WithPollInterval sets the initial status-poll interval used by
// WaitResult and Run (default 5ms; it backs off 1.5× per poll up to
// 250ms).
func WithPollInterval(d time.Duration) Option {
	return func(c *Client) {
		if d > 0 {
			c.poll = d
		}
	}
}

// New builds a client for the server at baseURL ("host:port" or a full
// URL).
func New(baseURL string, opts ...Option) *Client {
	if !strings.Contains(baseURL, "://") {
		baseURL = "http://" + baseURL
	}
	c := &Client{
		base:    strings.TrimRight(baseURL, "/"),
		hc:      &http.Client{Timeout: 30 * time.Second},
		policy:  RetryPolicy{}.withDefaults(),
		poll:    5 * time.Millisecond,
		rng:     rand.New(rand.NewSource(1)),
		flights: make(map[string]*flight),
	}
	for _, o := range opts {
		o(c)
	}
	return c
}

// BaseURL returns the server base URL the client targets.
func (c *Client) BaseURL() string { return c.base }

// Retries returns how many HTTP-level retries (429/503/transport
// errors) the client has performed.
func (c *Client) Retries() uint64 { return c.retries.Load() }

// Resubmits returns how many failed jobs Run has resubmitted.
func (c *Client) Resubmits() uint64 { return c.resubmits.Load() }

// Hash returns the client-side idempotency key of a request: the hex
// SHA-256 of its JSON encoding. Concurrent Run calls with the same
// hash share one in-process flight; the server's own dedup key (the
// normalized request) is at least as coarse, so equal hashes always
// mean one simulation server-side.
func (r Request) Hash() string {
	b, err := json.Marshal(r)
	if err != nil {
		// Request holds only slices of strings, ints and bools; Marshal
		// cannot fail on it.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Run is the one-call happy path: submit the request, wait for the job
// to settle, fetch its result. Submission retries 429/503/transport
// errors with backoff (honoring Retry-After); a job that settles
// "failed" — a crashed handler, an expired server-side deadline — is
// resubmitted up to the policy's attempt budget, which is idempotent
// because the server keys results by the request hash. Concurrent Run
// calls with an identical Request share one flight.
func (c *Client) Run(ctx context.Context, req Request) (*RunResult, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	key := req.Hash()

	c.mu.Lock()
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		select {
		case <-f.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		if f.err == nil {
			return f.res, nil
		}
		// The leading call failed; make an attempt of our own rather
		// than propagating a failure that may have been its deadline.
		return c.runAttempts(ctx, body)
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()

	res, err := c.runAttempts(ctx, body)
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	f.res, f.err = res, err
	close(f.done)
	return res, err
}

// runAttempts is Run's submit → wait → resubmit loop.
func (c *Client) runAttempts(ctx context.Context, body []byte) (*RunResult, error) {
	var last error
	for attempt := 0; attempt < c.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.resubmits.Add(1)
			if err := c.sleep(ctx, c.backoff(attempt-1)); err != nil {
				return nil, errors.Join(err, last)
			}
		}
		job, err := c.submitBody(ctx, body)
		if err != nil {
			return nil, err // submitBody spent its own retry budget
		}
		res, err := c.wait(ctx, job)
		if err == nil {
			return res, nil
		}
		if !errors.Is(err, ErrJobFailed) {
			return nil, err
		}
		last = err
	}
	return nil, last
}

// Submit posts the request and returns the job envelope (status
// "done" on a submission-time cache hit, otherwise "queued"), retrying
// 429/503/transport errors per the policy.
//
// Deprecated: Submit drives the /v1 shim surface; use V2().SubmitGrid,
// which adds tenant attribution and cell progress.
func (c *Client) Submit(ctx context.Context, req Request) (*Job, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	return c.submitBody(ctx, body)
}

func (c *Client) submitBody(ctx context.Context, body []byte) (*Job, error) {
	var last error
	for attempt := 0; attempt < c.policy.MaxAttempts; attempt++ {
		if attempt > 0 {
			c.retries.Add(1)
		}
		job, err := c.postOnce(ctx, body)
		if err == nil {
			return job, nil
		}
		last = err
		if !retryable(err) || attempt == c.policy.MaxAttempts-1 {
			break
		}
		d := c.backoff(attempt)
		var se *StatusError
		if errors.As(err, &se) && se.RetryAfter > 0 {
			d = se.RetryAfter // the server knows best
		}
		if err := c.sleep(ctx, d); err != nil {
			return nil, errors.Join(err, last)
		}
	}
	return nil, fmt.Errorf("client: submit gave up after %d attempts: %w",
		c.policy.MaxAttempts, last)
}

func (c *Client) postOnce(ctx context.Context, body []byte) (*Job, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	b, err := readBody(resp)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return nil, statusError(resp, b)
	}
	var job Job
	if err := json.Unmarshal(b, &job); err != nil {
		return nil, fmt.Errorf("client: malformed submit response: %w", err)
	}
	return &job, nil
}

// Status fetches a job's envelope. A 404 matches ErrJobNotFound.
//
// Deprecated: Status drives the /v1 shim surface; use V2().Status.
func (c *Client) Status(ctx context.Context, id string) (*Job, error) {
	b, resp, err := c.get(ctx, "/v1/jobs/"+id)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, statusError(resp, b)
	}
	var job Job
	if err := json.Unmarshal(b, &job); err != nil {
		return nil, fmt.Errorf("client: malformed status response: %w", err)
	}
	return &job, nil
}

// Result fetches a settled job's RunRecord bytes. A job still in
// flight matches ErrJobNotDone (use WaitResult to poll), a failed job
// ErrJobFailed, an unknown id ErrJobNotFound.
//
// Deprecated: Result drives the /v1 shim surface; use V2().Result, or
// V2().Stream for per-cell results as they finish.
func (c *Client) Result(ctx context.Context, id string) ([]byte, error) {
	b, resp, err := c.get(ctx, "/v1/jobs/"+id+"/result")
	if err != nil {
		return nil, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return b, nil
	case http.StatusAccepted:
		return nil, fmt.Errorf("%w: job %s still settling", ErrJobNotDone, id)
	case http.StatusInternalServerError:
		se := statusError(resp, b)
		return nil, fmt.Errorf("%w: job %s: %s", ErrJobFailed, id, se.Message)
	}
	return nil, statusError(resp, b)
}

// WaitResult polls a job until it settles and returns its result
// bytes: the id-based counterpart of Run for jobs submitted elsewhere.
//
// Deprecated: WaitResult polls the /v1 shim surface; use V2().Stream,
// which pushes cells as they finish instead of polling.
func (c *Client) WaitResult(ctx context.Context, id string) ([]byte, error) {
	res, err := c.wait(ctx, &Job{ID: id})
	if err != nil {
		return nil, err
	}
	return res.Bytes, nil
}

// wait polls a job envelope to settlement and fetches the result.
// Transient status-poll errors are tolerated up to the policy's
// attempt budget of consecutive failures.
func (c *Client) wait(ctx context.Context, job *Job) (*RunResult, error) {
	interval := c.poll
	misses := 0
	for {
		switch job.Status {
		case StatusDone:
			b, err := c.Result(ctx, job.ID)
			if err != nil {
				return nil, err
			}
			return &RunResult{Job: *job, Bytes: b}, nil
		case StatusFailed:
			return nil, fmt.Errorf("%w: job %s: %s", ErrJobFailed, job.ID, job.Err)
		}
		if err := c.sleep(ctx, interval); err != nil {
			return nil, err
		}
		next, err := c.Status(ctx, job.ID)
		if err != nil {
			if !retryable(err) {
				return nil, err
			}
			if misses++; misses >= c.policy.MaxAttempts {
				return nil, err
			}
			c.retries.Add(1)
			continue
		}
		misses = 0
		job = next
		if interval < 250*time.Millisecond {
			interval = interval * 3 / 2
		}
	}
}

// get performs one GET and returns the drained body and response.
func (c *Client) get(ctx context.Context, path string) ([]byte, *http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, nil, err
	}
	b, err := readBody(resp)
	if err != nil {
		return nil, nil, err
	}
	return b, resp, nil
}

func readBody(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	return io.ReadAll(resp.Body)
}

// retryable classifies an error: HTTP 429/503 and 5xx rejections and
// transport-level failures are worth retrying; context expiry and
// everything else (4xx, malformed responses) is terminal.
func retryable(err error) bool {
	if err == nil ||
		errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var se *StatusError
	if errors.As(err, &se) {
		return se.Code == http.StatusTooManyRequests || se.Code >= 500
	}
	return true // transport-level
}

// backoff computes the jittered delay before retry attempt (0-based).
func (c *Client) backoff(attempt int) time.Duration {
	p := c.policy
	d := float64(p.BaseDelay) * math.Pow(p.Multiplier, float64(attempt))
	if d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 {
		c.mu.Lock()
		u := c.rng.Float64()
		c.mu.Unlock()
		d *= 1 + p.Jitter*(2*u-1)
	}
	return time.Duration(d)
}

// sleep blocks for d or until ctx is done.
func (c *Client) sleep(ctx context.Context, d time.Duration) error {
	if c.sleepFn != nil {
		return c.sleepFn(ctx, d)
	}
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
