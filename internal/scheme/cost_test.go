package scheme

import (
	"testing"

	"dolos/internal/crypt"
	"dolos/internal/masu"
	"dolos/internal/sim"
)

// TestCostTableMatchesEngineConstants pins every registered scheme's
// cost table against the functional engine's latency constants and the
// controller's historical formulas, across a grid of cost shapes. The
// controller prices all execution modes through these tables, so a
// drifting coefficient here would silently skew every mode at once.
func TestCostTableMatchesEngineConstants(t *testing.T) {
	costs := []masu.Cost{
		{},
		{SerialMACs: 10},
		{SerialMACs: 4, CounterMisses: 1},
		{SerialMACs: 1, TreeMisses: 3},
		{SerialMACs: 10, CounterMisses: 2, TreeMisses: 5, ReencryptedLines: 63},
		{SerialMACs: 2, CounterMisses: 1, TreeMisses: 1, ReencryptedLines: 1},
	}
	for _, e := range All() {
		tab, err := CostTableFor(e.ID)
		if err != nil {
			t.Fatalf("%s: no cost table: %v", e.Name, err)
		}
		if tab.XOR != crypt.XORLatency || tab.AES != crypt.AESLatency || tab.MAC != crypt.MACLatency {
			t.Fatalf("%s: primitive latencies diverge from crypt constants: %+v", e.Name, tab)
		}
		if tab.MetaMiss != 600 {
			t.Fatalf("%s: MetaMiss = %d, want the 600-cycle NVM metadata fetch", e.Name, tab.MetaMiss)
		}
		if tab.DrainDelay != 400 {
			t.Fatalf("%s: DrainDelay = %d, want 400", e.Name, tab.DrainDelay)
		}
		if tab.WPQHit != 4+crypt.XORLatency {
			t.Fatalf("%s: WPQHit = %d, want %d", e.Name, tab.WPQHit, 4+crypt.XORLatency)
		}
		for _, c := range costs {
			tail := sim.Cycle(c.SerialMACs)*crypt.MACLatency +
				sim.Cycle(c.CounterMisses+c.TreeMisses)*600 +
				sim.Cycle(c.ReencryptedLines)*(2*crypt.AESLatency+crypt.MACLatency)
			if got, want := tab.DrainService(c), crypt.XORLatency+crypt.AESLatency+tail; got != want {
				t.Fatalf("%s: DrainService(%+v) = %d, want %d", e.Name, c, got, want)
			}
			if got, want := tab.InsertService(c), crypt.AESLatency+tail; got != want {
				t.Fatalf("%s: InsertService(%+v) = %d, want %d", e.Name, c, got, want)
			}
			wantRead := crypt.MACLatency + crypt.XORLatency
			if c.CounterMisses > 0 {
				wantRead += 600 + crypt.AESLatency
			}
			wantRead += sim.Cycle(c.TreeMisses) * (600 + crypt.MACLatency)
			if got := tab.ReadExtra(c); got != wantRead {
				t.Fatalf("%s: ReadExtra(%+v) = %d, want %d", e.Name, c, got, wantRead)
			}
		}
		// Insert-path coefficients are scheme-shaped.
		switch e.Pipeline.Insert {
		case InsertDolosSplit:
			if tab.Insert != e.ID.MiSUDesign().InsertLatency() {
				t.Fatalf("%s: Insert = %d, want the Mi-SU design's %d", e.Name, tab.Insert, e.ID.MiSUDesign().InsertLatency())
			}
			wantII := sim.Cycle(crypt.MACLatency)
			wantDef := sim.Cycle(0)
			if e.ID == DolosPost {
				wantII = crypt.XORLatency
				wantDef = crypt.MACLatency
			}
			if tab.MiII != wantII || tab.DeferredMAC != wantDef {
				t.Fatalf("%s: MiII/DeferredMAC = %d/%d, want %d/%d", e.Name, tab.MiII, tab.DeferredMAC, wantII, wantDef)
			}
		default:
			if tab.Insert != 0 || tab.DeferredMAC != 0 {
				t.Fatalf("%s: non-Dolos scheme has Mi-SU latencies: %+v", e.Name, tab)
			}
		}
	}
}

// TestCostTableUnknownSchemeFails pins the fail-loudly contract: an ID
// outside the registry has no latency model and must be rejected.
func TestCostTableUnknownSchemeFails(t *testing.T) {
	if _, err := CostTableFor(ID(999)); err == nil {
		t.Fatal("CostTableFor(unregistered) succeeded; want a loud failure")
	}
}
