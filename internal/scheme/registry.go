package scheme

import (
	"fmt"
	"sort"
	"strings"

	"dolos/internal/masu"
)

// Capabilities describes what a scheme supports — the suites and axes a
// registry consumer may enumerate it into.
type Capabilities struct {
	// CrashSafe schemes accept Crash/Recover and pass the durability
	// audit (every registered scheme today; a future volatile-only
	// strawman would clear it).
	CrashSafe bool
	// ReportsRecovery mirrors Pipeline.ReportsRecovery for callers that
	// only see the entry.
	ReportsRecovery bool
}

// Entry is one registered scheme: identity, naming, capabilities, and
// the security pipeline the controller instantiates for it.
type Entry struct {
	ID ID
	// Name is the canonical CLI name (dolos-sim -scheme <Name>).
	Name string
	// Label is the figure label, identical to ID.String().
	Label string
	// Aliases are additional accepted spellings (Go identifiers, label
	// variants). Parse also normalizes case and -_/space separators.
	Aliases []string
	// Paper cites the design's source.
	Paper string

	Caps     Capabilities
	Pipeline Pipeline
}

// entries is the registry, in ID order. Every CLI, the service API and
// the grid enumerate this one table.
var entries = []Entry{
	{
		ID: NonSecureADR, Name: "ideal", Label: "NonSecure-ADR",
		Aliases: []string{"NonSecureADR"},
		Paper:   "Dolos (MICRO 2021), Figure 5-c upper bound",
		Caps:    Capabilities{CrashSafe: true},
		Pipeline: Pipeline{
			Insert: InsertIdeal,
		},
	},
	{
		ID: PreWPQSecure, Name: "baseline", Label: "Pre-WPQ-Secure",
		Aliases: []string{"PreWPQSecure"},
		Paper:   "Anubis AGIT baseline (Zubair & Awad, ISCA 2019)",
		Caps:    Capabilities{CrashSafe: true},
		Pipeline: Pipeline{
			Insert: InsertPreWPQ,
		},
	},
	{
		ID: DolosFull, Name: "dolos-full", Label: "Dolos-Full-WPQ",
		Aliases: []string{"DolosFull"},
		Paper:   "Dolos (MICRO 2021), Full-WPQ Mi-SU",
		Caps:    Capabilities{CrashSafe: true},
		Pipeline: Pipeline{
			Insert: InsertDolosSplit,
		},
	},
	{
		ID: DolosPartial, Name: "dolos-partial", Label: "Dolos-Partial-WPQ",
		Aliases: []string{"DolosPartial"},
		Paper:   "Dolos (MICRO 2021), Partial-WPQ Mi-SU",
		Caps:    Capabilities{CrashSafe: true},
		Pipeline: Pipeline{
			Insert: InsertDolosSplit,
		},
	},
	{
		ID: DolosPost, Name: "dolos-post", Label: "Dolos-Post-WPQ",
		Aliases: []string{"DolosPost"},
		Paper:   "Dolos (MICRO 2021), Post-WPQ Mi-SU",
		Caps:    Capabilities{CrashSafe: true},
		Pipeline: Pipeline{
			Insert: InsertDolosSplit,
		},
	},
	{
		ID: EADRSecure, Name: "eadr", Label: "eADR-Secure",
		Aliases: []string{"EADRSecure", "eadr_secure"},
		Paper:   "Dolos (MICRO 2021), eADR comparison point",
		Caps:    Capabilities{CrashSafe: true},
		Pipeline: Pipeline{
			Insert: InsertEADR,
		},
	},
	{
		ID: TriadNVM, Name: "triad-nvm", Label: "Triad-NVM",
		Aliases: []string{"TriadNVM", "triad"},
		Paper:   "Triad-NVM (Awad et al., ISCA 2019)",
		Caps:    Capabilities{CrashSafe: true, ReportsRecovery: true},
		Pipeline: Pipeline{
			Insert: InsertPreWPQ,
			Policy: masu.Policy{
				CounterWriteThrough:    true,
				PartialTreePersistence: true,
				TreePersistLevels:      1,
			},
			ForceTree: masu.BMTEager, HasForceTree: true,
			Recovery:        RecoverReconstruct,
			ReportsRecovery: true,
		},
	},
	{
		ID: SuperMem, Name: "supermem", Label: "SuperMem",
		Aliases: []string{"super-mem"},
		Paper:   "SuperMem (Zuo et al., MICRO 2019)",
		Caps:    Capabilities{CrashSafe: true, ReportsRecovery: true},
		Pipeline: Pipeline{
			Insert: InsertPreWPQ,
			Policy: masu.Policy{
				CounterWriteThrough:    true,
				CoalesceCounterWrites:  true,
				PartialTreePersistence: true,
				TreePersistLevels:      0,
			},
			ForceTree: masu.BMTEager, HasForceTree: true,
			Recovery:        RecoverReconstruct,
			ReportsRecovery: true,
		},
	},
	{
		ID: Phoenix, Name: "phoenix", Label: "Phoenix",
		Aliases: []string{},
		Paper:   "Phoenix (Alwadi et al., PACT 2022)",
		Caps:    Capabilities{CrashSafe: true, ReportsRecovery: true},
		Pipeline: Pipeline{
			Insert:    InsertPreWPQ,
			ForceTree: masu.ToCLazy, HasForceTree: true,
			Recovery:        RecoverShadow,
			ReportsRecovery: true,
		},
	},
	{
		ID: STUM, Name: "stum", Label: "STUM",
		Aliases: []string{},
		Paper:   "STUM (Freij et al., MICRO 2021)",
		Caps:    Capabilities{CrashSafe: true, ReportsRecovery: true},
		Pipeline: Pipeline{
			Insert: InsertPreWPQ,
			Policy: masu.Policy{
				StreamlinedTreeUpdates: true,
			},
			ForceTree: masu.BMTEager, HasForceTree: true,
			Recovery:        RecoverShadow,
			ReportsRecovery: true,
		},
	},
}

// aliasIndex maps every normalized accepted spelling to its entry index.
var aliasIndex = func() map[string]int {
	idx := make(map[string]int)
	add := func(s string, i int) {
		n := normalize(s)
		if prev, dup := idx[n]; dup && prev != i {
			panic(fmt.Sprintf("scheme: alias %q claimed by two entries", s))
		}
		idx[n] = i
	}
	for i, e := range entries {
		add(e.Name, i)
		add(e.Label, i)
		for _, a := range e.Aliases {
			add(a, i)
		}
	}
	return idx
}()

// normalize lowercases and strips the separators users mix freely.
func normalize(s string) string {
	s = strings.ToLower(s)
	return strings.Map(func(r rune) rune {
		switch r {
		case '-', '_', ' ':
			return -1
		}
		return r
	}, s)
}

// All returns the registry in ID order. The slice is shared: callers
// must not mutate it.
func All() []Entry { return entries }

// ByID returns the registry entry for id.
func ByID(id ID) (Entry, bool) {
	for _, e := range entries {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}

// PipelineOf returns the security pipeline for id; unknown IDs get the
// ideal (zero) pipeline, matching the controller's historical default
// branch for out-of-range values.
func PipelineOf(id ID) Pipeline {
	if e, ok := ByID(id); ok {
		return e.Pipeline
	}
	return Pipeline{}
}

// Names returns the canonical CLI names, sorted.
func Names() []string {
	out := make([]string, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.Name)
	}
	sort.Strings(out)
	return out
}

// Parse resolves any accepted spelling — canonical name, figure label,
// Go identifier, with free case and -_/space separators — to its entry.
func Parse(name string) (Entry, error) {
	if i, ok := aliasIndex[normalize(name)]; ok {
		return entries[i], nil
	}
	return Entry{}, fmt.Errorf("unknown scheme %q (want one of %s)",
		name, strings.Join(Names(), ", "))
}
