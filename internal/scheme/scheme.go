// Package scheme is the central registry of secure-memory controller
// configurations. It owns the Scheme identifier that used to live in
// internal/controller, and generalizes the hard-coded Mi-SU/Ma-SU switch
// into a declarative security Pipeline per scheme: which insert path a
// write takes before the persistence domain (pre-persist), how metadata
// is persisted behind it (post-persist policy on the Ma-SU), and how the
// platform recovers after power loss.
//
// Besides the Dolos paper's own designs, the registry carries the
// related-work competitors the paper was published against, each as a
// first-class entry that runs on the same controller, workloads, crash
// driver and attack suites:
//
//   - Triad-NVM (Awad et al., ISCA 2019): persist counters on every
//     write plus the first N Merkle-tree levels; recovery rebuilds the
//     remaining levels from the persisted frontier, trading recovery
//     time for runtime.
//   - SuperMem (Zuo et al., MICRO 2019): a write-through counter cache
//     with counter-atomicity (data+counter persisted as one unit, one
//     serialized MAC) and cross-bank counter-write coalescing; the tree
//     stays volatile and is reconstructed at boot.
//   - Phoenix (Alwadi et al., PACT 2022): a persistently-secure counter
//     tree — the repo's lazy ToC backend with shadow-tracked updates is
//     exactly that design, so Phoenix forces the ToC backend on the
//     baseline insert path.
//   - STUM (Freij et al., MICRO 2021): streamlined/coalesced BMT
//     updates — ancestor MAC updates shared with the immediately
//     preceding write's path merge into the in-flight update instead of
//     serializing again.
package scheme

import (
	"fmt"

	"dolos/internal/misu"
)

// ID identifies a secure-memory controller configuration. The first six
// values mirror the original internal/controller enum bit-for-bit (the
// controller aliases them back), so persisted records and external
// callers observe no change.
type ID int

const (
	// NonSecureADR is the infeasible ideal: persist first, secure later
	// at zero run-time cost.
	NonSecureADR ID = iota
	// PreWPQSecure is the baseline: security before the WPQ.
	PreWPQSecure
	// DolosFull is Dolos with the Full-WPQ Mi-SU.
	DolosFull
	// DolosPartial is Dolos with the Partial-WPQ Mi-SU.
	DolosPartial
	// DolosPost is Dolos with the Post-WPQ Mi-SU.
	DolosPost
	// EADRSecure models the extended-ADR platform the paper's
	// introduction weighs Dolos against: the entire cache hierarchy is
	// inside the persistence domain, so a store is persistent the moment
	// it retires and flushes/fences cost nothing. Security work happens
	// on eviction, off every critical path. The catch is platform cost —
	// eADR needs "non-standard extensions, high costs, and
	// environment-unfriendly batteries"; Dolos' point is approaching
	// this bound within the standard ADR budget.
	EADRSecure
	// TriadNVM persists counters plus the first N BMT levels
	// (selective tree-level persistence); recovery reconstructs the
	// volatile remainder from the persisted frontier.
	TriadNVM
	// SuperMem uses a write-through counter cache with counter-atomicity
	// and cross-bank counter-write coalescing; the BMT is fully volatile
	// and rebuilt at recovery.
	SuperMem
	// Phoenix keeps the counter tree itself persistently secure — the
	// lazy ToC backend with shadow-tracked updates.
	Phoenix
	// STUM streamlines BMT updates: ancestor MACs shared with the
	// previous write's update path coalesce instead of serializing.
	STUM
)

// String returns the scheme name as used in the figures.
func (s ID) String() string {
	switch s {
	case NonSecureADR:
		return "NonSecure-ADR"
	case PreWPQSecure:
		return "Pre-WPQ-Secure"
	case DolosFull:
		return "Dolos-Full-WPQ"
	case DolosPartial:
		return "Dolos-Partial-WPQ"
	case DolosPost:
		return "Dolos-Post-WPQ"
	case EADRSecure:
		return "eADR-Secure"
	case TriadNVM:
		return "Triad-NVM"
	case SuperMem:
		return "SuperMem"
	case Phoenix:
		return "Phoenix"
	case STUM:
		return "STUM"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// IsDolos reports whether the scheme uses the split Mi-SU/Ma-SU design.
func (s ID) IsDolos() bool {
	return s == DolosFull || s == DolosPartial || s == DolosPost
}

// MiSUDesign maps a Dolos scheme to its Mi-SU design.
func (s ID) MiSUDesign() misu.Design {
	switch s {
	case DolosFull:
		return misu.FullWPQ
	case DolosPartial:
		return misu.PartialWPQ
	case DolosPost:
		return misu.PostWPQ
	}
	panic("scheme: not a Dolos scheme")
}
