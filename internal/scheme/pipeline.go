package scheme

import "dolos/internal/masu"

// InsertPath selects the pre-persist pipeline a write traverses between
// the core's persist request and WPQ acceptance.
type InsertPath int

const (
	// InsertIdeal accepts into the WPQ immediately; security is applied
	// functionally at drain time with no run-time cost (NonSecure-ADR).
	InsertIdeal InsertPath = iota
	// InsertPreWPQ pays the full security latency — counter fetch,
	// encryption, serialized MAC/tree updates — before WPQ entry. The
	// baseline and all related-work schemes use this path; their Policy
	// changes what "serialized tree updates" costs and persists.
	InsertPreWPQ
	// InsertDolosSplit is the Dolos design: a cheap Mi-SU at insertion,
	// the conventional Ma-SU after eviction, off the critical path.
	InsertDolosSplit
	// InsertEADR accepts at retire time (the whole hierarchy is in the
	// persistence domain); security happens on eviction.
	InsertEADR
)

// RecoveryStyle selects the post-crash boot path.
type RecoveryStyle int

const (
	// RecoverShadow replays shadow-region (Anubis) or probed (Osiris)
	// metadata — the controller honors the mode the caller requests.
	RecoverShadow RecoveryStyle = iota
	// RecoverReconstruct rebuilds the volatile tree levels bottom-up
	// from persisted counters before serving (Triad-NVM, SuperMem);
	// the requested mode is irrelevant and ignored.
	RecoverReconstruct
)

// Pipeline is a scheme's declarative security pipeline: the pre-persist
// insert path, the post-persist metadata policy applied by the Ma-SU,
// and the recovery style. The zero value is the ideal scheme.
type Pipeline struct {
	// Insert is the pre-persist path.
	Insert InsertPath
	// Policy tunes the Ma-SU's metadata persistence behind the WPQ.
	// The zero value is the repo's original behavior.
	Policy masu.Policy
	// ForceTree pins the integrity backend when HasForceTree is set:
	// reconstruction-style schemes need the eager BMT, Phoenix is by
	// definition the lazy ToC.
	ForceTree    masu.TreeKind
	HasForceTree bool
	// Recovery selects the boot path after a crash.
	Recovery RecoveryStyle
	// ReportsRecovery marks schemes whose modeled recovery time is a
	// measured axis (recovery_cycles in RunRecords). Legacy schemes
	// leave it off so their records stay bit-identical to the seed.
	ReportsRecovery bool
}

// PolicyFor resolves the pipeline's Ma-SU policy for a concrete
// configuration: triadLevels > 0 overrides the default persisted-level
// count of a partial-tree-persistence scheme (Triad-NVM's N knob).
func (p Pipeline) PolicyFor(triadLevels int) masu.Policy {
	pol := p.Policy
	if pol.PartialTreePersistence && triadLevels > 0 {
		pol.TreePersistLevels = triadLevels
	}
	return pol
}
