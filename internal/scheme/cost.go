package scheme

import (
	"fmt"

	"dolos/internal/crypt"
	"dolos/internal/masu"
	"dolos/internal/sim"
)

// Timing constants shared by every scheme's cost table. MetaMissCycles
// is the NVM metadata-fetch penalty charged per metadata-cache miss;
// DrainDelayCycles is the WPQ rest window before the Ma-SU picks an
// entry up (what makes write coalescing effective for hot lines).
const (
	MetaMissCycles   sim.Cycle = 600
	DrainDelayCycles sim.Cycle = 400
)

// CostTable is the dense per-op latency model of one scheme's security
// pipeline: every cycle the controller charges for security work is a
// linear function of a masu.Cost under these coefficients. It is the
// single timing vocabulary shared by all execution modes — the serial
// functional engine, fast mode and the parallel-DES cost-count timing
// stage all price identical Cost values through the same table, which
// is what keeps their schedules bit-identical.
//
// Tables come only from CostTableFor: a scheme missing from the
// registry has no latency model and must fail loudly, not default.
type CostTable struct {
	// XOR, AES and MAC are the Table 1 primitive latencies.
	XOR, AES, MAC sim.Cycle
	// MetaMiss is the NVM fetch charged per metadata-cache miss.
	MetaMiss sim.Cycle
	// Reencrypt is the per-line charge of a post-overflow page
	// re-encryption (decrypt + encrypt + MAC).
	Reencrypt sim.Cycle
	// WPQHit is the on-chip service latency of a WPQ read hit: the
	// tag-array lookup plus the one-cycle XOR decrypt.
	WPQHit sim.Cycle
	// DrainDelay is the WPQ rest window before a Ma-SU fetch.
	DrainDelay sim.Cycle
	// Insert is the Mi-SU critical-path insert latency (Dolos schemes;
	// zero elsewhere).
	Insert sim.Cycle
	// DeferredMAC is the post-commit MAC occupancy of the Post-WPQ
	// Mi-SU (zero elsewhere).
	DeferredMAC sim.Cycle
	// MiII is the Mi-SU engine's initiation interval; MaII the default
	// Ma-SU/security-unit pipeline interval (overridable by config).
	MiII, MaII sim.Cycle
}

// CostTableFor derives the latency table for a registered scheme from
// its pipeline. Unknown schemes return an error: a missing cost entry
// means the timing model has no definition for the scheme, and running
// it with defaults would silently mis-time every operation.
func CostTableFor(id ID) (CostTable, error) {
	e, ok := ByID(id)
	if !ok {
		return CostTable{}, fmt.Errorf("scheme: no cost table for %v (not in the registry)", id)
	}
	t := CostTable{
		XOR:        crypt.XORLatency,
		AES:        crypt.AESLatency,
		MAC:        crypt.MACLatency,
		MetaMiss:   MetaMissCycles,
		Reencrypt:  2*crypt.AESLatency + crypt.MACLatency,
		WPQHit:     4 + crypt.XORLatency,
		DrainDelay: DrainDelayCycles,
		MiII:       crypt.MACLatency,
		MaII:       crypt.MACLatency,
	}
	if e.Pipeline.Insert == InsertDolosSplit {
		t.Insert = id.MiSUDesign().InsertLatency()
		if id == DolosPost {
			// The XOR-only insert path frees the engine immediately; the
			// deferred MAC occupies it after commit.
			t.MiII = crypt.XORLatency
			t.DeferredMAC = crypt.MACLatency
		}
	}
	return t, nil
}

// DrainService prices a Ma-SU drain-path write (Figure 11): the WPQ
// XOR decrypt, pad generation, the serial MAC chain, metadata fetches
// that missed the on-chip caches, and any page re-encryption.
func (t CostTable) DrainService(c masu.Cost) sim.Cycle {
	return t.XOR + t.AES + t.writeTail(c)
}

// InsertService prices a pre-WPQ security pass (the baseline and
// related-work schemes): as DrainService minus the WPQ decrypt XOR —
// the write arrives in plaintext.
func (t CostTable) InsertService(c masu.Cost) sim.Cycle {
	return t.AES + t.writeTail(c)
}

func (t CostTable) writeTail(c masu.Cost) sim.Cycle {
	return sim.Cycle(c.SerialMACs)*t.MAC +
		sim.Cycle(c.CounterMisses+c.TreeMisses)*t.MetaMiss +
		sim.Cycle(c.ReencryptedLines)*t.Reencrypt
}

// ReadExtra prices a verified read's cycles beyond the NVM data fetch:
// the data-MAC verify and decrypt XOR, the serialized counter fetch +
// pad generation on a counter miss, and one fetch + MAC per tree-path
// miss.
func (t CostTable) ReadExtra(c masu.Cost) sim.Cycle {
	extra := t.MAC + t.XOR
	if c.CounterMisses > 0 {
		extra += t.MetaMiss + t.AES
	}
	extra += sim.Cycle(c.TreeMisses) * (t.MetaMiss + t.MAC)
	return extra
}
