package whisper

import "dolos/internal/trace"

// Ctree is the WHISPER crit-bit tree: internal nodes test one bit of the
// key; leaves hold (key, value). Inserts splice one new internal node and
// one new leaf, so the structural footprint per transaction is small and
// most of the payload is the value itself.
type Ctree struct{}

// Name implements Workload.
func (Ctree) Name() string { return "Ctree" }

// Node layouts (one line each):
//
//	internal: +0 bit index (1..64), +8 left, +16 right
//	leaf:     +0 bit index = 0 marker, +8 key, +16 value addr
const (
	ctBit   = 0
	ctLeft  = 8
	ctRight = 16
	ctKey   = 8
	ctVal   = 16
)

type ctreeState struct {
	*session
	rootSlot uint64 // address of the root pointer
}

func (c *ctreeState) isLeaf(n uint64) bool { return c.heap.ReadU64(n+ctBit) == 0 }

func bitOf(key uint64, bit uint64) uint64 { return (key >> (64 - bit)) & 1 }

// descend walks to the leaf key would belong to, returning the leaf and
// the link slot that points at it.
func (c *ctreeState) descend(key uint64) (leaf, link uint64) {
	link = c.rootSlot
	n := c.heap.ReadU64(link)
	for n != 0 && !c.isLeaf(n) {
		c.compute(25)
		bit := c.heap.ReadU64(n + ctBit)
		if bitOf(key, bit) == 0 {
			link = n + ctLeft
		} else {
			link = n + ctRight
		}
		n = c.heap.ReadU64(link)
	}
	return n, link
}

// critBit finds the highest differing bit position (1-based from MSB).
func critBit(a, b uint64) uint64 {
	x := a ^ b
	bit := uint64(1)
	for mask := uint64(1) << 63; mask != 0; mask >>= 1 {
		if x&mask != 0 {
			return bit
		}
		bit++
	}
	return 0
}

// put inserts or updates key.
func (c *ctreeState) put(key uint64) {
	leaf, link := c.descend(key)
	val := c.payload(key)

	c.tx.Begin()
	if leaf == 0 {
		// Empty slot: write the first leaf.
		vaddr := c.heap.Alloc(uint64(len(val)))
		naddr := c.heap.Alloc(64)
		c.tx.StoreFresh(vaddr, val)
		c.tx.StoreFreshU64(naddr+ctKey, key)
		c.tx.StoreFreshU64(naddr+ctVal, vaddr)
		c.tx.StoreU64(link, naddr)
		c.tx.Commit()
		return
	}
	existing := c.heap.ReadU64(leaf + ctKey)
	if existing == key {
		// Update the payload in place (undo-logged).
		c.tx.Store(c.heap.ReadU64(leaf+ctVal), val)
		c.tx.Commit()
		return
	}
	// Splice a new internal node above the differing bit. Re-descend to
	// the correct insertion link: the first node testing a bit below the
	// crit bit.
	bit := critBit(existing, key)
	c.compute(60)
	link = c.rootSlot
	n := c.heap.ReadU64(link)
	for n != 0 && !c.isLeaf(n) && c.heap.ReadU64(n+ctBit) < bit {
		if bitOf(key, c.heap.ReadU64(n+ctBit)) == 0 {
			link = n + ctLeft
		} else {
			link = n + ctRight
		}
		n = c.heap.ReadU64(link)
	}

	vaddr := c.heap.Alloc(uint64(len(val)))
	newLeaf := c.heap.Alloc(64)
	inner := c.heap.Alloc(64)
	c.tx.StoreFresh(vaddr, val)
	c.tx.StoreFreshU64(newLeaf+ctKey, key)
	c.tx.StoreFreshU64(newLeaf+ctVal, vaddr)
	c.tx.StoreFreshU64(inner+ctBit, bit)
	if bitOf(key, bit) == 0 {
		c.tx.StoreFreshU64(inner+ctLeft, newLeaf)
		c.tx.StoreFreshU64(inner+ctRight, n)
	} else {
		c.tx.StoreFreshU64(inner+ctLeft, n)
		c.tx.StoreFreshU64(inner+ctRight, newLeaf)
	}
	c.tx.StoreU64(link, inner)
	c.tx.Commit()
}

// get walks to key (read traffic).
func (c *ctreeState) get(key uint64) uint64 {
	leaf, _ := c.descend(key)
	if leaf != 0 && c.heap.ReadU64(leaf+ctKey) == key {
		return c.heap.ReadU64(leaf + ctVal)
	}
	return 0
}

// Generate implements Workload.
func (Ctree) Generate(p Params) *trace.Trace {
	s := newSession("Ctree", p)
	c := &ctreeState{session: s}
	c.rootSlot = s.heap.Alloc(64)

	keyRange := uint64(s.p.Warmup + s.p.Transactions*2)
	for i := 0; i < s.p.Warmup; i++ {
		c.put(s.rng.Uint64() % keyRange)
	}
	s.record()
	for i := 0; i < s.p.Transactions; i++ {
		key := s.rng.Uint64() % keyRange
		if s.rng.Intn(4) == 0 {
			c.get(s.rng.Uint64() % keyRange)
		}
		c.put(key)
	}
	return s.rec.Finish()
}
