package whisper

import "testing"

func benchGenerate(b *testing.B, w Workload) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr := w.Generate(Params{Transactions: 100, Warmup: 50, TxSize: 1024, Seed: int64(i) + 1})
		if tr.Transactions < 100 {
			b.Fatal("short trace")
		}
	}
}

func BenchmarkGenerateHashmap(b *testing.B) { benchGenerate(b, Hashmap{}) }
func BenchmarkGenerateCtree(b *testing.B)   { benchGenerate(b, Ctree{}) }
func BenchmarkGenerateBtree(b *testing.B)   { benchGenerate(b, Btree{}) }
func BenchmarkGenerateRBtree(b *testing.B)  { benchGenerate(b, RBtree{}) }
func BenchmarkGenerateYCSB(b *testing.B)    { benchGenerate(b, YCSB{}) }
func BenchmarkGenerateRedis(b *testing.B)   { benchGenerate(b, Redis{}) }
