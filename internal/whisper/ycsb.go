package whisper

import (
	"math/rand"

	"dolos/internal/trace"
)

// YCSB is the NStore:YCSB workload: a slotted key-value table driven by a
// zipfian-skewed 50/50 read/update mix (YCSB-A). Updates rewrite the
// record payload in place inside a durable transaction; the skew makes a
// hot set of records absorb most writes, which is why this workload shows
// the lowest WPQ pressure in Table 2 (hot lines coalesce in the WPQ and
// hot metadata stays cached).
type YCSB struct{}

// Name implements Workload.
func (YCSB) Name() string { return "NStore:YCSB" }

// Record layout: one header line (+0 key, +8 value addr, +16 generation)
// followed by the out-of-line payload.
type ycsbState struct {
	*session
	table   uint64 // record-pointer array
	records uint64 // number of populated records
}

func (y *ycsbState) slotAddr(i uint64) uint64 { return y.table + i*8 }

// populate fills record slot i.
func (y *ycsbState) populate(i uint64) {
	val := y.payload(i)
	rec := y.heap.Alloc(64)
	vaddr := y.heap.Alloc(uint64(len(val)))
	y.tx.Begin()
	y.tx.StoreFresh(vaddr, val)
	y.tx.StoreFreshU64(rec, i)
	y.tx.StoreFreshU64(rec+8, vaddr)
	y.tx.StoreU64(y.slotAddr(i), rec)
	y.tx.Commit()
}

// update rewrites record i's payload durably.
func (y *ycsbState) update(i uint64) {
	y.compute(150) // request parse + index probe
	rec := y.heap.ReadU64(y.slotAddr(i))
	vaddr := y.heap.ReadU64(rec + 8)
	gen := y.heap.ReadU64(rec + 16)
	val := y.payload(i ^ gen)
	y.tx.Begin()
	y.tx.Store(vaddr, val)
	y.tx.StoreU64(rec+16, gen+1)
	y.tx.Commit()
}

// read scans record i (read traffic only; recorded as a transaction
// marker so throughput counts match NStore's op accounting).
func (y *ycsbState) read(i uint64) {
	y.compute(150)
	rec := y.heap.ReadU64(y.slotAddr(i))
	vaddr := y.heap.ReadU64(rec + 8)
	buf := make([]byte, y.p.TxSize)
	y.heap.Read(vaddr, buf)
}

// Generate implements Workload.
func (YCSB) Generate(p Params) *trace.Trace {
	s := newSession("NStore:YCSB", p)
	y := &ycsbState{session: s}
	nRecords := uint64(p.withDefaults().Warmup)
	if nRecords < 64 {
		nRecords = 64
	}
	y.table = s.heap.Alloc(nRecords * 8)
	for i := uint64(0); i < nRecords; i++ {
		y.populate(i)
	}
	y.records = nRecords

	zipf := rand.NewZipf(s.rng, 1.2, 8, nRecords-1)
	s.record()
	if rp := s.p.ReadPercent; rp > 0 {
		// Explicit mix (e.g. 95 for YCSB-B): reads and updates drawn
		// independently; read-only iterations still count as
		// transactions via the op markers.
		for i := 0; i < s.p.Transactions; i++ {
			key := zipf.Uint64()
			if s.rng.Intn(100) < rp {
				s.rec.TxBegin()
				y.read(key)
				s.rec.TxEnd()
			} else {
				y.update(key)
			}
		}
		return s.rec.Finish()
	}
	for i := 0; i < s.p.Transactions; i++ {
		key := zipf.Uint64()
		if s.rng.Intn(2) == 0 {
			y.update(key)
		} else {
			y.read(key)
			// Keep the measured trace write-balanced the way NStore's
			// 50/50 mix still persists every other op.
			y.update(zipf.Uint64())
		}
	}
	return s.rec.Finish()
}
