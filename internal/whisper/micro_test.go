package whisper

import (
	"testing"

	"dolos/internal/trace"
)

func TestMicroWorkloadsGenerate(t *testing.T) {
	for _, name := range MicroNames() {
		w, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		tr := w.Generate(smallParams())
		if tr.Transactions < 60 {
			t.Fatalf("%s: %d transactions", name, tr.Transactions)
		}
		c := tr.Count()
		if c.Flushes == 0 || c.Fences == 0 {
			t.Fatalf("%s: degenerate trace %+v", name, c)
		}
	}
}

func TestTxStreamFlushCount(t *testing.T) {
	// TxStream is the purest size microbenchmark: flushes per tx should
	// track the payload line count closely (payload + log + bookkeeping).
	tr := TxStream{}.Generate(Params{Transactions: 50, Warmup: 10, TxSize: 1024, Seed: 1})
	c := tr.Count()
	perTx := float64(c.Flushes) / float64(tr.Transactions)
	// 16 payload lines + 32 log lines + status + commit = 50.
	if perTx < 40 || perTx > 60 {
		t.Fatalf("flushes per tx = %.1f, want ~50", perTx)
	}
}

func TestPQueueFIFO(t *testing.T) {
	s := newSession("PQueue", Params{Transactions: 1, Warmup: 1, TxSize: 128, Seed: 1})
	q := &pqueueState{session: s}
	q.headSlot = s.heap.Alloc(64)
	q.tailSlot = s.heap.Alloc(64)

	for i := uint64(0); i < 5; i++ {
		q.enqueue(i)
	}
	// Values dequeue in insertion order: walk head pointers.
	for i := 0; i < 5; i++ {
		head := s.heap.ReadU64(q.headSlot)
		if head == 0 {
			t.Fatalf("queue empty after %d dequeues", i)
		}
		if !q.dequeue() {
			t.Fatal("dequeue failed")
		}
	}
	if q.dequeue() {
		t.Fatal("dequeue from empty queue succeeded")
	}
	if s.heap.ReadU64(q.headSlot) != 0 || s.heap.ReadU64(q.tailSlot) != 0 {
		t.Fatal("head/tail not reset after drain")
	}
}

func TestPQueueDeterministic(t *testing.T) {
	a := PQueue{}.Generate(smallParams())
	b := PQueue{}.Generate(smallParams())
	if len(a.Ops) != len(b.Ops) {
		t.Fatal("PQueue trace nondeterministic")
	}
}

func TestYCSBReadPercentKnob(t *testing.T) {
	base := YCSB{}.Generate(Params{Transactions: 80, Warmup: 80, TxSize: 256, Seed: 5})
	readMostly := YCSB{}.Generate(Params{Transactions: 80, Warmup: 80, TxSize: 256, Seed: 5, ReadPercent: 95})
	cb, cr := base.Count(), readMostly.Count()
	if cr.Flushes >= cb.Flushes/3 {
		t.Fatalf("95%%-read mix still flushes heavily: %d vs %d", cr.Flushes, cb.Flushes)
	}
	if cr.Reads == 0 {
		t.Fatal("read-mostly mix generated no reads")
	}
	if readMostly.Transactions < 80 {
		t.Fatalf("read ops not counted as transactions: %d", readMostly.Transactions)
	}
	// Defaults unchanged: ReadPercent 0 reproduces the original stream.
	again := YCSB{}.Generate(Params{Transactions: 80, Warmup: 80, TxSize: 256, Seed: 5})
	if len(again.Ops) != len(base.Ops) {
		t.Fatal("default YCSB stream changed")
	}
}

func TestMicroTracesRunnable(t *testing.T) {
	// The micro traces execute under the simulator like the main six.
	for _, name := range MicroNames() {
		w, _ := ByName(name)
		tr := w.Generate(Params{Transactions: 20, Warmup: 10, TxSize: 256, Seed: 2})
		var pendingFlush bool
		for _, op := range tr.Ops {
			switch op.Kind {
			case trace.Flush:
				pendingFlush = true
			case trace.Fence:
				pendingFlush = false
			case trace.TxEnd:
				if pendingFlush {
					t.Fatalf("%s: unfenced flush at TxEnd", name)
				}
			}
		}
	}
}
