package whisper

import (
	"errors"
	"testing"

	"dolos/internal/pmem"
)

// heapReader adapts a functional pmem.Heap to ReadLineFunc (no secure
// memory involved; structural logic only).
func heapReader(h *pmem.Heap) ReadLineFunc {
	return func(addr uint64) ([64]byte, error) {
		return h.Line(addr), nil
	}
}

func buildHashmap(t *testing.T, n int) (*hashmapState, Params) {
	t.Helper()
	p := Params{Transactions: 1, Warmup: 1, TxSize: 256, Seed: 1, HeapSize: 32 << 20}
	s := newSession("Hashmap", p)
	m := &hashmapState{session: s}
	m.buckets = s.heap.Alloc(hashmapBuckets * 8)
	for i := 0; i < n; i++ {
		m.put(uint64(i) * 13)
	}
	return m, p
}

func TestWalkRecoveredHashmap(t *testing.T) {
	m, p := buildHashmap(t, 300)
	p = p.withDefaults()
	rep, err := WalkRecoveredHashmap(heapReader(m.heap), StructureBase(p), p.HeapBase, p.HeapSize)
	if err != nil {
		t.Fatalf("walk: %v", err)
	}
	if rep.Entries != 300 {
		t.Fatalf("entries = %d, want 300", rep.Entries)
	}
	if rep.Buckets == 0 || rep.MaxChain == 0 {
		t.Fatalf("degenerate report %+v", rep)
	}
}

func TestWalkDetectsDanglingPointer(t *testing.T) {
	m, p := buildHashmap(t, 50)
	p = p.withDefaults()
	// Corrupt one bucket pointer to point outside the heap.
	m.heap.WriteU64(m.buckets+8*uint64(hashKey(13)%hashmapBuckets), p.HeapBase+p.HeapSize+64)
	_, err := WalkRecoveredHashmap(heapReader(m.heap), StructureBase(p), p.HeapBase, p.HeapSize)
	if err == nil {
		t.Fatal("dangling pointer not detected")
	}
}

func TestWalkDetectsWrongBucket(t *testing.T) {
	m, p := buildHashmap(t, 50)
	p = p.withDefaults()
	// Splice a node into the wrong bucket: move bucket b1's chain head
	// into empty bucket b2 (relocation at the structure level).
	var b1, b2 uint64
	found := false
	for b := uint64(0); b < hashmapBuckets && !found; b++ {
		if m.heap.ReadU64(m.buckets+b*8) != 0 {
			for c := uint64(0); c < hashmapBuckets; c++ {
				if m.heap.ReadU64(m.buckets+c*8) == 0 {
					b1, b2 = b, c
					found = true
					break
				}
			}
		}
	}
	if !found {
		t.Skip("no suitable bucket pair")
	}
	m.heap.WriteU64(m.buckets+b2*8, m.heap.ReadU64(m.buckets+b1*8))
	m.heap.WriteU64(m.buckets+b1*8, 0)
	_, err := WalkRecoveredHashmap(heapReader(m.heap), StructureBase(p), p.HeapBase, p.HeapSize)
	if err == nil {
		t.Fatal("wrong-bucket splice not detected")
	}
}

func TestWalkPropagatesReadErrors(t *testing.T) {
	m, p := buildHashmap(t, 20)
	p = p.withDefaults()
	boom := errors.New("integrity violation")
	failing := func(addr uint64) ([64]byte, error) {
		if addr >= StructureBase(p)+64 {
			return [64]byte{}, boom
		}
		return m.heap.Line(addr), nil
	}
	if _, err := WalkRecoveredHashmap(failing, StructureBase(p), p.HeapBase, p.HeapSize); err == nil {
		t.Fatal("read errors swallowed")
	}
}

func TestResolveRecoveredLog(t *testing.T) {
	p := Params{Transactions: 1, Warmup: 1, TxSize: 256, Seed: 1, HeapSize: 32 << 20}
	s := newSession("Hashmap", p)
	a := s.heap.Alloc(64)
	s.heap.WriteU64(a, 42)
	s.tx.Begin()
	s.tx.StoreU64(a, 99)
	// Crash before commit.
	restores, err := ResolveRecoveredLog(heapReader(s.heap), LogBase(p), LogCapacity(p))
	if err != nil {
		t.Fatal(err)
	}
	if len(restores) != 1 || restores[0].Addr != a {
		t.Fatalf("restores = %+v", restores)
	}
}

func TestLayoutHelpersConsistent(t *testing.T) {
	p := Params{TxSize: 512}
	if StructureBase(p) <= LogBase(p) {
		t.Fatal("structure base not after log")
	}
	// The session's actual first post-log allocation matches.
	s := newSession("Hashmap", p)
	got := s.heap.Alloc(8)
	if got != StructureBase(p) {
		t.Fatalf("StructureBase = %#x, session allocates at %#x", StructureBase(p), got)
	}
}
