package whisper

import "dolos/internal/trace"

// The paper evaluates "representative persistent workloads from Whisper,
// in addition to in-house developed workloads" (Section 1). These two
// microbenchmarks play that role: TxStream is the purest
// transaction-size microbenchmark (one durable transaction = one payload
// write, no index structure), and PQueue is the classic persistent FIFO
// queue from the PMDK examples. They are not part of the six-figure
// experiment set but are available to the CLIs and library users via
// MicroNames/ByName.

// TxStream writes fixed-size payloads to a rotating set of buffers, one
// durable transaction each — the distilled WPQ stress test.
type TxStream struct{}

// Name implements Workload.
func (TxStream) Name() string { return "TxStream" }

// Generate implements Workload.
func (TxStream) Generate(p Params) *trace.Trace {
	s := newSession("TxStream", p)
	const buffers = 64
	bufs := make([]uint64, buffers)
	for i := range bufs {
		bufs[i] = s.heap.Alloc(uint64(s.p.TxSize))
	}
	write := func(i int) {
		val := s.payload(uint64(i))
		s.compute(120)
		s.tx.Begin()
		s.tx.Store(bufs[i%buffers], val)
		s.tx.Commit()
	}
	for i := 0; i < s.p.Warmup; i++ {
		write(i)
	}
	s.record()
	for i := 0; i < s.p.Transactions; i++ {
		write(s.p.Warmup + i)
	}
	return s.rec.Finish()
}

// PQueue is a persistent FIFO queue: producers append nodes, consumers
// unlink from the head; both are durable transactions, matching the
// PMDK queue example's persistence pattern.
type PQueue struct{}

// Name implements Workload.
func (PQueue) Name() string { return "PQueue" }

// Queue node layout (one line): +0 next, +8 value addr, +16 value len.
type pqueueState struct {
	*session
	headSlot, tailSlot uint64
}

func (q *pqueueState) enqueue(i uint64) {
	val := q.payload(i)
	q.compute(90)
	vaddr := q.heap.Alloc(uint64(len(val)))
	node := q.heap.Alloc(64)
	tail := q.heap.ReadU64(q.tailSlot)

	q.tx.Begin()
	q.tx.StoreFresh(vaddr, val)
	q.tx.StoreFreshU64(node+8, vaddr)
	q.tx.StoreFreshU64(node+16, uint64(len(val)))
	if tail == 0 {
		q.tx.StoreU64(q.headSlot, node)
	} else {
		q.tx.StoreU64(tail, node) // old tail's next
	}
	q.tx.StoreU64(q.tailSlot, node)
	q.tx.Commit()
}

func (q *pqueueState) dequeue() bool {
	q.compute(70)
	head := q.heap.ReadU64(q.headSlot)
	if head == 0 {
		return false
	}
	next := q.heap.ReadU64(head)
	q.tx.Begin()
	q.tx.StoreU64(q.headSlot, next)
	if next == 0 {
		q.tx.StoreU64(q.tailSlot, 0)
	}
	q.tx.Commit()
	return true
}

// Generate implements Workload.
func (PQueue) Generate(p Params) *trace.Trace {
	s := newSession("PQueue", p)
	q := &pqueueState{session: s}
	q.headSlot = s.heap.Alloc(64)
	q.tailSlot = s.heap.Alloc(64)

	for i := 0; i < s.p.Warmup; i++ {
		q.enqueue(uint64(i))
	}
	s.record()
	for i := 0; i < s.p.Transactions; i++ {
		// Producer/consumer mix: 60% enqueue keeps the queue growing
		// slowly, realistic for a logging pipeline.
		if s.rng.Intn(5) < 3 {
			q.enqueue(uint64(s.p.Warmup + i))
		} else if !q.dequeue() {
			q.enqueue(uint64(s.p.Warmup + i))
		}
	}
	return s.rec.Finish()
}

// MicroNames lists the in-house microbenchmarks.
func MicroNames() []string { return []string{"TxStream", "PQueue"} }
