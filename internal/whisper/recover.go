package whisper

import (
	"fmt"

	"dolos/internal/pmem"
)

// ReadLineFunc reads one verified 64-byte line from recovered memory
// (typically masu.Unit.ReadLine adapted to drop the cost).
type ReadLineFunc func(addr uint64) ([64]byte, error)

// recoveredHeap adapts verified NVM reads to the heap interface the
// walkers need, caching lines so structural walks don't re-verify.
type recoveredHeap struct {
	read  ReadLineFunc
	cache map[uint64][64]byte
}

func (h *recoveredHeap) line(addr uint64) ([64]byte, error) {
	base := addr &^ 63
	if l, ok := h.cache[base]; ok {
		return l, nil
	}
	l, err := h.read(base)
	if err != nil {
		return l, err
	}
	h.cache[base] = l
	return l, nil
}

func (h *recoveredHeap) u64(addr uint64) (uint64, error) {
	l, err := h.line(addr)
	if err != nil {
		return 0, err
	}
	off := addr & 63
	var v uint64
	for i := uint64(0); i < 8; i++ {
		v |= uint64(l[off+i]) << (8 * i)
	}
	return v, nil
}

// HashmapReport summarizes a post-recovery structural walk of the
// persistent hashmap.
type HashmapReport struct {
	// Entries is the number of reachable key/value nodes.
	Entries int
	// Buckets is the number of non-empty buckets.
	Buckets int
	// MaxChain is the longest bucket chain encountered.
	MaxChain int
}

// WalkRecoveredHashmap traverses a persistent hashmap image from
// verified NVM reads after crash recovery: every bucket pointer and
// chain link must resolve to well-formed nodes within the heap. This is
// the application-level recovery check — the structure itself, not just
// individual lines, survived the crash.
//
// bucketsBase is the NVM address of the bucket array (the hashmap
// allocates it first, right after the undo log); heapBase/heapSize bound
// valid pointers.
func WalkRecoveredHashmap(read ReadLineFunc, bucketsBase, heapBase, heapSize uint64) (HashmapReport, error) {
	h := &recoveredHeap{read: read, cache: make(map[uint64][64]byte)}
	var rep HashmapReport
	valid := func(p uint64) bool {
		return p >= heapBase && p < heapBase+heapSize && p%8 == 0
	}
	for b := uint64(0); b < hashmapBuckets; b++ {
		node, err := h.u64(bucketsBase + b*8)
		if err != nil {
			return rep, fmt.Errorf("bucket %d: %w", b, err)
		}
		chain := 0
		for node != 0 {
			if !valid(node) {
				return rep, fmt.Errorf("bucket %d: dangling node pointer %#x", b, node)
			}
			key, err := h.u64(node)
			if err != nil {
				return rep, fmt.Errorf("node %#x: %w", node, err)
			}
			vaddr, err := h.u64(node + 16)
			if err != nil {
				return rep, err
			}
			vlen, err := h.u64(node + 24)
			if err != nil {
				return rep, err
			}
			if vaddr != 0 && (!valid(vaddr) || vlen == 0 || vlen > 1<<20) {
				return rep, fmt.Errorf("node %#x (key %d): bad value [%#x,+%d)", node, key, vaddr, vlen)
			}
			// The hash must route this key to this bucket — a relocated
			// or spliced node would land in the wrong chain.
			if hashKey(key)%hashmapBuckets != b {
				return rep, fmt.Errorf("node %#x: key %d in wrong bucket %d", node, key, b)
			}
			chain++
			rep.Entries++
			if chain > 1<<16 {
				return rep, fmt.Errorf("bucket %d: chain cycle suspected", b)
			}
			node, err = h.u64(node + 8)
			if err != nil {
				return rep, err
			}
		}
		if chain > 0 {
			rep.Buckets++
			if chain > rep.MaxChain {
				rep.MaxChain = chain
			}
		}
	}
	return rep, nil
}

// ResolveRecoveredLog parses and rolls back the workload's undo log from
// verified NVM reads, returning the restore set (empty when the crash
// did not interrupt a transaction). Callers apply the restores through
// their secure-memory write path.
func ResolveRecoveredLog(read ReadLineFunc, logBase uint64, capacity int) ([]pmem.UndoEntry, error) {
	var readErr error
	status, entries := pmem.ParseLog(logBase, capacity, func(addr uint64) [64]byte {
		l, err := read(addr)
		if err != nil && readErr == nil {
			readErr = err
		}
		return l
	})
	if readErr != nil {
		return nil, readErr
	}
	return pmem.Rollback(status, entries), nil
}
