package whisper

// Oracle tests: each data structure is driven with a random operation
// stream mirrored into a Go map; lookups must agree at every step.

import (
	"math/rand"
	"testing"
)

const oracleOps = 1500

func oracleKeys(rng *rand.Rand) []uint64 {
	keys := make([]uint64, oracleOps)
	for i := range keys {
		keys[i] = rng.Uint64() % 300 // dense range: plenty of collisions
	}
	return keys
}

func TestHashmapOracle(t *testing.T) {
	s := newSession("Hashmap", Params{Transactions: 1, Warmup: 1, TxSize: 128, Seed: 1, HeapSize: 64 << 20})
	m := &hashmapState{session: s}
	m.buckets = s.heap.Alloc(hashmapBuckets * 8)
	rng := rand.New(rand.NewSource(99))
	oracle := map[uint64]bool{}

	for _, k := range oracleKeys(rng) {
		switch rng.Intn(3) {
		case 0, 1:
			m.put(k)
			oracle[k] = true
		case 2:
			m.del(k)
			delete(oracle, k)
		}
		node, _ := m.lookup(k)
		if (node != 0) != oracle[k] {
			t.Fatalf("hashmap disagrees with oracle on key %d: got %v want %v", k, node != 0, oracle[k])
		}
	}
}

func TestBtreeOracle(t *testing.T) {
	s := newSession("Btree", Params{Transactions: 1, Warmup: 1, TxSize: 128, Seed: 1, HeapSize: 64 << 20})
	b := &btreeState{session: s}
	b.root = b.newNode(true)
	rng := rand.New(rand.NewSource(7))
	oracle := map[uint64]bool{}

	for _, k := range oracleKeys(rng) {
		b.insert(k)
		oracle[k] = true
		// Check this key plus a random other key.
		probe := rng.Uint64() % 300
		if (b.get(probe) != 0) != oracle[probe] {
			t.Fatalf("btree disagrees with oracle on key %d", probe)
		}
	}
	for k := range oracle {
		if b.get(k) == 0 {
			t.Fatalf("btree lost key %d", k)
		}
	}
}

func TestCtreeOracle(t *testing.T) {
	s := newSession("Ctree", Params{Transactions: 1, Warmup: 1, TxSize: 128, Seed: 1, HeapSize: 64 << 20})
	c := &ctreeState{session: s}
	c.rootSlot = s.heap.Alloc(64)
	rng := rand.New(rand.NewSource(13))
	oracle := map[uint64]bool{}

	for _, k := range oracleKeys(rng) {
		c.put(k)
		oracle[k] = true
		probe := rng.Uint64() % 300
		found := c.get(probe) != 0
		if found != oracle[probe] {
			t.Fatalf("ctree disagrees with oracle on key %d: got %v", probe, found)
		}
	}
}

func TestRBtreeOracle(t *testing.T) {
	s := newSession("RBtree", Params{Transactions: 1, Warmup: 1, TxSize: 128, Seed: 1, HeapSize: 64 << 20})
	r := &rbtreeState{session: s}
	r.rootSlot = s.heap.Alloc(64)
	rng := rand.New(rand.NewSource(21))
	oracle := map[uint64]bool{}

	for _, k := range oracleKeys(rng) {
		r.put(k)
		oracle[k] = true
		probe := rng.Uint64() % 300
		if (r.get(probe) != 0) != oracle[probe] {
			t.Fatalf("rbtree disagrees with oracle on key %d", probe)
		}
	}
	// Full invariant check after the stream.
	assertRedBlackInvariants(t, r)
}

func assertRedBlackInvariants(t *testing.T, r *rbtreeState) {
	t.Helper()
	if r.root() != 0 && r.color(r.root()) != rbBlack {
		t.Fatal("root not black")
	}
	// Equal black-height on every path, no red-red edges, BST order.
	var walk func(n uint64, min, max uint64) int
	walk = func(n uint64, min, max uint64) int {
		if n == 0 {
			return 1
		}
		k := r.key(n)
		if k < min || k > max {
			t.Fatalf("BST violation at key %d", k)
		}
		if r.color(n) == rbRed {
			if r.color(r.left(n)) == rbRed || r.color(r.right(n)) == rbRed {
				t.Fatal("red-red violation")
			}
		}
		var lo, hi uint64 = min, max
		lh := walk(r.left(n), lo, k)
		rh := walk(r.right(n), k, hi)
		if lh != rh {
			t.Fatalf("black-height mismatch at key %d: %d vs %d", k, lh, rh)
		}
		if r.color(n) == rbBlack {
			return lh + 1
		}
		return lh
	}
	walk(r.root(), 0, ^uint64(0))
}

func TestRedisOracle(t *testing.T) {
	s := newSession("Redis", Params{Transactions: 1, Warmup: 1, TxSize: 128, Seed: 1, HeapSize: 64 << 20})
	r := &redisState{session: s}
	r.buckets = s.heap.Alloc(redisBuckets * 8)
	rng := rand.New(rand.NewSource(31))
	oracle := map[uint64]bool{}

	for _, k := range oracleKeys(rng) {
		switch rng.Intn(4) {
		case 0, 1, 2:
			r.set(k)
			oracle[k] = true
		case 3:
			r.del(k)
			delete(oracle, k)
		}
		entry, _ := r.find(k)
		if (entry != 0) != oracle[k] {
			t.Fatalf("redis dict disagrees with oracle on key %d", k)
		}
	}
}

func TestYCSBGenerationsAdvance(t *testing.T) {
	s := newSession("NStore:YCSB", Params{Transactions: 1, Warmup: 1, TxSize: 128, Seed: 1, HeapSize: 64 << 20})
	y := &ycsbState{session: s}
	y.table = s.heap.Alloc(64 * 8)
	for i := uint64(0); i < 8; i++ {
		y.populate(i)
	}
	rec := s.heap.ReadU64(y.slotAddr(3))
	if g := s.heap.ReadU64(rec + 16); g != 0 {
		t.Fatalf("fresh generation = %d", g)
	}
	y.update(3)
	y.update(3)
	if g := s.heap.ReadU64(rec + 16); g != 2 {
		t.Fatalf("generation after two updates = %d", g)
	}
}
