package whisper

import "dolos/internal/trace"

// Btree is the WHISPER persistent B+tree: order-8 nodes, values stored
// out-of-line, every insert a durable transaction.
type Btree struct{}

// Name implements Workload.
func (Btree) Name() string { return "Btree" }

// B+tree node layout (4 lines = 256 B):
//
//	+0   nkeys
//	+8   leaf flag (1 = leaf)
//	+16  keys[7]
//	+72  children[8] (internal) or values[7]+next (leaf)
const (
	btreeOrder    = 8 // max children; max keys = 7
	btreeNodeSize = 256
	btNKeys       = 0
	btLeaf        = 8
	btKeys        = 16
	btPtrs        = 72
)

type btreeState struct {
	*session
	root uint64
}

func (b *btreeState) newNode(leaf bool) uint64 {
	n := b.heap.Alloc(btreeNodeSize)
	if leaf {
		// Freshly allocated nodes are zero; only the flag needs setting.
		b.heap.WriteU64(n+btLeaf, 1)
	}
	return n
}

func (b *btreeState) nkeys(n uint64) uint64 { return b.heap.ReadU64(n + btNKeys) }
func (b *btreeState) isLeaf(n uint64) bool  { return b.heap.ReadU64(n+btLeaf) == 1 }
func (b *btreeState) key(n uint64, i int) uint64 {
	return b.heap.ReadU64(n + btKeys + uint64(i)*8)
}
func (b *btreeState) ptr(n uint64, i int) uint64 {
	return b.heap.ReadU64(n + btPtrs + uint64(i)*8)
}

// findSlot returns the insertion point within a leaf (first index whose
// key is >= key).
func (b *btreeState) findSlot(n uint64, key uint64) int {
	cnt := int(b.nkeys(n))
	i := 0
	for i < cnt && b.key(n, i) < key {
		b.compute(15)
		i++
	}
	return i
}

// descendSlot returns the child index to follow in an internal node.
// Keys equal to a separator descend right, because leaf splits copy the
// median key into the right sibling.
func (b *btreeState) descendSlot(n uint64, key uint64) int {
	cnt := int(b.nkeys(n))
	i := 0
	for i < cnt && key >= b.key(n, i) {
		b.compute(15)
		i++
	}
	return i
}

// insert adds (key -> payload) into the tree, splitting full nodes on the
// way down (proactive splitting keeps the transaction footprint bounded).
func (b *btreeState) insert(key uint64) {
	val := b.payload(key)
	b.tx.Begin()
	vaddr := b.heap.Alloc(uint64(len(val)))
	b.tx.StoreFresh(vaddr, val)

	if b.nkeys(b.root) == btreeOrder-1 {
		// Split the root: new root with one key.
		oldRoot := b.root
		newRoot := b.newNode(false)
		b.tx.StoreFreshU64(newRoot+btPtrs, oldRoot)
		b.splitChild(newRoot, 0, oldRoot)
		b.root = newRoot
	}

	n := b.root
	for !b.isLeaf(n) {
		b.compute(40)
		i := b.descendSlot(n, key)
		child := b.ptr(n, i)
		if b.nkeys(child) == btreeOrder-1 {
			b.splitChild(n, i, child)
			i = b.descendSlot(n, key)
			child = b.ptr(n, i)
		}
		n = child
	}

	// Insert into the (non-full) leaf: shift keys/values right.
	cnt := int(b.nkeys(n))
	i := b.findSlot(n, key)
	if i < cnt && b.key(n, i) == key {
		// Update: point the slot at the new value (old value abandoned).
		b.tx.StoreU64(n+btPtrs+uint64(i)*8, vaddr)
		b.tx.Commit()
		return
	}
	for j := cnt; j > i; j-- {
		b.tx.StoreU64(n+btKeys+uint64(j)*8, b.key(n, j-1))
		b.tx.StoreU64(n+btPtrs+uint64(j)*8, b.ptr(n, j-1))
	}
	b.tx.StoreU64(n+btKeys+uint64(i)*8, key)
	b.tx.StoreU64(n+btPtrs+uint64(i)*8, vaddr)
	b.tx.StoreU64(n+btNKeys, uint64(cnt+1))
	b.tx.Commit()
}

// splitChild splits full child at parent slot i (inside the open tx).
func (b *btreeState) splitChild(parent uint64, i int, child uint64) {
	b.compute(120)
	mid := (btreeOrder - 1) / 2 // 3
	right := b.newNode(b.isLeaf(child))
	leaf := b.isLeaf(child)

	// Move the upper keys into the new right node.
	moved := btreeOrder - 1 - mid - 1 // keys above the median
	if leaf {
		moved = btreeOrder - 1 - mid // leaves keep the median copy right
	}
	for j := 0; j < moved; j++ {
		src := mid + 1 + j
		if leaf {
			src = mid + j
		}
		b.tx.StoreFreshU64(right+btKeys+uint64(j)*8, b.key(child, src))
		b.tx.StoreFreshU64(right+btPtrs+uint64(j)*8, b.ptr(child, src))
	}
	if !leaf {
		for j := 0; j <= moved; j++ {
			b.tx.StoreFreshU64(right+btPtrs+uint64(j)*8, b.ptr(child, mid+1+j))
		}
	}
	b.tx.StoreFreshU64(right+btNKeys, uint64(moved))

	// Shrink the child.
	b.tx.StoreU64(child+btNKeys, uint64(mid))

	// Shift the parent's keys/pointers right and link the new node.
	cnt := int(b.nkeys(parent))
	for j := cnt; j > i; j-- {
		b.tx.StoreU64(parent+btKeys+uint64(j)*8, b.key(parent, j-1))
		b.tx.StoreU64(parent+btPtrs+uint64(j+1)*8, b.ptr(parent, j))
	}
	b.tx.StoreU64(parent+btKeys+uint64(i)*8, b.key(child, mid))
	b.tx.StoreU64(parent+btPtrs+uint64(i+1)*8, right)
	b.tx.StoreU64(parent+btNKeys, uint64(cnt+1))
}

// get walks to key (read traffic only).
func (b *btreeState) get(key uint64) uint64 {
	n := b.root
	for !b.isLeaf(n) {
		b.compute(40)
		n = b.ptr(n, b.descendSlot(n, key))
	}
	i := b.findSlot(n, key)
	if i < int(b.nkeys(n)) && b.key(n, i) == key {
		return b.ptr(n, i)
	}
	return 0
}

// Generate implements Workload.
func (Btree) Generate(p Params) *trace.Trace {
	s := newSession("Btree", p)
	b := &btreeState{session: s}
	b.root = b.newNode(true)

	keyRange := uint64(s.p.Warmup + s.p.Transactions*2)
	for i := 0; i < s.p.Warmup; i++ {
		b.insert(s.rng.Uint64() % keyRange)
	}
	s.record()
	for i := 0; i < s.p.Transactions; i++ {
		key := s.rng.Uint64() % keyRange
		if s.rng.Intn(5) == 0 {
			b.get(key) // occasional point lookups between inserts
		}
		b.insert(key)
	}
	return s.rec.Finish()
}
