package whisper

import (
	"testing"

	"dolos/internal/trace"
)

func smallParams() Params {
	return Params{Transactions: 60, Warmup: 40, TxSize: 256, Seed: 7}
}

func TestAllWorkloadsGenerate(t *testing.T) {
	for _, w := range All() {
		w := w
		t.Run(w.Name(), func(t *testing.T) {
			tr := w.Generate(smallParams())
			if tr.Name != w.Name() {
				t.Fatalf("trace name %q", tr.Name)
			}
			if tr.Transactions < 60 {
				t.Fatalf("recorded %d transactions, want >= 60", tr.Transactions)
			}
			c := tr.Count()
			if c.Writes == 0 || c.Flushes == 0 || c.Fences == 0 {
				t.Fatalf("degenerate trace: %+v", c)
			}
			if c.ComputeCycles == 0 {
				t.Fatal("no compute recorded")
			}
		})
	}
}

func TestNamesAndByName(t *testing.T) {
	if len(Names()) != 6 {
		t.Fatalf("names = %v", Names())
	}
	for _, n := range Names() {
		w, err := ByName(n)
		if err != nil || w.Name() != n {
			t.Fatalf("ByName(%q) -> %v, %v", n, w, err)
		}
	}
	if _, err := ByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestDeterministicTraces(t *testing.T) {
	for _, w := range All() {
		a := w.Generate(smallParams())
		b := w.Generate(smallParams())
		if len(a.Ops) != len(b.Ops) {
			t.Fatalf("%s: nondeterministic op count %d vs %d", w.Name(), len(a.Ops), len(b.Ops))
		}
		for i := range a.Ops {
			if a.Ops[i] != b.Ops[i] {
				t.Fatalf("%s: op %d differs", w.Name(), i)
			}
		}
	}
}

func TestTxSizeScalesFlushes(t *testing.T) {
	for _, w := range All() {
		small := w.Generate(Params{Transactions: 40, Warmup: 30, TxSize: 128, Seed: 3})
		large := w.Generate(Params{Transactions: 40, Warmup: 30, TxSize: 2048, Seed: 3})
		if large.Count().Flushes <= small.Count().Flushes {
			t.Fatalf("%s: flushes did not scale with tx size: %d vs %d",
				w.Name(), small.Count().Flushes, large.Count().Flushes)
		}
	}
}

func TestFlushesAlwaysFenced(t *testing.T) {
	// Crash consistency of the generators themselves: every transaction's
	// flushes are followed by a fence before TxEnd.
	for _, w := range All() {
		tr := w.Generate(smallParams())
		pendingFlush := false
		for _, op := range tr.Ops {
			switch op.Kind {
			case trace.Flush:
				pendingFlush = true
			case trace.Fence:
				pendingFlush = false
			case trace.TxEnd:
				if pendingFlush {
					t.Fatalf("%s: TxEnd with unfenced flushes", w.Name())
				}
			}
		}
	}
}

func TestAddressesWithinHeap(t *testing.T) {
	p := smallParams()
	p = p.withDefaults()
	for _, w := range All() {
		tr := w.Generate(p)
		for _, op := range tr.Ops {
			switch op.Kind {
			case trace.Read, trace.Write, trace.Flush:
				if op.Addr < p.HeapBase || op.Addr >= p.HeapBase+p.HeapSize {
					t.Fatalf("%s: op addr %#x outside heap", w.Name(), op.Addr)
				}
			}
		}
	}
}

func TestHashmapFunctional(t *testing.T) {
	s := newSession("Hashmap", Params{Transactions: 10, Warmup: 1, TxSize: 128, Seed: 1})
	m := &hashmapState{session: s}
	m.buckets = s.heap.Alloc(hashmapBuckets * 8)
	m.put(42)
	node, _ := m.lookup(42)
	if node == 0 {
		t.Fatal("inserted key not found")
	}
	m.del(42)
	node, _ = m.lookup(42)
	if node != 0 {
		t.Fatal("deleted key still present")
	}
}

func TestBtreeFunctional(t *testing.T) {
	s := newSession("Btree", Params{Transactions: 10, Warmup: 1, TxSize: 128, Seed: 1})
	b := &btreeState{session: s}
	b.root = b.newNode(true)
	keys := []uint64{50, 10, 90, 30, 70, 20, 80, 40, 60, 1, 99, 55, 45, 35, 25, 15, 5, 65, 75, 85}
	for _, k := range keys {
		b.insert(k)
	}
	for _, k := range keys {
		if b.get(k) == 0 {
			t.Fatalf("key %d lost after splits", k)
		}
	}
	if b.get(1000) != 0 {
		t.Fatal("phantom key found")
	}
}

func TestBtreeManyKeysSorted(t *testing.T) {
	s := newSession("Btree", Params{Transactions: 10, Warmup: 1, TxSize: 128, Seed: 1})
	b := &btreeState{session: s}
	b.root = b.newNode(true)
	for k := uint64(1); k <= 300; k++ {
		b.insert(k * 7 % 301)
	}
	for k := uint64(1); k <= 300; k++ {
		if b.get(k*7%301) == 0 {
			t.Fatalf("key %d missing", k*7%301)
		}
	}
}

func TestCtreeFunctional(t *testing.T) {
	s := newSession("Ctree", Params{Transactions: 10, Warmup: 1, TxSize: 128, Seed: 1})
	c := &ctreeState{session: s}
	c.rootSlot = s.heap.Alloc(64)
	keys := []uint64{0, 1, 2, 255, 256, 1 << 40, 1<<40 + 1, 7, 8, 9}
	for _, k := range keys {
		c.put(k)
	}
	for _, k := range keys {
		if c.get(k) == 0 && k != 0 {
			t.Fatalf("key %d lost", k)
		}
	}
	if c.get(12345) != 0 {
		t.Fatal("phantom key")
	}
}

func TestRBtreeFunctionalAndBalanced(t *testing.T) {
	s := newSession("RBtree", Params{Transactions: 10, Warmup: 1, TxSize: 128, Seed: 1})
	r := &rbtreeState{session: s}
	r.rootSlot = s.heap.Alloc(64)
	n := uint64(500)
	for k := uint64(0); k < n; k++ {
		r.put(k) // adversarial: sorted insertion
	}
	for k := uint64(0); k < n; k++ {
		if r.get(k) == 0 {
			t.Fatalf("key %d lost", k)
		}
	}
	// Red-black invariants: root black, no red-red edges, and height
	// bounded by 2*log2(n+1).
	var maxDepth int
	var check func(node uint64, depth int)
	check = func(node uint64, depth int) {
		if node == 0 {
			if depth > maxDepth {
				maxDepth = depth
			}
			return
		}
		if r.color(node) == rbRed {
			if r.color(r.left(node)) == rbRed || r.color(r.right(node)) == rbRed {
				t.Fatal("red-red violation")
			}
		}
		check(r.left(node), depth+1)
		check(r.right(node), depth+1)
	}
	if r.color(r.root()) != rbBlack {
		t.Fatal("root not black")
	}
	check(r.root(), 0)
	if maxDepth > 20 { // 2*log2(501) ~= 18
		t.Fatalf("tree depth %d too large for %d sorted inserts", maxDepth, n)
	}
}

func TestYCSBSkew(t *testing.T) {
	tr := YCSB{}.Generate(Params{Transactions: 100, Warmup: 100, TxSize: 256, Seed: 5})
	if tr.Transactions < 100 {
		t.Fatalf("transactions = %d", tr.Transactions)
	}
	// The zipfian mix should produce noticeably fewer distinct flushed
	// lines than a uniform workload of the same size.
	lines := map[uint64]bool{}
	flushes := 0
	for _, op := range tr.Ops {
		if op.Kind == trace.Flush {
			flushes++
			lines[op.Addr] = true
		}
	}
	if len(lines) >= flushes {
		t.Fatal("no flush-line reuse under zipfian skew")
	}
}

func TestRedisMixGeneratesReads(t *testing.T) {
	tr := Redis{}.Generate(Params{Transactions: 120, Warmup: 80, TxSize: 256, Seed: 9})
	c := tr.Count()
	if c.Reads == 0 {
		t.Fatal("GET mix produced no reads")
	}
}
