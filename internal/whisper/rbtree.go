package whisper

import "dolos/internal/trace"

// RBtree is the WHISPER persistent red-black tree: every insert runs the
// classic rebalance (recolor + rotations), so a transaction touches a
// handful of scattered nodes in addition to the payload — the most
// pointer-update-heavy of the tree workloads.
type RBtree struct{}

// Name implements Workload.
func (RBtree) Name() string { return "RBtree" }

// Node layout (one line):
//
//	+0 key  +8 value addr  +16 left  +24 right  +32 parent  +40 color
const (
	rbKey    = 0
	rbVal    = 8
	rbLeft   = 16
	rbRight  = 24
	rbParent = 32
	rbColor  = 40

	rbRed   = 1
	rbBlack = 0
)

type rbtreeState struct {
	*session
	rootSlot uint64
}

func (r *rbtreeState) root() uint64           { return r.heap.ReadU64(r.rootSlot) }
func (r *rbtreeState) key(n uint64) uint64    { return r.heap.ReadU64(n + rbKey) }
func (r *rbtreeState) left(n uint64) uint64   { return r.heap.ReadU64(n + rbLeft) }
func (r *rbtreeState) right(n uint64) uint64  { return r.heap.ReadU64(n + rbRight) }
func (r *rbtreeState) parent(n uint64) uint64 { return r.heap.ReadU64(n + rbParent) }
func (r *rbtreeState) color(n uint64) uint64 {
	if n == 0 {
		return rbBlack // nil leaves are black
	}
	return r.heap.ReadU64(n + rbColor)
}

func (r *rbtreeState) setLink(n uint64, off uint64, v uint64) { r.tx.StoreU64(n+off, v) }

// rotateLeft rotates n leftward (inside the open transaction).
func (r *rbtreeState) rotateLeft(n uint64) {
	r.compute(60)
	p := r.parent(n)
	q := r.right(n)
	qLeft := r.left(q)
	r.setLink(n, rbRight, qLeft)
	if qLeft != 0 {
		r.setLink(qLeft, rbParent, n)
	}
	r.setLink(q, rbLeft, n)
	r.setLink(n, rbParent, q)
	r.setLink(q, rbParent, p)
	r.replaceChild(p, n, q)
}

// rotateRight rotates n rightward.
func (r *rbtreeState) rotateRight(n uint64) {
	r.compute(60)
	p := r.parent(n)
	q := r.left(n)
	qRight := r.right(q)
	r.setLink(n, rbLeft, qRight)
	if qRight != 0 {
		r.setLink(qRight, rbParent, n)
	}
	r.setLink(q, rbRight, n)
	r.setLink(n, rbParent, q)
	r.setLink(q, rbParent, p)
	r.replaceChild(p, n, q)
}

// replaceChild repoints p's link from oldC to newC (root slot when p==0).
func (r *rbtreeState) replaceChild(p, oldC, newC uint64) {
	if p == 0 {
		r.tx.StoreU64(r.rootSlot, newC)
		return
	}
	if r.left(p) == oldC {
		r.setLink(p, rbLeft, newC)
	} else {
		r.setLink(p, rbRight, newC)
	}
}

// put inserts or updates key with a fresh payload.
func (r *rbtreeState) put(key uint64) {
	// Walk down (read traffic) to find the attach point.
	var parent uint64
	var goLeft bool
	n := r.root()
	for n != 0 {
		r.compute(30)
		k := r.key(n)
		if k == key {
			// Update in place.
			val := r.payload(key)
			r.tx.Begin()
			r.tx.Store(r.heap.ReadU64(n+rbVal), val)
			r.tx.Commit()
			return
		}
		parent = n
		goLeft = key < k
		if goLeft {
			n = r.left(n)
		} else {
			n = r.right(n)
		}
	}

	val := r.payload(key)
	r.tx.Begin()
	vaddr := r.heap.Alloc(uint64(len(val)))
	node := r.heap.Alloc(64)
	r.tx.StoreFresh(vaddr, val)
	r.tx.StoreFreshU64(node+rbKey, key)
	r.tx.StoreFreshU64(node+rbVal, vaddr)
	r.tx.StoreFreshU64(node+rbParent, parent)
	r.tx.StoreFreshU64(node+rbColor, rbRed)
	if parent == 0 {
		r.tx.StoreU64(r.rootSlot, node)
	} else if goLeft {
		r.setLink(parent, rbLeft, node)
	} else {
		r.setLink(parent, rbRight, node)
	}
	r.fixInsert(node)
	r.tx.Commit()
}

// fixInsert restores red-black invariants after attaching a red node.
func (r *rbtreeState) fixInsert(n uint64) {
	for {
		p := r.parent(n)
		if p == 0 {
			r.tx.StoreU64(n+rbColor, rbBlack)
			return
		}
		if r.color(p) == rbBlack {
			return
		}
		g := r.parent(p)
		var uncle uint64
		if r.left(g) == p {
			uncle = r.right(g)
		} else {
			uncle = r.left(g)
		}
		if r.color(uncle) == rbRed {
			r.tx.StoreU64(p+rbColor, rbBlack)
			r.tx.StoreU64(uncle+rbColor, rbBlack)
			r.tx.StoreU64(g+rbColor, rbRed)
			n = g
			continue
		}
		if r.left(g) == p {
			if r.right(p) == n {
				r.rotateLeft(p)
				n, p = p, n
			}
			r.tx.StoreU64(p+rbColor, rbBlack)
			r.tx.StoreU64(g+rbColor, rbRed)
			r.rotateRight(g)
		} else {
			if r.left(p) == n {
				r.rotateRight(p)
				n, p = p, n
			}
			r.tx.StoreU64(p+rbColor, rbBlack)
			r.tx.StoreU64(g+rbColor, rbRed)
			r.rotateLeft(g)
		}
		return
	}
}

// get walks to key.
func (r *rbtreeState) get(key uint64) uint64 {
	n := r.root()
	for n != 0 {
		r.compute(30)
		k := r.key(n)
		if k == key {
			return r.heap.ReadU64(n + rbVal)
		}
		if key < k {
			n = r.left(n)
		} else {
			n = r.right(n)
		}
	}
	return 0
}

// Generate implements Workload.
func (RBtree) Generate(p Params) *trace.Trace {
	s := newSession("RBtree", p)
	r := &rbtreeState{session: s}
	r.rootSlot = s.heap.Alloc(64)

	keyRange := uint64(s.p.Warmup + s.p.Transactions*2)
	for i := 0; i < s.p.Warmup; i++ {
		r.put(s.rng.Uint64() % keyRange)
	}
	s.record()
	for i := 0; i < s.p.Transactions; i++ {
		key := s.rng.Uint64() % keyRange
		if s.rng.Intn(4) == 0 {
			r.get(s.rng.Uint64() % keyRange)
		}
		r.put(key)
	}
	return s.rec.Finish()
}
