// Package whisper implements the six persistent database workloads the
// paper evaluates (Section 5.1), modeled on the WHISPER suite: Hashmap,
// Ctree (crit-bit tree), Btree, RBtree, NStore:YCSB and Redis. Each is a
// genuine data-structure implementation over the pmem persistent heap
// with PMDK-style undo-log transactions; running one produces the memory
// trace (stores, flushes, fences, loads, compute gaps) that drives the
// timing simulator.
//
// Mirroring the paper's methodology, each workload is fast-forwarded (a
// warm-up phase populates the structure without recording) and then the
// measured transactions are recorded. The transaction-size parameter sets
// the per-transaction value payload (128 B - 2048 B in Figures 13-14).
package whisper

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"

	"dolos/internal/pmem"
	"dolos/internal/sim"
	"dolos/internal/trace"
)

// ErrUnknown is the sentinel wrapped by every "no such workload"
// failure (ByName, Resolve), re-exported at the façade as
// dolos.ErrUnknownWorkload so callers can errors.Is their way from an
// arbitrary run error to the misspelled-workload cause.
var ErrUnknown = errors.New("unknown workload")

// Params configures a workload run.
type Params struct {
	// Transactions is the number of measured transactions.
	Transactions int
	// TxSize is the per-transaction value payload in bytes (the paper's
	// "transaction size"; default 1024).
	TxSize int
	// Warmup is the number of unrecorded warm-up operations (default
	// Transactions / 2).
	Warmup int
	// Seed fixes the operation stream (default 1).
	Seed int64
	// HeapBase and HeapSize place the persistent heap (defaults: 4 KB
	// into the data region, 48 MB).
	HeapBase, HeapSize uint64
	// ReadPercent shifts the NStore:YCSB operation mix: percentage of
	// read operations (0 = the default 50/50 YCSB-A mix; use 95 for a
	// YCSB-B-like read-mostly mix). Other workloads ignore it.
	ReadPercent int
}

// WithDefaults returns the parameters with every unset field filled in,
// so callers can compute derived addresses (heap base, log location).
func (p Params) WithDefaults() Params { return p.withDefaults() }

func (p Params) withDefaults() Params {
	if p.Transactions == 0 {
		p.Transactions = 1000
	}
	if p.TxSize == 0 {
		p.TxSize = 1024
	}
	if p.Warmup == 0 {
		p.Warmup = p.Transactions / 2
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if p.HeapBase == 0 {
		p.HeapBase = 4096
	}
	if p.HeapSize == 0 {
		p.HeapSize = 48 << 20
	}
	return p
}

// Workload generates a memory trace from a persistent application.
type Workload interface {
	// Name returns the benchmark name as the paper's figures label it.
	Name() string
	// Generate runs the workload and returns its trace.
	Generate(p Params) *trace.Trace
}

// Names lists the six benchmarks in the paper's figure order.
func Names() []string {
	return []string{"Hashmap", "Ctree", "Btree", "RBtree", "NStore:YCSB", "Redis"}
}

// ByName returns the named workload.
func ByName(name string) (Workload, error) {
	switch name {
	case "Hashmap":
		return Hashmap{}, nil
	case "Ctree":
		return Ctree{}, nil
	case "Btree":
		return Btree{}, nil
	case "RBtree":
		return RBtree{}, nil
	case "NStore:YCSB":
		return YCSB{}, nil
	case "Redis":
		return Redis{}, nil
	case "TxStream":
		return TxStream{}, nil
	case "PQueue":
		return PQueue{}, nil
	}
	return nil, fmt.Errorf("whisper: %w %q", ErrUnknown, name)
}

// aliasKey folds a workload spelling the same way the scheme aliases
// fold: lowercase with separator runes removed, so "NStore:YCSB",
// "nstore-ycsb" and "NStore_YCSB" all resolve identically.
func aliasKey(name string) string {
	var b strings.Builder
	for _, r := range strings.ToLower(name) {
		switch r {
		case '-', '_', ' ', ':', '.':
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// workloadAliases maps folded spellings to canonical names: the six
// WHISPER benchmarks, the two microbenchmarks, and the short forms the
// paper's text uses for the YCSB workload.
var workloadAliases = func() map[string]string {
	m := make(map[string]string)
	for _, n := range Names() {
		m[aliasKey(n)] = n
	}
	for _, n := range MicroNames() {
		m[aliasKey(n)] = n
	}
	m["ycsb"] = "NStore:YCSB"
	m["nstore"] = "NStore:YCSB"
	return m
}()

// Resolve maps any accepted workload spelling — canonical names in any
// case or hyphenation, plus the YCSB short forms — onto the canonical
// name ByName and the paper's figures use. The error wraps ErrUnknown.
func Resolve(name string) (string, error) {
	if canon, ok := workloadAliases[aliasKey(name)]; ok {
		return canon, nil
	}
	return "", fmt.Errorf("whisper: %w %q (want one of %s)",
		ErrUnknown, name, strings.Join(Names(), ", "))
}

// All returns every workload in figure order.
func All() []Workload {
	out := make([]Workload, 0, 6)
	for _, n := range Names() {
		w, _ := ByName(n)
		out = append(out, w)
	}
	return out
}

// session bundles the common generation state.
type session struct {
	p    Params
	rec  *trace.Recorder
	heap *pmem.Heap
	tx   *pmem.TxHeap
	rng  *rand.Rand
}

// newSession builds the heap (recording disabled until record()).
func newSession(name string, p Params) *session {
	p = p.withDefaults()
	rec := trace.NewRecorder(name, p.TxSize)
	heap := pmem.NewHeap(p.HeapBase, p.HeapSize, nil)
	// Log capacity: payload lines + structural lines + slack for deep
	// rebalance chains (RBtree recoloring can ascend many levels).
	capacity := p.TxSize/64 + 64
	return &session{
		p:    p,
		rec:  rec,
		heap: heap,
		tx:   pmem.NewTx(heap, capacity),
		rng:  rand.New(rand.NewSource(p.Seed)),
	}
}

// record switches from warm-up to measured mode: the warm-up heap image
// becomes the trace's checkpoint (gem5-style fast-forward state) and
// subsequent accesses are recorded.
func (s *session) record() {
	s.rec.SetInitImage(s.heap.UsedImage())
	s.heap.SetRecorder(s.rec)
}

// LogCapacity returns the undo-log entry capacity a session uses for the
// given parameters (mirrors newSession's computation).
func LogCapacity(p Params) int {
	p = p.withDefaults()
	return p.TxSize/64 + 64
}

// StructureBase returns the NVM address of the first structure a
// workload allocates after its undo log (e.g. the Hashmap bucket array),
// for post-recovery structural walks.
func StructureBase(p Params) uint64 {
	p = p.withDefaults()
	return p.HeapBase + pmem.LogLines(LogCapacity(p))*pmem.LineSize
}

// LogBase returns the NVM address of a workload's undo log.
func LogBase(p Params) uint64 {
	return p.withDefaults().HeapBase
}

// payload builds a deterministic value of the transaction size.
func (s *session) payload(key uint64) []byte {
	buf := make([]byte, s.p.TxSize)
	for i := range buf {
		buf[i] = byte(key + uint64(i)*7)
	}
	return buf
}

// compute charges workload-level compute cycles (hashing, comparisons,
// parsing) beyond the pmem per-access overheads.
func (s *session) compute(c sim.Cycle) { s.heap.Compute(c) }
