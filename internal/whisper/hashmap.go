package whisper

import "dolos/internal/trace"

// Hashmap is the WHISPER persistent hashmap: chained buckets, each
// insert/update a durable transaction writing the value payload plus the
// chain linkage.
type Hashmap struct{}

// Name implements Workload.
func (Hashmap) Name() string { return "Hashmap" }

const hashmapBuckets = 4096

// hashNode layout (one line):
//
//	+0  key
//	+8  next node addr (0 = end)
//	+16 value addr
//	+24 value length
type hashmapState struct {
	*session
	buckets uint64 // address of the bucket pointer array
}

func hashKey(key uint64) uint64 {
	key ^= key >> 33
	key *= 0xff51afd7ed558ccd
	key ^= key >> 33
	return key
}

func (m *hashmapState) bucketAddr(key uint64) uint64 {
	return m.buckets + (hashKey(key)%hashmapBuckets)*8
}

// lookup walks the chain, returning the node holding key and its
// predecessor link address (bucket slot or previous node's next field).
func (m *hashmapState) lookup(key uint64) (node, prevLink uint64) {
	m.compute(80) // hash + index arithmetic
	link := m.bucketAddr(key)
	node = m.heap.ReadU64(link)
	for node != 0 {
		m.compute(20)
		if m.heap.ReadU64(node) == key {
			return node, link
		}
		link = node + 8
		node = m.heap.ReadU64(link)
	}
	return 0, link
}

// put inserts or updates key with a payload value.
func (m *hashmapState) put(key uint64) {
	node, link := m.lookup(key)
	val := m.payload(key)
	m.tx.Begin()
	if node != 0 {
		// Update in place: the old payload must be undo-logged.
		vaddr := m.heap.ReadU64(node + 16)
		m.tx.Store(vaddr, val)
	} else {
		vaddr := m.heap.Alloc(uint64(len(val)))
		naddr := m.heap.Alloc(32)
		m.tx.StoreFresh(vaddr, val)
		m.tx.StoreFreshU64(naddr, key)
		m.tx.StoreFreshU64(naddr+8, m.heap.ReadU64(link))
		m.tx.StoreFreshU64(naddr+16, vaddr)
		m.tx.StoreFreshU64(naddr+24, uint64(len(val)))
		m.tx.StoreU64(link, naddr) // the only logged line on insert
	}
	m.tx.Commit()
}

// del unlinks key if present.
func (m *hashmapState) del(key uint64) {
	node, link := m.lookup(key)
	if node == 0 {
		return
	}
	next := m.heap.ReadU64(node + 8)
	m.tx.Begin()
	m.tx.StoreU64(link, next)
	m.tx.Commit()
}

// Generate implements Workload.
func (Hashmap) Generate(p Params) *trace.Trace {
	s := newSession("Hashmap", p)
	m := &hashmapState{session: s}
	m.buckets = s.heap.Alloc(hashmapBuckets * 8)

	keyRange := uint64(s.p.Warmup + s.p.Transactions*2)
	for i := 0; i < s.p.Warmup; i++ {
		m.put(s.rng.Uint64() % keyRange)
	}
	s.record()
	for i := 0; i < s.p.Transactions; i++ {
		key := s.rng.Uint64() % keyRange
		if s.rng.Intn(10) == 0 {
			m.del(key)
			// Deletes are cheap; still a durable transaction. Pair with
			// an insert so every measured iteration writes a payload,
			// keeping the per-transaction size meaningful.
			m.put(s.rng.Uint64() % keyRange)
		} else {
			m.put(key)
		}
	}
	return s.rec.Finish()
}
