package whisper

import (
	"encoding/binary"

	"dolos/internal/trace"
)

// Redis models the WHISPER Redis port: a persistent dictionary driven by
// a SET/GET/DEL command mix, with per-command protocol processing
// (request parse, reply build) charged as compute. SETs are durable
// transactions through the dict; GETs generate read traffic.
type Redis struct{}

// Name implements Workload.
func (Redis) Name() string { return "Redis" }

const redisBuckets = 2048

// dictEntry layout (one line): +0 key hash, +8 next, +16 value addr,
// +24 value len, +32.. inline key bytes (up to 24).
type redisState struct {
	*session
	buckets uint64
}

// commandCost is the RESP parse + dispatch + reply cost per command.
const commandCost = 260

func (r *redisState) bucketAddr(h uint64) uint64 {
	return r.buckets + (h%redisBuckets)*8
}

func redisHash(key uint64) uint64 {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], key)
	h := uint64(14695981039346656037)
	for _, x := range b {
		h = (h ^ uint64(x)) * 1099511628211
	}
	return h
}

func (r *redisState) find(key uint64) (entry, link uint64) {
	h := redisHash(key)
	link = r.bucketAddr(h)
	entry = r.heap.ReadU64(link)
	for entry != 0 {
		r.compute(18)
		if r.heap.ReadU64(entry) == h {
			return entry, link
		}
		link = entry + 8
		entry = r.heap.ReadU64(link)
	}
	return 0, link
}

// set executes SET key <payload>.
func (r *redisState) set(key uint64) {
	r.compute(commandCost)
	entry, link := r.find(key)
	val := r.payload(key)
	r.tx.Begin()
	if entry != 0 {
		r.tx.Store(r.heap.ReadU64(entry+16), val)
	} else {
		vaddr := r.heap.Alloc(uint64(len(val)))
		e := r.heap.Alloc(64)
		r.tx.StoreFresh(vaddr, val)
		r.tx.StoreFreshU64(e, redisHash(key))
		r.tx.StoreFreshU64(e+8, r.heap.ReadU64(link))
		r.tx.StoreFreshU64(e+16, vaddr)
		r.tx.StoreFreshU64(e+24, uint64(len(val)))
		r.tx.StoreU64(link, e)
	}
	r.tx.Commit()
}

// get executes GET key.
func (r *redisState) get(key uint64) {
	r.compute(commandCost)
	entry, _ := r.find(key)
	if entry == 0 {
		return
	}
	vaddr := r.heap.ReadU64(entry + 16)
	vlen := r.heap.ReadU64(entry + 24)
	if vlen > uint64(r.p.TxSize) {
		vlen = uint64(r.p.TxSize)
	}
	buf := make([]byte, vlen)
	r.heap.Read(vaddr, buf)
}

// del executes DEL key.
func (r *redisState) del(key uint64) {
	r.compute(commandCost)
	entry, link := r.find(key)
	if entry == 0 {
		return
	}
	next := r.heap.ReadU64(entry + 8)
	r.tx.Begin()
	r.tx.StoreU64(link, next)
	r.tx.Commit()
}

// Generate implements Workload.
func (Redis) Generate(p Params) *trace.Trace {
	s := newSession("Redis", p)
	r := &redisState{session: s}
	r.buckets = s.heap.Alloc(redisBuckets * 8)

	keyRange := uint64(s.p.Warmup + s.p.Transactions*2)
	for i := 0; i < s.p.Warmup; i++ {
		r.set(s.rng.Uint64() % keyRange)
	}
	s.record()
	for i := 0; i < s.p.Transactions; i++ {
		key := s.rng.Uint64() % keyRange
		switch s.rng.Intn(10) {
		case 0: // 10% DEL (paired with a SET so every iteration persists)
			r.del(key)
			r.set(s.rng.Uint64() % keyRange)
		case 1, 2: // 20% GET
			r.get(key)
			r.set(s.rng.Uint64() % keyRange)
		default: // 70% SET
			r.set(key)
		}
	}
	return s.rec.Finish()
}
