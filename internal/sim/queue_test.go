package sim

import (
	"container/heap"
	"math/rand"
	"testing"
)

// boxedQueue is the pre-de-boxing event queue — container/heap over
// *scheduled with `any` boxing — kept here as the reference the typed
// 4-ary heap must match event for event, and as the baseline for the
// allocation benchmarks below.
type boxedQueue []*scheduled

func (q boxedQueue) Len() int { return len(q) }

func (q boxedQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q boxedQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *boxedQueue) Push(x any) { *q = append(*q, x.(*scheduled)) }

func (q *boxedQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// TestQueueMatchesBoxedReference drives the typed 4-ary heap and the
// container/heap reference with the same randomized schedule mixed with
// interleaved pops and asserts the pop sequences are identical. seq is
// unique per event, so the comparator is a strict total order and any
// correct heap must emit the same sequence; this test pins the de-boxed
// implementation to that contract.
func TestQueueMatchesBoxedReference(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var q eventQueue
		var ref boxedQueue
		heap.Init(&ref)
		var seq uint64
		push := func() {
			seq++
			ev := scheduled{at: Cycle(rng.Intn(64)), seq: seq}
			q.push(ev)
			evCopy := ev
			heap.Push(&ref, &evCopy)
		}
		popBoth := func() {
			got := q.pop()
			want := heap.Pop(&ref).(*scheduled)
			if got.at != want.at || got.seq != want.seq {
				t.Fatalf("trial %d: pop (at=%d seq=%d), reference (at=%d seq=%d)",
					trial, got.at, got.seq, want.at, want.seq)
			}
		}
		for op := 0; op < 400; op++ {
			if q.len() == 0 || rng.Intn(3) != 0 {
				push()
			} else {
				popBoth()
			}
		}
		for q.len() > 0 {
			popBoth()
		}
		if ref.Len() != 0 {
			t.Fatalf("trial %d: reference has %d leftover events", trial, ref.Len())
		}
	}
}

// TestQueuePopReleasesEvent guards the fn-reference release in pop: the
// trailing slot must be zeroed so completed events are collectable.
func TestQueuePopReleasesEvent(t *testing.T) {
	var q eventQueue
	q.push(scheduled{at: 1, seq: 1, fn: func() {}})
	q.push(scheduled{at: 2, seq: 2, fn: func() {}})
	q.pop()
	if tail := q.a[:cap(q.a)][q.len()]; tail.fn != nil {
		t.Fatal("popped slot still references its event closure")
	}
}

// BenchmarkQueueTypedPushPop measures the de-boxed queue:
// allocations per event must be (amortized) zero.
func BenchmarkQueueTypedPushPop(b *testing.B) {
	var q eventQueue
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.push(scheduled{at: Cycle(i % 1024), seq: uint64(i)})
		if q.len() >= 1024 {
			q.pop()
		}
	}
}

// BenchmarkQueueBoxedPushPop measures the container/heap reference: one
// *scheduled allocation per event plus interface boxing. The acceptance
// bar for the de-boxing is >=30% fewer allocations per scheduled event;
// the typed queue is amortized zero-alloc, so the delta is ~100%.
func BenchmarkQueueBoxedPushPop(b *testing.B) {
	var q boxedQueue
	heap.Init(&q)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		heap.Push(&q, &scheduled{at: Cycle(i % 1024), seq: uint64(i)})
		if q.Len() >= 1024 {
			heap.Pop(&q)
		}
	}
}
