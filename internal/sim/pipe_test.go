package sim

import (
	"testing"
	"testing/quick"
)

func TestPipeServerOverlap(t *testing.T) {
	e := NewEngine()
	p := NewPipeServer(e, "pipe", 100)
	var spans [][2]Cycle
	for i := 0; i < 3; i++ {
		p.Submit(1000, func(start, end Cycle) { spans = append(spans, [2]Cycle{start, end}) })
	}
	e.Run(0)
	if len(spans) != 3 {
		t.Fatalf("completed %d", len(spans))
	}
	for i, sp := range spans {
		want := [2]Cycle{Cycle(i * 100), Cycle(i*100 + 1000)}
		if sp != want {
			t.Fatalf("job %d span %v, want %v (pipelined)", i, sp, want)
		}
	}
}

func TestPipeServerIdleRestart(t *testing.T) {
	e := NewEngine()
	p := NewPipeServer(e, "pipe", 100)
	p.Submit(10, nil)
	e.Run(0)
	var start Cycle
	e.At(5000, func() {
		p.Submit(10, func(s, _ Cycle) { start = s })
	})
	e.Run(0)
	if start != 5000 {
		t.Fatalf("idle restart started at %d, want 5000", start)
	}
}

func TestPipeServerNextStart(t *testing.T) {
	e := NewEngine()
	p := NewPipeServer(e, "pipe", 160)
	if p.NextStart() != 0 {
		t.Fatalf("idle NextStart = %d", p.NextStart())
	}
	p.Submit(1000, nil)
	if p.NextStart() != 160 {
		t.Fatalf("NextStart after one submit = %d, want 160", p.NextStart())
	}
	if p.Jobs() != 1 || p.II() != 160 {
		t.Fatal("accessor values wrong")
	}
}

func TestPipeServerZeroII(t *testing.T) {
	e := NewEngine()
	p := NewPipeServer(e, "pipe", 0)
	if p.II() != 1 {
		t.Fatalf("zero II not clamped: %d", p.II())
	}
}

func TestPipeServerStartSpacingProperty(t *testing.T) {
	// Property: consecutive start times are always >= II apart,
	// regardless of service times.
	f := func(services []uint8) bool {
		e := NewEngine()
		p := NewPipeServer(e, "p", 7)
		var starts []Cycle
		for _, sv := range services {
			p.Submit(Cycle(sv), func(s, _ Cycle) { starts = append(starts, s) })
		}
		e.Run(0)
		seen := map[Cycle]bool{}
		for _, s := range starts {
			if seen[s] {
				return false
			}
			seen[s] = true
		}
		return len(starts) == len(services)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
