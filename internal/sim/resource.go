package sim

// PipeServer models a pipelined functional unit (a MAC engine): a new
// job may start every initiation-interval cycles, and each job completes
// after its own latency. This captures Table 1's security engines, whose
// per-write latency (e.g. 10 x 160 cycles for an eager tree update) far
// exceeds their initiation interval (one new write per MAC stage).
type PipeServer struct {
	eng  *Engine
	name string
	ii   Cycle

	nextStart Cycle
	jobs      uint64
	onJob     func(name string, start, end Cycle)

	// pending holds in-flight jobs ordered by (end, submission order) —
	// the exact order the engine fires their completion events in, so
	// each firing of fireFn pops pending[pendHead]. fireFn is bound
	// once; scheduling it instead of a per-job closure keeps Submit
	// allocation-free (a job's start/end/done ride in the ring, not in
	// a captured environment). Starts are monotonic, so out-of-order
	// ends (a long job submitted before a short one) are rare and the
	// ordered insert almost always appends at the tail.
	pending  []pipeJob
	pendHead int
	fireFn   func()
}

type pipeJob struct {
	start, end Cycle
	done       func(start, end Cycle)
}

// NewPipeServer returns a pipelined server with the given initiation
// interval (minimum cycles between job starts).
func NewPipeServer(eng *Engine, name string, ii Cycle) *PipeServer {
	if ii == 0 {
		ii = 1
	}
	p := &PipeServer{eng: eng, name: name, ii: ii}
	p.fireFn = p.fire
	return p
}

// Name returns the diagnostic name.
func (p *PipeServer) Name() string { return p.name }

// Jobs returns how many jobs have been submitted.
func (p *PipeServer) Jobs() uint64 { return p.jobs }

// II returns the initiation interval.
func (p *PipeServer) II() Cycle { return p.ii }

// SetJobHook installs (or with nil removes) an observer invoked at each
// job's completion with its start and end cycles — the telemetry busy
// span. Observational only; it must not schedule events.
func (p *PipeServer) SetJobHook(fn func(name string, start, end Cycle)) { p.onJob = fn }

// NextStart returns the earliest cycle at which a job submitted now
// would start.
func (p *PipeServer) NextStart() Cycle {
	if p.nextStart > p.eng.Now() {
		return p.nextStart
	}
	return p.eng.Now()
}

// Submit enqueues a job with the given completion latency. done, if
// non-nil, fires at start+latency.
func (p *PipeServer) Submit(latency Cycle, done func(start, end Cycle)) {
	start := p.eng.Now()
	if p.nextStart > start {
		start = p.nextStart
	}
	p.nextStart = start + p.ii
	p.jobs++
	end := start + latency

	// Ordered insert by end (stable for ties: equal ends fire in
	// submission order, and scanning from the tail keeps later
	// submissions after earlier ones).
	p.pending = append(p.pending, pipeJob{start: start, end: end, done: done})
	for i := len(p.pending) - 1; i > p.pendHead && p.pending[i-1].end > end; i-- {
		p.pending[i], p.pending[i-1] = p.pending[i-1], p.pending[i]
	}
	p.eng.At(end, p.fireFn)
}

// fire completes the in-flight job whose turn it is: completion events
// were scheduled in exactly the ring's (end, submission) order, so the
// head is always the job this event belongs to.
func (p *PipeServer) fire() {
	job := p.pending[p.pendHead]
	p.pending[p.pendHead] = pipeJob{}
	p.pendHead++
	if p.pendHead == len(p.pending) {
		p.pending = p.pending[:0]
		p.pendHead = 0
	}
	if p.onJob != nil {
		p.onJob(p.name, job.start, job.end)
	}
	if job.done != nil {
		job.done(job.start, job.end)
	}
}

// Server models a serially-occupied resource (a security unit, an NVM
// channel): jobs queue FIFO and each occupies the server for its service
// time. It captures the serialization the paper attributes to the single
// security pipeline per memory controller.
type Server struct {
	eng  *Engine
	name string

	busyUntil Cycle
	// queue is a head-indexed deque: pump consumes from queue[qHead]
	// and rewinds to the base when it empties, so the append in Submit
	// reuses one backing array for the run. Popping via queue[1:]
	// instead would advance the slice base and every append would
	// reallocate once the remaining capacity ran out.
	queue []serverJob
	qHead int

	// inflight is the FIFO ring of started-but-not-completed jobs, and
	// fireFn the pre-bound completion handler scheduled for each (per-job
	// closures would allocate once per submit for the same effect).
	// Service is serial, so inflight almost always holds one job — but at
	// the exact cycle a job ends, an event ordered before its completion
	// can Submit and start the next job (the server is no longer busy),
	// leaving two completions outstanding. Starts are serialized, so ends
	// are non-decreasing and each firing pops the ring head.
	inflight []pipeJob
	inHead   int
	fireFn   func()

	// Stats
	jobs      uint64
	busyTotal Cycle
	maxQueue  int

	onJob func(name string, start, end Cycle)
}

type serverJob struct {
	service Cycle
	done    func(start, end Cycle)
}

// NewServer returns a server bound to the engine. The name is used only
// for diagnostics.
func NewServer(eng *Engine, name string) *Server {
	s := &Server{eng: eng, name: name}
	s.fireFn = s.fire
	return s
}

// Name returns the diagnostic name of the server.
func (s *Server) Name() string { return s.name }

// Busy reports whether the server is occupied at the current cycle.
func (s *Server) Busy() bool { return s.eng.Now() < s.busyUntil }

// QueueLen returns the number of jobs waiting (not including any in service).
func (s *Server) QueueLen() int { return len(s.queue) - s.qHead }

// Jobs returns the number of jobs that have started service.
func (s *Server) Jobs() uint64 { return s.jobs }

// BusyCycles returns the cumulative cycles spent in service.
func (s *Server) BusyCycles() Cycle { return s.busyTotal }

// MaxQueue returns the high-water mark of the wait queue.
func (s *Server) MaxQueue() int { return s.maxQueue }

// SetJobHook installs (or with nil removes) an observer invoked at each
// job's service completion with its start and end cycles (telemetry).
func (s *Server) SetJobHook(fn func(name string, start, end Cycle)) { s.onJob = fn }

// Submit enqueues a job requiring service cycles of occupancy. done, if
// non-nil, runs at service completion with the start and end cycles.
// Jobs are served in submission order.
func (s *Server) Submit(service Cycle, done func(start, end Cycle)) {
	s.queue = append(s.queue, serverJob{service: service, done: done})
	if n := s.QueueLen(); n > s.maxQueue {
		s.maxQueue = n
	}
	s.pump()
}

// FreeAt returns the cycle at which the server would start a job submitted
// now, considering the in-service job and queued work.
func (s *Server) FreeAt() Cycle {
	at := s.eng.Now()
	if s.busyUntil > at {
		at = s.busyUntil
	}
	for _, j := range s.queue[s.qHead:] {
		at += j.service
	}
	return at
}

func (s *Server) pump() {
	if s.qHead == len(s.queue) || s.Busy() {
		return
	}
	job := s.queue[s.qHead]
	s.queue[s.qHead] = serverJob{}
	s.qHead++
	if s.qHead == len(s.queue) {
		s.queue = s.queue[:0]
		s.qHead = 0
	}
	start := s.eng.Now()
	if s.busyUntil > start {
		start = s.busyUntil
	}
	end := start + job.service
	s.busyUntil = end
	s.jobs++
	s.busyTotal += job.service
	s.inflight = append(s.inflight, pipeJob{start: start, end: end, done: job.done})
	s.eng.At(end, s.fireFn)
}

// fire completes the oldest in-flight job and starts the next queued one.
func (s *Server) fire() {
	job := s.inflight[s.inHead]
	s.inflight[s.inHead] = pipeJob{}
	s.inHead++
	if s.inHead == len(s.inflight) {
		s.inflight = s.inflight[:0]
		s.inHead = 0
	}
	if s.onJob != nil {
		s.onJob(s.name, job.start, job.end)
	}
	if job.done != nil {
		job.done(job.start, job.end)
	}
	s.pump()
}
