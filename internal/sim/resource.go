package sim

// PipeServer models a pipelined functional unit (a MAC engine): a new
// job may start every initiation-interval cycles, and each job completes
// after its own latency. This captures Table 1's security engines, whose
// per-write latency (e.g. 10 x 160 cycles for an eager tree update) far
// exceeds their initiation interval (one new write per MAC stage).
type PipeServer struct {
	eng  *Engine
	name string
	ii   Cycle

	nextStart Cycle
	jobs      uint64
	onJob     func(name string, start, end Cycle)
}

// NewPipeServer returns a pipelined server with the given initiation
// interval (minimum cycles between job starts).
func NewPipeServer(eng *Engine, name string, ii Cycle) *PipeServer {
	if ii == 0 {
		ii = 1
	}
	return &PipeServer{eng: eng, name: name, ii: ii}
}

// Name returns the diagnostic name.
func (p *PipeServer) Name() string { return p.name }

// Jobs returns how many jobs have been submitted.
func (p *PipeServer) Jobs() uint64 { return p.jobs }

// II returns the initiation interval.
func (p *PipeServer) II() Cycle { return p.ii }

// SetJobHook installs (or with nil removes) an observer invoked at each
// job's completion with its start and end cycles — the telemetry busy
// span. Observational only; it must not schedule events.
func (p *PipeServer) SetJobHook(fn func(name string, start, end Cycle)) { p.onJob = fn }

// NextStart returns the earliest cycle at which a job submitted now
// would start.
func (p *PipeServer) NextStart() Cycle {
	if p.nextStart > p.eng.Now() {
		return p.nextStart
	}
	return p.eng.Now()
}

// Submit enqueues a job with the given completion latency. done, if
// non-nil, fires at start+latency.
func (p *PipeServer) Submit(latency Cycle, done func(start, end Cycle)) {
	start := p.eng.Now()
	if p.nextStart > start {
		start = p.nextStart
	}
	p.nextStart = start + p.ii
	p.jobs++
	end := start + latency
	p.eng.At(end, func() {
		if p.onJob != nil {
			p.onJob(p.name, start, end)
		}
		if done != nil {
			done(start, end)
		}
	})
}

// Server models a serially-occupied resource (a security unit, an NVM
// channel): jobs queue FIFO and each occupies the server for its service
// time. It captures the serialization the paper attributes to the single
// security pipeline per memory controller.
type Server struct {
	eng  *Engine
	name string

	busyUntil Cycle
	queue     []serverJob

	// Stats
	jobs      uint64
	busyTotal Cycle
	maxQueue  int

	onJob func(name string, start, end Cycle)
}

type serverJob struct {
	service Cycle
	done    func(start, end Cycle)
}

// NewServer returns a server bound to the engine. The name is used only
// for diagnostics.
func NewServer(eng *Engine, name string) *Server {
	return &Server{eng: eng, name: name}
}

// Name returns the diagnostic name of the server.
func (s *Server) Name() string { return s.name }

// Busy reports whether the server is occupied at the current cycle.
func (s *Server) Busy() bool { return s.eng.Now() < s.busyUntil }

// QueueLen returns the number of jobs waiting (not including any in service).
func (s *Server) QueueLen() int { return len(s.queue) }

// Jobs returns the number of jobs that have started service.
func (s *Server) Jobs() uint64 { return s.jobs }

// BusyCycles returns the cumulative cycles spent in service.
func (s *Server) BusyCycles() Cycle { return s.busyTotal }

// MaxQueue returns the high-water mark of the wait queue.
func (s *Server) MaxQueue() int { return s.maxQueue }

// SetJobHook installs (or with nil removes) an observer invoked at each
// job's service completion with its start and end cycles (telemetry).
func (s *Server) SetJobHook(fn func(name string, start, end Cycle)) { s.onJob = fn }

// Submit enqueues a job requiring service cycles of occupancy. done, if
// non-nil, runs at service completion with the start and end cycles.
// Jobs are served in submission order.
func (s *Server) Submit(service Cycle, done func(start, end Cycle)) {
	s.queue = append(s.queue, serverJob{service: service, done: done})
	if len(s.queue) > s.maxQueue {
		s.maxQueue = len(s.queue)
	}
	s.pump()
}

// FreeAt returns the cycle at which the server would start a job submitted
// now, considering the in-service job and queued work.
func (s *Server) FreeAt() Cycle {
	at := s.eng.Now()
	if s.busyUntil > at {
		at = s.busyUntil
	}
	for _, j := range s.queue {
		at += j.service
	}
	return at
}

func (s *Server) pump() {
	if len(s.queue) == 0 || s.Busy() {
		return
	}
	job := s.queue[0]
	s.queue = s.queue[1:]
	start := s.eng.Now()
	if s.busyUntil > start {
		start = s.busyUntil
	}
	end := start + job.service
	s.busyUntil = end
	s.jobs++
	s.busyTotal += job.service
	s.eng.At(end, func() {
		if s.onJob != nil {
			s.onJob(s.name, start, end)
		}
		if job.done != nil {
			job.done(start, end)
		}
		s.pump()
	})
}
