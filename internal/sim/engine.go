// Package sim provides a deterministic discrete-event simulation engine
// with a cycle-granular clock. All timing in the Dolos model is expressed
// in CPU cycles at 4 GHz (1 ns = 4 cycles).
package sim

import (
	"container/heap"
	"fmt"
)

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle uint64

// CyclesPerNanosecond converts wall time to cycles for the 4 GHz core
// configuration used throughout the paper's evaluation (Table 1).
const CyclesPerNanosecond = 4

// Event is a callback scheduled to run at a particular cycle.
type Event func()

type scheduled struct {
	at  Cycle
	seq uint64 // tie-breaker: FIFO among events at the same cycle
	fn  Event
}

type eventQueue []*scheduled

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }

func (q *eventQueue) Push(x any) { *q = append(*q, x.(*scheduled)) }

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine. Engines are not safe for concurrent use:
// the simulated system is single-clock-domain by design, matching the
// single memory controller modeled in the paper.
type Engine struct {
	now    Cycle
	seq    uint64
	queue  eventQueue
	events uint64
	// hook, when non-nil, observes every dispatched event (telemetry).
	// It must be purely observational: scheduling events or mutating
	// model state from the hook would perturb the timing model.
	hook func(at Cycle)
}

// NewEngine returns an engine with the clock at cycle 0.
func NewEngine() *Engine {
	e := &Engine{}
	heap.Init(&e.queue)
	return e
}

// Now returns the current simulation time.
func (e *Engine) Now() Cycle { return e.now }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.events }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return e.queue.Len() }

// SetHook installs (or with nil removes) the event-dispatch observer.
// The hook runs before each event's callback with the event's cycle.
func (e *Engine) SetHook(fn func(at Cycle)) { e.hook = fn }

// At schedules fn to run at the absolute cycle at. Scheduling in the past
// panics: it would violate causality and always indicates a model bug.
func (e *Engine) At(at Cycle, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d before now %d", at, e.now))
	}
	e.seq++
	heap.Push(&e.queue, &scheduled{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn Event) { e.At(e.now+delay, fn) }

// Step executes the next event, advancing the clock to its timestamp.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*scheduled)
	e.now = ev.at
	e.events++
	if e.hook != nil {
		e.hook(ev.at)
	}
	ev.fn()
	return true
}

// Run executes events until the queue drains or limit events have run.
// A limit of 0 means no limit. It returns the number of events executed
// by this call.
func (e *Engine) Run(limit uint64) uint64 {
	var n uint64
	for limit == 0 || n < limit {
		if !e.Step() {
			break
		}
		n++
	}
	return n
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued. It returns the number executed.
func (e *Engine) RunUntil(deadline Cycle) uint64 {
	var n uint64
	for e.queue.Len() > 0 && e.queue[0].at <= deadline {
		e.Step()
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}
