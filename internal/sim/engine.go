// Package sim provides a deterministic discrete-event simulation engine
// with a cycle-granular clock. All timing in the Dolos model is expressed
// in CPU cycles at 4 GHz (1 ns = 4 cycles).
package sim

import "fmt"

// Cycle is a point in simulated time, measured in CPU clock cycles.
type Cycle uint64

// CyclesPerNanosecond converts wall time to cycles for the 4 GHz core
// configuration used throughout the paper's evaluation (Table 1).
const CyclesPerNanosecond = 4

// Event is a callback scheduled to run at a particular cycle.
type Event func()

type scheduled struct {
	at  Cycle
	seq uint64 // tie-breaker: FIFO among events at the same cycle
	fn  Event
}

// before is the queue's strict total order: by cycle, then by scheduling
// sequence. seq is unique, so any correct heap pops the exact same
// sequence — dispatch order is independent of the heap's internal shape.
func (s scheduled) before(o scheduled) bool {
	if s.at != o.at {
		return s.at < o.at
	}
	return s.seq < o.seq
}

// eventQueue is a 4-ary min-heap of scheduled events stored by value.
// Compared to the earlier container/heap implementation it performs no
// per-event allocation (events were boxed as *scheduled and passed
// through `any`) and does fewer cache-missing compares per pop: a 4-ary
// heap is half the depth of a binary one, and the four children share
// cache lines. The heap property is the only invariant; the dispatch
// order is fully determined by scheduled.before.
type eventQueue struct {
	a []scheduled
}

const heapArity = 4

func (q *eventQueue) len() int { return len(q.a) }

func (q *eventQueue) push(ev scheduled) {
	q.a = append(q.a, ev)
	i := len(q.a) - 1
	for i > 0 {
		parent := (i - 1) / heapArity
		if !q.a[i].before(q.a[parent]) {
			break
		}
		q.a[i], q.a[parent] = q.a[parent], q.a[i]
		i = parent
	}
}

func (q *eventQueue) pop() scheduled {
	top := q.a[0]
	n := len(q.a) - 1
	q.a[0] = q.a[n]
	q.a[n] = scheduled{} // release the fn reference for the GC
	q.a = q.a[:n]
	i := 0
	for {
		first := heapArity*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + heapArity
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if q.a[c].before(q.a[min]) {
				min = c
			}
		}
		if !q.a[min].before(q.a[i]) {
			break
		}
		q.a[i], q.a[min] = q.a[min], q.a[i]
		i = min
	}
	return top
}

// Engine is a discrete-event simulator. The zero value is not usable;
// construct with NewEngine. Engines are not safe for concurrent use:
// the simulated system is single-clock-domain by design, matching the
// single memory controller modeled in the paper. Separate engines (one
// per simulated system) are fully independent — there is no package
// state — so distinct systems may run on distinct goroutines, which is
// what the experiment layer's parallel executor does.
type Engine struct {
	now    Cycle
	seq    uint64
	queue  eventQueue
	events uint64
	// nowQ is the FIFO of events scheduled for the current cycle — the
	// commonest case (zero-latency continuations) — which skip the heap:
	// O(1) ring append/pop instead of a sift per push and pop. Every
	// entry has at == now: the clock only advances once nowQ drains,
	// because a non-empty nowQ means the earliest pending event is at
	// now. Dispatch order is unchanged — Step picks the (at, seq)
	// minimum across the ring head and the heap top, and both structures
	// are (at, seq)-sorted from their heads.
	nowQ    []scheduled
	nowHead int
	// hook, when non-nil, observes every dispatched event (telemetry).
	// It must be purely observational: scheduling events or mutating
	// model state from the hook would perturb the timing model.
	hook func(at Cycle)
}

// NewEngine returns an engine with the clock at cycle 0.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current simulation time.
func (e *Engine) Now() Cycle { return e.now }

// Processed reports how many events have been executed so far.
func (e *Engine) Processed() uint64 { return e.events }

// Pending reports how many events are waiting in the queue.
func (e *Engine) Pending() int { return e.queue.len() + len(e.nowQ) - e.nowHead }

// SetHook installs (or with nil removes) the event-dispatch observer.
// The hook runs before each event's callback with the event's cycle.
// The hook is a per-engine field, never package state, so concurrently
// running engines observe independently.
func (e *Engine) SetHook(fn func(at Cycle)) { e.hook = fn }

// At schedules fn to run at the absolute cycle at. Scheduling in the past
// panics: it would violate causality and always indicates a model bug.
func (e *Engine) At(at Cycle, fn Event) {
	if at < e.now {
		panic(fmt.Sprintf("sim: scheduling event at cycle %d before now %d", at, e.now))
	}
	e.seq++
	if at == e.now {
		e.nowQ = append(e.nowQ, scheduled{at: at, seq: e.seq, fn: fn})
		return
	}
	e.queue.push(scheduled{at: at, seq: e.seq, fn: fn})
}

// After schedules fn to run delay cycles from now.
func (e *Engine) After(delay Cycle, fn Event) { e.At(e.now+delay, fn) }

// Step executes the next event, advancing the clock to its timestamp.
// It reports whether an event was executed.
func (e *Engine) Step() bool {
	var ev scheduled
	if e.nowHead < len(e.nowQ) &&
		(e.queue.len() == 0 || e.nowQ[e.nowHead].before(e.queue.a[0])) {
		ev = e.nowQ[e.nowHead]
		e.nowQ[e.nowHead] = scheduled{}
		e.nowHead++
		if e.nowHead == len(e.nowQ) {
			e.nowQ = e.nowQ[:0]
			e.nowHead = 0
		}
	} else if e.queue.len() > 0 {
		ev = e.queue.pop()
	} else {
		return false
	}
	e.now = ev.at
	e.events++
	if e.hook != nil {
		e.hook(ev.at)
	}
	ev.fn()
	return true
}

// Run executes events until the queue drains or limit events have run.
// A limit of 0 means no limit. It returns the number of events executed
// by this call.
func (e *Engine) Run(limit uint64) uint64 {
	var n uint64
	for limit == 0 || n < limit {
		if !e.Step() {
			break
		}
		n++
	}
	return n
}

// RunUntil executes events with timestamps <= deadline. Events scheduled
// beyond the deadline remain queued. It returns the number executed.
func (e *Engine) RunUntil(deadline Cycle) uint64 {
	var n uint64
	for {
		// Earliest pending timestamp across the now-ring and the heap.
		next, any := Cycle(0), false
		if e.nowHead < len(e.nowQ) {
			next, any = e.nowQ[e.nowHead].at, true
		} else if e.queue.len() > 0 {
			next, any = e.queue.a[0].at, true
		}
		if !any || next > deadline {
			break
		}
		e.Step()
		n++
	}
	if e.now < deadline {
		e.now = deadline
	}
	return n
}
