package sim

import "testing"

// TestPipelineOrder proves the consumer applies ops in exact submission
// order across window stalls, barriers and the final close — the
// property the parallel-DES equivalence argument rests on (the shadow
// stage sees the identical call sequence a serial run executes inline).
func TestPipelineOrder(t *testing.T) {
	const n = 100000
	var got []int
	p := NewPipeline(64, func(v int) { got = append(got, v) })
	for i := 0; i < n; i++ {
		p.Submit(i)
		if i%1000 == 999 {
			p.Barrier()
			// Everything submitted so far must have been applied.
			if len(got) != i+1 {
				t.Fatalf("after barrier at %d: applied %d ops", i, len(got))
			}
		}
	}
	p.Close()
	if len(got) != n {
		t.Fatalf("applied %d ops, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("op %d applied out of order (got %d)", i, v)
		}
	}
}

// TestPipelineWindowOne degenerates to fully synchronous hand-off.
func TestPipelineWindowOne(t *testing.T) {
	sum := 0
	p := NewPipeline(0, func(v int) { sum += v }) // clamps to window 1
	for i := 1; i <= 100; i++ {
		p.Submit(i)
	}
	p.Close()
	if sum != 5050 {
		t.Fatalf("sum = %d, want 5050", sum)
	}
}

// TestPipelineBarrierIdempotent: consecutive barriers with no ops in
// between are cheap no-ops, and submission may resume after a barrier.
func TestPipelineBarrierIdempotent(t *testing.T) {
	count := 0
	p := NewPipeline(8, func(struct{}) { count++ })
	p.Barrier()
	p.Barrier()
	p.Submit(struct{}{})
	p.Barrier()
	p.Barrier()
	if count != 1 {
		t.Fatalf("count = %d, want 1", count)
	}
	p.Submit(struct{}{})
	p.Close()
	if count != 2 {
		t.Fatalf("count = %d after close, want 2", count)
	}
}
