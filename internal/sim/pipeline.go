package sim

// batchCap is how many ops travel per channel hand-off. Channel sends
// cost ~100-200ns in futex wake-ups when the consumer parks; at the
// journal rates a parallel run produces (millions of ops per simulated
// second) a per-op channel would burn more host time than the crypto it
// offloads. Batching amortizes the hand-off 64× while keeping the
// producer-side latency to first application bounded by one batch.
const batchCap = 64

// Pipeline is the conservative-lookahead channel between the two stages
// of a parallel single-trace simulation: the timing stage (the
// discrete-event loop, single producer) and a functional stage (single
// consumer goroutine applying ops in submission order).
//
// The window is the lookahead bound: the producer may run at most
// ~`window` un-applied ops ahead of the consumer before Submit blocks —
// the epoch barrier at the minimum cross-stage event horizon, enforced
// continuously by channel capacity rather than by stop-the-world
// phases. Because there is exactly one producer and the consumer
// applies batches strictly in channel order (and ops in order within a
// batch), the consumer observes the identical op sequence a serial run
// would execute inline; dispatch order on the timing stage is untouched
// (it never waits on results, only on window space).
//
// Memory model: Submit/Barrier/Close must be called from one goroutine.
// Batch buffers hand off through the ops channel and return through the
// free list, so each side only touches a buffer it has received —
// every applied op has a happens-before edge from its submission, and
// Barrier/Close return only after the consumer acknowledges, so state
// the apply function wrote is safe to read after either returns.
type Pipeline[T any] struct {
	batch []T      // producer-side accumulator (flushed at batchSize)
	size  int      // effective batch size (min(batchCap, window))
	ops   chan []T // batches in flight, oldest first
	free  chan []T // recycled buffers flowing back to the producer
	bar   chan chan struct{}
	done  chan struct{}
}

// NewPipeline starts the consumer goroutine. window is the approximate
// maximum number of submitted-but-unapplied ops (minimum 1); apply runs
// on the consumer goroutine for every op, in submission order.
func NewPipeline[T any](window int, apply func(T)) *Pipeline[T] {
	return NewBatchPipeline(window, func(b []T) {
		for i := range b {
			apply(b[i])
		}
	})
}

// NewBatchPipeline is NewPipeline with the whole hand-off visible to the
// consumer: applyBatch receives each batch (≤ batchCap ops, submission
// order preserved within and across batches) and may amortize work —
// batched crypto, scratch reuse — across it. The batch slice is recycled
// after applyBatch returns; the consumer must not retain it.
func NewBatchPipeline[T any](window int, applyBatch func([]T)) *Pipeline[T] {
	if window < 1 {
		window = 1
	}
	size := batchCap
	if size > window {
		size = window
	}
	depth := window / size
	if depth < 1 {
		depth = 1
	}
	p := &Pipeline[T]{
		size: size,
		ops:  make(chan []T, depth),
		free: make(chan []T, depth+1),
		bar:  make(chan chan struct{}),
		done: make(chan struct{}),
	}
	go p.consume(applyBatch)
	return p
}

func (p *Pipeline[T]) consume(applyBatch func([]T)) {
	defer close(p.done)
	recycle := func(b []T) {
		select {
		case p.free <- b[:0]:
		default: // free list full; let the GC have it
		}
	}
	for {
		select {
		case b, ok := <-p.ops:
			if !ok {
				return
			}
			applyBatch(b)
			recycle(b)
		case ack := <-p.bar:
			// The producer is blocked in Barrier, so the ops channel is
			// quiescent: drain everything already submitted, then ack.
		drain:
			for {
				select {
				case b, ok := <-p.ops:
					if !ok {
						close(ack)
						return
					}
					applyBatch(b)
					recycle(b)
				default:
					break drain
				}
			}
			close(ack)
		}
	}
}

// Submit hands one op to the consumer, blocking while the lookahead
// window is full. Ops accumulate into a batch that flushes every
// batchCap submissions (and at Barrier/Close), so an op may wait at the
// producer for up to one batch before the consumer sees it.
func (p *Pipeline[T]) Submit(op T) {
	if p.batch == nil {
		select {
		case p.batch = <-p.free:
		default:
			p.batch = make([]T, 0, p.size)
		}
	}
	p.batch = append(p.batch, op)
	if len(p.batch) >= p.size {
		p.flush()
	}
}

// flush sends the accumulated batch, blocking while the window is full.
func (p *Pipeline[T]) flush() {
	if len(p.batch) == 0 {
		return
	}
	p.ops <- p.batch
	p.batch = nil
}

// Barrier blocks until every op submitted so far has been applied.
func (p *Pipeline[T]) Barrier() {
	p.flush()
	ack := make(chan struct{})
	p.bar <- ack
	<-ack
}

// Close applies every remaining op, stops the consumer goroutine and
// returns. The pipeline is finished afterwards: Submit panics and
// Barrier must not be called (callers gate on their own closed flag).
func (p *Pipeline[T]) Close() {
	p.flush()
	close(p.ops)
	<-p.done
}
