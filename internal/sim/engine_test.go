package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var got []int
	e.At(30, func() { got = append(got, 3) })
	e.At(10, func() { got = append(got, 1) })
	e.At(20, func() { got = append(got, 2) })
	e.Run(0)
	want := []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event order %v, want %v", got, want)
		}
	}
	if e.Now() != 30 {
		t.Fatalf("Now() = %d, want 30", e.Now())
	}
}

func TestEngineFIFOWithinCycle(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func() { got = append(got, i) })
	}
	e.Run(0)
	for i := 0; i < 10; i++ {
		if got[i] != i {
			t.Fatalf("same-cycle events not FIFO: %v", got)
		}
	}
}

func TestEngineAfterChaining(t *testing.T) {
	e := NewEngine()
	var end Cycle
	e.At(100, func() {
		e.After(50, func() { end = e.Now() })
	})
	e.Run(0)
	if end != 150 {
		t.Fatalf("chained event ran at %d, want 150", end)
	}
}

func TestEnginePastSchedulingPanics(t *testing.T) {
	e := NewEngine()
	e.At(100, func() {})
	e.Run(0)
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(50, func() {})
}

func TestEngineRunLimit(t *testing.T) {
	e := NewEngine()
	count := 0
	var reschedule func()
	reschedule = func() {
		count++
		e.After(1, reschedule)
	}
	e.At(0, reschedule)
	n := e.Run(10)
	if n != 10 || count != 10 {
		t.Fatalf("Run(10) executed %d events, handler ran %d times", n, count)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	ran := map[Cycle]bool{}
	for _, c := range []Cycle{10, 20, 30, 40} {
		c := c
		e.At(c, func() { ran[c] = true })
	}
	n := e.RunUntil(25)
	if n != 2 || !ran[10] || !ran[20] || ran[30] {
		t.Fatalf("RunUntil(25): n=%d ran=%v", n, ran)
	}
	if e.Now() != 25 {
		t.Fatalf("Now() = %d after RunUntil(25)", e.Now())
	}
	e.Run(0)
	if !ran[30] || !ran[40] {
		t.Fatalf("remaining events did not run: %v", ran)
	}
}

func TestEngineTimeMonotonic(t *testing.T) {
	// Property: regardless of the (bounded) delays scheduled, observed
	// event times never decrease.
	f := func(delays []uint16) bool {
		e := NewEngine()
		last := Cycle(0)
		ok := true
		for _, d := range delays {
			d := Cycle(d)
			e.After(d, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
			})
		}
		e.Run(0)
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestServerSerializes(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "test")
	var spans [][2]Cycle
	for i := 0; i < 3; i++ {
		s.Submit(100, func(start, end Cycle) { spans = append(spans, [2]Cycle{start, end}) })
	}
	e.Run(0)
	if len(spans) != 3 {
		t.Fatalf("completed %d jobs, want 3", len(spans))
	}
	for i, sp := range spans {
		want := [2]Cycle{Cycle(i * 100), Cycle((i + 1) * 100)}
		if sp != want {
			t.Fatalf("job %d span %v, want %v", i, sp, want)
		}
	}
	if s.Jobs() != 3 || s.BusyCycles() != 300 {
		t.Fatalf("stats: jobs=%d busy=%d", s.Jobs(), s.BusyCycles())
	}
}

func TestServerFreeAt(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "test")
	s.Submit(50, nil)
	s.Submit(70, nil)
	if got := s.FreeAt(); got != 120 {
		t.Fatalf("FreeAt = %d, want 120", got)
	}
	e.Run(0)
	if got := s.FreeAt(); got != e.Now() {
		t.Fatalf("idle FreeAt = %d, want now=%d", got, e.Now())
	}
}

func TestServerLateSubmission(t *testing.T) {
	e := NewEngine()
	s := NewServer(e, "test")
	var span [2]Cycle
	e.At(500, func() {
		s.Submit(10, func(start, end Cycle) { span = [2]Cycle{start, end} })
	})
	e.Run(0)
	if span != [2]Cycle{500, 510} {
		t.Fatalf("span %v, want [500 510]", span)
	}
}

func TestServerNoOverlapProperty(t *testing.T) {
	// Property: service intervals of a single server never overlap and
	// are in FIFO order.
	f := func(services []uint8) bool {
		e := NewEngine()
		s := NewServer(e, "p")
		var spans [][2]Cycle
		for _, sv := range services {
			sv := Cycle(sv) + 1
			s.Submit(sv, func(start, end Cycle) { spans = append(spans, [2]Cycle{start, end}) })
		}
		e.Run(0)
		if len(spans) != len(services) {
			return false
		}
		for i := 1; i < len(spans); i++ {
			if spans[i][0] < spans[i-1][1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
