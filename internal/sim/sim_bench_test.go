package sim

import "testing"

func BenchmarkEngineEventThroughput(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	var next func()
	n := 0
	next = func() {
		n++
		if n < b.N {
			e.After(1, next)
		}
	}
	e.At(0, next)
	b.ResetTimer()
	e.Run(0)
}

func BenchmarkEngineFanOut(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.At(Cycle(i%1000), func() {})
	}
	b.ResetTimer()
	e.Run(0)
}

func BenchmarkServerSubmit(b *testing.B) {
	e := NewEngine()
	s := NewServer(e, "b")
	for i := 0; i < b.N; i++ {
		s.Submit(1, nil)
	}
	b.ResetTimer()
	e.Run(0)
}

func BenchmarkPipeServerSubmit(b *testing.B) {
	e := NewEngine()
	p := NewPipeServer(e, "b", 1)
	for i := 0; i < b.N; i++ {
		p.Submit(10, nil)
	}
	b.ResetTimer()
	e.Run(0)
}
