package service

import (
	"testing"

	"dolos/internal/controller"
	"dolos/internal/masu"
)

// TestKeyNormalization pins the cache-key contract: aliases, case and
// explicitly-spelled defaults all hash to the same canonical key.
func TestKeyNormalization(t *testing.T) {
	base, err := normalize(Request{}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	equivalent := []Request{
		{Workloads: []string{"Hashmap"}},
		{Workloads: []string{"hashmap"}, Schemes: []string{"dolos-partial"}},
		{Schemes: []string{"DolosPartial"}},
		{Schemes: []string{"Dolos-Partial-WPQ"}, Tree: "eager"},
		{Transactions: 200, TxSize: 1024, Seed: 1, WPQ: 16},
		{TimeoutMS: 9999}, // a deadline must not change the result key
	}
	for i, req := range equivalent {
		n, err := normalize(req, Limits{})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if n.Key() != base.Key() {
			t.Errorf("request %d normalized to a different key:\n%+v\nvs\n%+v", i, n, base)
		}
	}

	different := []Request{
		{Seed: 2},
		{Transactions: 201},
		{TxSize: 512},
		{WPQ: 32},
		{NoCoalesce: true},
		{Tree: "lazy"},
		{Workloads: []string{"Btree"}},
		{Schemes: []string{"baseline"}},
		{Schemes: []string{"dolos-partial", "baseline"}},
	}
	for i, req := range different {
		n, err := normalize(req, Limits{})
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if n.Key() == base.Key() {
			t.Errorf("request %d (%+v) collides with the default key", i, req)
		}
	}

	// Same cells in a different order is a different (order-preserving)
	// key: result order is part of the contract.
	ab, _ := normalize(Request{Schemes: []string{"baseline", "ideal"}}, Limits{})
	ba, _ := normalize(Request{Schemes: []string{"ideal", "baseline"}}, Limits{})
	if ab.Key() == ba.Key() {
		t.Error("scheme order does not affect the key")
	}
}

// TestNormalizeValidation sweeps the rejection paths.
func TestNormalizeValidation(t *testing.T) {
	bad := []Request{
		{Workloads: []string{"NoSuch"}},
		{Schemes: []string{"turbo"}},
		{Tree: "bushy"},
		{Transactions: -1},
		{Transactions: 100001},
		{TxSize: 32},
		{TxSize: 8192},
		{WPQ: -4},
		{Workloads: []string{"Hashmap", "Btree", "Ctree"}, Schemes: []string{"baseline", "ideal", "eadr"}},
	}
	lim := Limits{MaxTransactions: 100000, MaxCells: 8}
	for i, req := range bad {
		if _, err := normalize(req, lim); err == nil {
			t.Errorf("request %d (%+v) accepted, want error", i, req)
		}
	}
}

// TestCellsEnumeration pins grid order (workloads outer, schemes inner)
// and the spec fields each cell carries.
func TestCellsEnumeration(t *testing.T) {
	n, err := normalize(Request{
		Workloads: []string{"Hashmap", "Btree"},
		Schemes:   []string{"baseline", "dolos-partial"},
		Tree:      "lazy",
		TxSize:    512,
		WPQ:       32,
	}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	cells := n.cells()
	if len(cells) != 4 {
		t.Fatalf("got %d cells, want 4", len(cells))
	}
	wantOrder := []struct {
		wl  string
		sch controller.Scheme
	}{
		{"Hashmap", controller.PreWPQSecure},
		{"Hashmap", controller.DolosPartial},
		{"Btree", controller.PreWPQSecure},
		{"Btree", controller.DolosPartial},
	}
	for i, want := range wantOrder {
		c := cells[i]
		if c.Workload != want.wl || c.Spec.Scheme != want.sch {
			t.Errorf("cell %d = (%s, %v), want (%s, %v)", i, c.Workload, c.Spec.Scheme, want.wl, want.sch)
		}
		if c.Spec.Tree != masu.ToCLazy || c.Spec.TxSize != 512 || c.Spec.HardwareWPQ != 32 {
			t.Errorf("cell %d spec = %+v", i, c.Spec)
		}
	}
}
