package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dolos/client"
	"dolos/internal/fault"
)

// The chaos suite: every test arms the deterministic fault injector
// with a pinned seed, drives the real HTTP stack through the public
// client package, and asserts the resilience contract of DESIGN.md
// §11 — no injected fault may lose a job, double-execute a simulation,
// or let a corrupted cache entry reach a caller; graceful drain must
// complete; and the client's sentinel errors must round-trip from the
// HTTP status the server sent.

// mustInjector arms a fault spec or fails the test.
func mustInjector(t *testing.T, seed int64, spec string) *fault.Injector {
	t.Helper()
	in, err := fault.FromSpec(seed, spec)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// fastRetry is a client retry policy with millisecond delays so chaos
// tests spin through injected failures quickly. The injected 429s
// still impose the server's real Retry-After (1s), which is part of
// what the suite verifies.
func fastRetry(attempts int) client.Option {
	return client.WithRetryPolicy(client.RetryPolicy{
		MaxAttempts: attempts,
		BaseDelay:   time.Millisecond,
		MaxDelay:    5 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
	})
}

// counterVal reads one counter from the server's registry.
func counterVal(svc *Server, name string) uint64 {
	return svc.Registry().Counter(name).Value()
}

// TestChaosNoJobLostOrDoubled is the tentpole acceptance test: with
// job panics, queue-full rejections and artificial cell latency all
// armed, a swarm of retrying clients hammers four distinct requests.
// Every call must succeed, every key must map to one simulation, the
// results must be byte-identical (after zeroing host timing) to a
// fault-free server's, and the metrics must stay internally
// consistent.
func TestChaosNoJobLostOrDoubled(t *testing.T) {
	svc := New(Config{
		Workers: 4, QueueDepth: 16,
		Faults: mustInjector(t, 7, "job-panic:0.25,queue-full:0.15,cell-latency:0.3:1ms"),
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	reqs := []client.Request{
		{Workloads: []string{"Hashmap"}, Schemes: []string{"dolos-partial"}, Transactions: 60, Seed: 1},
		{Workloads: []string{"Hashmap"}, Schemes: []string{"baseline"}, Transactions: 60, Seed: 1},
		{Workloads: []string{"Btree"}, Schemes: []string{"dolos-partial"}, Transactions: 60, Seed: 1},
		{Workloads: []string{"Btree"}, Schemes: []string{"baseline"}, Transactions: 60, Seed: 1},
	}
	const callersPerReq = 3

	// Each caller gets its own client so the server-side single-flight
	// — not the client-side one — deduplicates concurrent submissions.
	var wg sync.WaitGroup
	results := make([][]byte, len(reqs)*callersPerReq)
	for i, req := range reqs {
		for c := 0; c < callersPerReq; c++ {
			wg.Add(1)
			go func(slot int, seed int64, req client.Request) {
				defer wg.Done()
				cl := client.New(ts.URL, fastRetry(8),
					client.WithSeed(seed), client.WithPollInterval(2*time.Millisecond))
				res, err := cl.Run(context.Background(), req)
				if err != nil {
					t.Errorf("caller %d: %v", slot, err)
					return
				}
				results[slot] = res.Bytes
			}(i*callersPerReq+c, int64(i*callersPerReq+c+1), req)
		}
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	// Every caller of the same request received identical bytes.
	for i := range reqs {
		base := results[i*callersPerReq]
		for c := 1; c < callersPerReq; c++ {
			if !bytes.Equal(results[i*callersPerReq+c], base) {
				t.Errorf("request %d: caller %d received different bytes", i, c)
			}
		}
	}

	// Byte-identity with a fault-free server, after zeroing the two
	// host-timing fields: injected adversity may slow a result down but
	// must never change it.
	ref := New(Config{Workers: 2, QueueDepth: 16})
	refTS := httptest.NewServer(ref.Handler())
	defer refTS.Close()
	defer ref.Shutdown(context.Background())
	for i, req := range reqs {
		refCl := client.New(refTS.URL, client.WithPollInterval(2*time.Millisecond))
		res, err := refCl.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("fault-free reference run %d: %v", i, err)
		}
		got := normalizeHostFields(t, results[i*callersPerReq])
		want := normalizeHostFields(t, res.Bytes)
		if !bytes.Equal(got, want) {
			t.Errorf("request %d: chaos result differs from fault-free run:\n--- chaos ---\n%s--- clean ---\n%s",
				i, got, want)
		}
	}

	// No double execution: four distinct keys, exactly four simulations
	// — injected panics fire before the single-flight claim, so a
	// retried job either hits the cache or leads the one computation.
	if sims := counterVal(svc, "service_sims_executed_total"); sims != uint64(len(reqs)) {
		t.Errorf("sims executed = %d, want %d (one per distinct request)", sims, len(reqs))
	}

	// No job lost: every job the server accepted settled one way.
	submitted := counterVal(svc, "service_jobs_submitted_total")
	completed := counterVal(svc, "service_jobs_completed_total")
	failed := counterVal(svc, "service_jobs_failed_total")
	if completed+failed != submitted {
		t.Errorf("jobs: %d submitted but %d completed + %d failed", submitted, completed, failed)
	}
	// Cache accounting partitions completed jobs exactly.
	hits := counterVal(svc, "service_cache_hits_total") + counterVal(svc, "service_dedup_hits_total")
	misses := counterVal(svc, "service_cache_misses_total")
	if hits+misses != completed {
		t.Errorf("cache accounting: %d hits + %d misses != %d completed", hits, misses, completed)
	}

	// The injector's own counts agree with the bound telemetry: the sum
	// of every per-point fault_* counter equals fault_injections_total
	// equals the injector's internal tally.
	var fired uint64
	for _, n := range svc.cfg.Faults.Counts() {
		fired += n
	}
	var perPoint, total uint64
	svc.Registry().EachCounter(func(name string, v uint64) {
		switch {
		case name == "fault_injections_total":
			total = v
		case strings.HasPrefix(name, "fault_"):
			perPoint += v
		}
	})
	if total != fired || perPoint != fired {
		t.Errorf("fault accounting: injector %d, fault_injections_total %d, per-point sum %d",
			fired, total, perPoint)
	}

	// /metrics stays valid exposition format mid-chaos.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	validPrometheus(t, string(metrics))
	if !strings.Contains(string(metrics), "fault_injections_total") {
		t.Error("/metrics missing fault_injections_total")
	}
}

// TestChaosCacheCorruptionNeverServesWrongBytes: with every published
// cache entry corrupted (rate 1), each resubmission must detect the
// bad checksum, evict, recompute — and every caller must still receive
// the correct bytes. Wrong answers are the one unacceptable outcome.
func TestChaosCacheCorruptionNeverServesWrongBytes(t *testing.T) {
	svc := New(Config{
		Workers: 1, QueueDepth: 8,
		Faults: mustInjector(t, 3, "cache-corrupt:1"),
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	cl := client.New(ts.URL, client.WithPollInterval(2*time.Millisecond))
	req := client.Request{Workloads: []string{"Hashmap"}, Schemes: []string{"dolos-partial"},
		Transactions: 60, Seed: 1}

	const rounds = 4
	var first []byte
	for i := 0; i < rounds; i++ {
		res, err := cl.Run(context.Background(), req)
		if err != nil {
			t.Fatalf("round %d: %v", i, err)
		}
		got := normalizeHostFields(t, res.Bytes)
		if i == 0 {
			first = got
			continue
		}
		if !bytes.Equal(got, first) {
			t.Fatalf("round %d: recomputed result differs from round 0:\n%s\nvs\n%s", i, got, first)
		}
	}

	// Every round after the first found the previous round's entry
	// corrupted at submission time: rounds-1 detections, and every
	// round recomputed (no corrupted entry was ever trusted).
	if det := counterVal(svc, "service_cache_corruptions_detected_total"); det != rounds-1 {
		t.Errorf("corruption detections = %d, want %d", det, rounds-1)
	}
	if sims := counterVal(svc, "service_sims_executed_total"); sims != rounds {
		t.Errorf("sims executed = %d, want %d (each round recomputes)", sims, rounds)
	}
	if inj := counterVal(svc, "fault_cache_corrupt_injections_total"); inj != rounds {
		t.Errorf("cache-corrupt injections = %d, want %d (one per publish)", inj, rounds)
	}
}

// TestChaosDrainStallCompletes: graceful shutdown must run to
// completion even when every in-flight job stalls mid-drain, and the
// final metrics snapshot must record the injected stalls.
func TestChaosDrainStallCompletes(t *testing.T) {
	svc := New(Config{
		Workers: 2, QueueDepth: 8,
		Faults: mustInjector(t, 5, "drain-stall:1:10ms"),
	})
	entered := make(chan string, 8)
	release := make(chan struct{})
	svc.hookExecute = func(j *Job) {
		entered <- j.id
		<-release
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	const jobs = 4
	ids := make([]string, jobs)
	for i := 0; i < jobs; i++ {
		sub, code := postJob(t, ts, fmt.Sprintf(`{"transactions":50,"seed":%d}`, i+1))
		if code != http.StatusAccepted {
			t.Fatalf("job %d: submit HTTP %d", i, code)
		}
		ids[i] = sub.ID
	}
	<-entered
	<-entered // both workers now hold jobs; two more sit queued

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- svc.Shutdown(context.Background()) }()
	for !svc.isDraining() {
		time.Sleep(time.Millisecond)
	}
	close(release) // all four executions now pass the armed drain-stall point

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	select {
	case err := <-shutdownDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-ctx.Done():
		t.Fatal("Shutdown did not complete under drain-stall injection")
	}

	for i, id := range ids {
		if st := awaitJob(t, ts, id); st.Status != StatusDone {
			t.Errorf("job %d ended %s: %s", i, st.Status, st.Error)
		}
	}
	final := string(svc.FinalMetrics())
	validPrometheus(t, final)
	if !strings.Contains(final, fmt.Sprintf("service_jobs_completed_total %d", jobs)) {
		t.Errorf("final metrics missing %d completed jobs:\n%s", jobs, final)
	}
	if !strings.Contains(final, fmt.Sprintf("fault_drain_stall_injections_total %d", jobs)) {
		t.Errorf("final metrics missing %d drain stalls:\n%s", jobs, final)
	}
}

// TestChaosPanicResubmissionExact: single worker, sequential runs,
// only job-panic armed — the injector's draw sequence is then fully
// deterministic, so the accounting is exact: every injected panic
// fails exactly one job, every failed job triggers exactly one client
// resubmission, and every request still computes exactly once.
func TestChaosPanicResubmissionExact(t *testing.T) {
	svc := New(Config{
		Workers: 1, QueueDepth: 8,
		Faults: mustInjector(t, 11, "job-panic:0.6"),
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	cl := client.New(ts.URL, fastRetry(10), client.WithSeed(1),
		client.WithPollInterval(2*time.Millisecond))
	const runs = 5
	for i := 0; i < runs; i++ {
		req := client.Request{Workloads: []string{"Hashmap"}, Schemes: []string{"dolos-partial"},
			Transactions: 50, Seed: int64(i + 1)}
		if _, err := cl.Run(context.Background(), req); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
	}

	panics := svc.cfg.Faults.Counts()[fault.JobPanic]
	if panics == 0 {
		t.Fatal("seed 11 at rate 0.6 injected no panics — the chaos run exercised nothing")
	}
	if got := cl.Resubmits(); got != panics {
		t.Errorf("client resubmits = %d, want %d (one per injected panic)", got, panics)
	}
	if failed := counterVal(svc, "service_jobs_failed_total"); failed != panics {
		t.Errorf("failed jobs = %d, want %d", failed, panics)
	}
	if completed := counterVal(svc, "service_jobs_completed_total"); completed != runs {
		t.Errorf("completed jobs = %d, want %d", completed, runs)
	}
	if sims := counterVal(svc, "service_sims_executed_total"); sims != runs {
		t.Errorf("sims executed = %d, want %d (panics never double-execute)", sims, runs)
	}
	if v := counterVal(svc, "service_panics_total"); v != panics {
		t.Errorf("service_panics_total = %d, want %d", v, panics)
	}
}

// TestChaosClientSentinelRoundTrip: the client's sentinel errors match
// the statuses a faulty server actually sends — 429 under injected
// queue-full maps to ErrQueueFull with the server's Retry-After in the
// chain, a draining server maps to ErrUnavailable, an unknown id to
// ErrJobNotFound.
func TestChaosClientSentinelRoundTrip(t *testing.T) {
	svc := New(Config{
		Workers: 1, QueueDepth: 4,
		Faults: mustInjector(t, 1, "queue-full:1"),
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	cl := client.New(ts.URL, fastRetry(2))
	_, err := cl.Submit(context.Background(), client.Request{Transactions: 50})
	if !errors.Is(err, client.ErrQueueFull) {
		t.Fatalf("submit against queue-full:1 err = %v, want ErrQueueFull", err)
	}
	var se *client.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want a StatusError in the chain", err)
	}
	if se.Code != http.StatusTooManyRequests || se.RetryAfter != time.Second {
		t.Errorf("StatusError = code %d RetryAfter %v, want 429 with the server's 1s hint",
			se.Code, se.RetryAfter)
	}
	if got := cl.Retries(); got != 1 {
		t.Errorf("Retries() = %d, want 1 (two attempts, both rejected)", got)
	}
	if rejected := counterVal(svc, "service_jobs_rejected_total"); rejected != 2 {
		t.Errorf("server rejections = %d, want 2", rejected)
	}

	if _, err := cl.Status(context.Background(), "j99999999"); !errors.Is(err, client.ErrJobNotFound) {
		t.Errorf("unknown id err = %v, want ErrJobNotFound", err)
	}

	// A drained server rejects with 503 → ErrUnavailable.
	drained := New(Config{Workers: 1, QueueDepth: 2})
	drainedTS := httptest.NewServer(drained.Handler())
	defer drainedTS.Close()
	if err := drained.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	one := client.New(drainedTS.URL, client.WithRetryPolicy(client.RetryPolicy{MaxAttempts: 1}))
	if _, err := one.Submit(context.Background(), client.Request{}); !errors.Is(err, client.ErrUnavailable) {
		t.Errorf("draining submit err = %v, want ErrUnavailable", err)
	}
}
