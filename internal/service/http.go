package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"dolos/internal/telemetry"
)

// SubmitResponse is the body of POST /v1/jobs and GET /v1/jobs/{id}.
type SubmitResponse struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	// Cached is true when the result came from the LRU cache or a
	// deduplicated in-flight computation rather than a fresh simulation.
	Cached bool `json:"cached"`
	// QueuePosition is the 1-based position among queued jobs (present
	// only while queued).
	QueuePosition int `json:"queue_position,omitempty"`
	// Error carries the failure cause when Status is "failed".
	Error string `json:"error,omitempty"`
}

// ErrorEnvelope is the versioned error body every endpoint (v1 and
// v2) returns: a stable machine-readable code, a human message, and a
// retry hint in seconds for backpressure codes. Legacy mirrors the
// message under the pre-envelope "error" key so v1 clients written
// against PR-5 keep parsing.
type ErrorEnvelope struct {
	Code       string `json:"code"`
	Message    string `json:"message"`
	RetryAfter int64  `json:"retry_after,omitempty"`
	Legacy     string `json:"error"`
}

// Error codes carried by ErrorEnvelope.Code.
const (
	CodeBadRequest    = "bad_request"
	CodeBodyTooLarge  = "body_too_large"
	CodeNotFound      = "not_found"
	CodeQueueFull     = "queue_full"
	CodeQuotaExceeded = "quota_exceeded"
	CodeUnavailable   = "unavailable"
	CodeJobFailed     = "job_failed"
	CodeInternal      = "internal"
)

// DeprecationHeader marks every /v1 response (RFC 8594): the /v1
// surface is a shim over the same store-backed pipeline /v2 uses and
// will not grow new features.
const DeprecationHeader = "Deprecation"

// Handler returns the server's HTTP API.
//
// Current surface (/v2):
//
//	POST /v2/jobs             submit a grid or single-cell run
//	GET  /v2/jobs/{id}        job status with cell progress
//	GET  /v2/jobs/{id}/stream SSE of per-cell results (Last-Event-ID resumable)
//	GET  /v2/jobs/{id}/result RunRecord JSON (dolos-sim -json schema)
//	GET  /v2/cluster          ring membership, health and keyspace shares
//	GET  /v2/audit            the durable submission audit trail
//	POST /v2/cells            internal: execute one forwarded grid cell
//
// Deprecated shims (/v1, served from the same pipeline, tagged with a
// Deprecation header):
//
//	POST /v1/jobs             submit
//	GET  /v1/jobs/{id}        status
//	GET  /v1/jobs/{id}/result result
//
// Shared:
//
//	GET  /metrics             Prometheus text exposition
//	GET  /healthz             liveness ("ok", or 503 while draining)
//
// Every handler runs behind panic-to-500 recovery and a request
// counter; every error body is an ErrorEnvelope.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", deprecated(s.handleSubmit))
	mux.HandleFunc("GET /v1/jobs", deprecated(handleJobsNoID))
	mux.HandleFunc("GET /v1/jobs/{id}", deprecated(s.handleStatus))
	mux.HandleFunc("GET /v1/jobs/{id}/result", deprecated(s.handleResult))
	mux.HandleFunc("POST /v2/jobs", s.handleSubmitV2)
	mux.HandleFunc("GET /v2/jobs", handleJobsNoID)
	mux.HandleFunc("GET /v2/jobs/{id}", s.handleStatusV2)
	mux.HandleFunc("GET /v2/jobs/{id}/stream", s.handleStream)
	mux.HandleFunc("GET /v2/jobs/{id}/result", s.handleResultV2)
	mux.HandleFunc("GET /v2/cluster", s.handleCluster)
	mux.HandleFunc("GET /v2/audit", s.handleAudit)
	mux.HandleFunc("POST /v2/cells", s.handleCells)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mHTTP.Inc()
		defer func() {
			if p := recover(); p != nil {
				s.mPanics.Inc()
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p))
			}
		}()
		mux.ServeHTTP(w, r)
	})
}

// deprecated tags a /v1 handler's responses with the Deprecation
// header and a Link to the successor surface.
func deprecated(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(DeprecationHeader, "true")
		w.Header().Set("Link", `</v2/jobs>; rel="successor-version"`)
		h(w, r)
	}
}

// handleJobsNoID answers GET /vN/jobs without an id: a versioned 404
// envelope instead of the mux's bare 405 (there is no collection
// listing; the id is required).
func handleJobsNoID(w http.ResponseWriter, _ *http.Request) {
	writeError(w, http.StatusNotFound, "job id required: GET /v2/jobs/{id}")
}

// decodeSubmit parses and bounds a submission body. On failure it has
// already written the error response.
func (s *Server) decodeSubmit(w http.ResponseWriter, r *http.Request) (Request, bool) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return Request{}, false
		}
		writeError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return Request{}, false
	}
	return req, true
}

// submitCommon is the shared submission pipeline behind POST /v1/jobs
// and POST /v2/jobs: quota check, normalization, submit. It returns
// the job, or nil after writing the error response.
func (s *Server) submitCommon(w http.ResponseWriter, r *http.Request) *Job {
	tenant := tenantOf(r)
	if ok, wait := s.quotas.allow(tenant); !ok {
		s.mQuotaRejected.Inc()
		writeEnvelope(w, http.StatusTooManyRequests, CodeQuotaExceeded,
			fmt.Sprintf("tenant %q is over quota", tenant), wait)
		return nil
	}
	req, ok := s.decodeSubmit(w, r)
	if !ok {
		return nil
	}
	n, err := normalize(req, s.cfg.Limits)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return nil
	}
	job, err := s.submit(n, msToDuration(req.TimeoutMS), tenant)
	switch {
	case errors.Is(err, errDraining):
		writeEnvelope(w, http.StatusServiceUnavailable, CodeUnavailable, err.Error(), 5*time.Second)
		return nil
	case errors.Is(err, errQueueFull):
		writeEnvelope(w, http.StatusTooManyRequests, CodeQueueFull, err.Error(), time.Second)
		return nil
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return nil
	}
	return job
}

// tenantOf reads the submission's tenant identity ("default" when the
// header is absent).
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Dolos-Tenant"); t != "" {
		return t
	}
	return "default"
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	job := s.submitCommon(w, r)
	if job == nil {
		return
	}
	st := snapshotStatus(s, job)
	status := http.StatusAccepted
	if st.Status == StatusDone {
		status = http.StatusOK
	}
	writeJSON(w, status, st)
}

// msToDuration maps the wire timeout_ms field onto a duration (0 keeps
// the server default).
func msToDuration(ms int64) time.Duration {
	if ms <= 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	writeJSON(w, http.StatusOK, snapshotStatus(s, job))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	st := snapshotStatus(s, job)
	switch st.Status {
	case StatusDone:
		s.mu.Lock()
		result := job.result
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(result)
	case StatusFailed:
		writeEnvelope(w, http.StatusInternalServerError, CodeJobFailed, st.Error, 0)
	default:
		// Not finished: report the status (202) so pollers can keep the
		// same URL.
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.gQueueDepth.Set(float64(len(s.queue)))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WritePrometheus(w, telemetry.Snapshot(nil, s.reg))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.Header().Set("Retry-After", "5")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// snapshotStatus reads a job's externally visible state under the lock.
func snapshotStatus(s *Server, job *Job) SubmitResponse {
	pos := s.queuePosition(job)
	s.mu.Lock()
	defer s.mu.Unlock()
	return SubmitResponse{
		ID:            job.id,
		Status:        job.status,
		Cached:        job.cached,
		QueuePosition: pos,
		Error:         job.errMsg,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// writeEnvelope writes the versioned error body, with a Retry-After
// header when the code is retryable after a delay.
func writeEnvelope(w http.ResponseWriter, status int, code, msg string, retryAfter time.Duration) {
	env := ErrorEnvelope{Code: code, Message: msg, Legacy: msg}
	if retryAfter > 0 {
		secs := int64((retryAfter + time.Second - 1) / time.Second)
		env.RetryAfter = secs
		w.Header().Set("Retry-After", fmt.Sprintf("%d", secs))
	}
	writeJSON(w, status, env)
}

// writeError is the no-retry-hint envelope, mapping the HTTP status to
// its stable code.
func writeError(w http.ResponseWriter, status int, msg string) {
	writeEnvelope(w, status, codeForStatus(status), msg, 0)
}

func codeForStatus(status int) string {
	switch status {
	case http.StatusBadRequest:
		return CodeBadRequest
	case http.StatusRequestEntityTooLarge:
		return CodeBodyTooLarge
	case http.StatusNotFound:
		return CodeNotFound
	case http.StatusTooManyRequests:
		return CodeQueueFull
	case http.StatusServiceUnavailable:
		return CodeUnavailable
	default:
		return CodeInternal
	}
}
