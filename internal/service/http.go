package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"dolos/internal/telemetry"
)

// SubmitResponse is the body of POST /v1/jobs and GET /v1/jobs/{id}.
type SubmitResponse struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	// Cached is true when the result came from the LRU cache or a
	// deduplicated in-flight computation rather than a fresh simulation.
	Cached bool `json:"cached"`
	// QueuePosition is the 1-based position among queued jobs (present
	// only while queued).
	QueuePosition int `json:"queue_position,omitempty"`
	// Error carries the failure cause when Status is "failed".
	Error string `json:"error,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Handler returns the server's HTTP API:
//
//	POST /v1/jobs             submit a grid or single-cell run
//	GET  /v1/jobs/{id}        job status with queue position
//	GET  /v1/jobs/{id}/result RunRecord JSON (dolos-sim -json schema)
//	GET  /metrics             Prometheus text exposition
//	GET  /healthz             liveness ("ok", or 503 while draining)
//
// Every handler runs behind panic-to-500 recovery and a request
// counter.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		s.mHTTP.Inc()
		defer func() {
			if p := recover(); p != nil {
				s.mPanics.Inc()
				writeError(w, http.StatusInternalServerError, fmt.Sprintf("internal error: %v", p))
			}
		}()
		mux.ServeHTTP(w, r)
	})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	var req Request
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		writeError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return
	}

	n, err := normalize(req, s.cfg.Limits)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	job, err := s.submit(n, msToDuration(req.TimeoutMS))
	switch {
	case errors.Is(err, errDraining):
		w.Header().Set("Retry-After", "5")
		writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	case errors.Is(err, errQueueFull):
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusTooManyRequests, err.Error())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}

	st := snapshotStatus(s, job)
	status := http.StatusAccepted
	if st.Status == StatusDone {
		status = http.StatusOK
	}
	writeJSON(w, status, st)
}

// msToDuration maps the wire timeout_ms field onto a duration (0 keeps
// the server default).
func msToDuration(ms int64) time.Duration {
	if ms <= 0 {
		return 0
	}
	return time.Duration(ms) * time.Millisecond
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	writeJSON(w, http.StatusOK, snapshotStatus(s, job))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	st := snapshotStatus(s, job)
	switch st.Status {
	case StatusDone:
		s.mu.Lock()
		result := job.result
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(result)
	case StatusFailed:
		writeError(w, http.StatusInternalServerError, st.Error)
	default:
		// Not finished: report the status (202) so pollers can keep the
		// same URL.
		writeJSON(w, http.StatusAccepted, st)
	}
}

func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	s.gQueueDepth.Set(float64(len(s.queue)))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	telemetry.WritePrometheus(w, telemetry.Snapshot(nil, s.reg))
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	draining := s.draining
	s.mu.Unlock()
	if draining {
		w.Header().Set("Retry-After", "5")
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
}

// snapshotStatus reads a job's externally visible state under the lock.
func snapshotStatus(s *Server, job *Job) SubmitResponse {
	pos := s.queuePosition(job)
	s.mu.Lock()
	defer s.mu.Unlock()
	return SubmitResponse{
		ID:            job.id,
		Status:        job.status,
		Cached:        job.cached,
		QueuePosition: pos,
		Error:         job.errMsg,
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}
