package service

import (
	"container/list"
	"crypto/sha256"
	"sync"
)

// lruCache is the bounded result cache: canonical request key → encoded
// result bytes. Entries are immutable once inserted (callers share the
// byte slice read-only), eviction is least-recently-used, and Get
// promotes. Every entry carries the SHA-256 of its bytes, verified on
// every Get: a corrupted entry (bit rot, or internal/fault's
// cache-corrupt injection) is dropped and reported as a miss, so the
// worst a corruption can cost is one recomputation — never a wrong
// result served. It is safe for concurrent use.
type lruCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	l   *list.List // front = most recently used

	// onCorrupt, when set, is called (with the cache lock held) each
	// time Get drops an entry whose checksum no longer matches.
	onCorrupt func(key string)
}

type lruEntry struct {
	key string
	val []byte
	sum [sha256.Size]byte
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{cap: capacity, m: make(map[string]*list.Element), l: list.New()}
}

// Get returns the cached bytes and promotes the entry. An entry whose
// checksum fails verification is evicted and reported as a miss.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	e := el.Value.(*lruEntry)
	if sha256.Sum256(e.val) != e.sum {
		c.l.Remove(el)
		delete(c.m, key)
		if c.onCorrupt != nil {
			c.onCorrupt(key)
		}
		return nil, false
	}
	c.l.MoveToFront(el)
	return e.val, true
}

// Put inserts (or refreshes) an entry, evicting the least recently used
// entry when over capacity.
func (c *lruCache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		e := el.Value.(*lruEntry)
		e.val = val
		e.sum = sha256.Sum256(val)
		c.l.MoveToFront(el)
		return
	}
	c.m[key] = c.l.PushFront(&lruEntry{key: key, val: val, sum: sha256.Sum256(val)})
	for c.l.Len() > c.cap {
		oldest := c.l.Back()
		c.l.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
	}
}

// corrupt flips one byte of the named entry without updating its
// checksum — the fault-injection hook behind fault.CacheCorrupt. The
// entry's bytes are copied first, so result slices already handed to
// jobs are untouched; only the cached copy goes bad. Returns whether
// the entry existed.
func (c *lruCache) corrupt(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return false
	}
	e := el.Value.(*lruEntry)
	if len(e.val) == 0 {
		return false
	}
	b := append([]byte(nil), e.val...)
	b[len(b)/2] ^= 0xff
	e.val = b
	return true
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.l.Len()
}
