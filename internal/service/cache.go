package service

import (
	"container/list"
	"sync"
)

// lruCache is the bounded result cache: canonical request key → encoded
// result bytes. Entries are immutable once inserted (callers share the
// byte slice read-only), eviction is least-recently-used, and Get
// promotes. It is safe for concurrent use.
type lruCache struct {
	mu  sync.Mutex
	cap int
	m   map[string]*list.Element
	l   *list.List // front = most recently used
}

type lruEntry struct {
	key string
	val []byte
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{cap: capacity, m: make(map[string]*list.Element), l: list.New()}
}

// Get returns the cached bytes and promotes the entry.
func (c *lruCache) Get(key string) ([]byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[key]
	if !ok {
		return nil, false
	}
	c.l.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts (or refreshes) an entry, evicting the least recently used
// entry when over capacity.
func (c *lruCache) Put(key string, val []byte) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[key]; ok {
		el.Value.(*lruEntry).val = val
		c.l.MoveToFront(el)
		return
	}
	c.m[key] = c.l.PushFront(&lruEntry{key: key, val: val})
	for c.l.Len() > c.cap {
		oldest := c.l.Back()
		c.l.Remove(oldest)
		delete(c.m, oldest.Value.(*lruEntry).key)
	}
}

// Len returns the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.l.Len()
}
