package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"dolos/internal/cliutil"
	"dolos/internal/core"
	"dolos/internal/whisper"
)

// Request is the JSON body of POST /v1/jobs: a grid (workloads ×
// schemes) or a single cell when both lists have one element. Every
// field is optional; zero values take the same defaults the CLI tools
// use, so an empty body is a valid one-cell job.
type Request struct {
	// Workloads and Schemes enumerate the grid. Scheme names accept
	// every spelling the CLI does (dolos-partial, DolosPartial,
	// Dolos-Partial-WPQ); workload names are case-insensitive.
	Workloads []string `json:"workloads,omitempty"`
	Schemes   []string `json:"schemes,omitempty"`
	// Tree selects the integrity backend: "eager" (BMT) or "lazy" (ToC).
	Tree string `json:"tree,omitempty"`
	// Transactions per workload run (default 200, capped by the
	// server's Limits).
	Transactions int `json:"transactions,omitempty"`
	// TxSize is the per-transaction payload in bytes (default 1024).
	TxSize int `json:"tx_size,omitempty"`
	// Seed fixes the workload operation stream (default 1).
	Seed int64 `json:"seed,omitempty"`
	// WPQ is the hardware write-pending-queue size (default 16).
	WPQ int `json:"wpq,omitempty"`
	// NoCoalesce disables WPQ write coalescing.
	NoCoalesce bool `json:"no_coalesce,omitempty"`
	// TimeoutMS bounds the job (queue wait + execution). 0 uses the
	// server default.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// Limits bounds what a single request may ask for; oversized requests
// are rejected at submission instead of occupying the queue.
type Limits struct {
	// MaxTransactions caps Request.Transactions (default 20000).
	MaxTransactions int
	// MaxCells caps len(Workloads) × len(Schemes) (default 64).
	MaxCells int
}

func (l Limits) withDefaults() Limits {
	if l.MaxTransactions == 0 {
		l.MaxTransactions = 20000
	}
	if l.MaxCells == 0 {
		l.MaxCells = 64
	}
	return l
}

// normalized is the canonical form of a request: defaults applied and
// every name resolved to its one canonical spelling. Two requests for
// the same deterministic computation normalize identically no matter
// which aliases, cases or implicit defaults they used — which is what
// makes Key a sound result-cache key. encoding/json marshals struct
// fields in declaration order, so the JSON encoding of this struct is
// itself canonical. TimeoutMS is deliberately absent: a deadline bounds
// the job, it does not change the simulated result.
type normalized struct {
	Workloads    []string `json:"workloads"`
	Schemes      []string `json:"schemes"`
	Tree         string   `json:"tree"`
	Transactions int      `json:"transactions"`
	TxSize       int      `json:"tx_size"`
	Seed         int64    `json:"seed"`
	WPQ          int      `json:"wpq"`
	NoCoalesce   bool     `json:"no_coalesce"`
}

// normalize validates a request against the limits and returns its
// canonical form. List order is preserved (it determines result order),
// so the same cells in a different order are a different — but equally
// correct — cache entry.
func normalize(req Request, lim Limits) (normalized, error) {
	lim = lim.withDefaults()
	n := normalized{
		Tree:         req.Tree,
		Transactions: req.Transactions,
		TxSize:       req.TxSize,
		Seed:         req.Seed,
		WPQ:          req.WPQ,
		NoCoalesce:   req.NoCoalesce,
	}
	if n.Tree == "" {
		n.Tree = "eager"
	}
	if _, err := cliutil.ParseTree(n.Tree); err != nil {
		return normalized{}, err
	}
	if n.Transactions == 0 {
		n.Transactions = 200
	}
	if n.Transactions < 0 || n.Transactions > lim.MaxTransactions {
		return normalized{}, fmt.Errorf("transactions %d out of range [1, %d]",
			n.Transactions, lim.MaxTransactions)
	}
	if n.TxSize == 0 {
		n.TxSize = 1024
	}
	if n.TxSize < 64 || n.TxSize > 4096 {
		return normalized{}, fmt.Errorf("tx_size %d out of range [64, 4096]", n.TxSize)
	}
	if n.Seed == 0 {
		n.Seed = 1
	}
	if n.WPQ == 0 {
		n.WPQ = 16
	}
	if n.WPQ < 1 || n.WPQ > 1024 {
		return normalized{}, fmt.Errorf("wpq %d out of range [1, 1024]", n.WPQ)
	}

	workloads := req.Workloads
	if len(workloads) == 0 {
		workloads = []string{"Hashmap"}
	}
	for _, wl := range workloads {
		canon, err := canonicalWorkload(wl)
		if err != nil {
			return normalized{}, err
		}
		n.Workloads = append(n.Workloads, canon)
	}

	schemes := req.Schemes
	if len(schemes) == 0 {
		schemes = []string{"dolos-partial"}
	}
	for _, s := range schemes {
		sch, err := cliutil.ParseScheme(s)
		if err != nil {
			return normalized{}, err
		}
		n.Schemes = append(n.Schemes, sch.String())
	}

	if cells := len(n.Workloads) * len(n.Schemes); cells > lim.MaxCells {
		return normalized{}, fmt.Errorf("grid of %d cells exceeds the per-request limit of %d",
			cells, lim.MaxCells)
	}
	return n, nil
}

// canonicalWorkload resolves a workload name — any case or
// hyphenation the façade's ParseWorkload accepts — to the spelling
// the paper's figures (and whisper.Names) use. The error wraps
// whisper.ErrUnknown, so errors.Is reaches the sentinel from the
// HTTP 400 the handler maps it to.
func canonicalWorkload(name string) (string, error) {
	return whisper.Resolve(name)
}

// Key returns the canonical cache key: the hex SHA-256 of the canonical
// JSON encoding.
func (n normalized) Key() string {
	b, err := json.Marshal(n)
	if err != nil {
		// normalized holds only strings, ints and bools; Marshal cannot
		// fail on it.
		panic(err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// cellRequest projects grid cell i (cells() enumeration order:
// workloads outer, schemes inner) onto its own normalized single-cell
// request. Its Key() is the cell's identity everywhere cells travel
// alone: the consistent-hash routing key, the cluster-wide dedup key,
// and the cell-level cache key — all the same SHA-256 family as the
// job keys.
func (n normalized) cellRequest(i int) normalized {
	cn := n
	cn.Workloads = []string{n.Workloads[i/len(n.Schemes)]}
	cn.Schemes = []string{n.Schemes[i%len(n.Schemes)]}
	return cn
}

// requestOf maps a normalized request back onto the wire schema — the
// body the coordinator POSTs to a cell owner's /v2/cells endpoint.
// Canonical names survive normalize on the receiving node unchanged,
// so both sides compute identical keys.
func requestOf(n normalized) Request {
	return Request{
		Workloads:    n.Workloads,
		Schemes:      n.Schemes,
		Tree:         n.Tree,
		Transactions: n.Transactions,
		TxSize:       n.TxSize,
		Seed:         n.Seed,
		WPQ:          n.WPQ,
		NoCoalesce:   n.NoCoalesce,
	}
}

// cells enumerates the grid in result order: workloads outer, schemes
// inner — the same nesting every experiment table in internal/core uses.
func (n normalized) cells() []core.Cell {
	cells := make([]core.Cell, 0, len(n.Workloads)*len(n.Schemes))
	for _, wl := range n.Workloads {
		for _, s := range n.Schemes {
			sch, err := cliutil.ParseScheme(s)
			if err != nil {
				panic(err) // canonical names always parse
			}
			tree, err := cliutil.ParseTree(n.Tree)
			if err != nil {
				panic(err)
			}
			cells = append(cells, core.Cell{
				Workload: wl,
				Spec: core.Spec{
					Scheme:            sch,
					Tree:              tree,
					TxSize:            n.TxSize,
					HardwareWPQ:       n.WPQ,
					DisableCoalescing: n.NoCoalesce,
				},
			})
		}
	}
	return cells
}
