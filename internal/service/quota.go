package service

import (
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Quota is one tenant's token bucket: Rate submissions per second
// sustained, Burst submissions instantaneously.
type Quota struct {
	Rate  float64
	Burst float64
}

// ParseQuotas parses the -tenant-quotas flag syntax: a comma-separated
// list of tenant:rate[:burst] entries, e.g. "acme:5,*:100:200". Burst
// defaults to the rate (min 1). The "*" tenant is the catch-all for
// tenants without their own entry.
func ParseQuotas(spec string) (map[string]Quota, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	out := make(map[string]Quota)
	for _, entry := range strings.Split(spec, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ":")
		if len(parts) < 2 || len(parts) > 3 || parts[0] == "" {
			return nil, fmt.Errorf("quota entry %q: want tenant:rate[:burst]", entry)
		}
		rate, err := strconv.ParseFloat(parts[1], 64)
		if err != nil || rate <= 0 {
			return nil, fmt.Errorf("quota entry %q: bad rate %q", entry, parts[1])
		}
		q := Quota{Rate: rate, Burst: rate}
		if len(parts) == 3 {
			burst, err := strconv.ParseFloat(parts[2], 64)
			if err != nil || burst <= 0 {
				return nil, fmt.Errorf("quota entry %q: bad burst %q", entry, parts[2])
			}
			q.Burst = burst
		}
		if q.Burst < 1 {
			q.Burst = 1
		}
		out[parts[0]] = q
	}
	return out, nil
}

// tokenBuckets enforces per-tenant quotas. A nil *tokenBuckets (no
// quotas configured) allows everything.
type tokenBuckets struct {
	mu  sync.Mutex
	cfg map[string]Quota
	st  map[string]*bucket
	now func() time.Time // injectable for tests
}

type bucket struct {
	tokens float64
	last   time.Time
}

func newBuckets(cfg map[string]Quota) *tokenBuckets {
	if len(cfg) == 0 {
		return nil
	}
	return &tokenBuckets{cfg: cfg, st: make(map[string]*bucket), now: time.Now}
}

// allow spends one token from the tenant's bucket. When the bucket is
// empty it reports false and how long until a token refills — the
// Retry-After the 429 carries.
func (t *tokenBuckets) allow(tenant string) (bool, time.Duration) {
	if t == nil {
		return true, 0
	}
	q, ok := t.cfg[tenant]
	if !ok {
		q, ok = t.cfg["*"]
		if !ok {
			return true, 0 // unlisted tenant, no catch-all: unlimited
		}
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b, ok := t.st[tenant]
	now := t.now()
	if !ok {
		b = &bucket{tokens: q.Burst, last: now}
		t.st[tenant] = b
	}
	b.tokens += now.Sub(b.last).Seconds() * q.Rate
	if b.tokens > q.Burst {
		b.tokens = q.Burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / q.Rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second // Retry-After granularity is whole seconds
	}
	return false, wait
}
