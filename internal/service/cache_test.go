package service

import (
	"bytes"
	"fmt"
	"testing"
)

func TestLRUEvictsOldest(t *testing.T) {
	c := newLRU(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Put("c", []byte("C")) // evicts a
	if _, ok := c.Get("a"); ok {
		t.Error("oldest entry survived past capacity")
	}
	if v, ok := c.Get("b"); !ok || !bytes.Equal(v, []byte("B")) {
		t.Error("recent entry lost")
	}
	if c.Len() != 2 {
		t.Errorf("len = %d, want 2", c.Len())
	}
}

func TestLRUGetPromotes(t *testing.T) {
	c := newLRU(2)
	c.Put("a", []byte("A"))
	c.Put("b", []byte("B"))
	c.Get("a")              // a is now most recent
	c.Put("c", []byte("C")) // must evict b, not a
	if _, ok := c.Get("a"); !ok {
		t.Error("promoted entry evicted")
	}
	if _, ok := c.Get("b"); ok {
		t.Error("least-recent entry survived")
	}
}

func TestLRUPutRefreshes(t *testing.T) {
	c := newLRU(4)
	c.Put("a", []byte("old"))
	c.Put("a", []byte("new"))
	if v, _ := c.Get("a"); !bytes.Equal(v, []byte("new")) {
		t.Errorf("refresh lost: %q", v)
	}
	if c.Len() != 1 {
		t.Errorf("len = %d after double insert, want 1", c.Len())
	}
}

func TestLRUConcurrent(t *testing.T) {
	c := newLRU(8)
	done := make(chan struct{})
	for g := 0; g < 4; g++ {
		go func(g int) {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (g*7+i)%16)
				c.Put(k, []byte(k))
				c.Get(k)
			}
		}(g)
	}
	for g := 0; g < 4; g++ {
		<-done
	}
	if c.Len() > 8 {
		t.Errorf("len = %d exceeds capacity 8", c.Len())
	}
}
