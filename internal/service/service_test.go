package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"
	"time"

	"dolos/internal/cliutil"
	"dolos/internal/core"
	"dolos/internal/telemetry"
)

// postJob submits a request body and decodes the response envelope.
func postJob(t *testing.T, ts *httptest.Server, body string) (SubmitResponse, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sub SubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		t.Fatalf("decoding submit response: %v", err)
	}
	return sub, resp.StatusCode
}

// awaitJob polls a job until it settles.
func awaitJob(t *testing.T, ts *httptest.Server, id string) SubmitResponse {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var sub SubmitResponse
		err = json.NewDecoder(resp.Body).Decode(&sub)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if sub.Status == StatusDone || sub.Status == StatusFailed {
			return sub
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in status %s", id, sub.Status)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func getResult(t *testing.T, ts *httptest.Server, id string) ([]byte, int) {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return b, resp.StatusCode
}

// normalizeHostFields zeroes the two host-timing RunRecord fields
// (wall_seconds and the derived sim_events_per_sec vary run to run; all
// other fields, including events_processed, are deterministic) and
// re-encodes, so byte comparison checks every deterministic field.
func normalizeHostFields(t *testing.T, recordJSON []byte) []byte {
	t.Helper()
	var rec telemetry.RunRecord
	if err := json.Unmarshal(recordJSON, &rec); err != nil {
		t.Fatalf("result is not a RunRecord: %v\n%s", err, recordJSON)
	}
	rec.WallSeconds = 0
	rec.EventsPerSecond = 0
	var buf bytes.Buffer
	if err := telemetry.WriteJSON(&buf, rec); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServiceEndToEnd is the PR's acceptance test: 16 concurrent
// clients submit the identical single-cell job against an 8-worker
// pool. Exactly one simulation must execute (cache + single-flight);
// every client must receive bytes identical to each other and — after
// zeroing the host-timing fields — to a direct internal/core run of the
// same cell; /metrics must expose the job and cache counters in valid
// Prometheus text format.
func TestServiceEndToEnd(t *testing.T) {
	svc := New(Config{Workers: 8, QueueDepth: 64})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	const body = `{"workloads":["Hashmap"],"schemes":["dolos-partial"],"transactions":120,"seed":1}`
	const clients = 16

	var wg sync.WaitGroup
	results := make([][]byte, clients)
	wg.Add(clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			defer wg.Done()
			sub, code := postJob(t, ts, body)
			if code != http.StatusOK && code != http.StatusAccepted {
				t.Errorf("client %d: submit HTTP %d", c, code)
				return
			}
			if st := awaitJob(t, ts, sub.ID); st.Status != StatusDone {
				t.Errorf("client %d: job %s ended %s: %s", c, sub.ID, st.Status, st.Error)
				return
			}
			b, code := getResult(t, ts, sub.ID)
			if code != http.StatusOK {
				t.Errorf("client %d: result HTTP %d", c, code)
				return
			}
			results[c] = b
		}(c)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	for c := 1; c < clients; c++ {
		if !bytes.Equal(results[c], results[0]) {
			t.Fatalf("client %d received different bytes than client 0:\n%s\nvs\n%s",
				c, results[c], results[0])
		}
	}

	if sims := svc.Registry().Counter("service_sims_executed_total").Value(); sims != 1 {
		t.Errorf("16 identical submissions executed %d simulations, want exactly 1", sims)
	}

	// Byte-identity with a direct core run of the same cell, using the
	// very same normalization the server applied.
	var req Request
	if err := json.Unmarshal([]byte(body), &req); err != nil {
		t.Fatal(err)
	}
	n, err := normalize(req, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	cells := n.cells()
	runner := core.NewRunner(core.Options{Transactions: n.Transactions, Seed: n.Seed, Parallelism: 1})
	rr, err := runner.RunCell(context.Background(), cells[0].Workload, cells[0].Spec)
	if err != nil {
		t.Fatal(err)
	}
	direct := cliutil.BuildRunRecord(rr.Result, cells[0].Spec.Tree, cells[0].Spec.TxSize,
		n.Seed, rr.Events, rr.Wall, rr.Stats, nil)
	var directBuf bytes.Buffer
	if err := telemetry.WriteJSON(&directBuf, direct); err != nil {
		t.Fatal(err)
	}
	got := normalizeHostFields(t, results[0])
	want := normalizeHostFields(t, directBuf.Bytes())
	if !bytes.Equal(got, want) {
		t.Errorf("service result differs from direct core run:\n--- service ---\n%s--- direct ---\n%s", got, want)
	}

	// /metrics: job and cache counters in valid exposition format.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	text := string(metrics)
	for _, want := range []string{
		"service_jobs_submitted_total", "service_jobs_completed_total",
		"service_cache_hits_total", "service_cache_misses_total",
		"service_sims_executed_total", "service_queue_depth",
		"service_job_seconds",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	validPrometheus(t, text)

	// The 16 clients produced exactly one miss; every other response
	// was a cache or dedup hit.
	reg := svc.Registry()
	if misses := reg.Counter("service_cache_misses_total").Value(); misses != 1 {
		t.Errorf("cache misses = %d, want 1", misses)
	}
	hits := reg.Counter("service_cache_hits_total").Value() +
		reg.Counter("service_dedup_hits_total").Value()
	if hits != clients-1 {
		t.Errorf("cache+dedup hits = %d, want %d", hits, clients-1)
	}
}

// promLine mirrors the exposition line grammar pinned in
// internal/telemetry's golden test.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*` +
	` (NaN|[+-]Inf|[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$`)

func validPrometheus(t *testing.T, text string) {
	t.Helper()
	if strings.TrimSpace(text) == "" {
		t.Error("empty exposition output")
	}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line %q", line)
		}
	}
}

// TestShutdownDrainsInFlight pins the drain contract: Shutdown with an
// in-flight job returns only after the job completes, flushes the final
// metrics snapshot, and rejects new submissions with 503.
func TestShutdownDrainsInFlight(t *testing.T) {
	svc := New(Config{Workers: 2, QueueDepth: 8})
	entered := make(chan string, 8)
	release := make(chan struct{})
	svc.hookExecute = func(j *Job) {
		entered <- j.id
		<-release
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	sub, code := postJob(t, ts, `{"transactions":50}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit HTTP %d", code)
	}
	<-entered // a worker now holds the job in-flight

	shutdownDone := make(chan error, 1)
	go func() { shutdownDone <- svc.Shutdown(context.Background()) }()

	select {
	case err := <-shutdownDone:
		t.Fatalf("Shutdown returned (%v) while a job was in flight", err)
	case <-time.After(50 * time.Millisecond):
	}

	// While draining: health reports 503 and submissions are rejected
	// with Retry-After.
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz HTTP %d, want 503", resp.StatusCode)
	}
	resp, err = http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining submit HTTP %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("503 without Retry-After")
	}

	close(release)
	if err := <-shutdownDone; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if st := awaitJob(t, ts, sub.ID); st.Status != StatusDone {
		t.Errorf("drained job ended %s, want done", st.Status)
	}
	final := string(svc.FinalMetrics())
	if !strings.Contains(final, "service_jobs_completed_total 1") {
		t.Errorf("final metrics snapshot missing completed counter:\n%s", final)
	}
	validPrometheus(t, final)
}

// TestQueueFullRejects pins the backpressure contract: with one worker
// held and the depth-1 queue occupied, the next submission is rejected
// with 429 and a Retry-After header.
func TestQueueFullRejects(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 1})
	entered := make(chan string, 4)
	release := make(chan struct{})
	svc.hookExecute = func(j *Job) {
		entered <- j.id
		<-release
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	// Distinct seeds keep the three jobs from deduplicating.
	if _, code := postJob(t, ts, `{"transactions":50,"seed":11}`); code != http.StatusAccepted {
		t.Fatalf("job A HTTP %d", code)
	}
	<-entered // worker busy with A
	subB, code := postJob(t, ts, `{"transactions":50,"seed":12}`)
	if code != http.StatusAccepted {
		t.Fatalf("job B HTTP %d", code)
	}
	if subB.QueuePosition != 1 {
		t.Errorf("job B queue position = %d, want 1", subB.QueuePosition)
	}

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json",
		strings.NewReader(`{"transactions":50,"seed":13}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Errorf("full-queue submit HTTP %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if rejected := svc.Registry().Counter("service_jobs_rejected_total").Value(); rejected != 1 {
		t.Errorf("rejected counter = %d, want 1", rejected)
	}

	close(release)
	svc.Shutdown(context.Background())
}

// TestJobDeadline: a job whose deadline expires before a worker can run
// it fails with context.DeadlineExceeded instead of running anyway.
func TestJobDeadline(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 8})
	svc.hookExecute = func(*Job) { time.Sleep(80 * time.Millisecond) }
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	sub, code := postJob(t, ts, `{"transactions":50,"timeout_ms":20}`)
	if code != http.StatusAccepted {
		t.Fatalf("submit HTTP %d", code)
	}
	st := awaitJob(t, ts, sub.ID)
	if st.Status != StatusFailed {
		t.Fatalf("job ended %s, want failed", st.Status)
	}
	if !strings.Contains(st.Error, "deadline") {
		t.Errorf("failure cause %q does not mention the deadline", st.Error)
	}
	if _, code := getResult(t, ts, sub.ID); code != http.StatusInternalServerError {
		t.Errorf("failed job result HTTP %d, want 500", code)
	}
	svc.Shutdown(context.Background())
}

// TestResultBeforeCompletion: polling the result URL of an unfinished
// job reports its status with 202 instead of an error.
func TestResultBeforeCompletion(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 8})
	release := make(chan struct{})
	entered := make(chan string, 1)
	svc.hookExecute = func(j *Job) {
		entered <- j.id
		<-release
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	sub, _ := postJob(t, ts, `{"transactions":50}`)
	<-entered
	if _, code := getResult(t, ts, sub.ID); code != http.StatusAccepted {
		t.Errorf("pending result HTTP %d, want 202", code)
	}
	close(release)
	awaitJob(t, ts, sub.ID)
	svc.Shutdown(context.Background())
}

// TestBadRequests sweeps the rejection surface of the submit endpoint.
func TestBadRequests(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 4, MaxBodyBytes: 256,
		Limits: Limits{MaxCells: 4, MaxTransactions: 1000}})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	cases := []struct {
		name, body string
		want       int
	}{
		{"unknown workload", `{"workloads":["NoSuchThing"]}`, http.StatusBadRequest},
		{"unknown scheme", `{"schemes":["turbo"]}`, http.StatusBadRequest},
		{"unknown tree", `{"tree":"bushy"}`, http.StatusBadRequest},
		{"grid too large", `{"workloads":["Hashmap","Btree","Ctree"],"schemes":["baseline","ideal"]}`, http.StatusBadRequest},
		{"transactions over cap", `{"transactions":5000}`, http.StatusBadRequest},
		{"tx size out of range", `{"tx_size":9999}`, http.StatusBadRequest},
		{"malformed json", `{"workloads":`, http.StatusBadRequest},
		{"unknown field", `{"workload":"Hashmap"}`, http.StatusBadRequest},
		{"oversized body", fmt.Sprintf(`{"workloads":[%q]}`, strings.Repeat("x", 512)), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s: HTTP %d, want %d", tc.name, resp.StatusCode, tc.want)
		}
	}

	if resp, err := http.Get(ts.URL + "/v1/jobs/j99999999"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("unknown job HTTP %d, want 404", resp.StatusCode)
		}
	}
	// GET on the collection (no id) is a versioned 404 envelope — not
	// the mux's bare 405 — on both API versions.
	for _, path := range []string{"/v1/jobs", "/v2/jobs"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		var env ErrorEnvelope
		if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
			t.Errorf("GET %s: body is not an error envelope: %v", path, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s HTTP %d, want 404", path, resp.StatusCode)
		}
		if env.Code != CodeNotFound || env.Message == "" || env.Legacy != env.Message {
			t.Errorf("GET %s envelope %+v, want code %q with mirrored legacy message", path, env, CodeNotFound)
		}
	}
}

// TestGridJob: a workloads×schemes grid returns an array of RunRecords
// in enumeration order (workloads outer, schemes inner).
func TestGridJob(t *testing.T) {
	svc := New(Config{Workers: 4, QueueDepth: 8})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	sub, code := postJob(t, ts,
		`{"workloads":["Hashmap"],"schemes":["baseline","dolos-partial"],"transactions":60}`)
	if code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit HTTP %d", code)
	}
	if st := awaitJob(t, ts, sub.ID); st.Status != StatusDone {
		t.Fatalf("grid job ended %s: %s", st.Status, st.Error)
	}
	b, code := getResult(t, ts, sub.ID)
	if code != http.StatusOK {
		t.Fatalf("result HTTP %d", code)
	}
	var recs []telemetry.RunRecord
	if err := json.Unmarshal(b, &recs); err != nil {
		t.Fatalf("grid result is not a RunRecord array: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("grid returned %d records, want 2", len(recs))
	}
	if recs[0].Scheme != "Pre-WPQ-Secure" || recs[1].Scheme != "Dolos-Partial-WPQ" {
		t.Errorf("grid order: got schemes %q, %q", recs[0].Scheme, recs[1].Scheme)
	}
	for i, rec := range recs {
		if rec.Workload != "Hashmap" || rec.Cycles == 0 || rec.EventsProcessed == 0 {
			t.Errorf("record %d incomplete: %+v", i, rec)
		}
	}
}

// TestPanicContainment: a panicking computation fails its job (and any
// deduplicated followers) without killing the worker, which keeps
// serving later jobs.
func TestPanicContainment(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 8})
	svc.hookExecute = func(j *Job) {
		if j.req.Seed == 666 {
			panic("injected failure")
		}
	}
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	sub, _ := postJob(t, ts, `{"transactions":50,"seed":666}`)
	if st := awaitJob(t, ts, sub.ID); st.Status != StatusFailed || !strings.Contains(st.Error, "panic") {
		t.Fatalf("panicked job: status %s, error %q", st.Status, st.Error)
	}
	if v := svc.Registry().Counter("service_panics_total").Value(); v != 1 {
		t.Errorf("panic counter = %d, want 1", v)
	}

	// The worker survived: a healthy job still completes.
	sub, _ = postJob(t, ts, `{"transactions":50,"seed":2}`)
	if st := awaitJob(t, ts, sub.ID); st.Status != StatusDone {
		t.Fatalf("job after panic ended %s: %s", st.Status, st.Error)
	}
}
