package service

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"dolos/client"
	"dolos/internal/cluster"
	"dolos/internal/store"
	"dolos/internal/telemetry"
)

// normalizeGridHostFields zeroes the host-timing fields of every
// record in a grid result and re-encodes, so byte comparison covers
// every deterministic field (see normalizeHostFields for one record).
func normalizeGridHostFields(t *testing.T, gridJSON []byte) []byte {
	t.Helper()
	var recs []telemetry.RunRecord
	if err := json.Unmarshal(gridJSON, &recs); err != nil {
		t.Fatalf("result is not a RunRecord array: %v\n%s", err, gridJSON)
	}
	for i := range recs {
		recs[i].WallSeconds = 0
		recs[i].EventsPerSecond = 0
	}
	var buf bytes.Buffer
	if err := telemetry.WriteJSON(&buf, recs); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestV2StreamDelivery: a grid submitted over /v2 streams every cell
// exactly once, in enumeration order, with parseable RunRecords, and
// terminates with a done event (io.EOF from the client iterator). The
// cells must start arriving while the job is still running — partial
// results, not a settled-job replay.
func TestV2StreamDelivery(t *testing.T) {
	svc := New(Config{
		Workers: 1, QueueDepth: 8,
		Faults: mustInjector(t, 1, "cell-latency:1:80ms"),
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	cl := client.New(ts.URL).V2()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	job, err := cl.SubmitGrid(ctx, client.Request{
		Workloads: []string{"Hashmap", "Btree"}, Schemes: []string{"baseline", "dolos-partial"},
		Transactions: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if job.Cells != 4 {
		t.Fatalf("job.Cells = %d, want 4", job.Cells)
	}
	st, err := cl.Stream(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	sawRunningAfterFirst := false
	for i := 0; ; i++ {
		ev, err := st.Next()
		if errors.Is(err, io.EOF) {
			if i != 4 {
				t.Fatalf("stream ended after %d cells, want 4", i)
			}
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		if ev.Index != i || ev.Total != 4 {
			t.Fatalf("event %d: index %d total %d", i, ev.Index, ev.Total)
		}
		var rec telemetry.RunRecord
		if err := json.Unmarshal(ev.Record, &rec); err != nil {
			t.Fatalf("cell %d record does not parse: %v", i, err)
		}
		if rec.Workload == "" || rec.Scheme == "" {
			t.Fatalf("cell %d record missing identity: %+v", i, rec)
		}
		if i == 0 {
			if js, err := cl.Status(ctx, job.ID); err == nil && js.Status == client.StatusRunning {
				sawRunningAfterFirst = true
			}
		}
	}
	if !sawRunningAfterFirst {
		t.Error("first cell did not arrive while the job was still running — stream is not partial")
	}
	if js, err := cl.Status(ctx, job.ID); err != nil || js.Status != client.StatusDone || js.CellsDone != 4 {
		t.Fatalf("final status %+v, err %v", js, err)
	}
	if ev := counterVal(svc, "service_stream_events_total"); ev != 4 {
		t.Errorf("service_stream_events_total = %d, want 4", ev)
	}
}

// TestV2StreamResume: reconnecting with Last-Event-ID k replays only
// cells k..n-1 plus the terminal event — on the raw SSE wire, exactly
// the contract the client iterator's reconnect relies on.
func TestV2StreamResume(t *testing.T) {
	svc := New(Config{Workers: 2, QueueDepth: 8})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	cl := client.New(ts.URL).V2()
	ctx := context.Background()
	job, err := cl.SubmitGrid(ctx, client.Request{
		Workloads: []string{"Hashmap", "Btree"}, Schemes: []string{"baseline", "dolos-partial"},
		Transactions: 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.Result(waitDone(t, ctx, cl, job.ID), job.ID); err != nil {
		t.Fatal(err)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v2/jobs/"+job.ID+"/stream", nil)
	req.Header.Set("Last-Event-ID", "2")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream Content-Type %q", ct)
	}
	var ids []string
	var kinds []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		line := sc.Text()
		if strings.HasPrefix(line, "id: ") {
			ids = append(ids, strings.TrimPrefix(line, "id: "))
		}
		if strings.HasPrefix(line, "event: ") {
			kinds = append(kinds, strings.TrimPrefix(line, "event: "))
		}
	}
	if want := []string{"3", "4"}; fmt.Sprint(ids) != fmt.Sprint(want) {
		t.Errorf("replayed ids %v, want %v (cells 2 and 3)", ids, want)
	}
	if want := []string{"cell", "cell", "done"}; fmt.Sprint(kinds) != fmt.Sprint(want) {
		t.Errorf("replayed events %v, want %v", kinds, want)
	}
}

// waitDone polls a job to done and returns the ctx (helper for tests
// that only need settlement).
func waitDone(t *testing.T, ctx context.Context, cl *client.V2Client, id string) context.Context {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		js, err := cl.Status(ctx, id)
		if err != nil {
			t.Fatal(err)
		}
		if js.Status == client.StatusDone {
			return ctx
		}
		if js.Status == client.StatusFailed {
			t.Fatalf("job failed: %s", js.Err)
		}
		if time.Now().After(deadline) {
			t.Fatal("job did not settle in 30s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestV2QuotaEnforced: a tenant over its token bucket gets 429 with
// the quota_exceeded envelope code and a Retry-After; other tenants
// are unaffected; the audit trail attributes every accepted
// submission to its tenant.
func TestV2QuotaEnforced(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	svc := New(Config{
		Workers: 2, QueueDepth: 8, Store: st,
		Quotas: map[string]Quota{"acme": {Rate: 0.001, Burst: 2}},
	})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	post := func(tenant string, seed int) (*http.Response, []byte) {
		body := fmt.Sprintf(`{"transactions":30,"seed":%d}`, seed)
		req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v2/jobs", strings.NewReader(body))
		req.Header.Set("X-Dolos-Tenant", tenant)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, b
	}

	for i := 0; i < 2; i++ {
		if resp, b := post("acme", i+1); resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d within burst: HTTP %d: %s", i, resp.StatusCode, b)
		}
	}
	resp, b := post("acme", 3)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-quota submission: HTTP %d, want 429", resp.StatusCode)
	}
	var env ErrorEnvelope
	if err := json.Unmarshal(b, &env); err != nil || env.Code != CodeQuotaExceeded || env.RetryAfter < 1 {
		t.Fatalf("over-quota envelope %s (err %v), want code %q with retry_after", b, err, CodeQuotaExceeded)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("over-quota response missing Retry-After header")
	}
	if resp, _ := post("other", 4); resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		t.Fatalf("unquota'd tenant rejected: HTTP %d", resp.StatusCode)
	}
	if v := counterVal(svc, "service_quota_rejected_total"); v != 1 {
		t.Errorf("service_quota_rejected_total = %d, want 1", v)
	}

	// The audit trail holds the three accepted submissions with their
	// tenants (the rejected one never reached the store).
	aresp, err := http.Get(ts.URL + "/v2/audit")
	if err != nil {
		t.Fatal(err)
	}
	defer aresp.Body.Close()
	var audit AuditResponse
	if err := json.NewDecoder(aresp.Body).Decode(&audit); err != nil {
		t.Fatal(err)
	}
	if len(audit.Entries) != 3 {
		t.Fatalf("audit has %d entries, want 3: %+v", len(audit.Entries), audit.Entries)
	}
	tenants := map[string]int{}
	for _, e := range audit.Entries {
		tenants[e.Tenant]++
		if e.JobID == "" || e.Key == "" || e.At.IsZero() {
			t.Errorf("incomplete audit entry: %+v", e)
		}
	}
	if tenants["acme"] != 2 || tenants["other"] != 1 {
		t.Errorf("audit tenants %v, want acme:2 other:1", tenants)
	}
}

// TestV1DeprecationShim: every /v1 response carries the Deprecation
// header and successor Link; /v2 responses do not.
func TestV1DeprecationShim(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(context.Background())

	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(`{"transactions":30}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.Header.Get(DeprecationHeader) != "true" || !strings.Contains(resp.Header.Get("Link"), "successor-version") {
		t.Errorf("/v1 response missing deprecation headers: %v", resp.Header)
	}
	resp2, err := http.Post(ts.URL+"/v2/jobs", "application/json", strings.NewReader(`{"transactions":30}`))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.Header.Get(DeprecationHeader) != "" {
		t.Error("/v2 response carries a Deprecation header")
	}
}

// TestStoreRecoverySettled: a restarted server answers for jobs the
// previous incarnation completed — status, result bytes, stream replay
// — without re-executing a single simulation, and a resubmission of
// the same request is a warm cache hit.
func TestStoreRecoverySettled(t *testing.T) {
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	svc := New(Config{Workers: 2, QueueDepth: 8, Store: st})
	ts := httptest.NewServer(svc.Handler())
	cl := client.New(ts.URL).V2()
	ctx := context.Background()

	req := client.Request{
		Workloads: []string{"Hashmap", "Btree"}, Schemes: []string{"baseline", "dolos-partial"},
		Transactions: 30,
	}
	job, err := cl.SubmitGrid(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ctx, cl, job.ID)
	result1, err := cl.Result(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	svc2 := New(Config{Workers: 2, QueueDepth: 8, Store: st2})
	ts2 := httptest.NewServer(svc2.Handler())
	defer ts2.Close()
	defer svc2.Shutdown(ctx)
	cl2 := client.New(ts2.URL).V2()

	js, err := cl2.Status(ctx, job.ID)
	if err != nil || js.Status != client.StatusDone || js.CellsDone != 4 {
		t.Fatalf("recovered status %+v, err %v", js, err)
	}
	result2, err := cl2.Result(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(result1, result2) {
		t.Error("recovered result bytes differ from the original — not even host timings may change on replay")
	}
	// Stream replay from the recovered store: all 4 cells + done.
	stm, err := cl2.Stream(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}
	defer stm.Close()
	n := 0
	for {
		_, err := stm.Next()
		if errors.Is(err, io.EOF) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 4 {
		t.Fatalf("recovered stream replayed %d cells, want 4", n)
	}
	// Nothing was simulated; the resubmission is a cache hit.
	job2, err := cl2.SubmitGrid(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !job2.Cached || job2.Status != client.StatusDone {
		t.Errorf("resubmission after recovery not a cache hit: %+v", job2)
	}
	if sims := counterVal(svc2, "service_sims_executed_total"); sims != 0 {
		t.Errorf("recovered server executed %d simulations, want 0", sims)
	}
}

// TestStoreRecoveryMidGrid simulates the SIGKILL-mid-grid crash: a
// store holding a submit record and the first cell's completion but no
// terminal record — exactly what a kill between cell appends leaves
// behind. The restarted server must finish the job executing ONLY the
// missing cells (no lost job, no double execution) and produce a
// result whose deterministic fields are byte-identical to an
// uninterrupted run.
func TestStoreRecoveryMidGrid(t *testing.T) {
	// Reference run: the same grid on a plain server.
	ref := New(Config{Workers: 2, QueueDepth: 8})
	tsRef := httptest.NewServer(ref.Handler())
	defer tsRef.Close()
	defer ref.Shutdown(context.Background())
	ctx := context.Background()
	req := client.Request{
		Workloads: []string{"Hashmap"}, Schemes: []string{"baseline", "dolos-partial"},
		Transactions: 30,
	}
	clRef := client.New(tsRef.URL).V2()
	jobRef, err := clRef.SubmitGrid(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ctx, clRef, jobRef.ID)
	wantBytes, err := clRef.Result(ctx, jobRef.ID)
	if err != nil {
		t.Fatal(err)
	}
	refRecs, err := splitRecords(wantBytes, 2)
	if err != nil {
		t.Fatal(err)
	}

	// Forge the crash wreckage: submit + cell 0 durable, cell 1 and the
	// terminal record lost with the process.
	dir := t.TempDir()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	n, err := normalize(Request{
		Workloads: req.Workloads, Schemes: req.Schemes, Transactions: req.Transactions,
	}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	reqJSON, _ := json.Marshal(n)
	if err := st.AppendSubmit(store.JobRecord{
		ID: "j00000001", Seq: 1, Key: n.Key(), Tenant: "crashed", Req: reqJSON, At: time.Now(),
	}); err != nil {
		t.Fatal(err)
	}
	if err := st.AppendCell("j00000001", 0, 2, refRecs[0]); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	svc := New(Config{Workers: 2, QueueDepth: 8, Store: st2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	defer svc.Shutdown(ctx)
	cl := client.New(ts.URL).V2()

	if v := counterVal(svc, "service_jobs_recovered_total"); v != 1 {
		t.Fatalf("service_jobs_recovered_total = %d, want 1", v)
	}
	waitDone(t, ctx, cl, "j00000001")
	got, err := cl.Result(ctx, "j00000001")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(normalizeGridHostFields(t, got), normalizeGridHostFields(t, wantBytes)) {
		t.Error("resumed grid differs from the uninterrupted run on deterministic fields")
	}
	if sims := counterVal(svc, "service_sims_executed_total"); sims != 1 {
		t.Errorf("resumed job executed %d simulations, want exactly the 1 missing cell", sims)
	}
}

// swapHandler lets a cluster node's URL exist before its server does.
type swapHandler struct {
	mu sync.Mutex
	h  http.Handler
}

func (s *swapHandler) set(h http.Handler) {
	s.mu.Lock()
	s.h = h
	s.mu.Unlock()
}

func (s *swapHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	h := s.h
	s.mu.Unlock()
	if h == nil {
		http.Error(w, "not up", http.StatusServiceUnavailable)
		return
	}
	h.ServeHTTP(w, r)
}

// clusterNode is one in-process dolos-serve node for cluster tests.
type clusterNode struct {
	svc  *Server
	ring *cluster.Cluster
	ts   *httptest.Server
}

// startCluster wires n in-process nodes into one ring.
func startCluster(t *testing.T, n int) []*clusterNode {
	t.Helper()
	swaps := make([]*swapHandler, n)
	urls := make([]string, n)
	nodes := make([]*clusterNode, n)
	for i := range swaps {
		swaps[i] = &swapHandler{}
		ts := httptest.NewServer(swaps[i])
		t.Cleanup(ts.Close)
		urls[i] = ts.URL
		nodes[i] = &clusterNode{ts: ts}
	}
	for i := range nodes {
		peers := map[string]string{}
		for j := range nodes {
			if j != i {
				peers[fmt.Sprintf("n%d", j+1)] = urls[j]
			}
		}
		reg := telemetry.NewRegistry()
		ring, err := cluster.New(cluster.Config{SelfID: fmt.Sprintf("n%d", i+1), Peers: peers, Registry: reg})
		if err != nil {
			t.Fatal(err)
		}
		svc := New(Config{Workers: 2, QueueDepth: 16, Cluster: ring, Registry: reg})
		nodes[i].svc, nodes[i].ring = svc, ring
		swaps[i].set(svc.Handler())
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			svc.Shutdown(ctx)
			ring.Close()
		})
	}
	return nodes
}

// TestClusterGridByteIdentical: a grid submitted to a 3-node cluster
// is sharded by cell key, deduplicated cluster-wide (total simulations
// == cells), forwarded exactly as the ring dictates, and produces
// deterministic fields byte-identical to a single-node run.
func TestClusterGridByteIdentical(t *testing.T) {
	nodes := startCluster(t, 3)
	ctx := context.Background()
	req := client.Request{
		Workloads: []string{"Hashmap", "Btree"}, Schemes: []string{"baseline", "dolos-partial"},
		Transactions: 30,
	}

	// Expected routing, computed from the same ring the coordinator uses.
	n, err := normalize(Request{
		Workloads: req.Workloads, Schemes: req.Schemes, Transactions: req.Transactions,
	}, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	remote := 0
	for i := 0; i < 4; i++ {
		if nodes[0].ring.OwnerOf(n.cellRequest(i).Key()) != "n1" {
			remote++
		}
	}

	cl := client.New(nodes[0].ts.URL).V2()
	job, err := cl.SubmitGrid(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ctx, cl, job.ID)
	got, err := cl.Result(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}

	single := New(Config{Workers: 2, QueueDepth: 8})
	tsS := httptest.NewServer(single.Handler())
	defer tsS.Close()
	defer single.Shutdown(ctx)
	clS := client.New(tsS.URL).V2()
	jobS, err := clS.SubmitGrid(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ctx, clS, jobS.ID)
	want, err := clS.Result(ctx, jobS.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(normalizeGridHostFields(t, got), normalizeGridHostFields(t, want)) {
		t.Error("cluster grid differs from single-node grid on deterministic fields")
	}

	var sims, forwarded uint64
	for _, nd := range nodes {
		sims += counterVal(nd.svc, "service_sims_executed_total")
		forwarded += nd.svc.Registry().Counter("cluster_cells_forwarded_total").Value()
	}
	if sims != 4 {
		t.Errorf("cluster executed %d simulations for a 4-cell grid, want exactly 4", sims)
	}
	if forwarded != uint64(remote) {
		t.Errorf("cluster forwarded %d cells, ring owns %d remotely", forwarded, remote)
	}
}

// TestClusterDeadOwnerFallsBackLocal: with a peer gone (its listener
// closed — the in-process stand-in for SIGKILL), the coordinator's
// forwards fail, the node is marked down, and the grid still completes
// locally with byte-identical deterministic fields and zero lost or
// doubled cells.
func TestClusterDeadOwnerFallsBackLocal(t *testing.T) {
	nodes := startCluster(t, 3)
	ctx := context.Background()
	// Kill n2 outright before the submission: every cell it owns now
	// fails its first forward and must fall back.
	nodes[1].ts.Close()

	req := client.Request{
		Workloads: []string{"Hashmap", "Btree"}, Schemes: []string{"baseline", "dolos-partial"},
		Transactions: 30, Seed: 7,
	}
	cl := client.New(nodes[0].ts.URL).V2()
	job, err := cl.SubmitGrid(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ctx, cl, job.ID)
	got, err := cl.Result(ctx, job.ID)
	if err != nil {
		t.Fatal(err)
	}

	single := New(Config{Workers: 2, QueueDepth: 8})
	tsS := httptest.NewServer(single.Handler())
	defer tsS.Close()
	defer single.Shutdown(ctx)
	clS := client.New(tsS.URL).V2()
	jobS, err := clS.SubmitGrid(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, ctx, clS, jobS.ID)
	want, err := clS.Result(ctx, jobS.ID)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(normalizeGridHostFields(t, got), normalizeGridHostFields(t, want)) {
		t.Error("grid under a dead peer differs from single-node run on deterministic fields")
	}
	// Cluster-wide exactly-once still holds among the survivors.
	sims := counterVal(nodes[0].svc, "service_sims_executed_total") +
		counterVal(nodes[2].svc, "service_sims_executed_total")
	if sims != 4 {
		t.Errorf("survivors executed %d simulations for a 4-cell grid, want 4", sims)
	}
	// The /v2/cluster view from n1 reflects the dead node iff a forward
	// actually targeted it; either way the endpoint answers.
	info, err := cl.ClusterInfo(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if info.Self != "n1" || len(info.Nodes) != 3 {
		t.Fatalf("cluster info %+v", info)
	}
}

// TestParseQuotas covers the -tenant-quotas flag syntax.
func TestParseQuotas(t *testing.T) {
	q, err := ParseQuotas("acme:5,*:100:200")
	if err != nil {
		t.Fatal(err)
	}
	if q["acme"] != (Quota{Rate: 5, Burst: 5}) || q["*"] != (Quota{Rate: 100, Burst: 200}) {
		t.Errorf("parsed %+v", q)
	}
	if q, err := ParseQuotas(""); err != nil || q != nil {
		t.Errorf("empty spec: %v %v", q, err)
	}
	for _, bad := range []string{"acme", "acme:0", "acme:-1", ":5", "acme:5:x", "a:b"} {
		if _, err := ParseQuotas(bad); err == nil {
			t.Errorf("spec %q accepted", bad)
		}
	}
}
