package service

import (
	"net/http"
	"strconv"
	"time"

	"dolos/internal/store"
)

// JobV2 is the body of POST /v2/jobs and GET /v2/jobs/{id}: the v1
// fields plus tenant attribution and streaming progress.
type JobV2 struct {
	ID     string    `json:"id"`
	Status JobStatus `json:"status"`
	Tenant string    `json:"tenant,omitempty"`
	Cached bool      `json:"cached"`
	// Cells is the grid size; CellsDone counts the per-cell results
	// already durable and streamed.
	Cells     int `json:"cells"`
	CellsDone int `json:"cells_done"`
	// QueuePosition is the 1-based position among queued jobs (present
	// only while queued).
	QueuePosition int `json:"queue_position,omitempty"`
	// Error carries the failure cause when Status is "failed".
	Error string `json:"error,omitempty"`
}

// AuditResponse is the body of GET /v2/audit.
type AuditResponse struct {
	Entries []store.AuditEntry `json:"entries"`
}

func (s *Server) handleSubmitV2(w http.ResponseWriter, r *http.Request) {
	job := s.submitCommon(w, r)
	if job == nil {
		return
	}
	st := snapshotV2(s, job)
	status := http.StatusAccepted
	if st.Status == StatusDone {
		status = http.StatusOK
	}
	writeJSON(w, status, st)
}

func (s *Server) handleStatusV2(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	writeJSON(w, http.StatusOK, snapshotV2(s, job))
}

func (s *Server) handleResultV2(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	st := snapshotV2(s, job)
	switch st.Status {
	case StatusDone:
		s.mu.Lock()
		result := job.result
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusOK)
		w.Write(result)
	case StatusFailed:
		writeEnvelope(w, http.StatusInternalServerError, CodeJobFailed, st.Error, 0)
	default:
		writeJSON(w, http.StatusAccepted, st)
	}
}

// handleStream serves GET /v2/jobs/{id}/stream: per-cell RunRecords as
// server-sent events, in cell order, each numbered so a client that
// reconnects with Last-Event-ID (or ?last_event_id=) resumes exactly
// after the last cell it saw — replayed from the durable store-backed
// cell slice, not recomputed. The stream ends with a terminal done or
// failed event.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	job, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job id")
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported by connection")
		return
	}
	after := 0
	if h := r.Header.Get("Last-Event-ID"); h != "" {
		after, _ = strconv.Atoi(h)
	} else if q := r.URL.Query().Get("last_event_id"); q != "" {
		after, _ = strconv.Atoi(q)
	}

	replay, ch, cancel := s.subscribe(job, after)
	defer cancel()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	for _, ev := range replay {
		writeSSE(w, ev)
	}
	fl.Flush()
	if ch == nil {
		return // job already settled: replay carried the terminal event
	}
	for {
		select {
		case ev, open := <-ch:
			if !open {
				return
			}
			writeSSE(w, ev)
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// handleCluster serves GET /v2/cluster: the ring view. Works on a
// single node too (one self-owned arc), so clients need no mode probe.
func (s *Server) handleCluster(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.cluster.Info())
}

// handleAudit serves GET /v2/audit: the durable submission trail
// (?n= bounds it to the newest n entries).
func (s *Server) handleAudit(w http.ResponseWriter, r *http.Request) {
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		n, _ = strconv.Atoi(q)
	}
	resp := AuditResponse{Entries: []store.AuditEntry{}}
	if s.store != nil {
		resp.Entries = s.store.Audit(n)
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleCells serves POST /v2/cells, the internal cluster endpoint: a
// coordinator forwards one grid cell here and gets its compact
// RunRecord back. The cell always executes locally — the forwarded
// marker means the routing decision was already made, so a stale ring
// on this node can never bounce it onward.
func (s *Server) handleCells(w http.ResponseWriter, r *http.Request) {
	if s.isDraining() {
		writeEnvelope(w, http.StatusServiceUnavailable, CodeUnavailable, "draining", 5*time.Second)
		return
	}
	req, ok := s.decodeSubmit(w, r)
	if !ok {
		return
	}
	n, err := normalize(req, s.cfg.Limits)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if cells := len(n.Workloads) * len(n.Schemes); cells != 1 {
		writeError(w, http.StatusBadRequest, "a cell request must be exactly one workload × scheme")
		return
	}
	ctx := r.Context()
	s.cluster.LocalCell()
	b, err := s.executeCell(ctx, n)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(b)
}

// snapshotV2 reads a job's /v2 view under the lock.
func snapshotV2(s *Server, job *Job) JobV2 {
	pos := s.queuePosition(job)
	s.mu.Lock()
	defer s.mu.Unlock()
	return JobV2{
		ID:            job.id,
		Status:        job.status,
		Tenant:        job.tenant,
		Cached:        job.cached,
		Cells:         job.total,
		CellsDone:     job.emitted,
		QueuePosition: pos,
		Error:         job.errMsg,
	}
}
