package service

import (
	"fmt"
	"io"
	"strconv"
)

// Stream event kinds on the /v2/jobs/{id}/stream SSE wire.
const (
	eventCell   = "cell"   // one finished cell's RunRecord
	eventDone   = "done"   // terminal: the job settled successfully
	eventFailed = "failed" // terminal: the job settled with an error
)

// streamEvent is one server-sent event. Cell events carry the cell's
// compact RunRecord bytes in data and are numbered (SSE id = index+1,
// so Last-Event-ID: k resumes after the k-th cell); terminal events
// carry no id — replaying them on reconnect is harmless.
type streamEvent struct {
	kind   string
	index  int
	total  int
	data   []byte
	cached bool
}

// writeSSE renders one event in text/event-stream framing. Cell
// records are compact JSON (no newlines), so a single data: line is
// always enough.
func writeSSE(w io.Writer, ev streamEvent) {
	switch ev.kind {
	case eventCell:
		fmt.Fprintf(w, "id: %d\nevent: cell\ndata: {\"index\":%d,\"total\":%d,\"record\":%s}\n\n",
			ev.index+1, ev.index, ev.total, ev.data)
	case eventDone:
		fmt.Fprintf(w, "event: done\ndata: {\"status\":\"done\",\"cached\":%t,\"cells\":%d}\n\n",
			ev.cached, ev.total)
	case eventFailed:
		fmt.Fprintf(w, "event: failed\ndata: {\"status\":\"failed\",\"error\":%s}\n\n",
			strconv.Quote(string(ev.data)))
	}
}

// subscribe attaches a stream consumer to a job at a resume point:
// cells after (0-based count of cells already seen — the Last-Event-ID
// value) are replayed from the job's durable cell slice, and a live
// channel carries the rest. A settled job gets its terminal event in
// the replay and a nil channel; the caller just writes the replay and
// returns. cancel detaches the subscriber (idempotent; safe after the
// job settles and closes the channel itself).
func (s *Server) subscribe(job *Job, after int) (replay []streamEvent, ch chan streamEvent, cancel func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if after < 0 {
		after = 0
	}
	if after > job.emitted {
		after = job.emitted
	}
	for i := after; i < job.emitted; i++ {
		replay = append(replay, streamEvent{kind: eventCell, index: i, total: job.total, data: job.cells[i]})
	}
	switch job.status {
	case StatusDone:
		replay = append(replay, streamEvent{kind: eventDone, total: job.total, cached: job.cached})
		return replay, nil, func() {}
	case StatusFailed:
		replay = append(replay, streamEvent{kind: eventFailed, total: job.total, data: []byte(job.errMsg)})
		return replay, nil, func() {}
	}
	ch = make(chan streamEvent, job.total+2)
	job.subs[ch] = true
	cancel = func() {
		s.mu.Lock()
		if job.subs != nil {
			delete(job.subs, ch)
		}
		s.mu.Unlock()
	}
	return replay, ch, cancel
}
