// Package service turns the Dolos experiment layer into a long-lived
// simulation-as-a-service daemon: a bounded job queue and worker pool
// over internal/core's executor, an LRU result cache keyed by the
// canonical hash of a normalized request with single-flight
// deduplication (mirroring the Runner's trace cache one level up), and
// a small stdlib-only HTTP API — submit a grid, poll its status, fetch
// the RunRecord JSON, scrape Prometheus metrics. See DESIGN.md §10.
package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"dolos/internal/cliutil"
	"dolos/internal/core"
	"dolos/internal/fault"
	"dolos/internal/telemetry"
)

// Config sizes the server. The zero value is usable: every field has a
// production-sane default applied by New.
type Config struct {
	// Workers is the simulation worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker;
	// submissions beyond it are rejected with 429 (default 64).
	QueueDepth int
	// CacheEntries is the LRU result-cache capacity (default 256).
	CacheEntries int
	// MaxBodyBytes bounds a request body (default 1 MiB).
	MaxBodyBytes int64
	// DefaultTimeout is the per-job deadline (queue wait + execution)
	// when the request does not set timeout_ms (default 2 minutes).
	DefaultTimeout time.Duration
	// Limits bounds what one request may ask for.
	Limits Limits
	// Faults, when non-nil, arms deterministic fault injection at the
	// server's named fault points (see internal/fault and DESIGN.md
	// §11). Nil — the default — injects nothing and costs one nil
	// check per point.
	Faults *fault.Injector
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	c.Limits = c.Limits.withDefaults()
	return c
}

// JobStatus is the lifecycle of a submitted job.
type JobStatus string

const (
	StatusQueued  JobStatus = "queued"
	StatusRunning JobStatus = "running"
	StatusDone    JobStatus = "done"
	StatusFailed  JobStatus = "failed"
)

// Job is one submitted request. All mutable fields are guarded by the
// server mutex; result bytes are immutable once set.
type Job struct {
	id  string
	seq int64
	key string
	req normalized

	ctx    context.Context
	cancel context.CancelFunc

	status  JobStatus
	cached  bool   // result came from the cache or a deduplicated flight
	errMsg  string // set when status == StatusFailed
	result  []byte // RunRecord JSON (object for one cell, array for a grid)
	created time.Time
}

// flight is one single-flight slot: the first worker to take a key
// computes; every concurrent worker with the same key blocks on done
// and shares the identical bytes.
type flight struct {
	done  chan struct{}
	bytes []byte
	err   error
}

// runnerKey identifies the core.Runner able to serve a request: trace
// generation is parameterized by (transactions, seed) at the Runner
// level, so each distinct pair gets its own runner (and trace cache).
type runnerKey struct {
	txns int
	seed int64
}

// Server owns the queue, worker pool, caches and metrics. Create with
// New, expose with Handler, stop with Shutdown.
type Server struct {
	cfg    Config
	reg    *telemetry.Registry
	faults *fault.Injector

	mu       sync.Mutex
	draining bool
	seq      int64
	jobs     map[string]*Job
	flights  map[string]*flight
	runners  map[runnerKey]*core.Runner

	queue chan *Job
	wg    sync.WaitGroup

	cache *lruCache
	final []byte // Prometheus snapshot rendered by Shutdown after drain

	// hookExecute, when set (tests only), runs at the top of every job
	// execution — used to hold workers in a known state.
	hookExecute func(*Job)

	mSubmitted, mCompleted, mFailed, mRejected *telemetry.Counter
	mCacheHits, mCacheMisses, mDedupHits       *telemetry.Counter
	mSims, mPanics, mHTTP, mCorrupt            *telemetry.Counter
	gQueueDepth                                *telemetry.Gauge
	hJobSeconds                                *telemetry.CycleHist
}

// New builds a server and starts its worker pool. The server is live
// immediately; callers typically mount Handler on an http.Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := telemetry.NewRegistry()
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		faults:  cfg.Faults,
		jobs:    make(map[string]*Job),
		flights: make(map[string]*flight),
		runners: make(map[runnerKey]*core.Runner),
		queue:   make(chan *Job, cfg.QueueDepth),
		cache:   newLRU(cfg.CacheEntries),

		mSubmitted:   reg.Counter("service_jobs_submitted_total"),
		mCompleted:   reg.Counter("service_jobs_completed_total"),
		mFailed:      reg.Counter("service_jobs_failed_total"),
		mRejected:    reg.Counter("service_jobs_rejected_total"),
		mCacheHits:   reg.Counter("service_cache_hits_total"),
		mCacheMisses: reg.Counter("service_cache_misses_total"),
		mDedupHits:   reg.Counter("service_dedup_hits_total"),
		mSims:        reg.Counter("service_sims_executed_total"),
		mPanics:      reg.Counter("service_panics_total"),
		mHTTP:        reg.Counter("service_http_requests_total"),
		mCorrupt:     reg.Counter("service_cache_corruptions_detected_total"),
		gQueueDepth:  reg.Gauge("service_queue_depth"),
		hJobSeconds:  reg.CycleHist("service_job_seconds"),
	}
	s.cache.onCorrupt = func(string) { s.mCorrupt.Inc() }
	s.faults.Bind(reg)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Registry exposes the server's metrics registry (scraped by /metrics;
// tests assert on it directly).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Shutdown gracefully stops the server: intake is closed (submissions
// get 503), queued and in-flight jobs drain to completion, and a final
// Prometheus metrics snapshot is rendered (FinalMetrics). It returns
// nil once every job has finished, or ctx.Err() if ctx expires first —
// workers are left to finish in the background in that case.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue) // no submit can race: sends happen under mu with draining false
	}
	s.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}

	var buf bytes.Buffer
	s.gQueueDepth.Set(0)
	if err := telemetry.WritePrometheus(&buf, telemetry.Snapshot(nil, s.reg)); err != nil {
		return err
	}
	s.mu.Lock()
	s.final = buf.Bytes()
	s.mu.Unlock()
	return nil
}

// FinalMetrics returns the metrics snapshot flushed by Shutdown (nil
// before a completed Shutdown).
func (s *Server) FinalMetrics() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.final
}

// submit registers a job for a normalized request. It returns the job
// in state done (submission-time cache hit), queued, or an error when
// the queue is full or the server is draining.
var (
	errDraining  = errors.New("server is shutting down")
	errQueueFull = errors.New("job queue is full")
)

func (s *Server) submit(n normalized, timeout time.Duration) (*Job, error) {
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	job := &Job{
		key:     n.Key(),
		req:     n,
		ctx:     ctx,
		cancel:  cancel,
		created: time.Now(),
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		s.mRejected.Inc()
		return nil, errDraining
	}
	if s.faults.Fire(fault.QueueFull) {
		s.mu.Unlock()
		cancel()
		s.mRejected.Inc()
		return nil, fmt.Errorf("%w (injected)", errQueueFull)
	}
	s.seq++
	job.seq = s.seq
	job.id = fmt.Sprintf("j%08d", job.seq)

	if b, ok := s.cache.Get(job.key); ok {
		job.status = StatusDone
		job.cached = true
		job.result = b
		s.jobs[job.id] = job
		s.mu.Unlock()
		cancel()
		s.mSubmitted.Inc()
		s.mCacheHits.Inc()
		s.mCompleted.Inc()
		s.hJobSeconds.Observe(time.Since(job.created).Seconds())
		return job, nil
	}

	job.status = StatusQueued
	select {
	case s.queue <- job:
	default:
		s.mu.Unlock()
		cancel()
		s.mRejected.Inc()
		return nil, errQueueFull
	}
	s.jobs[job.id] = job
	s.mu.Unlock()
	s.mSubmitted.Inc()
	s.gQueueDepth.Set(float64(len(s.queue)))
	return job, nil
}

// job looks up a job by id.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// queuePosition returns the 1-based position of a queued job among all
// queued jobs (0 when the job is not queued).
func (s *Server) queuePosition(job *Job) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if job.status != StatusQueued {
		return 0
	}
	pos := 1
	for _, other := range s.jobs {
		if other.status == StatusQueued && other.seq < job.seq {
			pos++
		}
	}
	return pos
}

func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.gQueueDepth.Set(float64(len(s.queue)))
		s.execute(job)
	}
}

// execute runs one dequeued job to completion: cache hit, single-flight
// follow, or leading the computation. A panic anywhere in the pipeline
// fails the job instead of killing the worker.
func (s *Server) execute(job *Job) {
	defer func() {
		if p := recover(); p != nil {
			s.mPanics.Inc()
			s.failJob(job, fmt.Errorf("panic: %v", p))
		}
	}()
	s.setStatus(job, StatusRunning)
	if s.hookExecute != nil {
		s.hookExecute(job)
	}
	if s.faults.Fire(fault.JobPanic) {
		panic("fault: injected job-handler panic")
	}
	if s.isDraining() {
		// Stretch the drain window: chaos runs prove graceful shutdown
		// still completes when in-flight work dawdles.
		if d, ok := s.faults.FireDelay(fault.DrainStall); ok {
			time.Sleep(d)
		}
	}

	for {
		if err := job.ctx.Err(); err != nil {
			s.failJob(job, err)
			return
		}
		b, f, leader := s.claim(job.key)
		if b != nil {
			s.mCacheHits.Inc()
			s.finishJob(job, b, true)
			return
		}
		if leader {
			// A miss is counted when a computation actually starts, so
			// hits + dedup hits + misses partitions completed jobs and a
			// burst of identical submissions scores one miss, not N.
			s.mCacheMisses.Inc()
			b, err := s.computeGuarded(job)
			s.publish(job.key, f, b, err)
			if err != nil {
				s.failJob(job, err)
				return
			}
			s.finishJob(job, b, false)
			return
		}
		select {
		case <-f.done:
			if f.err == nil {
				s.mDedupHits.Inc()
				s.finishJob(job, f.bytes, true)
				return
			}
			// The leader failed. If its failure was its own deadline or
			// cancellation, it says nothing about this job — loop and
			// retry under our own context (we may become the leader).
			// Any other error is deterministic for the shared key, so
			// share it.
			if !errors.Is(f.err, context.Canceled) && !errors.Is(f.err, context.DeadlineExceeded) {
				s.failJob(job, f.err)
				return
			}
		case <-job.ctx.Done():
			s.failJob(job, job.ctx.Err())
			return
		}
	}
}

// claim resolves a key under one lock acquisition: a cached result, an
// existing flight to follow, or a brand-new flight the caller must
// lead. Holding the server mutex across the cache probe and the flight
// map keeps the pair atomic with publish, which installs the cache
// entry and retires the flight under the same mutex — so there is no
// window in which a worker can miss the cache and also miss the flight,
// which is what makes "exactly one simulation per key" a guarantee
// rather than a likelihood.
func (s *Server) claim(key string) (b []byte, f *flight, leader bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.cache.Get(key); ok {
		return b, nil, false
	}
	if f, ok := s.flights[key]; ok {
		return nil, f, false
	}
	f = &flight{done: make(chan struct{})}
	s.flights[key] = f
	return nil, f, true
}

// publish completes a flight: the result enters the cache and the
// flight leaves the map atomically (see claim), then followers are
// released. Failed computations are not cached — errors are retryable
// by a later submission.
func (s *Server) publish(key string, f *flight, b []byte, err error) {
	s.mu.Lock()
	if err == nil {
		s.cache.Put(key, b)
		if s.faults.Fire(fault.CacheCorrupt) {
			// Flip a byte in the cached copy only: the flight's bytes —
			// what this job and its followers receive — stay intact, and
			// the cache's checksum turns the next probe into a detected
			// miss instead of a wrong answer.
			s.cache.corrupt(key)
		}
	}
	f.bytes, f.err = b, err
	delete(s.flights, key)
	s.mu.Unlock()
	close(f.done)
}

// isDraining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// computeGuarded is compute with panic containment local to the
// leader's computation: the panic becomes the flight's error, so
// followers are released with a cause instead of hanging until their
// deadlines.
func (s *Server) computeGuarded(job *Job) (b []byte, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.mPanics.Inc()
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	return s.compute(job)
}

// compute runs the job's grid on the core executor under the job's
// context and encodes the result exactly as dolos-sim -json would: one
// RunRecord object for a single cell, an array for a grid.
func (s *Server) compute(job *Job) ([]byte, error) {
	runner := s.runnerFor(job.req.Transactions, job.req.Seed)
	cells := job.req.cells()
	results, err := runner.RunGrid(job.ctx, cells)
	if err != nil {
		return nil, err
	}
	s.mSims.Add(uint64(len(cells)))

	records := make([]telemetry.RunRecord, len(results))
	for i, rr := range results {
		records[i] = cliutil.BuildRunRecord(rr.Result, cells[i].Spec.EffectiveTree(),
			cells[i].Spec.TxSize, job.req.Seed, rr.Events, rr.Wall, rr.Stats, nil)
	}
	var buf bytes.Buffer
	if len(records) == 1 {
		err = telemetry.WriteJSON(&buf, records[0])
	} else {
		err = telemetry.WriteJSON(&buf, records)
	}
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// runnerFor returns the shared runner for a (transactions, seed) pair.
// Sharing the runner is what extends trace single-flight across jobs:
// every job for the same pair replays the same generated traces. The
// runner executes its grid serially (Parallelism 1) — the worker pool,
// not the sweep executor, is the service's parallelism — so one giant
// grid job cannot monopolize every core.
func (s *Server) runnerFor(txns int, seed int64) *core.Runner {
	k := runnerKey{txns: txns, seed: seed}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.runners[k]; ok {
		return r
	}
	// Bound the map: clients sweeping seeds would otherwise accumulate
	// a trace cache per seed forever. Dropping all runners only costs
	// trace regeneration, never correctness.
	if len(s.runners) >= 64 {
		s.runners = make(map[runnerKey]*core.Runner)
	}
	opts := core.Options{Transactions: txns, Seed: seed, Parallelism: 1}
	if s.faults != nil {
		// Artificial cell latency threads through the experiment layer's
		// PreRun seam: the stall lands inside the simulation pipeline,
		// upstream of the job deadline, without touching determinism.
		opts.PreRun = func(string, core.Spec) {
			if d, ok := s.faults.FireDelay(fault.CellLatency); ok {
				time.Sleep(d)
			}
		}
	}
	r := core.NewRunner(opts)
	s.runners[k] = r
	return r
}

func (s *Server) setStatus(job *Job, st JobStatus) {
	s.mu.Lock()
	job.status = st
	s.mu.Unlock()
}

func (s *Server) finishJob(job *Job, result []byte, cached bool) {
	s.mu.Lock()
	job.status = StatusDone
	job.result = result
	job.cached = cached
	s.mu.Unlock()
	job.cancel()
	s.mCompleted.Inc()
	s.hJobSeconds.Observe(time.Since(job.created).Seconds())
}

func (s *Server) failJob(job *Job, err error) {
	s.mu.Lock()
	job.status = StatusFailed
	job.errMsg = err.Error()
	s.mu.Unlock()
	job.cancel()
	s.mFailed.Inc()
}
