// Package service turns the Dolos experiment layer into a long-lived
// simulation-as-a-service daemon: a bounded job queue and worker pool
// over internal/core's executor, an LRU result cache keyed by the
// canonical hash of a normalized request with single-flight
// deduplication (mirroring the Runner's trace cache one level up), and
// a small stdlib-only HTTP API — submit a grid, poll its status, fetch
// the RunRecord JSON, scrape Prometheus metrics. See DESIGN.md §10.
package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"dolos/internal/cliutil"
	"dolos/internal/cluster"
	"dolos/internal/core"
	"dolos/internal/fault"
	"dolos/internal/store"
	"dolos/internal/telemetry"
)

// Config sizes the server. The zero value is usable: every field has a
// production-sane default applied by New.
type Config struct {
	// Workers is the simulation worker-pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of jobs waiting for a worker;
	// submissions beyond it are rejected with 429 (default 64).
	QueueDepth int
	// CacheEntries is the LRU result-cache capacity (default 256).
	CacheEntries int
	// MaxBodyBytes bounds a request body (default 1 MiB).
	MaxBodyBytes int64
	// DefaultTimeout is the per-job deadline (queue wait + execution)
	// when the request does not set timeout_ms (default 2 minutes).
	DefaultTimeout time.Duration
	// Limits bounds what one request may ask for.
	Limits Limits
	// Faults, when non-nil, arms deterministic fault injection at the
	// server's named fault points (see internal/fault and DESIGN.md
	// §11). Nil — the default — injects nothing and costs one nil
	// check per point.
	Faults *fault.Injector
	// Store, when non-nil, makes the job pipeline durable: submissions,
	// per-cell completions and terminal outcomes are WAL-appended before
	// they become externally visible, and New replays unfinished jobs
	// from it. Nil keeps the PR-5 in-memory behavior.
	Store *store.Store
	// Cluster, when non-nil, shards grid cells across worker nodes by
	// consistent hashing of their normalized request keys. Nil (or a nil
	// *cluster.Cluster) runs every cell locally.
	Cluster *cluster.Cluster
	// Quotas maps tenant IDs (the X-Dolos-Tenant header; "*" is the
	// catch-all) to token-bucket rates. Empty means no quota enforcement.
	Quotas map[string]Quota
	// Registry receives the server's metrics. Nil creates a private one;
	// cmd/dolos-serve passes a shared registry so cluster and service
	// metrics land on one /metrics page.
	Registry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheEntries <= 0 {
		c.CacheEntries = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 1 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 2 * time.Minute
	}
	c.Limits = c.Limits.withDefaults()
	return c
}

// JobStatus is the lifecycle of a submitted job.
type JobStatus string

const (
	StatusQueued  JobStatus = "queued"
	StatusRunning JobStatus = "running"
	StatusDone    JobStatus = "done"
	StatusFailed  JobStatus = "failed"
)

// Job is one submitted request. All mutable fields are guarded by the
// server mutex; result bytes are immutable once set.
type Job struct {
	id     string
	seq    int64
	key    string
	req    normalized
	tenant string

	ctx    context.Context
	cancel context.CancelFunc

	status  JobStatus
	cached  bool   // result came from the cache or a deduplicated flight
	errMsg  string // set when status == StatusFailed
	result  []byte // RunRecord JSON (object for one cell, array for a grid)
	created time.Time

	// Streaming state: the grid's per-cell RunRecord bytes (compact
	// JSON, indexed in cells() enumeration order), how many of them have
	// been broadcast in order, and the live /v2 stream subscribers.
	total   int
	cells   [][]byte
	emitted int
	subs    map[chan streamEvent]bool
}

// flight is one single-flight slot: the first worker to take a key
// computes; every concurrent worker with the same key blocks on done
// and shares the identical bytes.
type flight struct {
	done  chan struct{}
	bytes []byte
	err   error
}

// runnerKey identifies the core.Runner able to serve a request: trace
// generation is parameterized by (transactions, seed) at the Runner
// level, so each distinct pair gets its own runner (and trace cache).
type runnerKey struct {
	txns int
	seed int64
}

// Server owns the queue, worker pool, caches and metrics. Create with
// New, expose with Handler, stop with Shutdown.
type Server struct {
	cfg     Config
	reg     *telemetry.Registry
	faults  *fault.Injector
	store   *store.Store
	cluster *cluster.Cluster
	quotas  *tokenBuckets

	mu       sync.Mutex
	draining bool
	seq      int64
	jobs     map[string]*Job
	flights  map[string]*flight
	runners  map[runnerKey]*core.Runner

	queue      chan *Job
	wg         sync.WaitGroup
	recoveryWG sync.WaitGroup // re-enqueue of store-recovered jobs
	drainOnce  sync.Once

	cache *lruCache
	final []byte // Prometheus snapshot rendered by Shutdown after drain

	// hookExecute, when set (tests only), runs at the top of every job
	// execution — used to hold workers in a known state.
	hookExecute func(*Job)

	mSubmitted, mCompleted, mFailed, mRejected  *telemetry.Counter
	mCacheHits, mCacheMisses, mDedupHits        *telemetry.Counter
	mSims, mPanics, mHTTP, mCorrupt             *telemetry.Counter
	mQuotaRejected, mStreamEvents, mRecovered   *telemetry.Counter
	mCellCacheHits, mCellDedup, mForwardFallbks *telemetry.Counter
	gQueueDepth                                 *telemetry.Gauge
	hJobSeconds                                 *telemetry.CycleHist
}

// New builds a server and starts its worker pool. When a Store is
// configured, New first recovers it: settled jobs warm the result
// cache and answer /v2 lookups immediately; unsettled jobs — the ones
// a crash interrupted — are re-enqueued in submission order, and the
// cells whose completion records already reached the log are never
// simulated again. The server is live immediately; callers typically
// mount Handler on an http.Server.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	reg := cfg.Registry
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	s := &Server{
		cfg:     cfg,
		reg:     reg,
		faults:  cfg.Faults,
		store:   cfg.Store,
		cluster: cfg.Cluster,
		quotas:  newBuckets(cfg.Quotas),
		jobs:    make(map[string]*Job),
		flights: make(map[string]*flight),
		runners: make(map[runnerKey]*core.Runner),
		queue:   make(chan *Job, cfg.QueueDepth),
		cache:   newLRU(cfg.CacheEntries),

		mSubmitted:      reg.Counter("service_jobs_submitted_total"),
		mCompleted:      reg.Counter("service_jobs_completed_total"),
		mFailed:         reg.Counter("service_jobs_failed_total"),
		mRejected:       reg.Counter("service_jobs_rejected_total"),
		mCacheHits:      reg.Counter("service_cache_hits_total"),
		mCacheMisses:    reg.Counter("service_cache_misses_total"),
		mDedupHits:      reg.Counter("service_dedup_hits_total"),
		mSims:           reg.Counter("service_sims_executed_total"),
		mPanics:         reg.Counter("service_panics_total"),
		mHTTP:           reg.Counter("service_http_requests_total"),
		mCorrupt:        reg.Counter("service_cache_corruptions_detected_total"),
		mQuotaRejected:  reg.Counter("service_quota_rejected_total"),
		mStreamEvents:   reg.Counter("service_stream_events_total"),
		mRecovered:      reg.Counter("service_jobs_recovered_total"),
		mCellCacheHits:  reg.Counter("service_cell_cache_hits_total"),
		mCellDedup:      reg.Counter("service_cell_dedup_hits_total"),
		mForwardFallbks: reg.Counter("service_cell_forward_fallbacks_total"),
		gQueueDepth:     reg.Gauge("service_queue_depth"),
		hJobSeconds:     reg.CycleHist("service_job_seconds"),
	}
	s.cache.onCorrupt = func(string) { s.mCorrupt.Inc() }
	s.faults.Bind(reg)
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	if s.store != nil {
		s.recoverFromStore()
	}
	return s
}

// recoverFromStore rebuilds the jobs map from the durable store.
// Settled jobs come back complete (result reassembled from their cell
// records, cache warmed); unsettled jobs are re-enqueued under fresh
// default deadlines by a background goroutine — the queue may be
// smaller than the backlog, so the sends must not block New. The
// goroutine is accounted in recoveryWG; Shutdown waits for it before
// closing the queue, so a graceful drain never loses a recovered job
// and never races a send against the close.
func (s *Server) recoverFromStore() {
	states := s.store.Jobs()
	var pending []*Job
	s.mu.Lock()
	if ms := s.store.MaxSeq(); ms > s.seq {
		s.seq = ms // continue j%08d ids where the last incarnation stopped
	}
	for _, st := range states {
		var n normalized
		if err := json.Unmarshal(st.Job.Req, &n); err != nil {
			continue // undecodable request from a future/past version: skip
		}
		job := &Job{
			id:      st.Job.ID,
			seq:     st.Job.Seq,
			key:     st.Job.Key,
			req:     n,
			tenant:  st.Job.Tenant,
			created: st.Job.At,
			total:   len(n.Workloads) * len(n.Schemes),
			subs:    make(map[chan streamEvent]bool),
		}
		job.cells = make([][]byte, job.total)
		for i, c := range st.Cells {
			if i < job.total && c != nil {
				job.cells[i] = c
			}
		}
		switch {
		case st.Done:
			job.status = StatusDone
			job.cached = st.Cached
			job.emitted = job.total
			if b, err := assembleResult(job.cells); err == nil {
				job.result = b
				s.cache.Put(job.key, b)
			} else {
				// A settled job with incomplete cell records cannot
				// honor /result; surface it as failed rather than wrong.
				job.status = StatusFailed
				job.errMsg = "recovered result incomplete: " + err.Error()
			}
		case st.Failed:
			job.status = StatusFailed
			job.errMsg = st.Err
			job.emitted = st.CellsDone()
		default:
			job.status = StatusQueued
			job.emitted = st.CellsDone()
			job.ctx, job.cancel = context.WithTimeout(context.Background(), s.cfg.DefaultTimeout)
			pending = append(pending, job)
			s.mRecovered.Inc()
		}
		s.jobs[job.id] = job
	}
	s.mu.Unlock()
	if len(pending) == 0 {
		return
	}
	s.recoveryWG.Add(1)
	go func() {
		defer s.recoveryWG.Done()
		for _, j := range pending {
			if s.isDraining() {
				return
			}
			s.queue <- j
		}
	}()
}

// Registry exposes the server's metrics registry (scraped by /metrics;
// tests assert on it directly).
func (s *Server) Registry() *telemetry.Registry { return s.reg }

// Shutdown gracefully stops the server: intake is closed (submissions
// get 503), queued and in-flight jobs drain to completion, and a final
// Prometheus metrics snapshot is rendered (FinalMetrics). It returns
// nil once every job has finished, or ctx.Err() if ctx expires first —
// workers are left to finish in the background in that case.
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainOnce.Do(func() {
		s.mu.Lock()
		s.draining = true
		s.mu.Unlock()
		// The recovery goroutine re-enqueues store-recovered jobs; wait
		// for it to finish (or notice draining) before closing the queue
		// so its sends cannot race the close. Submit sends cannot race:
		// they happen under mu with draining false.
		s.recoveryWG.Wait()
		close(s.queue)
	})

	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		return ctx.Err()
	}

	var buf bytes.Buffer
	s.gQueueDepth.Set(0)
	if err := telemetry.WritePrometheus(&buf, telemetry.Snapshot(nil, s.reg)); err != nil {
		return err
	}
	s.mu.Lock()
	s.final = buf.Bytes()
	s.mu.Unlock()
	return nil
}

// FinalMetrics returns the metrics snapshot flushed by Shutdown (nil
// before a completed Shutdown).
func (s *Server) FinalMetrics() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.final
}

// submit registers a job for a normalized request. It returns the job
// in state done (submission-time cache hit), queued, or an error when
// the queue is full or the server is draining.
var (
	errDraining  = errors.New("server is shutting down")
	errQueueFull = errors.New("job queue is full")
)

func (s *Server) submit(n normalized, timeout time.Duration, tenant string) (*Job, error) {
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	job := &Job{
		key:     n.Key(),
		req:     n,
		tenant:  tenant,
		ctx:     ctx,
		cancel:  cancel,
		created: time.Now(),
		total:   len(n.Workloads) * len(n.Schemes),
		subs:    make(map[chan streamEvent]bool),
	}
	job.cells = make([][]byte, job.total)

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		cancel()
		s.mRejected.Inc()
		return nil, errDraining
	}
	if s.faults.Fire(fault.QueueFull) {
		s.mu.Unlock()
		cancel()
		s.mRejected.Inc()
		return nil, fmt.Errorf("%w (injected)", errQueueFull)
	}
	s.seq++
	job.seq = s.seq
	job.id = fmt.Sprintf("j%08d", job.seq)

	// Durability before acknowledgment: the submit record (also the
	// audit-trail entry) must be on disk before any client sees the job
	// id. The append happens before the queue send, so a cell record
	// can never reach the WAL ahead of its job's submit record.
	if err := s.appendSubmit(job); err != nil {
		s.mu.Unlock()
		cancel()
		s.mRejected.Inc()
		return nil, err
	}

	if b, ok := s.cache.Get(job.key); ok {
		job.status = StatusRunning // finishJob settles it below
		s.jobs[job.id] = job
		s.mu.Unlock()
		s.mSubmitted.Inc()
		s.mCacheHits.Inc()
		s.finishJob(job, b, true)
		return job, nil
	}

	job.status = StatusQueued
	select {
	case s.queue <- job:
	default:
		s.mu.Unlock()
		cancel()
		// The submit record is already durable; settle the job on disk
		// too, or a restart would resurrect a request the client was
		// told to retry.
		if s.store != nil {
			s.store.AppendFail(job.id, errQueueFull.Error())
		}
		s.mRejected.Inc()
		return nil, errQueueFull
	}
	s.jobs[job.id] = job
	s.mu.Unlock()
	s.mSubmitted.Inc()
	s.gQueueDepth.Set(float64(len(s.queue)))
	return job, nil
}

// appendSubmit writes the durable submit record (no-op without a
// store). Called with s.mu held.
func (s *Server) appendSubmit(job *Job) error {
	if s.store == nil {
		return nil
	}
	req, err := json.Marshal(job.req)
	if err != nil {
		return err
	}
	return s.store.AppendSubmit(store.JobRecord{
		ID:     job.id,
		Seq:    job.seq,
		Key:    job.key,
		Tenant: job.tenant,
		Req:    req,
		At:     job.created,
	})
}

// job looks up a job by id.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// queuePosition returns the 1-based position of a queued job among all
// queued jobs (0 when the job is not queued).
func (s *Server) queuePosition(job *Job) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if job.status != StatusQueued {
		return 0
	}
	pos := 1
	for _, other := range s.jobs {
		if other.status == StatusQueued && other.seq < job.seq {
			pos++
		}
	}
	return pos
}

func (s *Server) worker() {
	defer s.wg.Done()
	for job := range s.queue {
		s.gQueueDepth.Set(float64(len(s.queue)))
		s.execute(job)
	}
}

// execute runs one dequeued job to completion: cache hit, single-flight
// follow, or leading the computation. A panic anywhere in the pipeline
// fails the job instead of killing the worker.
func (s *Server) execute(job *Job) {
	defer func() {
		if p := recover(); p != nil {
			s.mPanics.Inc()
			s.failJob(job, fmt.Errorf("panic: %v", p))
		}
	}()
	s.setStatus(job, StatusRunning)
	if s.hookExecute != nil {
		s.hookExecute(job)
	}
	if s.faults.Fire(fault.JobPanic) {
		panic("fault: injected job-handler panic")
	}
	if s.isDraining() {
		// Stretch the drain window: chaos runs prove graceful shutdown
		// still completes when in-flight work dawdles.
		if d, ok := s.faults.FireDelay(fault.DrainStall); ok {
			time.Sleep(d)
		}
	}

	for {
		if err := job.ctx.Err(); err != nil {
			s.failJob(job, err)
			return
		}
		b, f, leader := s.claim(job.key)
		if b != nil {
			s.mCacheHits.Inc()
			s.finishJob(job, b, true)
			return
		}
		if leader {
			// A miss is counted when a computation actually starts, so
			// hits + dedup hits + misses partitions completed jobs and a
			// burst of identical submissions scores one miss, not N.
			s.mCacheMisses.Inc()
			b, err := s.computeGuarded(job)
			s.publish(job.key, f, b, err)
			if err != nil {
				s.failJob(job, err)
				return
			}
			s.finishJob(job, b, false)
			return
		}
		select {
		case <-f.done:
			if f.err == nil {
				s.mDedupHits.Inc()
				s.finishJob(job, f.bytes, true)
				return
			}
			// The leader failed. If its failure was its own deadline or
			// cancellation, it says nothing about this job — loop and
			// retry under our own context (we may become the leader).
			// Any other error is deterministic for the shared key, so
			// share it.
			if !errors.Is(f.err, context.Canceled) && !errors.Is(f.err, context.DeadlineExceeded) {
				s.failJob(job, f.err)
				return
			}
		case <-job.ctx.Done():
			s.failJob(job, job.ctx.Err())
			return
		}
	}
}

// claim resolves a key under one lock acquisition: a cached result, an
// existing flight to follow, or a brand-new flight the caller must
// lead. Holding the server mutex across the cache probe and the flight
// map keeps the pair atomic with publish, which installs the cache
// entry and retires the flight under the same mutex — so there is no
// window in which a worker can miss the cache and also miss the flight,
// which is what makes "exactly one simulation per key" a guarantee
// rather than a likelihood.
func (s *Server) claim(key string) (b []byte, f *flight, leader bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, ok := s.cache.Get(key); ok {
		return b, nil, false
	}
	if f, ok := s.flights[key]; ok {
		return nil, f, false
	}
	f = &flight{done: make(chan struct{})}
	s.flights[key] = f
	return nil, f, true
}

// publish completes a flight: the result enters the cache and the
// flight leaves the map atomically (see claim), then followers are
// released. Failed computations are not cached — errors are retryable
// by a later submission.
func (s *Server) publish(key string, f *flight, b []byte, err error) {
	s.mu.Lock()
	if err == nil {
		s.cache.Put(key, b)
		if s.faults.Fire(fault.CacheCorrupt) {
			// Flip a byte in the cached copy only: the flight's bytes —
			// what this job and its followers receive — stay intact, and
			// the cache's checksum turns the next probe into a detected
			// miss instead of a wrong answer.
			s.cache.corrupt(key)
		}
	}
	f.bytes, f.err = b, err
	delete(s.flights, key)
	s.mu.Unlock()
	close(f.done)
}

// isDraining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// computeGuarded is compute with panic containment local to the
// leader's computation: the panic becomes the flight's error, so
// followers are released with a cause instead of hanging until their
// deadlines.
func (s *Server) computeGuarded(job *Job) (b []byte, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.mPanics.Inc()
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	return s.compute(job)
}

// compute runs the job's grid cell by cell and encodes the result
// exactly as dolos-sim -json would: one RunRecord object for a single
// cell, an array for a grid. Each finished cell is WAL-appended and
// pushed to /v2 stream subscribers before the next cell starts; cells
// the job already holds (recovered from the store after a crash) are
// never simulated again. Under a cluster, each cell is routed to its
// ring owner; without one, the missing cells run on the local executor
// through the RunGridNotify seam.
func (s *Server) compute(job *Job) ([]byte, error) {
	cells := job.req.cells()
	recs := make([][]byte, len(cells))
	s.mu.Lock()
	copy(recs, job.cells)
	s.mu.Unlock()

	var err error
	if s.cluster != nil {
		err = s.computeCellsCluster(job, recs)
	} else {
		err = s.computeCellsLocal(job, cells, recs)
	}
	if err != nil {
		return nil, err
	}
	return assembleResult(recs)
}

// computeCellsLocal runs every missing cell on the shared local runner.
func (s *Server) computeCellsLocal(job *Job, cells []core.Cell, recs [][]byte) error {
	var missing []int
	for i := range recs {
		if recs[i] == nil {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	sub := make([]core.Cell, len(missing))
	for k, i := range missing {
		sub[k] = cells[i]
	}
	runner := s.runnerFor(job.req.Transactions, job.req.Seed)
	var encErr error
	_, err := runner.RunGridNotify(job.ctx, sub, func(k int, rr core.RunResult) {
		i := missing[k]
		rec, err := encodeRecord(job.req, cells[i], rr)
		if err != nil {
			encErr = err
			return
		}
		s.mSims.Inc()
		recs[i] = rec
		s.recordCell(job, i, rec)
	})
	if err != nil {
		return err
	}
	return encErr
}

// computeCellsCluster routes every missing cell to its ring owner: a
// remote owner executes it via POST {CellPath} (the owner's local
// per-cell single-flight makes the dedup cluster-wide); a forward
// failure marks the owner down and falls back to local execution, so a
// killed worker node never blocks a grid — determinism makes the
// fallback bytes identical to what the owner would have produced.
func (s *Server) computeCellsCluster(job *Job, recs [][]byte) error {
	for i := range recs {
		if recs[i] != nil {
			continue
		}
		if err := job.ctx.Err(); err != nil {
			return err
		}
		cn := job.req.cellRequest(i)
		var rec []byte
		if owner := s.cluster.OwnerOf(cn.Key()); owner != s.cluster.Self() {
			body, err := json.Marshal(requestOf(cn))
			if err != nil {
				return err
			}
			if b, err := s.cluster.Forward(job.ctx, owner, body); err == nil {
				rec = b
			} else if job.ctx.Err() != nil {
				return job.ctx.Err()
			} else {
				s.mForwardFallbks.Inc()
			}
		}
		if rec == nil {
			s.cluster.LocalCell()
			b, err := s.executeCell(job.ctx, cn)
			if err != nil {
				return err
			}
			rec = b
		}
		recs[i] = rec
		s.recordCell(job, i, rec)
	}
	return nil
}

// cellKey namespaces per-cell cache/flight entries away from job-level
// keys: a single-cell job's key would otherwise collide with its own
// cell's key and deadlock the leader behind its own flight.
func cellKey(n normalized) string { return "cell:" + n.Key() }

// executeCell resolves one cell through the cell-level cache and
// single-flight, computing at most once per key per node. It returns
// the cell's compact RunRecord JSON. This is the endpoint-side of
// cluster dedup: every node forwards a cell key to the same owner, and
// this function collapses the owner's concurrent executions.
func (s *Server) executeCell(ctx context.Context, cn normalized) ([]byte, error) {
	key := cellKey(cn)
	for {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b, f, leader := s.claim(key)
		if b != nil {
			s.mCellCacheHits.Inc()
			return b, nil
		}
		if leader {
			b, err := s.computeCellGuarded(ctx, cn)
			s.publish(key, f, b, err)
			return b, err
		}
		select {
		case <-f.done:
			if f.err == nil {
				s.mCellDedup.Inc()
				return f.bytes, nil
			}
			if !errors.Is(f.err, context.Canceled) && !errors.Is(f.err, context.DeadlineExceeded) {
				return nil, f.err
			}
			// The leader hit its own deadline; retry under ours.
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// computeCellGuarded simulates one cell with panic containment local
// to the leader, so followers get an error instead of a hang.
func (s *Server) computeCellGuarded(ctx context.Context, cn normalized) (b []byte, err error) {
	defer func() {
		if p := recover(); p != nil {
			s.mPanics.Inc()
			err = fmt.Errorf("panic: %v", p)
		}
	}()
	cell := cn.cells()[0]
	runner := s.runnerFor(cn.Transactions, cn.Seed)
	results, err := runner.RunGrid(ctx, []core.Cell{cell})
	if err != nil {
		return nil, err
	}
	s.mSims.Inc()
	return encodeRecord(cn, cell, results[0])
}

// encodeRecord builds one cell's RunRecord and marshals it compact —
// the canonical per-cell form the store and the /v2 stream carry.
// assembleResult re-indents these through the same encoder WriteJSON
// uses, so the assembled grid is byte-identical to what the PR-5
// whole-grid path produced.
func encodeRecord(n normalized, cell core.Cell, rr core.RunResult) ([]byte, error) {
	rec := cliutil.BuildRunRecord(rr.Result, cell.Spec.EffectiveTree(),
		cell.Spec.TxSize, n.Seed, rr.Events, rr.Wall, rr.Stats, nil)
	return json.Marshal(rec)
}

// assembleResult turns the per-cell compact records into the public
// result document: one indented RunRecord object for a single cell, an
// indented array for a grid (the dolos-sim -json schema).
func assembleResult(recs [][]byte) ([]byte, error) {
	raws := make([]json.RawMessage, len(recs))
	for i, r := range recs {
		if r == nil {
			return nil, fmt.Errorf("cell %d missing", i)
		}
		raws[i] = json.RawMessage(r)
	}
	var buf bytes.Buffer
	var err error
	if len(raws) == 1 {
		err = telemetry.WriteJSON(&buf, raws[0])
	} else {
		err = telemetry.WriteJSON(&buf, raws)
	}
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// splitRecords is assembleResult's inverse: the result document back
// into per-cell compact records. Used when a job settles from shared
// bytes (cache hit, dedup follow) and still owes its stream
// subscribers per-cell events.
func splitRecords(result []byte, total int) ([][]byte, error) {
	trimmed := bytes.TrimSpace(result)
	var raws []json.RawMessage
	if len(trimmed) > 0 && trimmed[0] == '[' {
		if err := json.Unmarshal(trimmed, &raws); err != nil {
			return nil, err
		}
	} else {
		raws = []json.RawMessage{trimmed}
	}
	if len(raws) != total {
		return nil, fmt.Errorf("result has %d records, job has %d cells", len(raws), total)
	}
	out := make([][]byte, total)
	for i, r := range raws {
		var buf bytes.Buffer
		if err := json.Compact(&buf, r); err != nil {
			return nil, err
		}
		out[i] = buf.Bytes()
	}
	return out, nil
}

// runnerFor returns the shared runner for a (transactions, seed) pair.
// Sharing the runner is what extends trace single-flight across jobs:
// every job for the same pair replays the same generated traces. The
// runner executes its grid serially (Parallelism 1) — the worker pool,
// not the sweep executor, is the service's parallelism — so one giant
// grid job cannot monopolize every core.
func (s *Server) runnerFor(txns int, seed int64) *core.Runner {
	k := runnerKey{txns: txns, seed: seed}
	s.mu.Lock()
	defer s.mu.Unlock()
	if r, ok := s.runners[k]; ok {
		return r
	}
	// Bound the map: clients sweeping seeds would otherwise accumulate
	// a trace cache per seed forever. Dropping all runners only costs
	// trace regeneration, never correctness.
	if len(s.runners) >= 64 {
		s.runners = make(map[runnerKey]*core.Runner)
	}
	opts := core.Options{Transactions: txns, Seed: seed, Parallelism: 1}
	if s.faults != nil {
		// Artificial cell latency threads through the experiment layer's
		// PreRun seam: the stall lands inside the simulation pipeline,
		// upstream of the job deadline, without touching determinism.
		opts.PreRun = func(string, core.Spec) {
			if d, ok := s.faults.FireDelay(fault.CellLatency); ok {
				time.Sleep(d)
			}
		}
	}
	r := core.NewRunner(opts)
	s.runners[k] = r
	return r
}

func (s *Server) setStatus(job *Job, st JobStatus) {
	s.mu.Lock()
	job.status = st
	s.mu.Unlock()
}

// recordCell makes one finished cell durable, then visible: the WAL
// append happens before the in-order broadcast to stream subscribers,
// so no client ever sees a cell the store could forget. Broadcasts are
// strictly in index order; out-of-order completions wait in job.cells
// until the gap fills.
func (s *Server) recordCell(job *Job, i int, rec []byte) {
	if s.store != nil {
		s.store.AppendCell(job.id, i, job.total, rec)
	}
	s.mu.Lock()
	if job.cells[i] == nil {
		job.cells[i] = rec
	}
	for job.emitted < job.total && job.cells[job.emitted] != nil {
		ev := streamEvent{kind: eventCell, index: job.emitted, total: job.total, data: job.cells[job.emitted]}
		for ch := range job.subs {
			select {
			case ch <- ev:
			default: // buffer sized total+2: only an abandoned reader is ever full
			}
		}
		job.emitted++
		s.mStreamEvents.Inc()
	}
	s.mu.Unlock()
}

func (s *Server) finishJob(job *Job, result []byte, cached bool) {
	// Jobs settling from shared bytes (cache hit, dedup follow,
	// recovered result) still owe their subscribers — and the store —
	// per-cell records. splitRecords failing would mean the result
	// document itself is malformed; treat it as a failure rather than
	// stream nothing and claim success.
	s.mu.Lock()
	owed := job.emitted < job.total
	s.mu.Unlock()
	if owed {
		recs, err := splitRecords(result, job.total)
		if err != nil {
			s.failJob(job, fmt.Errorf("malformed result document: %w", err))
			return
		}
		for i, rec := range recs {
			s.mu.Lock()
			have := job.cells[i] != nil
			s.mu.Unlock()
			if !have {
				s.recordCell(job, i, rec)
			}
		}
	}
	if s.store != nil {
		s.store.AppendDone(job.id, cached)
	}
	s.mu.Lock()
	job.status = StatusDone
	job.result = result
	job.cached = cached
	subs := job.subs
	job.subs = nil
	ev := streamEvent{kind: eventDone, total: job.total, cached: cached}
	for ch := range subs {
		select {
		case ch <- ev:
		default:
		}
		close(ch)
	}
	s.mu.Unlock()
	job.cancel()
	s.mCompleted.Inc()
	s.hJobSeconds.Observe(time.Since(job.created).Seconds())
}

func (s *Server) failJob(job *Job, err error) {
	if s.store != nil {
		s.store.AppendFail(job.id, err.Error())
	}
	s.mu.Lock()
	job.status = StatusFailed
	job.errMsg = err.Error()
	subs := job.subs
	job.subs = nil
	ev := streamEvent{kind: eventFailed, total: job.total, data: []byte(err.Error())}
	for ch := range subs {
		select {
		case ch <- ev:
		default:
		}
		close(ch)
	}
	s.mu.Unlock()
	job.cancel()
	s.mFailed.Inc()
}
