// Package wpq implements the Write Pending Queue: the small battery-backed
// (ADR) buffer inside the memory controller that forms the on-chip part of
// the persistence domain. Entries are stored encrypted by the Mi-SU; a
// parallel volatile tag array keeps plaintext addresses to support write
// coalescing and read hits (Section 4.5 of the paper).
package wpq

import (
	"fmt"
	"sort"

	"dolos/internal/crypt"
)

// EntryDataSize is the payload of one WPQ entry: a 64-byte line plus its
// 8-byte address — the 72-byte entries the paper assumes.
const EntryDataSize = 72

// Entry is one WPQ slot.
type Entry struct {
	// Addr is the line address (also kept in the volatile tag array;
	// its presence here models the encrypted address field).
	Addr uint64
	// Cipher is the Mi-SU-encrypted line.
	Cipher [64]byte
	// MAC is the per-entry MAC (Partial- and Post-WPQ designs; unused
	// by Full-WPQ, which maintains a two-level tree instead).
	MAC crypt.MAC
	// Counter is the Mi-SU encryption counter this entry's pad derives
	// from (persistent counter register + slot number).
	Counter uint64
	// Valid marks an allocated slot.
	Valid bool
	// Cleared marks an entry fully processed by the Ma-SU; it may be
	// reused and need not be re-protected if drained (Section 4.3).
	Cleared bool
	// MACPending marks a committed Post-WPQ entry whose deferred MAC
	// computation has not finished yet.
	MACPending bool
	// Fetched marks an entry the Ma-SU has started processing; it can
	// no longer be coalesced into (the in-flight pipeline holds a copy)
	// but still occupies its slot until cleared.
	Fetched bool
	// Seq is the entry's age stamp, assigned at commit. Crash-drain
	// replay follows Seq order so that two live entries for the same
	// line (old one fetched, new one not) restore newest-last.
	Seq uint64
}

// ObsEvent enumerates the queue-state transitions reported to an
// Observer. The observer receives the post-event live count, so
// occupancy can be sampled exactly at its change points.
type ObsEvent uint8

const (
	// EvInsert is a new slot claimed for a write.
	EvInsert ObsEvent = iota
	// EvCoalesce is a write merged into a live entry.
	EvCoalesce
	// EvFetch is the Ma-SU starting to process a slot.
	EvFetch
	// EvClear is a slot retired after its drain completed.
	EvClear
)

// String returns the event mnemonic.
func (e ObsEvent) String() string {
	switch e {
	case EvInsert:
		return "insert"
	case EvCoalesce:
		return "coalesce"
	case EvFetch:
		return "fetch"
	case EvClear:
		return "clear"
	}
	return fmt.Sprintf("ObsEvent(%d)", uint8(e))
}

// Observer receives queue events (telemetry). The queue has no clock;
// the observer's owner stamps time. Must be purely observational.
type Observer func(ev ObsEvent, addr uint64, live int)

// noTag marks a slot holding no volatile tag. Line addresses are
// device offsets well below 2^64, so the all-ones value is free.
const noTag = ^uint64(0)

// Queue is a circular WPQ with a volatile tag array.
type Queue struct {
	slots     []Entry
	nextAlloc int // next slot to try for insertion (paper's Next_time)
	nextFetch int // oldest un-cleared entry (paper's next_fetch_index)
	live      int // valid && !cleared

	// fetchKey[i] is slots[i].Seq when the slot is fetchable (valid,
	// un-cleared, MAC complete, not in flight) and MaxUint64 otherwise.
	// FetchOldest runs several times per drained entry, and scanning a
	// dense word per slot beats touching every ~100-byte Entry; the key
	// is refreshed by the few mutators that change a fetchability bit.
	fetchKey []uint64

	// tagOf is the volatile tag array, indexed by slot: the line address
	// whose tag the slot holds, or noTag. An address appears in at most
	// one slot (inserting clears any stale holder), so a lookup is a
	// linear scan — the queue has at most a few dozen slots, and
	// scanning a dense word per slot is faster than the map hashing
	// this replaced (three lookups per write on the hot path).
	tagOf      []uint64
	noCoalesce bool
	seq        uint64

	inserts   uint64
	coalesces uint64
	readHits  uint64

	obs Observer
}

// New creates a WPQ with the given number of entries.
func New(entries int) *Queue {
	if entries <= 0 {
		panic("wpq: non-positive size")
	}
	q := &Queue{
		slots:    make([]Entry, entries),
		fetchKey: make([]uint64, entries),
		tagOf:    make([]uint64, entries),
	}
	for i := range q.fetchKey {
		q.fetchKey[i] = ^uint64(0)
		q.tagOf[i] = noTag
	}
	return q
}

// Size returns the number of slots.
func (q *Queue) Size() int { return len(q.slots) }

// Live returns the number of valid, un-cleared entries.
func (q *Queue) Live() int { return q.live }

// Full reports whether no slot can accept a new entry.
func (q *Queue) Full() bool { return q.live == len(q.slots) }

// Inserts returns the number of successful allocations (including
// coalesced updates).
func (q *Queue) Inserts() uint64 { return q.inserts }

// Coalesces returns how many inserts hit an existing entry.
func (q *Queue) Coalesces() uint64 { return q.coalesces }

// ReadHits returns how many reads were served from the WPQ.
func (q *Queue) ReadHits() uint64 { return q.readHits }

// SetObserver installs (or with nil removes) the queue-event observer.
func (q *Queue) SetObserver(obs Observer) { q.obs = obs }

// CanCoalesce reports whether a write to addr would coalesce into an
// existing live entry rather than needing a free slot. Coalescing into a
// Fetched (Ma-SU in-flight) entry is allowed: committing new content
// resets the Fetched flag, so the pipeline's completion leaves the entry
// live and it is re-fetched with the new data (the Seq stamp tells the
// completion its snapshot is stale).
func (q *Queue) CanCoalesce(addr uint64) bool {
	if q.noCoalesce {
		return false
	}
	s, ok := q.Lookup(addr)
	return ok && q.slots[s].Valid && !q.slots[s].Cleared
}

// setTag points addr's tag at slot, clearing any stale holder so the
// at-most-one-slot-per-address invariant survives re-allocation.
func (q *Queue) setTag(addr uint64, slot int) {
	for i := range q.tagOf {
		if q.tagOf[i] == addr {
			q.tagOf[i] = noTag
		}
	}
	q.tagOf[slot] = addr
}

// MustWait reports whether a write to addr must stall to preserve
// same-line write ordering: only when coalescing is disabled and the
// line already occupies a live entry (two live entries for one line
// would make crash-replay order ambiguous).
func (q *Queue) MustWait(addr uint64) bool {
	if !q.noCoalesce {
		return false
	}
	s, ok := q.Lookup(addr)
	if !ok {
		return false
	}
	e := &q.slots[s]
	return e.Valid && !e.Cleared
}

// Lookup consults the volatile tag array for a live entry holding addr.
func (q *Queue) Lookup(addr uint64) (slot int, ok bool) {
	for i, a := range q.tagOf {
		if a == addr {
			return i, true
		}
	}
	return 0, false
}

// ReadHit records a read served from the WPQ (after the caller decrypts
// the entry with one XOR).
func (q *Queue) ReadHit() { q.readHits++ }

// Entry returns a copy of slot i.
func (q *Queue) Entry(i int) Entry { return q.slots[i] }

// Allocate finds the slot for a new write to addr. If a live entry for
// addr exists it is returned with coalesced == true; otherwise a free
// slot is claimed. ok is false when the queue is full (the caller counts
// a retry event and re-attempts later).
// SetCoalescing enables or disables write coalescing through the tag
// array (enabled by default; the ablation experiments turn it off).
func (q *Queue) SetCoalescing(enabled bool) { q.noCoalesce = !enabled }

func (q *Queue) Allocate(addr uint64) (slot int, coalesced, ok bool) {
	if q.CanCoalesce(addr) {
		s, _ := q.Lookup(addr)
		q.coalesces++
		q.inserts++
		if q.obs != nil {
			q.obs(EvCoalesce, addr, q.live)
		}
		return s, true, true
	}
	if q.Full() {
		return 0, false, false
	}
	for i := 0; i < len(q.slots); i++ {
		s := (q.nextAlloc + i) % len(q.slots)
		if !q.slots[s].Valid || q.slots[s].Cleared {
			if q.slots[s].Valid {
				// Reusing a cleared slot: retire its tag only if the
				// address has not been re-allocated to another slot.
				if q.tagOf[s] == q.slots[s].Addr {
					q.tagOf[s] = noTag
				}
			}
			q.nextAlloc = (s + 1) % len(q.slots)
			q.live++
			q.inserts++
			q.slots[s] = Entry{} // caller fills via Commit
			q.fetchKey[s] = ^uint64(0)
			q.setTag(addr, s)
			if q.obs != nil {
				q.obs(EvInsert, addr, q.live)
			}
			return s, false, true
		}
	}
	panic("wpq: full check and scan disagree")
}

// Commit stores the protected entry into a slot claimed by Allocate.
func (q *Queue) Commit(slot int, e Entry) {
	if !e.Valid {
		panic("wpq: committing invalid entry")
	}
	prev := q.slots[slot]
	if prev.Valid && !prev.Cleared && prev.Addr != e.Addr {
		panic(fmt.Sprintf("wpq: slot %d overwrite of live entry %#x with %#x", slot, prev.Addr, e.Addr))
	}
	q.seq++
	e.Seq = q.seq
	q.slots[slot] = e
	q.refreshKey(slot)
	q.setTag(e.Addr, slot)
}

// refreshKey recomputes fetchKey[slot] from the slot's flags. Every
// mutation of a fetchability-relevant field routes through here.
func (q *Queue) refreshKey(slot int) {
	e := &q.slots[slot]
	if e.Valid && !e.Cleared && !e.MACPending && !e.Fetched {
		q.fetchKey[slot] = e.Seq
	} else {
		q.fetchKey[slot] = ^uint64(0)
	}
}

// FetchOldest returns the slot index of the oldest (smallest Seq) live
// entry that is not awaiting a deferred MAC, for the Ma-SU to process.
// ok is false when no entry is eligible. Age order matters when the same
// line occupies two entries (coalescing disabled): the newer value must
// reach NVM last.
func (q *Queue) FetchOldest() (slot int, ok bool) {
	// Seq stamps start at 1 and are unique, so MaxUint64 doubles as the
	// "not fetchable" sentinel and the scan is a plain min over one dense
	// word per slot. Ties are impossible; the strict < keeps the original
	// first-smallest-Seq choice.
	best, bestKey := -1, ^uint64(0)
	for i, k := range q.fetchKey {
		if k < bestKey {
			best, bestKey = i, k
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// MarkFetched flags slot as in-flight in the Ma-SU pipeline.
func (q *Queue) MarkFetched(slot int) {
	q.slots[slot].Fetched = true
	q.fetchKey[slot] = ^uint64(0)
	if q.obs != nil {
		q.obs(EvFetch, q.slots[slot].Addr, q.live)
	}
}

// Clear marks slot processed by the Ma-SU (step 4 of Figure 11). The slot
// becomes reusable; the tag stays until reuse so reads can still hit the
// WPQ copy harmlessly.
func (q *Queue) Clear(slot int) {
	e := &q.slots[slot]
	if !e.Valid || e.Cleared {
		panic(fmt.Sprintf("wpq: clearing slot %d in state %+v", slot, *e))
	}
	e.Cleared = true
	q.fetchKey[slot] = ^uint64(0)
	q.live--
	if q.tagOf[slot] == e.Addr {
		q.tagOf[slot] = noTag
	}
	q.nextFetch = (slot + 1) % len(q.slots)
	if q.obs != nil {
		q.obs(EvClear, e.Addr, q.live)
	}
}

// SetMACPending marks/unmarks a slot's deferred-MAC state (Post-WPQ).
func (q *Queue) SetMACPending(slot int, pending bool) {
	q.slots[slot].MACPending = pending
	q.refreshKey(slot)
}

// LiveEntries returns copies of all valid, un-cleared entries in age
// (Seq) order — the set that must reach NVM on a power failure, oldest
// first so replay restores the newest value of any repeated line last.
func (q *Queue) LiveEntries() []Entry {
	out := make([]Entry, 0, q.live)
	for i := range q.slots {
		if q.slots[i].Valid && !q.slots[i].Cleared {
			out = append(out, q.slots[i])
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Seq < out[b].Seq })
	return out
}

// LiveSlotsBySeq returns the slot indices of all live entries in age
// order (oldest first) — the crash-drain replay order.
func (q *Queue) LiveSlotsBySeq() []int {
	out := make([]int, 0, q.live)
	for i := range q.slots {
		if q.slots[i].Valid && !q.slots[i].Cleared {
			out = append(out, i)
		}
	}
	sort.Slice(out, func(a, b int) bool { return q.slots[out[a]].Seq < q.slots[out[b]].Seq })
	return out
}

// Reset empties the queue (after a drain + recovery cycle).
func (q *Queue) Reset() {
	for i := range q.slots {
		q.slots[i] = Entry{}
		q.fetchKey[i] = ^uint64(0)
		q.tagOf[i] = noTag
	}
	q.nextAlloc, q.nextFetch, q.live = 0, 0, 0
}
