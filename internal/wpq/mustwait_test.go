package wpq

import "testing"

func TestMustWaitOnlyWithoutCoalescing(t *testing.T) {
	q := New(4)
	s, _, _ := q.Allocate(0x40)
	q.Commit(s, Entry{Addr: 0x40, Valid: true})
	q.MarkFetched(s)
	// Coalescing enabled: in-flight entries absorb new writes.
	if q.MustWait(0x40) {
		t.Fatal("MustWait with coalescing enabled")
	}
	if !q.CanCoalesce(0x40) {
		t.Fatal("cannot coalesce into fetched entry")
	}
	// Coalescing disabled: same-line ordering requires stalling.
	q.SetCoalescing(false)
	if !q.MustWait(0x40) {
		t.Fatal("no MustWait with coalescing disabled")
	}
	if q.MustWait(0x80) {
		t.Fatal("MustWait for an absent line")
	}
	q.Clear(s)
	if q.MustWait(0x40) {
		t.Fatal("MustWait after clear")
	}
}

func TestCommitResetsFetched(t *testing.T) {
	q := New(4)
	s, _, _ := q.Allocate(0x40)
	q.Commit(s, Entry{Addr: 0x40, Valid: true})
	q.MarkFetched(s)
	seq1 := q.Entry(s).Seq
	s2, coal, ok := q.Allocate(0x40)
	if !ok || !coal || s2 != s {
		t.Fatalf("coalesce into fetched entry failed: %d %v %v", s2, coal, ok)
	}
	q.Commit(s2, Entry{Addr: 0x40, Valid: true})
	e := q.Entry(s2)
	if e.Fetched {
		t.Fatal("commit kept the Fetched flag")
	}
	if e.Seq == seq1 {
		t.Fatal("commit did not advance Seq")
	}
	// The refreshed entry is fetchable again.
	if f, ok := q.FetchOldest(); !ok || f != s {
		t.Fatal("refreshed entry not fetchable")
	}
}

func TestFetchOldestBySeq(t *testing.T) {
	q := New(4)
	a, _, _ := q.Allocate(0x40)
	q.Commit(a, Entry{Addr: 0x40, Valid: true})
	b, _, _ := q.Allocate(0x80)
	q.Commit(b, Entry{Addr: 0x80, Valid: true})
	// Refresh the first entry: it becomes the NEWEST despite the lower
	// slot index, so FetchOldest must now pick the other one.
	s, _, _ := q.Allocate(0x40)
	q.Commit(s, Entry{Addr: 0x40, Valid: true})
	if f, ok := q.FetchOldest(); !ok || f != b {
		t.Fatalf("FetchOldest picked slot %d, want %d (age order)", f, b)
	}
}

func TestLiveSlotsBySeq(t *testing.T) {
	q := New(4)
	for _, addr := range []uint64{0x40, 0x80, 0xC0} {
		s, _, _ := q.Allocate(addr)
		q.Commit(s, Entry{Addr: addr, Valid: true})
	}
	// Refresh the first: its seq becomes the largest.
	s, _, _ := q.Allocate(0x40)
	q.Commit(s, Entry{Addr: 0x40, Valid: true})
	order := q.LiveSlotsBySeq()
	if len(order) != 3 {
		t.Fatalf("live slots = %v", order)
	}
	if q.Entry(order[len(order)-1]).Addr != 0x40 {
		t.Fatalf("refreshed entry not last in age order: %v", order)
	}
}
