package wpq

import "testing"

func BenchmarkAllocateCommitClear(b *testing.B) {
	q := New(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		addr := uint64(i%64+1) * 64
		slot, _, ok := q.Allocate(addr)
		if !ok {
			b.Fatal("full")
		}
		q.Commit(slot, Entry{Addr: addr, Valid: true})
		f, _ := q.FetchOldest()
		q.Clear(f)
	}
}

func BenchmarkLookup(b *testing.B) {
	q := New(16)
	for i := uint64(1); i <= 16; i++ {
		s, _, _ := q.Allocate(i * 64)
		q.Commit(s, Entry{Addr: i * 64, Valid: true})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q.Lookup(uint64(i%16+1) * 64)
	}
}

func BenchmarkCoalesce(b *testing.B) {
	q := New(16)
	s, _, _ := q.Allocate(64)
	q.Commit(s, Entry{Addr: 64, Valid: true})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot, coal, ok := q.Allocate(64)
		if !ok || !coal {
			b.Fatal("no coalesce")
		}
		q.Commit(slot, Entry{Addr: 64, Valid: true})
	}
}
