package wpq

import (
	"testing"
	"testing/quick"
)

func commit(q *Queue, slot int, addr uint64) {
	q.Commit(slot, Entry{Addr: addr, Valid: true, Counter: uint64(slot)})
}

func TestAllocateCommitFetchClear(t *testing.T) {
	q := New(4)
	slot, coal, ok := q.Allocate(0x1000)
	if !ok || coal {
		t.Fatalf("allocate: slot=%d coal=%v ok=%v", slot, coal, ok)
	}
	commit(q, slot, 0x1000)
	if q.Live() != 1 {
		t.Fatalf("live = %d", q.Live())
	}
	f, ok := q.FetchOldest()
	if !ok || f != slot {
		t.Fatalf("fetch = %d ok=%v", f, ok)
	}
	q.Clear(f)
	if q.Live() != 0 {
		t.Fatalf("live after clear = %d", q.Live())
	}
	if _, ok := q.FetchOldest(); ok {
		t.Fatal("fetch found entry after clear")
	}
}

func TestFullAndRetry(t *testing.T) {
	q := New(2)
	for i := uint64(0); i < 2; i++ {
		s, _, ok := q.Allocate(i * 64)
		if !ok {
			t.Fatalf("allocate %d failed", i)
		}
		commit(q, s, i*64)
	}
	if !q.Full() {
		t.Fatal("queue not full")
	}
	if _, _, ok := q.Allocate(0x9000); ok {
		t.Fatal("allocate succeeded when full")
	}
	// Clearing frees a slot.
	f, _ := q.FetchOldest()
	q.Clear(f)
	if _, _, ok := q.Allocate(0x9000); !ok {
		t.Fatal("allocate failed after clear")
	}
}

func TestCoalescing(t *testing.T) {
	q := New(4)
	s1, _, _ := q.Allocate(0x40)
	commit(q, s1, 0x40)
	s2, coal, ok := q.Allocate(0x40)
	if !ok || !coal || s2 != s1 {
		t.Fatalf("coalesce: slot=%d coal=%v", s2, coal)
	}
	if q.Live() != 1 {
		t.Fatalf("live = %d after coalesce", q.Live())
	}
	if q.Coalesces() != 1 || q.Inserts() != 2 {
		t.Fatalf("stats: coalesces=%d inserts=%d", q.Coalesces(), q.Inserts())
	}
}

func TestNoCoalesceAfterClear(t *testing.T) {
	q := New(4)
	s, _, _ := q.Allocate(0x40)
	commit(q, s, 0x40)
	q.Clear(s)
	s2, coal, ok := q.Allocate(0x40)
	if !ok || coal {
		t.Fatalf("allocate after clear: slot=%d coal=%v", s2, coal)
	}
}

func TestLookupAndReadHit(t *testing.T) {
	q := New(4)
	s, _, _ := q.Allocate(0x80)
	commit(q, s, 0x80)
	if got, ok := q.Lookup(0x80); !ok || got != s {
		t.Fatalf("lookup = %d, %v", got, ok)
	}
	q.ReadHit()
	if q.ReadHits() != 1 {
		t.Fatal("read hit not counted")
	}
	if _, ok := q.Lookup(0xFFFF); ok {
		t.Fatal("lookup hit for absent address")
	}
}

func TestFetchOrderFIFO(t *testing.T) {
	q := New(4)
	addrs := []uint64{0x100, 0x200, 0x300}
	for _, a := range addrs {
		s, _, _ := q.Allocate(a)
		commit(q, s, a)
	}
	for _, want := range addrs {
		s, ok := q.FetchOldest()
		if !ok || q.Entry(s).Addr != want {
			t.Fatalf("fetch got %#x, want %#x", q.Entry(s).Addr, want)
		}
		q.Clear(s)
	}
}

func TestMACPendingBlocksFetch(t *testing.T) {
	q := New(4)
	s, _, _ := q.Allocate(0x100)
	commit(q, s, 0x100)
	q.SetMACPending(s, true)
	if _, ok := q.FetchOldest(); ok {
		t.Fatal("fetched an entry with deferred MAC pending")
	}
	q.SetMACPending(s, false)
	if _, ok := q.FetchOldest(); !ok {
		t.Fatal("entry not fetchable after MAC completes")
	}
}

func TestLiveEntriesDrainOrder(t *testing.T) {
	q := New(4)
	for _, a := range []uint64{0x1, 0x2, 0x3} {
		s, _, _ := q.Allocate(a * 64)
		commit(q, s, a*64)
	}
	f, _ := q.FetchOldest()
	q.Clear(f)
	live := q.LiveEntries()
	if len(live) != 2 || live[0].Addr != 0x2*64 || live[1].Addr != 0x3*64 {
		t.Fatalf("live entries = %+v", live)
	}
}

func TestSlotReuseAfterWrap(t *testing.T) {
	q := New(2)
	for round := uint64(0); round < 5; round++ {
		s, _, ok := q.Allocate(round * 64)
		if !ok {
			t.Fatalf("round %d: allocate failed", round)
		}
		commit(q, s, round*64)
		f, _ := q.FetchOldest()
		q.Clear(f)
	}
	if q.Live() != 0 {
		t.Fatalf("live = %d after balanced rounds", q.Live())
	}
}

func TestCommitOverwriteLivePanics(t *testing.T) {
	q := New(2)
	s, _, _ := q.Allocate(0x40)
	commit(q, s, 0x40)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on overwriting live entry with another address")
		}
	}()
	q.Commit(s, Entry{Addr: 0x80, Valid: true})
}

func TestClearTwicePanics(t *testing.T) {
	q := New(2)
	s, _, _ := q.Allocate(0x40)
	commit(q, s, 0x40)
	q.Clear(s)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double clear")
		}
	}()
	q.Clear(s)
}

func TestReset(t *testing.T) {
	q := New(4)
	s, _, _ := q.Allocate(0x40)
	commit(q, s, 0x40)
	q.Reset()
	if q.Live() != 0 || q.Full() {
		t.Fatal("reset did not empty queue")
	}
	if _, ok := q.Lookup(0x40); ok {
		t.Fatal("tag survived reset")
	}
}

func TestQueueInvariantProperty(t *testing.T) {
	// Property: under random allocate/clear sequences, live never exceeds
	// size, never goes negative, and tag array matches live entries.
	f := func(ops []uint16) bool {
		q := New(4)
		for _, op := range ops {
			addr := uint64(op%16) * 64
			if op%3 == 0 {
				if s, ok := q.FetchOldest(); ok {
					q.Clear(s)
				}
				continue
			}
			if s, _, ok := q.Allocate(addr); ok {
				q.Commit(s, Entry{Addr: addr, Valid: true})
			}
		}
		if q.Live() < 0 || q.Live() > q.Size() {
			return false
		}
		// Each live entry must be findable via its tag.
		for _, e := range q.LiveEntries() {
			s, ok := q.Lookup(e.Addr)
			if !ok || q.Entry(s).Addr != e.Addr {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
