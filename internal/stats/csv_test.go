package stats

import (
	"strings"
	"testing"
)

func TestCSVRendering(t *testing.T) {
	tab := &Table{Columns: []string{"a", "b"}, Summary: "mean"}
	tab.AddRow("x", 1, 2)
	tab.AddRow("y", 3, 4)
	out := tab.CSV()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "benchmark,a,b" {
		t.Fatalf("header = %q", lines[0])
	}
	if lines[1] != "x,1,2" || lines[2] != "y,3,4" {
		t.Fatalf("rows wrong:\n%s", out)
	}
	if lines[3] != "mean,2,3" {
		t.Fatalf("summary = %q", lines[3])
	}
}

func TestCSVGeomean(t *testing.T) {
	tab := &Table{Columns: []string{"v"}, Summary: "geomean"}
	tab.AddRow("x", 2)
	tab.AddRow("y", 8)
	if !strings.Contains(tab.CSV(), "geomean,4") {
		t.Fatalf("geomean missing:\n%s", tab.CSV())
	}
}

func TestCSVNoSummary(t *testing.T) {
	tab := &Table{Columns: []string{"v"}}
	tab.AddRow("x", 1.5)
	out := strings.TrimSpace(tab.CSV())
	if strings.Count(out, "\n") != 1 {
		t.Fatalf("unexpected rows:\n%s", out)
	}
}
