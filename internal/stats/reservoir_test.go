package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestReservoirExactWhenSmall(t *testing.T) {
	r := NewReservoir("lat", 100)
	for i := 1; i <= 100; i++ {
		r.Observe(float64(i))
	}
	if got := r.Median(); math.Abs(got-50.5) > 1e-9 {
		t.Fatalf("median = %v", got)
	}
	if got := r.Quantile(0); got != 1 {
		t.Fatalf("min = %v", got)
	}
	if got := r.Quantile(1); got != 100 {
		t.Fatalf("max = %v", got)
	}
	if got := r.P99(); got < 98 || got > 100 {
		t.Fatalf("p99 = %v", got)
	}
}

func TestReservoirEmpty(t *testing.T) {
	r := NewReservoir("e", 10)
	if !math.IsNaN(r.Median()) {
		t.Fatal("empty reservoir returned a quantile")
	}
	if r.Count() != 0 {
		t.Fatal("phantom samples")
	}
}

func TestReservoirSamplingApproximation(t *testing.T) {
	// 100k uniform values through a 4k reservoir: quantiles within a few
	// percent of truth.
	r := NewReservoir("s", 4096)
	for i := 0; i < 100000; i++ {
		r.Observe(float64(i % 1000))
	}
	if r.Count() != 100000 {
		t.Fatalf("count = %d", r.Count())
	}
	med := r.Median()
	if med < 420 || med > 580 {
		t.Fatalf("sampled median = %v, want ~500", med)
	}
	p99 := r.P99()
	if p99 < 940 || p99 > 1000 {
		t.Fatalf("sampled p99 = %v, want ~990", p99)
	}
}

func TestReservoirQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []float64, a, b uint8) bool {
		r := NewReservoir("p", 256)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			r.Observe(v)
		}
		if r.Count() == 0 {
			return true
		}
		qa := float64(a%101) / 100
		qb := float64(b%101) / 100
		if qa > qb {
			qa, qb = qb, qa
		}
		return r.Quantile(qa) <= r.Quantile(qb)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
