package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestCounter(t *testing.T) {
	c := NewCounter("writes")
	c.Inc()
	c.Add(9)
	if c.Value() != 10 {
		t.Fatalf("counter = %d, want 10", c.Value())
	}
	c.Reset()
	if c.Value() != 0 {
		t.Fatalf("counter after reset = %d", c.Value())
	}
	if c.Name() != "writes" {
		t.Fatalf("name = %q", c.Name())
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram("lat")
	for _, v := range []float64{1, 2, 3, 4} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d", h.Count())
	}
	if h.Mean() != 2.5 {
		t.Fatalf("mean = %v", h.Mean())
	}
	if h.Min() != 1 || h.Max() != 4 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	want := math.Sqrt(1.25)
	if math.Abs(h.StdDev()-want) > 1e-9 {
		t.Fatalf("stddev = %v, want %v", h.StdDev(), want)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram("empty")
	if h.Mean() != 0 || h.Min() != 0 || h.Max() != 0 || h.StdDev() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestGeoMean(t *testing.T) {
	if g := GeoMean([]float64{2, 8}); math.Abs(g-4) > 1e-9 {
		t.Fatalf("GeoMean(2,8) = %v, want 4", g)
	}
	if g := GeoMean(nil); g != 0 {
		t.Fatalf("GeoMean(nil) = %v", g)
	}
	if g := GeoMean([]float64{1, -1}); g != 0 {
		t.Fatalf("GeoMean with nonpositive = %v, want 0", g)
	}
}

func TestMean(t *testing.T) {
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Fatalf("Mean = %v", m)
	}
	if m := Mean(nil); m != 0 {
		t.Fatalf("Mean(nil) = %v", m)
	}
}

func TestGeoMeanBounds(t *testing.T) {
	// Property: min <= geomean <= max for positive inputs.
	f := func(raw []uint16) bool {
		xs := make([]float64, 0, len(raw))
		for _, r := range raw {
			xs = append(xs, float64(r)+1)
		}
		if len(xs) == 0 {
			return true
		}
		g := GeoMean(xs)
		lo, hi := xs[0], xs[0]
		for _, x := range xs {
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
		}
		return g >= lo-1e-9 && g <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{
		Title:   "Speedup",
		Columns: []string{"Full", "Partial"},
		Summary: "mean",
	}
	tab.AddRow("Hashmap", 1.5, 1.6)
	tab.AddRow("Btree", 1.7, 1.8)
	out := tab.String()
	for _, want := range []string{"Speedup", "Hashmap", "Btree", "Full", "Partial", "Mean", "1.60", "1.70"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table output missing %q:\n%s", want, out)
		}
	}
	if tab.Rows() != 2 || tab.Cell(0, 1) != 1.6 || tab.RowLabel(1) != "Btree" {
		t.Fatal("accessors returned wrong data")
	}
	col := tab.ColumnValues(0)
	if len(col) != 2 || col[0] != 1.5 || col[1] != 1.7 {
		t.Fatalf("ColumnValues = %v", col)
	}
}

func TestTableGeomeanSummary(t *testing.T) {
	tab := &Table{Columns: []string{"x"}, Summary: "geomean"}
	tab.AddRow("a", 2)
	tab.AddRow("b", 8)
	if !strings.Contains(tab.String(), "4.00") {
		t.Fatalf("geomean row missing:\n%s", tab.String())
	}
}

func TestSetRegistry(t *testing.T) {
	s := NewSet()
	s.Counter("a").Inc()
	s.Counter("a").Inc()
	s.Counter("b").Add(5)
	s.Histogram("h").Observe(3)
	if s.Counter("a").Value() != 2 {
		t.Fatalf("counter a = %d", s.Counter("a").Value())
	}
	names := s.CounterNames()
	if len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("counter names = %v", names)
	}
	if len(s.HistogramNames()) != 1 {
		t.Fatalf("histogram names = %v", s.HistogramNames())
	}
	out := s.String()
	if !strings.Contains(out, "a") || !strings.Contains(out, "mean=3.00") {
		t.Fatalf("set output:\n%s", out)
	}
}
