// Package stats provides the counters, aggregates and table rendering used
// by the Dolos experiment harness to report results in the same shape as
// the paper's tables and figures.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Counter is a monotonically increasing event count.
type Counter struct {
	name string
	n    uint64
}

// NewCounter returns a named counter starting at zero.
func NewCounter(name string) *Counter { return &Counter{name: name} }

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) { c.n += delta }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.n++ }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n }

// Name returns the counter's name.
func (c *Counter) Name() string { return c.name }

// Reset zeroes the counter.
func (c *Counter) Reset() { c.n = 0 }

// Histogram accumulates sample statistics without retaining samples.
type Histogram struct {
	name            string
	count           uint64
	sum, sumSquares float64
	min, max        float64
}

// NewHistogram returns a named, empty histogram.
func NewHistogram(name string) *Histogram {
	return &Histogram{name: name, min: math.Inf(1), max: math.Inf(-1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	h.count++
	h.sum += v
	h.sumSquares += v * v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the sample mean, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// StdDev returns the population standard deviation, or 0 with <2 samples.
func (h *Histogram) StdDev() float64 {
	if h.count < 2 {
		return 0
	}
	m := h.Mean()
	v := h.sumSquares/float64(h.count) - m*m
	if v < 0 {
		v = 0
	}
	return math.Sqrt(v)
}

// Min returns the smallest sample, or 0 with no samples.
func (h *Histogram) Min() float64 {
	if h.count == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest sample, or 0 with no samples.
func (h *Histogram) Max() float64 {
	if h.count == 0 {
		return 0
	}
	return h.max
}

// Name returns the histogram's name.
func (h *Histogram) Name() string { return h.name }

// GeoMean returns the geometric mean of xs. It returns 0 if xs is empty or
// any value is non-positive; speedups are strictly positive in this model.
func GeoMean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var logSum float64
	for _, x := range xs {
		if x <= 0 {
			return 0
		}
		logSum += math.Log(x)
	}
	return math.Exp(logSum / float64(len(xs)))
}

// Mean returns the arithmetic mean of xs, or 0 if empty.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Table renders labelled rows of float columns the way the paper's tables
// present them: a header, one row per benchmark, and an optional summary row.
type Table struct {
	Title   string
	Columns []string
	rows    []tableRow
	Summary string // "mean", "geomean" or "" for none
	Format  string // fmt verb for cells, default "%.2f"
}

type tableRow struct {
	label string
	cells []float64
}

// AddRow appends a labelled row. The number of cells should match Columns.
func (t *Table) AddRow(label string, cells ...float64) {
	t.rows = append(t.rows, tableRow{label: label, cells: cells})
}

// Rows returns the number of data rows.
func (t *Table) Rows() int { return len(t.rows) }

// Cell returns the value at (row, col).
func (t *Table) Cell(row, col int) float64 { return t.rows[row].cells[col] }

// RowLabel returns the label of row i.
func (t *Table) RowLabel(i int) string { return t.rows[i].label }

// ColumnValues returns all values in column col, in row order.
func (t *Table) ColumnValues(col int) []float64 {
	out := make([]float64, 0, len(t.rows))
	for _, r := range t.rows {
		if col < len(r.cells) {
			out = append(out, r.cells[col])
		}
	}
	return out
}

// String renders the table as aligned ASCII.
func (t *Table) String() string {
	format := t.Format
	if format == "" {
		format = "%.2f"
	}
	labels := []string{"Benchmark"}
	for _, r := range t.rows {
		labels = append(labels, r.label)
	}
	switch t.Summary {
	case "mean":
		labels = append(labels, "Mean")
	case "geomean":
		labels = append(labels, "GeoMean")
	}
	width := 0
	for _, l := range labels {
		if len(l) > width {
			width = len(l)
		}
	}

	colWidths := make([]int, len(t.Columns))
	cells := make([][]string, len(t.rows))
	for i, c := range t.Columns {
		colWidths[i] = len(c)
	}
	for ri, r := range t.rows {
		cells[ri] = make([]string, len(r.cells))
		for ci, v := range r.cells {
			s := fmt.Sprintf(format, v)
			cells[ri][ci] = s
			if ci < len(colWidths) && len(s) > colWidths[ci] {
				colWidths[ci] = len(s)
			}
		}
	}
	var summary []string
	if t.Summary != "" {
		for ci := range t.Columns {
			vals := t.ColumnValues(ci)
			var v float64
			if t.Summary == "geomean" {
				v = GeoMean(vals)
			} else {
				v = Mean(vals)
			}
			s := fmt.Sprintf(format, v)
			summary = append(summary, s)
			if len(s) > colWidths[ci] {
				colWidths[ci] = len(s)
			}
		}
	}

	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	fmt.Fprintf(&b, "%-*s", width, "Benchmark")
	for i, c := range t.Columns {
		fmt.Fprintf(&b, "  %*s", colWidths[i], c)
	}
	b.WriteByte('\n')
	for ri, r := range t.rows {
		fmt.Fprintf(&b, "%-*s", width, r.label)
		for ci := range r.cells {
			w := 0
			if ci < len(colWidths) {
				w = colWidths[ci]
			}
			fmt.Fprintf(&b, "  %*s", w, cells[ri][ci])
		}
		b.WriteByte('\n')
	}
	if t.Summary != "" {
		label := "Mean"
		if t.Summary == "geomean" {
			label = "GeoMean"
		}
		fmt.Fprintf(&b, "%-*s", width, label)
		for ci := range summary {
			fmt.Fprintf(&b, "  %*s", colWidths[ci], summary[ci])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders the table as comma-separated values (header row, data
// rows, optional summary row), for piping into plotting tools.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString("benchmark")
	for _, c := range t.Columns {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	writeRow := func(label string, cells []float64) {
		b.WriteString(label)
		for _, v := range cells {
			fmt.Fprintf(&b, ",%g", v)
		}
		b.WriteByte('\n')
	}
	for _, r := range t.rows {
		writeRow(r.label, r.cells)
	}
	if t.Summary != "" {
		cells := make([]float64, 0, len(t.Columns))
		for ci := range t.Columns {
			if t.Summary == "geomean" {
				cells = append(cells, GeoMean(t.ColumnValues(ci)))
			} else {
				cells = append(cells, Mean(t.ColumnValues(ci)))
			}
		}
		label := "mean"
		if t.Summary == "geomean" {
			label = "geomean"
		}
		writeRow(label, cells)
	}
	return b.String()
}

// Set is a registry of named counters and histograms for one simulation run.
type Set struct {
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewSet returns an empty stats registry.
func NewSet() *Set {
	return &Set{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the counter with the given name, creating it if needed.
func (s *Set) Counter(name string) *Counter {
	c, ok := s.counters[name]
	if !ok {
		c = NewCounter(name)
		s.counters[name] = c
	}
	return c
}

// Histogram returns the histogram with the given name, creating it if needed.
func (s *Set) Histogram(name string) *Histogram {
	h, ok := s.hists[name]
	if !ok {
		h = NewHistogram(name)
		s.hists[name] = h
	}
	return h
}

// CounterNames returns the registered counter names, sorted.
func (s *Set) CounterNames() []string {
	names := make([]string, 0, len(s.counters))
	for n := range s.counters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// HistogramNames returns the registered histogram names, sorted.
func (s *Set) HistogramNames() []string {
	names := make([]string, 0, len(s.hists))
	for n := range s.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// String renders all counters and histogram means, sorted by name.
func (s *Set) String() string {
	var b strings.Builder
	for _, n := range s.CounterNames() {
		fmt.Fprintf(&b, "%-40s %d\n", n, s.counters[n].Value())
	}
	for _, n := range s.HistogramNames() {
		h := s.hists[n]
		fmt.Fprintf(&b, "%-40s mean=%.2f n=%d min=%.0f max=%.0f\n",
			n, h.Mean(), h.Count(), h.Min(), h.Max())
	}
	return b.String()
}
