package stats

import (
	"math"
	"math/rand"
	"sort"
)

// Reservoir estimates quantiles from a stream using fixed-size uniform
// reservoir sampling (Vitter's algorithm R) — used for transaction-
// latency tails, where the mean hides exactly what persist stalls cause.
type Reservoir struct {
	name    string
	samples []float64
	cap     int
	seen    uint64
	rng     *rand.Rand
}

// NewReservoir creates a reservoir holding up to capacity samples
// (0 selects 4096). Sampling is deterministic for reproducible runs.
func NewReservoir(name string, capacity int) *Reservoir {
	if capacity <= 0 {
		capacity = 4096
	}
	return &Reservoir{
		name: name,
		cap:  capacity,
		rng:  rand.New(rand.NewSource(42)),
	}
}

// Name returns the reservoir's name.
func (r *Reservoir) Name() string { return r.name }

// Count returns the number of values observed (not retained).
func (r *Reservoir) Count() uint64 { return r.seen }

// Observe records one sample.
func (r *Reservoir) Observe(v float64) {
	r.seen++
	if len(r.samples) < r.cap {
		r.samples = append(r.samples, v)
		return
	}
	if j := r.rng.Int63n(int64(r.seen)); j < int64(r.cap) {
		r.samples[j] = v
	}
}

// Quantile returns the q-quantile estimate (q in [0,1]); NaN when empty.
func (r *Reservoir) Quantile(q float64) float64 {
	if len(r.samples) == 0 {
		return math.NaN()
	}
	sorted := make([]float64, len(r.samples))
	copy(sorted, r.samples)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Median returns the 0.5 quantile.
func (r *Reservoir) Median() float64 { return r.Quantile(0.5) }

// P99 returns the 0.99 quantile.
func (r *Reservoir) P99() float64 { return r.Quantile(0.99) }
