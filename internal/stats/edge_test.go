package stats

import (
	"math"
	"testing"
)

// Single-sample distributions are the boundary the estimators must get
// right: a variance over n-1 degrees of freedom or a quantile
// interpolation that assumes two points would divide by zero here.

func TestHistogramSingleSample(t *testing.T) {
	h := NewHistogram("one")
	h.Observe(42)
	if h.Count() != 1 || h.Sum() != 42 {
		t.Fatalf("count=%d sum=%v", h.Count(), h.Sum())
	}
	if h.Mean() != 42 || h.Min() != 42 || h.Max() != 42 {
		t.Fatalf("mean=%v min=%v max=%v, want all 42", h.Mean(), h.Min(), h.Max())
	}
	if sd := h.StdDev(); sd != 0 || math.IsNaN(sd) {
		t.Fatalf("single-sample stddev = %v, want 0", sd)
	}
}

func TestHistogramNegativeAndZeroSamples(t *testing.T) {
	h := NewHistogram("signed")
	h.Observe(-5)
	h.Observe(0)
	h.Observe(5)
	if h.Mean() != 0 || h.Min() != -5 || h.Max() != 5 {
		t.Fatalf("mean=%v min=%v max=%v", h.Mean(), h.Min(), h.Max())
	}
}

func TestReservoirSingleSample(t *testing.T) {
	r := NewReservoir("one", 10)
	r.Observe(7)
	for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
		if got := r.Quantile(q); got != 7 {
			t.Fatalf("Quantile(%v) = %v, want 7", q, got)
		}
	}
	if r.Median() != 7 || r.P99() != 7 {
		t.Fatalf("median=%v p99=%v", r.Median(), r.P99())
	}
}

func TestReservoirTwoSamplesInterpolation(t *testing.T) {
	r := NewReservoir("two", 10)
	r.Observe(10)
	r.Observe(20)
	if got := r.Quantile(0); got != 10 {
		t.Fatalf("q0 = %v", got)
	}
	if got := r.Quantile(1); got != 20 {
		t.Fatalf("q1 = %v", got)
	}
	if got := r.Median(); got < 10 || got > 20 {
		t.Fatalf("median = %v, want within [10,20]", got)
	}
}

func TestReservoirQuantileClamped(t *testing.T) {
	r := NewReservoir("clamp", 10)
	r.Observe(1)
	r.Observe(2)
	// Out-of-range q must clamp, not index out of bounds.
	if got := r.Quantile(-0.5); got != 1 {
		t.Fatalf("Quantile(-0.5) = %v, want 1", got)
	}
	if got := r.Quantile(1.5); got != 2 {
		t.Fatalf("Quantile(1.5) = %v, want 2", got)
	}
}
