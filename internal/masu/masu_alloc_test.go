package masu

import "testing"

// Steady-state ProcessWrite must not allocate: the op is staged into the
// value-typed redo log in place, node-update slices reuse their backing
// arrays, counter blocks and shadow entries live in dense tables, and
// the crypto runs in engine scratch. The warm-up below takes the
// first-touch allocations (counter blocks, tree nodes, NVM pages) out
// of the measured window; the pinned window rotates across 64 lines of
// one page, so no minor counter comes near the 127-write overflow that
// would trigger a page re-encryption (a legitimate allocation burst).
func TestProcessWriteSteadyStateAllocFree(t *testing.T) {
	for _, kind := range []TreeKind{BMTEager, ToCLazy} {
		t.Run(kind.String(), func(t *testing.T) {
			u, _, _ := newUnit(kind)
			p := line(1)
			for j := uint64(0); j < 64; j++ {
				u.ProcessWrite(0x1000+j*64, p, -1)
				u.ProcessWrite(0x1000+j*64, p, -1)
			}
			i := uint64(0)
			allocs := testing.AllocsPerRun(64, func() {
				u.ProcessWrite(0x1000+(i%64)*64, p, -1)
				i++
			})
			if allocs != 0 {
				t.Fatalf("steady-state ProcessWrite (%v) allocates %.1f objects per op, want 0", kind, allocs)
			}
		})
	}
}
