package masu

import (
	"fmt"

	"dolos/internal/crypt"
	"dolos/internal/nvm"
)

// IntegrityError reports a read-path integrity violation (spoofing,
// relocation or replay detected).
type IntegrityError struct {
	Addr   uint64
	Reason string
}

// Error implements the error interface.
func (e *IntegrityError) Error() string {
	return fmt.Sprintf("masu: integrity violation at %#x: %s", e.Addr, e.Reason)
}

// ReadLine fetches, verifies and decrypts the line at addr. A line whose
// counter is zero has never been written under this tree (counters are
// integrity-protected, so an adversary cannot fake this state) and reads
// as zeroes without verification.
func (u *Unit) ReadLine(addr uint64) ([64]byte, Cost, error) {
	var cost Cost
	addr &^= uint64(63)
	if !u.lay.ValidData(addr) {
		panic(fmt.Sprintf("masu: read outside data region: %#x", addr))
	}
	u.FlushWrites() // deferred data/MAC lines must land before any device read
	u.reads++

	u.touchCounter(addr, false, &cost)
	counter := u.counters.Counter(addr)
	if counter == 0 {
		var zero [64]byte
		return zero, cost, nil
	}

	ct := u.dev.ReadLine(addr)

	// Verify the data MAC over (ciphertext, address, counter).
	var stored crypt.MAC
	macLine := u.dev.ReadLine(u.lay.LineMACAddr(addr))
	copy(stored[:], macLine[(addr/64%8)*8:])
	cost.TotalMACs++
	cost.SerialMACs++
	if got := u.eng.LineMAC(&ct, addr, counter); got != stored {
		return [64]byte{}, cost, &IntegrityError{Addr: addr, Reason: "data MAC mismatch"}
	}

	// Verify the counter's integrity through the tree.
	leaf := u.lay.LeafIndex(addr)
	leafImg := u.counters.ImageByIndex(leaf)
	switch u.kind {
	case BMTEager:
		macs, err := u.bmtTree.VerifyLeaf(leaf, &leafImg)
		cost.TotalMACs += macs
		u.chargeTreePath(leaf, &cost)
		if err != nil {
			return [64]byte{}, cost, &IntegrityError{Addr: addr, Reason: err.Error()}
		}
	case ToCLazy:
		var storedLeafMAC crypt.MAC
		u.dev.Read(u.tocLeafMACAddr(leaf), storedLeafMAC[:])
		u.chargeTreePath(leaf, &cost)
		if err := u.tocTree.VerifyLeaf(leaf, &leafImg, storedLeafMAC); err != nil {
			return [64]byte{}, cost, &IntegrityError{Addr: addr, Reason: err.Error()}
		}
	}

	iv := crypt.MakeIV(addr/nvm.PageSize, uint16(addr%nvm.PageSize/64), counter)
	plain := u.eng.DecryptLine(ct, iv)
	cost.AESOps++
	return plain, cost, nil
}

// CheckLine verifies addr's stored MAC against its ciphertext and
// current counter without touching the metadata caches — a pure audit
// probe (scrubbing, debugging, post-recovery sweeps).
func (u *Unit) CheckLine(addr uint64) error {
	if !u.eng.Functional() {
		return ErrFastMode
	}
	u.FlushWrites()
	addr &^= 63
	counter := u.counters.Counter(addr)
	if counter == 0 {
		return nil
	}
	ct := u.dev.ReadLine(addr)
	var stored crypt.MAC
	macLine := u.dev.ReadLine(u.lay.LineMACAddr(addr))
	copy(stored[:], macLine[(addr/64%8)*8:])
	if got := u.eng.LineMAC(&ct, addr, counter); got != stored {
		return &IntegrityError{Addr: addr, Reason: "audit MAC mismatch"}
	}
	return nil
}

// chargeTreePath charges MT-cache accesses for the leaf's path. In
// hardware verification stops at the first cached node; the cache model
// reproduces that by hitting on the hot upper levels.
func (u *Unit) chargeTreePath(leaf uint64, cost *Cost) {
	idx := leaf
	levels := 0
	if u.bmtTree != nil {
		levels = u.bmtTree.Levels()
	} else {
		levels = u.tocTree.Levels()
	}
	for level := 1; level <= levels; level++ {
		idx /= 8
		var nodeAddr uint64
		if u.bmtTree != nil {
			nodeAddr = u.bmtTree.NodeNVMAddr(level, idx)
		} else {
			nodeAddr = u.tocTree.NodeNVMAddr(level, idx)
		}
		u.setNodeRef(nodeAddr, level, idx)
		hit, victim, evicted := u.mtCache.Access(nodeAddr, false)
		if evicted && victim.Dirty {
			u.persistMetaVictim(victim.Addr, cost)
		}
		if hit {
			// Verified-cached node: the walk stops here in hardware.
			return
		}
		cost.TreeMisses++
	}
}
