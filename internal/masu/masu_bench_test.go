package masu

import "testing"

func BenchmarkProcessWriteEager(b *testing.B) {
	u, _, _ := newUnit(BMTEager)
	p := line(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.ProcessWrite(0x1000+uint64(i%4096)*64, p, -1)
	}
}

func BenchmarkProcessWriteLazy(b *testing.B) {
	u, _, _ := newUnit(ToCLazy)
	p := line(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		u.ProcessWrite(0x1000+uint64(i%4096)*64, p, -1)
	}
}

func BenchmarkReadLineVerified(b *testing.B) {
	u, _, _ := newUnit(BMTEager)
	p := line(1)
	for i := uint64(0); i < 256; i++ {
		u.ProcessWrite(0x1000+i*64, p, -1)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := u.ReadLine(0x1000 + uint64(i%256)*64); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnubisRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		u, _, _ := newUnit(BMTEager)
		p := line(1)
		for j := uint64(0); j < 64; j++ {
			u.ProcessWrite(0x1000+j*64, p, -1)
		}
		u.CrashVolatile()
		b.StartTimer()
		if _, err := u.RecoverAnubis(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkOsirisRecovery(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		u, _, _ := newUnit(BMTEager)
		p := line(1)
		for j := uint64(0); j < 64; j++ {
			u.ProcessWrite(0x1000+j*64, p, -1)
		}
		u.CrashVolatile()
		u.WipeShadow()
		b.StartTimer()
		if _, err := u.RecoverOsiris(); err != nil {
			b.Fatal(err)
		}
	}
}
