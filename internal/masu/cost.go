package masu

import (
	"fmt"

	"dolos/internal/cache"
	"dolos/internal/crypt"
	"dolos/internal/dense"
	"dolos/internal/layout"
	"dolos/internal/nvm"
)

// CostModel is the cost-count twin of a Unit: it reproduces, op for op,
// every Cost a functional Ma-SU would report — and therefore every cycle
// the timing model charges — without computing a crypto byte, staging a
// redo op, encoding a counter block or holding a single tree-node image.
// The timing stage of a parallel-DES run drives one of these while the
// shadow stage owns all functional state (DESIGN.md §17).
//
// What it must track is exactly the state Cost values depend on:
//
//   - the two metadata caches, with the same geometry and access order
//     (LRU stamps decide future victims, and victim persistence is both
//     a cost and a shadow-table retirement);
//   - per-page split-counter values (overflow detection and the
//     counter==0 zero-line fast path on reads);
//   - the shadow-table live set (AnubisEstimate) and the written-line
//     set (ReconstructEstimate, re-encryption decrypt counts);
//   - the policy state machines (STUM's previous-leaf window, SuperMem's
//     write-through coalescing run).
//
// Tree-node identity is pure address arithmetic — the level structure of
// an 8-ary tree over a fixed leaf count — so no node bytes exist here.
//
// One exemption, asserted by the differential test: the MAC count of a
// read's tree verification (which depends on tree-internal dirty flags)
// is not reproduced, because no consumer of a read Cost uses TotalMACs —
// read latency charges MACLatency structurally and the per-op stats
// record only the miss counters.
type CostModel struct {
	kind   TreeKind
	lay    layout.Map
	policy Policy

	counterCache *cache.Cache
	mtCache      *cache.Cache

	// pages mirrors the split-counter block of each 4 KB page (Major +
	// per-line minors); the zero value is the never-touched zero block,
	// matching the zero-filled device the counter store lazily loads
	// from.
	pages *dense.Table[costPage]

	// written / shadowLive mirror the Unit's written-line set and the
	// live bits of the Anubis shadow table (images stay on the shadow
	// stage).
	written      *dense.Table[bool]
	writtenCount int
	shadowLive   *dense.Table[bool]
	shadowCount  int

	// Tree geometry, replicated from bmt/toc construction: counts[l]
	// nodes on level l (level 0 = leaves), offsets[l] the byte offset of
	// level l in the tree-node region. Both backends use 64-byte nodes.
	levels  int
	counts  []uint64
	offsets []uint64

	prevLeaf     uint64
	havePrev     bool
	lastWTLeaf   uint64
	haveWTLeaf   bool
	coalescedCtr uint64

	writes, reads uint64

	onWrite func(addr uint64, cost Cost)
}

// costPage is the split-counter state of one 4 KB page.
type costPage struct {
	major  uint64
	minors [64]uint8
}

// counter returns the effective counter of line li.
func (p *costPage) counter(li int) uint64 {
	return p.major<<7 | uint64(p.minors[li])
}

// NewCostModel builds the cost-count twin for the same (kind, layout,
// params) a functional Unit would be built with.
func NewCostModel(kind TreeKind, lay layout.Map, p Params) *CostModel {
	ccBytes := p.CounterCacheBytes
	if ccBytes == 0 {
		ccBytes = CounterCacheSize
	}
	mtBytes := p.MTCacheBytes
	if mtBytes == 0 {
		mtBytes = MTCacheSize
	}
	m := &CostModel{
		kind:         kind,
		lay:          lay,
		policy:       p.Policy,
		counterCache: cache.New("counter-cache", ccBytes, CounterCacheWays, MetaLineSize),
		mtCache:      cache.New("mt-cache", mtBytes, MTCacheWays, MetaLineSize),
		pages:        dense.NewTable[costPage](lay.DataSpan / nvm.PageSize),
		written:      dense.NewTable[bool](lay.DataSpan / 64),
		shadowLive:   dense.NewTable[bool]((lay.MACBase - lay.CounterBase) / 64),
	}
	// Replicate the 8-ary level structure bmt.New / toc.New derive from
	// the leaf count (identical for both: 64-byte nodes, arity 8).
	m.counts = []uint64{lay.Leaves()}
	n := lay.Leaves()
	for n > 1 {
		n = (n + 7) / 8
		m.counts = append(m.counts, n)
	}
	m.levels = len(m.counts) - 1
	m.offsets = make([]uint64, len(m.counts))
	var off uint64
	for l := 1; l < len(m.counts); l++ {
		m.offsets[l] = off
		off += m.counts[l] * 64
	}
	return m
}

// Kind returns the integrity backend being modeled.
func (m *CostModel) Kind() TreeKind { return m.kind }

// CounterCache returns the counter metadata cache (same geometry and
// state trajectory as the functional unit's).
func (m *CostModel) CounterCache() *cache.Cache { return m.counterCache }

// MTCache returns the tree metadata cache.
func (m *CostModel) MTCache() *cache.Cache { return m.mtCache }

// Writes returns the number of writes cost-processed.
func (m *CostModel) Writes() uint64 { return m.writes }

// Reads returns the number of reads cost-processed.
func (m *CostModel) Reads() uint64 { return m.reads }

// WrittenLines returns the number of distinct lines ever written.
func (m *CostModel) WrittenLines() int { return m.writtenCount }

// Policy returns the metadata-persistence policy in effect.
func (m *CostModel) Policy() Policy { return m.policy }

// CoalescedCounterWrites mirrors Unit.CoalescedCounterWrites.
func (m *CostModel) CoalescedCounterWrites() uint64 { return m.coalescedCtr }

// SetWriteHook installs the per-write cost observer (telemetry).
func (m *CostModel) SetWriteHook(fn func(addr uint64, cost Cost)) { m.onWrite = fn }

// pageIndex maps a data address to its 4 KB page index.
func (m *CostModel) pageIndex(addr uint64) uint64 {
	return (addr - m.lay.DataBase) / nvm.PageSize
}

// blockNVMAddr mirrors ctr.Store.BlockNVMAddr: the counter-cache index
// address of addr's counter block.
func (m *CostModel) blockNVMAddr(addr uint64) uint64 {
	return m.lay.CounterBase + m.pageIndex(addr)*64
}

// nodeNVMAddr mirrors the trees' NodeNVMAddr.
func (m *CostModel) nodeNVMAddr(level int, index uint64) uint64 {
	return m.lay.TreeBase + m.offsets[level] + index*64
}

// metaIdx mirrors Unit.metaIdx: shadow-table index of a metadata block.
func (m *CostModel) metaIdx(nvmAddr uint64) (uint64, bool) {
	if nvmAddr < m.lay.CounterBase || nvmAddr >= m.lay.MACBase {
		return 0, false
	}
	return (nvmAddr - m.lay.CounterBase) / 64, true
}

// persistVictim mirrors persistMetaVictim's cost and shadow effects (the
// actual metadata persist is functional work, owned by the shadow stage).
func (m *CostModel) persistVictim(nvmAddr uint64, cost *Cost) {
	if i, ok := m.metaIdx(nvmAddr); ok {
		p := m.shadowLive.Ptr(i)
		if *p {
			*p = false
			m.shadowCount--
		}
	}
	cost.NVMWrites++
}

// shadowSet mirrors shadowWrite's cost and live-bit effects.
func (m *CostModel) shadowSet(nvmAddr uint64, cost *Cost) {
	if i, ok := m.metaIdx(nvmAddr); ok {
		p := m.shadowLive.Ptr(i)
		if !*p {
			*p = true
			m.shadowCount++
		}
	}
	cost.ShadowWrites++
	cost.NVMWrites++
}

// touchCounter mirrors Unit.touchCounter.
func (m *CostModel) touchCounter(addr uint64, write bool, cost *Cost) {
	blockAddr := m.blockNVMAddr(addr)
	if m.policy.CounterWriteThrough {
		write = false
	}
	hit, victim, evicted := m.counterCache.Access(blockAddr, write)
	if !hit {
		cost.CounterMisses++
	}
	if evicted && victim.Dirty {
		m.persistVictim(victim.Addr, cost)
	}
}

// touchTreeNode mirrors Unit.touchTreeNode (minus the node-reference
// bookkeeping, which only functional victim persistence needs).
func (m *CostModel) touchTreeNode(nodeAddr uint64, write bool, cost *Cost) {
	if m.policy.PartialTreePersistence {
		write = false
	}
	hit, victim, evicted := m.mtCache.Access(nodeAddr, write)
	if !hit {
		cost.TreeMisses++
	}
	if evicted && victim.Dirty {
		m.persistVictim(victim.Addr, cost)
	}
}

// persistLevels mirrors Unit.persistLevels.
func (m *CostModel) persistLevels() int {
	n := m.policy.TreePersistLevels
	if n < 0 {
		n = 0
	}
	if m.kind == BMTEager && n > m.levels {
		n = m.levels
	}
	return n
}

// serialMACsFor mirrors Unit.serialMACsFor.
func (m *CostModel) serialMACsFor(leaf uint64) int {
	base := m.kind.SerialMACs()
	switch {
	case m.policy.PartialTreePersistence && m.kind == BMTEager:
		return 1 + m.persistLevels()
	case m.policy.StreamlinedTreeUpdates && m.kind == BMTEager:
		if !m.havePrev {
			return base
		}
		shared := 0
		for l := 1; l <= m.levels; l++ {
			if leaf>>(3*uint(l)) == m.prevLeaf>>(3*uint(l)) {
				shared++
			}
		}
		if n := base - shared; n > 1 {
			return n
		}
		return 1
	}
	return base
}

// WriteCost reproduces the Cost (and cost-relevant state trajectory) of
// Unit.ProcessWrite(addr, ·, wpqSlot) without functional work. The
// structure deliberately follows PrepareWrite then ApplyWrite so every
// cache access lands in the same order.
func (m *CostModel) WriteCost(addr uint64, wpqSlot int) Cost {
	if !m.lay.ValidData(addr) {
		panic(fmt.Sprintf("masu: write outside data region: %#x", addr))
	}
	_ = wpqSlot
	var cost Cost
	addr &^= uint64(63)

	// --- PrepareWrite mirror ---
	m.touchCounter(addr, true, &cost)
	pg := m.pages.Ptr(m.pageIndex(addr))
	li := int(addr/64) % 64
	overflow := pg.minors[li] == 127 // ctr.MinorMax
	cost.AESOps++                    // data-line pad generation
	cost.TotalMACs++                 // data MAC
	leaf := m.lay.LeafIndex(addr)
	// Tree-path MACs: one per interior level (plus the ToC leaf MAC).
	cost.TotalMACs += m.levels
	if m.kind == ToCLazy {
		cost.TotalMACs++
	}
	cost.SerialMACs = m.serialMACsFor(leaf)
	m.prevLeaf, m.havePrev = leaf, true

	// --- ApplyWrite mirror ---
	// Counter block: install the increment.
	if overflow {
		pg.major++
		for i := range pg.minors {
			pg.minors[i] = 0
		}
		pg.minors[li] = 1
	} else {
		pg.minors[li]++
	}
	if m.policy.CounterWriteThrough {
		if m.policy.CoalesceCounterWrites && m.haveWTLeaf && m.lastWTLeaf == leaf {
			m.coalescedCtr++
		} else {
			cost.NVMWrites++
		}
		m.lastWTLeaf, m.haveWTLeaf = leaf, true
	} else {
		m.shadowSet(m.blockNVMAddr(addr), &cost)
	}

	// Integrity-tree path: every interior level, leaf upward.
	idx := leaf
	for level := 1; level <= m.levels; level++ {
		idx /= 8
		nodeAddr := m.nodeNVMAddr(level, idx)
		m.touchTreeNode(nodeAddr, true, &cost)
		switch {
		case m.kind == BMTEager && m.policy.PartialTreePersistence:
			if level <= m.persistLevels() {
				cost.NVMWrites++
			}
		default:
			m.shadowSet(nodeAddr, &cost)
		}
	}
	if m.kind == ToCLazy {
		cost.NVMWrites++ // persisted leaf MAC line
	}

	// Data, MAC and ECC lines.
	cost.NVMWrites += 2
	wi := (addr - m.lay.DataBase) / 64
	wp := m.written.Ptr(wi)
	if !*wp {
		*wp = true
		m.writtenCount++
	}
	m.writes++

	if overflow {
		cost.Add(m.reencryptCost(addr))
	}
	if m.onWrite != nil {
		m.onWrite(addr, cost)
	}
	return cost
}

// reencryptCost mirrors reencryptPage: the page's 63 sibling lines each
// re-encrypt (one pad + one MAC + two NVM writes); previously written
// lines additionally decrypt under their old counter.
func (m *CostModel) reencryptCost(addr uint64) Cost {
	var cost Cost
	page := addr / nvm.PageSize * nvm.PageSize
	for a := page; a < page+nvm.PageSize; a += 64 {
		if a == addr {
			continue
		}
		wp := m.written.Ptr((a - m.lay.DataBase) / 64)
		if *wp {
			cost.AESOps++ // decrypt under the old counter
		} else {
			*wp = true
			m.writtenCount++
		}
		cost.ReencryptedLines++
		cost.AESOps++
		cost.TotalMACs++
		cost.NVMWrites += 2
	}
	return cost
}

// ReadCost reproduces the cost-relevant effects of Unit.ReadLine: the
// counter-cache touch, the zero-counter fast path, and the tree-path
// walk with its early stop at the first MT-cache hit. The verify-path
// TotalMACs of a functional read (dirty-flag dependent) is exempted —
// see the type comment — and reported as the structural 1 data MAC.
func (m *CostModel) ReadCost(addr uint64) Cost {
	var cost Cost
	addr &^= uint64(63)
	if !m.lay.ValidData(addr) {
		panic(fmt.Sprintf("masu: read outside data region: %#x", addr))
	}
	m.reads++

	m.touchCounter(addr, false, &cost)
	pg := m.pages.Ptr(m.pageIndex(addr))
	if pg.counter(int(addr/64)%64) == 0 {
		return cost
	}
	cost.TotalMACs++
	cost.SerialMACs++
	m.chargeTreePath(m.lay.LeafIndex(addr), &cost)
	cost.AESOps++
	return cost
}

// chargeTreePath mirrors Unit.chargeTreePath.
func (m *CostModel) chargeTreePath(leaf uint64, cost *Cost) {
	idx := leaf
	for level := 1; level <= m.levels; level++ {
		idx /= 8
		nodeAddr := m.nodeNVMAddr(level, idx)
		hit, victim, evicted := m.mtCache.Access(nodeAddr, false)
		if evicted && victim.Dirty {
			m.persistVictim(victim.Addr, cost)
		}
		if hit {
			return
		}
		cost.TreeMisses++
	}
}

// ReconstructEstimate mirrors Unit.ReconstructEstimate from the written
// set (address-derived, so identical by construction).
func (m *CostModel) ReconstructEstimate() uint64 {
	if m.kind != BMTEager {
		return 0
	}
	n := m.persistLevels()
	mac := uint64(crypt.MACLatency)
	if n >= m.levels {
		return recoveryReadCycles + mac
	}
	counts := m.ancestorCounts()
	cycles := uint64(counts[n]) * (recoveryReadCycles + mac)
	for l := n + 1; l <= m.levels; l++ {
		cycles += uint64(counts[l]) * mac
	}
	return cycles + mac
}

// ancestorCounts mirrors Unit.ancestorCounts over the model's written set.
func (m *CostModel) ancestorCounts() []int {
	leaves := make(map[uint64]struct{})
	m.written.Range(func(i uint64, w *bool) bool {
		if *w {
			leaves[m.lay.LeafIndex(m.lay.DataBase+i*64)] = struct{}{}
		}
		return true
	})
	counts := make([]int, m.levels+1)
	counts[0] = len(leaves)
	for l := 1; l <= m.levels; l++ {
		anc := make(map[uint64]struct{})
		for leaf := range leaves {
			anc[leaf>>(3*uint(l))] = struct{}{}
		}
		counts[l] = len(anc)
	}
	return counts
}

// AnubisEstimate mirrors Unit.AnubisEstimate from the live-bit count.
func (m *CostModel) AnubisEstimate() uint64 {
	return uint64(m.shadowCount)*(recoveryReadCycles+uint64(crypt.MACLatency)) + recoveryReadCycles
}
