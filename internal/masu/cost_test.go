package masu

import (
	"math/rand"
	"reflect"
	"testing"

	"dolos/internal/crypt"
	"dolos/internal/layout"
	"dolos/internal/nvm"
)

// costPolicies are the policy points the scheme registry exercises; the
// differential test runs each against both tree kinds.
var costPolicies = map[string]Policy{
	"baseline": {},
	"triad": {
		CounterWriteThrough:    true,
		PartialTreePersistence: true,
		TreePersistLevels:      2,
	},
	"supermem": {
		CounterWriteThrough:    true,
		CoalesceCounterWrites:  true,
		PartialTreePersistence: true,
		TreePersistLevels:      0,
	},
	"stum": {
		StreamlinedTreeUpdates: true,
	},
}

// TestCostModelMatchesUnit drives a functional Unit and a CostModel
// through the same write/read sequence — including counter overflows and
// re-encryption — and requires the CostModel to reproduce every Cost and
// every cost-derived estimate. Write costs must match on all fields;
// read costs on everything except the tree-verify MAC count, which the
// cost model exempts (no consumer of a read Cost uses it — see the
// CostModel doc comment).
func TestCostModelMatchesUnit(t *testing.T) {
	for _, kind := range []TreeKind{BMTEager, ToCLazy} {
		for name, pol := range costPolicies {
			kind, pol := kind, pol
			t.Run(kind.String()+"/"+name, func(t *testing.T) {
				var aesKey, macKey [16]byte
				copy(aesKey[:], "cost-aes-key-016")
				copy(macKey[:], "cost-mac-key-016")
				lay := layout.Small()
				dev := nvm.NewDevice(nil, lay.DeviceSize, 0)
				u := NewWithParams(kind, crypt.NewEngine(aesKey, macKey), dev, lay, Params{Policy: pol})
				m := NewCostModel(kind, lay, Params{Policy: pol})

				compare := func(opIdx int, what string, got, want Cost, full bool) {
					t.Helper()
					if full && got != want {
						t.Fatalf("op %d (%s): cost mismatch\n cost-model %+v\n functional %+v", opIdx, what, got, want)
					}
					if !full {
						if got.CounterMisses != want.CounterMisses ||
							got.TreeMisses != want.TreeMisses ||
							got.NVMWrites != want.NVMWrites ||
							got.ShadowWrites != want.ShadowWrites {
							t.Fatalf("op %d (%s): read cost mismatch\n cost-model %+v\n functional %+v", opIdx, what, got, want)
						}
					}
				}

				rng := rand.New(rand.NewSource(42))
				// A small address pool with a hot page so minor counters
				// overflow within the run, plus enough distinct pages to
				// thrash the counter cache... Small() keeps the tree short
				// but multi-level.
				pool := make([]uint64, 0, 600)
				hot := lay.DataBase + 8*nvm.PageSize
				for l := uint64(0); l < 64; l++ {
					pool = append(pool, hot+l*64)
				}
				for i := 0; i < 512; i++ {
					pool = append(pool, lay.DataBase+uint64(rng.Intn(int(lay.DataSpan/64)))*64)
				}

				for i := 0; i < 6000; i++ {
					addr := pool[rng.Intn(len(pool))]
					if rng.Intn(4) == 0 {
						_, want, err := u.ReadLine(addr)
						if err != nil {
							t.Fatalf("op %d: functional read failed: %v", i, err)
						}
						got := m.ReadCost(addr)
						compare(i, "read", got, want, false)
					} else {
						if rng.Intn(3) != 0 {
							addr = hot // hammer one page toward overflow
						}
						want := u.ProcessWrite(addr, line(byte(i)), -1)
						got := m.WriteCost(addr, -1)
						compare(i, "write", got, want, true)
					}
				}

				if got, want := m.Writes(), u.Writes(); got != want {
					t.Fatalf("Writes: cost-model %d, functional %d", got, want)
				}
				if got, want := m.Reads(), u.Reads(); got != want {
					t.Fatalf("Reads: cost-model %d, functional %d", got, want)
				}
				if got, want := m.WrittenLines(), u.WrittenLines(); got != want {
					t.Fatalf("WrittenLines: cost-model %d, functional %d", got, want)
				}
				if got, want := m.AnubisEstimate(), u.AnubisEstimate(); got != want {
					t.Fatalf("AnubisEstimate: cost-model %d, functional %d", got, want)
				}
				if kind == BMTEager {
					if got, want := m.ReconstructEstimate(), u.ReconstructEstimate(); got != want {
						t.Fatalf("ReconstructEstimate: cost-model %d, functional %d", got, want)
					}
				}
				if got, want := m.CoalescedCounterWrites(), u.CoalescedCounterWrites(); got != want {
					t.Fatalf("CoalescedCounterWrites: cost-model %d, functional %d", got, want)
				}
			})
		}
	}
}

// TestDeferredWriteMatchesEager drives two functional units through the
// same sequence, one via ProcessWrite and one via ProcessWriteDeferred +
// periodic FlushWrites, and requires identical costs and an identical
// device image — the bit-identity contract the parallel-DES shadow stage
// relies on.
func TestDeferredWriteMatchesEager(t *testing.T) {
	for _, kind := range []TreeKind{BMTEager, ToCLazy} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			var aesKey, macKey [16]byte
			copy(aesKey[:], "defr-aes-key-016")
			copy(macKey[:], "defr-mac-key-016")
			lay := layout.Small()
			devA := nvm.NewDevice(nil, lay.DeviceSize, 0)
			devB := nvm.NewDevice(nil, lay.DeviceSize, 0)
			eager := New(kind, crypt.NewEngine(aesKey, macKey), devA, lay, 0)
			deferred := New(kind, crypt.NewEngine(aesKey, macKey), devB, lay, 0)

			rng := rand.New(rand.NewSource(7))
			hot := lay.DataBase + 3*nvm.PageSize
			for i := 0; i < 2000; i++ {
				var addr uint64
				if rng.Intn(2) == 0 {
					addr = hot + uint64(rng.Intn(4))*64 // overflow pressure
				} else {
					addr = lay.DataBase + uint64(rng.Intn(int(lay.DataSpan/64)))*64
				}
				switch rng.Intn(5) {
				case 0: // interleaved read (self-flushing)
					pa, ca, errA := eager.ReadLine(addr)
					pb, cb, errB := deferred.ReadLine(addr)
					if (errA == nil) != (errB == nil) {
						t.Fatalf("op %d: read error divergence: %v vs %v", i, errA, errB)
					}
					if pa != pb || ca != cb {
						t.Fatalf("op %d: read divergence", i)
					}
				default:
					data := line(byte(i))
					ca := eager.ProcessWrite(addr, data, -1)
					cb := deferred.ProcessWriteDeferred(addr, data, -1)
					if ca != cb {
						t.Fatalf("op %d: write cost divergence\n eager    %+v\n deferred %+v", i, ca, cb)
					}
				}
				if rng.Intn(64) == 0 {
					deferred.FlushWrites()
				}
			}
			deferred.FlushWrites()

			if !reflect.DeepEqual(devA.Snapshot(), devB.Snapshot()) {
				t.Fatal("device images diverge between eager and deferred write paths")
			}
			if n, err := deferred.Audit(); err != nil {
				t.Fatalf("audit after deferred writes: %v (%d lines)", err, n)
			}
		})
	}
}
