package masu

import (
	"testing"

	"dolos/internal/crypt"
	"dolos/internal/layout"
	"dolos/internal/nvm"
)

// newSmallCacheUnit builds a Ma-SU whose metadata caches are tiny, so
// evictions (and the lazy persistence they trigger) happen constantly.
func newSmallCacheUnit(kind TreeKind) (*Unit, *nvm.Device) {
	var aesKey, macKey [16]byte
	copy(aesKey[:], "edge-aes-key-016")
	copy(macKey[:], "edge-mac-key-016")
	eng := crypt.NewEngine(aesKey, macKey)
	lay := layout.Small()
	dev := nvm.NewDevice(nil, lay.DeviceSize, 0)
	u := NewWithParams(kind, eng, dev, lay, Params{
		CounterCacheBytes: 1 << 10, // 4 sets x 4 ways
		MTCacheBytes:      2 << 10,
	})
	return u, dev
}

func TestEvictionPersistsMetadata(t *testing.T) {
	u, _ := newSmallCacheUnit(BMTEager)
	// Write across many pages so counter blocks and tree nodes thrash
	// through the tiny caches, forcing dirty evictions to NVM.
	var p [64]byte
	for i := uint64(0); i < 128; i++ {
		p[0] = byte(i)
		u.ProcessWrite(0x1000+i*4096, p, -1)
	}
	if u.CounterCache().Writebacks() == 0 {
		t.Fatal("tiny counter cache produced no writebacks")
	}
	// After evictions persisted the metadata, even a shadow-less crash
	// must recover via the NVM copies for the evicted (clean) blocks
	// plus Osiris probing for the rest.
	u.CrashVolatile()
	if _, err := u.RecoverOsiris(); err != nil {
		t.Fatalf("Osiris recovery after heavy eviction: %v", err)
	}
	for i := uint64(0); i < 128; i++ {
		got, _, err := u.ReadLine(0x1000 + i*4096)
		if err != nil {
			t.Fatalf("line %d: %v", i, err)
		}
		if got[0] != byte(i) {
			t.Fatalf("line %d content wrong after recovery", i)
		}
	}
}

func TestShadowRetiredOnEviction(t *testing.T) {
	u, _ := newSmallCacheUnit(BMTEager)
	var p [64]byte
	for i := uint64(0); i < 64; i++ {
		u.ProcessWrite(0x1000+i*4096, p, -1)
	}
	// The shadow region mirrors only dirty-in-cache metadata; with a
	// tiny cache most blocks have been evicted (persisted), so shadow
	// entries must have been retired rather than accumulating forever.
	if u.ShadowEntries() > 200 {
		t.Fatalf("shadow region grew to %d entries; eviction retirement broken", u.ShadowEntries())
	}
}

func TestAnubisWithTinyCaches(t *testing.T) {
	u, _ := newSmallCacheUnit(BMTEager)
	want := map[uint64][64]byte{}
	var p [64]byte
	for i := uint64(0); i < 64; i++ {
		p[0] = byte(i * 3)
		u.ProcessWrite(0x1000+i*4096, p, -1)
		want[0x1000+i*4096] = p
	}
	u.CrashVolatile()
	if _, err := u.RecoverAnubis(); err != nil {
		t.Fatalf("Anubis recovery with tiny caches: %v", err)
	}
	for addr, exp := range want {
		got, _, err := u.ReadLine(addr)
		if err != nil || got != exp {
			t.Fatalf("line %#x wrong: %v", addr, err)
		}
	}
}

func TestToCSmallCacheCrash(t *testing.T) {
	u, _ := newSmallCacheUnit(ToCLazy)
	var p [64]byte
	for i := uint64(0); i < 48; i++ {
		p[0] = byte(i)
		u.ProcessWrite(0x1000+i*4096, p, -1)
	}
	u.CrashVolatile()
	if _, err := u.RecoverAnubis(); err != nil {
		t.Fatalf("ToC recovery with tiny caches: %v", err)
	}
}

func TestRepeatedCrashRecoverCycles(t *testing.T) {
	u, _ := newSmallCacheUnit(BMTEager)
	var p [64]byte
	for round := 0; round < 5; round++ {
		for i := uint64(0); i < 16; i++ {
			p[0] = byte(round*16 + int(i))
			u.ProcessWrite(0x1000+i*64, p, -1)
		}
		u.CrashVolatile()
		if _, err := u.RecoverAnubis(); err != nil {
			t.Fatalf("round %d recovery: %v", round, err)
		}
	}
	got, _, err := u.ReadLine(0x1000)
	if err != nil || got[0] != byte(4*16) {
		t.Fatalf("final state wrong after 5 crash cycles: %v", err)
	}
}

func TestPrepareWithoutApplyThenDiscard(t *testing.T) {
	// A crash before the ready bit is architecturally the same as the
	// redo log being discarded — but our model sets ready at the end of
	// Prepare, so simulate discard by recovering with the op applied and
	// verifying idempotence of a second recovery.
	u, _ := newSmallCacheUnit(BMTEager)
	var p [64]byte
	u.ProcessWrite(0x1000, p, -1)
	op, _ := u.PrepareWrite(0x2000, p, 1)
	_ = op
	u.CrashVolatile()
	if _, err := u.RecoverAnubis(); err != nil {
		t.Fatal(err)
	}
	u.CrashVolatile()
	rep, err := u.RecoverAnubis()
	if err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	if rep.RedoReplayed {
		t.Fatal("redo replayed twice")
	}
}

func TestWriteLineSizes(t *testing.T) {
	u, _ := newSmallCacheUnit(BMTEager)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-region write did not panic")
		}
	}()
	var p [64]byte
	u.ProcessWrite(layout.Small().DataSpan+4096, p, -1)
}
