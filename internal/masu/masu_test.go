package masu

import (
	"testing"

	"dolos/internal/crypt"
	"dolos/internal/layout"
	"dolos/internal/nvm"
)

func newUnit(kind TreeKind) (*Unit, *nvm.Device, layout.Map) {
	var aesKey, macKey [16]byte
	copy(aesKey[:], "masu-aes-key-016")
	copy(macKey[:], "masu-mac-key-016")
	eng := crypt.NewEngine(aesKey, macKey)
	lay := layout.Small()
	dev := nvm.NewDevice(nil, lay.DeviceSize, 0)
	return New(kind, eng, dev, lay, 0), dev, lay
}

func line(seed byte) [64]byte {
	var l [64]byte
	for i := range l {
		l[i] = seed ^ byte(i*11)
	}
	return l
}

func TestWriteReadRoundTrip(t *testing.T) {
	for _, kind := range []TreeKind{BMTEager, ToCLazy} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			u, _, _ := newUnit(kind)
			want := line(1)
			u.ProcessWrite(0x1000, want, 0)
			got, _, err := u.ReadLine(0x1000)
			if err != nil {
				t.Fatalf("read: %v", err)
			}
			if got != want {
				t.Fatal("read returned wrong plaintext")
			}
		})
	}
}

func TestCiphertextOnDevice(t *testing.T) {
	u, dev, _ := newUnit(BMTEager)
	want := line(2)
	u.ProcessWrite(0x2000, want, 0)
	raw := dev.ReadLine(0x2000)
	if raw == want {
		t.Fatal("plaintext stored in NVM")
	}
}

func TestUnwrittenLineReadsZero(t *testing.T) {
	u, _, _ := newUnit(BMTEager)
	got, _, err := u.ReadLine(0x5000)
	if err != nil || got != [64]byte{} {
		t.Fatalf("unwritten read: %v, %v", got, err)
	}
}

func TestOverwriteBumpsCounter(t *testing.T) {
	u, dev, _ := newUnit(BMTEager)
	u.ProcessWrite(0x1000, line(1), 0)
	ct1 := dev.ReadLine(0x1000)
	u.ProcessWrite(0x1000, line(1), 0)
	ct2 := dev.ReadLine(0x1000)
	if ct1 == ct2 {
		t.Fatal("same plaintext re-encrypted to same ciphertext (counter not advancing)")
	}
	got, _, err := u.ReadLine(0x1000)
	if err != nil || got != line(1) {
		t.Fatalf("read after overwrite: %v", err)
	}
}

func TestSpoofingDetected(t *testing.T) {
	for _, kind := range []TreeKind{BMTEager, ToCLazy} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			u, dev, _ := newUnit(kind)
			u.ProcessWrite(0x1000, line(1), 0)
			ct := dev.ReadLine(0x1000)
			ct[0] ^= 0xFF
			dev.WriteLine(0x1000, ct)
			if _, _, err := u.ReadLine(0x1000); err == nil {
				t.Fatal("spoofed line accepted")
			}
		})
	}
}

func TestRelocationDetected(t *testing.T) {
	u, dev, _ := newUnit(BMTEager)
	u.ProcessWrite(0x1000, line(1), 0)
	u.ProcessWrite(0x2000, line(2), 0)
	// Swap ciphertexts and MACs between the two addresses.
	lay := u.lay
	c1, c2 := dev.ReadLine(0x1000), dev.ReadLine(0x2000)
	dev.WriteLine(0x1000, c2)
	dev.WriteLine(0x2000, c1)
	m1 := make([]byte, 8)
	m2 := make([]byte, 8)
	dev.Read(lay.LineMACAddr(0x1000), m1)
	dev.Read(lay.LineMACAddr(0x2000), m2)
	dev.Write(lay.LineMACAddr(0x1000), m2)
	dev.Write(lay.LineMACAddr(0x2000), m1)
	if _, _, err := u.ReadLine(0x1000); err == nil {
		t.Fatal("relocated line accepted")
	}
}

func TestReplayDetectedAfterRecovery(t *testing.T) {
	// Replay: snapshot NVM, write again, roll NVM back, then recover.
	// The persistent root register must reject the rolled-back image.
	u, dev, _ := newUnit(BMTEager)
	u.ProcessWrite(0x1000, line(1), 0)
	// Persist everything so the snapshot is a complete old image.
	u.counters.PersistAll()
	u.bmtTree.PersistAll()
	snap := dev.Snapshot()
	u.ProcessWrite(0x1000, line(2), 0)
	dev.Restore(snap) // adversary rolls back NVM
	u.CrashVolatile()
	u.WipeShadow() // adversary also wiped the shadow region
	if _, err := u.RecoverAnubis(); err == nil {
		t.Fatal("replayed (rolled back) NVM image accepted")
	}
}

func TestEagerCostModel(t *testing.T) {
	u, _, _ := newUnit(BMTEager)
	cost := u.ProcessWrite(0x1000, line(1), 0)
	if cost.SerialMACs != 10 {
		t.Fatalf("eager serial MACs = %d, want 10 (Table 1: 160x10)", cost.SerialMACs)
	}
	if cost.AESOps < 1 || cost.NVMWrites == 0 {
		t.Fatalf("cost = %+v", cost)
	}
}

func TestLazyCostModel(t *testing.T) {
	u, _, _ := newUnit(ToCLazy)
	cost := u.ProcessWrite(0x1000, line(1), 0)
	if cost.SerialMACs != 4 {
		t.Fatalf("lazy serial MACs = %d, want 4 (Table 1: 160x4)", cost.SerialMACs)
	}
}

func TestCounterCacheHitsOnLocality(t *testing.T) {
	u, _, _ := newUnit(BMTEager)
	var first, second Cost
	first = u.ProcessWrite(0x1000, line(1), 0)
	second = u.ProcessWrite(0x1040, line(2), 0) // same page -> same counter block
	if first.CounterMisses != 1 {
		t.Fatalf("first write counter misses = %d", first.CounterMisses)
	}
	if second.CounterMisses != 0 {
		t.Fatalf("second write counter misses = %d, want 0 (cached)", second.CounterMisses)
	}
}

func TestCrashBetweenPrepareAndApply(t *testing.T) {
	u, _, _ := newUnit(BMTEager)
	u.ProcessWrite(0x1000, line(1), 0)
	op, _ := u.PrepareWrite(0x2000, line(2), 3)
	_ = op
	if !u.RedoReady() {
		t.Fatal("ready bit not set after Prepare")
	}
	u.CrashVolatile()
	rep, err := u.RecoverAnubis()
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if !rep.RedoReplayed {
		t.Fatal("redo log not replayed")
	}
	got, _, err := u.ReadLine(0x2000)
	if err != nil || got != line(2) {
		t.Fatalf("staged write lost: %v", err)
	}
}

func TestCrashWithoutRedoDiscards(t *testing.T) {
	u, _, _ := newUnit(BMTEager)
	u.ProcessWrite(0x1000, line(1), 0)
	u.CrashVolatile()
	rep, err := u.RecoverAnubis()
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	if rep.RedoReplayed {
		t.Fatal("phantom redo replay")
	}
	got, _, err := u.ReadLine(0x1000)
	if err != nil || got != line(1) {
		t.Fatalf("committed write lost: %v", err)
	}
}

func TestAnubisRecoveryManyWrites(t *testing.T) {
	for _, kind := range []TreeKind{BMTEager, ToCLazy} {
		kind := kind
		t.Run(kind.String(), func(t *testing.T) {
			u, _, _ := newUnit(kind)
			want := map[uint64][64]byte{}
			for i := uint64(0); i < 40; i++ {
				addr := 0x1000 + i*64
				p := line(byte(i))
				u.ProcessWrite(addr, p, 0)
				want[addr] = p
			}
			u.CrashVolatile()
			rep, err := u.RecoverAnubis()
			if err != nil {
				t.Fatalf("recovery: %v", err)
			}
			if rep.LinesVerified != 40 {
				t.Fatalf("verified %d lines", rep.LinesVerified)
			}
			for addr, p := range want {
				got, _, err := u.ReadLine(addr)
				if err != nil || got != p {
					t.Fatalf("line %#x lost after recovery: %v", addr, err)
				}
			}
		})
	}
}

func TestOsirisRecovery(t *testing.T) {
	u, _, _ := newUnit(BMTEager)
	want := map[uint64][64]byte{}
	for i := uint64(0); i < 10; i++ {
		addr := 0x3000 + i*64
		p := line(byte(100 + i))
		// Write several times so counters lead their persisted values.
		u.ProcessWrite(addr, line(byte(i)), 0)
		u.ProcessWrite(addr, p, 0)
		want[addr] = p
	}
	u.CrashVolatile()
	u.WipeShadow() // force the slow path: no shadow
	rep, err := u.RecoverOsiris()
	if err != nil {
		t.Fatalf("Osiris recovery: %v", err)
	}
	if rep.OsirisProbes < 10 {
		t.Fatalf("suspiciously few probes: %d", rep.OsirisProbes)
	}
	for addr, p := range want {
		got, _, err := u.ReadLine(addr)
		if err != nil || got != p {
			t.Fatalf("line %#x wrong after Osiris recovery: %v", addr, err)
		}
	}
}

func TestOsirisDetectsTamper(t *testing.T) {
	u, dev, _ := newUnit(BMTEager)
	u.ProcessWrite(0x1000, line(1), 0)
	u.CrashVolatile()
	ct := dev.ReadLine(0x1000)
	ct[5] ^= 1
	dev.WriteLine(0x1000, ct)
	if _, err := u.RecoverOsiris(); err == nil {
		t.Fatal("Osiris accepted tampered ciphertext")
	}
}

func TestShadowTamperDetected(t *testing.T) {
	u, _, _ := newUnit(BMTEager)
	u.ProcessWrite(0x1000, line(1), 0)
	u.CrashVolatile()
	if !u.TamperShadow() {
		t.Fatal("no shadow entries to tamper")
	}
	if _, err := u.RecoverAnubis(); err == nil {
		t.Fatal("tampered shadow region accepted")
	}
}

func TestMinorOverflowReencryptsPage(t *testing.T) {
	u, _, _ := newUnit(BMTEager)
	a := uint64(0x4000)
	b := a + 64
	u.ProcessWrite(b, line(7), 0)
	var sawOverflow bool
	for i := 0; i < 128; i++ {
		cost := u.ProcessWrite(a, line(byte(i)), 0)
		if cost.ReencryptedLines > 0 {
			sawOverflow = true
			// The whole page re-encrypts (63 lines besides the trigger):
			// the reset gives every line a fresh nonzero counter, so
			// every line needs matching ciphertext+MAC.
			if cost.ReencryptedLines != 63 {
				t.Fatalf("re-encrypted %d lines, want 63 (full page)", cost.ReencryptedLines)
			}
		}
	}
	if !sawOverflow {
		t.Fatal("no overflow in 128 writes")
	}
	// Both lines still readable, and a never-written line in the page
	// now reads as zeroes with a verifiable MAC.
	got, _, err := u.ReadLine(b)
	if err != nil || got != line(7) {
		t.Fatalf("neighbour line corrupted by overflow: %v", err)
	}
	zero, _, err := u.ReadLine(a + 128)
	if err != nil || zero != [64]byte{} {
		t.Fatalf("untouched line in overflowed page: %v", err)
	}
	if err := u.CheckLine(a + 128); err != nil {
		t.Fatalf("audit of untouched line after overflow: %v", err)
	}
}

func TestTreeKindString(t *testing.T) {
	if BMTEager.String() != "eager-BMT" || ToCLazy.String() != "lazy-ToC" {
		t.Fatal("bad kind names")
	}
	if BMTEager.SerialMACs() != 10 || ToCLazy.SerialMACs() != 4 {
		t.Fatal("bad serial MAC constants")
	}
}
