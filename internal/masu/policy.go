package masu

import "dolos/internal/crypt"

// Policy tunes the Ma-SU's metadata-persistence behavior to model the
// related-work schemes. The zero value is the repo's original behavior
// (write-back metadata caches, full Anubis shadow tracking, the tree
// kind's fixed serialized-MAC count) — every legacy scheme runs with it
// and stays bit-identical to the seed.
type Policy struct {
	// CounterWriteThrough persists the counter block to NVM on every
	// write (SuperMem's write-through counter cache, Triad-NVM's
	// persistent counters). Counter lines never sit dirty in the cache
	// and need no shadow-region entry: the NVM copy is always current.
	CounterWriteThrough bool
	// CoalesceCounterWrites merges consecutive write-through persists of
	// the same counter block into one NVM write (SuperMem's cross-bank
	// counter-write coalescing). Only meaningful with
	// CounterWriteThrough.
	CoalesceCounterWrites bool
	// PartialTreePersistence persists only the first TreePersistLevels
	// BMT levels (write-through, like the counters); higher levels stay
	// volatile and are reconstructed at recovery (Triad-NVM's N knob;
	// SuperMem is the N = 0 point).
	PartialTreePersistence bool
	// TreePersistLevels is N: how many BMT levels (from the leaves up)
	// are persisted on every write. Clamped to the tree height.
	TreePersistLevels int
	// StreamlinedTreeUpdates coalesces BMT ancestor updates shared with
	// the immediately preceding write's path into the in-flight update
	// instead of serializing them again (STUM). Timing-only: the
	// functional update path is unchanged.
	StreamlinedTreeUpdates bool
}

// Policy returns the metadata-persistence policy in effect.
func (u *Unit) Policy() Policy { return u.policy }

// persistLevels returns the effective Triad-NVM N, clamped to the
// tree height.
func (u *Unit) persistLevels() int {
	n := u.policy.TreePersistLevels
	if n < 0 {
		n = 0
	}
	if u.bmtTree != nil && n > u.bmtTree.Levels() {
		n = u.bmtTree.Levels()
	}
	return n
}

// serialMACsFor returns the critical-path MAC count charged for a write
// to leaf under the active policy. The default is the tree kind's fixed
// count (Table 1); partial tree persistence serializes only the data MAC
// plus the persisted levels; streamlined updates subtract the ancestors
// shared with the previous write's path.
func (u *Unit) serialMACsFor(leaf uint64) int {
	base := u.kind.SerialMACs()
	switch {
	case u.policy.PartialTreePersistence && u.kind == BMTEager:
		// Counter-atomicity: the write waits only for the data MAC and
		// the persisted tree levels; volatile levels update off the
		// critical path.
		return 1 + u.persistLevels()
	case u.policy.StreamlinedTreeUpdates && u.kind == BMTEager:
		if !u.havePrev {
			return base
		}
		shared := 0
		for l := 1; l <= u.bmtTree.Levels(); l++ {
			if leaf>>(3*uint(l)) == u.prevLeaf>>(3*uint(l)) {
				shared++
			}
		}
		if m := base - shared; m > 1 {
			return m
		}
		return 1 // the data MAC always serializes
	}
	return base
}

// recoveryReadCycles is the modeled NVM metadata-read latency used by
// the boot-time recovery estimates (the same 600-cycle charge the write
// path uses for a metadata-cache miss).
const recoveryReadCycles = 600

// ancestorCounts returns, for each BMT level 0..Levels, how many
// distinct ancestors the written leaves have (level 0 = distinct written
// leaves). Host-side bookkeeping for the recovery-cost model; not part
// of the simulated hot path.
func (u *Unit) ancestorCounts() []int {
	levels := 0
	if u.bmtTree != nil {
		levels = u.bmtTree.Levels()
	}
	leaves := make(map[uint64]struct{})
	u.eachWritten(func(addr uint64) bool {
		leaves[u.lay.LeafIndex(addr)] = struct{}{}
		return true
	})
	counts := make([]int, levels+1)
	counts[0] = len(leaves)
	for l := 1; l <= levels; l++ {
		anc := make(map[uint64]struct{})
		for leaf := range leaves {
			anc[leaf>>(3*uint(l))] = struct{}{}
		}
		counts[l] = len(anc)
	}
	return counts
}

// ReconstructEstimate models the boot-time cost of reconstruction
// recovery under partial tree persistence: read the persisted frontier
// (the level-N nodes, or the counter blocks themselves when N = 0),
// recompute every volatile ancestor MAC above it, and compare with the
// root register. A fully persistent tree (N >= height) recovers in O(1):
// one root-register read and one check, independent of footprint — the
// Triad-NVM runtime/recovery tradeoff's other end. The estimate derives
// only from the written-address set, so it is identical in fast and
// functional mode.
func (u *Unit) ReconstructEstimate() uint64 {
	if u.bmtTree == nil {
		return 0
	}
	levels := u.bmtTree.Levels()
	n := u.persistLevels()
	mac := uint64(crypt.MACLatency)
	if n >= levels {
		return recoveryReadCycles + mac
	}
	counts := u.ancestorCounts()
	cycles := uint64(counts[n]) * (recoveryReadCycles + mac)
	for l := n + 1; l <= levels; l++ {
		cycles += uint64(counts[l]) * mac
	}
	return cycles + mac // final root compare
}

// AnubisEstimate models shadow-replay recovery: one NVM read plus one
// MAC verify per live shadow entry, and the redo-register check.
func (u *Unit) AnubisEstimate() uint64 {
	return uint64(u.shadowCount)*(recoveryReadCycles+uint64(crypt.MACLatency)) + recoveryReadCycles
}

// CoalescedCounterWrites returns how many write-through counter persists
// were merged with an in-flight write to the same block.
func (u *Unit) CoalescedCounterWrites() uint64 { return u.coalescedCtr }
