package masu

import (
	"encoding/binary"
	"fmt"

	"dolos/internal/crypt"
	"dolos/internal/nvm"
)

// CrashVolatile models power failure inside the Ma-SU: metadata caches
// and the live (cached) counter/tree state vanish. The redo-log
// registers, the root register, the shadow region and all NVM contents
// survive.
func (u *Unit) CrashVolatile() {
	u.counterCache.InvalidateAll()
	u.mtCache.InvalidateAll()
	u.counters.DropVolatile()
	if u.bmtTree != nil {
		u.bmtTree.DropVolatile()
	}
	if u.tocTree != nil {
		u.tocTree.DropVolatile()
	}
}

// RecoveryReport summarizes a recovery pass.
type RecoveryReport struct {
	// RedoReplayed is true when a staged op was re-applied (the ready
	// bit was set at the crash).
	RedoReplayed bool
	// ShadowRestored counts metadata blocks restored from the shadow
	// region.
	ShadowRestored int
	// LinesVerified counts data lines whose full path re-verified.
	LinesVerified int
	// OsirisProbes counts counter candidates tried (Osiris path only).
	OsirisProbes int
}

// RecoverAnubis performs the fast (Anubis) recovery: replay the redo log
// if it was ready, restore every shadow-tracked metadata block, then
// verify each written line's counter path against the persistent root
// register and its data MAC. Any tampering of NVM, shadow or drained
// state surfaces as an error here.
func (u *Unit) RecoverAnubis() (RecoveryReport, error) {
	var rep RecoveryReport
	if !u.eng.Functional() {
		return rep, ErrFastMode
	}

	// Restore the metadata caches from the shadow region first, so the
	// counter/tree state is consistent with the root register...
	u.shadow.Range(func(i uint64, e *shadowEntry) bool {
		if !e.live {
			return true
		}
		nvmAddr := u.lay.CounterBase + i*64
		if pi, ok := u.counters.PageIndexOfNVMAddr(nvmAddr); ok {
			u.counters.RestoreByIndex(pi, e.img)
			rep.ShadowRestored++
			return true
		}
		if ref := u.nodeRefAt(nvmAddr); ref != 0 {
			if u.bmtTree != nil {
				u.bmtTree.RestoreNode(int(ref>>56), ref&(1<<56-1), e.img)
			} else {
				u.tocTree.RestoreNode(int(ref>>56), ref&(1<<56-1), e.img)
			}
			rep.ShadowRestored++
		}
		return true
	})

	// ...then resume from step 3 if the crash hit between Prepare and
	// Apply (ready bit set). Step 4 (WPQ clear) is skipped — the
	// controller treats the entry as already evicted.
	if u.redo.ready {
		u.ApplyWrite(&u.redo.op)
		rep.RedoReplayed = true
	}

	if err := u.auditWrittenLines(&rep); err != nil {
		return rep, err
	}
	// Re-persist the recovered counter state: the Osiris invariant
	// (live - stored <= period) must hold from a fresh base, or repeated
	// crash/recovery cycles would let the gap grow beyond the probe
	// window.
	u.counters.PersistAll()
	u.rebuildLineCounters()
	return rep, nil
}

// RecoverOsiris performs the slow recovery path: discard all volatile
// counter state, re-identify each written line's counter by probing
// candidates against the stored ECC, rebuild the integrity tree from the
// recovered counter blocks, and compare with the root register. Only
// meaningful for the BMT backend (as in the Osiris/Triad-NVM lineage).
func (u *Unit) RecoverOsiris() (RecoveryReport, error) {
	var rep RecoveryReport
	if !u.eng.Functional() {
		return rep, ErrFastMode
	}
	if u.kind != BMTEager {
		return rep, fmt.Errorf("masu: Osiris recovery requires the BMT backend")
	}
	if u.redo.ready {
		u.ApplyWrite(&u.redo.op)
		rep.RedoReplayed = true
	}

	var probeErr error
	u.eachWritten(func(addr uint64) bool {
		ct := u.dev.ReadLine(addr)
		var eccBytes [4]byte
		u.dev.Read(u.lay.ECCAddr(addr), eccBytes[:])
		wantECC := binary.LittleEndian.Uint32(eccBytes[:])
		a := addr
		_, tried, ok := u.counters.RecoverLine(a, func(cand uint64) bool {
			iv := crypt.MakeIV(a/nvm.PageSize, uint16(a%nvm.PageSize/64), cand)
			plain := u.eng.DecryptLine(ct, iv)
			return u.eng.LineECC(&plain) == wantECC
		})
		rep.OsirisProbes += tried
		if !ok {
			probeErr = &IntegrityError{Addr: addr, Reason: "Osiris probe found no counter matching ECC"}
			return false
		}
		return true
	})
	if probeErr != nil {
		return rep, probeErr
	}

	// Rebuild the tree over recovered counter blocks and check the root.
	leafImages := make(map[uint64][64]byte)
	u.eachWritten(func(addr uint64) bool {
		leaf := u.lay.LeafIndex(addr)
		leafImages[leaf] = u.counters.ImageByIndex(leaf)
		return true
	})
	if got := u.bmtTree.RebuildFromLeaves(leafImages); got != u.bmtTree.Root() {
		return rep, &IntegrityError{Addr: 0, Reason: "rebuilt tree root mismatch"}
	}
	// Install the rebuilt leaves as the live state.
	for leaf, img := range leafImages {
		img := img
		u.bmtTree.UpdateLeaf(leaf, &img, 0) // Eager re-install; root unchanged by identical content
	}

	if err := u.auditWrittenLines(&rep); err != nil {
		return rep, err
	}
	// Fresh Osiris base for the probed counters (see RecoverAnubis).
	u.counters.PersistAll()
	u.rebuildLineCounters()
	return rep, nil
}

// RecoverReconstruct performs the Triad-NVM/SuperMem boot path: the
// counters are write-through (their NVM copies are current by
// construction) and only the first N tree levels were persisted, so
// recovery replays the redo registers, rebuilds the volatile tree levels
// bottom-up from the persisted counter blocks, and compares the
// reconstructed root against the persistent root register before
// serving. Tampering with counters, data, or MACs between crash and
// boot surfaces as a root mismatch or an audit failure.
func (u *Unit) RecoverReconstruct() (RecoveryReport, error) {
	var rep RecoveryReport
	if !u.eng.Functional() {
		return rep, ErrFastMode
	}
	if u.kind != BMTEager {
		return rep, fmt.Errorf("masu: reconstruction recovery requires the BMT backend")
	}
	if u.redo.ready {
		u.ApplyWrite(&u.redo.op)
		rep.RedoReplayed = true
	}

	leafImages := make(map[uint64][64]byte)
	u.eachWritten(func(addr uint64) bool {
		leaf := u.lay.LeafIndex(addr)
		leafImages[leaf] = u.counters.ImageByIndex(leaf)
		return true
	})
	if got := u.bmtTree.RebuildFromLeaves(leafImages); got != u.bmtTree.Root() {
		return rep, &IntegrityError{Addr: 0, Reason: "reconstructed tree root mismatch"}
	}
	// Install the rebuilt leaves as the live state.
	for leaf, img := range leafImages {
		img := img
		u.bmtTree.UpdateLeaf(leaf, &img, 0) // Eager re-install; root unchanged by identical content
	}

	if err := u.auditWrittenLines(&rep); err != nil {
		return rep, err
	}
	// Fresh Osiris base for the counters (see RecoverAnubis).
	u.counters.PersistAll()
	u.rebuildLineCounters()
	return rep, nil
}

// auditWrittenLines re-verifies every written line post-recovery: data
// MAC against the recovered counter, and the counter block against the
// root register (full path, no trusted-cache shortcut for the BMT).
func (u *Unit) auditWrittenLines(rep *RecoveryReport) error {
	verifiedLeaves := make(map[uint64]bool)
	var auditErr error
	u.eachWritten(func(addr uint64) bool {
		counter := u.counters.Counter(addr)
		ct := u.dev.ReadLine(addr)
		var stored crypt.MAC
		macLine := u.dev.ReadLine(u.lay.LineMACAddr(addr))
		copy(stored[:], macLine[(addr/64%8)*8:])
		if got := u.eng.LineMAC(&ct, addr, counter); got != stored {
			auditErr = &IntegrityError{Addr: addr, Reason: "post-recovery data MAC mismatch"}
			return false
		}
		leaf := u.lay.LeafIndex(addr)
		if !verifiedLeaves[leaf] {
			leafImg := u.counters.ImageByIndex(leaf)
			switch u.kind {
			case BMTEager:
				if _, err := u.bmtTree.VerifyLeafFull(leaf, &leafImg); err != nil {
					auditErr = &IntegrityError{Addr: addr, Reason: err.Error()}
					return false
				}
			case ToCLazy:
				var leafMAC crypt.MAC
				u.dev.Read(u.tocLeafMACAddr(leaf), leafMAC[:])
				if err := u.tocTree.VerifyLeafFull(leaf, &leafImg, leafMAC); err != nil {
					auditErr = &IntegrityError{Addr: addr, Reason: err.Error()}
					return false
				}
			}
			verifiedLeaves[leaf] = true
		}
		rep.LinesVerified++
		return true
	})
	return auditErr
}

// eachWritten calls f with the address of every line ever written, in
// ascending address order, until f returns false.
func (u *Unit) eachWritten(f func(addr uint64) bool) {
	u.written.Range(func(i uint64, w *bool) bool {
		if !*w {
			return true
		}
		return f(u.lay.DataBase + i*64)
	})
}

// rebuildLineCounters re-derives the per-line ciphertext counters from
// the recovered counter store.
func (u *Unit) rebuildLineCounters() {
	u.eachWritten(func(addr uint64) bool {
		u.lineCounter.Set(u.lineIdx(addr), u.counters.Counter(addr))
		return true
	})
}

// Audit scrubs the protected memory: every written line's MAC is checked
// against its ciphertext and counter, and every touched counter block is
// verified through the integrity tree (full path, no trusted-cache
// shortcut). It returns the number of lines scrubbed, or the first
// integrity violation found. Suitable for periodic scrubbing and as the
// final step of a recovery.
func (u *Unit) Audit() (int, error) {
	var rep RecoveryReport
	if !u.eng.Functional() {
		return 0, ErrFastMode
	}
	u.FlushWrites()
	if err := u.auditWrittenLines(&rep); err != nil {
		return rep.LinesVerified, err
	}
	return rep.LinesVerified, nil
}

// TamperShadow corrupts the first (lowest-address) live shadow-region
// entry (attack modeling).
func (u *Unit) TamperShadow() bool {
	tampered := false
	u.shadow.Range(func(i uint64, e *shadowEntry) bool {
		if !e.live {
			return true
		}
		e.img[0] ^= 0xFF
		tampered = true
		return false
	})
	return tampered
}

// WipeShadow erases the whole shadow region (attack modeling: an
// adversary clears the Anubis tracker between crash and recovery).
func (u *Unit) WipeShadow() {
	u.shadow.Reset()
	u.shadowCount = 0
}

// ShadowEntries returns the number of live shadow-region entries.
func (u *Unit) ShadowEntries() int { return u.shadowCount }
