// Package masu implements the Major Security Unit: the conventional
// secure-memory pipeline that protects the whole NVM with counter-mode
// encryption, per-line MACs and an integrity tree, and that in Dolos runs
// after eviction from the WPQ, off the critical path of persistence
// (Section 4.4, Figure 11).
//
// The unit follows the Anubis recipe for crash consistency: results of
// step 2 (encrypt, MAC, tree path, temp root) are staged in persistent
// redo-log registers before step 3 applies them to the metadata caches
// and NVM; a shadow-tracker region mirrors every dirty metadata block so
// recovery can restore the caches to a state consistent with the eagerly
// updated root. Counters are additionally recoverable via Osiris ECC
// probing (the slow path).
package masu

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dolos/internal/bmt"
	"dolos/internal/cache"
	"dolos/internal/crypt"
	"dolos/internal/ctr"
	"dolos/internal/dense"
	"dolos/internal/layout"
	"dolos/internal/nvm"
	"dolos/internal/toc"
)

// TreeKind selects the integrity-protection backend (Section 5.1).
type TreeKind int

const (
	// BMTEager is an 8-ary Bonsai Merkle Tree with eager (AGIT) updates.
	BMTEager TreeKind = iota
	// ToCLazy is an 8-ary Tree of Counters with lazy, parallel updates
	// protected by Phoenix-style shadow tracking.
	ToCLazy
)

// String returns the configuration name used in the paper's figures.
func (k TreeKind) String() string {
	if k == BMTEager {
		return "eager-BMT"
	}
	return "lazy-ToC"
}

// SerialMACs returns the critical-path MAC count the paper charges the
// Ma-SU per write: 10 for eager BMT (data MAC + 9 tree levels, Table 1:
// 160x10) and 4 for lazy ToC (Table 1: 160x4).
func (k TreeKind) SerialMACs() int {
	if k == BMTEager {
		return 10
	}
	return 4
}

// Metadata cache geometry (Table 1).
const (
	CounterCacheSize = 128 << 10
	CounterCacheWays = 4
	MTCacheSize      = 256 << 10
	MTCacheWays      = 8
	MetaLineSize     = 64
)

// Cost aggregates the work of one Ma-SU operation for the timing model.
type Cost struct {
	// CounterMisses and TreeMisses are metadata-cache misses, each
	// costing an NVM read.
	CounterMisses int
	TreeMisses    int
	// SerialMACs is the critical-path MAC count.
	SerialMACs int
	// TotalMACs counts every MAC computed (parallel ones included).
	TotalMACs int
	// AESOps counts encryption-pad generations.
	AESOps int
	// NVMWrites counts 64-byte lines written to the device.
	NVMWrites int
	// ShadowWrites counts Anubis shadow-region writes.
	ShadowWrites int
	// ReencryptedLines counts page re-encryption work after a minor-
	// counter overflow.
	ReencryptedLines int
}

// Add accumulates another cost.
func (c *Cost) Add(o Cost) {
	c.CounterMisses += o.CounterMisses
	c.TreeMisses += o.TreeMisses
	c.SerialMACs += o.SerialMACs
	c.TotalMACs += o.TotalMACs
	c.AESOps += o.AESOps
	c.NVMWrites += o.NVMWrites
	c.ShadowWrites += o.ShadowWrites
	c.ReencryptedLines += o.ReencryptedLines
}

// Op is a prepared write held in the redo-log registers (Figure 11
// step 2 output). Ready becomes true once fully staged.
type Op struct {
	Addr     uint64
	Plain    [64]byte
	Cipher   [64]byte
	MAC      crypt.MAC
	Counter  uint64
	ECC      uint32
	Overflow bool

	LeafIndex uint64
	LeafImage [64]byte
	// LeafBlock is LeafImage in decoded form — the same staged counter
	// block both ways, so ApplyWrite can install it into the counter
	// store without re-decoding the image (the image form still feeds
	// the redo record, shadow region and integrity tree).
	LeafBlock ctr.Block

	BMTNodes []bmt.NodeUpdate
	TempRoot crypt.MAC

	ToCNodes   []toc.NodeUpdate
	ToCLeafMAC crypt.MAC
	ToCRootVer uint64

	WPQSlot int

	// deferred marks an op whose data-line pad, ciphertext and MAC are
	// left to the next FlushWrites batch; Cipher and MAC above are stale
	// for such an op.
	deferred bool
}

// pendingLine is one deferred data-line write: everything the batch
// flush needs to produce the ciphertext and MAC later. ct is filled in
// during the flush (the MACReq references it in place).
type pendingLine struct {
	addr    uint64
	counter uint64
	plain   [64]byte
	ct      [64]byte
}

// redoLog models the persistent redo registers. The op is stored by
// value and reused across writes (PrepareWrite stages into it in
// place), so the steady-state write path allocates nothing: only the
// ready bit distinguishes "staged" from "stale contents of the last
// applied op". ApplyWrite clears ready but leaves the op bytes (and the
// BMTNodes/ToCNodes backing arrays, reused via [:0]) intact.
type redoLog struct {
	ready bool
	op    Op
}

// shadowEntry is one slot of the Anubis shadow-tracker table. live
// distinguishes a present entry from the zero value of an untouched
// slot (a zero image is a legal shadow payload).
type shadowEntry struct {
	img  [64]byte
	live bool
}

// Unit is the Major Security Unit.
type Unit struct {
	kind TreeKind
	eng  crypt.Dispatch
	dev  *nvm.Device
	lay  layout.Map

	counters *ctr.Store
	bmtTree  *bmt.Tree
	tocTree  *toc.Tree

	counterCache *cache.Cache
	mtCache      *cache.Cache

	// nodeByAddr maps a tree-node NVM address (64 B granules over
	// [TreeBase, MACBase)) to its packed (level<<56 | index) reference;
	// 0 means unknown, which is unambiguous because tree levels start
	// at 1. A dense table replaced the former map: the write path
	// stores into it once per touched tree node (DESIGN.md §12).
	nodeByAddr *dense.Table[uint64]

	// shadow is the Anubis shadow-tracker region: NVM-resident by
	// construction (it survives CrashVolatile), mirroring every metadata
	// block that is dirty in the caches. Indexed by 64 B granule over
	// [CounterBase, MACBase); shadowCount counts live entries.
	shadow      *dense.Table[shadowEntry]
	shadowCount int

	// written tracks lines that have ever been written (the recovery
	// scan set; in hardware this is a memory scan), indexed by line
	// within the data region; writtenCount counts set bits.
	written      *dense.Table[bool]
	writtenCount int
	// lineCounter records the counter each line's current NVM ciphertext
	// was produced with. Normally equal to the counter store's value; it
	// diverges only transiently during post-overflow page re-encryption,
	// where hardware reads the pre-reset counters from the old block.
	lineCounter *dense.Table[uint64]

	redo redoLog

	// policy is the metadata-persistence policy (zero = original
	// behavior; see policy.go).
	policy Policy
	// prevLeaf/havePrev track the previous write's counter-block leaf
	// for STUM's streamlined update coalescing.
	prevLeaf uint64
	havePrev bool
	// lastWTLeaf/haveWTLeaf track the last write-through counter persist
	// for SuperMem's cross-bank coalescing; coalescedCtr counts merges.
	lastWTLeaf   uint64
	haveWTLeaf   bool
	coalescedCtr uint64

	writes, reads uint64

	// pend queues deferred data-line writes between FlushWrites calls
	// (ProcessWriteDeferred); the remaining slices are flush scratch,
	// sized to the high-water batch and reused. pendLast maps an address
	// to its last pending entry so a flush pays pad+MAC only for the
	// final value of a line rewritten within one batch.
	pend     []pendingLine
	pendLast map[uint64]int
	pendIVs  []crypt.IV
	pendPads []crypt.Pad
	pendMACs []crypt.MAC
	pendReqs []crypt.MACReq

	// onWrite, when non-nil, observes each completed write with its cost
	// composition (telemetry). Purely observational.
	onWrite func(addr uint64, cost Cost)
}

// Params tunes a Ma-SU beyond Table 1's defaults (cache-size ablations).
type Params struct {
	// OsirisPeriod is the counter persist period (0 = default).
	OsirisPeriod uint64
	// CounterCacheBytes overrides the counter-cache capacity (0 = Table
	// 1's 128 KB). Must keep a power-of-two set count.
	CounterCacheBytes uint64
	// MTCacheBytes overrides the MT-cache capacity (0 = 256 KB).
	MTCacheBytes uint64
	// Policy selects the metadata-persistence policy (zero value = the
	// original write-back + full-shadow behavior; see policy.go).
	Policy Policy
}

// New builds a Ma-SU over the device using the given address map.
// osirisPeriod 0 selects the default.
func New(kind TreeKind, eng crypt.Provider, dev *nvm.Device, lay layout.Map, osirisPeriod uint64) *Unit {
	return NewWithParams(kind, eng, dev, lay, Params{OsirisPeriod: osirisPeriod})
}

// NewWithParams builds a Ma-SU with explicit tuning parameters.
func NewWithParams(kind TreeKind, eng crypt.Provider, dev *nvm.Device, lay layout.Map, p Params) *Unit {
	ccBytes := p.CounterCacheBytes
	if ccBytes == 0 {
		ccBytes = CounterCacheSize
	}
	mtBytes := p.MTCacheBytes
	if mtBytes == 0 {
		mtBytes = MTCacheSize
	}
	u := &Unit{
		kind:         kind,
		policy:       p.Policy,
		eng:          crypt.AsDispatch(eng),
		dev:          dev,
		lay:          lay,
		counters:     ctr.NewStore(dev, lay.CounterBase, lay.DataBase, lay.DataSpan, p.OsirisPeriod),
		counterCache: cache.New("counter-cache", ccBytes, CounterCacheWays, MetaLineSize),
		mtCache:      cache.New("mt-cache", mtBytes, MTCacheWays, MetaLineSize),
		nodeByAddr:   dense.NewTable[uint64]((lay.MACBase - lay.TreeBase) / 64),
		shadow:       dense.NewTable[shadowEntry]((lay.MACBase - lay.CounterBase) / 64),
		written:      dense.NewTable[bool](lay.DataSpan / 64),
		lineCounter:  dense.NewTable[uint64](lay.DataSpan / 64),
	}
	switch kind {
	case BMTEager:
		u.bmtTree = bmt.New(eng, dev, lay.TreeBase, lay.Leaves())
	case ToCLazy:
		u.tocTree = toc.New(eng, dev, lay.TreeBase, lay.Leaves())
	}
	return u
}

// Kind returns the integrity backend in use.
func (u *Unit) Kind() TreeKind { return u.kind }

// ErrFastMode reports a security-sensitive operation attempted on a
// latency-only crypto provider: recovery and audit paths verify real
// MACs and ECC, which fast mode fakes, so running them would vacuously
// pass (or spuriously fail) instead of checking anything.
var ErrFastMode = errors.New("masu: requires the functional crypto provider (fast mode computes latency-only MACs/ECC)")

// Functional reports whether the unit's crypto provider computes real
// cryptographic values — the precondition for RecoverAnubis,
// RecoverOsiris, Audit and CheckLine.
func (u *Unit) Functional() bool { return u.eng.Functional() }

// SetWriteHook installs (or with nil removes) the per-write cost
// observer, invoked at the end of every ProcessWrite.
func (u *Unit) SetWriteHook(fn func(addr uint64, cost Cost)) { u.onWrite = fn }

// Counters exposes the counter store (recovery drivers, tests).
func (u *Unit) Counters() *ctr.Store { return u.counters }

// BMT returns the Merkle tree (nil in ToC mode).
func (u *Unit) BMT() *bmt.Tree { return u.bmtTree }

// ToC returns the Tree of Counters (nil in BMT mode).
func (u *Unit) ToC() *toc.Tree { return u.tocTree }

// CounterCache returns the counter metadata cache.
func (u *Unit) CounterCache() *cache.Cache { return u.counterCache }

// MTCache returns the tree metadata cache.
func (u *Unit) MTCache() *cache.Cache { return u.mtCache }

// Writes returns the number of writes fully processed.
func (u *Unit) Writes() uint64 { return u.writes }

// Reads returns the number of reads served.
func (u *Unit) Reads() uint64 { return u.reads }

// RedoReady reports whether a staged op awaits application (used by the
// crash model).
func (u *Unit) RedoReady() bool { return u.redo.ready }

// WrittenLines returns the number of distinct lines ever written.
func (u *Unit) WrittenLines() int { return u.writtenCount }

// lineIdx maps a data address to its index in the written/lineCounter
// tables.
func (u *Unit) lineIdx(addr uint64) uint64 { return (addr - u.lay.DataBase) / 64 }

// metaIdx maps a metadata NVM address (counter block or tree node) to
// its shadow-table index; ok is false outside [CounterBase, MACBase).
func (u *Unit) metaIdx(nvmAddr uint64) (uint64, bool) {
	if nvmAddr < u.lay.CounterBase || nvmAddr >= u.lay.MACBase {
		return 0, false
	}
	return (nvmAddr - u.lay.CounterBase) / 64, true
}

// setNodeRef records the (level, index) identity of a tree node's NVM
// address for victim persistence and shadow replay.
func (u *Unit) setNodeRef(nvmAddr uint64, level int, index uint64) {
	u.nodeByAddr.Set((nvmAddr-u.lay.TreeBase)/64, uint64(level)<<56|index)
}

// nodeRefAt returns the packed (level, index) for a tree-node NVM
// address, or 0 when unknown (levels start at 1, so 0 is never a
// valid reference).
func (u *Unit) nodeRefAt(nvmAddr uint64) uint64 {
	if nvmAddr < u.lay.TreeBase || nvmAddr >= u.lay.MACBase {
		return 0
	}
	return u.nodeByAddr.Get((nvmAddr - u.lay.TreeBase) / 64)
}

// tocLeafMACAddr is where a ToC leaf MAC is persisted.
func (u *Unit) tocLeafMACAddr(leaf uint64) uint64 {
	return u.lay.TreeBase + u.tocTree.RegionBytes() + leaf*crypt.MACSize
}

// touchCounter charges a counter-cache access for addr's counter block
// and handles dirty victim persistence.
func (u *Unit) touchCounter(addr uint64, write bool, cost *Cost) {
	blockAddr := u.counters.BlockNVMAddr(addr)
	if u.policy.CounterWriteThrough {
		// Write-through: the NVM copy is updated at apply time, so the
		// cached line is never dirty and eviction needs no writeback.
		write = false
	}
	hit, victim, evicted := u.counterCache.Access(blockAddr, write)
	if !hit {
		cost.CounterMisses++
	}
	if evicted && victim.Dirty {
		u.persistMetaVictim(victim.Addr, cost)
	}
}

// touchTreeNode charges an MT-cache access for a tree-node NVM address.
func (u *Unit) touchTreeNode(nodeAddr uint64, level int, index uint64, write bool, cost *Cost) {
	u.setNodeRef(nodeAddr, level, index)
	if u.policy.PartialTreePersistence {
		// Persisted levels are written through at apply time; volatile
		// levels are simply dropped on eviction. Either way the cached
		// line is never dirty.
		write = false
	}
	hit, victim, evicted := u.mtCache.Access(nodeAddr, write)
	if !hit {
		cost.TreeMisses++
	}
	if evicted && victim.Dirty {
		u.persistMetaVictim(victim.Addr, cost)
	}
}

// persistMetaVictim writes an evicted dirty metadata block to NVM and
// retires its shadow entry (the NVM copy is now current).
func (u *Unit) persistMetaVictim(nvmAddr uint64, cost *Cost) {
	if pi, ok := u.counters.PageIndexOfNVMAddr(nvmAddr); ok {
		u.counters.PersistByIndex(pi)
	} else if ref := u.nodeRefAt(nvmAddr); ref != 0 {
		if u.bmtTree != nil {
			u.bmtTree.PersistNode(int(ref>>56), ref&(1<<56-1))
		} else {
			u.tocTree.PersistNode(int(ref>>56), ref&(1<<56-1))
		}
	}
	if i, ok := u.metaIdx(nvmAddr); ok {
		e := u.shadow.Ptr(i)
		if e.live {
			e.live = false
			u.shadowCount--
		}
	}
	cost.NVMWrites++
}

// shadowWrite records the current image of a dirty metadata block in the
// Anubis shadow region (one extra NVM write, off the critical path).
func (u *Unit) shadowWrite(nvmAddr uint64, img [64]byte, cost *Cost) {
	if i, ok := u.metaIdx(nvmAddr); ok {
		e := u.shadow.Ptr(i)
		if !e.live {
			e.live = true
			u.shadowCount++
		}
		e.img = img
	}
	cost.ShadowWrites++
	cost.NVMWrites++
}

// PrepareWrite performs Figure 11 step 2 for a write to addr: it computes
// the ciphertext, MAC, ECC, counter update and tree-path update, stages
// everything in the redo-log registers and sets the ready bit. No
// architectural state changes yet.
func (u *Unit) PrepareWrite(addr uint64, plain [64]byte, wpqSlot int) (*Op, Cost) {
	return u.prepareWrite(addr, plain, wpqSlot, false)
}

func (u *Unit) prepareWrite(addr uint64, plain [64]byte, wpqSlot int, deferData bool) (*Op, Cost) {
	if !u.lay.ValidData(addr) {
		panic(fmt.Sprintf("masu: write outside data region: %#x", addr))
	}
	if u.redo.ready {
		panic("masu: PrepareWrite with a staged op pending")
	}
	var cost Cost
	addr &^= uint64(63)

	u.touchCounter(addr, true, &cost)
	prev := u.counters.Preview(addr)
	if deferData && prev.Overflow {
		// Page re-encryption reads sibling lines back from the device, so
		// the pending batch must land first, and the overflowing write
		// itself runs with eager crypto.
		u.FlushWrites()
		deferData = false
	}

	// Stage into the redo registers in place: the op (and the backing
	// arrays of its node-update slices) is reused across writes.
	op := &u.redo.op
	op.Addr = addr
	op.Plain = plain
	op.Counter = prev.Counter
	op.Overflow = prev.Overflow
	op.ECC = u.eng.LineECC(&op.Plain)
	op.WPQSlot = wpqSlot
	op.deferred = deferData
	if deferData {
		// The pad, ciphertext and MAC are produced by the next
		// FlushWrites in one batched crypto pass; the work is charged
		// here, where the serial path would pay it.
		cost.AESOps++
		cost.TotalMACs++
	} else {
		iv := crypt.MakeIV(addr/nvm.PageSize, uint16(addr%nvm.PageSize/64), prev.Counter)
		u.eng.EncryptLineTo(&op.Cipher, &op.Plain, iv)
		cost.AESOps++
		op.MAC = u.eng.LineMAC(&op.Cipher, addr, prev.Counter)
		cost.TotalMACs++
	}

	// New leaf image: the counter block after this increment.
	leaf := u.lay.LeafIndex(addr)
	op.LeafIndex = leaf
	blk := u.counters.BlockByIndex(leaf)
	li := int(addr/64) % ctr.LinesPerBlock
	if prev.Overflow {
		blk.Major++
		for i := range blk.Minors {
			blk.Minors[i] = 0
		}
		blk.Minors[li] = 1
	} else {
		blk.Minors[li]++
	}
	op.LeafBlock = blk
	op.LeafImage = blk.Encode()

	switch u.kind {
	case BMTEager:
		op.BMTNodes, op.TempRoot = u.bmtTree.AppendPathUpdate(op.BMTNodes[:0], leaf, &op.LeafImage)
		cost.TotalMACs += len(op.BMTNodes)
	case ToCLazy:
		op.ToCNodes, op.ToCLeafMAC, op.ToCRootVer = u.tocTree.AppendUpdate(op.ToCNodes[:0], leaf, &op.LeafImage)
		cost.TotalMACs += len(op.ToCNodes) + 1
	}
	cost.SerialMACs = u.serialMACsFor(leaf)
	u.prevLeaf, u.havePrev = leaf, true

	u.redo.ready = true
	return op, cost
}

// ApplyWrite performs Figure 11 step 3: metadata caches, NVM and shadow
// region are updated from the staged op; the redo ready bit clears after
// the caller also clears the WPQ entry (step 4 is the controller's).
func (u *Unit) ApplyWrite(op *Op) Cost {
	var cost Cost

	// Counter store: install the staged block image (idempotent, so redo
	// replay after a crash is safe). Overflow forces a persist; a
	// write-through policy forces one on every write and skips the
	// shadow entry (the NVM copy IS the recovery source).
	u.counters.ApplyBlock(op.LeafIndex, &op.LeafBlock, op.Overflow || u.policy.CounterWriteThrough)
	if u.policy.CounterWriteThrough {
		if u.policy.CoalesceCounterWrites && u.haveWTLeaf && u.lastWTLeaf == op.LeafIndex {
			u.coalescedCtr++ // merged with the in-flight write to the same block
		} else {
			cost.NVMWrites++
		}
		u.lastWTLeaf, u.haveWTLeaf = op.LeafIndex, true
	} else {
		u.shadowWrite(u.counters.BlockNVMAddr(op.Addr), op.LeafImage, &cost)
	}

	// Integrity tree.
	switch u.kind {
	case BMTEager:
		u.bmtTree.InstallPathUpdate(op.BMTNodes, op.TempRoot, bmt.Eager)
		for _, up := range op.BMTNodes {
			nodeAddr := u.bmtTree.NodeNVMAddr(up.Level, up.Index)
			u.touchTreeNode(nodeAddr, up.Level, up.Index, true, &cost)
			if u.policy.PartialTreePersistence {
				// Triad-NVM: write the first N levels through to NVM;
				// higher levels stay volatile (rebuilt at recovery).
				if up.Level <= u.persistLevels() {
					u.bmtTree.PersistNode(up.Level, up.Index)
					cost.NVMWrites++
				}
			} else {
				u.shadowWrite(nodeAddr, up.Image, &cost)
			}
		}
	case ToCLazy:
		u.tocTree.InstallUpdate(op.ToCNodes, op.ToCRootVer)
		for _, up := range op.ToCNodes {
			nodeAddr := u.tocTree.NodeNVMAddr(up.Level, up.Index)
			u.touchTreeNode(nodeAddr, up.Level, up.Index, true, &cost)
			u.shadowWrite(nodeAddr, up.Node.Encode(), &cost)
		}
		var macLine [64]byte
		copy(macLine[:8], op.ToCLeafMAC[:])
		u.dev.Write(u.tocLeafMACAddr(op.LeafIndex), macLine[:8])
		cost.NVMWrites++
	}

	// Data, MAC and ECC to NVM. A deferred op queues the data and MAC
	// lines for the batched flush (their bytes don't exist yet); the
	// regions are disjoint from every eager write above, and flushes are
	// ordered before any device read of the data/MAC regions, so the
	// per-region program order the device sees is unchanged.
	if op.deferred {
		u.pend = append(u.pend, pendingLine{addr: op.Addr, counter: op.Counter, plain: op.Plain})
	} else {
		u.dev.WriteLine(op.Addr, op.Cipher)
		var macBytes [8]byte
		copy(macBytes[:], op.MAC[:])
		u.dev.Write(u.lay.LineMACAddr(op.Addr), macBytes[:])
	}
	cost.NVMWrites++
	var eccBytes [4]byte
	binary.LittleEndian.PutUint32(eccBytes[:], op.ECC)
	u.dev.Write(u.lay.ECCAddr(op.Addr), eccBytes[:])
	cost.NVMWrites++ // MAC+ECC share a metadata write slot in the model

	wi := u.lineIdx(op.Addr)
	wp := u.written.Ptr(wi)
	if !*wp {
		*wp = true
		u.writtenCount++
	}
	u.lineCounter.Set(wi, op.Counter)
	u.writes++

	if op.Overflow {
		cost.Add(u.reencryptPage(op.Addr))
	}

	// Clear only the ready bit: the staged op bytes remain valid for a
	// caller still holding the *Op, and the slices' backing arrays are
	// reused by the next PrepareWrite.
	u.redo.ready = false
	return cost
}

// ProcessWrite runs the full prepare+apply pipeline (the common case when
// no crash interrupts the Ma-SU).
func (u *Unit) ProcessWrite(addr uint64, plain [64]byte, wpqSlot int) Cost {
	op, cost := u.PrepareWrite(addr, plain, wpqSlot)
	cost2 := u.ApplyWrite(op)
	cost.Add(cost2)
	if u.onWrite != nil {
		u.onWrite(addr&^uint64(63), cost)
	}
	return cost
}

// ProcessWriteDeferred is ProcessWrite with the data-line crypto (pad,
// ciphertext, MAC) queued for the next FlushWrites instead of computed
// inline. Every architectural effect — counters, tree, caches, shadow
// region, cost accounting — happens now and identically; only the data
// and MAC device bytes trail until the flush. The parallel-DES shadow
// stage uses this to amortize its crypto across one pipeline batch;
// callers must FlushWrites before any read of the data/MAC regions
// (ReadLine and CheckLine self-flush, overflow re-encryption flushes
// internally).
func (u *Unit) ProcessWriteDeferred(addr uint64, plain [64]byte, wpqSlot int) Cost {
	op, cost := u.prepareWrite(addr, plain, wpqSlot, true)
	cost2 := u.ApplyWrite(op)
	cost.Add(cost2)
	if u.onWrite != nil {
		u.onWrite(addr&^uint64(63), cost)
	}
	return cost
}

// FlushWrites materializes every deferred data-line write: one PadBatch
// for the pads, an XOR per line, one MACBatch for the data MACs, then
// the device writes in submission order. Byte-identical to the eager
// path (EncryptLineTo is pad+XOR) and a no-op when nothing is pending.
func (u *Unit) FlushWrites() {
	n := len(u.pend)
	if n == 0 {
		return
	}
	// A line rewritten within one batch needs only its final value
	// encrypted and MACed: the data and MAC device regions are last-wins,
	// and any read of a pending line flushes the queue first, so no
	// intermediate image is observable. Compact to last-wins per address
	// (a superseded entry is overwritten in place, keeping its slot).
	if n > 1 {
		if u.pendLast == nil {
			u.pendLast = make(map[uint64]int, n)
		}
		kept := 0
		for i := range u.pend {
			p := u.pend[i]
			if j, ok := u.pendLast[p.addr]; ok {
				u.pend[j] = p
				continue
			}
			u.pendLast[p.addr] = kept
			u.pend[kept] = p
			kept++
		}
		for a := range u.pendLast {
			delete(u.pendLast, a)
		}
		u.pend = u.pend[:kept]
		n = kept
	}
	if cap(u.pendIVs) < n {
		u.pendIVs = make([]crypt.IV, n)
		u.pendPads = make([]crypt.Pad, n)
		u.pendMACs = make([]crypt.MAC, n)
		u.pendReqs = make([]crypt.MACReq, n)
	}
	ivs, pads := u.pendIVs[:n], u.pendPads[:n]
	macs, reqs := u.pendMACs[:n], u.pendReqs[:n]
	for i := range u.pend {
		p := &u.pend[i]
		ivs[i] = crypt.MakeIV(p.addr/nvm.PageSize, uint16(p.addr%nvm.PageSize/64), p.counter)
	}
	u.eng.PadBatch(pads, ivs)
	for i := range u.pend {
		p := &u.pend[i]
		crypt.XOR(&p.ct, &p.plain, &pads[i])
		reqs[i] = crypt.MACReq{CT: &p.ct, Addr: p.addr, Counter: p.counter}
	}
	u.eng.MACBatch(macs, reqs)
	for i := range u.pend {
		p := &u.pend[i]
		u.dev.WriteLine(p.addr, p.ct)
		var macBytes [8]byte
		copy(macBytes[:], macs[i][:])
		u.dev.Write(u.lay.LineMACAddr(p.addr), macBytes[:])
	}
	u.pend = u.pend[:0]
}

// reencryptPage re-encrypts every line of addr's page after a minor-
// counter overflow gave the whole page fresh counters. Previously
// written lines are decrypted with the counter their ciphertext was
// produced under and re-encrypted under the reset counter; never-written
// lines get their defined zero content encrypted too, because the reset
// leaves them with a nonzero counter and the invariant "counter != 0
// implies valid ciphertext+MAC" must hold for the read path and for
// recovery audits.
func (u *Unit) reencryptPage(addr uint64) Cost {
	var cost Cost
	page := addr / nvm.PageSize * nvm.PageSize
	for a := page; a < page+nvm.PageSize; a += 64 {
		if a == addr {
			continue
		}
		newCtr := u.counters.Counter(a)
		ai := u.lineIdx(a)
		var plain [64]byte
		if wp := u.written.Ptr(ai); *wp {
			oldCtr := u.lineCounter.Get(ai)
			ct := u.dev.ReadLine(a)
			ivOld := crypt.MakeIV(a/nvm.PageSize, uint16(a%nvm.PageSize/64), oldCtr)
			u.eng.DecryptLineTo(&plain, &ct, ivOld)
			cost.AESOps++
		} else {
			*wp = true
			u.writtenCount++
			var eccBytes [4]byte
			binary.LittleEndian.PutUint32(eccBytes[:], u.eng.LineECC(&plain))
			u.dev.Write(u.lay.ECCAddr(a), eccBytes[:])
		}
		ivNew := crypt.MakeIV(a/nvm.PageSize, uint16(a%nvm.PageSize/64), newCtr)
		var ct2 [64]byte
		u.eng.EncryptLineTo(&ct2, &plain, ivNew)
		u.dev.WriteLine(a, ct2)
		mac := u.eng.LineMAC(&ct2, a, newCtr)
		var macBytes [8]byte
		copy(macBytes[:], mac[:])
		u.dev.Write(u.lay.LineMACAddr(a), macBytes[:])
		u.lineCounter.Set(ai, newCtr)
		cost.ReencryptedLines++
		cost.AESOps++
		cost.TotalMACs++
		cost.NVMWrites += 2
	}
	return cost
}
