package masu

// Model check: drive the Ma-SU with long randomized operation sequences
// — writes, verified reads, crashes with both recovery paths, audits —
// against a plain map oracle. Every read must return the oracle's value;
// every audit and recovery must pass; nothing may be lost at any crash
// point. This hunts interaction bugs (overflow x crash x recovery x
// cache eviction) that directed tests miss.

import (
	"math/rand"
	"testing"
)

type modelChecker struct {
	t      *testing.T
	u      *Unit
	oracle map[uint64][64]byte
	rng    *rand.Rand
	addrs  []uint64
}

func newModelChecker(t *testing.T, kind TreeKind, seed int64, smallCaches bool) *modelChecker {
	var u *Unit
	if smallCaches {
		u, _ = newSmallCacheUnit(kind)
	} else {
		u, _, _ = newUnit(kind)
	}
	// A small address pool with several lines per page plus distinct
	// pages: exercises counter-block sharing and overflow clustering.
	var addrs []uint64
	for p := uint64(0); p < 4; p++ {
		for l := uint64(0); l < 6; l++ {
			addrs = append(addrs, 0x1000+p*4096+l*64)
		}
	}
	return &modelChecker{
		t:      t,
		u:      u,
		oracle: make(map[uint64][64]byte),
		rng:    rand.New(rand.NewSource(seed)),
		addrs:  addrs,
	}
}

func (m *modelChecker) randAddr() uint64 { return m.addrs[m.rng.Intn(len(m.addrs))] }

func (m *modelChecker) randLine() [64]byte {
	var l [64]byte
	m.rng.Read(l[:])
	return l
}

func (m *modelChecker) step(i int) {
	switch op := m.rng.Intn(100); {
	case op < 55: // write
		addr := m.randAddr()
		val := m.randLine()
		m.u.ProcessWrite(addr, val, -1)
		m.oracle[addr] = val
	case op < 85: // verified read
		addr := m.randAddr()
		got, _, err := m.u.ReadLine(addr)
		if err != nil {
			m.t.Fatalf("step %d: read %#x: %v", i, addr, err)
		}
		want := m.oracle[addr] // zero value for never-written
		if got != want {
			m.t.Fatalf("step %d: read %#x diverged from oracle", i, addr)
		}
	case op < 93: // crash + Anubis recovery
		m.u.CrashVolatile()
		if _, err := m.u.RecoverAnubis(); err != nil {
			m.t.Fatalf("step %d: Anubis recovery: %v", i, err)
		}
	case op < 97: // crash + Osiris recovery (BMT only)
		if m.u.Kind() != BMTEager {
			return
		}
		m.u.CrashVolatile()
		if _, err := m.u.RecoverOsiris(); err != nil {
			m.t.Fatalf("step %d: Osiris recovery: %v", i, err)
		}
	default: // audit scrub
		if _, err := m.u.Audit(); err != nil {
			m.t.Fatalf("step %d: audit: %v", i, err)
		}
	}
}

func (m *modelChecker) finish() {
	if _, err := m.u.Audit(); err != nil {
		m.t.Fatalf("final audit: %v", err)
	}
	for addr, want := range m.oracle {
		got, _, err := m.u.ReadLine(addr)
		if err != nil || got != want {
			m.t.Fatalf("final state: %#x diverged (%v)", addr, err)
		}
	}
}

func TestModelCheckBMT(t *testing.T) {
	m := newModelChecker(t, BMTEager, 1, false)
	for i := 0; i < 4000; i++ {
		m.step(i)
	}
	m.finish()
}

func TestModelCheckToC(t *testing.T) {
	m := newModelChecker(t, ToCLazy, 2, false)
	for i := 0; i < 4000; i++ {
		m.step(i)
	}
	m.finish()
}

func TestModelCheckTinyCaches(t *testing.T) {
	// Tiny metadata caches force constant evictions (lazy persistence)
	// under the same random mix.
	m := newModelChecker(t, BMTEager, 3, true)
	for i := 0; i < 3000; i++ {
		m.step(i)
	}
	m.finish()
}

func TestModelCheckManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("long model check")
	}
	for seed := int64(10); seed < 18; seed++ {
		m := newModelChecker(t, BMTEager, seed, seed%2 == 0)
		for i := 0; i < 1200; i++ {
			m.step(i)
		}
		m.finish()
	}
}
