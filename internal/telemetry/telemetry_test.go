package telemetry

import (
	"testing"

	"dolos/internal/sim"
)

func TestNilProbeIsSafeAndFree(t *testing.T) {
	var p *Probe
	if p.Enabled() {
		t.Fatal("nil probe reports enabled")
	}
	// Every method must be a no-op on the nil receiver.
	tr := p.Track("cpu")
	p.Span(tr, "s", 0, 10)
	p.Instant(tr, "i")
	p.InstantAt(tr, "i", 5)
	p.Counter(tr, "c", 1)
	p.CounterAt(tr, "c", 5, 1)
	p.SetEventLimit(10)
	if p.Len() != 0 || p.Dropped() != 0 || p.Events() != nil || p.TrackNames() != nil || p.SpanNames() != nil {
		t.Fatal("nil probe retained state")
	}
	if r := p.Registry(); r != nil {
		t.Fatalf("nil probe registry = %v", r)
	}
	// Nil registry and nil metrics are equally inert.
	var reg *Registry
	reg.Counter("x").Inc()
	reg.Gauge("g").Set(3)
	reg.CycleHist("h").Observe(7)
	if reg.Counter("x").Value() != 0 || reg.Gauge("g").Value() != 0 || reg.CycleHist("h").Stats().Count != 0 {
		t.Fatal("nil registry retained state")
	}
	if reg.CounterNames() != nil || reg.GaugeNames() != nil || reg.HistNames() != nil {
		t.Fatal("nil registry returned names")
	}

	// The zero-overhead-when-disabled contract: no allocations on the
	// disabled hot path.
	allocs := testing.AllocsPerRun(1000, func() {
		p.Span(tr, "s", 0, 10)
		p.Counter(tr, "occ", 3)
		reg.Counter("x").Inc()
	})
	if allocs != 0 {
		t.Fatalf("nil probe allocates: %v allocs/op", allocs)
	}
}

func TestProbeRecordsEvents(t *testing.T) {
	var now sim.Cycle
	p := NewProbe(func() sim.Cycle { return now })
	cpu := p.Track("cpu")
	wpq := p.Track("wpq")
	if p.Track("cpu") != cpu {
		t.Fatal("re-registering a track changed its ID")
	}

	p.Span(cpu, "fence-stall", 10, 50)
	now = 60
	p.Instant(wpq, "retry")
	p.Counter(wpq, "occupancy", 4)

	evs := p.Events()
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	if evs[0].Kind != SpanEvent || evs[0].Start != 10 || evs[0].End != 50 || evs[0].Track != cpu {
		t.Fatalf("span event = %+v", evs[0])
	}
	if evs[1].Kind != InstantEvent || evs[1].Start != 60 {
		t.Fatalf("instant event = %+v", evs[1])
	}
	if evs[2].Kind != CounterEvent || evs[2].Value != 4 || evs[2].Track != wpq {
		t.Fatalf("counter event = %+v", evs[2])
	}
	if names := p.TrackNames(); len(names) != 2 || names[0] != "cpu" || names[1] != "wpq" {
		t.Fatalf("tracks = %v", names)
	}
	if sn := p.SpanNames(); len(sn) != 1 || sn[0] != "fence-stall" {
		t.Fatalf("span names = %v", sn)
	}
}

func TestSpanSwapsInvertedBounds(t *testing.T) {
	p := NewProbe(func() sim.Cycle { return 0 })
	tr := p.Track("t")
	p.Span(tr, "s", 50, 10)
	ev := p.Events()[0]
	if ev.Start != 10 || ev.End != 50 {
		t.Fatalf("inverted span not normalized: %+v", ev)
	}
}

func TestEventLimit(t *testing.T) {
	p := NewProbe(func() sim.Cycle { return 0 })
	tr := p.Track("t")
	p.SetEventLimit(3)
	for i := 0; i < 10; i++ {
		p.InstantAt(tr, "i", sim.Cycle(i))
	}
	if p.Len() != 3 {
		t.Fatalf("retained = %d, want 3", p.Len())
	}
	if p.Dropped() != 7 {
		t.Fatalf("dropped = %d, want 7", p.Dropped())
	}
}
