package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"

	"dolos/internal/stats"
)

// TestMetricsJSONRoundTrip verifies the JSON encoding preserves every
// counter and histogram name and value from a stats.Set, through encode
// and decode.
func TestMetricsJSONRoundTrip(t *testing.T) {
	set := stats.NewSet()
	set.Counter("wpq.write_requests").Add(9180)
	set.Counter("wpq.retry_events").Add(1729)
	h := set.Histogram("wpq.interarrival_cycles")
	h.Observe(100)
	h.Observe(200)
	h.Observe(900)

	reg := NewRegistry()
	reg.Counter("misu.protects").Add(42)
	reg.Gauge("wpq.occupancy").Set(5)
	reg.CycleHist("ctrl.drain_latency_cycles").Observe(2400)

	snap := Snapshot(set, reg)

	var buf bytes.Buffer
	if err := WriteJSON(&buf, snap); err != nil {
		t.Fatal(err)
	}
	var back MetricsSnapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}

	wantCounters := map[string]uint64{
		"wpq.write_requests": 9180,
		"wpq.retry_events":   1729,
		"misu.protects":      42,
	}
	for name, want := range wantCounters {
		if got, ok := back.Counters[name]; !ok || got != want {
			t.Fatalf("counter %q = %d (present %v), want %d", name, got, ok, want)
		}
	}
	if len(back.Counters) != len(wantCounters) {
		t.Fatalf("counters = %v", back.Counters)
	}
	if got := back.Gauges["wpq.occupancy"]; got != 5 {
		t.Fatalf("gauge = %v, want 5", got)
	}
	ia, ok := back.Histograms["wpq.interarrival_cycles"]
	if !ok {
		t.Fatalf("histogram name lost: %v", back.Histograms)
	}
	if ia.Count != 3 || ia.Sum != 1200 || ia.Mean != 400 || ia.Min != 100 || ia.Max != 900 {
		t.Fatalf("histogram stats = %+v", ia)
	}
	if dl := back.Histograms["ctrl.drain_latency_cycles"]; dl.Count != 1 || dl.Mean != 2400 {
		t.Fatalf("registry histogram = %+v", dl)
	}
}

func TestSnapshotNilSources(t *testing.T) {
	snap := Snapshot(nil, nil)
	if len(snap.Counters) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("nil-source snapshot not empty: %+v", snap)
	}
}

func TestRunRecordEncodes(t *testing.T) {
	rec := RunRecord{
		Scheme:   "Dolos-Partial-WPQ",
		Workload: "Hashmap",
		Cycles:   4490226,
		Metrics:  NewMetricsSnapshot(),
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, rec); err != nil {
		t.Fatal(err)
	}
	var back RunRecord
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.Scheme != rec.Scheme || back.Workload != rec.Workload || back.Cycles != rec.Cycles {
		t.Fatalf("round trip lost fields: %+v", back)
	}
}
