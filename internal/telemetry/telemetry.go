// Package telemetry is the observability layer of the simulator: a
// pipeline-tracing probe, a metrics registry layered over internal/stats,
// and exporters for Chrome/Perfetto trace-event JSON and flat metrics
// JSON.
//
// The subsystem's contract is zero overhead when disabled and zero
// perturbation always:
//
//   - Disabled means a nil *Probe. Every Probe and Registry method is
//     nil-receiver safe and returns immediately, so instrumented code
//     holds a possibly-nil probe and pays one predictable branch per
//     probe site — no allocations, no interface conversions, no map
//     lookups on the hot path. Components that need per-event metrics
//     cache *Counter/*Gauge/*CycleHist pointers at wiring time, so the
//     disabled path never touches the registry at all.
//   - Probes are purely observational. They never schedule simulation
//     events, never change a latency, and never mutate model state, so
//     the cycle-level timing of an instrumented run is bit-identical to
//     an uninstrumented one. This is checked by tests that run the same
//     trace with and without a probe and compare final cycle counts.
//
// Spans, instants and counter samples are recorded against named tracks
// (one per hardware component: the CPU front-end, the WPQ, the Mi-SU
// engine, the Ma-SU pipeline, the NVM banks) and exported with
// WriteChromeTrace for ui.perfetto.dev or chrome://tracing.
package telemetry

import (
	"sort"
	"sync"

	"dolos/internal/sim"
)

// TrackID identifies a registered track. The zero value is the first
// registered track; Track on a nil probe returns 0, which is harmless
// because every event-recording method on a nil probe is a no-op.
type TrackID int32

// EventKind discriminates the recorded event types.
type EventKind uint8

const (
	// SpanEvent is a duration on a track (Start..End).
	SpanEvent EventKind = iota
	// InstantEvent is a point-in-time marker.
	InstantEvent
	// CounterEvent is a sample of a time-varying value (e.g. WPQ
	// occupancy); exported as a Chrome counter track.
	CounterEvent
)

// Event is one recorded trace event.
type Event struct {
	Track TrackID
	Kind  EventKind
	Name  string
	// Start and End bound a SpanEvent; for instants and counter samples
	// Start is the timestamp and End equals Start.
	Start, End sim.Cycle
	// Value carries the sample for CounterEvent.
	Value float64
}

// Probe records trace events against component tracks. A nil Probe is
// the disabled state: all methods are safe and free to call. Construct
// with NewProbe; the probe is safe for concurrent use (the registry
// contract extends to the event buffer).
type Probe struct {
	now func() sim.Cycle

	mu      sync.Mutex
	tracks  []string
	trackID map[string]TrackID
	events  []Event
	limit   int
	dropped uint64

	reg *Registry
}

// NewProbe returns an enabled probe stamping times from now (typically
// (*sim.Engine).Now). A nil now panics at first use of Instant/Counter.
func NewProbe(now func() sim.Cycle) *Probe {
	return &Probe{
		now:     now,
		trackID: make(map[string]TrackID),
		reg:     NewRegistry(),
	}
}

// Enabled reports whether the probe records anything.
func (p *Probe) Enabled() bool { return p != nil }

// SetEventLimit caps the number of retained events (0 = unlimited).
// Events past the cap are counted in Dropped instead of retained, so a
// long run cannot exhaust memory.
func (p *Probe) SetEventLimit(n int) {
	if p == nil {
		return
	}
	p.mu.Lock()
	p.limit = n
	p.mu.Unlock()
}

// Dropped returns how many events were discarded by the event limit.
func (p *Probe) Dropped() uint64 {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.dropped
}

// Registry returns the probe's metrics registry (nil when disabled; the
// returned nil Registry is itself safe to use).
func (p *Probe) Registry() *Registry {
	if p == nil {
		return nil
	}
	return p.reg
}

// Track registers (or finds) a named track and returns its ID. Tracks
// export in registration order.
func (p *Probe) Track(name string) TrackID {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if id, ok := p.trackID[name]; ok {
		return id
	}
	id := TrackID(len(p.tracks))
	p.tracks = append(p.tracks, name)
	p.trackID[name] = id
	return id
}

// TrackNames returns the registered track names in registration order.
func (p *Probe) TrackNames() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.tracks))
	copy(out, p.tracks)
	return out
}

func (p *Probe) record(e Event) {
	p.mu.Lock()
	if p.limit > 0 && len(p.events) >= p.limit {
		p.dropped++
	} else {
		p.events = append(p.events, e)
	}
	p.mu.Unlock()
}

// Span records a duration [start, end] on a track.
func (p *Probe) Span(track TrackID, name string, start, end sim.Cycle) {
	if p == nil {
		return
	}
	if end < start {
		start, end = end, start
	}
	p.record(Event{Track: track, Kind: SpanEvent, Name: name, Start: start, End: end})
}

// Instant records a point marker stamped with the probe clock.
func (p *Probe) Instant(track TrackID, name string) {
	if p == nil {
		return
	}
	p.InstantAt(track, name, p.now())
}

// InstantAt records a point marker at an explicit cycle.
func (p *Probe) InstantAt(track TrackID, name string, at sim.Cycle) {
	if p == nil {
		return
	}
	p.record(Event{Track: track, Kind: InstantEvent, Name: name, Start: at, End: at})
}

// Counter records a sample of a time-varying value, stamped with the
// probe clock. Samples with one (track, name) pair form one counter
// track in the exported trace.
func (p *Probe) Counter(track TrackID, name string, value float64) {
	if p == nil {
		return
	}
	p.CounterAt(track, name, p.now(), value)
}

// CounterAt records a counter sample at an explicit cycle.
func (p *Probe) CounterAt(track TrackID, name string, at sim.Cycle, value float64) {
	if p == nil {
		return
	}
	p.record(Event{Track: track, Kind: CounterEvent, Name: name, Start: at, End: at, Value: value})
}

// Events returns a snapshot of the recorded events in recording order.
func (p *Probe) Events() []Event {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]Event, len(p.events))
	copy(out, p.events)
	return out
}

// Len returns the number of retained events.
func (p *Probe) Len() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.events)
}

// SpanNames returns the distinct span names recorded, sorted — a
// convenience for tests and trace summaries.
func (p *Probe) SpanNames() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	seen := make(map[string]bool)
	for i := range p.events {
		if p.events[i].Kind == SpanEvent {
			seen[p.events[i].Name] = true
		}
	}
	out := make([]string, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
