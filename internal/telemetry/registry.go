package telemetry

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"dolos/internal/stats"
)

// Counter is a monotonically increasing metric. Unlike stats.Counter it
// is atomic (the registry contract is race-clean) and nil-safe, so
// instrumented code can cache a possibly-nil pointer and call it
// unconditionally.
type Counter struct {
	name string
	v    atomic.Uint64
}

// Name returns the counter's registered name ("" on nil).
func (c *Counter) Name() string {
	if c == nil {
		return ""
	}
	return c.name
}

// Add increments the counter by delta.
func (c *Counter) Add(delta uint64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a last-value metric (e.g. current WPQ occupancy).
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Name returns the gauge's registered name ("" on nil).
func (g *Gauge) Name() string {
	if g == nil {
		return ""
	}
	return g.name
}

// Set stores the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Value returns the last stored value (0 on nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// CycleHist accumulates cycle-valued samples. It layers a mutex over a
// stats.Histogram so concurrent observers are race-clean, and is
// nil-safe like the other registry types.
type CycleHist struct {
	name string
	mu   sync.Mutex
	h    *stats.Histogram
}

// Name returns the histogram's registered name ("" on nil).
func (h *CycleHist) Name() string {
	if h == nil {
		return ""
	}
	return h.name
}

// Observe records one sample.
func (h *CycleHist) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.h.Observe(v)
	h.mu.Unlock()
}

// Stats returns the accumulated histogram statistics.
func (h *CycleHist) Stats() HistogramStats {
	if h == nil {
		return HistogramStats{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return histStats(h.h)
}

// Registry is a named metrics registry: counters, gauges and cycle
// histograms, created on first use. It is safe for concurrent use and,
// like the Probe, fully nil-safe: methods on a nil registry return nil
// metrics whose own methods are no-ops.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*CycleHist
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*CycleHist),
	}
}

// Counter returns the named counter, creating it if needed.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it if needed.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// CycleHist returns the named histogram, creating it if needed.
func (r *Registry) CycleHist(name string) *CycleHist {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &CycleHist{name: name, h: stats.NewHistogram(name)}
		r.hists[name] = h
	}
	return h
}

// CounterNames returns the registered counter names, sorted.
func (r *Registry) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeysCounter(r.counters)
}

// EachCounter calls f with every registered counter's name and current
// value, in sorted name order. The snapshot of names is taken under
// the registry lock but f runs outside it, so f may touch the registry.
// Used by consistency sweeps (the chaos suite reconciles the fault
// injector's own counts against every bound fault_* counter).
func (r *Registry) EachCounter(f func(name string, value uint64)) {
	if r == nil {
		return
	}
	r.mu.Lock()
	counters := make([]*Counter, 0, len(r.counters))
	for _, c := range r.counters {
		counters = append(counters, c)
	}
	r.mu.Unlock()
	sort.Slice(counters, func(i, j int) bool { return counters[i].name < counters[j].name })
	for _, c := range counters {
		f(c.name, c.Value())
	}
}

// GaugeNames returns the registered gauge names, sorted.
func (r *Registry) GaugeNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeysGauge(r.gauges)
}

// HistNames returns the registered histogram names, sorted.
func (r *Registry) HistNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return sortedKeysHist(r.hists)
}

func sortedKeysCounter(m map[string]*Counter) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysGauge(m map[string]*Gauge) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeysHist(m map[string]*CycleHist) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
