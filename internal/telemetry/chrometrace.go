package telemetry

import (
	"fmt"
	"io"

	"dolos/internal/sim"
)

// cyclesPerMicrosecond converts the 4 GHz cycle clock to the microsecond
// timestamps the Chrome trace-event format uses.
const cyclesPerMicrosecond = 1000 * sim.CyclesPerNanosecond

// chromeEvent is one entry of the Chrome trace-event schema
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU).
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Ts    float64        `json:"ts"`
	Dur   float64        `json:"dur,omitempty"`
	Cat   string         `json:"cat,omitempty"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object container format, which Perfetto and
// chrome://tracing both accept.
type chromeTrace struct {
	DisplayTimeUnit string        `json:"displayTimeUnit"`
	TraceEvents     []chromeEvent `json:"traceEvents"`
}

func cyclesToMicros(c sim.Cycle) float64 {
	return float64(c) / cyclesPerMicrosecond
}

// WriteChromeTrace exports the probe's recorded events as Chrome
// trace-event JSON, loadable in ui.perfetto.dev or chrome://tracing.
// Each registered track becomes one named thread of a single "dolos"
// process: spans render as slices, instants as markers, and counter
// samples as counter tracks named "<track>:<name>". A nil probe exports
// an empty (but valid) trace.
func WriteChromeTrace(w io.Writer, p *Probe) error {
	tracks := p.TrackNames()
	events := p.Events()

	out := chromeTrace{
		DisplayTimeUnit: "ns",
		TraceEvents:     make([]chromeEvent, 0, len(events)+2*len(tracks)+1),
	}
	const pid = 1
	out.TraceEvents = append(out.TraceEvents, chromeEvent{
		Name: "process_name", Phase: "M", PID: pid, TID: 0,
		Args: map[string]any{"name": "dolos"},
	})
	for i, name := range tracks {
		out.TraceEvents = append(out.TraceEvents,
			chromeEvent{
				Name: "thread_name", Phase: "M", PID: pid, TID: i + 1,
				Args: map[string]any{"name": name},
			},
			chromeEvent{
				Name: "thread_sort_index", Phase: "M", PID: pid, TID: i + 1,
				Args: map[string]any{"sort_index": i},
			})
	}

	for i := range events {
		ev := &events[i]
		tid := int(ev.Track) + 1
		switch ev.Kind {
		case SpanEvent:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: ev.Name, Phase: "X", PID: pid, TID: tid, Cat: "sim",
				Ts:  cyclesToMicros(ev.Start),
				Dur: cyclesToMicros(ev.End - ev.Start),
			})
		case InstantEvent:
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: ev.Name, Phase: "i", PID: pid, TID: tid, Cat: "sim",
				Ts: cyclesToMicros(ev.Start), Scope: "t",
			})
		case CounterEvent:
			track := "?"
			if int(ev.Track) < len(tracks) {
				track = tracks[ev.Track]
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: fmt.Sprintf("%s:%s", track, ev.Name), Phase: "C", PID: pid, TID: tid,
				Ts:   cyclesToMicros(ev.Start),
				Args: map[string]any{"value": ev.Value},
			})
		}
	}
	return WriteJSON(w, out)
}
