package telemetry

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders a metrics snapshot in the Prometheus text
// exposition format (version 0.0.4): one HELP/TYPE/sample block per
// metric, counters first, then gauges, then histograms, each section in
// sorted name order so the output is deterministic and diffable.
//
// Counters and gauges map directly. A histogram is rendered as a
// summary (name_count / name_sum — the simulator's histograms track
// moments, not buckets) followed by two derived gauges, name_min and
// name_max, which carry the extremes Prometheus summaries cannot.
//
// Dotted simulator metric names ("wpq.coalesce.hits") are sanitized to
// the exposition charset ([a-zA-Z0-9_:], no leading digit); the HELP
// line preserves the original spelling so dashboards can be traced back
// to the in-process name.
func WritePrometheus(w io.Writer, snap MetricsSnapshot) error {
	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if err := writeBlock(w, pn, n, "counter",
			sample{pn, strconv.FormatUint(snap.Counters[n], 10)}); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pn := promName(n)
		if err := writeBlock(w, pn, n, "gauge",
			sample{pn, promFloat(snap.Gauges[n])}); err != nil {
			return err
		}
	}

	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		pn := promName(n)
		if err := writeBlock(w, pn, n, "summary",
			sample{pn + "_count", strconv.FormatUint(h.Count, 10)},
			sample{pn + "_sum", promFloat(h.Sum)}); err != nil {
			return err
		}
		if err := writeBlock(w, pn+"_min", n+" minimum", "gauge",
			sample{pn + "_min", promFloat(h.Min)}); err != nil {
			return err
		}
		if err := writeBlock(w, pn+"_max", n+" maximum", "gauge",
			sample{pn + "_max", promFloat(h.Max)}); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders the registry in the Prometheus text
// exposition format. It is nil-safe like every registry method: a nil
// registry renders as empty output.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheus(w, Snapshot(nil, r))
}

// sample is one "name value" exposition line of a metric block.
type sample struct {
	name  string
	value string
}

func writeBlock(w io.Writer, name, help, typ string, samples ...sample) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
		name, escapeHelp(help), name, typ); err != nil {
		return err
	}
	for _, s := range samples {
		if _, err := fmt.Fprintf(w, "%s %s\n", s.name, s.value); err != nil {
			return err
		}
	}
	return nil
}

// promName maps an in-process metric name onto the exposition charset:
// every rune outside [a-zA-Z0-9_:] becomes '_', and a leading digit is
// prefixed with '_'.
func promName(name string) string {
	var b strings.Builder
	for i, r := range name {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9')
		if !ok {
			b.WriteByte('_')
			continue
		}
		if i == 0 && r >= '0' && r <= '9' {
			b.WriteByte('_')
		}
		b.WriteRune(r)
	}
	return b.String()
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// promFloat formats a float the way Prometheus parsers expect,
// including the +Inf/-Inf/NaN spellings.
func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
