package telemetry

import (
	"sync"
	"testing"

	"dolos/internal/sim"
)

func TestRegistryMetrics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("wpq.retries")
	c.Inc()
	c.Add(4)
	if got := r.Counter("wpq.retries").Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if c2 := r.Counter("wpq.retries"); c2 != c {
		t.Fatal("second lookup returned a different counter")
	}

	g := r.Gauge("wpq.occupancy")
	g.Set(7.5)
	if got := r.Gauge("wpq.occupancy").Value(); got != 7.5 {
		t.Fatalf("gauge = %v, want 7.5", got)
	}

	h := r.CycleHist("drain.latency")
	h.Observe(100)
	h.Observe(300)
	hs := h.Stats()
	if hs.Count != 2 || hs.Mean != 200 || hs.Min != 100 || hs.Max != 300 {
		t.Fatalf("hist stats = %+v", hs)
	}

	if n := r.CounterNames(); len(n) != 1 || n[0] != "wpq.retries" {
		t.Fatalf("counter names = %v", n)
	}
	if n := r.GaugeNames(); len(n) != 1 || n[0] != "wpq.occupancy" {
		t.Fatalf("gauge names = %v", n)
	}
	if n := r.HistNames(); len(n) != 1 || n[0] != "drain.latency" {
		t.Fatalf("hist names = %v", n)
	}
	if c.Name() != "wpq.retries" || g.Name() != "wpq.occupancy" || h.Name() != "drain.latency" {
		t.Fatal("metric names lost")
	}
}

func TestRegistryEachCounter(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.second").Add(2)
	r.Counter("a.first").Add(1)
	r.Counter("c.third").Add(3)

	var names []string
	var sum uint64
	r.EachCounter(func(name string, v uint64) {
		names = append(names, name)
		sum += v
		// Touching the registry from inside f must not deadlock.
		r.Counter(name)
	})
	if len(names) != 3 || names[0] != "a.first" || names[1] != "b.second" || names[2] != "c.third" {
		t.Fatalf("EachCounter order = %v, want sorted", names)
	}
	if sum != 6 {
		t.Fatalf("EachCounter values summed to %d, want 6", sum)
	}

	var nilReg *Registry
	nilReg.EachCounter(func(string, uint64) { t.Fatal("nil registry must not call f") })
}

// TestRegistryRaceClean hammers the registry and a probe from many
// goroutines; `go test -race` (the CI configuration) verifies the
// subsystem's concurrency contract.
func TestRegistryRaceClean(t *testing.T) {
	r := NewRegistry()
	p := NewProbe(func() sim.Cycle { return 1 })
	tr := p.Track("shared")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				r.Counter("shared.counter").Inc()
				r.Gauge("shared.gauge").Set(float64(i))
				r.CycleHist("shared.hist").Observe(float64(i))
				if i%50 == 0 {
					r.CounterNames()
					r.HistNames()
				}
				p.Span(tr, "work", sim.Cycle(i), sim.Cycle(i+1))
				p.Counter(tr, "val", float64(w))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != 8*500 {
		t.Fatalf("counter = %d, want %d", got, 8*500)
	}
	if got := r.CycleHist("shared.hist").Stats().Count; got != 8*500 {
		t.Fatalf("hist count = %d, want %d", got, 8*500)
	}
	if got := p.Len(); got != 2*8*500 {
		t.Fatalf("events = %d, want %d", got, 2*8*500)
	}
}
