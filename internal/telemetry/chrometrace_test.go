package telemetry

import (
	"bytes"
	"encoding/json"
	"testing"

	"dolos/internal/sim"
)

// TestChromeTraceSchema validates the exported JSON against the
// trace-event schema Perfetto accepts: an object with a traceEvents
// array whose entries carry ph/pid/tid/ts, X events a dur, and one
// thread_name metadata event per track.
func TestChromeTraceSchema(t *testing.T) {
	var now sim.Cycle
	p := NewProbe(func() sim.Cycle { return now })
	cpu := p.Track("cpu")
	wpq := p.Track("wpq")
	ma := p.Track("ma-su")
	nvm := p.Track("nvm-bank-0")

	p.Span(cpu, "fence-stall", 4000, 8000)
	p.Span(ma, "secure-write", 0, 1600)
	p.Span(nvm, "write", 1600, 3600)
	now = 4000
	p.Instant(wpq, "retry")
	p.Counter(wpq, "occupancy", 5)

	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, p); err != nil {
		t.Fatal(err)
	}

	var out struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name  string         `json:"name"`
			Phase string         `json:"ph"`
			PID   *int           `json:"pid"`
			TID   *int           `json:"tid"`
			Ts    *float64       `json:"ts"`
			Dur   float64        `json:"dur"`
			Scope string         `json:"s"`
			Args  map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}

	threads := make(map[string]bool)
	var spans, instants, counters int
	for _, ev := range out.TraceEvents {
		if ev.Phase == "" || ev.PID == nil || ev.TID == nil {
			t.Fatalf("event missing ph/pid/tid: %+v", ev)
		}
		switch ev.Phase {
		case "M":
			if ev.Name == "thread_name" {
				threads[ev.Args["name"].(string)] = true
			}
		case "X":
			if ev.Ts == nil {
				t.Fatalf("X event missing ts: %+v", ev)
			}
			spans++
		case "i":
			if ev.Scope != "t" {
				t.Fatalf("instant missing scope: %+v", ev)
			}
			instants++
		case "C":
			if _, ok := ev.Args["value"]; !ok {
				t.Fatalf("counter missing value arg: %+v", ev)
			}
			counters++
		}
	}
	for _, want := range []string{"cpu", "wpq", "ma-su", "nvm-bank-0"} {
		if !threads[want] {
			t.Fatalf("track %q missing from metadata (have %v)", want, threads)
		}
	}
	if len(threads) < 4 {
		t.Fatalf("only %d tracks exported, want >= 4", len(threads))
	}
	if spans != 3 || instants != 1 || counters != 1 {
		t.Fatalf("spans/instants/counters = %d/%d/%d", spans, instants, counters)
	}

	// Cycle -> microsecond conversion: 4000 cycles at 4 GHz is 1 us.
	for _, ev := range out.TraceEvents {
		if ev.Phase == "X" && ev.Name == "fence-stall" {
			if *ev.Ts != 1.0 || ev.Dur != 1.0 {
				t.Fatalf("fence-stall ts/dur = %v/%v, want 1/1", *ev.Ts, ev.Dur)
			}
		}
	}
}

func TestChromeTraceNilProbe(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, nil); err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil-probe trace invalid: %v", err)
	}
	if _, ok := out["traceEvents"]; !ok {
		t.Fatal("nil-probe trace missing traceEvents")
	}
}
