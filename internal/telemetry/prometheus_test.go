package telemetry

import (
	"regexp"
	"strings"
	"testing"
)

// TestWritePrometheusGolden pins the exposition output byte-for-byte
// against a hand-written golden: HELP/TYPE blocks, section order
// (counters, gauges, histograms), sorted names within a section, name
// sanitization, and the summary + min/max gauge rendering of
// histograms.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("service_jobs_total").Add(3)
	reg.Counter("wpq.coalesce.hits").Add(42)
	reg.Gauge("queue.depth").Set(2.5)
	h := reg.CycleHist("persist.cycles")
	h.Observe(10)
	h.Observe(30)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP service_jobs_total service_jobs_total
# TYPE service_jobs_total counter
service_jobs_total 3
# HELP wpq_coalesce_hits wpq.coalesce.hits
# TYPE wpq_coalesce_hits counter
wpq_coalesce_hits 42
# HELP queue_depth queue.depth
# TYPE queue_depth gauge
queue_depth 2.5
# HELP persist_cycles persist.cycles
# TYPE persist_cycles summary
persist_cycles_count 2
persist_cycles_sum 40
# HELP persist_cycles_min persist.cycles minimum
# TYPE persist_cycles_min gauge
persist_cycles_min 10
# HELP persist_cycles_max persist.cycles maximum
# TYPE persist_cycles_max gauge
persist_cycles_max 30
`
	if got := b.String(); got != want {
		t.Errorf("exposition output differs from golden:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// promLine matches one valid exposition sample line: a sanitized metric
// name, a space, and a decimal / float / signed-infinity / NaN value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*` +
	` (NaN|[+-]Inf|[+-]?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?)$`)

// ValidPrometheus asserts every line of an exposition rendering is
// either a HELP/TYPE comment or a well-formed sample. The service tests
// validate the live /metrics endpoint against the same line grammar.
func ValidPrometheus(t *testing.T, text string) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Errorf("invalid exposition line %q", line)
		}
	}
}

func TestWritePrometheusValidFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a").Inc()
	reg.Gauge("g").Set(-1.25e9)
	reg.CycleHist("h") // empty histogram: min/max render but must stay parseable
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	ValidPrometheus(t, b.String())
}

func TestPromNameSanitization(t *testing.T) {
	for in, want := range map[string]string{
		"wpq.coalesce.hits": "wpq_coalesce_hits",
		"già-utf8 name":     "gi__utf8_name",
		"0starts.digit":     "_0starts_digit",
		"ok_name:sub":       "ok_name:sub",
	} {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestWritePrometheusNilRegistry pins the nil-safety contract shared by
// every registry method: rendering a nil registry is an empty no-op.
func TestWritePrometheusNilRegistry(t *testing.T) {
	var reg *Registry
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if b.Len() != 0 {
		t.Fatalf("nil registry rendered %q", b.String())
	}
}
