package telemetry

import (
	"encoding/json"
	"io"

	"dolos/internal/stats"
)

// HistogramStats is the JSON shape of one histogram's summary.
type HistogramStats struct {
	Count  uint64  `json:"count"`
	Sum    float64 `json:"sum"`
	Mean   float64 `json:"mean"`
	StdDev float64 `json:"stddev"`
	Min    float64 `json:"min"`
	Max    float64 `json:"max"`
}

func histStats(h *stats.Histogram) HistogramStats {
	return HistogramStats{
		Count:  h.Count(),
		Sum:    h.Sum(),
		Mean:   h.Mean(),
		StdDev: h.StdDev(),
		Min:    h.Min(),
		Max:    h.Max(),
	}
}

// MetricsSnapshot is the machine-readable dump of a run's metrics: the
// shared encoding used by dolos-sim -json, dolos-profile and the bench
// trajectory file, so numbers can be diffed across PRs.
type MetricsSnapshot struct {
	Counters   map[string]uint64         `json:"counters"`
	Gauges     map[string]float64        `json:"gauges,omitempty"`
	Histograms map[string]HistogramStats `json:"histograms"`
}

// NewMetricsSnapshot returns an empty snapshot with maps allocated.
func NewMetricsSnapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Counters:   make(map[string]uint64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramStats),
	}
}

// AddStats folds a stats.Set (the simulator's per-run registry) into the
// snapshot, preserving every counter and histogram name and value.
func (m MetricsSnapshot) AddStats(set *stats.Set) {
	if set == nil {
		return
	}
	for _, n := range set.CounterNames() {
		m.Counters[n] = set.Counter(n).Value()
	}
	for _, n := range set.HistogramNames() {
		m.Histograms[n] = histStats(set.Histogram(n))
	}
}

// AddRegistry folds a telemetry Registry into the snapshot.
func (m MetricsSnapshot) AddRegistry(r *Registry) {
	if r == nil {
		return
	}
	for _, n := range r.CounterNames() {
		m.Counters[n] = r.Counter(n).Value()
	}
	for _, n := range r.GaugeNames() {
		m.Gauges[n] = r.Gauge(n).Value()
	}
	for _, n := range r.HistNames() {
		m.Histograms[n] = r.CycleHist(n).Stats()
	}
}

// Snapshot captures a stats.Set and a Registry (either may be nil) in
// one MetricsSnapshot.
func Snapshot(set *stats.Set, reg *Registry) MetricsSnapshot {
	m := NewMetricsSnapshot()
	m.AddStats(set)
	m.AddRegistry(reg)
	return m
}

// RunRecord identifies one scheme×workload simulation and carries its
// headline results plus the full metrics snapshot. The field set mirrors
// cpu.Result; it is declared here (with plain fields) so the encoder is
// shared between dolos-sim -json, dolos-profile and the bench baseline
// without this package importing the simulator.
type RunRecord struct {
	Scheme           string  `json:"scheme"`
	Workload         string  `json:"workload"`
	Tree             string  `json:"tree,omitempty"`
	Transactions     int     `json:"transactions"`
	TxSize           int     `json:"tx_size,omitempty"`
	Seed             int64   `json:"seed,omitempty"`
	Ops              int     `json:"ops,omitempty"`
	Cycles           uint64  `json:"cycles"`
	CyclesPerTx      float64 `json:"cycles_per_tx"`
	CPI              float64 `json:"cpi"`
	FenceStallCycles uint64  `json:"fence_stall_cycles"`
	WriteRequests    uint64  `json:"write_requests"`
	RetryEvents      uint64  `json:"retry_events"`
	RetryPerKWR      float64 `json:"retry_per_kwr"`
	WPQReadHits      uint64  `json:"wpq_read_hits"`
	MemReads         uint64  `json:"mem_reads"`
	MeanInterarrival float64 `json:"mean_interarrival_cycles"`
	WPQMeanOccupancy float64 `json:"wpq_mean_occupancy"`
	MedianTxCycles   float64 `json:"median_tx_cycles"`
	P99TxCycles      float64 `json:"p99_tx_cycles"`
	// RecoveryCycles is the modeled boot-time recovery cost — the
	// related-work schemes' measured axis. omitempty: legacy schemes
	// report 0, so their records (and the committed bench baselines)
	// stay byte-identical.
	RecoveryCycles uint64 `json:"recovery_cycles,omitempty"`

	// Multi-core / out-of-order axes (internal/mcore). All omitempty:
	// single-core in-order records — including the committed bench
	// baseline — are byte-identical with or without this block.
	Cores      int          `json:"cores,omitempty"`
	OoOWindow  int          `json:"ooo_window,omitempty"`
	Prefetches uint64       `json:"prefetches,omitempty"`
	PerCore    []CoreRecord `json:"per_core,omitempty"`

	// Host-side throughput of the simulator itself (not part of the
	// simulated model, so these never participate in bit-identity
	// comparisons): wall-clock duration of the run and discrete events
	// dispatched by the engine, from which events/second derives. Mode
	// labels how the simulator executed ("fast", "pdes"; empty =
	// functional serial) — a host-side property too, since every
	// deterministic field is bit-identical across modes.
	Mode            string  `json:"mode,omitempty"`
	WallSeconds     float64 `json:"wall_seconds,omitempty"`
	EventsProcessed uint64  `json:"events_processed,omitempty"`
	EventsPerSecond float64 `json:"sim_events_per_sec,omitempty"`

	Metrics MetricsSnapshot `json:"metrics"`
}

// CoreRecord is one core's share of a multi-core RunRecord: its own
// cycle count and progress counters plus the shared-controller fairness
// view (arbiter grants and cumulative wait cycles).
type CoreRecord struct {
	Core             int    `json:"core"`
	Workload         string `json:"workload"`
	Seed             int64  `json:"seed,omitempty"`
	Cycles           uint64 `json:"cycles"`
	Transactions     int    `json:"transactions"`
	Ops              int    `json:"ops,omitempty"`
	FenceStallCycles uint64 `json:"fence_stall_cycles"`
	AcceptedPersists uint64 `json:"accepted_persists"`
	ArbGrants        uint64 `json:"arb_grants"`
	ArbWaitCycles    uint64 `json:"arb_wait_cycles"`
}

// WriteJSON encodes v as indented JSON with a trailing newline — the one
// encoder every machine-readable output of the tools goes through, so
// diffs across PRs stay stable.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
