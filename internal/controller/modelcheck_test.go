package controller

// System-level model check: random persist writes, evictions, reads,
// crashes and recoveries against a plain-map oracle, with the
// discrete-event clock advancing between operations. The oracle tracks
// the last ACCEPTED value per line; after any quiesce or recovery the
// secure memory must agree.

import (
	"math/rand"
	"testing"

	"dolos/internal/masu"
	"dolos/internal/sim"
)

func TestModelCheckController(t *testing.T) {
	for _, scheme := range []Scheme{PreWPQSecure, DolosFull, DolosPartial, DolosPost, EADRSecure} {
		scheme := scheme
		t.Run(scheme.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(scheme) + 99))
			eng, c := newSystem(scheme, masu.BMTEager)
			oracle := map[uint64][64]byte{}
			addrs := make([]uint64, 20)
			for i := range addrs {
				addrs[i] = 0x1000 + uint64(i)*192 // three lines apart, crossing pages
			}

			pending := 0
			inflight := map[uint64]int{}
			for step := 0; step < 400; step++ {
				switch op := rng.Intn(100); {
				case op < 60: // persist write
					addr := addrs[rng.Intn(len(addrs))]
					var val [64]byte
					rng.Read(val[:])
					pending++
					inflight[addr]++
					c.PersistWrite(addr, val, func() {
						oracle[addr] = val
						pending--
						inflight[addr]--
					})
					eng.RunUntil(eng.Now() + sim.Cycle(rng.Intn(1200)))
				case op < 75: // quiesce and read back a random line
					eng.Run(0)
					if pending != 0 {
						t.Fatalf("step %d: %d writes never accepted", step, pending)
					}
					addr := addrs[rng.Intn(len(addrs))]
					if want, ok := oracle[addr]; ok {
						got, _, err := c.MaSU().ReadLine(addr)
						if err != nil || got != want {
							t.Fatalf("step %d: %#x diverged: %v", step, addr, err)
						}
					}
				case op < 85: // timed read through the controller
					addr := addrs[rng.Intn(len(addrs))]
					done := false
					c.ReadLine(addr, func() { done = true })
					eng.Run(0)
					if !done {
						t.Fatalf("step %d: read never completed", step)
					}
					if pending != 0 {
						// Run(0) drained everything; acceptances fired.
						t.Fatalf("step %d: pending %d after drain", step, pending)
					}
				default: // crash + recover at a random in-flight moment
					eng.RunUntil(eng.Now() + sim.Cycle(rng.Intn(3000)))
					if _, err := c.Crash(); err != nil {
						t.Fatalf("step %d: crash: %v", step, err)
					}
					mode := AnubisRecovery
					if rng.Intn(3) == 0 {
						mode = OsirisRecovery
					}
					if _, err := c.Recover(mode); err != nil {
						t.Fatalf("step %d: recover(%d): %v", step, mode, err)
					}
					// Un-accepted in-flight writes died with the power —
					// but the baseline may have functionally applied
					// them before acknowledging, so those lines carry no
					// expectation until the next accepted write.
					pending = 0
					for addr, n := range inflight {
						if n > 0 {
							delete(oracle, addr)
						}
						delete(inflight, addr)
					}
					// Every line with a settled expectation survived.
					for addr, want := range oracle {
						got, _, err := c.MaSU().ReadLine(addr)
						if err != nil || got != want {
							t.Fatalf("step %d: post-recovery %#x diverged: %v", step, addr, err)
						}
					}
					if _, err := c.MaSU().Audit(); err != nil {
						t.Fatalf("step %d: post-recovery audit: %v", step, err)
					}
				}
			}
			eng.Run(0)
			if _, err := c.MaSU().Audit(); err != nil {
				t.Fatalf("final audit: %v", err)
			}
			for addr, want := range oracle {
				got, _, err := c.MaSU().ReadLine(addr)
				if err != nil || got != want {
					t.Fatalf("final state %#x diverged: %v", addr, err)
				}
			}
		})
	}
}
