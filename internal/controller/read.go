package controller

import (
	"fmt"

	"dolos/internal/crypt"
	"dolos/internal/masu"
	"dolos/internal/sim"
)

// wpqHitLatency is the cost of serving a read from the WPQ: the tag-array
// lookup plus the one-cycle XOR decrypt (Section 4.5: "such a decryption
// would merely take an XOR operation (one cycle)").
const wpqHitLatency = 4 + crypt.XORLatency

// ReadLine serves an LLC-miss read. done fires when the verified,
// decrypted line would be available to the cache hierarchy. Reads that
// hit the WPQ tag array are served on-chip; others pay the NVM fetch,
// MAC verification and any metadata-cache misses.
//
// An integrity violation on the read path panics: during benign
// simulation it indicates a model bug, and adversarial scenarios are
// driven through the recovery/attack APIs where errors are returned.
func (c *Controller) ReadLine(addr uint64, done func()) {
	addr &^= 63
	c.cMemReads.Inc()

	if slot, ok := c.queue().Lookup(addr); ok {
		c.queue().ReadHit()
		c.cReadHits.Inc()
		if c.probe != nil {
			c.probe.Instant(c.tWPQ, "read-hit")
		}
		if c.mi != nil {
			// Exercise the functional decrypt so WPQ read data is real.
			if a, _ := c.mi.DecryptSlot(slot); a != addr {
				panic(fmt.Sprintf("controller: WPQ tag/slot mismatch at %#x", addr))
			}
		}
		c.eng.After(wpqHitLatency, done)
		return
	}

	plainCost, err := c.readThroughMaSU(addr)
	if err != nil {
		panic("controller: read integrity violation: " + err.Error())
	}
	extra := c.readExtraLatency(plainCost)
	c.dev.AccessRead(addr, func() {
		c.eng.After(extra, done)
	})
}

// readThroughMaSU performs the verified read (functional in serial
// functional mode; in fast/parallel modes the same code path runs on
// latency-only values, and a parallel run's shadow stage re-verifies
// with real crypto).
func (c *Controller) readThroughMaSU(addr uint64) (masu.Cost, error) {
	plain, cost, err := c.ma.ReadLine(addr)
	c.cReadCounterMiss.Add(uint64(cost.CounterMisses))
	c.cReadTreeMiss.Add(uint64(cost.TreeMisses))
	if err == nil {
		c.journalRead(addr, &plain)
	}
	return cost, err
}

// readExtraLatency converts a read cost into cycles beyond the NVM data
// fetch: MAC verification plus metadata fetches. When the counter is
// cached the decryption pad is pre-generated during the data fetch and
// the decrypt costs one XOR; a counter miss serializes the counter fetch
// and pad generation before the XOR.
func (c *Controller) readExtraLatency(cost masu.Cost) sim.Cycle {
	extra := crypt.MACLatency + crypt.XORLatency // data MAC verify + decrypt
	if cost.CounterMisses > 0 {
		extra += 600 + crypt.AESLatency
	}
	extra += sim.Cycle(cost.TreeMisses) * (600 + crypt.MACLatency)
	return extra
}
