package controller

import (
	"fmt"

	"dolos/internal/masu"
)

// ReadLine serves an LLC-miss read. done fires when the verified,
// decrypted line would be available to the cache hierarchy. Reads that
// hit the WPQ tag array are served on-chip; others pay the NVM fetch,
// MAC verification and any metadata-cache misses.
//
// An integrity violation on the read path panics: during benign
// simulation it indicates a model bug, and adversarial scenarios are
// driven through the recovery/attack APIs where errors are returned.
func (c *Controller) ReadLine(addr uint64, done func()) {
	addr &^= 63
	c.cMemReads.Inc()

	if slot, ok := c.queue().Lookup(addr); ok {
		c.queue().ReadHit()
		c.cReadHits.Inc()
		if c.probe != nil {
			c.probe.Instant(c.tWPQ, "read-hit")
		}
		if c.mi != nil {
			// Exercise the functional decrypt so WPQ read data is real.
			if a, _ := c.mi.DecryptSlot(slot); a != addr {
				panic(fmt.Sprintf("controller: WPQ tag/slot mismatch at %#x", addr))
			}
		}
		// The on-chip hit cost: tag-array lookup plus the one-cycle XOR
		// decrypt (Section 4.5).
		c.eng.After(c.costs.WPQHit, done)
		return
	}

	cost, err := c.readThroughMaSU(addr)
	if err != nil {
		panic("controller: read integrity violation: " + err.Error())
	}
	extra := c.costs.ReadExtra(cost)
	c.dev.AccessRead(addr, func() {
		c.eng.After(extra, done)
	})
}

// readThroughMaSU performs the verified read: functionally in the serial
// modes, or through the cost-count model in a parallel-DES run, where
// the shadow stage re-verifies with real crypto.
func (c *Controller) readThroughMaSU(addr uint64) (masu.Cost, error) {
	if c.cm != nil {
		cost := c.cm.ReadCost(addr)
		c.cReadCounterMiss.Add(uint64(cost.CounterMisses))
		c.cReadTreeMiss.Add(uint64(cost.TreeMisses))
		c.journalRead(addr)
		return cost, nil
	}
	_, cost, err := c.ma.ReadLine(addr)
	c.cReadCounterMiss.Add(uint64(cost.CounterMisses))
	c.cReadTreeMiss.Add(uint64(cost.TreeMisses))
	if err == nil {
		c.journalRead(addr)
	}
	return cost, err
}
