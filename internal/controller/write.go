package controller

import (
	"dolos/internal/masu"
	"dolos/internal/scheme"
	"dolos/internal/sim"
	"dolos/internal/wpq"
)

// PersistWrite submits a flushed cache line to the persistence path.
// accepted fires at the cycle the write is considered persisted — i.e.
// it has entered the persistence domain (WPQ), which is what a pending
// sfence waits for. Writes that find the WPQ full (or the Post-WPQ Mi-SU
// busy) are retried; each failed attempt counts one retry event
// (Table 2's metric).
func (c *Controller) PersistWrite(addr uint64, data [64]byte, accepted func()) {
	addr &^= 63
	c.cWriteRequests.Inc()
	c.noteArrival()
	if c.probe != nil {
		// Observe the request->acceptance latency: the pre-WPQ critical
		// path a pending sfence is exposed to. The wrapper changes no
		// scheduling — it runs inline where accepted would.
		t0 := c.eng.Now()
		inner := accepted
		accepted = func() {
			c.hAccept.Observe(float64(c.eng.Now() - t0))
			if inner != nil {
				inner()
			}
		}
	}
	c.tryInsert(waiter{addr: addr, data: data, accepted: accepted}, false)
}

// EvictWrite submits a dirty non-persist writeback (an LLC victim). It
// takes the same secured path but nothing waits on it.
func (c *Controller) EvictWrite(addr uint64, data [64]byte) {
	addr &^= 63
	if c.cEvictRequests == nil {
		// Interned lazily, unlike the other handles: bench-grid runs
		// never evict, and registering the counter at construction would
		// add a zero-valued entry to their metrics snapshots.
		c.cEvictRequests = c.st.Counter("wpq.evict_requests")
	}
	c.cEvictRequests.Inc()
	c.tryInsert(waiter{addr: addr, data: data}, false)
}

// noteArrival tracks the WPQ request inter-arrival distribution, the
// statistic the paper's Post-WPQ design motivation quotes (473 cycles).
func (c *Controller) noteArrival() {
	now := float64(c.eng.Now())
	if c.haveArrival {
		c.hInterarrival.Observe(now - c.lastArrival)
	}
	c.haveArrival = true
	c.lastArrival = now
	c.hOccupancyArrival.Observe(float64(c.queue().Live()))
}

// tryInsert routes a write into the scheme's insertion path. wake marks
// re-attempts of parked writes.
func (c *Controller) tryInsert(w waiter, wake bool) {
	if c.crashed {
		return
	}
	// Dispatch on the scheme's registered pre-persist pipeline: the
	// related-work schemes (Triad-NVM, SuperMem, Phoenix, STUM) share
	// the baseline's insert path and differentiate through the Ma-SU
	// policy behind it.
	switch c.pipe.Insert {
	case scheme.InsertDolosSplit:
		c.insertDolos(w, wake)
	case scheme.InsertPreWPQ:
		c.insertPreWPQ(w)
	case scheme.InsertEADR:
		c.insertEADR(w)
	default:
		c.insertIdeal(w, wake)
	}
}

// insertEADR handles a persist under extended ADR: the store was already
// inside the persistence domain when it retired into the cache, so the
// flush is acknowledged immediately — no WPQ involvement, no retries.
// Security work still runs (functionally now, its latency charged to the
// background pipeline), exactly as an eADR platform would secure lines
// on their way from the persistent caches to NVM.
func (c *Controller) insertEADR(w waiter) {
	c.cInserted.Inc()
	if w.accepted != nil {
		c.eng.After(1, w.accepted)
	}
	cost := c.processWrite(w.addr, &w.data, -1)
	c.chargeWriteCost(cost)
	epoch := c.epoch
	c.secUnit.Submit(c.costs.DrainService(cost), func(_, _ sim.Cycle) {
		if c.staleAt(epoch) {
			return
		}
		c.dev.AccessWrite(w.addr, func() {
			c.cDrained.Inc()
		})
	})
}

// park queues a write for retry when space frees. countRetry marks
// Table 2's metric: an insertion attempt that found the WPQ full (a
// Post-WPQ wait on the busy Mi-SU parks without counting — the paper's
// retry events are specifically full-queue events).
func (c *Controller) park(w waiter, front, countRetry bool) {
	if countRetry {
		c.cRetryEvents.Inc()
		if c.probe != nil {
			c.probe.Instant(c.tWPQ, "retry")
		}
	}
	if front {
		if c.waitHead > 0 {
			// Refill the gap popWaiter left at the head.
			c.waitHead--
			c.waiters[c.waitHead] = w
		} else {
			// Grow in place and shift right instead of building a fresh
			// slice: front parks happen on every full-WPQ retry, and a
			// rebuild would allocate a new backing array each time.
			c.waiters = append(c.waiters, waiter{})
			copy(c.waiters[1:], c.waiters)
			c.waiters[0] = w
		}
	} else {
		c.waiters = append(c.waiters, w)
	}
}

// popWaiter dequeues the oldest parked write. Popping advances the head
// index and clears the vacated slot (releasing the accepted-callback
// reference); the slice rewinds to its base once empty so appends keep
// reusing one backing array.
func (c *Controller) popWaiter() (waiter, bool) {
	if c.waitHead == len(c.waiters) {
		return waiter{}, false
	}
	w := c.waiters[c.waitHead]
	c.waiters[c.waitHead] = waiter{}
	c.waitHead++
	if c.waitHead == len(c.waiters) {
		c.waiters = c.waiters[:0]
		c.waitHead = 0
	}
	return w, true
}

// wakeWaiters re-attempts the oldest parked write after a slot freed or
// the deferred Mi-SU op finished.
func (c *Controller) wakeWaiters() {
	if w, ok := c.popWaiter(); ok {
		c.tryInsert(w, true)
	}
}

// --- Dolos insertion (Figure 5-d) ---

func (c *Controller) insertDolos(w waiter, _ bool) {
	if !c.mi.CanAccept(w.addr) {
		// Rotate failed attempts to the back of the waiter queue: a
		// write stalled on same-line ordering must not block unrelated
		// waiters (head-of-line blocking).
		full := c.mi.Queue().Full() && !c.mi.Queue().CanCoalesce(w.addr)
		c.park(w, false, full)
		return
	}
	// The Mi-SU MAC engine is a serial resource; the insert occupies it
	// for the design's latency. Post-WPQ's XOR-only path is effectively
	// immediate and the deferred MAC runs after commit.
	epoch := c.epoch
	c.miSU.Submit(c.costs.Insert, func(_, _ sim.Cycle) {
		if c.staleAt(epoch) {
			return
		}
		// Re-check: a competing insert may have consumed the last slot
		// while this one was in the engine.
		if !c.mi.CanAccept(w.addr) {
			full := c.mi.Queue().Full() && !c.mi.Queue().CanCoalesce(w.addr)
			c.park(w, false, full)
			return
		}
		slot := c.mi.Protect(w.addr, w.data)
		c.journalProtect(w.addr, &w.data, slot)
		c.insertTime[slot] = c.eng.Now()
		c.cInserted.Inc()
		if w.accepted != nil {
			w.accepted()
		}
		if c.cfg.Scheme == DolosPost {
			// The deferred MAC occupies the Mi-SU after commit; new
			// writes are rejected until it completes.
			c.miSU.Submit(c.costs.DeferredMAC, func(_, _ sim.Cycle) {
				if c.staleAt(epoch) {
					return
				}
				c.mi.CompleteDeferredMAC(slot)
				c.journalSlot(shadowDeferredMAC, slot)
				c.wakeWaiters()
				// The entry only became fetchable now that its MAC is
				// in place; re-arm the Ma-SU.
				c.pumpMaSU()
			})
		}
		c.pumpMaSU()
	})
}

// DrainDelay is how long an entry rests in the WPQ before the Ma-SU
// picks it up, when the pipeline is otherwise free. Write buffers drain
// lazily in hardware; the rest window is what makes the Section 4.5
// write-coalescing optimization effective for repeated lines (undo-log
// headers, hot YCSB records).
const DrainDelay = scheme.DrainDelayCycles

// processWrite runs one secured write through the execution mode's
// Ma-SU stage: the functional unit inline (serial modes), or the
// cost-count model plus a journal entry for the shadow twin
// (parallel-DES). The returned Cost is bit-identical either way — the
// differential tests in masu pin it — which is what keeps the two
// modes' schedules cycle-equal.
func (c *Controller) processWrite(addr uint64, data *[64]byte, slot int) masu.Cost {
	if c.cm != nil {
		c.journalWrite(addr, data, slot)
		return c.cm.WriteCost(addr, slot)
	}
	return c.ma.ProcessWrite(addr, *data, slot)
}

// pumpMaSU schedules the Ma-SU's next fetch from the WPQ (the run-time
// drain path, Figure 11). The entry is picked when the pipelined engine
// actually starts it — until then it stays coalescible in the WPQ — and
// its slot clears only after both the security work and the NVM write
// complete, which is what makes the queue fill under bursts.
func (c *Controller) pumpMaSU() {
	if c.crashed || c.maPumpArmed {
		return
	}
	slot, ok := c.mi.Queue().FetchOldest()
	if !ok {
		return
	}
	at := c.maSU.NextStart()
	if e := c.insertTime[slot] + DrainDelay; e > at {
		at = e
	}
	c.maPumpArmed = true
	epoch := c.epoch
	c.eng.At(at, func() {
		c.maPumpArmed = false
		if c.staleAt(epoch) {
			return
		}
		slot, ok := c.mi.Queue().FetchOldest()
		if !ok {
			return
		}
		if c.insertTime[slot]+DrainDelay > c.eng.Now() {
			// The oldest entry changed (coalesce/clear); re-arm.
			c.pumpMaSU()
			return
		}
		c.mi.Queue().MarkFetched(slot)
		fetchSeq := c.mi.Queue().Entry(slot).Seq
		addr, plain := c.mi.DecryptSlot(slot)
		var cost masu.Cost
		if c.cm != nil {
			// Cost-count drain: the timing stage holds no WPQ
			// ciphertext, so the shadow twin replays the whole fetch —
			// mark, decrypt, process — as one journal entry.
			cost = c.cm.WriteCost(addr, slot)
			c.journalSlot(shadowDrainFetch, slot)
		} else {
			cost = c.ma.ProcessWrite(addr, plain, slot)
		}
		c.chargeWriteCost(cost)
		c.maSU.Submit(c.costs.DrainService(cost), func(_, _ sim.Cycle) {
			if c.staleAt(epoch) {
				return
			}
			// Step 3: the ciphertext heads to NVM; step 4 clears the
			// WPQ entry once the write is in the array.
			c.dev.AccessWrite(addr, func() {
				if c.staleAt(epoch) {
					return
				}
				c.cDrained.Inc()
				if c.probe != nil {
					// Per-entry drain latency: WPQ residency from
					// insertion to the NVM array write completing.
					c.hDrain.Observe(float64(c.eng.Now() - c.insertTime[slot]))
				}
				e := c.mi.Queue().Entry(slot)
				if e.Valid && !e.Cleared && e.Seq == fetchSeq {
					// Unchanged since fetch: retire the entry. A newer
					// coalesced value (different Seq) stays live and
					// will be re-fetched.
					c.mi.Queue().Clear(slot)
					c.journalSlot(shadowClear, slot)
				}
				c.wakeWaiters()
				c.pumpMaSU()
			})
		})
		c.pumpMaSU()
	})
}

// chargeWriteCost records cost composition statistics.
func (c *Controller) chargeWriteCost(cost masu.Cost) {
	c.cCounterMisses.Add(uint64(cost.CounterMisses))
	c.cTreeMisses.Add(uint64(cost.TreeMisses))
	c.cSerialMACs.Add(uint64(cost.SerialMACs))
	c.cNVMWrites.Add(uint64(cost.NVMWrites))
	c.cShadowWrites.Add(uint64(cost.ShadowWrites))
	if cost.ReencryptedLines > 0 {
		c.cPageReenc.Inc()
	}
}

// --- Baseline insertion (Figure 5-b): security before the WPQ ---

func (c *Controller) insertPreWPQ(w waiter) {
	// The conventional security unit serializes: counter fetch, pad
	// generation, data MAC and the eager tree update all happen before
	// the write may enter the persistence domain.
	cost := c.processWrite(w.addr, &w.data, -1)
	c.chargeWriteCost(cost)
	epoch := c.epoch
	c.secUnit.Submit(c.costs.InsertService(cost), func(_, _ sim.Cycle) {
		if c.staleAt(epoch) {
			return
		}
		c.allocBaseline(w, false)
	})
}

// allocBaseline places a security-processed write into the baseline WPQ.
func (c *Controller) allocBaseline(w waiter, wake bool) {
	if c.crashed {
		return
	}
	slot, coalesced, ok := c.bq.Allocate(w.addr)
	if !ok {
		c.park(w, wake, true)
		return
	}
	c.cInserted.Inc()
	if w.accepted != nil {
		w.accepted()
	}
	if coalesced {
		// Merged into a live entry whose drain is already scheduled.
		return
	}
	c.bq.Commit(slot, wpq.Entry{Addr: w.addr, Valid: true})
	// Drain: the entry only awaits its NVM write (already secured).
	epoch := c.epoch
	insertAt := c.eng.Now()
	c.dev.AccessWrite(w.addr, func() {
		if c.staleAt(epoch) {
			return
		}
		c.bq.Clear(slot)
		c.cDrained.Inc()
		if c.probe != nil {
			c.hDrain.Observe(float64(c.eng.Now() - insertAt))
		}
		c.wakeBaseline()
	})
}

// wakeBaseline re-attempts a parked baseline write after a slot freed.
func (c *Controller) wakeBaseline() {
	if w, ok := c.popWaiter(); ok {
		c.allocBaseline(w, true)
	}
}

// --- Ideal insertion (NonSecureADR): persist immediately ---

func (c *Controller) insertIdeal(w waiter, wake bool) {
	slot, coalesced, ok := c.bq.Allocate(w.addr)
	if !ok {
		c.park(w, wake, true)
		return
	}
	c.cInserted.Inc()
	// Security is applied with zero charged latency (the infeasible
	// reference point): functional state stays exact.
	cost := c.processWrite(w.addr, &w.data, -1)
	c.chargeWriteCost(cost)
	if w.accepted != nil {
		c.eng.After(1, w.accepted)
	}
	if coalesced {
		return
	}
	c.bq.Commit(slot, wpq.Entry{Addr: w.addr, Valid: true})
	epoch := c.epoch
	c.dev.AccessWrite(w.addr, func() {
		if c.staleAt(epoch) {
			return
		}
		c.bq.Clear(slot)
		c.cDrained.Inc()
		c.wakeIdeal()
	})
}

func (c *Controller) wakeIdeal() {
	if w, ok := c.popWaiter(); ok {
		c.insertIdeal(w, true)
	}
}
