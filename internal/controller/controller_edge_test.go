package controller

import (
	"testing"

	"dolos/internal/crypt"
	"dolos/internal/layout"
	"dolos/internal/masu"
	"dolos/internal/nvm"
	"dolos/internal/sim"
)

func newCustomSystem(cfg Config) (*sim.Engine, *Controller) {
	eng := sim.NewEngine()
	if cfg.Layout == (layout.Map{}) {
		cfg.Layout = layout.Small()
	}
	dev := nvm.NewDevice(eng, cfg.Layout.DeviceSize, 0)
	copy(cfg.AESKey[:], "edge-aes-key-016")
	copy(cfg.MACKey[:], "edge-mac-key-016")
	return eng, New(eng, dev, cfg)
}

func TestTinyWPQStillCorrect(t *testing.T) {
	// A 2-entry hardware WPQ (Partial usable = 1) must still accept and
	// drain everything, just slowly.
	eng, c := newCustomSystem(Config{Scheme: DolosPartial, HardwareWPQ: 2})
	accepted := 0
	for i := uint64(0); i < 12; i++ {
		c.PersistWrite(0x1000+i*64, line(byte(i)), func() { accepted++ })
	}
	eng.Run(0)
	if accepted != 12 {
		t.Fatalf("accepted %d of 12 with tiny WPQ", accepted)
	}
	if c.RetryEvents() == 0 {
		t.Fatal("tiny WPQ produced no retries under a burst")
	}
	for i := uint64(0); i < 12; i++ {
		got, _, err := c.MaSU().ReadLine(0x1000 + i*64)
		if err != nil || got != line(byte(i)) {
			t.Fatalf("line %d wrong after tiny-WPQ drain: %v", i, err)
		}
	}
}

func TestLargeWPQNoRetries(t *testing.T) {
	eng, c := newCustomSystem(Config{Scheme: DolosPartial, HardwareWPQ: 128})
	for i := uint64(0); i < 40; i++ {
		c.PersistWrite(0x1000+i*64, line(byte(i)), nil)
	}
	eng.Run(0)
	if c.RetryEvents() != 0 {
		t.Fatalf("113-entry WPQ retried %d times on a 40-write burst", c.RetryEvents())
	}
}

func TestMaSUIntervalSlowsDrain(t *testing.T) {
	fast := drainTime(t, 0)    // default II = 160
	slow := drainTime(t, 1600) // serial backend
	if slow <= fast {
		t.Fatalf("slow backend (%d) not slower than fast (%d)", slow, fast)
	}
}

func drainTime(t *testing.T, ii sim.Cycle) sim.Cycle {
	t.Helper()
	eng, c := newCustomSystem(Config{Scheme: DolosPartial, MaSUInterval: ii})
	for i := uint64(0); i < 10; i++ {
		c.PersistWrite(0x1000+i*64, line(byte(i)), nil)
	}
	eng.Run(0)
	return eng.Now()
}

func TestSmallCounterCacheMoreMisses(t *testing.T) {
	missesAt := func(bytes uint64) uint64 {
		eng, c := newCustomSystem(Config{Scheme: DolosPartial, CounterCacheBytes: bytes})
		// Two passes over many distinct pages: the second pass hits in a
		// large counter cache and thrashes in a small one.
		for pass := 0; pass < 2; pass++ {
			for i := uint64(0); i < 200; i++ {
				c.PersistWrite(0x1000+i*4096, line(byte(i)), nil)
			}
			eng.Run(0)
		}
		return c.Stats().Counter("masu.counter_misses").Value()
	}
	small := missesAt(4 << 10)
	big := missesAt(512 << 10)
	if small <= big {
		t.Fatalf("4KB counter cache misses (%d) not above 512KB (%d)", small, big)
	}
}

func TestToCCrashRecoverThroughController(t *testing.T) {
	eng, c := newCustomSystem(Config{Scheme: DolosFull, Tree: masu.ToCLazy})
	want := map[uint64][64]byte{}
	for i := uint64(0); i < 10; i++ {
		addr := 0x2000 + i*64
		p := line(byte(40 + i))
		c.PersistWrite(addr, p, func() { want[addr] = p })
	}
	eng.RunUntil(3000)
	if _, err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(AnubisRecovery); err != nil {
		t.Fatalf("ToC recovery: %v", err)
	}
	for addr, p := range want {
		got, _, err := c.MaSU().ReadLine(addr)
		if err != nil || got != p {
			t.Fatalf("ToC line %#x lost: %v", addr, err)
		}
	}
}

func TestOsirisRejectedUnderToC(t *testing.T) {
	eng, c := newCustomSystem(Config{Scheme: DolosPartial, Tree: masu.ToCLazy})
	c.PersistWrite(0x1000, line(1), nil)
	eng.Run(0)
	if _, err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(OsirisRecovery); err == nil {
		t.Fatal("Osiris recovery accepted under the ToC backend")
	}
}

func TestWritesAfterCrashIgnored(t *testing.T) {
	eng, c := newCustomSystem(Config{Scheme: DolosPartial})
	c.PersistWrite(0x1000, line(1), nil)
	eng.Run(0)
	if _, err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	before := c.WriteRequests()
	accepted := false
	c.PersistWrite(0x2000, line(2), func() { accepted = true })
	eng.Run(0)
	if accepted {
		t.Fatal("write accepted while powered off")
	}
	_ = before
}

func TestPipelinedBaselineThroughput(t *testing.T) {
	// A burst of baseline writes pipelines through the security unit:
	// the last acceptance should land near full-latency + N*II, far
	// below N * full-latency (serial service).
	eng, c := newCustomSystem(Config{Scheme: PreWPQSecure})
	const n = 8
	var last sim.Cycle
	for i := uint64(0); i < n; i++ {
		c.PersistWrite(0x1000+i*64, line(byte(i)), func() {
			if eng.Now() > last {
				last = eng.Now()
			}
		})
	}
	eng.Run(0)
	fullLatency := crypt.AESLatency + 10*crypt.MACLatency
	// Allow the first write's cold counter + tree-path fetches (~6 NVM
	// reads) on top of the pipelined drain of the rest of the burst.
	pipelined := fullLatency + (n+2)*crypt.MACLatency + 7*600
	if last > pipelined {
		t.Fatalf("burst acceptance at %d exceeds pipelined bound %d", last, pipelined)
	}
	if last < fullLatency {
		t.Fatalf("burst accepted at %d, before one full security latency %d", last, fullLatency)
	}
}

func TestReadExtraLatencyComposition(t *testing.T) {
	eng, c := newCustomSystem(Config{Scheme: DolosPartial})
	c.PersistWrite(0x1000, line(1), nil)
	eng.Run(0)
	// First read: counter is cached from the write -> only the data MAC
	// verification beyond the NVM fetch.
	start := eng.Now()
	var lat sim.Cycle
	c.ReadLine(0x1000, func() { lat = eng.Now() - start })
	eng.Run(0)
	min := nvm.ReadLatency + crypt.MACLatency
	if lat < min || lat > min+700 {
		t.Fatalf("verified read latency = %d, want >= %d", lat, min)
	}
}
