package controller

import (
	"fmt"

	"dolos/internal/masu"
	"dolos/internal/sim"
	"dolos/internal/telemetry"
	"dolos/internal/wpq"
)

// SetProbe attaches (or with nil detaches) a telemetry probe to the
// controller and every component it owns: busy spans for the Mi-SU
// engine, the Ma-SU pipeline and the baseline security unit, per-bank
// NVM service spans, WPQ occupancy samples and event markers, and
// critical-path latency histograms in the probe's registry.
//
// The wiring is purely observational: hooks never schedule events or
// change a latency, so an instrumented run's cycle counts are
// bit-identical to an uninstrumented one. Call before the first request;
// with a nil probe every site reduces to one nil check.
func (c *Controller) SetProbe(p *telemetry.Probe) {
	c.probe = p
	if p == nil {
		c.miSU.SetJobHook(nil)
		c.maSU.SetJobHook(nil)
		c.secUnit.SetJobHook(nil)
		c.queue().SetObserver(nil)
		c.dev.SetAccessHook(nil)
		if c.ma != nil {
			c.ma.SetWriteHook(nil)
		} else {
			c.cm.SetWriteHook(nil)
		}
		if c.mi != nil {
			c.mi.SetProtectHook(nil)
		}
		c.hAccept, c.hDrain = nil, nil
		return
	}

	c.tWPQ = p.Track("wpq")
	reg := p.Registry()
	c.hAccept = reg.CycleHist("ctrl.accept_latency_cycles")
	c.hDrain = reg.CycleHist("ctrl.drain_latency_cycles")

	// Security-engine busy spans (per-scheme critical-path breakdown:
	// what occupies the path before the WPQ vs. behind it).
	if c.cfg.Scheme.IsDolos() {
		c.tMiSU = p.Track("mi-su")
		c.tMaSU = p.Track("ma-su")
		c.miSU.SetJobHook(func(_ string, start, end sim.Cycle) {
			p.Span(c.tMiSU, "mac", start, end)
		})
		c.maSU.SetJobHook(func(_ string, start, end sim.Cycle) {
			p.Span(c.tMaSU, "secure-write", start, end)
		})
	} else {
		c.tMaSU = p.Track("security-unit")
		c.secUnit.SetJobHook(func(_ string, start, end sim.Cycle) {
			p.Span(c.tMaSU, "secure-write", start, end)
		})
	}

	// WPQ occupancy, sampled exactly at its change points, plus event
	// markers for coalesces and Ma-SU fetches.
	gOcc := reg.Gauge("wpq.occupancy")
	cCoalesce := reg.Counter("wpq.coalesces")
	c.queue().SetObserver(func(ev wpq.ObsEvent, addr uint64, live int) {
		gOcc.Set(float64(live))
		p.Counter(c.tWPQ, "occupancy", float64(live))
		switch ev {
		case wpq.EvCoalesce:
			cCoalesce.Inc()
			p.Instant(c.tWPQ, "coalesce")
		case wpq.EvFetch:
			p.Instant(c.tWPQ, "fetch")
		}
	})

	// NVM service spans, one track per bank (a purely functional device
	// has no banks and no timed accesses to observe).
	if banks := c.dev.BankCount(); banks > 0 {
		nvmTracks := make([]telemetry.TrackID, banks)
		for i := range nvmTracks {
			nvmTracks[i] = p.Track(fmt.Sprintf("nvm-bank-%d", i))
		}
		c.dev.SetAccessHook(func(write bool, addr uint64, start, end sim.Cycle) {
			name := "read"
			if write {
				name = "write"
			}
			p.Span(nvmTracks[c.dev.BankIndex(addr)], name, start, end)
		})
	}

	// Ma-SU write-cost composition: mark the expensive outliers (page
	// re-encryption storms after a minor-counter overflow).
	cReenc := reg.Counter("masu.reencrypt_events")
	reencHook := func(addr uint64, cost masu.Cost) {
		if cost.ReencryptedLines > 0 {
			cReenc.Inc()
			p.Instant(c.tMaSU, "page-reencrypt")
		}
	}
	if c.ma != nil {
		c.ma.SetWriteHook(reencHook)
	} else {
		c.cm.SetWriteHook(reencHook)
	}

	// Mi-SU insertion count (Dolos schemes).
	if c.mi != nil {
		cProtect := reg.Counter("misu.protects")
		c.mi.SetProtectHook(func(slot int, addr uint64) {
			cProtect.Inc()
		})
	}
}

// Probe returns the attached telemetry probe (nil when disabled).
func (c *Controller) Probe() *telemetry.Probe { return c.probe }
