package controller

import (
	"testing"

	"dolos/internal/masu"
	"dolos/internal/sim"
)

func TestEADRAcceptsImmediately(t *testing.T) {
	eng, c := newSystem(EADRSecure, masu.BMTEager)
	var at sim.Cycle
	c.PersistWrite(0x1000, line(1), func() { at = eng.Now() })
	eng.Run(0)
	if at > 2 {
		t.Fatalf("eADR acceptance at %d cycles, want ~1", at)
	}
	if c.RetryEvents() != 0 {
		t.Fatal("eADR produced retry events")
	}
}

func TestEADRFunctionallySecured(t *testing.T) {
	eng, c := newSystem(EADRSecure, masu.BMTEager)
	for i := uint64(0); i < 8; i++ {
		c.PersistWrite(0x1000+i*64, line(byte(i)), nil)
	}
	eng.Run(0)
	for i := uint64(0); i < 8; i++ {
		got, _, err := c.MaSU().ReadLine(0x1000 + i*64)
		if err != nil || got != line(byte(i)) {
			t.Fatalf("eADR line %d not secured/persisted: %v", i, err)
		}
	}
}

func TestEADRFasterThanIdealWPQ(t *testing.T) {
	// eADR dodges even the WPQ acceptance path, so a bursty write storm
	// completes no later than under the ideal-ADR scheme.
	run := func(s Scheme) sim.Cycle {
		eng, c := newSystem(s, masu.BMTEager)
		var last sim.Cycle
		for i := uint64(0); i < 64; i++ {
			c.PersistWrite(0x1000+i*64, line(byte(i)), func() {
				if eng.Now() > last {
					last = eng.Now()
				}
			})
		}
		eng.Run(0)
		return last
	}
	if eadr, ideal := run(EADRSecure), run(NonSecureADR); eadr > ideal {
		t.Fatalf("eADR (%d) slower than ideal ADR (%d)", eadr, ideal)
	}
}

func TestEADRCrashRecover(t *testing.T) {
	eng, c := newSystem(EADRSecure, masu.BMTEager)
	c.PersistWrite(0x1000, line(1), nil)
	eng.Run(0)
	if _, err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(AnubisRecovery); err != nil {
		t.Fatalf("eADR recovery: %v", err)
	}
	got, _, err := c.MaSU().ReadLine(0x1000)
	if err != nil || got != line(1) {
		t.Fatalf("eADR write lost across crash: %v", err)
	}
}

// TestCrossSchemeFunctionalEquivalence is the differential property: the
// same trace of writes leaves identical verified plaintext on NVM under
// every scheme once quiesced — timing models differ, the protected state
// must not.
func TestCrossSchemeFunctionalEquivalence(t *testing.T) {
	addrs := make([]uint64, 24)
	for i := range addrs {
		addrs[i] = 0x1000 + uint64(i)*4096/2
	}
	ref := map[uint64][64]byte{}
	for _, s := range append(allSchemes(), EADRSecure) {
		eng, c := newSystem(s, masu.BMTEager)
		for i, a := range addrs {
			c.PersistWrite(a, line(byte(i*7)), nil)
		}
		eng.Run(0)
		for i, a := range addrs {
			got, _, err := c.MaSU().ReadLine(a)
			if err != nil {
				t.Fatalf("%v: read %#x: %v", s, a, err)
			}
			if got != line(byte(i*7)) {
				t.Fatalf("%v: wrong plaintext at %#x", s, a)
			}
			if prev, ok := ref[a]; ok && prev != got {
				t.Fatalf("scheme %v diverged at %#x", s, a)
			}
			ref[a] = got
		}
	}
}
