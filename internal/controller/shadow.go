package controller

import (
	"fmt"

	"dolos/internal/crypt"
	"dolos/internal/masu"
	"dolos/internal/misu"
	"dolos/internal/nvm"
	"dolos/internal/sim"
)

// ShadowWindow is the conservative lookahead depth of a parallel-DES
// run: the timing stage may run at most this many functional ops ahead
// of the shadow stage before blocking. Deep enough to ride out a
// SHA-256-heavy burst (a page re-encryption is 32 writes), small enough
// that the in-flight journal stays cache-resident (~80 B per op).
const ShadowWindow = 1024

// shadowOpKind enumerates the journal of functional work. The set is
// exactly the mutation surface of the Ma-SU, Mi-SU and WPQ on the
// benign path (crash/recovery are barred from parallel runs), so
// replaying the journal in order reconstructs the identical functional
// state a serial run builds inline.
type shadowOpKind uint8

const (
	// shadowWrite replays ma.ProcessWrite(addr, data, slot) — data is
	// the CPU's plaintext, which the timing stage carries verbatim.
	shadowWrite shadowOpKind = iota
	// shadowRead replays ma.ReadLine(addr), which must verify — a
	// built-in integrity check on every read.
	shadowRead
	// shadowProtect replays mi.Protect(addr, data), which must pick slot.
	shadowProtect
	// shadowDeferredMAC replays mi.CompleteDeferredMAC(slot).
	shadowDeferredMAC
	// shadowDrainFetch replays the whole Ma-SU fetch step: mark the WPQ
	// slot fetched, decrypt it, and process the write through the Ma-SU.
	// The timing stage's cost-only Mi-SU holds no ciphertext, so the
	// decrypt must happen here, on the functional twin.
	shadowDrainFetch
	// shadowClear replays queue.Clear(slot).
	shadowClear
)

// shadowOp is one journal entry. Plain data, no closures: the pipeline
// channel moves 80 bytes per op and allocates nothing.
type shadowOp struct {
	kind shadowOpKind
	slot int32
	addr uint64
	data [64]byte
}

// shadow is the functional stage of a parallel-DES run: a twin Ma-SU,
// Mi-SU and NVM device built with the real crypto engine, fed the
// journal through a lookahead-bounded pipeline and applied on its own
// goroutine. The timing stage (the event loop, pricing ops through the
// cost-count model) never reads shadow state — by the fast-mode
// invariant it never needs a crypto byte — so the two stages only
// synchronize at the window bound and the end-of-run barrier. Data-line
// crypto is deferred within each journal batch and flushed through the
// engine's batched pad/MAC interface at the batch boundary, which is
// where the parallel speedup comes from.
type shadow struct {
	pipe   *sim.Pipeline[shadowOp]
	ma     *masu.Unit
	mi     *misu.Unit // Dolos schemes only
	dev    *nvm.Device
	closed bool
}

// newShadow builds the functional twin for cfg (already defaulted) and
// starts its pipeline consumer.
func newShadow(cfg Config) *shadow {
	sh := &shadow{}
	eng := crypt.NewEngine(cfg.AESKey, cfg.MACKey)
	sh.dev = nvm.NewDevice(nil, cfg.Layout.DeviceSize, 0)
	sh.ma = masu.NewWithParams(cfg.Tree, eng, sh.dev, cfg.Layout, cfg.masuParams())
	if cfg.Scheme.IsDolos() {
		sh.mi = misu.New(cfg.Scheme.MiSUDesign(), eng, sh.dev, cfg.Layout.DrainBase, cfg.UsableWPQ())
		if cfg.DisableCoalescing {
			sh.mi.Queue().SetCoalescing(false)
		}
	}
	// Batched consumer: ops apply in order, but data-line pad/MAC work
	// defers inside the Ma-SU and flushes once per batch through the
	// batched crypto backend (reads and audits self-flush, so ordering
	// is preserved exactly — see masu.FlushWrites).
	sh.pipe = sim.NewBatchPipeline(ShadowWindow, func(batch []shadowOp) {
		for i := range batch {
			sh.apply(batch[i])
		}
		sh.ma.FlushWrites()
	})
	return sh
}

// apply executes one journal entry on the shadow units. It runs on the
// pipeline's consumer goroutine, which owns all shadow state. Any
// integrity error or disagreement with the timing stage is a model bug
// and panics — equivalence is asserted continuously, not just at the
// end-of-run comparison.
func (sh *shadow) apply(op shadowOp) {
	switch op.kind {
	case shadowWrite:
		sh.ma.ProcessWriteDeferred(op.addr, op.data, int(op.slot))
	case shadowRead:
		if _, _, err := sh.ma.ReadLine(op.addr); err != nil {
			panic("controller: parallel-DES shadow read failed verification: " + err.Error())
		}
	case shadowProtect:
		if slot := sh.mi.Protect(op.addr, op.data); slot != int(op.slot) {
			panic(fmt.Sprintf("controller: parallel-DES divergence: shadow Mi-SU slot %d, timing stage slot %d", slot, op.slot))
		}
	case shadowDeferredMAC:
		sh.mi.CompleteDeferredMAC(int(op.slot))
	case shadowDrainFetch:
		sh.mi.Queue().MarkFetched(int(op.slot))
		addr, plain := sh.mi.DecryptSlot(int(op.slot))
		sh.ma.ProcessWriteDeferred(addr, plain, int(op.slot))
	case shadowClear:
		sh.mi.Queue().Clear(int(op.slot))
	}
}

// journalWrite records a Ma-SU ProcessWrite for shadow replay.
func (c *Controller) journalWrite(addr uint64, data *[64]byte, slot int) {
	if c.sh != nil {
		c.sh.pipe.Submit(shadowOp{kind: shadowWrite, slot: int32(slot), addr: addr, data: *data})
	}
}

// journalRead records a verified Ma-SU read for shadow re-verification
// (the timing stage carries no plaintext to compare; the shadow's own
// MAC/tree verification is the divergence check).
func (c *Controller) journalRead(addr uint64) {
	if c.sh != nil {
		c.sh.pipe.Submit(shadowOp{kind: shadowRead, addr: addr})
	}
}

// journalProtect records a Mi-SU insert with the slot the timing stage
// allocated.
func (c *Controller) journalProtect(addr uint64, data *[64]byte, slot int) {
	if c.sh != nil {
		c.sh.pipe.Submit(shadowOp{kind: shadowProtect, slot: int32(slot), addr: addr, data: *data})
	}
}

// journalSlot records a slot-only op (deferred MAC, fetch, clear).
func (c *Controller) journalSlot(kind shadowOpKind, slot int) {
	if c.sh != nil {
		c.sh.pipe.Submit(shadowOp{kind: kind, slot: int32(slot)})
	}
}

// Quiesce drains and stops the parallel-DES shadow stage, blocking
// until every journaled op has been applied — the event-horizon barrier
// at the end of a run. No-op (and safe to call repeatedly) for serial
// runs. Shadow state read after Quiesce is the exact functional state a
// serial functional run of the same trace produces.
func (c *Controller) Quiesce() {
	if c.sh != nil && !c.sh.closed {
		c.sh.closed = true
		c.sh.pipe.Close()
	}
}

// ShadowMaSU returns the functional twin Ma-SU of a parallel-DES run
// (nil otherwise). Call Quiesce first.
func (c *Controller) ShadowMaSU() *masu.Unit {
	if c.sh == nil {
		return nil
	}
	return c.sh.ma
}

// ShadowMiSU returns the functional twin Mi-SU of a parallel-DES run
// (nil otherwise, and nil for non-Dolos schemes). Call Quiesce first.
func (c *Controller) ShadowMiSU() *misu.Unit {
	if c.sh == nil {
		return nil
	}
	return c.sh.mi
}

// ShadowDevice returns the functional twin NVM device of a parallel-DES
// run (nil otherwise). Call Quiesce first.
func (c *Controller) ShadowDevice() *nvm.Device {
	if c.sh == nil {
		return nil
	}
	return c.sh.dev
}

// LoadInitLine installs one checkpoint-image line functionally, with no
// cycles charged — the Start-time prologue, routed through the
// controller so a parallel-DES shadow replays it too.
func (c *Controller) LoadInitLine(addr uint64, data [64]byte) {
	c.processWrite(addr, &data, -1)
}
