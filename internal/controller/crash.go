package controller

import (
	"errors"
	"fmt"

	"dolos/internal/masu"
	"dolos/internal/misu"
	"dolos/internal/scheme"
	"dolos/internal/wpq"
)

// ADRBudget models the standard ADR reserve: enough energy to flush the
// hardware WPQ (72 bytes per entry) plus, for Post-WPQ, one MAC
// computation (Section 4.3 Design Option 3 reserves queue entries to pay
// for it).
type ADRBudget struct {
	// FlushBytes is the maximum bytes the reserve can push to NVM.
	FlushBytes int
	// MACOps is the maximum MAC computations the reserve can power.
	MACOps int
}

// StandardADR returns the budget of a platform whose ADR was provisioned
// for a hardware WPQ of the given size with no security support — the
// constraint Dolos must operate within.
func StandardADR(hardwareWPQ int) ADRBudget {
	return ADRBudget{FlushBytes: hardwareWPQ * wpq.EntryDataSize, MACOps: 1}
}

// BudgetError reports an ADR budget violation during a drain.
type BudgetError struct {
	Used, Allowed ADRBudget
}

// Error implements the error interface.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("controller: drain exceeded ADR budget: used %d B / %d MACs, allowed %d B / %d MACs",
		e.Used.FlushBytes, e.Used.MACOps, e.Allowed.FlushBytes, e.Allowed.MACOps)
}

// ErrParallelDES reports an operation outside the parallel-DES support
// matrix: crash/attack experiments and multi-core shared controllers
// need the functional security state resident on the timing stage, but
// under parallel DES it lives in the shadow stage a lookahead window
// behind. Mirrors masu.ErrFastMode — callers get a typed refusal, never
// a silent degrade.
var ErrParallelDES = errors.New("controller: unsupported under ParallelDES (functional state lives in the shadow stage; run serial functional)")

// modeErr names the reason a functional-only operation was refused:
// the cost-count stage (ParallelDES) or the latency-only provider
// (FastMode).
func (c *Controller) modeErr() error {
	if c.cm != nil {
		return ErrParallelDES
	}
	return masu.ErrFastMode
}

// CrashReport describes a power-failure drain.
type CrashReport struct {
	// LiveEntries is how many un-processed writes were in the WPQ.
	LiveEntries int
	// Drain is the Mi-SU drain accounting (Dolos schemes).
	Drain misu.DrainStats
	// BytesFlushed is the total bytes pushed on ADR power.
	BytesFlushed int
}

// Crash simulates a power failure: volatile state is lost, the WPQ is
// drained to NVM on the ADR reserve, and the budget is audited. After
// Crash the controller accepts no further requests until Recover.
func (c *Controller) Crash() (CrashReport, error) {
	if !c.Functional() {
		return CrashReport{}, fmt.Errorf("controller: Crash on a FastMode/ParallelDES configuration: %w", c.modeErr())
	}
	c.crashed = true
	c.epoch++
	var rep CrashReport
	rep.LiveEntries = c.queue().Live()

	budget := StandardADR(c.cfg.HardwareWPQ)
	switch {
	case c.cfg.Scheme.IsDolos():
		st := c.mi.Drain()
		rep.Drain = st
		rep.BytesFlushed = st.EntriesWritten*wpq.EntryDataSize + st.MACBlocksWritten*64
		used := ADRBudget{FlushBytes: rep.BytesFlushed, MACOps: st.DeferredMACs}
		if used.FlushBytes > budget.FlushBytes || used.MACOps > budget.MACOps {
			return rep, &BudgetError{Used: used, Allowed: budget}
		}
	default:
		// Baseline and ideal schemes: every accepted write was already
		// fully secured and functionally applied, so draining is just
		// the data flush the platform's ADR was built for.
		rep.BytesFlushed = rep.LiveEntries * wpq.EntryDataSize
	}

	c.ma.CrashVolatile()
	c.waiters, c.waitHead = nil, 0
	return rep, nil
}

// RecoveryMode selects the Ma-SU metadata recovery path.
type RecoveryMode int

const (
	// AnubisRecovery replays the shadow region (fast path).
	AnubisRecovery RecoveryMode = iota
	// OsirisRecovery probes counters against ECC and rebuilds the tree
	// (slow path; BMT only).
	OsirisRecovery
)

// RecoverReport describes a boot-time recovery.
type RecoverReport struct {
	// WPQReplayed is the number of writes restored from the drained WPQ.
	WPQReplayed int
	// MaSU is the metadata recovery report.
	MaSU masu.RecoveryReport
	// RecoveryCycles is the modeled boot-time cost for schemes that
	// report the recovery axis (zero otherwise; see RecoveryEstimate).
	RecoveryCycles uint64
}

// RecoveryEstimate returns the scheme's modeled boot-time recovery cost
// in cycles — the Triad-NVM/SuperMem recovery-vs-runtime axis. Zero for
// legacy schemes (which do not report the axis, keeping their records
// bit-identical to the seed). Derived only from address sets and shadow
// occupancy, so it is identical in fast and functional mode and can be
// sampled without crashing.
func (c *Controller) RecoveryEstimate() uint64 {
	if !c.pipe.ReportsRecovery {
		return 0
	}
	if c.pipe.Recovery == scheme.RecoverReconstruct {
		if c.cm != nil {
			return c.cm.ReconstructEstimate()
		}
		return c.ma.ReconstructEstimate()
	}
	if c.cm != nil {
		return c.cm.AnubisEstimate()
	}
	return c.ma.AnubisEstimate()
}

// Recover restores the system after Crash: Ma-SU metadata first (so the
// counter/tree state is consistent with the persistent root register),
// then the drained WPQ image is verified, decrypted and replayed through
// the Ma-SU. On success the controller accepts requests again.
func (c *Controller) Recover(mode RecoveryMode) (RecoverReport, error) {
	var rep RecoverReport
	if !c.Functional() {
		return rep, fmt.Errorf("controller: Recover on a FastMode/ParallelDES configuration: %w", c.modeErr())
	}
	rep.RecoveryCycles = c.RecoveryEstimate()
	var err error
	if c.pipe.Recovery == scheme.RecoverReconstruct {
		// Reconstruction schemes have no shadow region and no probing
		// fallback: the requested mode is irrelevant.
		rep.MaSU, err = c.ma.RecoverReconstruct()
	} else {
		switch mode {
		case AnubisRecovery:
			rep.MaSU, err = c.ma.RecoverAnubis()
		case OsirisRecovery:
			rep.MaSU, err = c.ma.RecoverOsiris()
		}
	}
	if err != nil {
		return rep, err
	}

	if c.mi != nil {
		writes, rerr := c.mi.Recover()
		if rerr != nil {
			return rep, rerr
		}
		for _, w := range writes {
			c.ma.ProcessWrite(w.Addr, w.Plain, -1)
		}
		rep.WPQReplayed = len(writes)
	} else {
		c.bq.Reset()
	}

	c.crashed = false
	return rep, nil
}
