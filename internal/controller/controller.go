// Package controller implements the secure NVM memory controller: the WPQ,
// the Mi-SU and Ma-SU, and the insertion/drain/read machinery, in the five
// configurations the paper evaluates:
//
//   - NonSecureADR — the ideal reference (Figure 5-c as a hypothetical):
//     writes persist the moment they enter the WPQ; security is applied
//     functionally at drain time with no run-time cost. Infeasible in
//     hardware (ADR cannot power the security unit), used as the upper
//     bound in Figure 6.
//   - PreWPQSecure — the state-of-the-art baseline (Figure 5-b, Anubis
//     AGIT): every write pays counter fetch + encryption + MAC + eager
//     tree update before entering the persistence domain.
//   - DolosFull / DolosPartial / DolosPost — Figure 5-d with the three
//     Mi-SU designs: a cheap Mi-SU protects the WPQ at insertion; the
//     Ma-SU performs the conventional security work after eviction from
//     the WPQ, off the critical path.
//
// The controller is simultaneously functional (real ciphertext, MACs,
// trees on the NVM device — crashes, recovery and attacks operate on real
// state) and timed (latencies from Table 1 drive the discrete-event
// model).
package controller

import (
	"dolos/internal/cache"
	"dolos/internal/crypt"
	"dolos/internal/layout"
	"dolos/internal/masu"
	"dolos/internal/misu"
	"dolos/internal/nvm"
	"dolos/internal/scheme"
	"dolos/internal/sim"
	"dolos/internal/stats"
	"dolos/internal/telemetry"
	"dolos/internal/wpq"
)

// Scheme identifies a secure-memory controller configuration. The type
// now lives in internal/scheme (the central registry that also carries
// each scheme's security pipeline); the alias and re-exported constants
// keep every existing call site source-compatible and the values
// bit-identical.
type Scheme = scheme.ID

const (
	NonSecureADR = scheme.NonSecureADR
	PreWPQSecure = scheme.PreWPQSecure
	DolosFull    = scheme.DolosFull
	DolosPartial = scheme.DolosPartial
	DolosPost    = scheme.DolosPost
	EADRSecure   = scheme.EADRSecure
	TriadNVM     = scheme.TriadNVM
	SuperMem     = scheme.SuperMem
	Phoenix      = scheme.Phoenix
	STUM         = scheme.STUM
)

// Config parameterizes a controller.
type Config struct {
	// Scheme selects the secure-memory configuration.
	Scheme Scheme
	// Tree selects the Ma-SU integrity backend (eager BMT or lazy ToC).
	Tree masu.TreeKind
	// HardwareWPQ is the physical WPQ entry count (16 in Table 1). The
	// usable count under each Mi-SU design derives from it.
	HardwareWPQ int
	// OsirisPeriod is the counter persist period (0 = default).
	OsirisPeriod uint64
	// Layout is the NVM address map (zero value = layout.Default()).
	Layout layout.Map
	// AESKey and MACKey are the processor key registers.
	AESKey, MACKey [16]byte
	// DisableCoalescing turns off the WPQ tag-array coalescing
	// optimization (ablation).
	DisableCoalescing bool
	// CounterCacheBytes / MTCacheBytes override the Table 1 metadata
	// cache capacities (0 = defaults; cache-size ablations).
	CounterCacheBytes uint64
	MTCacheBytes      uint64
	// TriadLevels overrides Triad-NVM's persisted tree-level count N
	// (0 = the scheme's default of 1). N >= the tree height models full
	// tree persistence — the slow-runtime/instant-recovery end of the
	// tradeoff. Ignored by schemes without partial tree persistence.
	TriadLevels int
	// MaSUInterval overrides the Ma-SU pipeline initiation interval
	// (0 = one write per MAC stage). Larger values model weaker memory
	// back-ends — the knob for the "Dolos composes with any back-end
	// optimization" ablation.
	MaSUInterval sim.Cycle
	// FastMode swaps the functional crypto provider for the latency-only
	// one (crypt.FastEngine): no AES, no SHA-256, identical timing.
	// Every deterministic field of a run is bit-identical to functional
	// mode — the model charges latency from cost counts and addresses,
	// never from crypto bytes — but NVM contents are fake, so Crash,
	// Recover and the audit paths refuse to run (see masu.ErrFastMode).
	FastMode bool
	// ParallelDES pipelines one run across two stages: the event loop
	// runs the cost-count timing stage — per-op latency charged from the
	// scheme cost table and masu.CostModel, no crypto bytes touched, no
	// device writes — while a functional shadow twin of the
	// Ma-SU/Mi-SU/device replays the journaled security ops (real
	// AES/SHA-256, batched through crypt.PadBatch/MACBatch) on a second
	// goroutine, at most ShadowWindow ops behind. Timing output is
	// bit-identical to both serial modes; functional state is available
	// from ShadowMaSU/ShadowDevice after Quiesce. Ignored when FastMode
	// is also set (there is no functional work to offload). Crash,
	// recovery and attack paths refuse this mode with ErrParallelDES —
	// the primary units hold no functional state to crash.
	ParallelDES bool
}

func (c Config) withDefaults() Config {
	if c.HardwareWPQ == 0 {
		c.HardwareWPQ = 16
	}
	if c.Layout == (layout.Map{}) {
		c.Layout = layout.Default()
	}
	// Reconstruction-style schemes need the eager BMT; Phoenix is by
	// definition the lazy ToC. Legacy schemes leave the choice free.
	if p := scheme.PipelineOf(c.Scheme); p.HasForceTree {
		c.Tree = p.ForceTree
	}
	return c
}

// masuParams resolves the Ma-SU tuning parameters, including the
// scheme's metadata-persistence policy. Shared by the primary unit and
// the parallel-DES shadow twin so both run the same pipeline.
func (c Config) masuParams() masu.Params {
	return masu.Params{
		OsirisPeriod:      c.OsirisPeriod,
		CounterCacheBytes: c.CounterCacheBytes,
		MTCacheBytes:      c.MTCacheBytes,
		Policy:            scheme.PipelineOf(c.Scheme).PolicyFor(c.TriadLevels),
	}
}

// EffectiveTree returns the integrity backend the controller will
// actually run: the configured one, unless the scheme's pipeline pins a
// backend (Phoenix is the lazy ToC by definition; reconstruction-style
// schemes need the eager BMT). Display and record labels use this so
// they describe the simulated configuration, not the flag.
func (c Config) EffectiveTree() masu.TreeKind {
	return c.withDefaults().Tree
}

// UsableWPQ returns the WPQ entries available for writes under the
// configured scheme.
func (c Config) UsableWPQ() int {
	c = c.withDefaults()
	if c.Scheme.IsDolos() {
		return c.Scheme.MiSUDesign().Entries(c.HardwareWPQ)
	}
	return c.HardwareWPQ
}

// waiter is a write waiting for WPQ space (a retried insertion).
type waiter struct {
	addr     uint64
	data     [64]byte
	accepted func()
}

// Controller is a secure NVM memory controller instance.
type Controller struct {
	cfg  Config
	pipe scheme.Pipeline // the scheme's security pipeline (registry-derived)
	eng  *sim.Engine
	dev  *nvm.Device

	ma *masu.Unit      // primary functional unit (nil in parallel-DES mode)
	cm *masu.CostModel // parallel-DES cost-count stage (nil when serial)
	mi *misu.Unit      // Dolos schemes only
	bq *wpq.Queue      // baseline/ideal schemes: plain WPQ (timing + drain)
	sh *shadow         // parallel-DES functional stage (nil when serial)
	st *stats.Set

	// costs is the scheme's dense latency table: every security-work
	// charge in every execution mode is priced through it.
	costs scheme.CostTable

	secUnit *sim.PipeServer // PreWPQSecure: the security pipeline
	miSU    *sim.PipeServer // Dolos: the Mi-SU MAC engine
	maSU    *sim.PipeServer // Dolos: the Ma-SU pipeline

	// waiters[waitHead:] is the retry queue of parked writes. The head
	// index (rather than re-slicing on pop) keeps the backing array's
	// base fixed, so pushes reuse freed capacity instead of marching the
	// slice through the heap one realloc per retry burst.
	waiters  []waiter
	waitHead int

	insertTime  []sim.Cycle // WPQ slot -> insertion cycle (drain-delay window)
	crashed     bool
	epoch       uint64 // bumped at every crash; stale events self-cancel
	maPumpArmed bool
	haveArrival bool
	lastArrival float64

	// Telemetry (nil/zero when disabled; see SetProbe). Metric handles
	// are cached at wiring time so probe sites cost one nil check.
	probe              *telemetry.Probe
	tWPQ, tMiSU, tMaSU telemetry.TrackID
	hAccept            *telemetry.CycleHist
	hDrain             *telemetry.CycleHist

	// Interned stats handles. stats.Set.Counter creates-on-first-use and
	// returns a stable pointer, so resolving each hot-path metric once in
	// New turns every per-event update into a pointer increment instead
	// of a map[string] hash+probe. Cold-path readers (cpu result
	// extraction, accessors below) still go through the Set by name and
	// see the same objects.
	cWriteRequests    *stats.Counter   // wpq.write_requests
	cEvictRequests    *stats.Counter   // wpq.evict_requests (lazy: see EvictWrite)
	cInserted         *stats.Counter   // wpq.inserted
	cRetryEvents      *stats.Counter   // wpq.retry_events
	cReadHits         *stats.Counter   // wpq.read_hits
	cMemReads         *stats.Counter   // mem.reads
	cDrained          *stats.Counter   // masu.drained
	cCounterMisses    *stats.Counter   // masu.counter_misses
	cTreeMisses       *stats.Counter   // masu.tree_misses
	cSerialMACs       *stats.Counter   // masu.serial_macs
	cNVMWrites        *stats.Counter   // masu.nvm_writes
	cShadowWrites     *stats.Counter   // masu.shadow_writes
	cPageReenc        *stats.Counter   // masu.page_reencryptions
	cReadCounterMiss  *stats.Counter   // masu.read_counter_misses
	cReadTreeMiss     *stats.Counter   // masu.read_tree_misses
	hInterarrival     *stats.Histogram // wpq.interarrival_cycles
	hOccupancyArrival *stats.Histogram // wpq.occupancy_at_arrival
}

// New creates a controller bound to a simulation engine and NVM device.
// The device must span cfg.Layout.DeviceSize.
func New(eng *sim.Engine, dev *nvm.Device, cfg Config) *Controller {
	cfg = cfg.withDefaults()
	costs, err := scheme.CostTableFor(cfg.Scheme)
	if err != nil {
		// A scheme without a cost table has no timing model; defaulting
		// would silently mis-time every operation.
		panic("controller: " + err.Error())
	}
	// The execution-mode seam. Serial functional runs build the Ma-SU
	// with the real crypto engine; fast runs swap in the latency-only
	// provider. A parallel-DES run goes further: the event loop carries
	// no Ma-SU at all — the cost-count model prices every op from the
	// scheme's latency table while the shadow stage owns all functional
	// state (see shadow.go).
	pdes := cfg.ParallelDES && !cfg.FastMode
	var engine crypt.Provider
	if cfg.FastMode {
		engine = crypt.NewFastEngine()
	} else if !pdes {
		engine = crypt.NewEngine(cfg.AESKey, cfg.MACKey)
	}
	// Initiation intervals: a new write can enter a security pipeline
	// every MAC stage. Post-WPQ's insert path has no MAC at all.
	maII := cfg.MaSUInterval
	if maII == 0 {
		maII = costs.MaII
	}
	c := &Controller{
		cfg:        cfg,
		pipe:       scheme.PipelineOf(cfg.Scheme),
		eng:        eng,
		dev:        dev,
		st:         stats.NewSet(),
		costs:      costs,
		secUnit:    sim.NewPipeServer(eng, "security-unit", maII),
		miSU:       sim.NewPipeServer(eng, "mi-su", costs.MiII),
		maSU:       sim.NewPipeServer(eng, "ma-su", maII),
		insertTime: make([]sim.Cycle, cfg.UsableWPQ()),
	}
	if pdes {
		c.cm = masu.NewCostModel(cfg.Tree, cfg.Layout, cfg.masuParams())
	} else {
		c.ma = masu.NewWithParams(cfg.Tree, engine, dev, cfg.Layout, cfg.masuParams())
	}
	// Every metric below appears in any run that issues a single write or
	// read, so resolving them eagerly does not change which names a
	// RunRecord snapshot reports. wpq.evict_requests is the exception —
	// bench-grid runs never evict — so EvictWrite interns it on first
	// use to keep snapshots byte-identical with the lazy registry.
	c.cWriteRequests = c.st.Counter("wpq.write_requests")
	c.cInserted = c.st.Counter("wpq.inserted")
	c.cRetryEvents = c.st.Counter("wpq.retry_events")
	c.cReadHits = c.st.Counter("wpq.read_hits")
	c.cMemReads = c.st.Counter("mem.reads")
	c.cDrained = c.st.Counter("masu.drained")
	c.cCounterMisses = c.st.Counter("masu.counter_misses")
	c.cTreeMisses = c.st.Counter("masu.tree_misses")
	c.cSerialMACs = c.st.Counter("masu.serial_macs")
	c.cNVMWrites = c.st.Counter("masu.nvm_writes")
	c.cShadowWrites = c.st.Counter("masu.shadow_writes")
	c.cPageReenc = c.st.Counter("masu.page_reencryptions")
	c.cReadCounterMiss = c.st.Counter("masu.read_counter_misses")
	c.cReadTreeMiss = c.st.Counter("masu.read_tree_misses")
	c.hInterarrival = c.st.Histogram("wpq.interarrival_cycles")
	c.hOccupancyArrival = c.st.Histogram("wpq.occupancy_at_arrival")
	if cfg.Scheme.IsDolos() {
		if pdes {
			// Cost-only Mi-SU: exact queue/sequencing behaviour, no
			// pads, no MACs — the shadow twin does the crypto.
			c.mi = misu.NewCostOnly(cfg.Scheme.MiSUDesign(), cfg.UsableWPQ())
		} else {
			c.mi = misu.New(cfg.Scheme.MiSUDesign(), engine, dev, cfg.Layout.DrainBase, cfg.UsableWPQ())
		}
	} else {
		c.bq = wpq.New(cfg.UsableWPQ())
	}
	if cfg.DisableCoalescing {
		c.queue().SetCoalescing(false)
	}
	if pdes {
		c.sh = newShadow(cfg)
	}
	return c
}

// Functional reports whether the controller's primary units compute
// real cryptographic state inline (serial functional mode). Fast and
// parallel-DES runs return false — a parallel run's functional state
// lives on the shadow stage instead.
func (c *Controller) Functional() bool { return c.ma != nil && c.ma.Functional() }

// Stats returns the controller's statistics registry.
func (c *Controller) Stats() *stats.Set { return c.st }

// MaSU returns the Major Security Unit. Nil in parallel-DES mode, where
// the timing stage runs the cost-count model instead (CostModel) and
// functional state lives on the shadow twin (ShadowMaSU).
func (c *Controller) MaSU() *masu.Unit { return c.ma }

// CostModel returns the parallel-DES timing stage's cost-count Ma-SU
// model (nil in serial modes).
func (c *Controller) CostModel() *masu.CostModel { return c.cm }

// MetaCaches returns the live counter and Merkle-tree metadata caches
// regardless of execution mode — the primary unit's in serial modes,
// the cost model's in a parallel-DES run (both see the identical access
// stream, so hit rates are the same numbers).
func (c *Controller) MetaCaches() (counter, mt *cache.Cache) {
	if c.cm != nil {
		return c.cm.CounterCache(), c.cm.MTCache()
	}
	return c.ma.CounterCache(), c.ma.MTCache()
}

// MiSU returns the Minor Security Unit (nil for non-Dolos schemes).
func (c *Controller) MiSU() *misu.Unit { return c.mi }

// Config returns the configuration in effect.
func (c *Controller) Config() Config { return c.cfg }

// Queue returns the WPQ regardless of scheme — the shared-arbiter
// entry point internal/mcore uses to install its occupancy observer.
func (c *Controller) Queue() *wpq.Queue { return c.queue() }

// queue returns the WPQ regardless of scheme.
func (c *Controller) queue() *wpq.Queue {
	if c.mi != nil {
		return c.mi.Queue()
	}
	return c.bq
}

// staleAt reports whether the controller has crashed, or
// crashed-and-recovered, since the caller read c.epoch — every deferred
// completion checks it so events scheduled before a power failure cannot
// touch post-recovery state. Callers snapshot the epoch as a plain value
// (their completion closures capture c anyway), which is why this is not
// a closure-returning helper: one predicate closure per scheduled write
// adds up on the hot path.
func (c *Controller) staleAt(epoch uint64) bool { return c.crashed || c.epoch != epoch }

// WPQLive returns the current number of live WPQ entries.
func (c *Controller) WPQLive() int { return c.queue().Live() }

// RetryEvents returns the number of WPQ insertion re-try events.
func (c *Controller) RetryEvents() uint64 { return c.cRetryEvents.Value() }

// WriteRequests returns the number of write requests that arrived.
func (c *Controller) WriteRequests() uint64 { return c.cWriteRequests.Value() }

// RetryPerKWR returns retry events per kilo write requests (Table 2).
func (c *Controller) RetryPerKWR() float64 {
	w := c.WriteRequests()
	if w == 0 {
		return 0
	}
	return float64(c.RetryEvents()) / float64(w) * 1000
}
