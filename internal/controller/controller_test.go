package controller

import (
	"testing"

	"dolos/internal/crypt"
	"dolos/internal/layout"
	"dolos/internal/masu"
	"dolos/internal/misu"
	"dolos/internal/nvm"
	"dolos/internal/sim"
)

func newSystem(scheme Scheme, tree masu.TreeKind) (*sim.Engine, *Controller) {
	eng := sim.NewEngine()
	lay := layout.Small()
	dev := nvm.NewDevice(eng, lay.DeviceSize, 0)
	cfg := Config{Scheme: scheme, Tree: tree, Layout: lay}
	copy(cfg.AESKey[:], "ctrl-aes-key-016")
	copy(cfg.MACKey[:], "ctrl-mac-key-016")
	return eng, New(eng, dev, cfg)
}

func line(seed byte) [64]byte {
	var l [64]byte
	for i := range l {
		l[i] = seed ^ byte(i*13)
	}
	return l
}

func allSchemes() []Scheme {
	return []Scheme{NonSecureADR, PreWPQSecure, DolosFull, DolosPartial, DolosPost}
}

func TestSchemeNamesAndSizes(t *testing.T) {
	for _, s := range allSchemes() {
		if s.String() == "" {
			t.Fatalf("empty name for %d", s)
		}
	}
	for _, tc := range []struct {
		s    Scheme
		want int
	}{{NonSecureADR, 16}, {PreWPQSecure, 16}, {DolosFull, 16}, {DolosPartial, 14}, {DolosPost, 11}} {
		cfg := Config{Scheme: tc.s}
		if got := cfg.UsableWPQ(); got != tc.want {
			t.Fatalf("%v usable WPQ = %d, want %d", tc.s, got, tc.want)
		}
	}
}

func TestPersistWriteAccepted(t *testing.T) {
	for _, s := range allSchemes() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			eng, c := newSystem(s, masu.BMTEager)
			var acceptedAt sim.Cycle
			c.PersistWrite(0x1000, line(1), func() { acceptedAt = eng.Now() })
			eng.Run(0)
			if acceptedAt == 0 {
				t.Fatal("write never accepted")
			}
			if c.WriteRequests() != 1 {
				t.Fatalf("write requests = %d", c.WriteRequests())
			}
		})
	}
}

func TestInsertLatencyOrdering(t *testing.T) {
	// The paper's core claim at the single-write level: acceptance
	// latency ideal < Post < Partial < Full << baseline.
	lat := map[Scheme]sim.Cycle{}
	for _, s := range allSchemes() {
		eng, c := newSystem(s, masu.BMTEager)
		var acceptedAt sim.Cycle
		c.PersistWrite(0x1000, line(1), func() { acceptedAt = eng.Now() })
		eng.Run(0)
		lat[s] = acceptedAt
	}
	if !(lat[NonSecureADR] <= lat[DolosPost] &&
		lat[DolosPost] < lat[DolosPartial] &&
		lat[DolosPartial] < lat[DolosFull] &&
		lat[DolosFull] < lat[PreWPQSecure]) {
		t.Fatalf("acceptance latencies out of order: %v", lat)
	}
	// Baseline pays at least the 10 MACs + AES.
	if lat[PreWPQSecure] < 10*crypt.MACLatency {
		t.Fatalf("baseline accepted too fast: %d", lat[PreWPQSecure])
	}
}

func TestDolosDrainsInBackground(t *testing.T) {
	eng, c := newSystem(DolosPartial, masu.BMTEager)
	for i := uint64(0); i < 5; i++ {
		c.PersistWrite(0x1000+i*64, line(byte(i)), nil)
	}
	eng.Run(0)
	if got := c.Stats().Counter("masu.drained").Value(); got != 5 {
		t.Fatalf("drained %d entries, want 5", got)
	}
	if c.WPQLive() != 0 {
		t.Fatalf("WPQ live = %d after quiesce", c.WPQLive())
	}
	if c.MaSU().Writes() != 5 {
		t.Fatalf("MaSU processed %d writes", c.MaSU().Writes())
	}
}

func TestRetryEventsWhenFull(t *testing.T) {
	eng, c := newSystem(DolosPartial, masu.BMTEager)
	// Burst far more writes than WPQ entries at cycle 0.
	n := uint64(40)
	accepted := 0
	for i := uint64(0); i < n; i++ {
		c.PersistWrite(0x1000+i*64, line(byte(i)), func() { accepted++ })
	}
	eng.Run(0)
	if accepted != int(n) {
		t.Fatalf("accepted %d of %d writes", accepted, n)
	}
	if c.RetryEvents() == 0 {
		t.Fatal("burst produced no retry events")
	}
	if c.RetryPerKWR() <= 0 {
		t.Fatal("retry/KWR not computed")
	}
}

func TestIdealNoRetryUnderLightLoad(t *testing.T) {
	eng, c := newSystem(NonSecureADR, masu.BMTEager)
	for i := uint64(0); i < 8; i++ {
		i := i
		eng.At(sim.Cycle(i*5000), func() {
			c.PersistWrite(0x1000+i*64, line(byte(i)), nil)
		})
	}
	eng.Run(0)
	if c.RetryEvents() != 0 {
		t.Fatalf("ideal scheme retried %d times under light load", c.RetryEvents())
	}
}

func TestReadAfterDrain(t *testing.T) {
	for _, s := range allSchemes() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			eng, c := newSystem(s, masu.BMTEager)
			c.PersistWrite(0x1000, line(7), nil)
			eng.Run(0)
			var readDone bool
			c.ReadLine(0x1000, func() { readDone = true })
			eng.Run(0)
			if !readDone {
				t.Fatal("read never completed")
			}
		})
	}
}

func TestReadHitsWPQ(t *testing.T) {
	eng, c := newSystem(DolosPartial, masu.BMTEager)
	// Saturate the Ma-SU so entries linger in the WPQ, then read one.
	for i := uint64(0); i < 10; i++ {
		c.PersistWrite(0x1000+i*64, line(byte(i)), nil)
	}
	var hitLatency sim.Cycle
	eng.RunUntil(300) // first insert done at 161; its drain takes ~1700
	if c.WPQLive() == 0 {
		t.Skip("WPQ already drained; timing too fast to observe")
	}
	start := eng.Now()
	c.ReadLine(0x1000, func() { hitLatency = eng.Now() - start })
	eng.Run(0)
	if got := c.Stats().Counter("wpq.read_hits").Value(); got != 1 {
		t.Fatalf("WPQ read hits = %d", got)
	}
	if hitLatency > 20 {
		t.Fatalf("WPQ hit took %d cycles, should be on-chip fast", hitLatency)
	}
}

func TestCrashRecoverPreservesWrites(t *testing.T) {
	for _, s := range allSchemes() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			eng, c := newSystem(s, masu.BMTEager)
			want := map[uint64][64]byte{}
			for i := uint64(0); i < 12; i++ {
				addr := 0x1000 + i*64
				p := line(byte(i))
				c.PersistWrite(addr, p, func() { want[addr] = p })
			}
			// Crash mid-flight: run only a little so some entries are
			// still in the WPQ for Dolos schemes. Only writes accepted
			// into the persistence domain by then are guaranteed to
			// survive — exactly the paper's contract.
			eng.RunUntil(2000)
			if _, err := c.Crash(); err != nil {
				t.Fatalf("crash: %v", err)
			}
			rep, err := c.Recover(AnubisRecovery)
			if err != nil {
				t.Fatalf("recover: %v", err)
			}
			_ = rep
			// All accepted writes must be readable with correct data.
			for addr, p := range want {
				got, _, err := c.MaSU().ReadLine(addr)
				if err != nil {
					t.Fatalf("post-recovery read %#x: %v", addr, err)
				}
				if got != p {
					t.Fatalf("post-recovery data mismatch at %#x", addr)
				}
			}
		})
	}
}

func TestCrashDrainWithinADRBudget(t *testing.T) {
	for _, s := range []Scheme{DolosFull, DolosPartial, DolosPost} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			eng, c := newSystem(s, masu.BMTEager)
			for i := uint64(0); i < 20; i++ {
				c.PersistWrite(0x1000+i*64, line(byte(i)), nil)
			}
			eng.RunUntil(500) // crash with the queue as full as it gets
			rep, err := c.Crash()
			if err != nil {
				t.Fatalf("ADR budget violated: %v", err)
			}
			budget := StandardADR(c.Config().HardwareWPQ)
			if rep.BytesFlushed > budget.FlushBytes {
				t.Fatalf("flushed %d bytes > budget %d", rep.BytesFlushed, budget.FlushBytes)
			}
		})
	}
}

func TestOsirisRecoveryPath(t *testing.T) {
	eng, c := newSystem(DolosPartial, masu.BMTEager)
	for i := uint64(0); i < 6; i++ {
		c.PersistWrite(0x2000+i*64, line(byte(40+i)), nil)
	}
	eng.Run(0)
	if _, err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.Recover(OsirisRecovery)
	if err != nil {
		t.Fatalf("Osiris recovery: %v", err)
	}
	if rep.MaSU.OsirisProbes == 0 {
		t.Fatal("Osiris path ran no probes")
	}
}

func TestPostWPQDeferredSerializes(t *testing.T) {
	eng, c := newSystem(DolosPost, masu.BMTEager)
	var at1, at2 sim.Cycle
	c.PersistWrite(0x1000, line(1), func() { at1 = eng.Now() })
	c.PersistWrite(0x1040, line(2), func() { at2 = eng.Now() })
	eng.Run(0)
	// The second write cannot be accepted until the first's deferred MAC
	// completes (one outstanding deferred op).
	if at2 < at1+crypt.MACLatency {
		t.Fatalf("second Post-WPQ write accepted at %d, first at %d: deferred op not serialized", at2, at1)
	}
}

func TestCoalescingReducesOccupancy(t *testing.T) {
	eng, c := newSystem(DolosPartial, masu.BMTEager)
	for i := 0; i < 6; i++ {
		c.PersistWrite(0x1000, line(byte(i)), nil) // same line repeatedly
	}
	eng.Run(0)
	if got := c.queue().Coalesces(); got == 0 {
		t.Fatal("no coalescing on repeated same-line writes")
	}
}

func TestDisableCoalescing(t *testing.T) {
	eng := sim.NewEngine()
	lay := layout.Small()
	dev := nvm.NewDevice(eng, lay.DeviceSize, 0)
	cfg := Config{Scheme: DolosPartial, Layout: lay, DisableCoalescing: true}
	c := New(eng, dev, cfg)
	for i := 0; i < 4; i++ {
		c.PersistWrite(0x1000, line(byte(i)), nil)
	}
	eng.Run(0)
	if got := c.queue().Coalesces(); got != 0 {
		t.Fatalf("coalesced %d times with coalescing disabled", got)
	}
}

func TestEvictWriteSecured(t *testing.T) {
	eng, c := newSystem(DolosPartial, masu.BMTEager)
	c.EvictWrite(0x3000, line(9))
	eng.Run(0)
	if c.MaSU().Writes() != 1 {
		t.Fatal("eviction bypassed the Ma-SU")
	}
	got, _, err := c.MaSU().ReadLine(0x3000)
	if err != nil || got != line(9) {
		t.Fatalf("evicted line wrong: %v", err)
	}
}

func TestInterarrivalTracked(t *testing.T) {
	eng, c := newSystem(DolosPartial, masu.BMTEager)
	for i := uint64(0); i < 4; i++ {
		i := i
		eng.At(sim.Cycle(i*473), func() { c.PersistWrite(0x1000+i*64, line(byte(i)), nil) })
	}
	eng.Run(0)
	h := c.Stats().Histogram("wpq.interarrival_cycles")
	if h.Count() != 3 || h.Mean() != 473 {
		t.Fatalf("interarrival: n=%d mean=%v", h.Count(), h.Mean())
	}
}

func TestMiSUDesignMapping(t *testing.T) {
	if DolosFull.MiSUDesign() != misu.FullWPQ ||
		DolosPartial.MiSUDesign() != misu.PartialWPQ ||
		DolosPost.MiSUDesign() != misu.PostWPQ {
		t.Fatal("scheme -> design mapping wrong")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("MiSUDesign on baseline did not panic")
		}
	}()
	PreWPQSecure.MiSUDesign()
}
