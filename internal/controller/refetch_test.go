package controller

import (
	"testing"

	"dolos/internal/masu"
)

// TestCoalesceIntoInFlightEntry is the regression test for the stale-
// replay bug: a write that coalesces into a WPQ entry the Ma-SU has
// already fetched must cause a re-fetch, so the final NVM state carries
// the newest value — at quiesce and across a crash.
func TestCoalesceIntoInFlightEntry(t *testing.T) {
	eng, c := newSystem(DolosPartial, masu.BMTEager)
	addr := uint64(0x1000)

	// First write; let the Ma-SU fetch it (drain delay 400 + pipeline).
	c.PersistWrite(addr, line(1), nil)
	eng.RunUntil(700)
	slot, ok := c.mi.Queue().Lookup(addr)
	if !ok || !c.mi.Queue().Entry(slot).Fetched {
		t.Skip("entry not in-flight at this cycle; timing shifted")
	}

	// Second write to the same line while in flight: must coalesce and
	// reset the Fetched flag.
	c.PersistWrite(addr, line(2), nil)
	eng.Run(0)

	got, _, err := c.MaSU().ReadLine(addr)
	if err != nil || got != line(2) {
		t.Fatalf("in-flight coalesce lost the newer value: got[0]=%x err=%v", got[0], err)
	}
	if c.MaSU().Writes() < 2 {
		t.Fatal("entry was not re-fetched after coalesce")
	}
}

// TestCoalesceInFlightCrash drains the WPQ with a re-coalesced entry
// still live and verifies the newest value survives recovery.
func TestCoalesceInFlightCrash(t *testing.T) {
	eng, c := newSystem(DolosPartial, masu.BMTEager)
	addr := uint64(0x2000)
	c.PersistWrite(addr, line(1), nil)
	eng.RunUntil(700)
	accepted := false
	c.PersistWrite(addr, line(2), func() { accepted = true })
	eng.RunUntil(1000)
	if !accepted {
		t.Skip("second write not accepted before crash point")
	}
	if _, err := c.Crash(); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Recover(AnubisRecovery); err != nil {
		t.Fatalf("recover: %v", err)
	}
	got, _, err := c.MaSU().ReadLine(addr)
	if err != nil || got != line(2) {
		t.Fatalf("crash after in-flight coalesce lost newest value: err=%v", err)
	}
}

// TestOverflowedPageFullyVerifiable is the regression test for the
// page-overflow invariant: after a minor-counter overflow, every line of
// the page — including never-written ones — must verify.
func TestOverflowedPageFullyVerifiable(t *testing.T) {
	eng, c := newSystem(DolosPartial, masu.BMTEager)
	hot := uint64(0x3000)
	for i := 0; i < 130; i++ {
		c.PersistWrite(hot, line(byte(i)), nil)
		eng.Run(0) // serialize so every write lands (no coalescing noise)
	}
	ma := c.MaSU()
	if ma.Counters().Counter(hot) < 128 {
		t.Skip("no overflow reached")
	}
	for a := uint64(0x3000) &^ 4095; a < (0x3000&^uint64(4095))+4096; a += 64 {
		if err := ma.CheckLine(a); err != nil {
			t.Fatalf("line %#x unverifiable after page overflow: %v", a, err)
		}
	}
}
