package cpu

import "dolos/internal/trace"

// Mirror tracks, per line address, the plaintext the application last
// wrote. It is the small seam behind which the single-core System and
// the multi-core per-core tables share one implementation: values are
// pointers into the immutable trace (ops and init image are never
// mutated after generation), so tracking a write stores one word
// instead of copying 64 bytes.
type Mirror interface {
	// At returns the mirror entry for addr's line (nil if untracked).
	At(addr uint64) *[64]byte
	// Set records p as addr's line contents.
	Set(addr uint64, p *[64]byte)
}

// mirrorTabLimit caps the dense mirror at 1<<24 lines (a 128 MB pointer
// table covering 1 GB of touched span); traces with a sparser footprint
// fall back to the map.
const mirrorTabLimit = 1 << 24

// TraceMirror is the standard Mirror: a dense base-offset table sized to
// one trace's touched line range — the hottest map operations left after
// the metadata tables went dense — with a map fallback for addresses
// outside that range (none in practice) and for use before SizeFor runs.
type TraceMirror struct {
	base uint64
	tab  []*[64]byte
	m    map[uint64]*[64]byte
}

// NewTraceMirror returns an empty mirror (map-only until SizeFor).
func NewTraceMirror() *TraceMirror {
	return &TraceMirror{m: make(map[uint64]*[64]byte)}
}

// SizeFor sizes the dense table to the trace's touched line range.
func (m *TraceMirror) SizeFor(tr *trace.Trace) {
	lo, hi := ^uint64(0), uint64(0)
	track := func(a uint64) {
		a &^= 63
		if a < lo {
			lo = a
		}
		if a > hi {
			hi = a
		}
	}
	for i := range tr.InitImage {
		track(tr.InitImage[i].Addr)
	}
	for i := range tr.Ops {
		if k := tr.Ops[i].Kind; k == trace.Write || k == trace.Flush || k == trace.Read {
			track(tr.Ops[i].Addr)
		}
	}
	if lo > hi {
		return // no memory operations
	}
	if n := (hi-lo)>>6 + 1; n <= mirrorTabLimit {
		m.base = lo
		m.tab = make([]*[64]byte, n)
	}
}

// At returns the mirror entry for addr's line (nil if untracked).
func (m *TraceMirror) At(addr uint64) *[64]byte {
	addr &^= 63
	if i := (addr - m.base) >> 6; i < uint64(len(m.tab)) {
		return m.tab[i]
	}
	return m.m[addr]
}

// Set records p as addr's line contents.
func (m *TraceMirror) Set(addr uint64, p *[64]byte) {
	addr &^= 63
	if i := (addr - m.base) >> 6; i < uint64(len(m.tab)) {
		m.tab[i] = p
		return
	}
	m.m[addr] = p
}
