// Package cpu is the timing front-end of the simulated machine: it
// replays a workload trace against the Table-1 cache hierarchy and a
// secure memory controller, enforcing the x86 persistency semantics the
// workloads were written with — stores complete into the caches, clwb
// pushes a line toward the memory controller asynchronously, and sfence
// stalls the core until every outstanding flush has been accepted into
// the persistence domain.
package cpu

import (
	"fmt"

	"dolos/internal/cache"
	"dolos/internal/controller"
	"dolos/internal/nvm"
	"dolos/internal/sim"
	"dolos/internal/stats"
	"dolos/internal/telemetry"
	"dolos/internal/trace"
)

// Result summarizes one trace execution.
type Result struct {
	// Scheme and Workload identify the run.
	Scheme   string
	Workload string
	// Cycles is the cycle at which the last trace operation completed.
	Cycles sim.Cycle
	// Transactions is the number of durable transactions executed.
	Transactions int
	// Ops is the number of trace operations executed.
	Ops int
	// CyclesPerTx is the mean transaction latency.
	CyclesPerTx float64
	// CPI is cycles per trace operation (the Figure 6 CPI proxy).
	CPI float64
	// FenceStalls is the total cycles the core spent blocked in sfence.
	FenceStalls sim.Cycle
	// WriteRequests and RetryEvents feed Table 2.
	WriteRequests, RetryEvents uint64
	// RetryPerKWR is retry events per kilo write requests.
	RetryPerKWR float64
	// MeanInterarrival is the mean WPQ request inter-arrival in cycles.
	MeanInterarrival float64
	// MedianTxCycles and P99TxCycles are transaction-latency quantiles —
	// the tail is where persist stalls surface.
	MedianTxCycles, P99TxCycles float64
	// WPQMeanOccupancy is the mean number of live WPQ entries observed
	// at write arrivals.
	WPQMeanOccupancy float64
	// WPQReadHits counts reads served from the WPQ.
	WPQReadHits uint64
	// MemReads counts reads that reached the memory controller.
	MemReads uint64
	// Cores is the number of contending cores (0 for the single-core
	// model, whose output predates the field and must stay byte-stable).
	Cores int
	// OoOWindow is the out-of-order front-end issue window (0 for the
	// default in-order front-end).
	OoOWindow int
	// Prefetches counts stride-prefetch reads issued by the OoO
	// front-end (always 0 for the in-order model and window 1).
	Prefetches uint64
	// RecoveryCycles is the modeled boot-time recovery cost for schemes
	// that report the recovery axis (Triad-NVM, SuperMem, Phoenix,
	// STUM); 0 for legacy schemes, keeping their records byte-stable.
	RecoveryCycles uint64
	// PerCore carries per-core summaries for multi-core runs (nil
	// otherwise).
	PerCore []CoreResult
}

// CoreResult summarizes one core of a multi-core run. It lives in this
// package (pure data, filled by internal/mcore) so Result stays the one
// result type every layer above the simulator shares.
type CoreResult struct {
	// Core is the core index; Workload and Seed identify its instance.
	Core     int
	Workload string
	Seed     int64
	// Cycles is when this core's trace finished.
	Cycles sim.Cycle
	// Transactions and Ops count this core's executed work.
	Transactions int
	Ops          int
	// FenceStalls is cycles this core spent blocked in sfence — under
	// contention, mostly waiting behind a full shared WPQ.
	FenceStalls sim.Cycle
	// AcceptedPersists counts this core's persists accepted into the
	// persistence domain.
	AcceptedPersists uint64
	// ArbGrants and ArbWaitCycles are the memory-controller arbiter's
	// fairness accounting: requests granted to this core and total
	// cycles its requests waited for the command port.
	ArbGrants     uint64
	ArbWaitCycles uint64
}

// System wires a core, the cache hierarchy and a secure memory
// controller around one discrete-event engine.
type System struct {
	Eng  *sim.Engine
	Dev  *nvm.Device
	Ctrl *controller.Controller
	Hier *cache.Hierarchy

	// mirror tracks each line address's last application-written
	// plaintext; see TraceMirror. The trace's line-address range is
	// known when Start loads it, so the common case is a dense table
	// indexed by line offset — the mirror is updated on every write and
	// consulted on every eviction.
	mirror *TraceMirror

	// OnAccepted, when set, observes every persist acceptance (used by
	// the crash driver to know which writes the platform has promised).
	OnAccepted func(addr uint64, data [64]byte)

	running      bool
	finished     bool
	endCycle     sim.Cycle
	outstanding  int
	fenceResume  func()
	fenceStart   sim.Cycle
	fenceStalls  sim.Cycle
	txStart      sim.Cycle
	txLatencies  *stats.Histogram
	txReservoir  *stats.Reservoir
	opsExecuted  int
	transactions int

	// Telemetry (nil/zero when disabled; see SetProbe).
	probe *telemetry.Probe
	tCPU  telemetry.TrackID
}

// backend adapts the controller to the cache.Backend interface, sourcing
// eviction data from the line mirror.
type backend struct{ s *System }

func (b backend) ReadLine(addr uint64, done func()) { b.s.Ctrl.ReadLine(addr, done) }

func (b backend) EvictLine(addr uint64) {
	var data [64]byte
	if p := b.s.mirrorAt(addr); p != nil {
		data = *p
	}
	b.s.Ctrl.EvictWrite(addr, data)
}

// NewSystem builds a full machine for the given controller configuration.
func NewSystem(cfg controller.Config) *System {
	eng := sim.NewEngine()
	s := &System{
		Eng:         eng,
		mirror:      NewTraceMirror(),
		txLatencies: stats.NewHistogram("tx_latency"),
		txReservoir: stats.NewReservoir("tx_latency", 0),
	}
	dev := nvm.NewDevice(eng, deviceSize(cfg), 0)
	s.Dev = dev
	s.Ctrl = controller.New(eng, dev, cfg)
	s.Hier = cache.NewHierarchy(eng, backend{s})
	return s
}

func deviceSize(cfg controller.Config) uint64 {
	if cfg.Layout.DeviceSize != 0 {
		return cfg.Layout.DeviceSize
	}
	return 24 << 30 // layout.Default()
}

// SetProbe attaches (or with nil detaches) a telemetry probe to the
// whole machine: the CPU front-end (fence stalls, transaction spans),
// the event-dispatch counter on the engine, and — via the controller —
// the WPQ, security units and NVM banks. Call before Start/Run. Hooks
// are purely observational: timing is bit-identical with and without a
// probe.
func (s *System) SetProbe(p *telemetry.Probe) {
	s.probe = p
	if p == nil {
		s.Ctrl.SetProbe(nil)
		s.Eng.SetHook(nil)
		return
	}
	s.tCPU = p.Track("cpu") // register first so the CPU is the top track
	s.Ctrl.SetProbe(p)
	events := p.Registry().Counter("sim.events_dispatched")
	s.Eng.SetHook(func(_ sim.Cycle) { events.Inc() })
}

// Probe returns the attached telemetry probe (nil when disabled).
func (s *System) Probe() *telemetry.Probe { return s.probe }

// Run executes the trace to completion and returns the result. The
// engine is drained afterwards so the controller quiesces.
func (s *System) Run(tr *trace.Trace) Result {
	s.Start(tr)
	s.Eng.Run(0)
	if !s.finished {
		panic("cpu: trace execution deadlocked (fence never satisfied)")
	}
	// Event horizon: a parallel-DES shadow stage drains here, so the
	// functional state is complete before anyone inspects the result.
	s.Ctrl.Quiesce()
	return s.Collect(tr)
}

// Mirror returns the current plaintext value of addr's line as the
// application last wrote it.
func (s *System) Mirror(addr uint64) ([64]byte, bool) {
	if p := s.mirrorAt(addr); p != nil {
		return *p, true
	}
	return [64]byte{}, false
}

// mirrorAt returns the mirror entry for addr's line (nil if untracked).
func (s *System) mirrorAt(addr uint64) *[64]byte { return s.mirror.At(addr) }

// setMirror records p as addr's line contents.
func (s *System) setMirror(addr uint64, p *[64]byte) { s.mirror.Set(addr, p) }

// Finished reports whether the trace has fully executed.
func (s *System) Finished() bool { return s.finished }

// Start schedules trace execution on the engine without running it; the
// caller drives the clock (RunUntil for crash injection). The trace's
// checkpoint image (the fast-forwarded warm-up state) is loaded into the
// secure memory functionally first, with no cycles charged.
func (s *System) Start(tr *trace.Trace) {
	s.prepare(tr)

	// One step/next closure pair serves the whole trace: exactly one op
	// is in flight at a time, so the shared index advances strictly after
	// the previous op's continuation fired. The former per-op `next`
	// closure was the single largest allocation site in a bench run (one
	// escape per trace op). Only the persist-completion callback still
	// allocates — it genuinely outlives its op — and it captures the
	// read-only op pointer rather than a 64-byte data copy.
	i := 0
	var step func()
	next := func() { i++; step() }
	step = func() {
		if i >= len(tr.Ops) {
			s.endCycle = s.Eng.Now()
			s.finished = true
			return
		}
		op := &tr.Ops[i]
		s.opsExecuted++
		switch op.Kind {
		case trace.Compute:
			s.Eng.After(op.Cycles, next)
		case trace.Read:
			s.Hier.Read(op.Addr, next)
		case trace.Write:
			s.setMirror(op.Addr, &op.Data)
			lat := s.Hier.Write(op.Addr)
			s.Eng.After(lat, next)
		case trace.Flush:
			s.setMirror(op.Addr, &op.Data)
			if s.Hier.FlushLine(op.Addr) {
				s.outstanding++
				s.Ctrl.PersistWrite(op.Addr, op.Data, func() {
					s.outstanding--
					if s.OnAccepted != nil {
						s.OnAccepted(op.Addr, op.Data)
					}
					if s.outstanding == 0 && s.fenceResume != nil {
						resume := s.fenceResume
						s.fenceResume = nil
						s.fenceStalls += s.Eng.Now() - s.fenceStart
						if s.probe != nil {
							s.probe.Span(s.tCPU, "fence-stall", s.fenceStart, s.Eng.Now())
						}
						resume()
					}
				})
			}
			s.Eng.After(2, next) // clwb issue cost; completion is async
		case trace.Fence:
			if s.outstanding == 0 {
				s.Eng.After(1, next)
			} else {
				s.fenceStart = s.Eng.Now()
				s.fenceResume = next
			}
		case trace.TxBegin:
			s.txStart = s.Eng.Now()
			next()
		case trace.TxEnd:
			s.transactions++
			lat := float64(s.Eng.Now() - s.txStart)
			s.txLatencies.Observe(lat)
			s.txReservoir.Observe(lat)
			if s.probe != nil {
				s.probe.Span(s.tCPU, "tx", s.txStart, s.Eng.Now())
			}
			next()
		default:
			panic(fmt.Sprintf("cpu: unknown op kind %v", op.Kind))
		}
	}

	s.Eng.At(s.Eng.Now(), step)
}

// Collect gathers the result after a Run (or a partial run).
func (s *System) Collect(tr *trace.Trace) Result {
	st := s.Ctrl.Stats()
	res := Result{
		Scheme:        s.Ctrl.Config().Scheme.String(),
		Workload:      tr.Name,
		Cycles:        s.endCycle,
		Transactions:  s.transactions,
		Ops:           s.opsExecuted,
		FenceStalls:   s.fenceStalls,
		WriteRequests: s.Ctrl.WriteRequests(),
		RetryEvents:   s.Ctrl.RetryEvents(),
		RetryPerKWR:   s.Ctrl.RetryPerKWR(),
		WPQReadHits:   st.Counter("wpq.read_hits").Value(),
		MemReads:      st.Counter("mem.reads").Value(),
	}
	res.RecoveryCycles = s.Ctrl.RecoveryEstimate()
	if s.transactions > 0 {
		res.CyclesPerTx = float64(s.endCycle) / float64(s.transactions)
	}
	if s.opsExecuted > 0 {
		res.CPI = float64(s.endCycle) / float64(s.opsExecuted)
	}
	res.MeanInterarrival = st.Histogram("wpq.interarrival_cycles").Mean()
	res.WPQMeanOccupancy = st.Histogram("wpq.occupancy_at_arrival").Mean()
	if s.txReservoir.Count() > 0 {
		res.MedianTxCycles = s.txReservoir.Median()
		res.P99TxCycles = s.txReservoir.P99()
	}
	return res
}

// TxLatency returns the per-transaction latency histogram.
func (s *System) TxLatency() *stats.Histogram { return s.txLatencies }

// prepare marks the system running, sizes the mirror and loads the
// trace's checkpoint image functionally (no cycles charged) — the
// common prologue of Start and StartWith.
func (s *System) prepare(tr *trace.Trace) {
	if s.running {
		panic("cpu: system already running a trace")
	}
	s.running = true

	s.mirror.SizeFor(tr)
	for i := range tr.InitImage {
		il := &tr.InitImage[i]
		s.Ctrl.LoadInitLine(il.Addr, il.Data)
		s.setMirror(il.Addr, &il.Data)
	}
}

// FrontEnd is a replaceable trace consumer: Launch schedules the
// execution of tr on sys's engine, driving the hierarchy and controller
// through the exported seam below and reporting progress back through
// the Note*/Observe* methods so Collect works unchanged. The in-order
// front-end in Start stays the default; internal/mcore's out-of-order
// window plugs in here.
type FrontEnd interface {
	Launch(sys *System, tr *trace.Trace)
}

// StartWith is Start with a custom front-end: the checkpoint image is
// loaded, then fe schedules trace execution on the engine.
func (s *System) StartWith(tr *trace.Trace, fe FrontEnd) {
	s.prepare(tr)
	fe.Launch(s, tr)
}

// RunWith executes the trace to completion under a custom front-end.
func (s *System) RunWith(tr *trace.Trace, fe FrontEnd) Result {
	s.StartWith(tr, fe)
	s.Eng.Run(0)
	if !s.finished {
		panic("cpu: trace execution deadlocked (fence never satisfied)")
	}
	s.Ctrl.Quiesce()
	return s.Collect(tr)
}

// SetMirror records p as addr's line contents (front-end seam).
func (s *System) SetMirror(addr uint64, p *[64]byte) { s.setMirror(addr, p) }

// CountOp counts one executed trace operation (front-end seam).
func (s *System) CountOp() { s.opsExecuted++ }

// ObserveTx records one committed transaction that began at start:
// latency histograms, the quantile reservoir and the probe span — the
// same accounting the in-order front-end performs at TxEnd.
func (s *System) ObserveTx(start sim.Cycle) {
	s.transactions++
	lat := float64(s.Eng.Now() - start)
	s.txLatencies.Observe(lat)
	s.txReservoir.Observe(lat)
	if s.probe != nil {
		s.probe.Span(s.tCPU, "tx", start, s.Eng.Now())
	}
}

// ObserveFenceStall records a completed sfence stall that began at
// start (front-end seam; mirrors the in-order fence accounting).
func (s *System) ObserveFenceStall(start sim.Cycle) {
	s.fenceStalls += s.Eng.Now() - start
	if s.probe != nil {
		s.probe.Span(s.tCPU, "fence-stall", start, s.Eng.Now())
	}
}

// NotifyAccepted invokes the OnAccepted hook if installed (front-end
// seam: custom front-ends issue PersistWrite themselves, so they must
// also report acceptances for the crash driver).
func (s *System) NotifyAccepted(addr uint64, data [64]byte) {
	if s.OnAccepted != nil {
		s.OnAccepted(addr, data)
	}
}

// FinishNow marks the trace fully executed at the current cycle
// (front-end seam).
func (s *System) FinishNow() {
	s.endCycle = s.Eng.Now()
	s.finished = true
}
