package cpu

import (
	"testing"

	"dolos/internal/controller"
	"dolos/internal/layout"
	"dolos/internal/trace"
	"dolos/internal/whisper"
)

func testConfig(s controller.Scheme) controller.Config {
	cfg := controller.Config{Scheme: s, Layout: layout.Small()}
	copy(cfg.AESKey[:], "cpu-aes-key-0016")
	copy(cfg.MACKey[:], "cpu-mac-key-0016")
	return cfg
}

// syntheticTrace builds a minimal durable-transaction trace by hand.
func syntheticTrace() *trace.Trace {
	rec := trace.NewRecorder("synthetic", 64)
	var data [64]byte
	data[0] = 0xAB
	for i := 0; i < 5; i++ {
		addr := uint64(4096 + i*64)
		rec.TxBegin()
		rec.Compute(200)
		rec.Write(addr, data)
		rec.Flush(addr, data)
		rec.Fence()
		rec.TxEnd()
	}
	return rec.Finish()
}

func TestSyntheticTraceRuns(t *testing.T) {
	s := NewSystem(testConfig(controller.DolosPartial))
	res := s.Run(syntheticTrace())
	if res.Transactions != 5 {
		t.Fatalf("transactions = %d", res.Transactions)
	}
	if res.Cycles == 0 || res.CPI == 0 || res.CyclesPerTx == 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	if res.WriteRequests != 5 {
		t.Fatalf("write requests = %d", res.WriteRequests)
	}
}

func TestFenceBlocksUntilAccepted(t *testing.T) {
	// With the baseline scheme a fence must wait for the full security
	// latency; the ideal scheme's fence is nearly free.
	base := NewSystem(testConfig(controller.PreWPQSecure)).Run(syntheticTrace())
	ideal := NewSystem(testConfig(controller.NonSecureADR)).Run(syntheticTrace())
	if base.FenceStalls <= ideal.FenceStalls {
		t.Fatalf("fence stalls: baseline %d <= ideal %d", base.FenceStalls, ideal.FenceStalls)
	}
	if base.Cycles <= ideal.Cycles {
		t.Fatalf("baseline ran faster than ideal: %d vs %d", base.Cycles, ideal.Cycles)
	}
}

func TestSchemeOrderingOnRealWorkload(t *testing.T) {
	// The paper's headline ordering on a real workload trace:
	// ideal <= Dolos variants < baseline.
	tr := whisper.Hashmap{}.Generate(whisper.Params{
		Transactions: 40, Warmup: 30, TxSize: 512, Seed: 3, HeapSize: 16 << 20,
	})
	cycles := map[controller.Scheme]float64{}
	for _, sch := range []controller.Scheme{
		controller.NonSecureADR, controller.PreWPQSecure,
		controller.DolosFull, controller.DolosPartial, controller.DolosPost,
	} {
		res := NewSystem(testConfig(sch)).Run(tr)
		cycles[sch] = float64(res.Cycles)
	}
	if !(cycles[controller.NonSecureADR] < cycles[controller.PreWPQSecure]) {
		t.Fatalf("ideal not faster than baseline: %v", cycles)
	}
	for _, d := range []controller.Scheme{controller.DolosFull, controller.DolosPartial, controller.DolosPost} {
		if !(cycles[d] < cycles[controller.PreWPQSecure]) {
			t.Fatalf("%v (%f) not faster than baseline (%f)", d, cycles[d], cycles[controller.PreWPQSecure])
		}
		if !(cycles[d] >= cycles[controller.NonSecureADR]) {
			t.Fatalf("%v beat the ideal bound", d)
		}
	}
}

func TestReadsGoThroughHierarchy(t *testing.T) {
	rec := trace.NewRecorder("reads", 0)
	var data [64]byte
	addr := uint64(4096)
	rec.Write(addr, data)
	rec.Flush(addr, data)
	rec.Fence()
	for i := 0; i < 10; i++ {
		rec.Read(addr) // hot line: hits L1 after first access
	}
	s := NewSystem(testConfig(controller.DolosPartial))
	res := s.Run(rec.Finish())
	if res.MemReads > 1 {
		t.Fatalf("hot-line reads reached memory %d times", res.MemReads)
	}
}

func TestCleanFlushSkipsController(t *testing.T) {
	rec := trace.NewRecorder("cleanflush", 0)
	var data [64]byte
	addr := uint64(4096)
	rec.Write(addr, data)
	rec.Flush(addr, data)
	rec.Fence()
	rec.Flush(addr, data) // second flush: line already clean
	rec.Fence()
	s := NewSystem(testConfig(controller.DolosPartial))
	res := s.Run(rec.Finish())
	if res.WriteRequests != 1 {
		t.Fatalf("write requests = %d, want 1 (clean flush is a no-op)", res.WriteRequests)
	}
}

func TestInterarrivalReported(t *testing.T) {
	tr := whisper.Ctree{}.Generate(whisper.Params{
		Transactions: 30, Warmup: 20, TxSize: 512, Seed: 3, HeapSize: 16 << 20,
	})
	res := NewSystem(testConfig(controller.DolosPartial)).Run(tr)
	if res.MeanInterarrival <= 0 {
		t.Fatal("no inter-arrival statistic")
	}
}
