package cpu

import (
	"testing"

	"dolos/internal/controller"
	"dolos/internal/telemetry"
)

// TestProbeDoesNotPerturbTiming is the telemetry subsystem's core
// contract: an instrumented run must produce bit-identical cycle counts
// to an uninstrumented one, because probes only observe.
func TestProbeDoesNotPerturbTiming(t *testing.T) {
	for _, scheme := range []controller.Scheme{
		controller.NonSecureADR,
		controller.PreWPQSecure,
		controller.DolosFull,
		controller.DolosPartial,
		controller.DolosPost,
		controller.EADRSecure,
	} {
		plain := NewSystem(testConfig(scheme))
		base := plain.Run(syntheticTrace())

		instr := NewSystem(testConfig(scheme))
		p := telemetry.NewProbe(instr.Eng.Now)
		instr.SetProbe(p)
		got := instr.Run(syntheticTrace())

		if got.Cycles != base.Cycles {
			t.Fatalf("%v: instrumented cycles %d != plain %d", scheme, got.Cycles, base.Cycles)
		}
		if got.FenceStalls != base.FenceStalls || got.RetryEvents != base.RetryEvents {
			t.Fatalf("%v: instrumented run diverged: %+v vs %+v", scheme, got, base)
		}
		if p.Len() == 0 {
			t.Fatalf("%v: probe recorded no events", scheme)
		}
		if n := len(p.TrackNames()); n < 4 {
			t.Fatalf("%v: only %d tracks registered: %v", scheme, n, p.TrackNames())
		}
	}
}

// TestProbeRecordsExpectedTracks checks the component wiring: a Dolos
// run must populate CPU, WPQ, Mi-SU, Ma-SU and NVM-bank tracks, record
// fence-stall and security spans, and accumulate registry metrics.
func TestProbeRecordsExpectedTracks(t *testing.T) {
	s := NewSystem(testConfig(controller.DolosPartial))
	p := telemetry.NewProbe(s.Eng.Now)
	s.SetProbe(p)
	s.Run(syntheticTrace())

	tracks := make(map[string]bool)
	for _, n := range p.TrackNames() {
		tracks[n] = true
	}
	for _, want := range []string{"cpu", "wpq", "mi-su", "ma-su", "nvm-bank-0"} {
		if !tracks[want] {
			t.Fatalf("track %q missing: %v", want, p.TrackNames())
		}
	}
	spans := make(map[string]bool)
	for _, n := range p.SpanNames() {
		spans[n] = true
	}
	for _, want := range []string{"fence-stall", "tx", "mac", "secure-write", "write"} {
		if !spans[want] {
			t.Fatalf("span %q missing: %v", want, p.SpanNames())
		}
	}

	reg := p.Registry()
	if reg.Counter("sim.events_dispatched").Value() == 0 {
		t.Fatal("no events dispatched counted")
	}
	if reg.Counter("misu.protects").Value() == 0 {
		t.Fatal("no Mi-SU protects counted")
	}
	if reg.CycleHist("ctrl.accept_latency_cycles").Stats().Count == 0 {
		t.Fatal("no accept latencies observed")
	}
	if reg.CycleHist("ctrl.drain_latency_cycles").Stats().Count == 0 {
		t.Fatal("no drain latencies observed")
	}
}

// TestDetachProbe verifies SetProbe(nil) fully unhooks instrumentation.
func TestDetachProbe(t *testing.T) {
	s := NewSystem(testConfig(controller.DolosPartial))
	p := telemetry.NewProbe(s.Eng.Now)
	s.SetProbe(p)
	s.SetProbe(nil)
	s.Run(syntheticTrace())
	if p.Len() != 0 {
		t.Fatalf("detached probe still recorded %d events", p.Len())
	}
	if s.Probe() != nil {
		t.Fatal("probe still attached")
	}
}
