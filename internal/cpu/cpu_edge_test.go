package cpu

import (
	"testing"

	"dolos/internal/controller"
	"dolos/internal/trace"
)

func TestComputeOnlyTrace(t *testing.T) {
	rec := trace.NewRecorder("compute", 0)
	rec.Compute(1000)
	rec.Compute(500) // coalesced
	s := NewSystem(testConfig(controller.DolosPartial))
	res := s.Run(rec.Finish())
	if res.Cycles != 1500 {
		t.Fatalf("compute-only trace took %d cycles, want 1500", res.Cycles)
	}
	if res.WriteRequests != 0 {
		t.Fatal("phantom write requests")
	}
}

func TestEmptyTrace(t *testing.T) {
	rec := trace.NewRecorder("empty", 0)
	s := NewSystem(testConfig(controller.NonSecureADR))
	res := s.Run(rec.Finish())
	if res.Cycles != 0 || res.Ops != 0 {
		t.Fatalf("empty trace result %+v", res)
	}
}

func TestEvictionHeavyTrace(t *testing.T) {
	// Write (without flushing) far more distinct lines than the cache
	// hierarchy holds in one set path; dirty LLC victims must reach the
	// controller as secured evictions.
	rec := trace.NewRecorder("evict", 0)
	var d [64]byte
	stride := uint64(8192 * 64) // same LLC set every time
	for i := uint64(0); i < 40; i++ {
		d[0] = byte(i)
		rec.Write(4096+i*stride, d)
	}
	s := NewSystem(testConfig(controller.DolosPartial))
	res := s.Run(rec.Finish())
	evicts := s.Ctrl.Stats().Counter("wpq.evict_requests").Value()
	if evicts == 0 {
		t.Fatal("no evictions reached the controller")
	}
	if res.WriteRequests != 0 {
		t.Fatal("unflushed writes counted as persist requests")
	}
	// Evicted data is secured: MaSU processed them.
	if s.Ctrl.MaSU().Writes() == 0 {
		t.Fatal("evictions bypassed the MaSU")
	}
}

func TestDoubleStartPanics(t *testing.T) {
	rec := trace.NewRecorder("x", 0)
	rec.Compute(1)
	tr := rec.Finish()
	s := NewSystem(testConfig(controller.NonSecureADR))
	s.Start(tr)
	defer func() {
		if recover() == nil {
			t.Fatal("second Start did not panic")
		}
	}()
	s.Start(tr)
}

func TestTxLatencyHistogram(t *testing.T) {
	s := NewSystem(testConfig(controller.DolosPartial))
	s.Run(syntheticTrace())
	h := s.TxLatency()
	if h.Count() != 5 || h.Mean() <= 0 {
		t.Fatalf("tx latency histogram: n=%d mean=%f", h.Count(), h.Mean())
	}
}

func TestMirrorTracksWrites(t *testing.T) {
	rec := trace.NewRecorder("m", 0)
	var d [64]byte
	d[7] = 0x77
	rec.Write(4096, d)
	s := NewSystem(testConfig(controller.NonSecureADR))
	s.Run(rec.Finish())
	got, ok := s.Mirror(4096 + 8) // any offset within the line
	if !ok || got[7] != 0x77 {
		t.Fatal("mirror lost the written line")
	}
	if _, ok := s.Mirror(1 << 20); ok {
		t.Fatal("mirror invented a line")
	}
}
