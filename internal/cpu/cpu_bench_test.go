package cpu

import (
	"testing"

	"dolos/internal/controller"
	"dolos/internal/trace"
	"dolos/internal/whisper"
)

// benchTrace is generated once and replayed per scheme.
var benchTrace *trace.Trace

func getBenchTrace(b *testing.B) *trace.Trace {
	b.Helper()
	if benchTrace == nil {
		benchTrace = whisper.Hashmap{}.Generate(whisper.Params{
			Transactions: 100, Warmup: 50, TxSize: 1024, Seed: 1, HeapSize: 32 << 20,
		})
	}
	return benchTrace
}

func benchScheme(b *testing.B, s controller.Scheme) {
	tr := getBenchTrace(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys := NewSystem(testConfig(s))
		res := sys.Run(tr)
		b.ReportMetric(float64(res.Cycles), "sim-cycles")
	}
}

func BenchmarkRunIdeal(b *testing.B)        { benchScheme(b, controller.NonSecureADR) }
func BenchmarkRunBaseline(b *testing.B)     { benchScheme(b, controller.PreWPQSecure) }
func BenchmarkRunDolosFull(b *testing.B)    { benchScheme(b, controller.DolosFull) }
func BenchmarkRunDolosPartial(b *testing.B) { benchScheme(b, controller.DolosPartial) }
func BenchmarkRunDolosPost(b *testing.B)    { benchScheme(b, controller.DolosPost) }
