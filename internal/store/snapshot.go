package store

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// The snapshot is the compacted prefix of the log: the full in-memory
// state serialized as one JSON document, written to a temp file and
// renamed over the previous snapshot before the WAL is truncated.
// Recovery is therefore always "snapshot, then WAL tail", and a crash
// during compaction leaves either the old (snapshot, long WAL) pair or
// the new (snapshot, empty WAL) pair — never a mix, because the rename
// is atomic and the WAL is only cut after it lands.
const snapshotName = "snapshot.json"

// snapshot is the on-disk document.
type snapshot struct {
	MaxSeq int64        `json:"max_seq"`
	Jobs   []*snapJob   `json:"jobs"`
	Audit  []AuditEntry `json:"audit,omitempty"`
}

type snapJob struct {
	Job    JobRecord         `json:"job"`
	Total  int               `json:"total,omitempty"`
	Cells  []json.RawMessage `json:"cells,omitempty"` // null for missing cells
	Done   bool              `json:"done,omitempty"`
	Failed bool              `json:"failed,omitempty"`
	Cached bool              `json:"cached,omitempty"`
	Err    string            `json:"err,omitempty"`
}

// loadSnapshot restores state from the snapshot file, if present.
func (s *Store) loadSnapshot() error {
	b, err := os.ReadFile(filepath.Join(s.dir, snapshotName))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return fmt.Errorf("store: reading snapshot: %w", err)
	}
	var snap snapshot
	if err := json.Unmarshal(b, &snap); err != nil {
		return fmt.Errorf("store: corrupt snapshot: %w", err)
	}
	s.maxSeq = snap.MaxSeq
	for _, sj := range snap.Jobs {
		st := &JobState{
			Job:    sj.Job,
			Total:  sj.Total,
			Done:   sj.Done,
			Failed: sj.Failed,
			Cached: sj.Cached,
			Err:    sj.Err,
		}
		if sj.Total > 0 {
			st.Cells = make([][]byte, sj.Total)
			for i, c := range sj.Cells {
				if i < sj.Total && c != nil {
					st.Cells[i] = append([]byte(nil), c...)
				}
			}
		}
		s.jobs[st.Job.ID] = st
		s.order = append(s.order, st.Job.ID)
	}
	s.audit = append(s.audit, snap.Audit...)
	return nil
}

// compactLocked writes the snapshot and truncates the WAL. Caller holds
// s.mu. Truncation must not race a group-commit cohort (an appender's
// written-but-unacknowledged frame would vanish from the log while its
// record lands in memory), so this waits for the WAL to go quiescent
// first; appends arriving during the snapshot write are excluded by the
// mutex itself.
func (s *Store) compactLocked() error {
	for s.wal != nil && !s.wal.quiescent() {
		s.wal.cond.Wait()
	}
	if s.wal == nil {
		return fmt.Errorf("store: closed")
	}
	snap := snapshot{MaxSeq: s.maxSeq, Audit: s.audit}
	for _, id := range s.order {
		st := s.jobs[id]
		sj := &snapJob{
			Job:    st.Job,
			Total:  st.Total,
			Done:   st.Done,
			Failed: st.Failed,
			Cached: st.Cached,
			Err:    st.Err,
		}
		for _, c := range st.Cells {
			sj.Cells = append(sj.Cells, json.RawMessage(c))
		}
		snap.Jobs = append(snap.Jobs, sj)
	}
	b, err := json.Marshal(snap)
	if err != nil {
		return err
	}
	tmp := filepath.Join(s.dir, snapshotName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if _, err := f.Write(b); err == nil {
		err = f.Sync() // the snapshot must be durable before the WAL is cut
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return fmt.Errorf("store: writing snapshot: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, snapshotName)); err != nil {
		return fmt.Errorf("store: installing snapshot: %w", err)
	}
	if d, err := os.Open(s.dir); err == nil {
		d.Sync()
		d.Close()
	}
	return s.wal.Truncate()
}
