package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// The WAL frame: a fixed 8-byte header — payload length then the
// IEEE CRC32 of the payload — followed by the payload bytes. A record
// is valid only if the full frame is present and the checksum matches;
// anything else at the tail of the file is the signature of a crash
// mid-append and is truncated away on open. A checksum mismatch that
// is *followed by more data* is genuine corruption (bit rot, a torn
// middle), which replay refuses rather than silently skipping — a
// store with a hole in its history cannot promise exactly-once.
const walHeaderLen = 8

// maxWALRecord bounds a single record, protecting replay from a
// corrupted length field allocating gigabytes.
const maxWALRecord = 64 << 20

var errCorruptWAL = errors.New("store: corrupt WAL record before tail")

// wal is the append-only log file. Frame writes are serialized by the
// owning Store's mutex; durability is group-committed — concurrent
// appenders write their frames back-to-back, then one of them (the
// leader) fsyncs once for the whole cohort while the rest wait on the
// condvar. See writeFrame / waitDurable.
type wal struct {
	f    *os.File
	size int64

	// Group-commit state, all guarded by the owning Store's mutex
	// (attached via attach). synced is the durable high-water mark;
	// syncing marks a leader's fsync in flight; waiters counts appenders
	// between writeFrame and acknowledgment (compaction must not cut the
	// log under them); err poisons the log after a failed fsync or a
	// close — once a sync is lost, no later append may be acknowledged.
	cond    *sync.Cond
	synced  int64
	syncing bool
	waiters int
	err     error
	// syncs counts leader fsyncs — the group-commit effectiveness
	// metric (acknowledged appends per fsync).
	syncs int64
}

// attach wires the wal's group-commit condvar to the owner's mutex.
// Must be called before the first Append.
func (w *wal) attach(mu *sync.Mutex) { w.cond = sync.NewCond(mu) }

// openWAL opens (creating if needed) the log at path, replays every
// valid record into the returned slice, truncates a torn tail, and
// leaves the file positioned for appends.
func openWAL(path string) (*wal, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	records, valid, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if fi.Size() > valid {
		// Crash mid-append: drop the torn frame so the next append
		// starts on a clean boundary.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &wal{f: f, size: valid, synced: valid}, records, nil
}

// scanWAL reads frames from the start of f, returning the decoded
// payloads and the offset of the last valid frame end. A short or
// checksum-failing frame at EOF is a torn tail (not an error); the
// same anywhere before EOF is errCorruptWAL.
func scanWAL(f *os.File) (records [][]byte, valid int64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	r := io.Reader(f)
	var off int64
	hdr := make([]byte, walHeaderLen)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF {
				return records, off, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return records, off, nil // torn header at tail
			}
			return nil, 0, err
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxWALRecord {
			// A garbage length field. If the declared payload would
			// extend past EOF the frame cannot be complete — a torn
			// append; truncate. A full-sized garbage frame mid-file is
			// corruption.
			if !tailEndsHere(f, off+walHeaderLen+int64(length)) {
				return nil, 0, errCorruptWAL
			}
			return records, off, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return records, off, nil // torn payload at tail
			}
			return nil, 0, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			if tailEndsHere(f, off+walHeaderLen+int64(length)) {
				return records, off, nil
			}
			return nil, 0, errCorruptWAL
		}
		records = append(records, payload)
		off += walHeaderLen + int64(length)
	}
}

// tailEndsHere reports whether the file holds no data past end — i.e.
// the bad frame that begins before end is the final one, so it can be
// attributed to a torn append rather than mid-file corruption.
func tailEndsHere(f *os.File, end int64) bool {
	fi, err := f.Stat()
	if err != nil {
		return false
	}
	return fi.Size() <= end
}

// writeFrame frames and writes one payload without syncing, returning
// the file offset the frame ends at — the durability target to pass to
// waitDurable. Caller holds the owning mutex.
func (w *wal) writeFrame(payload []byte) (int64, error) {
	if w.err != nil {
		return 0, w.err
	}
	if len(payload) > maxWALRecord {
		return 0, fmt.Errorf("store: record of %d bytes exceeds limit", len(payload))
	}
	frame := make([]byte, walHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[walHeaderLen:], payload)
	if _, err := w.f.Write(frame); err != nil {
		return 0, fmt.Errorf("store: WAL append: %w", err)
	}
	w.size += int64(len(frame))
	return w.size, nil
}

// waitDurable blocks until the log is durable through end (group
// commit). Caller holds the owning mutex; the mutex is released while
// the leader's fsync runs, letting concurrent appenders write their
// frames behind it — the next round's single fsync then covers them
// all. On a sync failure every cohort member gets the error and the
// log is poisoned: a WAL that lost an fsync cannot promise anything
// about subsequent acknowledgments.
func (w *wal) waitDurable(end int64) error {
	w.waiters++
	defer func() {
		w.waiters--
		if w.waiters == 0 {
			// Wake anyone waiting for quiescence (compaction, close).
			w.cond.Broadcast()
		}
	}()
	for {
		if w.err != nil {
			return w.err
		}
		if w.synced >= end {
			return nil
		}
		if !w.syncing {
			// Become the leader: sync everything written so far, which
			// includes our own frame (end <= w.size always holds here).
			w.syncing = true
			target := w.size
			w.syncs++
			w.cond.L.Unlock()
			err := w.f.Sync()
			w.cond.L.Lock()
			w.syncing = false
			if err != nil {
				w.err = fmt.Errorf("store: WAL sync: %w", err)
			} else if target > w.synced {
				w.synced = target
			}
			w.cond.Broadcast()
			continue
		}
		w.cond.Wait()
	}
}

// quiescent reports whether no append is mid-flight: everything written
// is durable and no appender is waiting. Only in this state may the
// log be truncated out from under the group-commit machinery. A
// poisoned log with no waiters counts as quiescent — synced can never
// catch up to size again, and there is no cohort left to protect.
// Caller holds the owning mutex.
func (w *wal) quiescent() bool {
	if w.syncing || w.waiters > 0 {
		return false
	}
	return w.err != nil || w.synced == w.size
}

// Size returns the current WAL length in bytes.
func (w *wal) Size() int64 { return w.size }

// Truncate empties the log (after a successful snapshot). Caller holds
// the owning mutex and must have observed quiescent().
func (w *wal) Truncate() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size = 0
	w.synced = 0
	return nil
}

// Close syncs and closes the file, poisoning the group-commit state so
// any straggling waiter errors out instead of blocking forever.
func (w *wal) Close() error {
	w.err = errors.New("store: closed")
	if w.cond != nil {
		w.cond.Broadcast()
	}
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
