package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
)

// The WAL frame: a fixed 8-byte header — payload length then the
// IEEE CRC32 of the payload — followed by the payload bytes. A record
// is valid only if the full frame is present and the checksum matches;
// anything else at the tail of the file is the signature of a crash
// mid-append and is truncated away on open. A checksum mismatch that
// is *followed by more data* is genuine corruption (bit rot, a torn
// middle), which replay refuses rather than silently skipping — a
// store with a hole in its history cannot promise exactly-once.
const walHeaderLen = 8

// maxWALRecord bounds a single record, protecting replay from a
// corrupted length field allocating gigabytes.
const maxWALRecord = 64 << 20

var errCorruptWAL = errors.New("store: corrupt WAL record before tail")

// wal is the append-only log file. Appends are serialized by the
// owning Store's mutex.
type wal struct {
	f    *os.File
	size int64
}

// openWAL opens (creating if needed) the log at path, replays every
// valid record into the returned slice, truncates a torn tail, and
// leaves the file positioned for appends.
func openWAL(path string) (*wal, [][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	records, valid, err := scanWAL(f)
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	if fi.Size() > valid {
		// Crash mid-append: drop the torn frame so the next append
		// starts on a clean boundary.
		if err := f.Truncate(valid); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: truncating torn WAL tail: %w", err)
		}
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, nil, err
	}
	return &wal{f: f, size: valid}, records, nil
}

// scanWAL reads frames from the start of f, returning the decoded
// payloads and the offset of the last valid frame end. A short or
// checksum-failing frame at EOF is a torn tail (not an error); the
// same anywhere before EOF is errCorruptWAL.
func scanWAL(f *os.File) (records [][]byte, valid int64, err error) {
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, 0, err
	}
	r := io.Reader(f)
	var off int64
	hdr := make([]byte, walHeaderLen)
	for {
		if _, err := io.ReadFull(r, hdr); err != nil {
			if err == io.EOF {
				return records, off, nil
			}
			if errors.Is(err, io.ErrUnexpectedEOF) {
				return records, off, nil // torn header at tail
			}
			return nil, 0, err
		}
		length := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if length > maxWALRecord {
			// A garbage length field. If the declared payload would
			// extend past EOF the frame cannot be complete — a torn
			// append; truncate. A full-sized garbage frame mid-file is
			// corruption.
			if !tailEndsHere(f, off+walHeaderLen+int64(length)) {
				return nil, 0, errCorruptWAL
			}
			return records, off, nil
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			if err == io.EOF || errors.Is(err, io.ErrUnexpectedEOF) {
				return records, off, nil // torn payload at tail
			}
			return nil, 0, err
		}
		if crc32.ChecksumIEEE(payload) != sum {
			if tailEndsHere(f, off+walHeaderLen+int64(length)) {
				return records, off, nil
			}
			return nil, 0, errCorruptWAL
		}
		records = append(records, payload)
		off += walHeaderLen + int64(length)
	}
}

// tailEndsHere reports whether the file holds no data past end — i.e.
// the bad frame that begins before end is the final one, so it can be
// attributed to a torn append rather than mid-file corruption.
func tailEndsHere(f *os.File, end int64) bool {
	fi, err := f.Stat()
	if err != nil {
		return false
	}
	return fi.Size() <= end
}

// Append frames and writes one payload, then syncs. Durability before
// acknowledgment is the store's whole contract, so the fsync is not
// optional.
func (w *wal) Append(payload []byte) error {
	if len(payload) > maxWALRecord {
		return fmt.Errorf("store: record of %d bytes exceeds limit", len(payload))
	}
	frame := make([]byte, walHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
	copy(frame[walHeaderLen:], payload)
	if _, err := w.f.Write(frame); err != nil {
		return fmt.Errorf("store: WAL append: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		return fmt.Errorf("store: WAL sync: %w", err)
	}
	w.size += int64(len(frame))
	return nil
}

// Size returns the current WAL length in bytes.
func (w *wal) Size() int64 { return w.size }

// Truncate empties the log (after a successful snapshot).
func (w *wal) Truncate() error {
	if err := w.f.Truncate(0); err != nil {
		return err
	}
	if _, err := w.f.Seek(0, io.SeekStart); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	w.size = 0
	return nil
}

// Close syncs and closes the file.
func (w *wal) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}
