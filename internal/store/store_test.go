package store

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func testJob(seq int64) JobRecord {
	return JobRecord{
		ID:     fmt.Sprintf("j%08d", seq),
		Seq:    seq,
		Key:    fmt.Sprintf("key-%d", seq),
		Tenant: "acme",
		Req:    []byte(`{"workloads":["Hashmap"],"schemes":["Dolos-Partial-WPQ"]}`),
		At:     time.Unix(1700000000+seq, 0).UTC(),
	}
}

// TestRoundTrip: submissions, cells and settlements written through one
// store instance are recovered bit-for-bit by a fresh Open of the same
// directory — the basic restart contract.
func TestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j1, j2 := testJob(1), testJob(2)
	if err := s.AppendSubmit(j1); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSubmit(j2); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCell(j1.ID, 0, 2, []byte(`{"cycles":100}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCell(j1.ID, 1, 2, []byte(`{"cycles":200}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDone(j1.ID, false); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendFail(j2.ID, "deadline exceeded"); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got := s2.MaxSeq(); got != 2 {
		t.Errorf("MaxSeq = %d, want 2", got)
	}
	jobs := s2.Jobs()
	if len(jobs) != 2 {
		t.Fatalf("recovered %d jobs, want 2", len(jobs))
	}
	st1 := s2.Job(j1.ID)
	if st1 == nil || !st1.Done || st1.Failed || st1.Total != 2 || st1.CellsDone() != 2 {
		t.Fatalf("job 1 state: %+v", st1)
	}
	if !bytes.Equal(st1.Cells[1], []byte(`{"cycles":200}`)) {
		t.Errorf("job 1 cell 1 = %q", st1.Cells[1])
	}
	if st1.Job.Tenant != "acme" || !st1.Job.At.Equal(j1.At) {
		t.Errorf("job 1 identity not preserved: %+v", st1.Job)
	}
	st2 := s2.Job(j2.ID)
	if st2 == nil || !st2.Failed || st2.Err != "deadline exceeded" {
		t.Fatalf("job 2 state: %+v", st2)
	}
	audit := s2.Audit(0)
	if len(audit) != 2 || audit[0].JobID != j1.ID || audit[0].Tenant != "acme" {
		t.Errorf("audit trail: %+v", audit)
	}
}

// TestTornTailTruncated: a crash mid-append leaves a partial frame at
// the tail; Open must recover every record before it, truncate the torn
// bytes, and keep appending cleanly.
func TestTornTailTruncated(t *testing.T) {
	for _, cut := range []struct {
		name string
		keep int64 // bytes of the final frame to keep
	}{
		{"torn header", 3},
		{"torn payload", walHeaderLen + 5},
	} {
		t.Run(cut.name, func(t *testing.T) {
			dir := t.TempDir()
			s, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.AppendSubmit(testJob(1)); err != nil {
				t.Fatal(err)
			}
			sizeBefore := s.WALSize()
			if err := s.AppendSubmit(testJob(2)); err != nil {
				t.Fatal(err)
			}
			s.Close()

			path := filepath.Join(dir, "wal.log")
			if err := os.Truncate(path, sizeBefore+cut.keep); err != nil {
				t.Fatal(err)
			}

			s2, err := Open(dir)
			if err != nil {
				t.Fatalf("reopen after torn tail: %v", err)
			}
			jobs := s2.Jobs()
			if len(jobs) != 1 || jobs[0].Job.Seq != 1 {
				t.Fatalf("recovered %d jobs after torn tail, want 1 (seq 1)", len(jobs))
			}
			// The log is usable again: a fresh append and reopen round-trips.
			if err := s2.AppendSubmit(testJob(3)); err != nil {
				t.Fatal(err)
			}
			s2.Close()
			s3, err := Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer s3.Close()
			if got := len(s3.Jobs()); got != 2 {
				t.Fatalf("after re-append: %d jobs, want 2", got)
			}
		})
	}
}

// TestCorruptTailChecksum: the final record's payload is bit-flipped
// without shortening the file — a checksum-failing tail is treated as
// torn (dropped), while the same flip mid-file is refused as real
// corruption.
func TestCorruptTailChecksum(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSubmit(testJob(1)); err != nil {
		t.Fatal(err)
	}
	tail := s.WALSize()
	if err := s.AppendSubmit(testJob(2)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, "wal.log")
	flipByte(t, path, tail+walHeaderLen) // first payload byte of record 2

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after corrupt tail: %v", err)
	}
	if got := len(s2.Jobs()); got != 1 {
		t.Fatalf("recovered %d jobs after corrupt tail, want 1", got)
	}
	s2.Close()

	// Now corrupt the *first* record of a two-record log: mid-file
	// corruption must fail Open loudly instead of dropping history.
	dir2 := t.TempDir()
	s3, err := Open(dir2)
	if err != nil {
		t.Fatal(err)
	}
	if err := s3.AppendSubmit(testJob(1)); err != nil {
		t.Fatal(err)
	}
	if err := s3.AppendSubmit(testJob(2)); err != nil {
		t.Fatal(err)
	}
	s3.Close()
	flipByte(t, filepath.Join(dir2, "wal.log"), walHeaderLen)
	if _, err := Open(dir2); err == nil {
		t.Fatal("Open accepted mid-file corruption")
	}
}

// TestGarbageLengthTail: a torn append that only managed to write a
// garbage header (absurd length field) is truncated like any other torn
// tail.
func TestGarbageLengthTail(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSubmit(testJob(1)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	path := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	hdr := make([]byte, walHeaderLen)
	binary.LittleEndian.PutUint32(hdr[0:4], 0xFFFFFFFF)
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(nil))
	f.Write(hdr)
	f.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatalf("reopen after garbage-length tail: %v", err)
	}
	defer s2.Close()
	if got := len(s2.Jobs()); got != 1 {
		t.Fatalf("recovered %d jobs, want 1", got)
	}
}

// TestCompaction: Compact folds state into the snapshot and empties the
// WAL; recovery afterwards sees identical state, and records appended
// after compaction layer on top of the snapshot.
func TestCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j1 := testJob(1)
	if err := s.AppendSubmit(j1); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendCell(j1.ID, 0, 1, []byte(`{"cycles":7}`)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendDone(j1.ID, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if s.WALSize() != 0 {
		t.Fatalf("WAL size %d after compaction, want 0", s.WALSize())
	}
	j2 := testJob(2)
	if err := s.AppendSubmit(j2); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	st := s2.Job(j1.ID)
	if st == nil || !st.Done || !st.Cached || !bytes.Equal(st.Cells[0], []byte(`{"cycles":7}`)) {
		t.Fatalf("snapshot state: %+v", st)
	}
	if got := s2.Job(j2.ID); got == nil {
		t.Fatal("post-compaction append lost")
	}
	if got := len(s2.Audit(0)); got != 2 {
		t.Errorf("audit entries after compaction: %d, want 2", got)
	}
}

// TestAutoCompact: the WithAutoCompact threshold triggers compaction
// from inside append.
func TestAutoCompact(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithAutoCompact(256))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := int64(1); i <= 8; i++ {
		if err := s.AppendSubmit(testJob(i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("auto-compaction never wrote a snapshot: %v", err)
	}
	if s.WALSize() > 256 {
		t.Errorf("WAL size %d still above threshold", s.WALSize())
	}
	if got := len(s.Jobs()); got != 8 {
		t.Fatalf("%d jobs visible, want 8", got)
	}
}

// TestSubmitReplayIdempotent: a duplicate submit record (possible when
// a snapshot and the WAL overlap after an interrupted compaction) is
// folded once.
func TestSubmitReplayIdempotent(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	j := testJob(1)
	if err := s.AppendSubmit(j); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendSubmit(j); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Jobs()); got != 1 {
		t.Fatalf("%d jobs after duplicate submit, want 1", got)
	}
	s.Close()
}

func flipByte(t *testing.T, path string, off int64) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	b := make([]byte, 1)
	if _, err := f.ReadAt(b, off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0xff
	if _, err := f.WriteAt(b, off); err != nil {
		t.Fatal(err)
	}
}
