package store

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestGroupCommitDurableUnderConcurrency hammers append from many
// goroutines and proves both halves of the group-commit contract:
// every acknowledged record survives a reopen, and the cohort shares
// fsyncs instead of paying one each.
func TestGroupCommitDurableUnderConcurrency(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 16
	const perG = 8
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := fmt.Sprintf("j%02d-%02d", g, i)
				j := JobRecord{
					ID: id, Seq: int64(g*perG + i + 1), Key: "k-" + id,
					Req: json.RawMessage(`{}`), At: time.Unix(int64(g), int64(i)).UTC(),
				}
				if err := s.AppendSubmit(j); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	total := int64(goroutines * perG)
	s.mu.Lock()
	syncs := s.wal.syncs
	s.mu.Unlock()
	if syncs > total {
		t.Errorf("syncs = %d for %d appends; leader fsync ran more than once per append", syncs, total)
	}
	// Concurrent appenders queue behind the leader's fsync, so the next
	// round's single fsync covers many frames. Even on one CPU the fsync
	// syscall window is wide enough that full serialization (one fsync
	// per append) would indicate the coalescing path is dead.
	if syncs == total {
		t.Errorf("syncs = %d == appends; group commit never coalesced a cohort", syncs)
	}
	t.Logf("group commit: %d appends, %d fsyncs (%.1f appends/fsync)",
		total, syncs, float64(total)/float64(syncs))

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Everything acknowledged must be on disk.
	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	jobs := s2.Jobs()
	if int64(len(jobs)) != total {
		t.Fatalf("recovered %d jobs, want %d", len(jobs), total)
	}
	seen := make(map[string]bool, len(jobs))
	for _, j := range jobs {
		seen[j.Job.ID] = true
	}
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			id := fmt.Sprintf("j%02d-%02d", g, i)
			if !seen[id] {
				t.Errorf("job %s acknowledged but not recovered", id)
			}
		}
	}
}

// TestGroupCommitCompactionExcluded: auto-compaction triggered mid-storm
// must not cut the log under a cohort — every record still recovers.
// (Compaction waits for quiescence; this exercises that path under -race.)
func TestGroupCommitCompactionExcluded(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, WithAutoCompact(2048))
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	const perG = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				id := fmt.Sprintf("c%02d-%02d", g, i)
				j := JobRecord{
					ID: id, Seq: int64(g*perG + i + 1), Key: "k-" + id,
					Req: json.RawMessage(`{"pad":"0123456789abcdef"}`), At: time.Unix(0, 0).UTC(),
				}
				if err := s.AppendSubmit(j); err != nil {
					errs <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, err := Open(dir, WithAutoCompact(2048))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if got, want := len(s2.Jobs()), goroutines*perG; got != want {
		t.Fatalf("recovered %d jobs after compaction storm, want %d", got, want)
	}
}
