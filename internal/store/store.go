// Package store is the durable job store behind dolos-serve: an
// append-only, checksummed write-ahead log of job submissions, per-cell
// completions and terminal outcomes, with snapshot+compaction and
// crash-replay recovery. A server that restarts — gracefully or by
// SIGKILL — reopens its store directory, replays the snapshot plus the
// WAL tail, and resumes every job exactly where it left off: cells
// whose completion records reached the log are never simulated again,
// cells that had not yet been recorded simply run (determinism makes
// the re-run byte-identical), and nothing that was acknowledged to a
// client is ever lost. The log doubles as the audit trail: every
// submission record carries its tenant and timestamp. See DESIGN.md
// §16 for the on-disk format.
package store

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Record types appended to the WAL. The type tag is part of the JSON
// payload, so the framing layer (wal.go) is oblivious to semantics.
const (
	recSubmit = "submit" // a job entered the system
	recCell   = "cell"   // one cell of a job completed (carries the RunRecord bytes)
	recDone   = "done"   // a job settled successfully
	recFail   = "fail"   // a job settled with an error
)

// record is the WAL payload: a union of the four record types. Only the
// fields of the tagged type are populated.
type record struct {
	Type string `json:"type"`
	// Submit fields.
	Job *JobRecord `json:"job,omitempty"`
	// Cell fields.
	ID    string          `json:"id,omitempty"`
	Index int             `json:"index,omitempty"`
	Total int             `json:"total,omitempty"`
	Rec   json.RawMessage `json:"rec,omitempty"`
	// Done / Fail fields (ID shared with cell).
	Cached bool   `json:"cached,omitempty"`
	Err    string `json:"err,omitempty"`
}

// JobRecord is the durable identity of one submitted job: everything a
// restarted server needs to re-enqueue and finish it. Req is the
// canonical normalized-request JSON (the service's cache-key input), so
// replay reconstructs the exact same cells and the exact same SHA-256
// dedup key the original submission used.
type JobRecord struct {
	ID     string          `json:"id"`
	Seq    int64           `json:"seq"`
	Key    string          `json:"key"`
	Tenant string          `json:"tenant,omitempty"`
	Req    json.RawMessage `json:"req"`
	At     time.Time       `json:"at"`
}

// JobState is a job as recovered by Open: its durable identity, the
// per-cell RunRecord bytes that reached the log before the crash
// (indexed by cell enumeration order; nil entries are cells still
// owed), and its terminal status if it settled.
type JobState struct {
	Job    JobRecord
	Total  int // 0 until the first cell record lands
	Cells  [][]byte
	Done   bool
	Failed bool
	Cached bool
	Err    string
}

// Settled reports whether the job reached a terminal state before the
// last shutdown.
func (s *JobState) Settled() bool { return s.Done || s.Failed }

// CellsDone counts the cells whose completion records are durable.
func (s *JobState) CellsDone() int {
	n := 0
	for _, c := range s.Cells {
		if c != nil {
			n++
		}
	}
	return n
}

// AuditEntry is one line of the submission audit trail, derived from
// the durable submit records (snapshot included), oldest first.
type AuditEntry struct {
	At     time.Time `json:"at"`
	Tenant string    `json:"tenant,omitempty"`
	JobID  string    `json:"job_id"`
	Key    string    `json:"key"`
}

// Store is the durable job store. All methods are safe for concurrent
// use. Open recovers existing state; Close flushes and releases the
// WAL. One process owns a store directory at a time.
type Store struct {
	mu   sync.Mutex
	dir  string
	wal  *wal
	jobs map[string]*JobState
	// order preserves submission order (by Seq) for Jobs / Audit.
	order  []string
	audit  []AuditEntry
	maxSeq int64

	// compactBytes triggers automatic compaction when the WAL grows
	// past it (0 = never automatic; Compact can still be called).
	compactBytes int64
}

// Option configures Open.
type Option func(*Store)

// WithAutoCompact compacts the log into a snapshot whenever the WAL
// file exceeds n bytes (checked after each append).
func WithAutoCompact(n int64) Option {
	return func(s *Store) { s.compactBytes = n }
}

// Open opens (or creates) a store directory and recovers its state:
// the snapshot, if present, then the WAL tail. A torn or corrupt WAL
// tail — the expected shape of a crash mid-append — is truncated at
// the last valid record and replay continues; corruption anywhere else
// surfaces as an error.
func Open(dir string, opts ...Option) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{
		dir:  dir,
		jobs: make(map[string]*JobState),
	}
	for _, o := range opts {
		o(s)
	}
	if err := s.loadSnapshot(); err != nil {
		return nil, err
	}
	w, records, err := openWAL(filepath.Join(dir, "wal.log"))
	if err != nil {
		return nil, err
	}
	s.wal = w
	w.attach(&s.mu)
	for _, raw := range records {
		if err := s.apply(raw); err != nil {
			w.Close()
			return nil, err
		}
	}
	return s, nil
}

// Dir returns the store's directory.
func (s *Store) Dir() string { return s.dir }

// Close flushes and closes the WAL. The store must not be used after.
// In-flight appends are drained first (their group-commit rounds finish
// and they acknowledge normally) before the file is released.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	for s.wal != nil && !s.wal.quiescent() {
		s.wal.cond.Wait()
	}
	if s.wal == nil {
		return nil
	}
	err := s.wal.Close()
	s.wal = nil
	return err
}

// apply folds one replayed WAL payload into the in-memory state.
func (s *Store) apply(raw []byte) error {
	var r record
	if err := json.Unmarshal(raw, &r); err != nil {
		return fmt.Errorf("store: undecodable WAL record: %w", err)
	}
	switch r.Type {
	case recSubmit:
		if r.Job == nil {
			return errors.New("store: submit record without job")
		}
		s.applySubmit(*r.Job)
	case recCell:
		st, ok := s.jobs[r.ID]
		if !ok {
			return fmt.Errorf("store: cell record for unknown job %s", r.ID)
		}
		if r.Total <= 0 || r.Index < 0 || r.Index >= r.Total {
			return fmt.Errorf("store: cell record %s[%d/%d] out of range", r.ID, r.Index, r.Total)
		}
		if st.Total == 0 {
			st.Total = r.Total
			st.Cells = make([][]byte, r.Total)
		}
		if st.Total != r.Total {
			return fmt.Errorf("store: job %s cell total changed %d -> %d", r.ID, st.Total, r.Total)
		}
		st.Cells[r.Index] = append([]byte(nil), r.Rec...)
	case recDone:
		st, ok := s.jobs[r.ID]
		if !ok {
			return fmt.Errorf("store: done record for unknown job %s", r.ID)
		}
		st.Done, st.Cached = true, r.Cached
	case recFail:
		st, ok := s.jobs[r.ID]
		if !ok {
			return fmt.Errorf("store: fail record for unknown job %s", r.ID)
		}
		st.Failed, st.Err = true, r.Err
	default:
		return fmt.Errorf("store: unknown WAL record type %q", r.Type)
	}
	return nil
}

func (s *Store) applySubmit(j JobRecord) {
	if _, ok := s.jobs[j.ID]; ok {
		return // idempotent replay
	}
	s.jobs[j.ID] = &JobState{Job: j}
	s.order = append(s.order, j.ID)
	s.audit = append(s.audit, AuditEntry{At: j.At, Tenant: j.Tenant, JobID: j.ID, Key: j.Key})
	if j.Seq > s.maxSeq {
		s.maxSeq = j.Seq
	}
}

// append writes one record durably, then folds it into memory. The
// in-memory fold happens under the same lock and only after the record
// is fsynced, so readers never observe state the log could still lose.
//
// Durability is group-committed: the frame goes to the file under the
// lock, then waitDurable releases the lock while one cohort leader
// fsyncs for everyone who wrote a frame in the meantime. N concurrent
// appends therefore pay ~1 fsync, not N — the dominant cost of an
// acknowledged submit under load.
func (s *Store) append(r record) error {
	raw, err := json.Marshal(r)
	if err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return errors.New("store: closed")
	}
	wal := s.wal
	end, err := wal.writeFrame(raw)
	if err != nil {
		return err
	}
	if err := wal.waitDurable(end); err != nil {
		return err
	}
	if err := s.apply(raw); err != nil {
		return err
	}
	// Auto-compaction cuts the log, so it must not run while another
	// appender's frame is written but not yet acknowledged; skip when
	// the log is busy — a later append will land in a quiet window.
	if s.compactBytes > 0 && wal.Size() > s.compactBytes && s.wal == wal && wal.quiescent() {
		return s.compactLocked()
	}
	return nil
}

// AppendSubmit records a job submission (the audit-trail entry).
func (s *Store) AppendSubmit(j JobRecord) error {
	return s.append(record{Type: recSubmit, Job: &j})
}

// AppendCell records one completed cell's RunRecord bytes.
func (s *Store) AppendCell(id string, index, total int, rec []byte) error {
	return s.append(record{Type: recCell, ID: id, Index: index, Total: total, Rec: rec})
}

// AppendDone records a job's successful settlement.
func (s *Store) AppendDone(id string, cached bool) error {
	return s.append(record{Type: recDone, ID: id, Cached: cached})
}

// AppendFail records a job's failure.
func (s *Store) AppendFail(id string, errMsg string) error {
	return s.append(record{Type: recFail, ID: id, Err: errMsg})
}

// MaxSeq returns the highest job sequence number ever recorded — the
// restarted server continues its j%08d ids from here.
func (s *Store) MaxSeq() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.maxSeq
}

// Jobs returns every recovered job state in submission order. The
// returned states are snapshots (cell slices shared read-only).
func (s *Store) Jobs() []*JobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*JobState, 0, len(s.order))
	for _, id := range s.order {
		st := *s.jobs[id]
		st.Cells = append([][]byte(nil), s.jobs[id].Cells...)
		out = append(out, &st)
	}
	return out
}

// Job returns one recovered job state (nil when unknown).
func (s *Store) Job(id string) *JobState {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return nil
	}
	st := *j
	st.Cells = append([][]byte(nil), j.Cells...)
	return &st
}

// Audit returns the newest n audit entries (all of them when n <= 0),
// oldest first.
func (s *Store) Audit(n int) []AuditEntry {
	s.mu.Lock()
	defer s.mu.Unlock()
	entries := s.audit
	if n > 0 && len(entries) > n {
		entries = entries[len(entries)-n:]
	}
	out := make([]AuditEntry, len(entries))
	copy(out, entries)
	sort.SliceStable(out, func(i, j int) bool { return out[i].At.Before(out[j].At) })
	return out
}

// Compact folds the entire current state into a fresh snapshot and
// truncates the WAL. Settled jobs keep their results (they are what
// /v2 stream replay and the result cache warm-up read); the snapshot
// is written atomically (tmp + rename) before the log is cut, so a
// crash at any point leaves either the old state or the new one.
func (s *Store) Compact() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.compactLocked()
}

// WALSize returns the current WAL length in bytes (0 when closed).
func (s *Store) WALSize() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.wal == nil {
		return 0
	}
	return s.wal.Size()
}
