package store

import (
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"
)

// BenchmarkAppendSubmitParallel measures the acknowledged-append path —
// frame write + fsync + in-memory fold — under concurrent submitters,
// the shape dolos-serve presents under load. Reports per-append latency
// percentiles alongside ns/op; group commit should hold ns/op near the
// single-fsync cost as parallelism grows instead of multiplying it.
func BenchmarkAppendSubmitParallel(b *testing.B) {
	for _, par := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("goroutines=%d", par), func(b *testing.B) {
			s, err := Open(b.TempDir())
			if err != nil {
				b.Fatal(err)
			}
			defer s.Close()

			var mu sync.Mutex
			var lats []time.Duration
			var seq int64
			b.SetParallelism(par) // par * GOMAXPROCS submitters

			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					mu.Lock()
					seq++
					n := seq
					mu.Unlock()
					j := JobRecord{
						ID: fmt.Sprintf("b%08d", n), Seq: n, Key: "bench",
						Req: json.RawMessage(`{}`), At: time.Unix(0, 0).UTC(),
					}
					start := time.Now()
					if err := s.AppendSubmit(j); err != nil {
						b.Error(err)
						return
					}
					d := time.Since(start)
					mu.Lock()
					lats = append(lats, d)
					mu.Unlock()
				}
			})
			b.StopTimer()

			sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
			if len(lats) > 0 {
				p := func(q float64) float64 {
					i := int(q * float64(len(lats)-1))
					return float64(lats[i].Microseconds())
				}
				b.ReportMetric(p(0.50), "p50-µs")
				b.ReportMetric(p(0.99), "p99-µs")
			}
		})
	}
}
