// Package nvm models a byte-addressable persistent memory device in the
// style of a DDR-attached PCM DIMM (Table 1: 16 GB, 150 ns reads, 500 ns
// writes). The device is functional — it stores real bytes, sparsely, so
// crash-recovery and attack-detection tests operate on genuine memory
// images — and timed, with bank-level parallelism for request occupancy.
package nvm

import (
	"fmt"

	"dolos/internal/dense"
	"dolos/internal/sim"
)

// Timing constants at the 4 GHz core clock.
const (
	// ReadLatency is the array read latency (150 ns).
	ReadLatency sim.Cycle = 150 * sim.CyclesPerNanosecond
	// WriteLatency is the array write latency (500 ns).
	WriteLatency sim.Cycle = 500 * sim.CyclesPerNanosecond
)

// PageSize is the allocation granularity of the sparse backing store.
const PageSize = 4096

// LineSize is the access granularity (one cache line).
const LineSize = 64

// DefaultBanks is the default number of independently-occupied banks.
const DefaultBanks = 16

// Device is a sparse persistent-memory module. The zero value is not
// usable; construct with NewDevice. Contents survive simulated power
// failures by construction: only explicit Clear wipes them.
type Device struct {
	eng  *sim.Engine
	size uint64
	// pages is the sparse backing store: a dense two-level table over
	// page index (addr/PageSize), nil until a page is first written.
	// Dense indexing replaced the former map so the per-access page
	// lookup on the write path is two array dereferences (DESIGN.md
	// §12); allocated counts the non-nil entries so AllocatedPages
	// stays O(1).
	pages     *dense.Table[*[PageSize]byte]
	allocated int
	banks     []*sim.Server

	reads, writes uint64

	// onAccess, when non-nil, observes every timed access with its bank
	// service window (telemetry). Purely observational.
	onAccess func(write bool, addr uint64, start, end sim.Cycle)
}

// NewDevice creates a device of the given capacity in bytes with the given
// number of banks (0 means DefaultBanks). The engine may be nil for purely
// functional use (recovery tooling, attack injection, tests).
func NewDevice(eng *sim.Engine, size uint64, banks int) *Device {
	if banks <= 0 {
		banks = DefaultBanks
	}
	d := &Device{
		eng:   eng,
		size:  size,
		pages: dense.NewTable[*[PageSize]byte]((size + PageSize - 1) / PageSize),
	}
	if eng != nil {
		d.banks = make([]*sim.Server, banks)
		for i := range d.banks {
			d.banks[i] = sim.NewServer(eng, fmt.Sprintf("nvm-bank-%d", i))
		}
	}
	return d
}

// Size returns the device capacity in bytes.
func (d *Device) Size() uint64 { return d.size }

// Reads returns the number of timed read accesses issued.
func (d *Device) Reads() uint64 { return d.reads }

// Writes returns the number of timed write accesses issued.
func (d *Device) Writes() uint64 { return d.writes }

// AllocatedPages returns how many 4 KB pages are materialized.
func (d *Device) AllocatedPages() int { return d.allocated }

// BankCount returns the number of banks (0 on a purely functional device).
func (d *Device) BankCount() int { return len(d.banks) }

// BankIndex returns the bank serving addr (line interleaving).
func (d *Device) BankIndex(addr uint64) int {
	return int((addr / LineSize) % uint64(len(d.banks)))
}

// SetAccessHook installs (or with nil removes) the timed-access observer:
// it fires at each access's completion with the bank service window.
func (d *Device) SetAccessHook(fn func(write bool, addr uint64, start, end sim.Cycle)) {
	d.onAccess = fn
}

func (d *Device) page(addr uint64, create bool) *[PageSize]byte {
	if addr >= d.size {
		panic(fmt.Sprintf("nvm: address %#x out of range (size %#x)", addr, d.size))
	}
	id := addr / PageSize
	if !create {
		return d.pages.Get(id)
	}
	slot := d.pages.Ptr(id)
	if *slot == nil {
		*slot = new([PageSize]byte)
		d.allocated++
	}
	return *slot
}

// Read copies len(buf) bytes starting at addr into buf. Unwritten memory
// reads as zero. This is the functional path; use Access for timing.
func (d *Device) Read(addr uint64, buf []byte) {
	for n := 0; n < len(buf); {
		off := (addr + uint64(n)) % PageSize
		chunk := PageSize - off
		if rem := uint64(len(buf) - n); chunk > rem {
			chunk = rem
		}
		if p := d.page(addr+uint64(n), false); p != nil {
			copy(buf[n:n+int(chunk)], p[off:off+chunk])
		} else {
			for i := uint64(0); i < chunk; i++ {
				buf[n+int(i)] = 0
			}
		}
		n += int(chunk)
	}
}

// Write copies data into the device starting at addr.
func (d *Device) Write(addr uint64, data []byte) {
	for n := 0; n < len(data); {
		off := (addr + uint64(n)) % PageSize
		chunk := PageSize - off
		if rem := uint64(len(data) - n); chunk > rem {
			chunk = rem
		}
		p := d.page(addr+uint64(n), true)
		copy(p[off:off+chunk], data[n:n+int(chunk)])
		n += int(chunk)
	}
}

// ReadLine reads the 64-byte line containing addr (aligned down).
func (d *Device) ReadLine(addr uint64) [LineSize]byte {
	var line [LineSize]byte
	d.Read(addr&^uint64(LineSize-1), line[:])
	return line
}

// WriteLine writes a 64-byte line at addr (aligned down).
func (d *Device) WriteLine(addr uint64, line [LineSize]byte) {
	d.Write(addr&^uint64(LineSize-1), line[:])
}

// bank maps an address to its bank by line interleaving.
func (d *Device) bank(addr uint64) *sim.Server {
	return d.banks[(addr/LineSize)%uint64(len(d.banks))]
}

// AccessRead occupies addr's bank for ReadLatency and invokes done when the
// data is available. Requires a timed device (non-nil engine).
func (d *Device) AccessRead(addr uint64, done func()) {
	d.reads++
	d.bank(addr).Submit(ReadLatency, func(start, end sim.Cycle) {
		if d.onAccess != nil {
			d.onAccess(false, addr, start, end)
		}
		if done != nil {
			done()
		}
	})
}

// AccessWrite occupies addr's bank for WriteLatency and invokes done when
// the write completes in the array.
func (d *Device) AccessWrite(addr uint64, done func()) {
	d.writes++
	d.bank(addr).Submit(WriteLatency, func(start, end sim.Cycle) {
		if d.onAccess != nil {
			d.onAccess(true, addr, start, end)
		}
		if done != nil {
			done()
		}
	})
}

// ReadReadyAt returns the cycle at which a read of addr issued now would
// complete, without issuing it.
func (d *Device) ReadReadyAt(addr uint64) sim.Cycle {
	return d.bank(addr).FreeAt() + ReadLatency
}

// Snapshot returns a deep copy of the device contents, used by the attack
// model to implement replay (rollback) attacks and by tests to compare
// memory images across crashes.
func (d *Device) Snapshot() map[uint64][PageSize]byte {
	out := make(map[uint64][PageSize]byte, d.allocated)
	d.pages.Range(func(id uint64, p **[PageSize]byte) bool {
		if *p != nil {
			out[id] = **p
		}
		return true
	})
	return out
}

// Restore overwrites the device contents with a snapshot taken earlier.
func (d *Device) Restore(snap map[uint64][PageSize]byte) {
	d.pages.Reset()
	d.allocated = 0
	for id, img := range snap {
		p := img
		d.pages.Set(id, &p)
		d.allocated++
	}
}

// Clear erases all contents (a fresh, never-written device).
func (d *Device) Clear() {
	d.pages.Reset()
	d.allocated = 0
}
