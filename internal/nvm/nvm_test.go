package nvm

import (
	"testing"
	"testing/quick"

	"dolos/internal/sim"
)

func TestReadWriteRoundTrip(t *testing.T) {
	d := NewDevice(nil, 1<<20, 0)
	data := []byte("persistent payload")
	d.Write(100, data)
	got := make([]byte, len(data))
	d.Read(100, got)
	if string(got) != string(data) {
		t.Fatalf("read back %q, want %q", got, data)
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	d := NewDevice(nil, 1<<20, 0)
	buf := []byte{1, 2, 3, 4}
	d.Read(5000, buf)
	for _, b := range buf {
		if b != 0 {
			t.Fatalf("unwritten memory read as %v", buf)
		}
	}
}

func TestCrossPageWrite(t *testing.T) {
	d := NewDevice(nil, 1<<20, 0)
	data := make([]byte, 100)
	for i := range data {
		data[i] = byte(i)
	}
	addr := uint64(PageSize - 50) // spans two pages
	d.Write(addr, data)
	got := make([]byte, 100)
	d.Read(addr, got)
	for i := range data {
		if got[i] != data[i] {
			t.Fatalf("byte %d = %d, want %d", i, got[i], data[i])
		}
	}
	if d.AllocatedPages() != 2 {
		t.Fatalf("allocated %d pages, want 2", d.AllocatedPages())
	}
}

func TestLineHelpersAlign(t *testing.T) {
	d := NewDevice(nil, 1<<20, 0)
	var line [LineSize]byte
	line[0] = 0xAB
	d.WriteLine(0x1010, line) // unaligned; should align down to 0x1000
	got := d.ReadLine(0x1000)
	if got[0] != 0xAB {
		t.Fatal("WriteLine did not align down")
	}
}

func TestOutOfRangePanics(t *testing.T) {
	d := NewDevice(nil, 1<<12, 0)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range access did not panic")
		}
	}()
	d.Write(1<<12, []byte{1})
}

func TestSnapshotRestore(t *testing.T) {
	d := NewDevice(nil, 1<<20, 0)
	d.Write(0, []byte("old"))
	snap := d.Snapshot()
	d.Write(0, []byte("new"))
	buf := make([]byte, 3)
	d.Read(0, buf)
	if string(buf) != "new" {
		t.Fatalf("pre-restore = %q", buf)
	}
	d.Restore(snap)
	d.Read(0, buf)
	if string(buf) != "old" {
		t.Fatalf("post-restore = %q, want old (replay attack semantics)", buf)
	}
}

func TestSnapshotIsDeepCopy(t *testing.T) {
	d := NewDevice(nil, 1<<20, 0)
	d.Write(0, []byte{1})
	snap := d.Snapshot()
	d.Write(0, []byte{2})
	if snap[0][0] != 1 {
		t.Fatal("snapshot mutated by later write")
	}
}

func TestClear(t *testing.T) {
	d := NewDevice(nil, 1<<20, 0)
	d.Write(0, []byte{9})
	d.Clear()
	buf := make([]byte, 1)
	d.Read(0, buf)
	if buf[0] != 0 || d.AllocatedPages() != 0 {
		t.Fatal("Clear did not erase contents")
	}
}

func TestTimedAccessLatency(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, 1<<20, 4)
	var readDone, writeDone sim.Cycle
	d.AccessRead(0, func() { readDone = eng.Now() })
	d.AccessWrite(64, func() { writeDone = eng.Now() }) // different bank
	eng.Run(0)
	if readDone != ReadLatency {
		t.Fatalf("read completed at %d, want %d", readDone, ReadLatency)
	}
	if writeDone != WriteLatency {
		t.Fatalf("write completed at %d, want %d", writeDone, WriteLatency)
	}
	if d.Reads() != 1 || d.Writes() != 1 {
		t.Fatalf("access counters %d/%d", d.Reads(), d.Writes())
	}
}

func TestSameBankSerializes(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, 1<<20, 4)
	bankStride := uint64(4 * LineSize) // same bank every 4 lines
	var first, second sim.Cycle
	d.AccessWrite(0, func() { first = eng.Now() })
	d.AccessWrite(bankStride, func() { second = eng.Now() })
	eng.Run(0)
	if second != first+WriteLatency {
		t.Fatalf("same-bank writes not serialized: %d then %d", first, second)
	}
}

func TestDifferentBanksParallel(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, 1<<20, 4)
	var times []sim.Cycle
	for i := uint64(0); i < 4; i++ {
		d.AccessWrite(i*LineSize, func() { times = append(times, eng.Now()) })
	}
	eng.Run(0)
	for _, ts := range times {
		if ts != WriteLatency {
			t.Fatalf("parallel bank writes completed at %v", times)
		}
	}
}

func TestReadReadyAt(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice(eng, 1<<20, 4)
	if got := d.ReadReadyAt(0); got != ReadLatency {
		t.Fatalf("idle ReadReadyAt = %d", got)
	}
	d.AccessWrite(0, nil)
	if got := d.ReadReadyAt(0); got != WriteLatency+ReadLatency {
		t.Fatalf("busy ReadReadyAt = %d", got)
	}
}

func TestRoundTripProperty(t *testing.T) {
	d := NewDevice(nil, 1<<22, 0)
	f := func(addr uint32, data []byte) bool {
		if len(data) == 0 {
			return true
		}
		a := uint64(addr) % (1<<22 - uint64(len(data)))
		d.Write(a, data)
		got := make([]byte, len(data))
		d.Read(a, got)
		return string(got) == string(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
