// Package layout defines the physical address map of the simulated
// persistent-memory system: where user data, encryption counters,
// integrity-tree nodes, data MACs, ECC words, the Anubis shadow region and
// the WPQ drain area live on the NVM device. All secure-memory components
// share this map so that metadata caches, recovery and attacks agree on
// addresses.
package layout

// Map is the address map. All fields are byte offsets into one device.
type Map struct {
	// DataBase/DataSpan delimit the protected user-visible memory
	// (Table 1: 16 GB).
	DataBase uint64
	DataSpan uint64
	// CounterBase is the encryption-counter region (one 64 B split
	// counter block per 4 KB data page).
	CounterBase uint64
	// TreeBase is the integrity-tree interior node region (BMT or ToC).
	TreeBase uint64
	// MACBase is the per-line data MAC region (8 B per 64 B line).
	MACBase uint64
	// ECCBase is the Osiris ECC-word region (4 B per 64 B line).
	ECCBase uint64
	// ShadowBase is the Anubis shadow-tracker region.
	ShadowBase uint64
	// DrainBase is the WPQ ADR drain region.
	DrainBase uint64
	// DeviceSize is the total device size covering every region.
	DeviceSize uint64
}

// Default returns the evaluation address map: 16 GB of protected data
// followed by the metadata regions. The backing device is sparse, so the
// map can be generous with spacing.
func Default() Map {
	const gb = 1 << 30
	return Map{
		DataBase:    0,
		DataSpan:    16 * gb,
		CounterBase: 16 * gb,
		TreeBase:    17 * gb,
		MACBase:     18 * gb,
		ECCBase:     21 * gb,
		ShadowBase:  22 * gb,
		DrainBase:   23 * gb,
		DeviceSize:  24 * gb,
	}
}

// Small returns a compact map for tests: 64 MB of data with tightly
// packed metadata regions, keeping sparse-page overhead low while
// preserving the same structure.
func Small() Map {
	const mb = 1 << 20
	return Map{
		DataBase:    0,
		DataSpan:    64 * mb,
		CounterBase: 64 * mb,
		TreeBase:    80 * mb,
		MACBase:     96 * mb,
		ECCBase:     112 * mb,
		ShadowBase:  120 * mb,
		DrainBase:   124 * mb,
		DeviceSize:  128 * mb,
	}
}

// LineMACAddr returns the NVM address of the 8-byte MAC of the data line
// at addr. MACs are packed 8 per 64-byte metadata line.
func (m Map) LineMACAddr(addr uint64) uint64 {
	line := (addr - m.DataBase) / 64
	return m.MACBase + line*8
}

// ECCAddr returns the NVM address of the 4-byte Osiris ECC word of the
// data line at addr.
func (m Map) ECCAddr(addr uint64) uint64 {
	line := (addr - m.DataBase) / 64
	return m.ECCBase + line*4
}

// LeafIndex returns the integrity-tree leaf (counter-block index) covering
// the data line at addr: one leaf per 4 KB page.
func (m Map) LeafIndex(addr uint64) uint64 {
	return (addr - m.DataBase) / 4096
}

// Leaves returns the number of integrity-tree leaves for the data span.
func (m Map) Leaves() uint64 { return m.DataSpan / 4096 }

// ValidData reports whether addr lies in the protected data region.
func (m Map) ValidData(addr uint64) bool {
	return addr >= m.DataBase && addr < m.DataBase+m.DataSpan
}
