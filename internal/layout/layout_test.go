package layout

import (
	"testing"
	"testing/quick"
)

func TestDefaultRegionsDisjoint(t *testing.T) {
	for _, m := range []Map{Default(), Small()} {
		type region struct {
			name       string
			base, size uint64
		}
		regions := []region{
			{"data", m.DataBase, m.DataSpan},
			{"counter", m.CounterBase, m.DataSpan / 4096 * 64},
			{"tree", m.TreeBase, m.MACBase - m.TreeBase},
			{"mac", m.MACBase, m.DataSpan / 64 * 8},
			{"ecc", m.ECCBase, m.DataSpan / 64 * 4},
		}
		for i, a := range regions {
			if a.base+a.size > m.DeviceSize {
				t.Fatalf("%s overruns device: %#x+%#x > %#x", a.name, a.base, a.size, m.DeviceSize)
			}
			for j, b := range regions {
				if i == j {
					continue
				}
				if a.base < b.base+b.size && b.base < a.base+a.size {
					t.Fatalf("regions %s and %s overlap", a.name, b.name)
				}
			}
		}
	}
}

func TestLineMACAddrInjective(t *testing.T) {
	m := Small()
	f := func(a, b uint32) bool {
		la := m.DataBase + uint64(a)%m.DataSpan&^63
		lb := m.DataBase + uint64(b)%m.DataSpan&^63
		if la == lb {
			return true
		}
		return m.LineMACAddr(la) != m.LineMACAddr(lb)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestLeafIndexCoversPages(t *testing.T) {
	m := Small()
	if m.LeafIndex(m.DataBase) != 0 {
		t.Fatal("first leaf not zero")
	}
	if m.LeafIndex(m.DataBase+4095) != 0 || m.LeafIndex(m.DataBase+4096) != 1 {
		t.Fatal("leaf boundary wrong")
	}
	if m.Leaves() != m.DataSpan/4096 {
		t.Fatalf("leaves = %d", m.Leaves())
	}
}

func TestValidData(t *testing.T) {
	m := Small()
	if !m.ValidData(m.DataBase) || !m.ValidData(m.DataBase+m.DataSpan-1) {
		t.Fatal("in-range address rejected")
	}
	if m.ValidData(m.DataBase + m.DataSpan) {
		t.Fatal("out-of-range address accepted")
	}
}

func TestECCAddrDistinct(t *testing.T) {
	m := Small()
	if m.ECCAddr(0) == m.ECCAddr(64) {
		t.Fatal("ECC addresses collide for adjacent lines")
	}
	if m.ECCAddr(64)-m.ECCAddr(0) != 4 {
		t.Fatalf("ECC stride = %d, want 4", m.ECCAddr(64)-m.ECCAddr(0))
	}
}

func TestDefault16GB(t *testing.T) {
	m := Default()
	if m.DataSpan != 16<<30 {
		t.Fatalf("data span = %d, want 16 GB (Table 1)", m.DataSpan)
	}
	if m.Leaves() != 4<<20 {
		t.Fatalf("leaves = %d, want 4M", m.Leaves())
	}
}
