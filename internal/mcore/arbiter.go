package mcore

import (
	"fmt"

	"dolos/internal/controller"
	"dolos/internal/sim"
	"dolos/internal/stats"
)

// Request kinds multiplexed over the controller command port.
const (
	reqRead uint8 = iota
	reqPersist
	reqEvict
)

// request is one core's pending memory-controller command.
type request struct {
	at   sim.Cycle // arrival cycle
	core int
	seq  uint64 // per-core issue sequence
	kind uint8
	addr uint64
	data [64]byte // persist/evict payload
	done func()   // read completion / persist acceptance
}

// reqLess is the arbiter's deterministic total order: earlier arrival
// first, ties broken by core index, then by per-core issue sequence.
// The triple is unique per request, so selection never depends on
// storage order and identical runs grant identically.
func reqLess(x, y *request) bool {
	if x.at != y.at {
		return x.at < y.at
	}
	if x.core != y.core {
		return x.core < y.core
	}
	return x.seq < y.seq
}

// arbiter serializes all cores' reads, persists and evictions onto the
// shared memory controller through one command port that grants at most
// one request per cycle. Contention for the controller's WPQ, counter
// cache and security engines then unfolds inside the controller exactly
// as in the single-core model — the arbiter only fixes *order*, and it
// fixes it deterministically (see reqLess).
type arbiter struct {
	eng  *sim.Engine
	ctrl *controller.Controller

	pending  []request
	nextSeq  []uint64
	nextFree sim.Cycle
	armed    bool
	grantFn  func()

	// Per-core fairness counters, interned in the controller's stats
	// set only when a multi-core system exists — default single-core
	// snapshots stay byte-identical to the committed bench baseline.
	grants []*stats.Counter
	waits  []*stats.Counter
}

func newArbiter(eng *sim.Engine, ctrl *controller.Controller, cores int) *arbiter {
	a := &arbiter{
		eng:     eng,
		ctrl:    ctrl,
		nextSeq: make([]uint64, cores),
	}
	st := ctrl.Stats()
	for i := 0; i < cores; i++ {
		a.grants = append(a.grants, st.Counter(fmt.Sprintf("arb.core%d.grants", i)))
		a.waits = append(a.waits, st.Counter(fmt.Sprintf("arb.core%d.wait_cycles", i)))
	}
	a.grantFn = a.grant
	return a
}

// submit enqueues a request and arms the grant loop.
func (a *arbiter) submit(r request) {
	r.at = a.eng.Now()
	r.seq = a.nextSeq[r.core]
	a.nextSeq[r.core]++
	a.pending = append(a.pending, r)
	if !a.armed {
		a.armed = true
		at := r.at
		if at < a.nextFree {
			at = a.nextFree
		}
		a.eng.At(at, a.grantFn)
	}
}

// grant forwards the (at, core, seq)-minimal pending request to the
// controller and re-arms one cycle later while work remains.
func (a *arbiter) grant() {
	best := 0
	for i := 1; i < len(a.pending); i++ {
		if reqLess(&a.pending[i], &a.pending[best]) {
			best = i
		}
	}
	r := a.pending[best]
	last := len(a.pending) - 1
	a.pending[best] = a.pending[last]
	a.pending[last] = request{} // release the done closure
	a.pending = a.pending[:last]

	now := a.eng.Now()
	a.grants[r.core].Inc()
	a.waits[r.core].Add(uint64(now - r.at))
	a.nextFree = now + 1
	if len(a.pending) > 0 {
		a.eng.At(a.nextFree, a.grantFn)
	} else {
		a.armed = false
	}

	switch r.kind {
	case reqRead:
		a.ctrl.ReadLine(r.addr, r.done)
	case reqPersist:
		a.ctrl.PersistWrite(r.addr, r.data, r.done)
	case reqEvict:
		a.ctrl.EvictWrite(r.addr, r.data)
	}
}
