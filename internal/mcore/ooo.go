// Package mcore extends the timing model above the memory controller in
// two directions the in-order, single-core front-end cannot reach: an
// out-of-order issue window that overlaps independent read misses (plus
// a stride prefetcher), and a multi-core mode where N workload
// instances contend for one memory controller, one counter cache and
// one WPQ through a deterministic cycle-ordered arbiter.
//
// Both layers are strictly additive: the in-order model stays the
// default, and the OoO front-end at window 1 reproduces the in-order
// event schedule bit-for-bit (pinned by a differential test).
package mcore

import (
	"fmt"

	"dolos/internal/cpu"
	"dolos/internal/sim"
	"dolos/internal/trace"
)

// machine is one core's view of its memory system: the seam that lets
// the OoO front-end drive either a single-core cpu.System or one core
// of a multi-core System through the shared arbiter.
type machine interface {
	engine() *sim.Engine
	readLine(addr uint64, done func())
	writeLine(addr uint64) sim.Cycle
	flushLine(addr uint64) bool
	persist(addr uint64, data *[64]byte, accepted func())
	setMirror(addr uint64, p *[64]byte)
	cached(addr uint64) bool
	known(addr uint64) bool
	countOp()
	observeTx(start sim.Cycle)
	observeFenceStall(start sim.Cycle)
	finish()
}

// maxPrefetchInflight bounds stride-prefetch reads in flight so the
// prefetcher cannot starve demand traffic.
const maxPrefetchInflight = 2

// OoO is the out-of-order front-end: a bounded ROB/MLP window that
// issues trace operations in program order but lets execution run past
// an outstanding read miss until `window` misses are in flight. Reads
// are the only asynchronous operations — stores, flushes and compute
// still charge their costs on the issue path, and fence/clwb semantics
// are unchanged (sfence blocks until every issued flush is accepted
// into the persistence domain), so persist ordering is exactly the
// in-order model's.
//
// With window 1 the gate "issue stalls while a read is outstanding"
// degenerates to the in-order model: every operation's event schedule
// is identical, so cycle counts reproduce bit-for-bit.
type OoO struct {
	window     int
	prefetches uint64

	m  machine
	tr *trace.Trace
	i  int

	inflight    int  // outstanding demand reads
	stalled     bool // issue blocked on a full read window
	outstanding int  // flushes issued, not yet accepted
	fenceWait   bool
	fenceStart  sim.Cycle
	txStart     sim.Cycle

	// Pre-bound continuations: one closure pair serves the whole trace
	// (the same zero-allocation shape as the in-order front-end).
	stepFn     func()
	readDoneFn func()
	prefDoneFn func()

	prefLast     uint64
	prefStride   int64
	prefInflight int
}

// NewOoO returns an OoO front-end with the given issue window (values
// below 1 clamp to 1). The stride prefetcher is active only for
// windows above 1, so window 1 stays exactly the in-order model.
func NewOoO(window int) *OoO {
	if window < 1 {
		window = 1
	}
	return &OoO{window: window}
}

// Window returns the issue window.
func (e *OoO) Window() int { return e.window }

// Prefetches returns how many stride-prefetch reads were issued.
func (e *OoO) Prefetches() uint64 { return e.prefetches }

// Launch implements cpu.FrontEnd: it schedules execution of tr over a
// single-core system (cpu.System.RunWith / StartWith drive this).
func (e *OoO) Launch(sys *cpu.System, tr *trace.Trace) {
	e.launch(&singlePort{sys: sys}, tr)
}

// launch binds the front-end to a machine and schedules the first step.
func (e *OoO) launch(m machine, tr *trace.Trace) {
	if e.m != nil {
		panic("mcore: OoO front-end already launched")
	}
	e.m, e.tr = m, tr
	e.stepFn = e.step
	e.readDoneFn = e.readDone
	e.prefDoneFn = e.prefetchDone
	eng := m.engine()
	eng.At(eng.Now(), e.stepFn)
}

// step issues trace operations until it must yield: a full read window,
// an issue-path latency (compute/store/clwb), a parked fence, or the
// end of the trace.
func (e *OoO) step() {
	eng := e.m.engine()
	for {
		if e.i >= len(e.tr.Ops) {
			if e.inflight == 0 {
				e.m.finish()
			}
			return // outstanding reads finish the trace in readDone
		}
		if e.inflight >= e.window {
			e.stalled = true
			return
		}
		op := &e.tr.Ops[e.i]
		e.m.countOp()
		switch op.Kind {
		case trace.Compute:
			e.i++
			eng.After(op.Cycles, e.stepFn)
			return
		case trace.Read:
			e.i++
			e.inflight++
			e.m.readLine(op.Addr, e.readDoneFn)
			e.maybePrefetch(op.Addr)
		case trace.Write:
			e.i++
			e.m.setMirror(op.Addr, &op.Data)
			lat := e.m.writeLine(op.Addr)
			eng.After(lat, e.stepFn)
			return
		case trace.Flush:
			e.i++
			e.m.setMirror(op.Addr, &op.Data)
			if e.m.flushLine(op.Addr) {
				e.outstanding++
				e.m.persist(op.Addr, &op.Data, e.persistAccepted)
			}
			eng.After(2, e.stepFn) // clwb issue cost; completion is async
			return
		case trace.Fence:
			if e.outstanding == 0 {
				e.i++
				eng.After(1, e.stepFn)
				return
			}
			e.fenceWait = true
			e.fenceStart = eng.Now()
			return
		case trace.TxBegin:
			e.i++
			e.txStart = eng.Now()
		case trace.TxEnd:
			e.i++
			e.m.observeTx(e.txStart)
		default:
			panic(fmt.Sprintf("mcore: unknown op kind %v", op.Kind))
		}
	}
}

// readDone completes one demand read: resume a window-stalled issue
// stage, or finish the trace once the tail reads drain.
func (e *OoO) readDone() {
	e.inflight--
	if e.stalled {
		e.stalled = false
		e.step()
		return
	}
	if e.i >= len(e.tr.Ops) && e.inflight == 0 {
		e.m.finish()
	}
}

// persistAccepted completes one flush's acceptance into the
// persistence domain and resumes a parked fence when it was the last.
func (e *OoO) persistAccepted() {
	e.outstanding--
	if e.outstanding == 0 && e.fenceWait {
		e.fenceWait = false
		e.m.observeFenceStall(e.fenceStart)
		e.i++
		e.step()
	}
}

// maybePrefetch issues a next-line stride prefetch after two demand
// reads with the same address delta. Prefetches fill the cache
// hierarchy through the normal read path but are invisible to the
// issue window; only mirror-known (application-written) lines are
// prefetched, and lines already on chip are skipped.
func (e *OoO) maybePrefetch(addr uint64) {
	if e.window <= 1 {
		return
	}
	last, confirmed := e.prefLast, e.prefStride
	e.prefStride = int64(addr) - int64(last)
	e.prefLast = addr
	if last == 0 || e.prefStride == 0 || e.prefStride != confirmed {
		return
	}
	next := uint64(int64(addr) + e.prefStride)
	if e.prefInflight >= maxPrefetchInflight || e.m.cached(next) || !e.m.known(next) {
		return
	}
	e.prefInflight++
	e.prefetches++
	e.m.readLine(next, e.prefDoneFn)
}

func (e *OoO) prefetchDone() { e.prefInflight-- }

// singlePort adapts a single-core cpu.System to the machine seam.
type singlePort struct{ sys *cpu.System }

func (p *singlePort) engine() *sim.Engine { return p.sys.Eng }

func (p *singlePort) readLine(addr uint64, done func()) { p.sys.Hier.Read(addr, done) }

func (p *singlePort) writeLine(addr uint64) sim.Cycle { return p.sys.Hier.Write(addr) }

func (p *singlePort) flushLine(addr uint64) bool { return p.sys.Hier.FlushLine(addr) }

func (p *singlePort) persist(addr uint64, data *[64]byte, accepted func()) {
	addr64, d := addr, *data
	p.sys.Ctrl.PersistWrite(addr64, d, func() {
		p.sys.NotifyAccepted(addr64, d)
		accepted()
	})
}

func (p *singlePort) setMirror(addr uint64, d *[64]byte) { p.sys.SetMirror(addr, d) }

func (p *singlePort) cached(addr uint64) bool { return p.sys.Hier.Contains(addr) }

func (p *singlePort) known(addr uint64) bool {
	_, ok := p.sys.Mirror(addr)
	return ok
}

func (p *singlePort) countOp() { p.sys.CountOp() }

func (p *singlePort) observeTx(start sim.Cycle) { p.sys.ObserveTx(start) }

func (p *singlePort) observeFenceStall(start sim.Cycle) { p.sys.ObserveFenceStall(start) }

func (p *singlePort) finish() { p.sys.FinishNow() }
