package mcore

import (
	"fmt"

	"dolos/internal/cache"
	"dolos/internal/controller"
	"dolos/internal/cpu"
	"dolos/internal/nvm"
	"dolos/internal/sim"
	"dolos/internal/stats"
	"dolos/internal/trace"
	"dolos/internal/wpq"
)

// CoreSeedStride separates per-core workload seeds; CoreHeapStride
// separates per-core persistent heaps in the default 16 GB data region
// (256 MB apart comfortably holds the default 48 MB heap, for up to 64
// cores).
const (
	CoreSeedStride = 7919
	CoreHeapStride = 256 << 20
)

// CoreSeed derives core i's workload seed from a base seed. Core 0
// keeps the base seed, so its trace is identical to the single-core
// trace for the same options.
func CoreSeed(seed int64, core int) int64 { return seed + int64(core)*CoreSeedStride }

// CoreHeapBase places core i's persistent heap in the default layout:
// disjoint per-core regions so instances never alias lines. Core 0
// keeps the single-core default base (4 KB into the data region).
func CoreHeapBase(core int) uint64 { return 4096 + uint64(core)*CoreHeapStride }

// CoreSpec describes one core's workload instance.
type CoreSpec struct {
	// Workload labels the instance (canonical workload name).
	Workload string
	// Seed is the instance's generator seed (recorded for audit).
	Seed int64
	// Trace is the instance's pre-generated operation stream. Its
	// addresses must be disjoint from every other core's (see
	// CoreHeapBase).
	Trace *trace.Trace
}

// Config configures a multi-core system.
type Config struct {
	// Ctrl is the shared memory controller configuration: one WPQ, one
	// counter cache, one set of security engines for all cores.
	Ctrl controller.Config
	// Window is every core's OoO issue window (values below 1 clamp to
	// 1, the in-order-equivalent front-end).
	Window int
}

// Core is one core of a multi-core system: a private L1/L2/LLC
// hierarchy and line mirror around the shared controller.
type Core struct {
	// OnAccepted, when set, observes this core's persist acceptances
	// (crash-driver seam, like cpu.System.OnAccepted).
	OnAccepted func(addr uint64, data [64]byte)

	id     int
	sys    *System
	spec   CoreSpec
	hier   *cache.Hierarchy
	mirror *cpu.TraceMirror
	fe     *OoO

	finished     bool
	endCycle     sim.Cycle
	ops          int
	transactions int
	fenceStalls  sim.Cycle
	acceptedN    *stats.Counter
}

// ID returns the core index.
func (c *Core) ID() int { return c.id }

// Spec returns the core's workload instance description.
func (c *Core) Spec() CoreSpec { return c.spec }

// Hier returns the core's private cache hierarchy.
func (c *Core) Hier() *cache.Hierarchy { return c.hier }

// Finished reports whether the core's trace fully executed.
func (c *Core) Finished() bool { return c.finished }

// Mirror returns the plaintext the application last wrote to addr's
// line on this core.
func (c *Core) Mirror(addr uint64) ([64]byte, bool) {
	if p := c.mirror.At(addr); p != nil {
		return *p, true
	}
	return [64]byte{}, false
}

// coreBackend routes a core's hierarchy misses and evictions through
// the shared arbiter.
type coreBackend struct{ c *Core }

func (b coreBackend) ReadLine(addr uint64, done func()) {
	b.c.sys.arb.submit(request{core: b.c.id, kind: reqRead, addr: addr, done: done})
}

func (b coreBackend) EvictLine(addr uint64) {
	var data [64]byte
	if p := b.c.mirror.At(addr); p != nil {
		data = *p
	}
	b.c.sys.arb.submit(request{core: b.c.id, kind: reqEvict, addr: addr, data: data})
}

// machine seam: the OoO front-end drives one core like it drives a
// single-core system, with persists and misses detouring through the
// arbiter.

func (c *Core) engine() *sim.Engine { return c.sys.Eng }

func (c *Core) readLine(addr uint64, done func()) { c.hier.Read(addr, done) }

func (c *Core) writeLine(addr uint64) sim.Cycle { return c.hier.Write(addr) }

func (c *Core) flushLine(addr uint64) bool { return c.hier.FlushLine(addr) }

func (c *Core) persist(addr uint64, data *[64]byte, accepted func()) {
	addr64, d := addr, *data
	c.sys.arb.submit(request{core: c.id, kind: reqPersist, addr: addr64, data: d, done: func() {
		c.acceptedN.Inc()
		if c.OnAccepted != nil {
			c.OnAccepted(addr64, d)
		}
		accepted()
	}})
}

func (c *Core) setMirror(addr uint64, p *[64]byte) { c.mirror.Set(addr, p) }

func (c *Core) cached(addr uint64) bool { return c.hier.Contains(addr) }

func (c *Core) known(addr uint64) bool { return c.mirror.At(addr) != nil }

func (c *Core) countOp() { c.ops++ }

func (c *Core) observeTx(start sim.Cycle) {
	c.transactions++
	lat := float64(c.sys.Eng.Now() - start)
	c.sys.txLat.Observe(lat)
	c.sys.txRes.Observe(lat)
}

func (c *Core) observeFenceStall(start sim.Cycle) {
	c.fenceStalls += c.sys.Eng.Now() - start
}

func (c *Core) finish() {
	c.endCycle = c.sys.Eng.Now()
	c.finished = true
}

// System is the multi-core machine: N cores with private hierarchies
// and front-ends sharing one engine, one controller and one NVM device.
type System struct {
	Eng   *sim.Engine
	Dev   *nvm.Device
	Ctrl  *controller.Controller
	Cores []*Core

	cfg     Config
	arb     *arbiter
	txLat   *stats.Histogram
	txRes   *stats.Reservoir
	started bool
}

// NewSystem builds a multi-core machine: every CoreSpec becomes one
// core contending for the shared controller. It also interns the
// shared WPQ occupancy histogram ("wpq.occupancy") and per-core
// fairness counters in the controller's stats set — lazily, here, so
// single-core runs' snapshots stay byte-identical to the committed
// bench baseline.
func NewSystem(cfg Config, cores []CoreSpec) *System {
	if len(cores) == 0 {
		panic("mcore: need at least one core")
	}
	if cfg.Window < 1 {
		cfg.Window = 1
	}
	eng := sim.NewEngine()
	dev := nvm.NewDevice(eng, deviceSize(cfg.Ctrl), 0)
	ctrl := controller.New(eng, dev, cfg.Ctrl)
	s := &System{
		Eng:   eng,
		Dev:   dev,
		Ctrl:  ctrl,
		cfg:   cfg,
		txLat: stats.NewHistogram("tx_latency"),
		txRes: stats.NewReservoir("tx_latency", 0),
	}
	hOcc := ctrl.Stats().Histogram("wpq.occupancy")
	ctrl.Queue().SetObserver(func(_ wpq.ObsEvent, _ uint64, live int) {
		hOcc.Observe(float64(live))
	})
	s.arb = newArbiter(eng, ctrl, len(cores))
	for i, cs := range cores {
		c := &Core{
			id:        i,
			sys:       s,
			spec:      cs,
			mirror:    cpu.NewTraceMirror(),
			fe:        NewOoO(cfg.Window),
			acceptedN: ctrl.Stats().Counter(fmt.Sprintf("mcore.core%d.accepted", i)),
		}
		c.hier = cache.NewHierarchy(eng, coreBackend{c})
		s.Cores = append(s.Cores, c)
	}
	return s
}

func deviceSize(cfg controller.Config) uint64 {
	if cfg.Layout.DeviceSize != 0 {
		return cfg.Layout.DeviceSize
	}
	return 24 << 30 // layout.Default()
}

// Start loads every core's checkpoint image functionally (core order,
// no cycles charged) and schedules all front-ends at the current cycle
// — core order again, so the first-cycle interleave is deterministic.
func (s *System) Start() {
	if s.started {
		panic("mcore: system already running")
	}
	s.started = true
	for _, c := range s.Cores {
		tr := c.spec.Trace
		c.mirror.SizeFor(tr)
		for i := range tr.InitImage {
			il := &tr.InitImage[i]
			s.Ctrl.LoadInitLine(il.Addr, il.Data)
			c.mirror.Set(il.Addr, &il.Data)
		}
	}
	for _, c := range s.Cores {
		c.fe.launch(c, c.spec.Trace)
	}
}

// Run executes every core's trace to completion and collects the
// aggregate result.
func (s *System) Run() cpu.Result {
	s.Start()
	s.Eng.Run(0)
	for _, c := range s.Cores {
		if !c.finished {
			panic(fmt.Sprintf("mcore: core %d deadlocked (fence never satisfied)", c.id))
		}
	}
	s.Ctrl.Quiesce()
	return s.Collect()
}

// Collect gathers the aggregate result plus per-core summaries.
// Aggregate cycle-derived rates use the slowest core's end cycle (the
// run finishes when the last core does).
func (s *System) Collect() cpu.Result {
	st := s.Ctrl.Stats()
	res := cpu.Result{
		Scheme:        s.Ctrl.Config().Scheme.String(),
		Workload:      s.workloadLabel(),
		Cores:         len(s.Cores),
		OoOWindow:     s.cfg.Window,
		WriteRequests: s.Ctrl.WriteRequests(),
		RetryEvents:   s.Ctrl.RetryEvents(),
		RetryPerKWR:   s.Ctrl.RetryPerKWR(),
		WPQReadHits:   st.Counter("wpq.read_hits").Value(),
		MemReads:      st.Counter("mem.reads").Value(),
	}
	res.RecoveryCycles = s.Ctrl.RecoveryEstimate()
	for _, c := range s.Cores {
		if c.endCycle > res.Cycles {
			res.Cycles = c.endCycle
		}
		res.Transactions += c.transactions
		res.Ops += c.ops
		res.FenceStalls += c.fenceStalls
		res.Prefetches += c.fe.Prefetches()
		res.PerCore = append(res.PerCore, cpu.CoreResult{
			Core:             c.id,
			Workload:         c.spec.Workload,
			Seed:             c.spec.Seed,
			Cycles:           c.endCycle,
			Transactions:     c.transactions,
			Ops:              c.ops,
			FenceStalls:      c.fenceStalls,
			AcceptedPersists: c.acceptedN.Value(),
			ArbGrants:        s.arb.grants[c.id].Value(),
			ArbWaitCycles:    s.arb.waits[c.id].Value(),
		})
	}
	if res.Transactions > 0 {
		res.CyclesPerTx = float64(res.Cycles) / float64(res.Transactions)
	}
	if res.Ops > 0 {
		res.CPI = float64(res.Cycles) / float64(res.Ops)
	}
	res.MeanInterarrival = st.Histogram("wpq.interarrival_cycles").Mean()
	res.WPQMeanOccupancy = st.Histogram("wpq.occupancy_at_arrival").Mean()
	if s.txRes.Count() > 0 {
		res.MedianTxCycles = s.txRes.Median()
		res.P99TxCycles = s.txRes.P99()
	}
	return res
}

// workloadLabel is the shared workload name, or "mixed" when cores run
// different workloads.
func (s *System) workloadLabel() string {
	name := s.Cores[0].spec.Workload
	for _, c := range s.Cores[1:] {
		if c.spec.Workload != name {
			return "mixed"
		}
	}
	return name
}
