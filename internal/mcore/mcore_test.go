package mcore

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"dolos/internal/controller"
	"dolos/internal/cpu"
	"dolos/internal/telemetry"
	"dolos/internal/trace"
	"dolos/internal/whisper"
)

func testTrace(t *testing.T, name string, txns int, seed int64, heapBase uint64) *trace.Trace {
	t.Helper()
	w, err := whisper.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	return w.Generate(whisper.Params{
		Transactions: txns,
		TxSize:       512,
		Seed:         seed,
		HeapBase:     heapBase,
	})
}

func testConfig(scheme controller.Scheme) controller.Config {
	cfg := controller.Config{Scheme: scheme, HardwareWPQ: 16}
	copy(cfg.AESKey[:], "dolos-aes-key-16")
	copy(cfg.MACKey[:], "dolos-mac-key-16")
	return cfg
}

// snapshotJSON renders a system's full metrics snapshot for byte
// comparison.
func snapshotJSON(t *testing.T, sys *cpu.System) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := telemetry.WriteJSON(&buf, telemetry.Snapshot(sys.Ctrl.Stats(), nil)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestOoOWindowOneMatchesInOrder is the differential determinism proof
// for the front-end seam: at window 1 the OoO model must reproduce the
// in-order model's cycles, event counts and every controller metric
// bit-for-bit, across schemes.
func TestOoOWindowOneMatchesInOrder(t *testing.T) {
	for _, scheme := range []controller.Scheme{
		controller.DolosPartial, controller.PreWPQSecure, controller.DolosFull,
	} {
		tr := testTrace(t, "Hashmap", 60, 1, 0)

		inOrder := cpu.NewSystem(testConfig(scheme))
		resIn := inOrder.Run(tr)

		ooo := cpu.NewSystem(testConfig(scheme))
		resOoO := ooo.RunWith(tr, NewOoO(1))

		if !reflect.DeepEqual(resIn, resOoO) {
			t.Fatalf("%v: window-1 OoO result diverges from in-order:\nin-order %+v\nooo      %+v",
				scheme, resIn, resOoO)
		}
		if inOrder.Eng.Processed() != ooo.Eng.Processed() {
			t.Fatalf("%v: event counts diverge: in-order %d, ooo %d",
				scheme, inOrder.Eng.Processed(), ooo.Eng.Processed())
		}
		if !bytes.Equal(snapshotJSON(t, inOrder), snapshotJSON(t, ooo)) {
			t.Fatalf("%v: metrics snapshots diverge at window 1", scheme)
		}
	}
}

// TestOoOWiderWindowDeterministicAndOverlaps checks that a wide window
// is (a) deterministic run-to-run and (b) actually overlaps read
// misses: the same trace must finish in no more cycles than in-order,
// and strictly fewer whenever any overlap or prefetch happened.
func TestOoOWiderWindowDeterministicAndOverlaps(t *testing.T) {
	tr := testTrace(t, "Btree", 80, 1, 0)

	run := func() (cpu.Result, []byte) {
		sys := cpu.NewSystem(testConfig(controller.DolosPartial))
		res := sys.RunWith(tr, NewOoO(8))
		return res, snapshotJSON(t, sys)
	}
	res1, snap1 := run()
	res2, snap2 := run()
	if !reflect.DeepEqual(res1, res2) || !bytes.Equal(snap1, snap2) {
		t.Fatal("window-8 OoO run is not deterministic")
	}
	if res1.OoOWindow != 0 {
		// RunWith leaves Result.OoOWindow to the caller (core layer).
		t.Fatalf("RunWith set OoOWindow = %d, want 0", res1.OoOWindow)
	}

	inOrder := cpu.NewSystem(testConfig(controller.DolosPartial)).Run(tr)
	if res1.Cycles > inOrder.Cycles {
		t.Fatalf("window-8 OoO slower than in-order: %d > %d cycles", res1.Cycles, inOrder.Cycles)
	}
	if res1.Cycles == inOrder.Cycles {
		t.Logf("window-8 matched in-order exactly (no overlappable misses in trace)")
	}
}

// TestMultiCoreDeterminism runs the same 2-core contention twice and
// demands byte-identical aggregate and per-core results.
func TestMultiCoreDeterminism(t *testing.T) {
	build := func() *System {
		cores := []CoreSpec{
			{Workload: "Hashmap", Seed: 1, Trace: testTrace(t, "Hashmap", 40, 1, CoreHeapBase(0))},
			{Workload: "Btree", Seed: CoreSeed(1, 1), Trace: testTrace(t, "Btree", 40, CoreSeed(1, 1), CoreHeapBase(1))},
		}
		return NewSystem(Config{Ctrl: testConfig(controller.DolosPartial), Window: 2}, cores)
	}
	s1 := build()
	r1 := s1.Run()
	s2 := build()
	r2 := s2.Run()
	if !reflect.DeepEqual(r1, r2) {
		t.Fatalf("multi-core run not deterministic:\n%+v\n%+v", r1, r2)
	}
	if s1.Eng.Processed() != s2.Eng.Processed() {
		t.Fatalf("event counts diverge: %d vs %d", s1.Eng.Processed(), s2.Eng.Processed())
	}

	if r1.Cores != 2 || len(r1.PerCore) != 2 {
		t.Fatalf("expected 2-core result, got Cores=%d PerCore=%d", r1.Cores, len(r1.PerCore))
	}
	if r1.Workload != "mixed" {
		t.Fatalf("mixed workloads should label the run \"mixed\", got %q", r1.Workload)
	}
	totalTx := 0
	for _, pc := range r1.PerCore {
		totalTx += pc.Transactions
		if want := s1.Cores[pc.Core].Spec().Trace.Transactions; pc.Transactions != want {
			t.Fatalf("core %d ran %d transactions, want %d", pc.Core, pc.Transactions, want)
		}
		if pc.ArbGrants == 0 {
			t.Fatalf("core %d recorded no arbiter grants", pc.Core)
		}
	}
	if totalTx != r1.Transactions {
		t.Fatalf("per-core transactions sum %d != aggregate %d", totalTx, r1.Transactions)
	}

	// The shared-WPQ occupancy histogram and per-core fairness counters
	// must be present in the stats set (they feed the Prometheus
	// exposition and the RunRecord metrics).
	st := s1.Ctrl.Stats()
	if st.Histogram("wpq.occupancy").Count() == 0 {
		t.Fatal("wpq.occupancy histogram recorded nothing")
	}
	for _, name := range []string{"arb.core0.grants", "arb.core1.grants", "mcore.core0.accepted"} {
		if st.Counter(name).Value() == 0 {
			t.Fatalf("counter %s is zero", name)
		}
	}
}

// TestContentionMetricsExposition proves the new shared-WPQ occupancy
// histogram and per-core fairness counters reach the existing
// Prometheus text exposition with zero service changes: they are
// interned into the controller's stats set, and the exposition renders
// whatever the snapshot holds.
func TestContentionMetricsExposition(t *testing.T) {
	cores := []CoreSpec{
		{Workload: "Hashmap", Seed: 1, Trace: testTrace(t, "Hashmap", 30, 1, CoreHeapBase(0))},
		{Workload: "Hashmap", Seed: CoreSeed(1, 1), Trace: testTrace(t, "Hashmap", 30, CoreSeed(1, 1), CoreHeapBase(1))},
	}
	sys := NewSystem(Config{Ctrl: testConfig(controller.DolosPartial), Window: 2}, cores)
	sys.Run()

	var buf bytes.Buffer
	if err := telemetry.WritePrometheus(&buf, telemetry.Snapshot(sys.Ctrl.Stats(), nil)); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	for _, name := range []string{
		"wpq_occupancy_count", "wpq_occupancy_sum",
		"arb_core0_grants", "arb_core1_grants",
		"arb_core0_wait_cycles", "mcore_core0_accepted",
	} {
		if !strings.Contains(text, "\n"+name+" ") {
			t.Errorf("exposition missing sample %q", name)
		}
	}
}

// TestMultiCoreGapShift pins the contention experiment's headline
// physics: Dolos Mi-SU's single-core advantage over the
// security-before-WPQ baseline is a *latency* win, so as contending
// cores push the shared WPQ toward saturation the advantage must
// shrink — the deferred Ma-SU work becomes the drain bottleneck while
// the baseline is pipeline-latency-bound rather than queue-bound. The
// WPQ telemetry must show it: Dolos's retry rate explodes with core
// count while the baseline's stays comparatively low.
func TestMultiCoreGapShift(t *testing.T) {
	if testing.Short() {
		t.Skip("contention comparison needs full traces")
	}
	run := func(scheme controller.Scheme, n int) cpu.Result {
		var cores []CoreSpec
		for i := 0; i < n; i++ {
			cores = append(cores, CoreSpec{
				Workload: "Hashmap",
				Seed:     CoreSeed(1, i),
				Trace:    testTrace(t, "Hashmap", 50, CoreSeed(1, i), CoreHeapBase(i)),
			})
		}
		return NewSystem(Config{Ctrl: testConfig(scheme)}, cores).Run()
	}
	base1, dolos1 := run(controller.PreWPQSecure, 1), run(controller.DolosPartial, 1)
	base4, dolos4 := run(controller.PreWPQSecure, 4), run(controller.DolosPartial, 4)

	adv1 := base1.CyclesPerTx / dolos1.CyclesPerTx
	adv4 := base4.CyclesPerTx / dolos4.CyclesPerTx
	if adv1 <= 1 {
		t.Fatalf("single-core Dolos advantage missing: %.2fx", adv1)
	}
	if adv4 >= adv1 {
		t.Fatalf("Dolos advantage should shrink under contention: 1-core %.2fx, 4-core %.2fx", adv1, adv4)
	}
	if dolos4.RetryPerKWR <= dolos1.RetryPerKWR || dolos4.RetryPerKWR <= base4.RetryPerKWR {
		t.Fatalf("expected WPQ-full retries to explain the shift: dolos 1-core %.1f, 4-core %.1f, base 4-core %.1f",
			dolos1.RetryPerKWR, dolos4.RetryPerKWR, base4.RetryPerKWR)
	}
}
