package dense

import "testing"

func TestGetZeroWithoutAllocating(t *testing.T) {
	tb := NewTable[uint64](10_000)
	if got := tb.Get(9_999); got != 0 {
		t.Fatalf("Get on untouched table = %d, want 0", got)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if tb.Get(123) != 0 {
			t.Fatal("unexpected value")
		}
	})
	if allocs != 0 {
		t.Fatalf("Get allocated %v times per run, want 0", allocs)
	}
}

func TestSetGetRoundTrip(t *testing.T) {
	tb := NewTable[uint64](1 << 20)
	// Straddle chunk boundaries on purpose.
	idx := []uint64{0, 1, chunkLen - 1, chunkLen, chunkLen + 1, 5*chunkLen + 7, 1<<20 - 1}
	for _, i := range idx {
		tb.Set(i, i*3+1)
	}
	for _, i := range idx {
		if got := tb.Get(i); got != i*3+1 {
			t.Fatalf("Get(%d) = %d, want %d", i, got, i*3+1)
		}
	}
	// Untouched slot in a touched chunk reads zero.
	if got := tb.Get(2); got != 0 {
		t.Fatalf("Get(2) = %d, want 0", got)
	}
}

func TestPtrStable(t *testing.T) {
	tb := NewTable[int](chunkLen * 4)
	p := tb.Ptr(42)
	*p = 7
	tb.Set(3*chunkLen, 9) // materialize another chunk
	if p != tb.Ptr(42) {
		t.Fatal("Ptr moved after another chunk materialized")
	}
	if tb.Get(42) != 7 {
		t.Fatal("value lost")
	}
}

func TestRangeOrderedAndFiltered(t *testing.T) {
	tb := NewTable[uint64](chunkLen * 8)
	want := []uint64{3, chunkLen + 1, 4 * chunkLen, 7*chunkLen + 5}
	for _, i := range want {
		tb.Set(i, i+1) // nonzero marker
	}
	var got []uint64
	tb.Range(func(i uint64, v *uint64) bool {
		if *v != 0 {
			got = append(got, i)
			if *v != i+1 {
				t.Fatalf("slot %d = %d, want %d", i, *v, i+1)
			}
		}
		return true
	})
	if len(got) != len(want) {
		t.Fatalf("Range visited %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("Range order %v, want ascending %v", got, want)
		}
	}
}

func TestRangeEarlyStop(t *testing.T) {
	tb := NewTable[int](chunkLen)
	tb.Set(0, 1)
	tb.Set(1, 1)
	n := 0
	tb.Range(func(i uint64, v *int) bool {
		n++
		return false
	})
	if n != 1 {
		t.Fatalf("Range visited %d slots after stop, want 1", n)
	}
}

func TestReset(t *testing.T) {
	tb := NewTable[bool](chunkLen * 2)
	tb.Set(5, true)
	tb.Set(chunkLen+5, true)
	tb.Reset()
	if tb.Get(5) || tb.Get(chunkLen+5) {
		t.Fatal("Reset left values behind")
	}
	visited := false
	tb.Range(func(i uint64, v *bool) bool { visited = true; return true })
	if visited {
		t.Fatal("Range visited chunks after Reset")
	}
}

func TestPartialTailChunk(t *testing.T) {
	// A table whose capacity is not a chunk multiple must clamp Range
	// at Len, not at the chunk end.
	n := uint64(chunkLen + 10)
	tb := NewTable[int](n)
	tb.Set(n-1, 1)
	count := 0
	tb.Range(func(i uint64, v *int) bool {
		if i >= n {
			t.Fatalf("Range visited out-of-bounds index %d", i)
		}
		count++
		return true
	})
	if count != 10 {
		t.Fatalf("tail chunk visited %d slots, want 10", count)
	}
}
