// Package dense provides the chunked two-level tables that back the
// simulator's hot-path state (NVM pages, counter blocks, integrity-tree
// nodes, the Anubis shadow region). They replace the `map[uint64]`
// lookups that dominated the seed profile: an index lookup is two array
// dereferences and a mask — no hashing, no bucket chains, no write
// barriers on read — and iteration is in ascending index order, which
// makes every "walk the dirty/volatile set" loop deterministic by
// construction instead of by the repo's map-order-independence argument
// (DESIGN.md §12).
//
// A Table is sized at construction from the layout (layout.Map gives
// every region a fixed span) but allocates lazily in chunks, so a
// 16 GB data space costs one small directory until pages are touched.
// The zero value of V means "absent" for tables that need presence
// (callers use pointer-typed V or an explicit live flag + counter when
// the zero value is a legal stored value).
package dense

const (
	// chunkShift sets the chunk granularity: 2^chunkShift entries per
	// chunk. 4096 entries keeps directories tiny (a 268M-entry table —
	// 16 GB of data at line granularity — has a 65536-entry directory)
	// while a chunk of bools is exactly one OS page.
	chunkShift = 12
	chunkLen   = 1 << chunkShift
	chunkMask  = chunkLen - 1
)

// Table is a fixed-capacity two-level array indexed by a dense uint64
// key in [0, Len). Chunks materialize on first write; reads of an
// untouched chunk return the zero value without allocating.
type Table[V any] struct {
	chunks [][]V
	n      uint64
}

// NewTable returns a table holding indices [0, n).
func NewTable[V any](n uint64) *Table[V] {
	return &Table[V]{
		chunks: make([][]V, (n+chunkLen-1)>>chunkShift),
		n:      n,
	}
}

// Len returns the table capacity (the exclusive index bound).
func (t *Table[V]) Len() uint64 { return t.n }

// Get returns the value at index i, or the zero value if the chunk
// holding i was never written. It never allocates.
func (t *Table[V]) Get(i uint64) V {
	if c := t.chunks[i>>chunkShift]; c != nil {
		return c[i&chunkMask]
	}
	var zero V
	return zero
}

// Ptr returns a pointer to the slot for index i, materializing its
// chunk if needed. The pointer stays valid for the table's lifetime
// (chunks are never moved or freed except by Reset).
func (t *Table[V]) Ptr(i uint64) *V {
	ci := i >> chunkShift
	c := t.chunks[ci]
	if c == nil {
		c = make([]V, chunkLen)
		t.chunks[ci] = c
	}
	return &c[i&chunkMask]
}

// Set stores v at index i.
func (t *Table[V]) Set(i uint64, v V) { *t.Ptr(i) = v }

// Reset drops every chunk, returning the table to its freshly
// constructed state (all indices read as zero).
func (t *Table[V]) Reset() {
	for i := range t.chunks {
		t.chunks[i] = nil
	}
}

// Range calls f for every slot in every materialized chunk, in
// ascending index order, until f returns false. Slots that were never
// written hold the zero value, so callers filter (nil pointer, false
// flag, zero count) exactly as they would check map membership.
// Mutating the visited slot through Ptr/Set during iteration is safe;
// materializing a *new* chunk during iteration is also safe (the
// directory is fixed-size) and the new chunk is visited if its index
// is still ahead of the cursor.
func (t *Table[V]) Range(f func(i uint64, v *V) bool) {
	for ci := range t.chunks {
		c := t.chunks[ci]
		if c == nil {
			continue
		}
		base := uint64(ci) << chunkShift
		for j := range c {
			i := base + uint64(j)
			if i >= t.n {
				return
			}
			if !f(i, &c[j]) {
				return
			}
		}
	}
}
