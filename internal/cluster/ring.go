// Package cluster takes dolos-serve multi-node: a consistent-hash ring
// over worker nodes keyed by the service's normalized request hashes, a
// coordinator that forwards grid cells to their owners over HTTP (with
// local fallback when an owner is down, so a killed worker never blocks
// a grid), health-probed membership with rebalancing on change, and
// ring/ownership telemetry. Cell ownership is what makes the existing
// SHA-256 single-flight dedup cluster-wide: every node routes a given
// cell key to the same owner, and the owner's local claim/publish
// machinery collapses concurrent cluster-wide submissions of that cell
// into one simulation. See DESIGN.md §16.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// vnodesPerNode is the number of virtual points each node contributes
// to the ring. 64 keeps the max/min ownership skew under ~30% for small
// clusters while keeping ring rebuilds trivially cheap.
const vnodesPerNode = 64

// ringPoint is one virtual node: a position on the uint64 circle and
// the node that owns the arc ending there.
type ringPoint struct {
	pos  uint64
	node string
}

// Ring is an immutable consistent-hash ring over a set of node IDs.
// Build with newRing; Owner is safe for concurrent use.
type Ring struct {
	points []ringPoint
	nodes  []string
}

// newRing builds the ring for a node set. The layout depends only on
// the sorted node IDs, so every member that knows the same membership
// computes the identical ring — there is no coordination step.
func newRing(nodes []string) *Ring {
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	r := &Ring{nodes: sorted}
	for _, n := range sorted {
		for v := 0; v < vnodesPerNode; v++ {
			r.points = append(r.points, ringPoint{pos: hashPoint(fmt.Sprintf("%s#%d", n, v)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].pos != r.points[j].pos {
			return r.points[i].pos < r.points[j].pos
		}
		return r.points[i].node < r.points[j].node
	})
	return r
}

// hashPoint maps a label onto the ring circle: the first 8 bytes of its
// SHA-256 — the same hash family as the request keys it will route.
func hashPoint(label string) uint64 {
	sum := sha256.Sum256([]byte(label))
	return binary.BigEndian.Uint64(sum[:8])
}

// Nodes returns the ring's member IDs, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Owner returns the node owning key: the first ring point clockwise of
// the key's hash. Empty ring returns "".
func (r *Ring) Owner(key string) string {
	owners := r.Owners(key, 1)
	if len(owners) == 0 {
		return ""
	}
	return owners[0]
}

// Owners returns up to n distinct nodes clockwise of the key — the
// owner followed by its successors, which are the natural fallback
// order when the owner is unhealthy.
func (r *Ring) Owners(key string, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	h := hashPoint(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].pos >= h })
	if i == len(r.points) {
		i = 0
	}
	seen := make(map[string]bool, n)
	var out []string
	for range r.points {
		p := r.points[(i)%len(r.points)]
		i++
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
			if len(out) == n {
				break
			}
		}
	}
	return out
}

// OwnerAlive returns the first node clockwise of key for which alive
// returns true ("" when none is).
func (r *Ring) OwnerAlive(key string, alive func(node string) bool) string {
	for _, n := range r.Owners(key, len(r.nodes)) {
		if alive(n) {
			return n
		}
	}
	return ""
}
