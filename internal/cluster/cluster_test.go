package cluster

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dolos/internal/telemetry"
)

// TestForwardRoundTrip: a cell forwarded to a live peer returns the
// peer's bytes, carries the forwarded marker, and counts in telemetry.
func TestForwardRoundTrip(t *testing.T) {
	var gotForwarded atomic.Bool
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v2/cells" {
			http.NotFound(w, r)
			return
		}
		gotForwarded.Store(r.Header.Get(ForwardedHeader) == "1")
		fmt.Fprint(w, `{"cycles":42}`)
	}))
	defer peer.Close()

	reg := telemetry.NewRegistry()
	c, err := New(Config{SelfID: "n1", Peers: map[string]string{"n2": peer.URL}, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	b, err := c.Forward(context.Background(), "n2", []byte(`{"workloads":["Hashmap"]}`))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `{"cycles":42}` {
		t.Errorf("forwarded bytes %q", b)
	}
	if !gotForwarded.Load() {
		t.Error("forwarded request missing the forwarded marker header")
	}
	if v := reg.Counter("cluster_cells_forwarded_total").Value(); v != 1 {
		t.Errorf("forward counter = %d, want 1", v)
	}
}

// TestForwardFailureMarksDown: a dead peer fails the forward, flips its
// health (a rebalance), and ownership of its keys moves to the
// survivors until it comes back.
func TestForwardFailureMarksDown(t *testing.T) {
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	peer.Close() // dead from the start

	reg := telemetry.NewRegistry()
	c, err := New(Config{SelfID: "n1", Peers: map[string]string{"n2": peer.URL}, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Find a key n2 owns while it is presumed alive.
	var key string
	for i := 0; ; i++ {
		k := fmt.Sprintf("cell-%d", i)
		if c.OwnerOf(k) == "n2" {
			key = k
			break
		}
	}
	if _, err := c.Forward(context.Background(), "n2", []byte(`{}`)); err == nil {
		t.Fatal("forward to dead peer succeeded")
	}
	if got := c.OwnerOf(key); got != "n1" {
		t.Errorf("after mark-down, key owner = %s, want n1", got)
	}
	if v := reg.Counter("cluster_rebalances_total").Value(); v != 1 {
		t.Errorf("rebalance counter = %d, want 1", v)
	}
	if v := reg.Counter("cluster_forward_failures_total").Value(); v != 1 {
		t.Errorf("forward-failure counter = %d, want 1", v)
	}
	if g := reg.Gauge("cluster_nodes_alive").Value(); g != 1 {
		t.Errorf("nodes-alive gauge = %v, want 1", g)
	}
}

// TestHealthProbeRecovers: the probe loop marks a down peer alive again
// once its /healthz answers, and ownership moves back.
func TestHealthProbeRecovers(t *testing.T) {
	var healthy atomic.Bool
	peer := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && healthy.Load() {
			fmt.Fprintln(w, "ok")
			return
		}
		http.Error(w, "down", http.StatusServiceUnavailable)
	}))
	defer peer.Close()

	reg := telemetry.NewRegistry()
	c, err := New(Config{
		SelfID: "n1", Peers: map[string]string{"n2": peer.URL},
		ProbeInterval: 10 * time.Millisecond, Registry: reg,
	})
	if err != nil {
		t.Fatal(err)
	}
	c.Start()
	defer c.Close()

	// First probes see 503: n2 goes down.
	waitFor(t, func() bool { return reg.Gauge("cluster_nodes_alive").Value() == 1 })
	healthy.Store(true)
	waitFor(t, func() bool { return reg.Gauge("cluster_nodes_alive").Value() == 2 })
	if v := reg.Counter("cluster_rebalances_total").Value(); v != 2 {
		t.Errorf("rebalances = %d, want 2 (down then up)", v)
	}
}

// TestNilClusterIsLocal: a nil *Cluster is the single-node degenerate
// case everywhere.
func TestNilClusterIsLocal(t *testing.T) {
	var c *Cluster
	if !c.IsLocal("anything") {
		t.Error("nil cluster claims remote ownership")
	}
	if c.Self() != "" {
		t.Error("nil cluster has a self id")
	}
	info := c.Info()
	if len(info.Nodes) != 1 || !info.Nodes[0].Alive || info.Nodes[0].Share != 1 {
		t.Errorf("nil cluster info: %+v", info)
	}
	c.LocalCell() // must not panic
	c.Close()     // must not panic
}

// TestInfo: the /v2/cluster snapshot reflects membership, self and
// health.
func TestInfo(t *testing.T) {
	c, err := New(Config{SelfID: "n2", Peers: map[string]string{
		"n1": "http://h1", "n3": "http://h3",
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.setAlive("n3", false)
	info := c.Info()
	if info.Self != "n2" || len(info.Nodes) != 3 {
		t.Fatalf("info: %+v", info)
	}
	byID := map[string]NodeInfo{}
	share := 0.0
	for _, n := range info.Nodes {
		byID[n.ID] = n
		share += n.Share
	}
	if !byID["n2"].Self || byID["n2"].Addr != "" {
		t.Errorf("self row: %+v", byID["n2"])
	}
	if byID["n3"].Alive || !byID["n1"].Alive {
		t.Errorf("health rows: %+v", info.Nodes)
	}
	if byID["n1"].Addr != "http://h1" {
		t.Errorf("addr row: %+v", byID["n1"])
	}
	if share < 0.999 || share > 1.001 {
		t.Errorf("keyspace shares sum to %v", share)
	}
}

// TestSelfInPeersRejected: configuration errors surface at New.
func TestSelfInPeersRejected(t *testing.T) {
	if _, err := New(Config{SelfID: "n1", Peers: map[string]string{"n1": "http://x"}}); err == nil {
		t.Fatal("self in peer set accepted")
	}
	if _, err := New(Config{}); err == nil {
		t.Fatal("empty SelfID accepted")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached in 5s")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
