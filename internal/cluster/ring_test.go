package cluster

import (
	"fmt"
	"math"
	"testing"
)

// TestRingDeterministic: every member that knows the same node set
// computes the identical ring — ownership needs no coordination.
func TestRingDeterministic(t *testing.T) {
	a := newRing([]string{"n1", "n2", "n3"})
	b := newRing([]string{"n3", "n1", "n2"}) // order must not matter
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("key-%d", i)
		if a.Owner(key) != b.Owner(key) {
			t.Fatalf("key %q: rings disagree (%s vs %s)", key, a.Owner(key), b.Owner(key))
		}
	}
}

// TestRingDistribution: with vnodes, a 3-node ring spreads 10k keys
// roughly evenly — no node below 20% or above 50%.
func TestRingDistribution(t *testing.T) {
	r := newRing([]string{"n1", "n2", "n3"})
	counts := map[string]int{}
	const keys = 10000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("cell-%d", i))]++
	}
	for _, n := range r.Nodes() {
		frac := float64(counts[n]) / keys
		if frac < 0.20 || frac > 0.50 {
			t.Errorf("node %s owns %.1f%% of keys — too skewed: %v", n, 100*frac, counts)
		}
	}
}

// TestRingMinimalMovement: removing one node of three must reassign
// only that node's keys; every key owned by a surviving node stays put.
// That is the property that makes membership-change rebalancing cheap.
func TestRingMinimalMovement(t *testing.T) {
	full := newRing([]string{"n1", "n2", "n3"})
	const keys = 2000
	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("cell-%d", i)
		before := full.Owner(key)
		after := full.OwnerAlive(key, func(n string) bool { return n != "n2" })
		if before != "n2" {
			if after != before {
				t.Fatalf("key %q moved %s -> %s though its owner survived", key, before, after)
			}
		} else {
			moved++
			if after == "n2" || after == "" {
				t.Fatalf("key %q still assigned to dead node", key)
			}
		}
	}
	if moved == 0 {
		t.Fatal("test vacuous: no key owned by n2")
	}
}

// TestOwnersFallbackOrder: Owners returns distinct nodes, owner first.
func TestOwnersFallbackOrder(t *testing.T) {
	r := newRing([]string{"n1", "n2", "n3"})
	owners := r.Owners("some-key", 3)
	if len(owners) != 3 {
		t.Fatalf("Owners returned %d nodes, want 3", len(owners))
	}
	seen := map[string]bool{}
	for _, o := range owners {
		if seen[o] {
			t.Fatalf("duplicate node %s in fallback order %v", o, owners)
		}
		seen[o] = true
	}
	if owners[0] != r.Owner("some-key") {
		t.Errorf("Owners[0] = %s, Owner = %s", owners[0], r.Owner("some-key"))
	}
}

// TestShares: keyspace shares sum to ~1 and track the empirical key
// distribution.
func TestShares(t *testing.T) {
	r := newRing([]string{"n1", "n2", "n3"})
	shares := r.shares()
	sum := 0.0
	for _, s := range shares {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}
	counts := map[string]int{}
	const keys = 20000
	for i := 0; i < keys; i++ {
		counts[r.Owner(fmt.Sprintf("k%d", i))]++
	}
	for n, s := range shares {
		emp := float64(counts[n]) / keys
		if math.Abs(emp-s) > 0.05 {
			t.Errorf("node %s: share %.3f vs empirical %.3f", n, s, emp)
		}
	}
}

// TestEmptyAndSingleRing: edge cases answer sanely.
func TestEmptyAndSingleRing(t *testing.T) {
	empty := newRing(nil)
	if got := empty.Owner("k"); got != "" {
		t.Errorf("empty ring owner %q, want \"\"", got)
	}
	one := newRing([]string{"solo"})
	if got := one.Owner("k"); got != "solo" {
		t.Errorf("single ring owner %q, want solo", got)
	}
	if got := one.OwnerAlive("k", func(string) bool { return false }); got != "" {
		t.Errorf("all-dead ring owner %q, want \"\"", got)
	}
}
