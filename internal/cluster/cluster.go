package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"dolos/internal/telemetry"
)

// ForwardedHeader marks a cell request that already crossed the wire
// once: the receiving node executes it locally no matter what its own
// ring says, so a transient membership disagreement can never bounce a
// cell between nodes forever.
const ForwardedHeader = "X-Dolos-Forwarded"

// Config describes this node's place in the cluster.
type Config struct {
	// SelfID is this node's ring identity (e.g. "n1"). Required.
	SelfID string
	// Peers maps every *other* node's ID to its base URL
	// ("http://host:port"). Empty means a single-node cluster.
	Peers map[string]string
	// ProbeInterval is the health-probe period (default 500ms).
	ProbeInterval time.Duration
	// ForwardTimeout bounds one forwarded cell execution (default 2m —
	// a cell is a full simulation, not a quick RPC).
	ForwardTimeout time.Duration
	// CellPath is the peer endpoint cells are forwarded to (default
	// "/v2/cells").
	CellPath string
	// Registry receives the cluster's metrics (nil = private registry).
	Registry *telemetry.Registry
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.ForwardTimeout <= 0 {
		c.ForwardTimeout = 2 * time.Minute
	}
	if c.CellPath == "" {
		c.CellPath = "/v2/cells"
	}
	if c.Registry == nil {
		c.Registry = telemetry.NewRegistry()
	}
	return c
}

// NodeInfo is one node's row in the /v2/cluster view.
type NodeInfo struct {
	ID    string  `json:"id"`
	Addr  string  `json:"addr,omitempty"`
	Self  bool    `json:"self,omitempty"`
	Alive bool    `json:"alive"`
	Share float64 `json:"keyspace_share"`
}

// Info is the cluster view served by GET /v2/cluster.
type Info struct {
	Self        string     `json:"self"`
	RingVersion uint64     `json:"ring_version"`
	Nodes       []NodeInfo `json:"nodes"`
}

// Cluster is this node's view of the ring: static membership (the peer
// set is configuration), live health, and the forwarding client. A nil
// *Cluster is a valid single-node cluster — every ownership query says
// "local".
type Cluster struct {
	cfg  Config
	self string
	ring *Ring

	mu      sync.Mutex
	addrs   map[string]string // peer id -> base URL
	alive   map[string]bool
	version uint64

	hc   *http.Client
	stop chan struct{}
	wg   sync.WaitGroup

	mForwards, mForwardFails, mLocalCells *telemetry.Counter
	mRebalances, mProbes                  *telemetry.Counter
	gAlive, gVersion                      *telemetry.Gauge
}

// New builds the cluster view. Call Start to begin health probing and
// Close to stop it.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	if cfg.SelfID == "" {
		return nil, fmt.Errorf("cluster: SelfID is required")
	}
	if _, dup := cfg.Peers[cfg.SelfID]; dup {
		return nil, fmt.Errorf("cluster: Peers must not contain SelfID %q", cfg.SelfID)
	}
	nodes := []string{cfg.SelfID}
	addrs := make(map[string]string, len(cfg.Peers))
	alive := map[string]bool{cfg.SelfID: true}
	for id, addr := range cfg.Peers {
		nodes = append(nodes, id)
		addrs[id] = addr
		alive[id] = true // optimistic until the first probe says otherwise
	}
	reg := cfg.Registry
	c := &Cluster{
		cfg:   cfg,
		self:  cfg.SelfID,
		ring:  newRing(nodes),
		addrs: addrs,
		alive: alive,
		hc:    &http.Client{Timeout: cfg.ForwardTimeout},
		stop:  make(chan struct{}),

		mForwards:     reg.Counter("cluster_cells_forwarded_total"),
		mForwardFails: reg.Counter("cluster_forward_failures_total"),
		mLocalCells:   reg.Counter("cluster_cells_local_total"),
		mRebalances:   reg.Counter("cluster_rebalances_total"),
		mProbes:       reg.Counter("cluster_health_probes_total"),
		gAlive:        reg.Gauge("cluster_nodes_alive"),
		gVersion:      reg.Gauge("cluster_ring_version"),
	}
	c.gAlive.Set(float64(len(nodes)))
	c.version = 1
	c.gVersion.Set(1)
	return c, nil
}

// Start launches the background health-probe loop (no-op for a cluster
// with no peers).
func (c *Cluster) Start() {
	if c == nil || len(c.addrs) == 0 {
		return
	}
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTicker(c.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-c.stop:
				return
			case <-t.C:
				c.probeAll()
			}
		}
	}()
}

// Close stops the probe loop.
func (c *Cluster) Close() {
	if c == nil {
		return
	}
	close(c.stop)
	c.wg.Wait()
}

// Self returns this node's ID ("" for a nil single-node cluster).
func (c *Cluster) Self() string {
	if c == nil {
		return ""
	}
	return c.self
}

// OwnerOf returns the live owner of a cell key. A nil cluster, an
// empty peer set, or a ring with no live node all answer self: work is
// never dropped for want of a peer.
func (c *Cluster) OwnerOf(key string) string {
	if c == nil {
		return ""
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	owner := c.ring.OwnerAlive(key, func(n string) bool { return c.alive[n] })
	if owner == "" {
		return c.self
	}
	return owner
}

// IsLocal reports whether this node owns the key (always true for a
// nil cluster).
func (c *Cluster) IsLocal(key string) bool {
	if c == nil {
		return true
	}
	return c.OwnerOf(key) == c.self
}

// Forward executes one cell on its owner: POST the normalized
// single-cell request to the owner's cell endpoint and return the
// RunRecord bytes. A transport failure or 5xx marks the owner down
// (triggering a rebalance) and returns the error — the caller falls
// back to local execution.
func (c *Cluster) Forward(ctx context.Context, owner string, body []byte) ([]byte, error) {
	c.mu.Lock()
	addr, ok := c.addrs[owner]
	c.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("cluster: unknown node %q", owner)
	}
	c.mForwards.Inc()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, addr+c.cfg.CellPath, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, "1")
	resp, err := c.hc.Do(req)
	if err != nil {
		c.mForwardFails.Inc()
		c.markDown(owner)
		return nil, fmt.Errorf("cluster: forward to %s: %w", owner, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		c.mForwardFails.Inc()
		c.markDown(owner)
		return nil, fmt.Errorf("cluster: forward to %s: %w", owner, err)
	}
	if resp.StatusCode != http.StatusOK {
		c.mForwardFails.Inc()
		if resp.StatusCode >= 500 || resp.StatusCode == http.StatusServiceUnavailable {
			c.markDown(owner)
		}
		return nil, fmt.Errorf("cluster: forward to %s: HTTP %d: %s", owner, resp.StatusCode, bytes.TrimSpace(b))
	}
	return b, nil
}

// LocalCell counts one cell executed on this node (owned or fallback).
func (c *Cluster) LocalCell() {
	if c != nil {
		c.mLocalCells.Inc()
	}
}

// probeAll checks every peer's /healthz once.
func (c *Cluster) probeAll() {
	c.mu.Lock()
	peers := make(map[string]string, len(c.addrs))
	for id, addr := range c.addrs {
		peers[id] = addr
	}
	c.mu.Unlock()
	hc := &http.Client{Timeout: c.cfg.ProbeInterval}
	for id, addr := range peers {
		c.mProbes.Inc()
		resp, err := hc.Get(addr + "/healthz")
		up := err == nil && resp.StatusCode == http.StatusOK
		if resp != nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		if up {
			c.markAlive(id)
		} else {
			c.markDown(id)
		}
	}
}

// markDown / markAlive flip a node's health; a transition is a
// rebalance: the effective ownership of every key the node held moves
// to its ring successors (or back).
func (c *Cluster) markDown(node string)  { c.setAlive(node, false) }
func (c *Cluster) markAlive(node string) { c.setAlive(node, true) }

func (c *Cluster) setAlive(node string, up bool) {
	if node == c.self {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.alive[node] == up {
		return
	}
	c.alive[node] = up
	c.version++
	c.mRebalances.Inc()
	c.gVersion.Set(float64(c.version))
	n := 0
	for _, a := range c.alive {
		if a {
			n++
		}
	}
	c.gAlive.Set(float64(n))
}

// Info snapshots the cluster for GET /v2/cluster.
func (c *Cluster) Info() Info {
	if c == nil {
		return Info{Nodes: []NodeInfo{{Alive: true, Self: true, Share: 1}}}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	shares := c.ring.shares()
	info := Info{Self: c.self, RingVersion: c.version}
	for _, id := range c.ring.Nodes() {
		info.Nodes = append(info.Nodes, NodeInfo{
			ID:    id,
			Addr:  c.addrs[id],
			Self:  id == c.self,
			Alive: c.alive[id],
			Share: shares[id],
		})
	}
	return info
}

// shares computes each node's fraction of the keyspace (arc lengths of
// its virtual nodes).
func (r *Ring) shares() map[string]float64 {
	out := make(map[string]float64, len(r.nodes))
	if len(r.points) == 0 {
		return out
	}
	if len(r.nodes) == 1 {
		out[r.nodes[0]] = 1
		return out
	}
	sorted := r.points // already sorted by pos
	var prev uint64
	for i, p := range sorted {
		var arc uint64
		if i == 0 {
			// The arc from the last point wrapping around to the first.
			arc = p.pos + (^sorted[len(sorted)-1].pos + 1)
		} else {
			arc = p.pos - prev
		}
		out[p.node] += float64(arc) / float64(^uint64(0))
		prev = p.pos
	}
	return out
}
