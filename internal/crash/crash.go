// Package crash orchestrates full-system power-failure experiments: run a
// workload partway, cut power at an arbitrary cycle, drain the WPQ on the
// ADR reserve, recover at boot, and audit the result — every write the
// platform accepted into the persistence domain must read back with
// verified integrity, and the application's undo log must resolve any
// interrupted transaction.
package crash

import (
	"fmt"

	"dolos/internal/controller"
	"dolos/internal/cpu"
	"dolos/internal/masu"
	"dolos/internal/pmem"
	"dolos/internal/sim"
	"dolos/internal/trace"
)

// Outcome reports a crash-recovery experiment.
type Outcome struct {
	// CrashCycle is when power was cut.
	CrashCycle sim.Cycle
	// AcceptedWrites is how many persist acceptances preceded the crash.
	AcceptedWrites int
	// AcceptedLines is how many distinct lines those covered.
	AcceptedLines int
	// Crash and Recover are the controller reports.
	Crash   controller.CrashReport
	Recover controller.RecoverReport
	// LinesAudited is how many lines were read back and compared.
	LinesAudited int
	// TxRolledBack reports whether the application undo log had an
	// interrupted transaction to roll back.
	TxRolledBack bool
}

// RecoveryCycleEstimate converts the drain accounting into the paper's
// Section 5.5 recovery-time model: every drained slot record and MAC
// block is read back at 600 cycles, pads are regenerated twice at 40
// cycles per entry, and each live entry drains through the Ma-SU at
// 2100 cycles (NVM write + security work).
func (o Outcome) RecoveryCycleEstimate() uint64 {
	const (
		readPer  = 600
		padPer   = 40
		drainPer = 2100
	)
	blocks := uint64(o.Crash.Drain.EntriesWritten + o.Crash.Drain.MACBlocksWritten)
	entries := uint64(o.Crash.Drain.EntriesWritten)
	live := uint64(o.Crash.LiveEntries)
	return blocks*readPer + entries*padPer*2 + live*drainPer
}

// Driver runs crash experiments over one system configuration.
type Driver struct {
	sys      *cpu.System
	accepted map[uint64][64]byte
	order    []uint64
	count    int
}

// NewDriver builds a system for cfg with acceptance tracking installed.
// Crash experiments exist to prove that real MACs and real ECC survive
// power loss, so a latency-only or pipelined configuration is a caller
// bug, not a degraded mode: the constructor refuses both with a typed
// error (masu.ErrFastMode / controller.ErrParallelDES) rather than
// silently normalizing the config, mirroring the controller's own
// Crash/Recover guards.
func NewDriver(cfg controller.Config) (*Driver, error) {
	if cfg.FastMode {
		return nil, fmt.Errorf("crash: driver requires functional crypto: %w", masu.ErrFastMode)
	}
	if cfg.ParallelDES {
		return nil, fmt.Errorf("crash: driver requires a serial functional system: %w", controller.ErrParallelDES)
	}
	d := &Driver{
		sys:      cpu.NewSystem(cfg),
		accepted: make(map[uint64][64]byte),
	}
	d.sys.OnAccepted = func(addr uint64, data [64]byte) {
		if _, seen := d.accepted[addr]; !seen {
			d.order = append(d.order, addr)
		}
		d.accepted[addr] = data
		d.count++
	}
	return d, nil
}

// System exposes the underlying simulated machine.
func (d *Driver) System() *cpu.System { return d.sys }

// RunAndCrash executes the trace until crashCycle, cuts power, recovers
// with the given mode, and audits persistence. It returns an error on
// any integrity or durability violation.
func (d *Driver) RunAndCrash(tr *trace.Trace, crashCycle sim.Cycle, mode controller.RecoveryMode) (Outcome, error) {
	d.sys.Start(tr)
	d.sys.Eng.RunUntil(crashCycle)

	var out Outcome
	out.CrashCycle = d.sys.Eng.Now()
	out.AcceptedWrites = d.count
	out.AcceptedLines = len(d.accepted)

	crashRep, err := d.sys.Ctrl.Crash()
	if err != nil {
		return out, fmt.Errorf("crash drain: %w", err)
	}
	out.Crash = crashRep

	recRep, err := d.sys.Ctrl.Recover(mode)
	if err != nil {
		return out, fmt.Errorf("recovery: %w", err)
	}
	out.Recover = recRep

	if err := d.auditDurability(&out); err != nil {
		return out, err
	}
	return out, nil
}

// auditDurability checks that every accepted line reads back — through
// full decryption and integrity verification — as either its last
// accepted value or a newer application value (a volatile-cache eviction
// may legitimately have pushed a fresher version out).
func (d *Driver) auditDurability(out *Outcome) error {
	ma := d.sys.Ctrl.MaSU()
	for _, addr := range d.order {
		want := d.accepted[addr]
		got, _, err := ma.ReadLine(addr)
		if err != nil {
			return fmt.Errorf("audit read %#x: %w", addr, err)
		}
		if got != want {
			if newer, ok := d.sys.Mirror(addr); ok && got == newer {
				out.LinesAudited++
				continue
			}
			return fmt.Errorf("audit: line %#x lost its accepted value after recovery", addr)
		}
		out.LinesAudited++
	}
	return nil
}

// ResolveLog applies the application-level undo log after recovery: an
// interrupted (active) transaction is rolled back by writing the logged
// old images back through the Ma-SU. It returns whether a rollback
// happened. logBase and capacity describe the workload's TxHeap log.
func (d *Driver) ResolveLog(logBase uint64, capacity int) (bool, error) {
	ma := d.sys.Ctrl.MaSU()
	readLine := func(addr uint64) [64]byte {
		got, _, err := ma.ReadLine(addr)
		if err != nil {
			panic(fmt.Sprintf("crash: log read %#x failed: %v", addr, err))
		}
		return got
	}
	status, entries := pmem.ParseLog(logBase, capacity, readLine)
	restores := pmem.Rollback(status, entries)
	if restores == nil {
		return false, nil
	}
	for _, r := range restores {
		ma.ProcessWrite(r.Addr, r.Old, -1)
	}
	// Mark the log resolved.
	var idle [64]byte
	ma.ProcessWrite(logBase, idle, -1)
	return true, nil
}
