package crash

import (
	"fmt"

	"dolos/internal/controller"
	"dolos/internal/masu"
	"dolos/internal/mcore"
	"dolos/internal/sim"
)

// MultiOutcome reports a multi-core crash-recovery experiment. The
// drain accounting is inherently shared: all cores contend for one WPQ
// and one Mi-SU, so the ADR budget audited at crash time covers every
// core's in-flight entries and deferred MACs summed together.
type MultiOutcome struct {
	// CrashCycle is when power was cut.
	CrashCycle sim.Cycle
	// AcceptedWrites / AcceptedLines are summed over cores.
	AcceptedWrites int
	AcceptedLines  int
	// PerCoreAccepted is each core's persist-acceptance count at the
	// crash point (index = core id).
	PerCoreAccepted []int
	// Crash and Recover are the shared controller's reports.
	Crash   controller.CrashReport
	Recover controller.RecoverReport
	// LinesAudited is how many lines were read back and compared,
	// across all cores.
	LinesAudited int
}

// MultiDriver runs crash experiments over a multi-core system: N
// workload instances mid-flight on one shared controller, power cut at
// an arbitrary cycle, and every core's visible state audited after
// recovery.
type MultiDriver struct {
	sys      *mcore.System
	accepted []map[uint64][64]byte
	order    [][]uint64
	counts   []int
}

// NewMultiDriver builds a multi-core system for cfg and cores with
// per-core acceptance tracking installed. Like NewDriver it refuses
// latency-only or pipelined controller configs with a typed error —
// and ParallelDES is doubly outside the matrix here, since the shared
// controller serves every core from one timing stage.
func NewMultiDriver(cfg mcore.Config, cores []mcore.CoreSpec) (*MultiDriver, error) {
	if cfg.Ctrl.FastMode {
		return nil, fmt.Errorf("crash: multi-core driver requires functional crypto: %w", masu.ErrFastMode)
	}
	if cfg.Ctrl.ParallelDES {
		return nil, fmt.Errorf("crash: multi-core driver requires a serial functional system: %w", controller.ErrParallelDES)
	}
	d := &MultiDriver{
		sys:      mcore.NewSystem(cfg, cores),
		accepted: make([]map[uint64][64]byte, len(cores)),
		order:    make([][]uint64, len(cores)),
		counts:   make([]int, len(cores)),
	}
	for i, c := range d.sys.Cores {
		i := i
		d.accepted[i] = make(map[uint64][64]byte)
		c.OnAccepted = func(addr uint64, data [64]byte) {
			if _, seen := d.accepted[i][addr]; !seen {
				d.order[i] = append(d.order[i], addr)
			}
			d.accepted[i][addr] = data
			d.counts[i]++
		}
	}
	return d, nil
}

// System exposes the underlying multi-core machine.
func (d *MultiDriver) System() *mcore.System { return d.sys }

// RunAndCrash executes all cores until crashCycle, cuts power, recovers
// with the given mode, and audits every core's accepted writes. It
// returns an error on any ADR-budget, integrity or durability
// violation.
func (d *MultiDriver) RunAndCrash(crashCycle sim.Cycle, mode controller.RecoveryMode) (MultiOutcome, error) {
	d.sys.Start()
	d.sys.Eng.RunUntil(crashCycle)

	var out MultiOutcome
	out.CrashCycle = d.sys.Eng.Now()
	out.PerCoreAccepted = append([]int(nil), d.counts...)
	for i := range d.accepted {
		out.AcceptedWrites += d.counts[i]
		out.AcceptedLines += len(d.accepted[i])
	}

	crashRep, err := d.sys.Ctrl.Crash()
	if err != nil {
		return out, fmt.Errorf("crash drain: %w", err)
	}
	out.Crash = crashRep

	recRep, err := d.sys.Ctrl.Recover(mode)
	if err != nil {
		return out, fmt.Errorf("recovery: %w", err)
	}
	out.Recover = recRep

	if err := d.auditDurability(&out); err != nil {
		return out, err
	}
	return out, nil
}

// auditDurability checks, core by core, that every line a core's
// persists were accepted for reads back — through full decryption and
// integrity verification — as either the last accepted value or a
// newer value from that core's own mirror (per-core heaps are
// disjoint, so "newer" is always same-core).
func (d *MultiDriver) auditDurability(out *MultiOutcome) error {
	ma := d.sys.Ctrl.MaSU()
	for i, c := range d.sys.Cores {
		for _, addr := range d.order[i] {
			want := d.accepted[i][addr]
			got, _, err := ma.ReadLine(addr)
			if err != nil {
				return fmt.Errorf("core %d: audit read %#x: %w", i, addr, err)
			}
			if got != want {
				if newer, ok := c.Mirror(addr); ok && got == newer {
					out.LinesAudited++
					continue
				}
				return fmt.Errorf("core %d: line %#x lost its accepted value after recovery", i, addr)
			}
			out.LinesAudited++
		}
	}
	return nil
}
