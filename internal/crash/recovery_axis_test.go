package crash

// Recovery-axis coverage for the related-work schemes: crash each one
// mid-flush and mid-tree-update at pinned seeds, require the recovered
// visible state to match the scheme's reference (the driver's
// durability audit), and pin the recovery_cycles axis — deterministic,
// and ordered the way the papers predict (less tree persistence = faster
// runtime, slower recovery).

import (
	"testing"

	"dolos/internal/controller"
	"dolos/internal/cpu"
	"dolos/internal/scheme"
	"dolos/internal/sim"
	"dolos/internal/whisper"
)

// relatedSchemes are the registry entries added for the related-work
// comparison (everything past the original six).
func relatedSchemes() []controller.Scheme {
	var out []controller.Scheme
	for _, e := range scheme.All() {
		if e.Pipeline.ReportsRecovery {
			out = append(out, e.ID)
		}
	}
	return out
}

func TestRelatedSchemesCrashRecovery(t *testing.T) {
	tr := whisper.Hashmap{}.Generate(whisper.Params{
		Transactions: 30, Warmup: 20, TxSize: 512, Seed: 11, HeapSize: 16 << 20,
	})
	// 25k cycles lands mid-flush (live WPQ entries, writes in flight);
	// 100k lands with a large dirty metadata footprint mid-tree-update.
	points := []sim.Cycle{25_000, 100_000}
	for _, s := range relatedSchemes() {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			for _, at := range points {
				d := mustDriver(t, testConfig(s))
				out, err := d.RunAndCrash(tr, at, controller.AnubisRecovery)
				if err != nil {
					t.Fatalf("crash at %d: %v (outcome %+v)", at, err, out)
				}
				if out.AcceptedWrites > 0 && out.LinesAudited == 0 {
					t.Fatalf("crash at %d: nothing audited", at)
				}
				if out.AcceptedWrites > 0 && out.Recover.RecoveryCycles == 0 {
					t.Fatalf("crash at %d: recovery axis not reported", at)
				}

				// Determinism: an identical run reports identical
				// recovery cycles. Reconstruction schemes must also be
				// mode-independent, so ask for the other recovery mode.
				mode2 := controller.AnubisRecovery
				if scheme.PipelineOf(s).Recovery == scheme.RecoverReconstruct {
					mode2 = controller.OsirisRecovery
				}
				d2 := mustDriver(t, testConfig(s))
				out2, err := d2.RunAndCrash(tr, at, mode2)
				if err != nil {
					t.Fatalf("repeat crash at %d: %v", at, err)
				}
				if out2.Recover.RecoveryCycles != out.Recover.RecoveryCycles {
					t.Fatalf("crash at %d: recovery_cycles %d != %d on identical rerun",
						at, out2.Recover.RecoveryCycles, out.Recover.RecoveryCycles)
				}
			}
		})
	}
}

// TestRecoveryRuntimeTradeoffOrdering pins the Triad-NVM paper's central
// claim on the modeled axes: persisting fewer tree levels runs faster
// but recovers slower. SuperMem (N = 0) is the extreme point; full tree
// persistence (N >= height) recovers in O(1) but pays the longest
// critical path.
func TestRecoveryRuntimeTradeoffOrdering(t *testing.T) {
	tr := whisper.Hashmap{}.Generate(whisper.Params{
		Transactions: 40, Warmup: 20, TxSize: 512, Seed: 7, HeapSize: 16 << 20,
	})
	run := func(s controller.Scheme, triadLevels int) (runtime uint64, recovery uint64) {
		cfg := testConfig(s)
		cfg.TriadLevels = triadLevels
		sys := cpu.NewSystem(cfg)
		res := sys.Run(tr)
		return uint64(res.Cycles), res.RecoveryCycles
	}

	triadRun, triadRec := run(controller.TriadNVM, 0) // scheme default N=1
	fullRun, fullRec := run(controller.TriadNVM, 64)  // clamped to tree height: full persistence
	superRun, superRec := run(controller.SuperMem, 0) // N=0 extreme
	if triadRec == 0 || fullRec == 0 || superRec == 0 {
		t.Fatalf("recovery axis missing: triad=%d full=%d supermem=%d", triadRec, fullRec, superRec)
	}

	// Runtime: less persistence is faster.
	if !(superRun < triadRun && triadRun < fullRun) {
		t.Fatalf("runtime ordering violated: supermem=%d triad(N=1)=%d full=%d",
			superRun, triadRun, fullRun)
	}
	// Recovery: less persistence is slower to boot.
	if !(superRec > triadRec && triadRec > fullRec) {
		t.Fatalf("recovery ordering violated: supermem=%d triad(N=1)=%d full=%d",
			superRec, triadRec, fullRec)
	}

	// Determinism of the estimate across identical runs.
	triadRun2, triadRec2 := run(controller.TriadNVM, 0)
	if triadRun2 != triadRun || triadRec2 != triadRec {
		t.Fatalf("estimate not deterministic: (%d,%d) vs (%d,%d)",
			triadRun, triadRec, triadRun2, triadRec2)
	}
}

// TestSchemeSmokeRegistry is the scheme-smoke gate (make scheme-smoke):
// one short run, a mid-run crash, recovery and the durability audit for
// every crash-capable scheme in the registry — a new registry entry is
// covered the moment it is added.
func TestSchemeSmokeRegistry(t *testing.T) {
	tr := whisper.Hashmap{}.Generate(whisper.Params{
		Transactions: 20, Warmup: 10, TxSize: 512, Seed: 5, HeapSize: 16 << 20,
	})
	for _, e := range scheme.All() {
		if !e.Caps.CrashSafe {
			continue
		}
		e := e
		t.Run(e.Name, func(t *testing.T) {
			d := mustDriver(t, testConfig(e.ID))
			out, err := d.RunAndCrash(tr, 60_000, controller.AnubisRecovery)
			if err != nil {
				t.Fatalf("%s: %v (outcome %+v)", e.Name, err, out)
			}
			if out.AcceptedWrites > 0 && out.LinesAudited == 0 {
				t.Fatalf("%s: nothing audited", e.Name)
			}
			if e.Pipeline.ReportsRecovery && out.AcceptedWrites > 0 && out.Recover.RecoveryCycles == 0 {
				t.Fatalf("%s: recovery axis not reported", e.Name)
			}
		})
	}
}
