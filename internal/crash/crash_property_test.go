package crash

import (
	"math/rand"
	"testing"

	"dolos/internal/controller"
	"dolos/internal/masu"
	"dolos/internal/sim"
	"dolos/internal/trace"
	"dolos/internal/whisper"
)

// TestRandomCrashPointsProperty is the model's crash-consistency sweep:
// crash at many pseudo-random cycles across schemes, tree kinds and
// recovery modes; every accepted write must survive with verified
// integrity at every single point.
func TestRandomCrashPointsProperty(t *testing.T) {
	traces := map[string]*trace.Trace{}
	for _, name := range []string{"Hashmap", "RBtree"} {
		w, err := whisper.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		traces[name] = w.Generate(whisper.Params{
			Transactions: 25, Warmup: 15, TxSize: 512, Seed: 5, HeapSize: 16 << 20,
		})
	}

	rng := rand.New(rand.NewSource(2024))
	schemes := []controller.Scheme{
		controller.PreWPQSecure, controller.DolosFull,
		controller.DolosPartial, controller.DolosPost,
	}
	cases := 0
	for name, tr := range traces {
		for _, s := range schemes {
			for trial := 0; trial < 4; trial++ {
				at := sim.Cycle(rng.Intn(700_000) + 100)
				mode := controller.AnubisRecovery
				if trial%2 == 1 && s != controller.PreWPQSecure {
					mode = controller.OsirisRecovery
				}
				cfg := testConfig(s)
				d := mustDriver(t, cfg)
				if _, err := d.RunAndCrash(tr, at, mode); err != nil {
					t.Fatalf("%s/%s crash@%d mode=%d: %v", name, s, at, mode, err)
				}
				cases++
			}
		}
	}
	if cases != 32 {
		t.Fatalf("ran %d cases", cases)
	}
}

// TestDoubleCrash exercises crash-during-recovery-adjacent state: crash,
// recover, resume nothing, crash again immediately — the second recovery
// must also be clean (recovery idempotence at the system level).
func TestDoubleCrash(t *testing.T) {
	tr := whisper.Ctree{}.Generate(whisper.Params{
		Transactions: 20, Warmup: 10, TxSize: 512, Seed: 9, HeapSize: 16 << 20,
	})
	d := mustDriver(t, testConfig(controller.DolosPartial))
	if _, err := d.RunAndCrash(tr, 60_000, controller.AnubisRecovery); err != nil {
		t.Fatalf("first crash: %v", err)
	}
	ctrl := d.System().Ctrl
	if _, err := ctrl.Crash(); err != nil {
		t.Fatalf("second crash: %v", err)
	}
	if _, err := ctrl.Recover(controller.AnubisRecovery); err != nil {
		t.Fatalf("second recovery: %v", err)
	}
	// Audit still holds after the double cycle.
	var out Outcome
	if err := d.auditDurability(&out); err != nil {
		t.Fatalf("post-double-crash audit: %v", err)
	}
}

// TestCrashUnderLazyToC covers the ToC/Phoenix backend across crash
// points (Figure 16's configuration).
func TestCrashUnderLazyToC(t *testing.T) {
	tr := whisper.Redis{}.Generate(whisper.Params{
		Transactions: 20, Warmup: 10, TxSize: 512, Seed: 3, HeapSize: 16 << 20,
	})
	for _, at := range []sim.Cycle{5_000, 50_000, 250_000} {
		cfg := testConfig(controller.DolosPartial)
		cfg.Tree = masu.ToCLazy
		d := mustDriver(t, cfg)
		if _, err := d.RunAndCrash(tr, at, controller.AnubisRecovery); err != nil {
			t.Fatalf("ToC crash at %d: %v", at, err)
		}
	}
}
