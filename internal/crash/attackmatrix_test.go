package crash

// Crash x attack matrix: after every scheme's mid-run power failure, an
// adversary tampers with a different NVM region; recovery (or the
// post-recovery scrub) must reject every variant.

import (
	"testing"

	"dolos/internal/attack"
	"dolos/internal/controller"
	"dolos/internal/layout"
	"dolos/internal/sim"
	"dolos/internal/whisper"
)

func TestCrashThenAttackMatrix(t *testing.T) {
	tr := whisper.Hashmap{}.Generate(whisper.Params{
		Transactions: 25, Warmup: 15, TxSize: 512, Seed: 31, HeapSize: 16 << 20,
	})
	lay := layout.Small()
	kinds := []struct {
		name   string
		tamper func(adv *attack.Adversary)
	}{
		{"data-spoof", func(a *attack.Adversary) { a.Spoof(0x1000, 64) }},
		{"data-bitflip", func(a *attack.Adversary) { a.FlipBit(0x1040, 2) }},
		{"data-relocate", func(a *attack.Adversary) { a.Relocate(0x1000, 0x1040) }},
		{"mac-region", func(a *attack.Adversary) { a.FlipBit(lay.LineMACAddr(0x1000), 1) }},
		{"counter-region", func(a *attack.Adversary) { a.FlipBit(lay.CounterBase+64+3, 4) }},
	}

	// Two Dolos designs plus every related-work scheme: the adversary
	// must be rejected (or neutralized) regardless of pipeline.
	schemes := append([]controller.Scheme{controller.DolosPartial, controller.PreWPQSecure},
		relatedSchemes()...)
	for _, scheme := range schemes {
		for _, k := range kinds {
			scheme, k := scheme, k
			t.Run(scheme.String()+"/"+k.name, func(t *testing.T) {
				d := mustDriver(t, testConfig(scheme))
				sys := d.System()
				sys.Start(tr)
				sys.Eng.RunUntil(sim.Cycle(120_000))
				if _, err := sys.Ctrl.Crash(); err != nil {
					t.Fatal(err)
				}
				k.tamper(attack.New(sys.Dev, 5))
				_, recErr := sys.Ctrl.Recover(controller.AnubisRecovery)
				if recErr != nil {
					return // detected at recovery: pass
				}
				// Recovery may instead NEUTRALIZE the tamper: a counter
				// block that was dirty at the crash is restored from the
				// shadow region and re-persisted over the attacker's
				// bytes. Then the attack must have achieved nothing:
				// the scrub passes AND every accepted write still reads
				// back with its correct value.
				if _, err := sys.Ctrl.MaSU().Audit(); err != nil {
					return // detected at scrub: pass
				}
				var out Outcome
				if err := d.auditDurability(&out); err != nil {
					t.Fatalf("tampering silently corrupted accepted data: %v", err)
				}
			})
		}
	}
}

func TestRecoveryCycleEstimate(t *testing.T) {
	d := mustDriver(t, testConfig(controller.DolosPartial))
	tr := whisper.Ctree{}.Generate(whisper.Params{
		Transactions: 20, Warmup: 10, TxSize: 512, Seed: 3, HeapSize: 16 << 20,
	})
	out, err := d.RunAndCrash(tr, 60_000, controller.AnubisRecovery)
	if err != nil {
		t.Fatal(err)
	}
	est := out.RecoveryCycleEstimate()
	// 14 slot records + 2 MAC blocks read, 14 pad pairs, live drains.
	min := uint64(14+2)*600 + 14*80
	if est < min {
		t.Fatalf("estimate %d below floor %d", est, min)
	}
	if est > 200_000 {
		t.Fatalf("estimate %d implausibly large", est)
	}
}
