package crash

import (
	"testing"

	"dolos/internal/controller"
	"dolos/internal/sim"
	"dolos/internal/whisper"
)

// TestApplicationLevelRecovery is the deepest end-to-end check: run the
// persistent Hashmap under Dolos, cut power mid-run, recover the secure
// memory, resolve the application undo log through verified reads, then
// structurally walk the recovered hashmap — every bucket chain, node and
// value pointer must be well-formed in the decrypted, integrity-checked
// image.
func TestApplicationLevelRecovery(t *testing.T) {
	params := whisper.Params{Transactions: 40, Warmup: 30, TxSize: 512, Seed: 21, HeapSize: 16 << 20}
	tr := whisper.Hashmap{}.Generate(params)

	for _, at := range []sim.Cycle{20_000, 150_000, 500_000} {
		d := mustDriver(t, testConfig(controller.DolosPartial))
		if _, err := d.RunAndCrash(tr, at, controller.AnubisRecovery); err != nil {
			t.Fatalf("crash at %d: %v", at, err)
		}
		ma := d.System().Ctrl.MaSU()
		read := func(addr uint64) ([64]byte, error) {
			line, _, err := ma.ReadLine(addr)
			return line, err
		}

		// Application recovery step 1: resolve the undo log.
		restores, err := whisper.ResolveRecoveredLog(read, whisper.LogBase(params), whisper.LogCapacity(params))
		if err != nil {
			t.Fatalf("log parse at %d: %v", at, err)
		}
		for _, r := range restores {
			ma.ProcessWrite(r.Addr, r.Old, -1)
		}

		// Step 2: structural walk of the recovered hashmap.
		p := params
		rep, err := whisper.WalkRecoveredHashmap(read,
			whisper.StructureBase(p), 4096, 16<<20)
		if err != nil {
			t.Fatalf("structure walk at %d (rolled back %d lines): %v", at, len(restores), err)
		}
		if rep.Entries == 0 && at > 100_000 {
			t.Fatalf("no entries recovered at %d", at)
		}
	}
}
