package crash

import (
	"errors"
	"testing"

	"dolos/internal/controller"
	"dolos/internal/cpu"
	"dolos/internal/masu"
	"dolos/internal/mcore"
	"dolos/internal/whisper"
)

// TestNewDriverRejectsNonFunctional: the crash driver exists to prove
// real MACs survive power loss, so a config that asks for the
// latency-only provider or the pipelined shadow stage is a caller bug —
// the constructor refuses it with the typed sentinel naming the guard
// (masu.ErrFastMode / controller.ErrParallelDES) instead of silently
// normalizing the config.
func TestNewDriverRejectsNonFunctional(t *testing.T) {
	base := controller.Config{Scheme: controller.DolosPartial, Tree: masu.BMTEager}
	copy(base.AESKey[:], "crash-aes-key-16")
	copy(base.MACKey[:], "crash-mac-key-16")

	fast := base
	fast.FastMode = true
	if _, err := NewDriver(fast); !errors.Is(err, masu.ErrFastMode) {
		t.Errorf("NewDriver(FastMode): err = %v, want ErrFastMode", err)
	}

	pdes := base
	pdes.ParallelDES = true
	if _, err := NewDriver(pdes); !errors.Is(err, controller.ErrParallelDES) {
		t.Errorf("NewDriver(ParallelDES): err = %v, want ErrParallelDES", err)
	}

	if _, err := NewMultiDriver(mcore.Config{Ctrl: pdes, Window: 2}, multiSpecs(t, 2)); !errors.Is(err, controller.ErrParallelDES) {
		t.Errorf("NewMultiDriver(ParallelDES): err = %v, want ErrParallelDES", err)
	}
	if _, err := NewMultiDriver(mcore.Config{Ctrl: fast, Window: 2}, multiSpecs(t, 2)); !errors.Is(err, masu.ErrFastMode) {
		t.Errorf("NewMultiDriver(FastMode): err = %v, want ErrFastMode", err)
	}

	// The serial functional config stays fully supported.
	d := mustDriver(t, base)
	w, err := whisper.ByName("Hashmap")
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Generate(whisper.Params{Transactions: 30, TxSize: 1024, Seed: 1})
	out, err := d.RunAndCrash(tr, 200000, controller.AnubisRecovery)
	if err != nil {
		t.Fatalf("crash experiment on functional driver: %v", err)
	}
	if out.LinesAudited == 0 {
		t.Fatal("functional crash run audited no lines")
	}
}

// TestCrashRefusedOnFastSystem: outside the driver, the controller API
// itself refuses to crash or recover a non-functional machine, with the
// typed error naming which guard tripped — masu.ErrFastMode for the
// latency-only provider, controller.ErrParallelDES for the cost-count
// pipeline — so the misuse is diagnosable.
func TestCrashRefusedOnFastSystem(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  controller.Config
		want error
	}{
		{"fast", controller.Config{Scheme: controller.DolosPartial, Tree: masu.BMTEager, FastMode: true}, masu.ErrFastMode},
		{"pdes", controller.Config{Scheme: controller.DolosPartial, Tree: masu.BMTEager, ParallelDES: true}, controller.ErrParallelDES},
	} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := mode.cfg
			copy(cfg.AESKey[:], "crash-aes-key-16")
			copy(cfg.MACKey[:], "crash-mac-key-16")
			sys := cpu.NewSystem(cfg)
			sys.Ctrl.Quiesce()
			if _, err := sys.Ctrl.Crash(); !errors.Is(err, mode.want) {
				t.Errorf("Crash on %s system: err = %v, want %v", mode.name, err, mode.want)
			}
			if _, err := sys.Ctrl.Recover(controller.AnubisRecovery); !errors.Is(err, mode.want) {
				t.Errorf("Recover on %s system: err = %v, want %v", mode.name, err, mode.want)
			}
		})
	}
}
