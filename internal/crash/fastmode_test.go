package crash

import (
	"errors"
	"testing"

	"dolos/internal/controller"
	"dolos/internal/cpu"
	"dolos/internal/masu"
	"dolos/internal/whisper"
)

// TestNewDriverStripsFastMode: the crash driver exists to prove real
// MACs survive power loss, so a config that asks for the latency-only
// provider or the pipelined shadow is silently normalized back to
// functional serial — a crash experiment must never run on faked crypto,
// and must never race a mid-flight shadow stage.
func TestNewDriverStripsFastMode(t *testing.T) {
	cfg := controller.Config{
		Scheme: controller.DolosPartial, Tree: masu.BMTEager,
		FastMode: true, ParallelDES: true,
	}
	copy(cfg.AESKey[:], "crash-aes-key-16")
	copy(cfg.MACKey[:], "crash-mac-key-16")
	d := NewDriver(cfg)
	if !d.System().Ctrl.Functional() {
		t.Fatal("NewDriver kept the latency-only provider")
	}
	if d.System().Ctrl.ShadowDevice() != nil {
		t.Fatal("NewDriver built a parallel-DES shadow stage")
	}
	w, err := whisper.ByName("Hashmap")
	if err != nil {
		t.Fatal(err)
	}
	tr := w.Generate(whisper.Params{Transactions: 30, TxSize: 1024, Seed: 1})
	out, err := d.RunAndCrash(tr, 200000, controller.AnubisRecovery)
	if err != nil {
		t.Fatalf("crash experiment on normalized driver: %v", err)
	}
	if out.LinesAudited == 0 {
		t.Fatal("normalized crash run audited no lines")
	}
}

// TestCrashRefusedOnFastSystem: outside the driver, the controller API
// itself refuses to crash or recover a fast-mode machine, with an error
// that names the guard (masu.ErrFastMode) so the misuse is diagnosable.
func TestCrashRefusedOnFastSystem(t *testing.T) {
	for _, mode := range []struct {
		name string
		cfg  controller.Config
	}{
		{"fast", controller.Config{Scheme: controller.DolosPartial, Tree: masu.BMTEager, FastMode: true}},
		{"pdes", controller.Config{Scheme: controller.DolosPartial, Tree: masu.BMTEager, ParallelDES: true}},
	} {
		t.Run(mode.name, func(t *testing.T) {
			cfg := mode.cfg
			copy(cfg.AESKey[:], "crash-aes-key-16")
			copy(cfg.MACKey[:], "crash-mac-key-16")
			sys := cpu.NewSystem(cfg)
			sys.Ctrl.Quiesce()
			if _, err := sys.Ctrl.Crash(); !errors.Is(err, masu.ErrFastMode) {
				t.Errorf("Crash on %s system: err = %v, want ErrFastMode", mode.name, err)
			}
			if _, err := sys.Ctrl.Recover(controller.AnubisRecovery); !errors.Is(err, masu.ErrFastMode) {
				t.Errorf("Recover on %s system: err = %v, want ErrFastMode", mode.name, err)
			}
		})
	}
}
