package crash

import (
	"testing"

	"dolos/internal/controller"
	"dolos/internal/mcore"
	"dolos/internal/sim"
	"dolos/internal/whisper"
	"dolos/internal/wpq"
)

// mustMultiDriver builds a multi-core driver for a supported config.
func mustMultiDriver(t *testing.T, cfg mcore.Config, cores []mcore.CoreSpec) *MultiDriver {
	t.Helper()
	d, err := NewMultiDriver(cfg, cores)
	if err != nil {
		t.Fatalf("NewMultiDriver: %v", err)
	}
	return d
}

// multiSpecs builds n workload instances with compact disjoint heaps
// inside layout.Small's 64 MB data region (the default per-core
// 256 MB stride only fits the full-size layout).
func multiSpecs(t *testing.T, n int) []mcore.CoreSpec {
	t.Helper()
	workloads := []string{"Hashmap", "Btree", "Ctree"}
	specs := make([]mcore.CoreSpec, n)
	for i := 0; i < n; i++ {
		name := workloads[i%len(workloads)]
		w, err := whisper.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		seed := mcore.CoreSeed(11, i)
		specs[i] = mcore.CoreSpec{
			Workload: name,
			Seed:     seed,
			Trace: w.Generate(whisper.Params{
				Transactions: 25, Warmup: 15, TxSize: 512, Seed: seed,
				HeapBase: 4096 + uint64(i)*(16<<20), HeapSize: 8 << 20,
			}),
		}
	}
	return specs
}

// TestMultiCoreCrashAtManyPoints cuts power mid-contention — N cores
// mid-flush against one shared controller — and demands every core's
// visible state recover: each accepted line reads back with verified
// integrity as its accepted (or same-core newer) value.
func TestMultiCoreCrashAtManyPoints(t *testing.T) {
	for _, s := range []controller.Scheme{
		controller.PreWPQSecure, controller.DolosFull,
		controller.DolosPartial, controller.DolosPost,
	} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			for _, at := range []sim.Cycle{2000, 40000, 150000, 500000} {
				d := mustMultiDriver(t,
					mcore.Config{Ctrl: testConfig(s), Window: 2}, multiSpecs(t, 3))
				out, err := d.RunAndCrash(at, controller.AnubisRecovery)
				if err != nil {
					t.Fatalf("crash at %d: %v (outcome %+v)", at, err, out)
				}
				if out.AcceptedWrites > 0 && out.LinesAudited == 0 {
					t.Fatalf("crash at %d: nothing audited", at)
				}
				sum := 0
				for _, n := range out.PerCoreAccepted {
					sum += n
				}
				if sum != out.AcceptedWrites {
					t.Fatalf("per-core accepted sum %d != total %d", sum, out.AcceptedWrites)
				}
			}
		})
	}
}

// TestMultiCoreCrashWithinADRBudget pins the multi-core drain to the
// single-platform ADR reserve: the cores share one WPQ and one Mi-SU,
// so the entries and MAC blocks flushed at the crash — summed across
// whatever every core had in flight — must fit the budget provisioned
// for the hardware WPQ alone. (controller.Crash errors on violation;
// this re-checks the arithmetic explicitly from the report.)
func TestMultiCoreCrashWithinADRBudget(t *testing.T) {
	for _, s := range []controller.Scheme{controller.DolosPartial, controller.DolosPost} {
		d := mustMultiDriver(t, mcore.Config{Ctrl: testConfig(s), Window: 2}, multiSpecs(t, 3))
		out, err := d.RunAndCrash(120000, controller.AnubisRecovery)
		if err != nil {
			t.Fatalf("%v: %v", s, err)
		}
		budget := controller.StandardADR(d.System().Ctrl.Config().HardwareWPQ)
		flushed := out.Crash.Drain.EntriesWritten*wpq.EntryDataSize +
			out.Crash.Drain.MACBlocksWritten*64
		if flushed != out.Crash.BytesFlushed {
			t.Fatalf("%v: drain accounting inconsistent: %d != %d", s, flushed, out.Crash.BytesFlushed)
		}
		if out.Crash.BytesFlushed > budget.FlushBytes {
			t.Fatalf("%v: drain flushed %d B over the %d B ADR budget",
				s, out.Crash.BytesFlushed, budget.FlushBytes)
		}
		if out.Crash.Drain.DeferredMACs > budget.MACOps {
			t.Fatalf("%v: drain used %d MAC ops, budget %d",
				s, out.Crash.Drain.DeferredMACs, budget.MACOps)
		}
	}
}

// TestMultiCoreCrashAfterCompletionIsClean runs all cores to completion
// and crashes after quiesce: the WPQ must be empty and every core's
// full write set durable.
func TestMultiCoreCrashAfterCompletionIsClean(t *testing.T) {
	d := mustMultiDriver(t, mcore.Config{Ctrl: testConfig(controller.DolosPartial), Window: 2},
		multiSpecs(t, 2))
	out, err := d.RunAndCrash(1<<40, controller.AnubisRecovery)
	if err != nil {
		t.Fatalf("post-completion crash: %v", err)
	}
	for _, c := range d.System().Cores {
		if !c.Finished() {
			t.Fatalf("core %d did not finish", c.ID())
		}
	}
	if out.Crash.LiveEntries != 0 {
		t.Fatalf("WPQ had %d live entries after quiesce", out.Crash.LiveEntries)
	}
}
