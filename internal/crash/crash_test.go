package crash

import (
	"testing"

	"dolos/internal/controller"
	"dolos/internal/layout"
	"dolos/internal/sim"
	"dolos/internal/whisper"
)

func testConfig(s controller.Scheme) controller.Config {
	cfg := controller.Config{Scheme: s, Layout: layout.Small()}
	copy(cfg.AESKey[:], "crash-aes-key-16")
	copy(cfg.MACKey[:], "crash-mac-key-16")
	return cfg
}

// mustDriver builds a driver for a config the test knows is supported.
func mustDriver(t *testing.T, cfg controller.Config) *Driver {
	t.Helper()
	d, err := NewDriver(cfg)
	if err != nil {
		t.Fatalf("NewDriver: %v", err)
	}
	return d
}

func TestCrashAtManyPointsAllSchemes(t *testing.T) {
	tr := whisper.Hashmap{}.Generate(whisper.Params{
		Transactions: 30, Warmup: 20, TxSize: 512, Seed: 11, HeapSize: 16 << 20,
	})
	for _, s := range []controller.Scheme{
		controller.NonSecureADR, controller.PreWPQSecure,
		controller.DolosFull, controller.DolosPartial, controller.DolosPost,
	} {
		s := s
		t.Run(s.String(), func(t *testing.T) {
			for _, at := range []sim.Cycle{1000, 25000, 100000, 400000} {
				d := mustDriver(t, testConfig(s))
				out, err := d.RunAndCrash(tr, at, controller.AnubisRecovery)
				if err != nil {
					t.Fatalf("crash at %d: %v (outcome %+v)", at, err, out)
				}
				if out.AcceptedWrites > 0 && out.LinesAudited == 0 {
					t.Fatalf("crash at %d: nothing audited", at)
				}
			}
		})
	}
}

func TestOsirisModeCrash(t *testing.T) {
	tr := whisper.Ctree{}.Generate(whisper.Params{
		Transactions: 20, Warmup: 10, TxSize: 256, Seed: 2, HeapSize: 16 << 20,
	})
	d := mustDriver(t, testConfig(controller.DolosPartial))
	out, err := d.RunAndCrash(tr, 80000, controller.OsirisRecovery)
	if err != nil {
		t.Fatalf("Osiris crash: %v", err)
	}
	if out.AcceptedWrites > 0 && out.Recover.MaSU.OsirisProbes == 0 {
		t.Fatal("Osiris recovery ran no probes")
	}
}

func TestUndoLogResolution(t *testing.T) {
	// Build a tiny bespoke trace with a transaction interrupted exactly
	// between its log fence and its commit: the recovery must roll back.
	tr := whisper.Hashmap{}.Generate(whisper.Params{
		Transactions: 10, Warmup: 5, TxSize: 512, Seed: 4, HeapSize: 16 << 20,
	})
	// Crash mid-run; whether a tx was mid-flight depends on the cycle,
	// so try several points and require the log to parse cleanly at all
	// of them (rolled back or not).
	for _, at := range []sim.Cycle{5000, 30000, 60000, 90000} {
		d := mustDriver(t, testConfig(controller.DolosPartial))
		if _, err := d.RunAndCrash(tr, at, controller.AnubisRecovery); err != nil {
			t.Fatalf("crash at %d: %v", at, err)
		}
		// The workload's log sits at the start of its heap allocations;
		// the session allocates the log first.
		logBase := uint64(4096)
		if _, err := d.ResolveLog(logBase, 512/64+64); err != nil {
			t.Fatalf("log resolution at %d: %v", at, err)
		}
	}
}

func TestCrashAfterCompletionIsClean(t *testing.T) {
	tr := whisper.Redis{}.Generate(whisper.Params{
		Transactions: 15, Warmup: 10, TxSize: 256, Seed: 6, HeapSize: 16 << 20,
	})
	d := mustDriver(t, testConfig(controller.DolosFull))
	out, err := d.RunAndCrash(tr, 1<<40, controller.AnubisRecovery) // run to completion
	if err != nil {
		t.Fatalf("post-completion crash: %v", err)
	}
	if !d.System().Finished() {
		t.Fatal("trace did not finish")
	}
	if out.Crash.LiveEntries != 0 {
		t.Fatalf("WPQ had %d live entries after quiesce", out.Crash.LiveEntries)
	}
}
