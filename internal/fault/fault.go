// Package fault is the deterministic fault-injection layer of the
// serving stack: a seeded injector with named fault points that the
// service and experiment layers consult at the places where production
// deployments actually fail — a panicking job handler, a slow
// simulation cell, a saturated queue, a corrupted cache entry, a drain
// that drags on. Every draw comes from one seeded PRNG, so a pinned
// seed replays the same fault distribution run after run; a nil
// *Injector is always off and costs one nil check on the hot path.
//
// Activation is explicit: dolos-serve -faults 'job-panic:0.2,...'
// (or the DOLOS_FAULTS environment variable) builds an injector and
// hands it to service.Config.Faults; nothing fires otherwise. The
// chaos suite (internal/service/chaos_test.go) pins seeds and asserts
// that no injected fault can lose a job, double-execute a simulation,
// or corrupt a served result. See DESIGN.md §11.
package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"dolos/internal/telemetry"
)

// Point names one place faults can be injected.
type Point string

// The five fault points of the resilience layer.
const (
	// JobPanic panics inside the service's job handler, exercising
	// panic containment and client-side resubmission.
	JobPanic Point = "job-panic"
	// CellLatency stalls a simulation cell before it runs (artificial
	// slow cell), exercising deadlines and queueing behavior.
	CellLatency Point = "cell-latency"
	// QueueFull rejects a submission as if the job queue were
	// saturated, exercising 429 + Retry-After backpressure handling.
	QueueFull Point = "queue-full"
	// CacheCorrupt flips a byte in a stored result-cache entry,
	// exercising the cache's checksum verification and recompute path.
	CacheCorrupt Point = "cache-corrupt"
	// DrainStall delays in-flight work while the server is draining,
	// exercising the graceful-shutdown window.
	DrainStall Point = "drain-stall"
)

// Points lists every fault point in documentation order.
func Points() []Point {
	return []Point{JobPanic, CellLatency, QueueFull, CacheCorrupt, DrainStall}
}

// Rule arms one fault point: fire with probability Rate per draw, and
// (for the stalling points) sleep for Delay when fired.
type Rule struct {
	Point Point
	Rate  float64
	Delay time.Duration
}

// Injector is a seeded fault injector. The zero of its pointer type
// (nil) is a valid, permanently-off injector, so instrumented code
// calls it unconditionally. All methods are safe for concurrent use;
// concurrent draws serialize on one PRNG, which is what keeps a pinned
// seed's fault distribution reproducible.
type Injector struct {
	mu    sync.Mutex
	rng   *rand.Rand
	rules map[Point]Rule
	count map[Point]uint64

	// Bound telemetry counters (nil until Bind; nil-safe).
	total   *telemetry.Counter
	byPoint map[Point]*telemetry.Counter
}

// New builds an injector from explicit rules. Unknown points and rates
// outside [0, 1] are rejected; a duplicate point keeps the last rule.
func New(seed int64, rules ...Rule) (*Injector, error) {
	valid := make(map[Point]bool, len(Points()))
	for _, p := range Points() {
		valid[p] = true
	}
	in := &Injector{
		rng:     rand.New(rand.NewSource(seed)),
		rules:   make(map[Point]Rule, len(rules)),
		count:   make(map[Point]uint64),
		byPoint: make(map[Point]*telemetry.Counter),
	}
	for _, r := range rules {
		if !valid[r.Point] {
			return nil, fmt.Errorf("fault: unknown point %q (want one of %s)", r.Point, pointList())
		}
		if r.Rate < 0 || r.Rate > 1 {
			return nil, fmt.Errorf("fault: point %s rate %v out of range [0, 1]", r.Point, r.Rate)
		}
		if r.Delay < 0 {
			return nil, fmt.Errorf("fault: point %s has negative delay %s", r.Point, r.Delay)
		}
		in.rules[r.Point] = r
	}
	return in, nil
}

// Parse decodes a fault spec: comma-separated point:rate[:delay]
// clauses, e.g. "job-panic:0.2,queue-full:0.1,cell-latency:0.5:2ms".
// Rate is a probability in [0, 1]; delay uses time.ParseDuration.
func Parse(spec string) ([]Rule, error) {
	var rules []Rule
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		parts := strings.Split(clause, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("fault: malformed clause %q (want point:rate[:delay])", clause)
		}
		r := Rule{Point: Point(strings.TrimSpace(parts[0]))}
		rate, err := strconv.ParseFloat(strings.TrimSpace(parts[1]), 64)
		if err != nil {
			return nil, fmt.Errorf("fault: clause %q: bad rate: %v", clause, err)
		}
		r.Rate = rate
		if len(parts) == 3 {
			d, err := time.ParseDuration(strings.TrimSpace(parts[2]))
			if err != nil {
				return nil, fmt.Errorf("fault: clause %q: bad delay: %v", clause, err)
			}
			r.Delay = d
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fault: empty spec")
	}
	return rules, nil
}

// FromSpec is New(seed, Parse(spec)...): the one-call constructor the
// CLI flags use.
func FromSpec(seed int64, spec string) (*Injector, error) {
	rules, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	return New(seed, rules...)
}

// Fire draws the point and reports whether the fault fires. Points
// armed with a delay should use FireDelay instead so the stall length
// reaches the caller.
func (in *Injector) Fire(p Point) bool {
	_, ok := in.FireDelay(p)
	return ok
}

// FireDelay draws the point; when the fault fires it returns the
// rule's delay and true. On a nil injector, an unarmed point, or a
// losing draw it returns (0, false).
func (in *Injector) FireDelay(p Point) (time.Duration, bool) {
	if in == nil {
		return 0, false
	}
	in.mu.Lock()
	r, ok := in.rules[p]
	if !ok || r.Rate <= 0 {
		in.mu.Unlock()
		return 0, false
	}
	if r.Rate < 1 && in.rng.Float64() >= r.Rate {
		in.mu.Unlock()
		return 0, false
	}
	in.count[p]++
	c := in.byPoint[p]
	total := in.total
	in.mu.Unlock()
	c.Inc()
	total.Inc()
	return r.Delay, true
}

// Bind registers the injector's counters in a metrics registry:
// fault_injections_total plus one fault_<point>_injections_total per
// armed point, so /metrics exposes exactly how much adversity a chaos
// run injected. Nil-safe on both sides.
func (in *Injector) Bind(reg *telemetry.Registry) {
	if in == nil || reg == nil {
		return
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	in.total = reg.Counter("fault_injections_total")
	for p := range in.rules {
		name := "fault_" + strings.ReplaceAll(string(p), "-", "_") + "_injections_total"
		in.byPoint[p] = reg.Counter(name)
	}
}

// Counts returns a copy of the per-point fired counts (nil injector:
// nil map).
func (in *Injector) Counts() map[Point]uint64 {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make(map[Point]uint64, len(in.count))
	for p, n := range in.count {
		out[p] = n
	}
	return out
}

// Rules returns the armed rules sorted by point name (nil injector:
// nil), for startup logging.
func (in *Injector) Rules() []Rule {
	if in == nil {
		return nil
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	out := make([]Rule, 0, len(in.rules))
	for _, r := range in.rules {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Point < out[j].Point })
	return out
}

// String renders the armed rules in Parse's spec syntax.
func (in *Injector) String() string {
	if in == nil {
		return ""
	}
	var b strings.Builder
	for i, r := range in.Rules() {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s:%v", r.Point, r.Rate)
		if r.Delay > 0 {
			fmt.Fprintf(&b, ":%s", r.Delay)
		}
	}
	return b.String()
}

func pointList() string {
	names := make([]string, 0, len(Points()))
	for _, p := range Points() {
		names = append(names, string(p))
	}
	return strings.Join(names, ", ")
}
