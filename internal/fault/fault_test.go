package fault

import (
	"strings"
	"testing"
	"time"

	"dolos/internal/telemetry"
)

// TestParseRoundTrip: a spec parses to the rules it spells, and the
// injector's String() renders them back in spec syntax.
func TestParseRoundTrip(t *testing.T) {
	rules, err := Parse("job-panic:0.2, queue-full:0.1,cell-latency:0.5:2ms")
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 3 {
		t.Fatalf("parsed %d rules, want 3", len(rules))
	}
	if rules[2].Point != CellLatency || rules[2].Rate != 0.5 || rules[2].Delay != 2*time.Millisecond {
		t.Fatalf("rule 2 = %+v", rules[2])
	}
	in, err := New(1, rules...)
	if err != nil {
		t.Fatal(err)
	}
	s := in.String()
	for _, want := range []string{"cell-latency:0.5:2ms", "job-panic:0.2", "queue-full:0.1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, spec := range []string{
		"",                   // empty
		"job-panic",          // no rate
		"job-panic:lots",     // non-numeric rate
		"job-panic:1.5",      // rate out of range (caught by New)
		"turbo-mode:0.5",     // unknown point (caught by New)
		"cell-latency:0.5:x", // bad delay
		"job-panic:0.1:2ms:extra",
	} {
		rules, err := Parse(spec)
		if err == nil {
			_, err = New(1, rules...)
		}
		if err == nil {
			t.Errorf("spec %q: no error", spec)
		}
	}
}

// TestDeterministicSequence: two injectors with the same seed and rules
// produce the identical fire/miss sequence — the property the chaos
// suite's pinned seeds rely on.
func TestDeterministicSequence(t *testing.T) {
	mk := func() *Injector {
		in, err := New(42, Rule{Point: JobPanic, Rate: 0.3}, Rule{Point: QueueFull, Rate: 0.7})
		if err != nil {
			t.Fatal(err)
		}
		return in
	}
	a, b := mk(), mk()
	for i := 0; i < 1000; i++ {
		p := JobPanic
		if i%2 == 1 {
			p = QueueFull
		}
		if a.Fire(p) != b.Fire(p) {
			t.Fatalf("draw %d diverged between same-seed injectors", i)
		}
	}
	ca, cb := a.Counts(), b.Counts()
	if ca[JobPanic] != cb[JobPanic] || ca[QueueFull] != cb[QueueFull] {
		t.Fatalf("counts diverged: %v vs %v", ca, cb)
	}
	if ca[JobPanic] == 0 || ca[QueueFull] == 0 {
		t.Fatalf("rates 0.3/0.7 over 500 draws each fired %v times", ca)
	}
}

// TestRateExtremes: rate 1 always fires, rate 0 and unarmed points
// never do, and a nil injector is permanently off.
func TestRateExtremes(t *testing.T) {
	in, err := New(1,
		Rule{Point: JobPanic, Rate: 1},
		Rule{Point: QueueFull, Rate: 0},
		Rule{Point: DrainStall, Rate: 1, Delay: 3 * time.Millisecond},
	)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if !in.Fire(JobPanic) {
			t.Fatal("rate-1 point missed")
		}
		if in.Fire(QueueFull) {
			t.Fatal("rate-0 point fired")
		}
		if in.Fire(CacheCorrupt) {
			t.Fatal("unarmed point fired")
		}
	}
	if d, ok := in.FireDelay(DrainStall); !ok || d != 3*time.Millisecond {
		t.Fatalf("FireDelay = (%s, %v), want (3ms, true)", d, ok)
	}

	var off *Injector
	if off.Fire(JobPanic) {
		t.Fatal("nil injector fired")
	}
	if off.Counts() != nil || off.Rules() != nil || off.String() != "" {
		t.Fatal("nil injector leaked state")
	}
}

// TestBindCounters: bound registry counters track fired faults, with
// point names sanitized for the exposition charset.
func TestBindCounters(t *testing.T) {
	in, err := FromSpec(7, "job-panic:1,queue-full:0")
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	in.Bind(reg)
	for i := 0; i < 5; i++ {
		in.Fire(JobPanic)
		in.Fire(QueueFull)
	}
	if v := reg.Counter("fault_injections_total").Value(); v != 5 {
		t.Errorf("fault_injections_total = %d, want 5", v)
	}
	if v := reg.Counter("fault_job_panic_injections_total").Value(); v != 5 {
		t.Errorf("fault_job_panic_injections_total = %d, want 5", v)
	}
	if v := reg.Counter("fault_queue_full_injections_total").Value(); v != 0 {
		t.Errorf("fault_queue_full_injections_total = %d, want 0", v)
	}
}
