package crypt

import "testing"

func BenchmarkGeneratePad(b *testing.B) {
	e := testEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.GeneratePad(MakeIV(uint64(i), uint16(i), uint64(i)))
	}
}

func BenchmarkEncryptLine(b *testing.B) {
	e := testEngine()
	var plain [BlockSize]byte
	iv := MakeIV(1, 2, 3)
	b.SetBytes(BlockSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.EncryptLine(plain, iv)
	}
}

func BenchmarkXOR(b *testing.B) {
	e := testEngine()
	pad := e.GeneratePad(MakeIV(1, 2, 3))
	var line [BlockSize]byte
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		XOR(&line, &line, &pad)
	}
}

func BenchmarkLineMAC(b *testing.B) {
	e := testEngine()
	var ct [BlockSize]byte
	b.SetBytes(BlockSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.LineMAC(&ct, uint64(i), uint64(i))
	}
}

// batchSize mirrors the sim.Pipeline hand-off granularity: the shadow
// stage of a parallel-DES run flushes its deferred data-line crypto in
// runs of up to one pipeline batch.
const batchSize = 64

// BenchmarkPadOneShot / BenchmarkPadBatch compare generating batchSize
// pads one call at a time against one PadBatch call — the amortization
// the parallel-DES shadow stage relies on.
func BenchmarkPadOneShot(b *testing.B) {
	e := testEngine()
	pads := make([]Pad, batchSize)
	ivs := make([]IV, batchSize)
	for i := range ivs {
		ivs[i] = MakeIV(uint64(i), uint16(i), uint64(i))
	}
	b.SetBytes(batchSize * BlockSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range ivs {
			e.GeneratePadInto(&pads[j], ivs[j])
		}
	}
}

func BenchmarkPadBatch(b *testing.B) {
	e := testEngine()
	pads := make([]Pad, batchSize)
	ivs := make([]IV, batchSize)
	for i := range ivs {
		ivs[i] = MakeIV(uint64(i), uint16(i), uint64(i))
	}
	b.SetBytes(batchSize * BlockSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.PadBatch(pads, ivs)
	}
}

// BenchmarkMACOneShot / BenchmarkMACBatch: same comparison for the
// data-line MACs of one shadow hand-off.
func BenchmarkMACOneShot(b *testing.B) {
	e := testEngine()
	cts := make([][BlockSize]byte, batchSize)
	macs := make([]MAC, batchSize)
	b.SetBytes(batchSize * BlockSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for j := range cts {
			macs[j] = e.LineMAC(&cts[j], uint64(j)<<6, uint64(j))
		}
	}
}

func BenchmarkMACBatch(b *testing.B) {
	e := testEngine()
	cts := make([][BlockSize]byte, batchSize)
	macs := make([]MAC, batchSize)
	reqs := make([]MACReq, batchSize)
	for j := range reqs {
		reqs[j] = MACReq{CT: &cts[j], Addr: uint64(j) << 6, Counter: uint64(j)}
	}
	b.SetBytes(batchSize * BlockSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e.MACBatch(macs, reqs)
	}
}

func BenchmarkECC(b *testing.B) {
	var plain [BlockSize]byte
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		_ = ECC(&plain)
	}
}
