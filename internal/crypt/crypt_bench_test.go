package crypt

import "testing"

func BenchmarkGeneratePad(b *testing.B) {
	e := testEngine()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.GeneratePad(MakeIV(uint64(i), uint16(i), uint64(i)))
	}
}

func BenchmarkEncryptLine(b *testing.B) {
	e := testEngine()
	var plain [BlockSize]byte
	iv := MakeIV(1, 2, 3)
	b.SetBytes(BlockSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.EncryptLine(plain, iv)
	}
}

func BenchmarkXOR(b *testing.B) {
	e := testEngine()
	pad := e.GeneratePad(MakeIV(1, 2, 3))
	var line [BlockSize]byte
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		XOR(&line, &line, &pad)
	}
}

func BenchmarkLineMAC(b *testing.B) {
	e := testEngine()
	var ct [BlockSize]byte
	b.SetBytes(BlockSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = e.LineMAC(&ct, uint64(i), uint64(i))
	}
}

func BenchmarkECC(b *testing.B) {
	var plain [BlockSize]byte
	b.SetBytes(BlockSize)
	for i := 0; i < b.N; i++ {
		_ = ECC(&plain)
	}
}
