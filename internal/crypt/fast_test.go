package crypt

import "testing"

// TestFastEngineIdentityEncryption: the latency-only provider must be
// internally consistent — what a write stores, a read recovers — even
// though it computes no real cryptography. Identity encryption is the
// simplest involution, and it means a fast-mode device holds plaintext.
func TestFastEngineIdentityEncryption(t *testing.T) {
	fe := NewFastEngine()
	if fe.Functional() {
		t.Fatal("FastEngine claims to be functional")
	}
	var plain [BlockSize]byte
	for i := range plain {
		plain[i] = byte(i * 7)
	}
	iv := MakeIV(1, 0, 42)
	ct := fe.EncryptLine(plain, iv)
	if ct != plain {
		t.Fatal("fast encryption is not the identity")
	}
	if got := fe.DecryptLine(ct, iv); got != plain {
		t.Fatal("fast decrypt(encrypt(p)) != p")
	}
	var dst [BlockSize]byte
	fe.EncryptLineTo(&dst, &plain, iv)
	if dst != plain {
		t.Fatal("EncryptLineTo is not the identity")
	}
	fe.DecryptLineTo(&dst, &ct, iv)
	if dst != plain {
		t.Fatal("DecryptLineTo is not the identity")
	}
	if (fe.GeneratePad(iv) != Pad{}) {
		t.Fatal("fast pad is not zero (identity XOR)")
	}
}

// TestFastEngineMACConsistency: fast MACs must verify on the benign
// path — the value computed at write time equals the value recomputed at
// read time from the same (addr, counter) — while still varying across
// addresses and counters so table mix-ups surface as panics in tests.
func TestFastEngineMACConsistency(t *testing.T) {
	fe := NewFastEngine()
	var ct, other [BlockSize]byte
	other[0] = 1
	m1 := fe.LineMAC(&ct, 0x1000, 7)
	if m2 := fe.LineMAC(&other, 0x1000, 7); m2 != m1 {
		t.Fatal("fast LineMAC depends on ciphertext bytes; it must be latency-only")
	}
	if m3 := fe.LineMAC(&ct, 0x1040, 7); m3 == m1 {
		t.Fatal("fast LineMAC ignores the address")
	}
	if m4 := fe.LineMAC(&ct, 0x1000, 8); m4 == m1 {
		t.Fatal("fast LineMAC ignores the counter")
	}
	payload := make([]byte, 64)
	n1 := fe.NodeMAC(payload, 3)
	if n2 := fe.NodeMAC(payload, 4); n2 == n1 {
		t.Fatal("fast NodeMAC ignores the position")
	}
	if n3 := fe.NodeMAC(payload, 3); n3 != n1 {
		t.Fatal("fast NodeMAC is not deterministic")
	}
}

// TestFastEngineECCConsistency: the fast Osiris check must be a pure
// deterministic function of the plaintext (so write-time and read-time
// values agree) and actually sensitive to it (so the Osiris probe's
// first-match semantics still terminate at the right counter).
func TestFastEngineECCConsistency(t *testing.T) {
	fe := NewFastEngine()
	var plain [BlockSize]byte
	for i := range plain {
		plain[i] = byte(i)
	}
	e1 := fe.LineECC(&plain)
	if e2 := fe.LineECC(&plain); e2 != e1 {
		t.Fatal("fast LineECC is not deterministic")
	}
	plain[5] ^= 0x80
	if e3 := fe.LineECC(&plain); e3 == e1 {
		t.Fatal("fast LineECC ignores the plaintext")
	}
}

// TestFastEngineAllocFree pins the whole latency-only surface at zero
// allocations per op: fast mode exists to delete host-side cost, so a
// heap escape in any of its methods would be a silent regression of the
// very thing it optimizes (and of the PR 5 invariant the functional
// engine already holds).
func TestFastEngineAllocFree(t *testing.T) {
	fe := NewFastEngine()
	var line, out [BlockSize]byte
	var pad Pad
	payload := make([]byte, 64)
	iv := MakeIV(1, 0, 9)
	sink := uint64(0)
	allocs := testing.AllocsPerRun(200, func() {
		fe.GeneratePadInto(&pad, iv)
		fe.EncryptLineTo(&out, &line, iv)
		fe.DecryptLineTo(&line, &out, iv)
		m := fe.LineMAC(&out, 0x1000, 9)
		n := fe.NodeMAC(payload, 3)
		sink += uint64(m[0]) + uint64(n[0]) + uint64(fe.LineECC(&line))
	})
	if allocs != 0 {
		t.Fatalf("fast provider allocates %.1f objects per op, want 0", allocs)
	}
	_ = sink
}

// TestDispatchAllocFree pins the devirtualizing wrapper itself: routing
// through crypt.Dispatch must not reintroduce the interface-call escapes
// it exists to avoid, for either engine.
func TestDispatchAllocFree(t *testing.T) {
	var aes, mac [16]byte
	copy(aes[:], "dispatch-aes-k16")
	copy(mac[:], "dispatch-mac-k16")
	for _, tc := range []struct {
		name string
		d    Dispatch
	}{
		{"functional", AsDispatch(NewEngine(aes, mac))},
		{"fast", AsDispatch(NewFastEngine())},
	} {
		t.Run(tc.name, func(t *testing.T) {
			d := tc.d
			var line, out [BlockSize]byte
			payload := make([]byte, 64)
			iv := MakeIV(2, 64, 1)
			sink := uint64(0)
			allocs := testing.AllocsPerRun(200, func() {
				d.EncryptLineTo(&out, &line, iv)
				d.DecryptLineTo(&line, &out, iv)
				m := d.LineMAC(&out, 0x40, 1)
				n := d.NodeMAC(payload, 2)
				sink += uint64(m[0]) + uint64(n[0]) + uint64(d.LineECC(&line))
			})
			if allocs != 0 {
				t.Fatalf("Dispatch(%s) allocates %.1f objects per op, want 0", tc.name, allocs)
			}
			_ = sink
		})
	}
}
