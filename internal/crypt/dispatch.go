package crypt

// Dispatch is a devirtualized Provider: a concrete value that routes
// each primitive to the functional or fast engine with a nil check.
// The security units store a Dispatch rather than a Provider interface
// because pointer arguments passed through an interface call defeat
// escape analysis — every LineMAC(&ct, ...) on the hot path would move
// its caller's line to the heap, un-doing the PR 5 zero-allocation
// work. Calls through Dispatch are static, so the compiler's escape
// summaries for the concrete engines apply and stack buffers stay on
// the stack (pinned by the AllocsPerRun tests in this package, masu
// and misu).
//
// An implementation outside this package still works through the iface
// fallback; to keep the escape summaries of the pointer-taking methods
// clean, fallback calls operate on stack copies (the copy, not the
// caller's buffer, escapes into the interface call).
type Dispatch struct {
	f *Engine
	x *FastEngine
	p Provider // fallback for foreign implementations (nil otherwise)
}

// AsDispatch wraps any Provider for devirtualized use. The two
// in-package engines route statically; anything else falls back to the
// interface.
func AsDispatch(p Provider) Dispatch {
	switch e := p.(type) {
	case *Engine:
		return Dispatch{f: e}
	case *FastEngine:
		return Dispatch{x: e}
	default:
		return Dispatch{p: p}
	}
}

// Provider returns the wrapped provider as the seam interface.
func (d Dispatch) Provider() Provider {
	switch {
	case d.f != nil:
		return d.f
	case d.x != nil:
		return d.x
	default:
		return d.p
	}
}

// Functional reports whether the wrapped provider is the real one.
func (d Dispatch) Functional() bool {
	if d.f != nil {
		return true
	}
	if d.x != nil {
		return false
	}
	return d.p.Functional()
}

// GeneratePad produces the pad for iv.
func (d Dispatch) GeneratePad(iv IV) Pad {
	switch {
	case d.f != nil:
		return d.f.GeneratePad(iv)
	case d.x != nil:
		return d.x.GeneratePad(iv)
	default:
		return d.p.GeneratePad(iv)
	}
}

// GeneratePadInto writes the pad for iv into *pad.
func (d Dispatch) GeneratePadInto(pad *Pad, iv IV) {
	switch {
	case d.f != nil:
		d.f.GeneratePadInto(pad, iv)
	case d.x != nil:
		d.x.GeneratePadInto(pad, iv)
	default:
		*pad = d.p.GeneratePad(iv)
	}
}

// EncryptLine encrypts plain with the pad for iv.
func (d Dispatch) EncryptLine(plain [BlockSize]byte, iv IV) [BlockSize]byte {
	switch {
	case d.f != nil:
		return d.f.EncryptLine(plain, iv)
	case d.x != nil:
		return d.x.EncryptLine(plain, iv)
	default:
		return d.p.EncryptLine(plain, iv)
	}
}

// EncryptLineTo encrypts *src into *dst.
func (d Dispatch) EncryptLineTo(dst, src *[BlockSize]byte, iv IV) {
	switch {
	case d.f != nil:
		d.f.EncryptLineTo(dst, src, iv)
	case d.x != nil:
		d.x.EncryptLineTo(dst, src, iv)
	default:
		*dst = d.p.EncryptLine(*src, iv)
	}
}

// DecryptLine decrypts ct with the pad for iv.
func (d Dispatch) DecryptLine(ct [BlockSize]byte, iv IV) [BlockSize]byte {
	switch {
	case d.f != nil:
		return d.f.DecryptLine(ct, iv)
	case d.x != nil:
		return d.x.DecryptLine(ct, iv)
	default:
		return d.p.DecryptLine(ct, iv)
	}
}

// DecryptLineTo decrypts *src into *dst.
func (d Dispatch) DecryptLineTo(dst, src *[BlockSize]byte, iv IV) {
	switch {
	case d.f != nil:
		d.f.DecryptLineTo(dst, src, iv)
	case d.x != nil:
		d.x.DecryptLineTo(dst, src, iv)
	default:
		*dst = d.p.DecryptLine(*src, iv)
	}
}

// LineMAC computes the MAC over (ciphertext, address, counter).
func (d Dispatch) LineMAC(ct *[BlockSize]byte, addr, counter uint64) MAC {
	switch {
	case d.f != nil:
		return d.f.LineMAC(ct, addr, counter)
	case d.x != nil:
		return d.x.LineMAC(ct, addr, counter)
	default:
		tmp := *ct
		return d.p.LineMAC(&tmp, addr, counter)
	}
}

// NodeMAC computes the MAC over a node payload plus position.
func (d Dispatch) NodeMAC(payload []byte, position uint64) MAC {
	switch {
	case d.f != nil:
		return d.f.NodeMAC(payload, position)
	case d.x != nil:
		return d.x.NodeMAC(payload, position)
	default:
		return d.p.NodeMAC(append([]byte(nil), payload...), position)
	}
}

// PadBatch fills dst[i] with the pad for ivs[i]. The batch buffers are
// caller-owned scratch slices (already heap-resident), so the fallback
// passes them through without the copy dance of the pointer methods.
func (d Dispatch) PadBatch(dst []Pad, ivs []IV) {
	switch {
	case d.f != nil:
		d.f.PadBatch(dst, ivs)
	case d.x != nil:
		d.x.PadBatch(dst, ivs)
	default:
		d.p.PadBatch(dst, ivs)
	}
}

// MACBatch fills dst[i] with the MAC for reqs[i].
func (d Dispatch) MACBatch(dst []MAC, reqs []MACReq) {
	switch {
	case d.f != nil:
		d.f.MACBatch(dst, reqs)
	case d.x != nil:
		d.x.MACBatch(dst, reqs)
	default:
		d.p.MACBatch(dst, reqs)
	}
}

// LineECC computes the Osiris check over a plaintext line.
func (d Dispatch) LineECC(plain *[BlockSize]byte) uint32 {
	switch {
	case d.f != nil:
		return d.f.LineECC(plain)
	case d.x != nil:
		return d.x.LineECC(plain)
	default:
		tmp := *plain
		return d.p.LineECC(&tmp)
	}
}
