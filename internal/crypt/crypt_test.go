package crypt

import (
	"bytes"
	"testing"
	"testing/quick"
)

func testEngine() *Engine {
	var aesKey, macKey [16]byte
	copy(aesKey[:], "0123456789abcdef")
	copy(macKey[:], "fedcba9876543210")
	return NewEngine(aesKey, macKey)
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	e := testEngine()
	var plain [BlockSize]byte
	copy(plain[:], "the quick brown fox jumps over the lazy dog 0123456789abcdef")
	iv := MakeIV(42, 7, 1001)
	ct := e.EncryptLine(plain, iv)
	if ct == plain {
		t.Fatal("ciphertext equals plaintext")
	}
	back := e.DecryptLine(ct, iv)
	if back != plain {
		t.Fatal("round trip failed")
	}
}

func TestDecryptWrongCounterFails(t *testing.T) {
	e := testEngine()
	var plain [BlockSize]byte
	plain[0] = 0xAA
	ct := e.EncryptLine(plain, MakeIV(1, 0, 5))
	back := e.DecryptLine(ct, MakeIV(1, 0, 6))
	if back == plain {
		t.Fatal("decryption with wrong counter should not recover plaintext")
	}
}

func TestPadUniqueness(t *testing.T) {
	e := testEngine()
	seen := make(map[Pad]IV)
	for page := uint64(0); page < 8; page++ {
		for off := uint16(0); off < 8; off++ {
			for ctr := uint64(0); ctr < 8; ctr++ {
				iv := MakeIV(page, off, ctr)
				pad := e.GeneratePad(iv)
				if prev, dup := seen[pad]; dup {
					t.Fatalf("pad collision between %v and %v", prev, iv)
				}
				seen[pad] = iv
			}
		}
	}
}

func TestIVDistinctFields(t *testing.T) {
	// Different (page, offset, counter) triples must give different IVs.
	a := MakeIV(1, 2, 3)
	b := MakeIV(1, 3, 2)
	c := MakeIV(2, 1, 3)
	if a == b || a == c || b == c {
		t.Fatal("IVs for distinct coordinates collide")
	}
}

func TestXORInvolution(t *testing.T) {
	f := func(data [BlockSize]byte, padBytes [BlockSize]byte) bool {
		pad := Pad(padBytes)
		var once, twice [BlockSize]byte
		XOR(&once, &data, &pad)
		XOR(&twice, &once, &pad)
		return twice == data
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestXORAliasing(t *testing.T) {
	e := testEngine()
	pad := e.GeneratePad(MakeIV(9, 9, 9))
	var buf, want [BlockSize]byte
	buf[10] = 0x5A
	XOR(&want, &buf, &pad)
	XOR(&buf, &buf, &pad) // in place
	if buf != want {
		t.Fatal("in-place XOR differs from out-of-place")
	}
}

func TestLineMACBindsAllInputs(t *testing.T) {
	e := testEngine()
	var ct [BlockSize]byte
	ct[5] = 1
	base := e.LineMAC(&ct, 0x1000, 7)

	var ct2 [BlockSize]byte
	ct2[5] = 2
	if e.LineMAC(&ct2, 0x1000, 7) == base {
		t.Fatal("MAC ignores ciphertext")
	}
	if e.LineMAC(&ct, 0x2000, 7) == base {
		t.Fatal("MAC ignores address (relocation attack undetected)")
	}
	if e.LineMAC(&ct, 0x1000, 8) == base {
		t.Fatal("MAC ignores counter (replay attack undetected)")
	}
	if e.LineMAC(&ct, 0x1000, 7) != base {
		t.Fatal("MAC not deterministic")
	}
}

func TestNodeMACBindsPosition(t *testing.T) {
	e := testEngine()
	payload := bytes.Repeat([]byte{0xCD}, 64)
	if e.NodeMAC(payload, 1) == e.NodeMAC(payload, 2) {
		t.Fatal("node MAC ignores position")
	}
}

func TestMACKeyMatters(t *testing.T) {
	var aesKey, mk1, mk2 [16]byte
	mk2[0] = 1
	e1 := NewEngine(aesKey, mk1)
	e2 := NewEngine(aesKey, mk2)
	var ct [BlockSize]byte
	if e1.LineMAC(&ct, 1, 1) == e2.LineMAC(&ct, 1, 1) {
		t.Fatal("MAC independent of key")
	}
}

func TestECCDetectsChange(t *testing.T) {
	var a, b [BlockSize]byte
	b[63] = 1
	if ECC(&a) == ECC(&b) {
		t.Fatal("ECC collision on single-byte change")
	}
	if ECC(&a) != ECC(&a) {
		t.Fatal("ECC not deterministic")
	}
}

func TestEncryptionKeyMatters(t *testing.T) {
	var k1, k2, mk [16]byte
	k2[15] = 0xFF
	e1 := NewEngine(k1, mk)
	e2 := NewEngine(k2, mk)
	var plain [BlockSize]byte
	plain[0] = 0x42
	iv := MakeIV(3, 3, 3)
	if e1.EncryptLine(plain, iv) == e2.EncryptLine(plain, iv) {
		t.Fatal("ciphertext independent of AES key")
	}
}

func TestCTRPropertyRoundTrip(t *testing.T) {
	e := testEngine()
	f := func(plain [BlockSize]byte, page uint32, off uint16, ctr uint64) bool {
		iv := MakeIV(uint64(page), off, ctr)
		return e.DecryptLine(e.EncryptLine(plain, iv), iv) == plain
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestBatchMatchesOneShot pins the batched forms byte-identical to their
// one-shot counterparts, on both providers: the shadow stage may flush
// any mix of lines through either path and the device bytes must not
// depend on which.
func TestBatchMatchesOneShot(t *testing.T) {
	for _, tc := range []struct {
		name string
		p    Provider
	}{
		{"engine", testEngine()},
		{"fast", NewFastEngine()},
	} {
		const n = 37 // deliberately not the full batch size
		ivs := make([]IV, n)
		pads := make([]Pad, n)
		cts := make([][BlockSize]byte, n)
		reqs := make([]MACReq, n)
		macs := make([]MAC, n)
		for i := range ivs {
			ivs[i] = MakeIV(uint64(i*i+1), uint16(i), uint64(100+i))
			cts[i][0] = byte(i)
			cts[i][63] = byte(i * 3)
			reqs[i] = MACReq{CT: &cts[i], Addr: uint64(i) << 6, Counter: uint64(i * 7)}
		}
		tc.p.PadBatch(pads, ivs)
		tc.p.MACBatch(macs, reqs)
		for i := range ivs {
			if want := tc.p.GeneratePad(ivs[i]); pads[i] != want {
				t.Errorf("%s: PadBatch[%d] differs from GeneratePad", tc.name, i)
			}
			if want := tc.p.LineMAC(&cts[i], reqs[i].Addr, reqs[i].Counter); macs[i] != want {
				t.Errorf("%s: MACBatch[%d] differs from LineMAC", tc.name, i)
			}
		}
	}
}
