// Package crypt implements the cryptographic primitives of the Dolos model:
// AES-128 counter-mode encryption pads, the initialization-vector layout of
// Figure 2 (page ID, page offset, counter, padding), and 8-byte MACs over
// ciphertext + address + counter. The primitives are functional — real AES,
// real hashes — so confidentiality and integrity properties are testable
// end to end, while performance models use the latency constants from
// Table 1 of the paper.
package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"

	"dolos/internal/sim"
)

// Latency constants from Table 1 (4 GHz core).
const (
	// AESLatency is the latency of one AES operation (pad generation).
	AESLatency sim.Cycle = 40
	// MACLatency is the latency of one MAC computation.
	MACLatency sim.Cycle = 160
	// XORLatency is the cost of XOR-ing a pre-generated pad with a line.
	XORLatency sim.Cycle = 1
)

// BlockSize is the cache-line / memory-block granularity (bytes).
const BlockSize = 64

// MACSize is the size of a truncated MAC in bytes (8-byte MACs, as the
// paper assumes for WPQ entries and BMT nodes).
const MACSize = 8

// Pad is a 64-byte one-time encryption pad for one memory block.
type Pad [BlockSize]byte

// Provider is the crypto seam between the security units and the
// primitive implementations. Two implementations exist:
//
//   - *Engine — the functional provider: real AES-CTR pads, real
//     truncated-SHA-256 MACs. Crash, recovery and attack experiments
//     require it, because they read the bytes back and verify them.
//   - *FastEngine — the latency-only provider for perf-mode runs:
//     identity "encryption" and constant-time fold MACs. Timing in the
//     model is charged from the Table 1 latency constants and cost
//     counts, never from crypto byte values, so every deterministic
//     field of a run is bit-identical between providers while the
//     SHA-256/AES host cost disappears.
//
// Functional reports which side of that split an implementation is on;
// security-sensitive paths (recovery, audits) refuse to run when it
// returns false.
type Provider interface {
	// Functional reports whether pads, MACs and ECC are real
	// cryptographic values (true) or latency-only fakes (false).
	Functional() bool
	// GeneratePad produces the 64-byte CTR-mode pad for iv.
	GeneratePad(iv IV) Pad
	// GeneratePadInto writes the pad for iv into *pad without
	// allocating.
	GeneratePadInto(pad *Pad, iv IV)
	// EncryptLine encrypts a 64-byte plaintext line with the pad for iv.
	EncryptLine(plain [BlockSize]byte, iv IV) [BlockSize]byte
	// EncryptLineTo encrypts *src into *dst (they may alias).
	EncryptLineTo(dst, src *[BlockSize]byte, iv IV)
	// DecryptLine decrypts a 64-byte ciphertext line with the pad for iv.
	DecryptLine(ct [BlockSize]byte, iv IV) [BlockSize]byte
	// DecryptLineTo decrypts *src into *dst (they may alias).
	DecryptLineTo(dst, src *[BlockSize]byte, iv IV)
	// LineMAC computes the 8-byte MAC over (ciphertext, address, counter).
	LineMAC(ct *[BlockSize]byte, addr, counter uint64) MAC
	// NodeMAC computes the 8-byte MAC over a node payload plus position.
	NodeMAC(payload []byte, position uint64) MAC
	// LineECC computes the 4-byte Osiris-style check over a plaintext line.
	LineECC(plain *[BlockSize]byte) uint32
	// PadBatch fills dst[i] with the pad for ivs[i] (equal lengths). The
	// batched form amortizes the per-call cipher plumbing across a run of
	// queued lines; output is byte-identical to len(ivs) GeneratePadInto
	// calls.
	PadBatch(dst []Pad, ivs []IV)
	// MACBatch fills dst[i] with LineMAC(reqs[i].CT, reqs[i].Addr,
	// reqs[i].Counter) for every request (equal lengths).
	MACBatch(dst []MAC, reqs []MACReq)
}

// MACReq is one element of a MACBatch: the ciphertext line plus the
// address and counter the MAC binds. The ciphertext is referenced, not
// copied — callers keep the batch's lines alive until MACBatch returns.
type MACReq struct {
	CT            *[BlockSize]byte
	Addr, Counter uint64
}

// Both engines satisfy the seam.
var (
	_ Provider = (*Engine)(nil)
	_ Provider = (*FastEngine)(nil)
)

// MAC is an 8-byte truncated message authentication code.
type MAC [MACSize]byte

// IV is the 16-byte AES-CTR initialization vector of Figure 2.
type IV [16]byte

// MakeIV assembles an IV from the block's page ID, the page offset of the
// line within the page, and the line's encryption counter. The layout
// mirrors Figure 2: page ID (6 bytes) | page offset (2 bytes) |
// counter (8 bytes). Spatial uniqueness comes from pageID+offset, temporal
// uniqueness from the counter.
func MakeIV(pageID uint64, pageOffset uint16, counter uint64) IV {
	var iv IV
	binary.LittleEndian.PutUint64(iv[0:8], pageID<<16|uint64(pageOffset))
	binary.LittleEndian.PutUint64(iv[8:16], counter)
	return iv
}

// Engine holds a processor-side encryption key and MAC key. In SGX-like
// designs these are generated at boot inside the processor; here they are
// supplied by the caller so crash-recovery tests can model the persistent
// processor key registers.
type Engine struct {
	block  cipher.Block
	macKey [16]byte

	// Scratch buffers for CTR pad generation. Anything passed to the
	// cipher.Block interface escapes (the compiler cannot see through
	// the dynamic call), so using locals would heap-allocate a lane
	// input and a pad per call. The engine is owned by one simulated
	// system and the event loop is single-threaded, so one scratch set
	// per engine is safe; parallel sweeps build a system — and an
	// engine — per cell.
	ctrIn  [16]byte
	ctrPad Pad

	// MAC digest-input scratch, macKey pre-filled in the first 16 bytes
	// at construction. A stack buffer would need a fresh zero-fill and
	// key copy on every MAC, and the model computes up to 10 serial MACs
	// per persisted line; reusing engine memory leaves only the varying
	// bytes to write. Same single-threaded ownership argument as above.
	lineBuf [16 + 16 + BlockSize]byte
	nodeBuf [nodeMACBufSize]byte
}

// NewEngine creates an engine from a 16-byte AES key and a 16-byte MAC key.
func NewEngine(aesKey, macKey [16]byte) *Engine {
	block, err := aes.NewCipher(aesKey[:])
	if err != nil {
		// aes.NewCipher only fails on invalid key sizes, which the
		// fixed-size array rules out.
		panic("crypt: " + err.Error())
	}
	e := &Engine{block: block}
	e.macKey = macKey
	copy(e.lineBuf[0:16], macKey[:])
	copy(e.nodeBuf[0:16], macKey[:])
	return e
}

// GeneratePad produces the 64-byte CTR-mode pad for the given IV: four AES
// blocks of (IV with a lane index mixed into the top bits).
func (e *Engine) GeneratePad(iv IV) Pad {
	var pad Pad
	e.GeneratePadInto(&pad, iv)
	return pad
}

// GeneratePadInto writes the CTR-mode pad for iv into *pad. It is the
// allocation-free form of GeneratePad: the AES blocks are produced in
// the engine's scratch pad (only engine-owned memory touches the cipher
// interface, so the caller's buffer never escapes) and copied out once.
func (e *Engine) GeneratePadInto(pad *Pad, iv IV) {
	for lane := 0; lane < BlockSize/16; lane++ {
		e.ctrIn = iv
		e.ctrIn[15] ^= byte(lane + 1) // lane counter within the 64 B block
		e.block.Encrypt(e.ctrPad[lane*16:(lane+1)*16], e.ctrIn[:])
	}
	*pad = e.ctrPad
}

// XOR applies pad to the 64-byte line src, writing the result to dst.
// Encryption and decryption are the same operation in counter mode.
// dst and src may alias.
func XOR(dst, src *[BlockSize]byte, pad *Pad) {
	for i := 0; i < BlockSize; i += 8 {
		v := binary.LittleEndian.Uint64(src[i:]) ^ binary.LittleEndian.Uint64(pad[i:])
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
}

// EncryptLine encrypts a 64-byte plaintext line with the pad for iv.
func (e *Engine) EncryptLine(plain [BlockSize]byte, iv IV) [BlockSize]byte {
	var out [BlockSize]byte
	e.EncryptLineTo(&out, &plain, iv)
	return out
}

// EncryptLineTo encrypts the 64-byte line *src with the pad for iv,
// writing the result to *dst. dst and src may alias. This is the
// allocation-free form used by the write path: no 64-byte values move
// through return slots.
func (e *Engine) EncryptLineTo(dst, src *[BlockSize]byte, iv IV) {
	var pad Pad
	e.GeneratePadInto(&pad, iv)
	XOR(dst, src, &pad)
}

// DecryptLine decrypts a 64-byte ciphertext line with the pad for iv.
func (e *Engine) DecryptLine(ct [BlockSize]byte, iv IV) [BlockSize]byte {
	return e.EncryptLine(ct, iv) // CTR is symmetric
}

// DecryptLineTo decrypts the 64-byte line *src into *dst (CTR is
// symmetric, so this is EncryptLineTo under another name).
func (e *Engine) DecryptLineTo(dst, src *[BlockSize]byte, iv IV) {
	e.EncryptLineTo(dst, src, iv)
}

// LineMAC computes the 8-byte MAC over (ciphertext, address, counter) as
// in a Bonsai Merkle Tree data MAC: the MT-verifiable counter binds
// freshness, the address binds location, the ciphertext binds content.
//
// The digest input is assembled in the engine's key-prefilled scratch
// and hashed with the one-shot sha256.Sum256 — byte-identical to the
// former streaming macKey‖addr,counter‖ct writes, but with zero heap
// allocations and no per-call buffer zeroing (the streaming form paid a
// hasher allocation plus the Sum(nil) copy per MAC, and the model
// computes up to 10 serial MACs per persisted line).
func (e *Engine) LineMAC(ct *[BlockSize]byte, addr, counter uint64) MAC {
	buf := &e.lineBuf // [0:16] holds macKey since construction
	binary.LittleEndian.PutUint64(buf[16:24], addr)
	binary.LittleEndian.PutUint64(buf[24:32], counter)
	copy(buf[32:], ct[:])
	sum := sha256.Sum256(buf[:])
	var m MAC
	copy(m[:], sum[:MACSize])
	return m
}

// nodeMACBufSize sizes the node-MAC scratch: key (16) + position (8) +
// the largest payload in the model. The integrity trees hash 64-byte
// BMT nodes and 72-byte ToC images; the Mi-SU's Full-WPQ L1 group MAC
// concatenates eight 72-byte WPQ entry records, 576 bytes — undersizing
// that bound would silently heap-allocate on every WPQ tree update,
// which is exactly the per-insert hot path.
const nodeMACBufSize = 16 + 8 + 576

// NodeMAC computes the 8-byte MAC over an arbitrary node payload plus a
// position tag, used for integrity-tree nodes and the Mi-SU WPQ tree.
// Payloads up to 576 bytes (every MAC input in the model) assemble
// macKey‖position‖payload in the engine's key-prefilled scratch and
// hash in one shot, with zero allocations; larger payloads take a
// one-shot fallback with the identical digest stream.
func (e *Engine) NodeMAC(payload []byte, position uint64) MAC {
	buf := e.nodeBuf[:] // [0:16] holds macKey since construction
	if len(payload) > nodeMACBufSize-24 {
		// Oversized payloads (none in the model) take one allocation.
		buf = make([]byte, 24+len(payload))
		copy(buf[0:16], e.macKey[:])
	}
	binary.LittleEndian.PutUint64(buf[16:24], position)
	n := 24 + copy(buf[24:], payload)
	sum := sha256.Sum256(buf[:n])
	var m MAC
	copy(m[:], sum[:MACSize])
	return m
}

// PadBatch writes the pad for ivs[i] into dst[i] for every element. The
// AES lane outputs are produced directly in the caller's pad array —
// batch callers hand in long-lived scratch slices, so letting dst reach
// the cipher interface costs nothing — which drops the per-pad 64-byte
// scratch copy GeneratePadInto pays, and the single call site amortizes
// the dispatch overhead across the whole run of queued lines.
func (e *Engine) PadBatch(dst []Pad, ivs []IV) {
	if len(dst) != len(ivs) {
		panic("crypt: PadBatch length mismatch")
	}
	for i := range ivs {
		iv := ivs[i]
		for lane := 0; lane < BlockSize/16; lane++ {
			e.ctrIn = iv
			e.ctrIn[15] ^= byte(lane + 1)
			e.block.Encrypt(dst[i][lane*16:(lane+1)*16], e.ctrIn[:])
		}
	}
}

// MACBatch writes LineMAC(reqs[i]) into dst[i] for every request,
// reusing the engine's key-prefilled digest scratch across the batch.
func (e *Engine) MACBatch(dst []MAC, reqs []MACReq) {
	if len(dst) != len(reqs) {
		panic("crypt: MACBatch length mismatch")
	}
	buf := &e.lineBuf // [0:16] holds macKey since construction
	for i := range reqs {
		binary.LittleEndian.PutUint64(buf[16:24], reqs[i].Addr)
		binary.LittleEndian.PutUint64(buf[24:32], reqs[i].Counter)
		copy(buf[32:], reqs[i].CT[:])
		sum := sha256.Sum256(buf[:])
		copy(dst[i][:], sum[:MACSize])
	}
}

// Functional reports that this engine computes real cryptographic values.
func (e *Engine) Functional() bool { return true }

// LineECC computes the Osiris check through the provider seam; it is
// exactly the package-level ECC.
func (e *Engine) LineECC(plain *[BlockSize]byte) uint32 { return ECC(plain) }

// ECC computes the 4-byte Osiris-style sanity check over a plaintext line.
// The real Osiris reuses the memory ECC bits; we model them as a small
// digest stored alongside the ciphertext, which plays the same role: a
// check that identifies the correct decryption counter during recovery.
func ECC(plain *[BlockSize]byte) uint32 {
	sum := sha256.Sum256(plain[:])
	return binary.LittleEndian.Uint32(sum[:4])
}
