// Package crypt implements the cryptographic primitives of the Dolos model:
// AES-128 counter-mode encryption pads, the initialization-vector layout of
// Figure 2 (page ID, page offset, counter, padding), and 8-byte MACs over
// ciphertext + address + counter. The primitives are functional — real AES,
// real hashes — so confidentiality and integrity properties are testable
// end to end, while performance models use the latency constants from
// Table 1 of the paper.
package crypt

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/sha256"
	"encoding/binary"

	"dolos/internal/sim"
)

// Latency constants from Table 1 (4 GHz core).
const (
	// AESLatency is the latency of one AES operation (pad generation).
	AESLatency sim.Cycle = 40
	// MACLatency is the latency of one MAC computation.
	MACLatency sim.Cycle = 160
	// XORLatency is the cost of XOR-ing a pre-generated pad with a line.
	XORLatency sim.Cycle = 1
)

// BlockSize is the cache-line / memory-block granularity (bytes).
const BlockSize = 64

// MACSize is the size of a truncated MAC in bytes (8-byte MACs, as the
// paper assumes for WPQ entries and BMT nodes).
const MACSize = 8

// Pad is a 64-byte one-time encryption pad for one memory block.
type Pad [BlockSize]byte

// MAC is an 8-byte truncated message authentication code.
type MAC [MACSize]byte

// IV is the 16-byte AES-CTR initialization vector of Figure 2.
type IV [16]byte

// MakeIV assembles an IV from the block's page ID, the page offset of the
// line within the page, and the line's encryption counter. The layout
// mirrors Figure 2: page ID (6 bytes) | page offset (2 bytes) |
// counter (8 bytes). Spatial uniqueness comes from pageID+offset, temporal
// uniqueness from the counter.
func MakeIV(pageID uint64, pageOffset uint16, counter uint64) IV {
	var iv IV
	binary.LittleEndian.PutUint64(iv[0:8], pageID<<16|uint64(pageOffset))
	binary.LittleEndian.PutUint64(iv[8:16], counter)
	return iv
}

// Engine holds a processor-side encryption key and MAC key. In SGX-like
// designs these are generated at boot inside the processor; here they are
// supplied by the caller so crash-recovery tests can model the persistent
// processor key registers.
type Engine struct {
	block  cipher.Block
	macKey [16]byte
}

// NewEngine creates an engine from a 16-byte AES key and a 16-byte MAC key.
func NewEngine(aesKey, macKey [16]byte) *Engine {
	block, err := aes.NewCipher(aesKey[:])
	if err != nil {
		// aes.NewCipher only fails on invalid key sizes, which the
		// fixed-size array rules out.
		panic("crypt: " + err.Error())
	}
	e := &Engine{block: block}
	e.macKey = macKey
	return e
}

// GeneratePad produces the 64-byte CTR-mode pad for the given IV: four AES
// blocks of (IV with a lane index mixed into the top bits).
func (e *Engine) GeneratePad(iv IV) Pad {
	var pad Pad
	var in, out [16]byte
	for lane := 0; lane < BlockSize/16; lane++ {
		in = iv
		in[15] ^= byte(lane + 1) // lane counter within the 64 B block
		e.block.Encrypt(out[:], in[:])
		copy(pad[lane*16:], out[:])
	}
	return pad
}

// XOR applies pad to the 64-byte line src, writing the result to dst.
// Encryption and decryption are the same operation in counter mode.
// dst and src may alias.
func XOR(dst, src *[BlockSize]byte, pad *Pad) {
	for i := 0; i < BlockSize; i += 8 {
		v := binary.LittleEndian.Uint64(src[i:]) ^ binary.LittleEndian.Uint64(pad[i:])
		binary.LittleEndian.PutUint64(dst[i:], v)
	}
}

// EncryptLine encrypts a 64-byte plaintext line with the pad for iv.
func (e *Engine) EncryptLine(plain [BlockSize]byte, iv IV) [BlockSize]byte {
	pad := e.GeneratePad(iv)
	var out [BlockSize]byte
	XOR(&out, &plain, &pad)
	return out
}

// DecryptLine decrypts a 64-byte ciphertext line with the pad for iv.
func (e *Engine) DecryptLine(ct [BlockSize]byte, iv IV) [BlockSize]byte {
	return e.EncryptLine(ct, iv) // CTR is symmetric
}

// LineMAC computes the 8-byte MAC over (ciphertext, address, counter) as
// in a Bonsai Merkle Tree data MAC: the MT-verifiable counter binds
// freshness, the address binds location, the ciphertext binds content.
func (e *Engine) LineMAC(ct *[BlockSize]byte, addr, counter uint64) MAC {
	h := sha256.New()
	h.Write(e.macKey[:])
	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:8], addr)
	binary.LittleEndian.PutUint64(hdr[8:16], counter)
	h.Write(hdr[:])
	h.Write(ct[:])
	var m MAC
	copy(m[:], h.Sum(nil)[:MACSize])
	return m
}

// NodeMAC computes the 8-byte MAC over an arbitrary node payload plus a
// position tag, used for integrity-tree nodes.
func (e *Engine) NodeMAC(payload []byte, position uint64) MAC {
	h := sha256.New()
	h.Write(e.macKey[:])
	var hdr [8]byte
	binary.LittleEndian.PutUint64(hdr[:], position)
	h.Write(hdr[:])
	h.Write(payload)
	var m MAC
	copy(m[:], h.Sum(nil)[:MACSize])
	return m
}

// ECC computes the 4-byte Osiris-style sanity check over a plaintext line.
// The real Osiris reuses the memory ECC bits; we model them as a small
// digest stored alongside the ciphertext, which plays the same role: a
// check that identifies the correct decryption counter during recovery.
func ECC(plain *[BlockSize]byte) uint32 {
	sum := sha256.Sum256(plain[:])
	return binary.LittleEndian.Uint32(sum[:4])
}
