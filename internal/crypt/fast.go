package crypt

import "encoding/binary"

// FastEngine is the latency-only Provider: every primitive is a cheap
// deterministic stand-in for the functional one. Pads are all-zero (so
// CTR "encryption" is the identity and the simulated device holds the
// plaintext), MACs fold address/position and freshness with a 64-bit
// multiply mix, and the ECC check is an 8-word fold. The stand-ins are
// internally consistent — a value computed at write time reproduces at
// verify time — so every benign-path MAC/ECC comparison in the model
// still passes, while no SHA-256 or AES round is ever executed.
//
// None of this is cryptography: ciphertext leaks plaintext, MACs ignore
// content, tampering is undetectable. The recovery and audit paths
// refuse a non-Functional provider (see masu), and crash.NewDriver
// rejects FastMode configurations outright. Fast mode exists purely to
// measure the timing model — which, by construction (DESIGN.md §14),
// never reads a crypto byte — at full host speed.
type FastEngine struct{}

// NewFastEngine creates the latency-only provider. It is stateless;
// one value may serve any number of units.
func NewFastEngine() *FastEngine { return &FastEngine{} }

// Functional reports that this engine fakes its cryptographic values.
func (*FastEngine) Functional() bool { return false }

// GeneratePad returns the all-zero pad: XOR with it is the identity, so
// fast-mode "ciphertext" equals plaintext everywhere, which keeps the
// functional plumbing (WPQ decrypt-on-read, Ma-SU re-encryption)
// value-consistent without any AES work.
func (*FastEngine) GeneratePad(IV) Pad { return Pad{} }

// GeneratePadInto writes the all-zero pad into *pad.
func (*FastEngine) GeneratePadInto(pad *Pad, _ IV) { *pad = Pad{} }

// EncryptLine returns the line unchanged (zero pad).
func (*FastEngine) EncryptLine(plain [BlockSize]byte, _ IV) [BlockSize]byte { return plain }

// EncryptLineTo copies *src to *dst (zero pad).
func (*FastEngine) EncryptLineTo(dst, src *[BlockSize]byte, _ IV) { *dst = *src }

// DecryptLine returns the line unchanged (zero pad).
func (*FastEngine) DecryptLine(ct [BlockSize]byte, _ IV) [BlockSize]byte { return ct }

// DecryptLineTo copies *src to *dst (zero pad).
func (*FastEngine) DecryptLineTo(dst, src *[BlockSize]byte, _ IV) { *dst = *src }

// mix64 is a SplitMix64-style finalizer: enough diffusion that distinct
// (addr, counter) pairs land on distinct MACs in practice, at three
// multiplies of cost.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// LineMAC binds address and counter only — the ciphertext is ignored,
// which is what makes it O(1). Write and verify see the same
// (addr, counter), so benign verification always passes; content
// tampering passes too, which is why fast mode is barred from the
// attack/recovery suites.
func (*FastEngine) LineMAC(_ *[BlockSize]byte, addr, counter uint64) MAC {
	var m MAC
	binary.LittleEndian.PutUint64(m[:], mix64(addr^mix64(counter)))
	return m
}

// NodeMAC binds position and payload length only, for the same reason
// as LineMAC.
func (*FastEngine) NodeMAC(payload []byte, position uint64) MAC {
	var m MAC
	binary.LittleEndian.PutUint64(m[:], mix64(position^uint64(len(payload))<<48))
	return m
}

// PadBatch zeroes every destination pad (identity encryption).
func (*FastEngine) PadBatch(dst []Pad, ivs []IV) {
	if len(dst) != len(ivs) {
		panic("crypt: PadBatch length mismatch")
	}
	for i := range dst {
		dst[i] = Pad{}
	}
}

// MACBatch applies the LineMAC fold per request.
func (*FastEngine) MACBatch(dst []MAC, reqs []MACReq) {
	if len(dst) != len(reqs) {
		panic("crypt: MACBatch length mismatch")
	}
	for i := range reqs {
		binary.LittleEndian.PutUint64(dst[i][:], mix64(reqs[i].Addr^mix64(reqs[i].Counter)))
	}
}

// LineECC folds the eight 64-bit words of the line through the mix —
// content-dependent (the Osiris probe distinguishes candidate counters
// by decrypted content) but far from collision-resistant.
func (*FastEngine) LineECC(plain *[BlockSize]byte) uint32 {
	var acc uint64
	for i := 0; i < BlockSize; i += 8 {
		acc = mix64(acc ^ binary.LittleEndian.Uint64(plain[i:]))
	}
	return uint32(acc)
}
