package crypt

import "testing"

// The write path computes up to 10 serial MACs and one pad per persisted
// line, so the primitives must stay allocation-free: a single escape per
// call re-inflates GC pressure across every simulated cell. These pins
// are the regression fence for the engine-scratch design (DESIGN.md §12)
// — if a refactor reintroduces a heap path, they fail loudly rather than
// showing up only as a benchmark drift.

func TestLineMACAllocFree(t *testing.T) {
	e := testEngine()
	var ct [BlockSize]byte
	var sink MAC
	allocs := testing.AllocsPerRun(100, func() {
		sink = e.LineMAC(&ct, 0x1000, 7)
	})
	if allocs != 0 {
		t.Fatalf("LineMAC allocates %.1f objects per op, want 0", allocs)
	}
	_ = sink
}

func TestNodeMACAllocFree(t *testing.T) {
	e := testEngine()
	payload := make([]byte, BlockSize)
	var sink MAC
	allocs := testing.AllocsPerRun(100, func() {
		sink = e.NodeMAC(payload, 3)
	})
	if allocs != 0 {
		t.Fatalf("NodeMAC allocates %.1f objects per op, want 0", allocs)
	}
	_ = sink
}

// The Mi-SU's Full-WPQ group MAC is the largest payload in the model;
// it must still fit the engine scratch.
func TestNodeMACGroupPayloadAllocFree(t *testing.T) {
	e := testEngine()
	payload := make([]byte, 576)
	var sink MAC
	allocs := testing.AllocsPerRun(100, func() {
		sink = e.NodeMAC(payload, 1)
	})
	if allocs != 0 {
		t.Fatalf("NodeMAC(576B) allocates %.1f objects per op, want 0", allocs)
	}
	_ = sink
}

func TestGeneratePadAllocFree(t *testing.T) {
	e := testEngine()
	iv := MakeIV(1, 2, 3)
	var sink Pad
	allocs := testing.AllocsPerRun(100, func() {
		sink = e.GeneratePad(iv)
	})
	if allocs != 0 {
		t.Fatalf("GeneratePad allocates %.1f objects per op, want 0", allocs)
	}
	_ = sink
}

// The batched forms flush up to a whole pipeline hand-off per call;
// one allocation per call would still be one per 64 lines, but the pin
// keeps them at exactly zero like their one-shot counterparts.

func TestPadBatchAllocFree(t *testing.T) {
	e := testEngine()
	pads := make([]Pad, 64)
	ivs := make([]IV, 64)
	for i := range ivs {
		ivs[i] = MakeIV(uint64(i), uint16(i), uint64(i))
	}
	allocs := testing.AllocsPerRun(100, func() {
		e.PadBatch(pads, ivs)
	})
	if allocs != 0 {
		t.Fatalf("PadBatch allocates %.1f objects per op, want 0", allocs)
	}
}

func TestMACBatchAllocFree(t *testing.T) {
	e := testEngine()
	cts := make([][BlockSize]byte, 64)
	macs := make([]MAC, 64)
	reqs := make([]MACReq, 64)
	for i := range reqs {
		reqs[i] = MACReq{CT: &cts[i], Addr: uint64(i) << 6, Counter: uint64(i)}
	}
	allocs := testing.AllocsPerRun(100, func() {
		e.MACBatch(macs, reqs)
	})
	if allocs != 0 {
		t.Fatalf("MACBatch allocates %.1f objects per op, want 0", allocs)
	}
}

func TestDispatchBatchAllocFree(t *testing.T) {
	d := AsDispatch(testEngine())
	pads := make([]Pad, 64)
	ivs := make([]IV, 64)
	cts := make([][BlockSize]byte, 64)
	macs := make([]MAC, 64)
	reqs := make([]MACReq, 64)
	for i := range reqs {
		ivs[i] = MakeIV(uint64(i), uint16(i), uint64(i))
		reqs[i] = MACReq{CT: &cts[i], Addr: uint64(i) << 6, Counter: uint64(i)}
	}
	allocs := testing.AllocsPerRun(100, func() {
		d.PadBatch(pads, ivs)
		d.MACBatch(macs, reqs)
	})
	if allocs != 0 {
		t.Fatalf("Dispatch batch calls allocate %.1f objects per op, want 0", allocs)
	}
}

func TestEncryptLineToAllocFree(t *testing.T) {
	e := testEngine()
	var src, dst [BlockSize]byte
	iv := MakeIV(4, 5, 6)
	allocs := testing.AllocsPerRun(100, func() {
		e.EncryptLineTo(&dst, &src, iv)
	})
	if allocs != 0 {
		t.Fatalf("EncryptLineTo allocates %.1f objects per op, want 0", allocs)
	}
}
