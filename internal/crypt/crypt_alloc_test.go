package crypt

import "testing"

// The write path computes up to 10 serial MACs and one pad per persisted
// line, so the primitives must stay allocation-free: a single escape per
// call re-inflates GC pressure across every simulated cell. These pins
// are the regression fence for the engine-scratch design (DESIGN.md §12)
// — if a refactor reintroduces a heap path, they fail loudly rather than
// showing up only as a benchmark drift.

func TestLineMACAllocFree(t *testing.T) {
	e := testEngine()
	var ct [BlockSize]byte
	var sink MAC
	allocs := testing.AllocsPerRun(100, func() {
		sink = e.LineMAC(&ct, 0x1000, 7)
	})
	if allocs != 0 {
		t.Fatalf("LineMAC allocates %.1f objects per op, want 0", allocs)
	}
	_ = sink
}

func TestNodeMACAllocFree(t *testing.T) {
	e := testEngine()
	payload := make([]byte, BlockSize)
	var sink MAC
	allocs := testing.AllocsPerRun(100, func() {
		sink = e.NodeMAC(payload, 3)
	})
	if allocs != 0 {
		t.Fatalf("NodeMAC allocates %.1f objects per op, want 0", allocs)
	}
	_ = sink
}

// The Mi-SU's Full-WPQ group MAC is the largest payload in the model;
// it must still fit the engine scratch.
func TestNodeMACGroupPayloadAllocFree(t *testing.T) {
	e := testEngine()
	payload := make([]byte, 576)
	var sink MAC
	allocs := testing.AllocsPerRun(100, func() {
		sink = e.NodeMAC(payload, 1)
	})
	if allocs != 0 {
		t.Fatalf("NodeMAC(576B) allocates %.1f objects per op, want 0", allocs)
	}
	_ = sink
}

func TestGeneratePadAllocFree(t *testing.T) {
	e := testEngine()
	iv := MakeIV(1, 2, 3)
	var sink Pad
	allocs := testing.AllocsPerRun(100, func() {
		sink = e.GeneratePad(iv)
	})
	if allocs != 0 {
		t.Fatalf("GeneratePad allocates %.1f objects per op, want 0", allocs)
	}
	_ = sink
}

func TestEncryptLineToAllocFree(t *testing.T) {
	e := testEngine()
	var src, dst [BlockSize]byte
	iv := MakeIV(4, 5, 6)
	allocs := testing.AllocsPerRun(100, func() {
		e.EncryptLineTo(&dst, &src, iv)
	})
	if allocs != 0 {
		t.Fatalf("EncryptLineTo allocates %.1f objects per op, want 0", allocs)
	}
}
