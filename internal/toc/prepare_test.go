package toc

import "testing"

func TestPrepareInstallMatchesUpdate(t *testing.T) {
	direct := newTestTree(512)
	staged := newTestTree(512)
	for i := byte(0); i < 20; i++ {
		idx := uint64(i) * 25 % 512
		img := leafImg(i)
		macD, _ := direct.UpdateLeaf(idx, &img)
		ups, macS, rootVer := staged.PrepareUpdate(idx, &img)
		staged.InstallUpdate(ups, rootVer)
		if macD != macS {
			t.Fatalf("leaf MACs diverged at write %d", i)
		}
		if direct.RootVersion() != staged.RootVersion() {
			t.Fatalf("root versions diverged at write %d", i)
		}
		if err := staged.VerifyLeaf(idx, &img, macS); err != nil {
			t.Fatalf("staged leaf does not verify: %v", err)
		}
	}
}

func TestPrepareDoesNotMutate(t *testing.T) {
	tr := newTestTree(512)
	img := leafImg(1)
	mac, _ := tr.UpdateLeaf(7, &img)
	ver := tr.RootVersion()
	img2 := leafImg(2)
	ups, _, newVer := tr.PrepareUpdate(7, &img2)
	if tr.RootVersion() != ver {
		t.Fatal("Prepare moved the root version")
	}
	if err := tr.VerifyLeaf(7, &img, mac); err != nil {
		t.Fatalf("Prepare disturbed live state: %v", err)
	}
	if newVer != ver+1 || len(ups) != tr.Levels() {
		t.Fatalf("prepared update malformed: ver=%d nodes=%d", newVer, len(ups))
	}
}

func TestAccessors(t *testing.T) {
	tr := newTestTree(512)
	if tr.Leaves() != 512 {
		t.Fatal("Leaves wrong")
	}
	img := leafImg(1)
	tr.UpdateLeaf(0, &img)
	if tr.Updates() != 1 || tr.MACOps() == 0 {
		t.Fatal("counters wrong")
	}
}
