package toc

import (
	"testing"
	"testing/quick"

	"dolos/internal/crypt"
	"dolos/internal/nvm"
)

func newTestTree(leaves uint64) *Tree {
	var aesKey, macKey [16]byte
	copy(macKey[:], "toc-test-mac-key")
	eng := crypt.NewEngine(aesKey, macKey)
	dev := nvm.NewDevice(nil, 1<<30, 0)
	return New(eng, dev, 1<<24, leaves)
}

func leafImg(seed byte) [64]byte {
	var img [64]byte
	for i := range img {
		img[i] = seed ^ byte(i*3)
	}
	return img
}

func TestNodeEncodeDecodeRoundTrip(t *testing.T) {
	f := func(vers [Arity]uint64, mac [8]byte) bool {
		var n Node
		for i, v := range vers {
			n.Versions[i] = v & (1<<56 - 1)
		}
		n.MAC = crypt.MAC(mac)
		return DecodeNode(n.Encode()) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateAdvancesAllVersions(t *testing.T) {
	tr := newTestTree(512) // levels: 64, 8, 1
	img := leafImg(1)
	root0 := tr.RootVersion()
	_, res := tr.UpdateLeaf(100, &img)
	if tr.RootVersion() != root0+1 {
		t.Fatalf("root version %d, want %d", tr.RootVersion(), root0+1)
	}
	if res.SerialMACs != 1 {
		t.Fatalf("serial MACs = %d, want 1 (parallel engines)", res.SerialMACs)
	}
	if res.MACs != tr.Levels()+1 {
		t.Fatalf("total MACs = %d, want %d", res.MACs, tr.Levels()+1)
	}
}

func TestVerifyAfterUpdate(t *testing.T) {
	tr := newTestTree(512)
	img := leafImg(2)
	mac, _ := tr.UpdateLeaf(7, &img)
	if err := tr.VerifyLeaf(7, &img, mac); err != nil {
		t.Fatalf("verify failed: %v", err)
	}
	bad := leafImg(3)
	if err := tr.VerifyLeaf(7, &bad, mac); err == nil {
		t.Fatal("tampered image accepted")
	}
}

func TestReplayOldMACDetected(t *testing.T) {
	tr := newTestTree(512)
	img1 := leafImg(1)
	mac1, _ := tr.UpdateLeaf(7, &img1)
	img2 := leafImg(2)
	tr.UpdateLeaf(7, &img2)
	// Replaying the old image + old MAC must fail: the version moved.
	if err := tr.VerifyLeaf(7, &img1, mac1); err == nil {
		t.Fatal("replay of old image+MAC accepted")
	}
}

func TestVersionChainToRoot(t *testing.T) {
	tr := newTestTree(512)
	img := leafImg(4)
	mac, _ := tr.UpdateLeaf(0, &img)
	tr.PersistAll()
	// Clear the dirty set so verification walks the full chain.
	tr.DropVolatile()
	if err := tr.VerifyLeafFull(0, &img, mac); err != nil {
		t.Fatalf("full verify after persist failed: %v", err)
	}
}

func TestCrashWithoutShadowFails(t *testing.T) {
	tr := newTestTree(512)
	img1 := leafImg(1)
	tr.UpdateLeaf(3, &img1)
	tr.PersistAll()
	img2 := leafImg(2)
	mac2, _ := tr.UpdateLeaf(3, &img2) // not persisted
	tr.DropVolatile()
	if err := tr.VerifyLeafFull(3, &img2, mac2); err == nil {
		t.Fatal("stale NVM ToC accepted against advanced root version")
	}
}

func TestShadowRestoreRecovers(t *testing.T) {
	tr := newTestTree(512)
	img1 := leafImg(1)
	tr.UpdateLeaf(3, &img1)
	tr.PersistAll()
	img2 := leafImg(2)
	mac2, _ := tr.UpdateLeaf(3, &img2)

	type saved struct {
		level int
		index uint64
		img   [NodeSize]byte
	}
	var shadow []saved
	for _, d := range tr.DirtyNodes() {
		shadow = append(shadow, saved{int(d[0]), d[1], tr.NodeImage(int(d[0]), d[1])})
	}
	tr.DropVolatile()
	for _, s := range shadow {
		tr.RestoreNode(s.level, s.index, s.img)
	}
	if err := tr.VerifyLeafFull(3, &img2, mac2); err != nil {
		t.Fatalf("shadow-recovered ToC rejected current image: %v", err)
	}
}

func TestIndependentLeaves(t *testing.T) {
	tr := newTestTree(512)
	a, b := leafImg(1), leafImg(2)
	macA, _ := tr.UpdateLeaf(10, &a)
	macB, _ := tr.UpdateLeaf(400, &b)
	if err := tr.VerifyLeaf(10, &a, macA); err != nil {
		t.Fatalf("leaf 10: %v", err)
	}
	if err := tr.VerifyLeaf(400, &b, macB); err != nil {
		t.Fatalf("leaf 400: %v", err)
	}
	// Swapping images across leaves must fail (relocation).
	if err := tr.VerifyLeaf(10, &b, macB); err == nil {
		t.Fatal("relocated leaf accepted")
	}
}

func TestRegionAndAddrs(t *testing.T) {
	tr := newTestTree(512)
	if tr.RegionBytes() != (64+8+1)*NodeSize {
		t.Fatalf("RegionBytes = %d", tr.RegionBytes())
	}
	if tr.NodeNVMAddr(1, 0) == tr.NodeNVMAddr(2, 0) {
		t.Fatal("level regions overlap")
	}
}

func TestManyUpdatesProperty(t *testing.T) {
	tr := newTestTree(256)
	f := func(idx uint8, img [64]byte) bool {
		mac, _ := tr.UpdateLeaf(uint64(idx), &img)
		return tr.VerifyLeaf(uint64(idx), &img, mac) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
