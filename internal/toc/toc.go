// Package toc implements an SGX-style 8-ary Tree of Counters (ToC)
// protecting the encryption-counter region, as used for Dolos' lazy-update
// experiments (Section 5.4). Each interior node holds 8 version counters
// — one per child — and an 8-byte MAC computed over the node's versions
// and the node's own version stored in its parent. Version increments
// propagate to the root on every update, but the MAC recomputation of all
// levels can run in parallel given parallel MAC engines (the paper assumes
// parallel AES-GCM units), which is why the serial-latency cost charged by
// the timing model is lower than an eager Merkle tree.
//
// For crash consistency a lazily-updated ToC cannot rely on an eager
// persistent root alone (inter-level dependencies); Phoenix therefore
// protects the metadata cache with a small eagerly-updated shadow Merkle
// tree. Here the shadow protection is modeled by the same shadow-tracking
// interface the Ma-SU uses for the BMT: dirty node images are captured and
// replayed at recovery, then verified against the persistent root version.
package toc

import (
	"encoding/binary"
	"fmt"

	"dolos/internal/crypt"
	"dolos/internal/dense"
	"dolos/internal/nvm"
)

// Arity is the tree fan-out.
const Arity = 8

// NodeSize is the serialized node size: 8 versions of 7 bytes + 8-byte MAC.
const NodeSize = 64

// versionMask limits versions to 56 bits so they fit the packed layout.
const versionMask = 1<<56 - 1

// Node is one ToC node: per-child version counters plus the node MAC.
type Node struct {
	Versions [Arity]uint64 // 56-bit values
	MAC      crypt.MAC
}

// Encode packs the node into its 64-byte NVM image.
func (n *Node) Encode() [NodeSize]byte {
	var out [NodeSize]byte
	for i, v := range n.Versions {
		var tmp [8]byte
		binary.LittleEndian.PutUint64(tmp[:], v&versionMask)
		copy(out[i*7:i*7+7], tmp[:7])
	}
	copy(out[56:], n.MAC[:])
	return out
}

// DecodeNode unpacks a 64-byte image.
func DecodeNode(img [NodeSize]byte) Node {
	var n Node
	for i := range n.Versions {
		var tmp [8]byte
		copy(tmp[:7], img[i*7:i*7+7])
		n.Versions[i] = binary.LittleEndian.Uint64(tmp[:])
	}
	copy(n.MAC[:], img[56:])
	return n
}

// Tree is the Tree of Counters over `leaves` counter blocks. The root
// version register is persistent in-processor state; everything else
// lives in the volatile overlay until persisted.
type Tree struct {
	eng      crypt.Dispatch
	dev      *nvm.Device
	nodeBase uint64
	leaves   uint64
	counts   []uint64
	offsets  []uint64

	// volatile[l] and dirty[l] mirror the bmt layout: per-level dense
	// tables over node index (slot 0 unused), replacing the former
	// map[{level,index}] lookups (DESIGN.md §12).
	volatile   []*dense.Table[*Node]
	dirty      []*dense.Table[bool]
	dirtyCount int
	rootVer    uint64 // persistent root version register

	macOps  uint64
	updates uint64
}

// New creates a ToC over `leaves` leaf blocks with interior nodes stored
// at nodeBase in dev.
func New(eng crypt.Provider, dev *nvm.Device, nodeBase uint64, leaves uint64) *Tree {
	if leaves == 0 {
		panic("toc: zero leaves")
	}
	t := &Tree{
		eng:      crypt.AsDispatch(eng),
		dev:      dev,
		nodeBase: nodeBase,
		leaves:   leaves,
	}
	t.counts = []uint64{leaves}
	n := leaves
	for n > 1 {
		n = (n + Arity - 1) / Arity
		t.counts = append(t.counts, n)
	}
	t.offsets = make([]uint64, len(t.counts))
	var off uint64
	for l := 1; l < len(t.counts); l++ {
		t.offsets[l] = off
		off += t.counts[l] * NodeSize
	}
	t.volatile = make([]*dense.Table[*Node], len(t.counts))
	t.dirty = make([]*dense.Table[bool], len(t.counts))
	for l := 1; l < len(t.counts); l++ {
		t.volatile[l] = dense.NewTable[*Node](t.counts[l])
		t.dirty[l] = dense.NewTable[bool](t.counts[l])
	}
	return t
}

// markDirty flags (level, index) as newer in the overlay than in NVM.
func (t *Tree) markDirty(level int, index uint64) {
	p := t.dirty[level].Ptr(index)
	if !*p {
		*p = true
		t.dirtyCount++
	}
}

// Levels returns the number of interior levels.
func (t *Tree) Levels() int { return len(t.counts) - 1 }

// Leaves returns the number of leaf slots.
func (t *Tree) Leaves() uint64 { return t.leaves }

// RootVersion returns the persistent root version register.
func (t *Tree) RootVersion() uint64 { return t.rootVer }

// MACOps returns cumulative MAC computations (each parallelizable).
func (t *Tree) MACOps() uint64 { return t.macOps }

// Updates returns the number of leaf updates.
func (t *Tree) Updates() uint64 { return t.updates }

// RegionBytes returns NVM bytes needed for interior nodes.
func (t *Tree) RegionBytes() uint64 {
	var total uint64
	for l := 1; l < len(t.counts); l++ {
		total += t.counts[l] * NodeSize
	}
	return total
}

// NodeNVMAddr returns the NVM home of node (level, index).
func (t *Tree) NodeNVMAddr(level int, index uint64) uint64 {
	if level < 1 || level >= len(t.counts) {
		panic(fmt.Sprintf("toc: bad level %d", level))
	}
	return t.nodeBase + t.offsets[level] + index*NodeSize
}

func (t *Tree) node(level int, index uint64) *Node {
	slot := t.volatile[level].Ptr(index)
	if *slot == nil {
		img := t.dev.ReadLine(t.NodeNVMAddr(level, index))
		decoded := DecodeNode(img)
		*slot = &decoded
	}
	return *slot
}

// parentVersion returns the version of node (level, index) as recorded in
// its parent — or the root register for the top node.
func (t *Tree) parentVersion(level int, index uint64) uint64 {
	if level == len(t.counts)-1 {
		return t.rootVer
	}
	return t.node(level+1, index/Arity).Versions[index%Arity]
}

func position(level int, index uint64) uint64 { return uint64(level)<<56 | index }

// nodeMAC computes a node's MAC over its versions and its parent version.
func (t *Tree) nodeMAC(level int, index uint64, n *Node, parentVer uint64) crypt.MAC {
	t.macOps++
	var buf [Arity*8 + 8]byte
	for i, v := range n.Versions {
		binary.LittleEndian.PutUint64(buf[i*8:], v)
	}
	binary.LittleEndian.PutUint64(buf[Arity*8:], parentVer)
	return t.eng.NodeMAC(buf[:], position(level, index))
}

// leafMAC binds a leaf image to its version in the level-1 node.
func (t *Tree) leafMAC(index uint64, image *[64]byte, version uint64) crypt.MAC {
	t.macOps++
	var buf [72]byte
	copy(buf[:64], image[:])
	binary.LittleEndian.PutUint64(buf[64:], version)
	return t.eng.NodeMAC(buf[:], position(0, index))
}

// UpdateResult describes one ToC update for the timing model.
type UpdateResult struct {
	// MACs is the total MAC computations (all parallelizable).
	MACs int
	// SerialMACs is the critical-path MAC count assuming parallel
	// engines: 1 (all levels update concurrently).
	SerialMACs int
}

// UpdateLeaf records a new image for leaf `index`: every version along
// the path increments (including the root register) and every affected
// node MAC is recomputed. With parallel MAC engines the serial cost is a
// single MAC latency. The leaf MAC is returned for storage alongside the
// leaf (the caller persists it with the counter block).
func (t *Tree) UpdateLeaf(index uint64, image *[64]byte) (crypt.MAC, UpdateResult) {
	if index >= t.leaves {
		panic(fmt.Sprintf("toc: leaf %d out of range", index))
	}
	t.updates++
	before := t.macOps

	// Increment versions bottom-up first (cheap counter bumps).
	child := index
	for level := 1; level < len(t.counts); level++ {
		n := t.node(level, child/Arity)
		n.Versions[child%Arity] = (n.Versions[child%Arity] + 1) & versionMask
		t.markDirty(level, child/Arity)
		child /= Arity
	}
	t.rootVer++

	// Recompute MACs (parallelizable across levels).
	leafM := t.leafMAC(index, image, t.node(1, index/Arity).Versions[index%Arity])
	child = index
	for level := 1; level < len(t.counts); level++ {
		idx := child / Arity
		n := t.node(level, idx)
		n.MAC = t.nodeMAC(level, idx, n, t.parentVersion(level, idx))
		child = idx
	}
	return leafM, UpdateResult{MACs: int(t.macOps - before), SerialMACs: 1}
}

// NodeUpdate is one node image produced by PrepareUpdate.
type NodeUpdate struct {
	Level int
	Index uint64
	Node  Node
}

// PrepareUpdate computes — without installing — the node states and root
// version that UpdateLeaf(index, image) would produce, for the Ma-SU
// redo-log step. InstallUpdate applies them.
func (t *Tree) PrepareUpdate(index uint64, image *[64]byte) ([]NodeUpdate, crypt.MAC, uint64) {
	return t.AppendUpdate(make([]NodeUpdate, 0, len(t.counts)-1), index, image)
}

// AppendUpdate is PrepareUpdate appending into a caller-owned slice
// (which must be passed with length 0 — the path arithmetic indexes
// ups from the slice start), so a steady-state writer reuses one
// backing array across writes.
func (t *Tree) AppendUpdate(dst []NodeUpdate, index uint64, image *[64]byte) ([]NodeUpdate, crypt.MAC, uint64) {
	if index >= t.leaves {
		panic(fmt.Sprintf("toc: leaf %d out of range", index))
	}
	// Build copies with incremented versions along the path.
	ups := dst
	child := index
	for level := 1; level < len(t.counts); level++ {
		n := *t.node(level, child/Arity)
		n.Versions[child%Arity] = (n.Versions[child%Arity] + 1) & versionMask
		ups = append(ups, NodeUpdate{Level: level, Index: child / Arity, Node: n})
		child /= Arity
	}
	newRoot := t.rootVer + 1

	parentVer := func(level int, index uint64) uint64 {
		if level == len(t.counts)-1 {
			return newRoot
		}
		// The parent is the next entry in ups (same path).
		return ups[level].Node.Versions[index%Arity]
	}
	leafM := t.leafMAC(index, image, ups[0].Node.Versions[index%Arity])
	for i := range ups {
		up := &ups[i]
		up.Node.MAC = t.nodeMAC(up.Level, up.Index, &up.Node, parentVer(up.Level, up.Index))
	}
	return ups, leafM, newRoot
}

// InstallUpdate applies a prepared update and advances the root register.
func (t *Tree) InstallUpdate(ups []NodeUpdate, rootVer uint64) {
	t.updates++
	for i := range ups {
		up := &ups[i]
		slot := t.volatile[up.Level].Ptr(up.Index)
		if *slot == nil {
			*slot = new(Node)
		}
		**slot = up.Node
		t.markDirty(up.Level, up.Index)
	}
	t.rootVer = rootVer
}

// VerifyLeaf checks a leaf image and its stored MAC against the version
// chain up to the root register. Dirty (on-chip) nodes short-circuit the
// walk exactly as in the BMT.
func (t *Tree) VerifyLeaf(index uint64, image *[64]byte, stored crypt.MAC) error {
	return t.verify(index, image, stored, true)
}

// VerifyLeafFull is the recovery-time variant with no trusted-cache
// short-circuit.
func (t *Tree) VerifyLeafFull(index uint64, image *[64]byte, stored crypt.MAC) error {
	return t.verify(index, image, stored, false)
}

func (t *Tree) verify(index uint64, image *[64]byte, stored crypt.MAC, trustCached bool) error {
	ver := t.node(1, index/Arity).Versions[index%Arity]
	if got := t.leafMAC(index, image, ver); got != stored {
		return fmt.Errorf("toc: leaf %d MAC mismatch (version %d)", index, ver)
	}
	if trustCached && t.dirty[1].Get(index/Arity) {
		return nil
	}
	child := index
	for level := 1; level < len(t.counts); level++ {
		idx := child / Arity
		n := t.node(level, idx)
		want := t.nodeMAC(level, idx, n, t.parentVersion(level, idx))
		if n.MAC != want {
			return fmt.Errorf("toc: node MAC mismatch at level %d index %d", level, idx)
		}
		if trustCached && level+1 < len(t.counts) && t.dirty[level+1].Get(idx/Arity) {
			return nil
		}
		child = idx
	}
	return nil
}

// PersistNode writes node (level, index) to NVM.
func (t *Tree) PersistNode(level int, index uint64) {
	if level < 1 || level >= len(t.counts) {
		return
	}
	n := t.volatile[level].Get(index)
	if n == nil {
		return
	}
	t.dev.WriteLine(t.NodeNVMAddr(level, index), n.Encode())
	if t.dirty[level].Get(index) {
		t.dirty[level].Set(index, false)
		t.dirtyCount--
	}
}

// PersistAll writes every live node to NVM (clean shutdown), level by
// level in ascending index order.
func (t *Tree) PersistAll() {
	for l := 1; l < len(t.counts); l++ {
		t.volatile[l].Range(func(idx uint64, n **Node) bool {
			if *n != nil {
				t.PersistNode(l, idx)
			}
			return true
		})
	}
}

// DirtyNodes lists nodes newer than their NVM copies (shadow tracker).
func (t *Tree) DirtyNodes() [][2]uint64 {
	out := make([][2]uint64, 0, t.dirtyCount)
	for l := 1; l < len(t.counts); l++ {
		t.dirty[l].Range(func(idx uint64, d *bool) bool {
			if *d {
				out = append(out, [2]uint64{uint64(l), idx})
			}
			return true
		})
	}
	return out
}

// NodeImage returns the live image of node (level, index).
func (t *Tree) NodeImage(level int, index uint64) [NodeSize]byte {
	return t.node(level, index).Encode()
}

// RestoreNode installs a node image (shadow replay during recovery).
func (t *Tree) RestoreNode(level int, index uint64, img [NodeSize]byte) {
	slot := t.volatile[level].Ptr(index)
	if *slot == nil {
		*slot = new(Node)
	}
	**slot = DecodeNode(img)
	t.markDirty(level, index)
}

// DropVolatile models power failure.
func (t *Tree) DropVolatile() {
	for l := 1; l < len(t.counts); l++ {
		t.volatile[l].Reset()
		t.dirty[l].Reset()
	}
	t.dirtyCount = 0
}
