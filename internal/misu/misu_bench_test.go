package misu

import "testing"

func benchProtect(b *testing.B, d Design) {
	u, _ := newUnit(d, d.Entries(16))
	p := line(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot := u.Protect(uint64(i%8+1)*64, p)
		if d == PostWPQ {
			u.CompleteDeferredMAC(slot)
		}
		u.Queue().Clear(slot)
	}
}

func BenchmarkProtectFull(b *testing.B)    { benchProtect(b, FullWPQ) }
func BenchmarkProtectPartial(b *testing.B) { benchProtect(b, PartialWPQ) }
func BenchmarkProtectPost(b *testing.B)    { benchProtect(b, PostWPQ) }

func BenchmarkDrainRecover(b *testing.B) {
	p := line(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		u, _ := newUnit(PartialWPQ, 13)
		for j := uint64(1); j <= 13; j++ {
			u.Protect(j*64, p)
		}
		b.StartTimer()
		u.Drain()
		if _, err := u.Recover(); err != nil {
			b.Fatal(err)
		}
	}
}
