package misu

// Model check for the Mi-SU: random protect / Ma-SU-style clear / drain /
// recover sequences across all three designs, with an oracle of the
// writes that must be recoverable at any instant — those still live in
// the WPQ plus those already handed to the Ma-SU.

import (
	"math/rand"
	"testing"
)

func TestModelCheckMiSU(t *testing.T) {
	for _, d := range []Design{FullWPQ, PartialWPQ, PostWPQ} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(d) + 7))
			u, _ := newUnit(d, d.Entries(16))
			// drained[addr] = last value the Ma-SU consumed (cleared);
			// liveOracle[addr] = value still owed by the WPQ.
			liveOracle := map[uint64][64]byte{}
			addrs := make([]uint64, 12)
			for i := range addrs {
				addrs[i] = uint64(i+1) * 64
			}
			randLine := func() [64]byte {
				var l [64]byte
				rng.Read(l[:])
				return l
			}
			completePending := func() {
				for i := 0; i < u.Queue().Size(); i++ {
					if u.Queue().Entry(i).MACPending {
						u.CompleteDeferredMAC(i)
					}
				}
			}

			for step := 0; step < 2500; step++ {
				switch op := rng.Intn(100); {
				case op < 50: // protect a write
					addr := addrs[rng.Intn(len(addrs))]
					if !u.CanAccept(addr) {
						if u.DeferredPending() {
							completePending()
						}
						if !u.CanAccept(addr) {
							continue
						}
					}
					val := randLine()
					slot := u.Protect(addr, val)
					liveOracle[addr] = val
					// Decrypt-verify immediately: the slot must hold it.
					if a, p := u.DecryptSlot(slot); a != addr || (!u.Queue().Entry(slot).MACPending && p != val) {
						t.Fatalf("step %d: slot round-trip failed", step)
					}
				case op < 75: // Ma-SU consumes the oldest entry
					completePending()
					slot, ok := u.Queue().FetchOldest()
					if !ok {
						continue
					}
					u.Queue().MarkFetched(slot)
					addr, plain := u.DecryptSlot(slot)
					if want, ok := liveOracle[addr]; ok && plain != want {
						t.Fatalf("step %d: Ma-SU fetched stale data for %#x", step, addr)
					}
					u.Queue().Clear(slot)
					delete(liveOracle, addr)
				default: // power failure: drain + recover
					completePending()
					st := u.Drain()
					if st.DeferredMACs > 1 {
						t.Fatalf("step %d: %d deferred MACs on ADR power", step, st.DeferredMACs)
					}
					rec, err := u.Recover()
					if err != nil {
						t.Fatalf("step %d: recovery: %v", step, err)
					}
					got := map[uint64][64]byte{}
					for _, w := range rec {
						got[w.Addr] = w.Plain
					}
					for addr, want := range liveOracle {
						g, ok := got[addr]
						if !ok {
							t.Fatalf("step %d: live write %#x not recovered", step, addr)
						}
						if g != want {
							t.Fatalf("step %d: recovered stale data for %#x", step, addr)
						}
					}
					// Everything recovered is handed to the Ma-SU.
					liveOracle = map[uint64][64]byte{}
				}
			}
		})
	}
}
