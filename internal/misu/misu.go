// Package misu implements the Minor Security Unit: the lightweight
// security engine that protects the contents of the ADR-backed WPQ so that
// on power failure the queue can be flushed to NVM as-is, within the
// standard ADR energy budget, while remaining confidential and
// integrity-verifiable (Section 4.3 of the paper).
//
// Three designs are provided:
//
//   - Full-WPQ: counter-mode encryption with per-slot pre-generated pads
//     plus a two-level Merkle tree over the whole WPQ (two MAC
//     computations per insert; the full queue is usable; only the WPQ
//     contents are drained on a crash).
//   - Partial-WPQ: a BMT-style per-entry MAC over (ciphertext, counter)
//     (one MAC per insert; MACs are drained alongside entries, so 8/9 of
//     the queue is usable).
//   - Post-WPQ: as Partial, but the MAC is computed after the write
//     commits; ADR reserves energy for at most one deferred MAC, further
//     shrinking the usable queue (near-zero insert latency).
//
// Addresses are kept in plaintext, per the paper's Section 4.5 option: an
// adversary observes addresses on the bus regardless, so encrypting them
// adds no security.
package misu

import (
	"encoding/binary"
	"errors"
	"fmt"

	"dolos/internal/crypt"
	"dolos/internal/nvm"
	"dolos/internal/sim"
	"dolos/internal/wpq"
)

// Design selects the Mi-SU scheme.
type Design int

const (
	// FullWPQ is Design Option 1 (Figure 8).
	FullWPQ Design = iota
	// PartialWPQ is Design Option 2 (Figure 9).
	PartialWPQ
	// PostWPQ is Design Option 3 (Figure 10).
	PostWPQ
)

// String returns the paper's name for the design.
func (d Design) String() string {
	switch d {
	case FullWPQ:
		return "Full-WPQ-MiSU"
	case PartialWPQ:
		return "Partial-WPQ-MiSU"
	case PostWPQ:
		return "Post-WPQ-MiSU"
	}
	return fmt.Sprintf("Design(%d)", int(d))
}

// Entries returns the usable WPQ entry count for the design given the
// hardware queue size (Section 5.2.1: 16 / 13 / 10 for a 16-entry WPQ):
// Partial reserves 1/9 of the queue for drained MACs, Post additionally
// reserves ADR energy equivalent to one MAC computation over ~3 entries.
func (d Design) Entries(hardware int) int {
	switch d {
	case FullWPQ:
		return hardware
	case PartialWPQ:
		n := hardware * 8 / 9
		if n < 1 {
			n = 1
		}
		return n
	case PostWPQ:
		n := hardware*8/9 - 3
		if n < 1 {
			n = 1
		}
		return n
	}
	panic("misu: unknown design")
}

// InsertLatency is the critical-path latency added before a write is
// considered persisted: Full = XOR + 2 MACs, Partial = XOR + 1 MAC,
// Post = XOR only.
func (d Design) InsertLatency() sim.Cycle {
	switch d {
	case FullWPQ:
		return crypt.XORLatency + 2*crypt.MACLatency
	case PartialWPQ:
		return crypt.XORLatency + crypt.MACLatency
	case PostWPQ:
		return crypt.XORLatency
	}
	panic("misu: unknown design")
}

// groupSize is the Full-WPQ tree fan-in: 8 entries per L1 MAC.
const groupSize = 8

// wpqPageTag namespaces WPQ pad IVs away from memory-line IVs.
const wpqPageTag = uint64(1) << 44

// drainHeaderSize is the bookkeeping prefix of the drain region: the
// 8-byte live bitmap (the queue's valid bits, which a hardware ADR flush
// carries implicitly with the buffer). Same-line write ordering (see
// wpq.MustWait) guarantees at most one live entry per line, so replay
// order needs no further metadata.
const drainHeaderSize = 8

// RecoveredWrite is one write restored from a drained WPQ image.
type RecoveredWrite struct {
	Addr  uint64
	Plain [64]byte
}

// Unit is one Mi-SU instance bound to a WPQ.
type Unit struct {
	design Design
	eng    crypt.Dispatch
	queue  *wpq.Queue
	dev    *nvm.Device
	base   uint64 // NVM drain region

	// Persistent in-processor state (survives power failure).
	counterReg uint64
	root       crypt.MAC         // Full-WPQ tree root register
	l1         map[int]crypt.MAC // Full-WPQ L1 MAC registers (persistent)

	// Volatile state, regenerated at boot.
	pads []crypt.Pad

	deferredPending bool
	macOps          uint64
	drains          uint64

	// costOnly marks a timing-stage twin (parallel-DES): queue
	// bookkeeping, slot sequencing and MAC-op accounting are exact, but
	// no pad, ciphertext or MAC byte is ever computed — the shadow stage
	// owns the functional Mi-SU. Drain and Recover are unreachable here
	// (crash drivers reject ParallelDES) and panic if called.
	costOnly bool

	// onProtect, when non-nil, observes each successful insertion
	// (telemetry). Purely observational.
	onProtect func(slot int, addr uint64)
}

// New creates a Mi-SU of the given design over a fresh WPQ with `entries`
// usable slots, draining to the NVM region at base. The region must hold
// DrainRegionBytes(entries).
func New(design Design, eng crypt.Provider, dev *nvm.Device, base uint64, entries int) *Unit {
	u := &Unit{
		design: design,
		eng:    crypt.AsDispatch(eng),
		queue:  wpq.New(entries),
		dev:    dev,
		base:   base,
		l1:     make(map[int]crypt.MAC),
	}
	u.regeneratePads()
	u.initFullTree()
	return u
}

// NewCostOnly creates a timing-stage Mi-SU twin: identical queue
// behavior (slot allocation, sequencing, coalescing, same-line
// ordering) and MAC-op counts, zero crypto work and no device. Protect
// commits entries with zero ciphertext, DecryptSlot returns a zero
// line, and the drain/recovery surface panics (guarded off upstream).
func NewCostOnly(design Design, entries int) *Unit {
	return &Unit{
		design:   design,
		queue:    wpq.New(entries),
		costOnly: true,
	}
}

// CostOnly reports whether this unit is a timing-stage twin.
func (u *Unit) CostOnly() bool { return u.costOnly }

// initFullTree establishes the Full-WPQ tree over the empty queue so that
// recovery's full rebuild matches the register state even when some
// groups were never written this epoch. Runs at boot alongside pad
// pre-generation, off any critical path.
func (u *Unit) initFullTree() {
	if u.design != FullWPQ {
		return
	}
	groups := (u.queue.Size() + groupSize - 1) / groupSize
	for g := 0; g < groups; g++ {
		u.l1[g] = u.groupMAC(g)
	}
	u.root = u.rootMAC()
}

// DrainRegionBytes returns the NVM bytes needed to drain a queue of the
// given size: header + per-slot 72-byte records + MAC blocks.
func DrainRegionBytes(entries int) uint64 {
	macBlocks := (entries + 7) / 8
	return drainHeaderSize + uint64(entries)*wpq.EntryDataSize + uint64(macBlocks)*64
}

// ErrFastMode reports a recovery attempted on a latency-only crypto
// provider: the drained image's MACs are fakes, so verifying them
// checks nothing.
var ErrFastMode = errors.New("misu: recovery requires the functional crypto provider (fast mode computes latency-only MACs)")

// Design returns the unit's design.
func (u *Unit) Design() Design { return u.design }

// Queue exposes the underlying WPQ (for the controller and statistics).
func (u *Unit) Queue() *wpq.Queue { return u.queue }

// CounterRegister returns the persistent counter register value.
func (u *Unit) CounterRegister() uint64 { return u.counterReg }

// MACOps returns the number of MAC computations performed by the Mi-SU.
func (u *Unit) MACOps() uint64 { return u.macOps }

// Drains returns the number of ADR drain events executed.
func (u *Unit) Drains() uint64 { return u.drains }

// DeferredPending reports whether a Post-WPQ deferred MAC is outstanding.
func (u *Unit) DeferredPending() bool { return u.deferredPending }

// SetProtectHook installs (or with nil removes) the insertion observer,
// invoked after each successful Protect with the slot and line address.
func (u *Unit) SetProtectHook(fn func(slot int, addr uint64)) { u.onProtect = fn }

// regeneratePads derives the per-slot pads from the persistent counter
// register. Slot pads are only exposed externally once (at a drain), after
// which the register advances, so pad reuse is never visible off-chip.
func (u *Unit) regeneratePads() {
	u.pads = make([]crypt.Pad, u.queue.Size())
	for i := range u.pads {
		iv := crypt.MakeIV(wpqPageTag, uint16(i), u.counterReg+uint64(i))
		u.pads[i] = u.eng.GeneratePad(iv)
	}
}

// slotCounter returns the encryption counter bound to slot i this epoch.
func (u *Unit) slotCounter(i int) uint64 { return u.counterReg + uint64(i) }

// entryMAC computes the Partial/Post per-entry MAC over the ciphertext,
// address, and slot counter.
func (u *Unit) entryMAC(cipher *[64]byte, addr, counter uint64) crypt.MAC {
	u.macOps++
	return u.eng.LineMAC(cipher, addr^wpqPageTag, counter)
}

// CanAccept reports whether a new write can enter the persistence domain
// right now: the queue has space and, for Post-WPQ, no deferred MAC is
// outstanding.
func (u *Unit) CanAccept(addr uint64) bool {
	if u.design == PostWPQ && u.deferredPending {
		return false
	}
	if u.queue.MustWait(addr) {
		// The line's current entry is mid-pipeline: same-line write
		// ordering stalls the new value until the old one clears.
		return false
	}
	if u.queue.CanCoalesce(addr) {
		return true
	}
	return !u.queue.Full()
}

// Protect inserts a write into the WPQ under the design's scheme and
// returns the slot used. The caller must have checked CanAccept; the
// latency to charge is Design().InsertLatency(). For Post-WPQ the entry is
// committed immediately with its MAC pending; the caller later invokes
// CompleteDeferredMAC (after MACLatency) to finish it.
func (u *Unit) Protect(addr uint64, plain [64]byte) int {
	slot, _, ok := u.queue.Allocate(addr)
	if !ok {
		panic("misu: Protect called on full queue")
	}
	e := wpq.Entry{
		Addr:    addr,
		Counter: u.slotCounter(slot),
		Valid:   true,
	}
	if !u.costOnly {
		crypt.XOR(&e.Cipher, &plain, &u.pads[slot])
	}
	switch u.design {
	case FullWPQ:
		u.queue.Commit(slot, e)
		if u.costOnly {
			u.macOps += 2 // group + root recompute
		} else {
			u.updateTree(slot)
		}
	case PartialWPQ:
		if u.costOnly {
			u.macOps++
		} else {
			e.MAC = u.entryMAC(&e.Cipher, addr, e.Counter)
		}
		u.queue.Commit(slot, e)
	case PostWPQ:
		e.MACPending = true
		u.queue.Commit(slot, e)
		u.deferredPending = true
	}
	if u.onProtect != nil {
		u.onProtect(slot, addr)
	}
	return slot
}

// CompleteDeferredMAC finishes a Post-WPQ entry's deferred MAC.
func (u *Unit) CompleteDeferredMAC(slot int) {
	if u.design != PostWPQ {
		panic("misu: deferred MAC on non-Post design")
	}
	e := u.queue.Entry(slot)
	if u.costOnly {
		u.macOps++
	} else {
		e.MAC = u.entryMAC(&e.Cipher, e.Addr, e.Counter)
	}
	e.MACPending = false
	u.queue.Commit(slot, e)
	u.deferredPending = false
}

// updateTree recomputes the Full-WPQ L1 MAC of slot's group and the root
// (the two MAC computations of Figure 8 steps 2-3).
func (u *Unit) updateTree(slot int) {
	group := slot / groupSize
	u.l1[group] = u.groupMAC(group)
	u.root = u.rootMAC()
}

// groupMAC MACs the concatenated (addr, cipher) records of one L1 group.
func (u *Unit) groupMAC(group int) crypt.MAC {
	u.macOps++
	buf := make([]byte, 0, groupSize*wpq.EntryDataSize)
	for i := group * groupSize; i < (group+1)*groupSize && i < u.queue.Size(); i++ {
		e := u.queue.Entry(i)
		var hdr [8]byte
		binary.LittleEndian.PutUint64(hdr[:], e.Addr)
		buf = append(buf, hdr[:]...)
		buf = append(buf, e.Cipher[:]...)
	}
	return u.eng.NodeMAC(buf, wpqPageTag|uint64(group))
}

// rootMAC MACs the L1 MAC registers together with the counter register,
// binding the tree to this drain epoch.
func (u *Unit) rootMAC() crypt.MAC {
	u.macOps++
	groups := (u.queue.Size() + groupSize - 1) / groupSize
	// Fixed-capacity stack buffer: a variable-capacity make escapes and
	// this runs on every Full-WPQ insert. 16 groups covers a 128-entry
	// WPQ; larger ablations spill to one append re-allocation, with the
	// identical byte stream either way.
	var stack [16*crypt.MACSize + 8]byte
	buf := stack[:0]
	for g := 0; g < groups; g++ {
		m := u.l1[g]
		buf = append(buf, m[:]...)
	}
	var reg [8]byte
	binary.LittleEndian.PutUint64(reg[:], u.counterReg)
	buf = append(buf, reg[:]...)
	return u.eng.NodeMAC(buf, wpqPageTag|1<<16)
}

// DecryptSlot returns the plaintext line and address of a live slot (the
// Ma-SU's Figure 11 step 1, or a WPQ read hit): a single XOR.
func (u *Unit) DecryptSlot(slot int) (addr uint64, plain [64]byte) {
	e := u.queue.Entry(slot)
	if u.costOnly {
		// The timing stage never carries data bytes; the XOR's cycle is
		// charged by the caller either way.
		return e.Addr, plain
	}
	crypt.XOR(&plain, &e.Cipher, &u.pads[slot])
	return e.Addr, plain
}

// DrainStats accounts the ADR energy spent by a drain, for budget audits.
type DrainStats struct {
	// EntriesWritten is the number of 72-byte slot records flushed.
	EntriesWritten int
	// MACBlocksWritten is the number of 64-byte MAC blocks flushed
	// (Partial/Post only).
	MACBlocksWritten int
	// DeferredMACs is the number of MAC computations performed on ADR
	// power (at most 1, Post only).
	DeferredMACs int
}

// Drain flushes the WPQ image to the NVM drain region on a power failure.
// Per the paper, the drain path performs no security work beyond writing
// the already-protected contents — except Post-WPQ's single reserved
// deferred MAC, completed here on ADR power.
func (u *Unit) Drain() DrainStats {
	if u.costOnly {
		panic("misu: Drain on a cost-only unit (crash drivers reject ParallelDES)")
	}
	u.drains++
	var st DrainStats
	if u.design == PostWPQ && u.deferredPending {
		// Finish the one outstanding deferred MAC using reserved ADR.
		for i := 0; i < u.queue.Size(); i++ {
			if u.queue.Entry(i).MACPending {
				u.CompleteDeferredMAC(i)
				st.DeferredMACs++
			}
		}
	}

	var bitmap uint64
	var hdr [drainHeaderSize]byte
	macs := make([]crypt.MAC, u.queue.Size())
	for i := 0; i < u.queue.Size(); i++ {
		e := u.queue.Entry(i)
		if e.Valid && !e.Cleared {
			bitmap |= 1 << uint(i)
		}
		var rec [wpq.EntryDataSize]byte
		binary.LittleEndian.PutUint64(rec[:8], e.Addr)
		copy(rec[8:], e.Cipher[:])
		u.dev.Write(u.base+drainHeaderSize+uint64(i)*wpq.EntryDataSize, rec[:])
		st.EntriesWritten++
		macs[i] = e.MAC
	}
	binary.LittleEndian.PutUint64(hdr[:], bitmap)
	u.dev.Write(u.base, hdr[:])

	if u.design != FullWPQ {
		macBase := u.base + drainHeaderSize + uint64(u.queue.Size())*wpq.EntryDataSize
		blocks := (u.queue.Size() + 7) / 8
		for b := 0; b < blocks; b++ {
			var blk [64]byte
			for j := 0; j < 8; j++ {
				i := b*8 + j
				if i < len(macs) {
					copy(blk[j*8:], macs[i][:])
				}
			}
			u.dev.Write(macBase+uint64(b)*64, blk[:])
			st.MACBlocksWritten++
		}
	}
	return st
}

// RecoveryError reports an integrity failure while recovering the WPQ.
type RecoveryError struct {
	Slot   int
	Reason string
}

// Error implements the error interface.
func (e *RecoveryError) Error() string {
	return fmt.Sprintf("misu: WPQ recovery failed at slot %d: %s", e.Slot, e.Reason)
}

// Recover reads the drained WPQ image back at boot, verifies its
// integrity against the persistent in-processor state, and returns the
// decrypted live writes in fetch order for the Ma-SU to replay. On
// success the counter register advances past this epoch and fresh pads
// are generated (Section 4.3, Recovery scheme).
func (u *Unit) Recover() ([]RecoveredWrite, error) {
	if u.costOnly {
		panic("misu: Recover on a cost-only unit (crash drivers reject ParallelDES)")
	}
	if !u.eng.Functional() {
		return nil, ErrFastMode
	}
	var hdr [drainHeaderSize]byte
	u.dev.Read(u.base, hdr[:])
	bitmap := binary.LittleEndian.Uint64(hdr[:])

	type slotRec struct {
		addr   uint64
		cipher [64]byte
	}
	recs := make([]slotRec, u.queue.Size())
	for i := range recs {
		var rec [wpq.EntryDataSize]byte
		u.dev.Read(u.base+drainHeaderSize+uint64(i)*wpq.EntryDataSize, rec[:])
		recs[i].addr = binary.LittleEndian.Uint64(rec[:8])
		copy(recs[i].cipher[:], rec[8:])
	}

	switch u.design {
	case FullWPQ:
		// Rebuild the two-level tree over the read-back image and
		// compare with the persistent root register.
		groups := (u.queue.Size() + groupSize - 1) / groupSize
		l1 := make([]crypt.MAC, groups)
		for g := 0; g < groups; g++ {
			buf := make([]byte, 0, groupSize*wpq.EntryDataSize)
			for i := g * groupSize; i < (g+1)*groupSize && i < len(recs); i++ {
				var hdr8 [8]byte
				binary.LittleEndian.PutUint64(hdr8[:], recs[i].addr)
				buf = append(buf, hdr8[:]...)
				buf = append(buf, recs[i].cipher[:]...)
			}
			u.macOps++
			l1[g] = u.eng.NodeMAC(buf, wpqPageTag|uint64(g))
		}
		buf := make([]byte, 0, groups*crypt.MACSize+8)
		for _, m := range l1 {
			buf = append(buf, m[:]...)
		}
		var reg [8]byte
		binary.LittleEndian.PutUint64(reg[:], u.counterReg)
		buf = append(buf, reg[:]...)
		u.macOps++
		if got := u.eng.NodeMAC(buf, wpqPageTag|1<<16); got != u.root {
			return nil, &RecoveryError{Slot: -1, Reason: "WPQ tree root mismatch"}
		}
	default:
		// Verify each live entry's MAC with the internally-derived
		// counter; forging requires replaying the in-processor register,
		// which is impossible (Section 4.3, Design Option 2).
		macBase := u.base + drainHeaderSize + uint64(u.queue.Size())*wpq.EntryDataSize
		for i := range recs {
			if bitmap&(1<<uint(i)) == 0 {
				continue
			}
			var stored crypt.MAC
			u.dev.Read(macBase+uint64(i/8)*64+uint64(i%8)*8, stored[:])
			if got := u.entryMAC(&recs[i].cipher, recs[i].addr, u.slotCounter(i)); got != stored {
				return nil, &RecoveryError{Slot: i, Reason: "entry MAC mismatch"}
			}
		}
	}

	// Decrypt live entries with pads regenerated from the old register.
	// At most one live entry exists per line (same-line write ordering),
	// so slot order is a safe replay order.
	var out []RecoveredWrite
	for i := range recs {
		if bitmap&(1<<uint(i)) == 0 {
			continue
		}
		iv := crypt.MakeIV(wpqPageTag, uint16(i), u.slotCounter(i))
		pad := u.eng.GeneratePad(iv)
		var plain [64]byte
		crypt.XOR(&plain, &recs[i].cipher, &pad)
		out = append(out, RecoveredWrite{Addr: recs[i].addr, Plain: plain})
	}

	// Advance the epoch: the old pads have now been exposed once and are
	// never reused.
	u.counterReg += uint64(u.queue.Size())
	u.regeneratePads()
	u.queue.Reset()
	u.deferredPending = false
	u.l1 = make(map[int]crypt.MAC)
	u.root = crypt.MAC{}
	u.initFullTree()
	return out, nil
}

// StorageOverhead describes the Mi-SU's register/SRAM cost (Table 3).
type StorageOverhead struct {
	PersistentCounterBytes int
	MACRegisterBytes       int
	PadBytes               int
	TagArrayBytes          int
}

// Storage returns the Table 3 storage accounting for this unit.
func (u *Unit) Storage() StorageOverhead {
	n := u.queue.Size()
	var macBytes int
	switch u.design {
	case FullWPQ:
		groups := (n + groupSize - 1) / groupSize
		macBytes = (groups + 1) * crypt.MACSize // L1 registers + root
	default:
		macBytes = n * crypt.MACSize // per-entry MACs stored in the queue
	}
	return StorageOverhead{
		PersistentCounterBytes: 8,
		MACRegisterBytes:       macBytes,
		PadBytes:               n * crypt.BlockSize,
		TagArrayBytes:          n * 8,
	}
}
