package misu

import "testing"

func TestMultiEpochCounterUniqueness(t *testing.T) {
	// Across many drain/recover epochs, the counter assigned to a given
	// slot must never repeat — the property that makes pad reuse
	// invisible off-chip.
	u, _ := newUnit(PartialWPQ, 4)
	seen := map[uint64]bool{}
	for epoch := 0; epoch < 10; epoch++ {
		slot := u.Protect(0x1000, line(byte(epoch)))
		ctr := u.Queue().Entry(slot).Counter
		if seen[ctr] {
			t.Fatalf("counter %d reused in epoch %d", ctr, epoch)
		}
		seen[ctr] = true
		u.Drain()
		if _, err := u.Recover(); err != nil {
			t.Fatalf("epoch %d recovery: %v", epoch, err)
		}
	}
	if u.CounterRegister() != 40 {
		t.Fatalf("register = %d after 10 epochs of size 4", u.CounterRegister())
	}
}

func TestDrainWithFetchedEntries(t *testing.T) {
	// An entry the Ma-SU has fetched but not cleared is still live: it
	// must be drained and recovered (the paper's double-write case).
	u, _ := newUnit(PartialWPQ, 8)
	s := u.Protect(0x1000, line(1))
	u.Queue().MarkFetched(s)
	u.Drain()
	rec, err := u.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 1 || rec[0].Addr != 0x1000 || rec[0].Plain != line(1) {
		t.Fatalf("fetched-but-uncleared entry not recovered: %+v", rec)
	}
}

func TestPostDeferredAcrossCoalesce(t *testing.T) {
	u, _ := newUnit(PostWPQ, 8)
	s1 := u.Protect(0x1000, line(1))
	u.CompleteDeferredMAC(s1)
	// Coalesce into the same entry; the new data needs a fresh deferred
	// MAC and blocks further accepts until completed.
	s2 := u.Protect(0x1000, line(2))
	if s2 != s1 {
		t.Fatalf("coalesce used new slot %d", s2)
	}
	if !u.DeferredPending() {
		t.Fatal("coalesced Post write has no deferred MAC")
	}
	u.CompleteDeferredMAC(s2)
	u.Drain()
	rec, err := u.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 1 || rec[0].Plain != line(2) {
		t.Fatal("coalesced Post entry recovered stale data")
	}
}

func TestRecoverIsFreshEpoch(t *testing.T) {
	u, _ := newUnit(FullWPQ, 8)
	u.Protect(0x1000, line(1))
	u.Drain()
	if _, err := u.Recover(); err != nil {
		t.Fatal(err)
	}
	// New epoch: queue empty, tree re-initialized, drain+recover of the
	// empty state must verify cleanly.
	if u.Queue().Live() != 0 {
		t.Fatal("queue not empty after recovery")
	}
	u.Drain()
	rec, err := u.Recover()
	if err != nil || len(rec) != 0 {
		t.Fatalf("fresh-epoch empty recovery: %v %v", rec, err)
	}
}

func TestTamperedMACBlockDetected(t *testing.T) {
	u, dev := newUnit(PartialWPQ, 8)
	u.Protect(0x1000, line(1))
	u.Drain()
	// Flip a bit inside the drained MAC block region.
	macBase := uint64(1<<20) + 8 + 8*72
	b := make([]byte, 1)
	dev.Read(macBase, b)
	b[0] ^= 1
	dev.Write(macBase, b)
	if _, err := u.Recover(); err == nil {
		t.Fatal("tampered MAC block accepted")
	}
}

func TestFullWPQRootBindsCounterRegister(t *testing.T) {
	// Two units with identical content but different counter registers
	// must have different roots: the register binds the drain epoch.
	u1, _ := newUnit(FullWPQ, 4)
	u2, _ := newUnit(FullWPQ, 4)
	u2.Drain()
	if _, err := u2.Recover(); err != nil { // advances u2's register
		t.Fatal(err)
	}
	u1.Protect(0x1000, line(1))
	u2.Protect(0x1000, line(1))
	if u1.root == u2.root {
		t.Fatal("roots equal across epochs: replaying an old drained image would verify")
	}
}

func TestStorageScalesWithEntries(t *testing.T) {
	small, _ := newUnit(PartialWPQ, 4)
	big, _ := newUnit(PartialWPQ, 32)
	if small.Storage().PadBytes >= big.Storage().PadBytes {
		t.Fatal("pad storage does not scale with entries")
	}
	if small.Storage().PersistentCounterBytes != big.Storage().PersistentCounterBytes {
		t.Fatal("persistent counter register should not scale")
	}
}

func TestDecryptSlotMatchesProtect(t *testing.T) {
	u, _ := newUnit(FullWPQ, 8)
	for i := byte(0); i < 8; i++ {
		slot := u.Protect(uint64(i+1)*64, line(i))
		addr, plain := u.DecryptSlot(slot)
		if addr != uint64(i+1)*64 || plain != line(i) {
			t.Fatalf("slot %d decrypt mismatch", slot)
		}
	}
}
