package misu

import (
	"testing"
	"testing/quick"

	"dolos/internal/crypt"
	"dolos/internal/nvm"
)

func newUnit(d Design, entries int) (*Unit, *nvm.Device) {
	var aesKey, macKey [16]byte
	copy(aesKey[:], "misu-aes-key-016")
	copy(macKey[:], "misu-mac-key-016")
	eng := crypt.NewEngine(aesKey, macKey)
	dev := nvm.NewDevice(nil, 1<<26, 0)
	return New(d, eng, dev, 1<<20, entries), dev
}

func line(seed byte) [64]byte {
	var l [64]byte
	for i := range l {
		l[i] = seed + byte(i*7)
	}
	return l
}

func TestDesignEntries(t *testing.T) {
	if FullWPQ.Entries(16) != 16 || PartialWPQ.Entries(16) != 14 || PostWPQ.Entries(16) != 11 {
		t.Fatalf("entries: %d/%d/%d", FullWPQ.Entries(16), PartialWPQ.Entries(16), PostWPQ.Entries(16))
	}
	// The paper's quoted sizes (16/13/10) come from its own rounding; we
	// must stay within one entry of them.
	for _, tc := range []struct {
		d    Design
		want int
	}{{FullWPQ, 16}, {PartialWPQ, 13}, {PostWPQ, 10}} {
		got := tc.d.Entries(16)
		if got < tc.want-1 || got > tc.want+1 {
			t.Fatalf("%v: entries(16) = %d, paper says %d", tc.d, got, tc.want)
		}
	}
}

func TestInsertLatencies(t *testing.T) {
	if FullWPQ.InsertLatency() != 321 || PartialWPQ.InsertLatency() != 161 || PostWPQ.InsertLatency() != 1 {
		t.Fatalf("latencies: %d/%d/%d",
			FullWPQ.InsertLatency(), PartialWPQ.InsertLatency(), PostWPQ.InsertLatency())
	}
}

func TestDesignString(t *testing.T) {
	if FullWPQ.String() != "Full-WPQ-MiSU" || Design(9).String() == "" {
		t.Fatal("bad design names")
	}
}

func TestProtectEncrypts(t *testing.T) {
	u, _ := newUnit(PartialWPQ, 8)
	plain := line(1)
	slot := u.Protect(0x1000, plain)
	e := u.Queue().Entry(slot)
	if e.Cipher == plain {
		t.Fatal("WPQ entry stored in plaintext")
	}
	addr, back := u.DecryptSlot(slot)
	if addr != 0x1000 || back != plain {
		t.Fatal("DecryptSlot did not recover the write")
	}
}

func TestDrainRecoverRoundTrip(t *testing.T) {
	for _, d := range []Design{FullWPQ, PartialWPQ, PostWPQ} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			u, _ := newUnit(d, 8)
			writes := map[uint64][64]byte{
				0x1000: line(1), 0x2040: line(2), 0x3080: line(3),
			}
			for a, p := range writes {
				if !u.CanAccept(a) {
					// Post-WPQ: complete the deferred MAC first.
					for i := 0; i < u.Queue().Size(); i++ {
						if u.Queue().Entry(i).MACPending {
							u.CompleteDeferredMAC(i)
						}
					}
				}
				u.Protect(a, p)
			}
			st := u.Drain()
			if st.EntriesWritten != 8 {
				t.Fatalf("drained %d slot records", st.EntriesWritten)
			}
			rec, err := u.Recover()
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			if len(rec) != len(writes) {
				t.Fatalf("recovered %d writes, want %d", len(rec), len(writes))
			}
			for _, r := range rec {
				if want, ok := writes[r.Addr]; !ok || r.Plain != want {
					t.Fatalf("recovered wrong data at %#x", r.Addr)
				}
			}
		})
	}
}

func TestADRBudgetCompliance(t *testing.T) {
	// Full-WPQ drains no MAC blocks and computes no MACs on ADR power;
	// Partial drains MAC blocks but computes none; Post computes at most
	// one.
	uf, _ := newUnit(FullWPQ, 8)
	uf.Protect(0x40, line(1))
	before := uf.MACOps()
	st := uf.Drain()
	if st.MACBlocksWritten != 0 || st.DeferredMACs != 0 || uf.MACOps() != before {
		t.Fatalf("Full-WPQ drain did security work: %+v", st)
	}

	up, _ := newUnit(PartialWPQ, 8)
	up.Protect(0x40, line(1))
	before = up.MACOps()
	st = up.Drain()
	if st.MACBlocksWritten != 1 || st.DeferredMACs != 0 || up.MACOps() != before {
		t.Fatalf("Partial-WPQ drain: %+v", st)
	}

	uo, _ := newUnit(PostWPQ, 8)
	uo.Protect(0x40, line(1)) // deferred MAC left pending
	st = uo.Drain()
	if st.DeferredMACs != 1 {
		t.Fatalf("Post-WPQ drain deferred MACs = %d, want 1", st.DeferredMACs)
	}
}

func TestPostWPQBusyUntilDeferredDone(t *testing.T) {
	u, _ := newUnit(PostWPQ, 8)
	u.Protect(0x40, line(1))
	if u.CanAccept(0x80) {
		t.Fatal("Post-WPQ accepted a write with a deferred MAC pending")
	}
	for i := 0; i < u.Queue().Size(); i++ {
		if u.Queue().Entry(i).MACPending {
			u.CompleteDeferredMAC(i)
		}
	}
	if !u.CanAccept(0x80) {
		t.Fatal("Post-WPQ still busy after deferred MAC completed")
	}
}

func TestTamperedDrainDetected(t *testing.T) {
	for _, d := range []Design{FullWPQ, PartialWPQ} {
		d := d
		t.Run(d.String(), func(t *testing.T) {
			u, dev := newUnit(d, 8)
			u.Protect(0x1000, line(1))
			u.Drain()
			// Spoof: flip a byte in the drained slot-0 ciphertext.
			addr := uint64(1<<20) + drainHeaderSize + 8
			b := make([]byte, 1)
			dev.Read(addr, b)
			b[0] ^= 0xFF
			dev.Write(addr, b)
			if _, err := u.Recover(); err == nil {
				t.Fatal("tampered WPQ image accepted")
			}
		})
	}
}

func TestRelocatedDrainEntryDetected(t *testing.T) {
	u, dev := newUnit(PartialWPQ, 8)
	u.Protect(0x1000, line(1))
	u.Protect(0x2000, line(2))
	u.Drain()
	// Swap the two slot records (relocation attack).
	base := uint64(1 << 20)
	r0 := make([]byte, 72)
	r1 := make([]byte, 72)
	dev.Read(base+drainHeaderSize, r0)
	dev.Read(base+drainHeaderSize+72, r1)
	dev.Write(base+drainHeaderSize, r1)
	dev.Write(base+drainHeaderSize+72, r0)
	if _, err := u.Recover(); err == nil {
		t.Fatal("relocated WPQ entries accepted")
	}
}

func TestCounterRegisterAdvances(t *testing.T) {
	u, _ := newUnit(PartialWPQ, 8)
	u.Protect(0x1000, line(1))
	u.Drain()
	if _, err := u.Recover(); err != nil {
		t.Fatal(err)
	}
	if u.CounterRegister() != 8 {
		t.Fatalf("counter register = %d, want 8 (advanced by WPQ size)", u.CounterRegister())
	}
	// The same slot now encrypts with a different pad.
	slot := u.Protect(0x1000, line(1))
	e2 := u.Queue().Entry(slot)
	if e2.Counter != 8+uint64(slot) {
		t.Fatalf("new epoch counter = %d", e2.Counter)
	}
}

func TestPadUniquenessAcrossEpochs(t *testing.T) {
	u, _ := newUnit(PartialWPQ, 4)
	plain := line(9)
	slot := u.Protect(0x1000, plain)
	c1 := u.Queue().Entry(slot).Cipher
	u.Drain()
	if _, err := u.Recover(); err != nil {
		t.Fatal(err)
	}
	slot2 := u.Protect(0x1000, plain)
	c2 := u.Queue().Entry(slot2).Cipher
	if slot == slot2 && c1 == c2 {
		t.Fatal("same plaintext in same slot produced same ciphertext across drains")
	}
}

func TestClearedEntrySkippedAtRecovery(t *testing.T) {
	u, _ := newUnit(PartialWPQ, 8)
	s := u.Protect(0x1000, line(1))
	u.Protect(0x2000, line(2))
	u.Queue().Clear(s) // Ma-SU finished this one
	u.Drain()
	rec, err := u.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 1 || rec[0].Addr != 0x2000 {
		t.Fatalf("recovered %v, want only 0x2000", rec)
	}
}

func TestEmptyRecover(t *testing.T) {
	for _, d := range []Design{FullWPQ, PartialWPQ, PostWPQ} {
		u, _ := newUnit(d, 8)
		u.Drain()
		rec, err := u.Recover()
		if err != nil || len(rec) != 0 {
			t.Fatalf("%v: empty recover -> %v, %v", d, rec, err)
		}
	}
}

func TestCoalescingReusesSlot(t *testing.T) {
	u, _ := newUnit(PartialWPQ, 4)
	s1 := u.Protect(0x1000, line(1))
	s2 := u.Protect(0x1000, line(2))
	if s1 != s2 {
		t.Fatalf("coalescing used new slot %d != %d", s2, s1)
	}
	_, plain := u.DecryptSlot(s2)
	if plain != line(2) {
		t.Fatal("coalesced entry holds stale data")
	}
	if u.Queue().Live() != 1 {
		t.Fatalf("live = %d", u.Queue().Live())
	}
}

func TestStorageOverheadTable3(t *testing.T) {
	for _, tc := range []struct {
		d       Design
		entries int
	}{{FullWPQ, 16}, {PartialWPQ, 13}, {PostWPQ, 10}} {
		u, _ := newUnit(tc.d, tc.entries)
		st := u.Storage()
		if st.PersistentCounterBytes != 8 {
			t.Fatalf("%v: counter bytes %d", tc.d, st.PersistentCounterBytes)
		}
		if st.PadBytes != tc.entries*64 {
			t.Fatalf("%v: pad bytes %d", tc.d, st.PadBytes)
		}
		if st.TagArrayBytes != tc.entries*8 {
			t.Fatalf("%v: tag bytes %d", tc.d, st.TagArrayBytes)
		}
		if st.MACRegisterBytes == 0 {
			t.Fatalf("%v: zero MAC storage", tc.d)
		}
	}
}

func TestDrainRegionBytes(t *testing.T) {
	// 8-byte bitmap header + slot records + MAC blocks.
	if DrainRegionBytes(16) != 8+16*72+2*64 {
		t.Fatalf("DrainRegionBytes(16) = %d", DrainRegionBytes(16))
	}
}

func TestRecoveryRoundTripProperty(t *testing.T) {
	// Property: any set of distinct-address writes survives drain+recover
	// bit-exactly under every design.
	f := func(seeds []byte) bool {
		for _, d := range []Design{FullWPQ, PartialWPQ, PostWPQ} {
			u, _ := newUnit(d, 8)
			want := map[uint64][64]byte{}
			for i, s := range seeds {
				if i >= 6 {
					break
				}
				addr := uint64(i+1) * 64
				p := line(s)
				if d == PostWPQ && u.DeferredPending() {
					for j := 0; j < u.Queue().Size(); j++ {
						if u.Queue().Entry(j).MACPending {
							u.CompleteDeferredMAC(j)
						}
					}
				}
				u.Protect(addr, p)
				want[addr] = p
			}
			u.Drain()
			rec, err := u.Recover()
			if err != nil || len(rec) != len(want) {
				return false
			}
			for _, r := range rec {
				if want[r.Addr] != r.Plain {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
