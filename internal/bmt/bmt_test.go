package bmt

import (
	"testing"
	"testing/quick"

	"dolos/internal/crypt"
	"dolos/internal/nvm"
)

func newTestTree(leaves uint64) (*Tree, *nvm.Device) {
	var aesKey, macKey [16]byte
	copy(macKey[:], "bmt-test-mac-key")
	eng := crypt.NewEngine(aesKey, macKey)
	dev := nvm.NewDevice(nil, 1<<30, 0)
	return New(eng, dev, 1<<24, leaves), dev
}

func leafImg(seed byte) [64]byte {
	var img [64]byte
	for i := range img {
		img[i] = seed + byte(i)
	}
	return img
}

func TestGeometry16GB(t *testing.T) {
	// 16 GB data -> 4M counter blocks as leaves.
	tree, _ := newTestTree(4 << 20)
	if tree.Levels() != 8 {
		t.Fatalf("levels = %d, want 8 (so eager update = 9 MACs + 1 data MAC = paper's 10)", tree.Levels())
	}
}

func TestEagerUpdateReachesRoot(t *testing.T) {
	tree, _ := newTestTree(64)
	img := leafImg(1)
	macs := tree.UpdateLeaf(5, &img, Eager)
	if macs != tree.Levels()+1 {
		t.Fatalf("eager update took %d MACs, want %d", macs, tree.Levels()+1)
	}
	root1 := tree.Root()
	img2 := leafImg(2)
	tree.UpdateLeaf(5, &img2, Eager)
	if tree.Root() == root1 {
		t.Fatal("root unchanged after leaf update")
	}
}

func TestVerifyAfterUpdate(t *testing.T) {
	tree, _ := newTestTree(64)
	img := leafImg(3)
	tree.UpdateLeaf(7, &img, Eager)
	if _, err := tree.VerifyLeaf(7, &img); err != nil {
		t.Fatalf("verify of just-written leaf failed: %v", err)
	}
	bad := leafImg(4)
	if _, err := tree.VerifyLeaf(7, &bad); err == nil {
		t.Fatal("verify accepted a tampered leaf")
	}
}

func TestVerifyUntouchedZeroLeaf(t *testing.T) {
	tree, _ := newTestTree(64)
	img := leafImg(5)
	tree.UpdateLeaf(0, &img, Eager)
	var zero [64]byte
	if _, err := tree.VerifyLeaf(9, &zero); err != nil {
		t.Fatalf("zero-leaf convention broken: %v", err)
	}
	// A nonzero image in an untouched slot must NOT verify.
	nz := leafImg(6)
	if _, err := tree.VerifyLeaf(9, &nz); err == nil {
		t.Fatal("nonzero image accepted for untouched leaf")
	}
}

func TestPersistAndCrashDetectsStaleness(t *testing.T) {
	tree, _ := newTestTree(64)
	img1 := leafImg(1)
	tree.UpdateLeaf(3, &img1, Eager)
	tree.PersistAll()
	img2 := leafImg(2)
	tree.UpdateLeaf(3, &img2, Eager) // root now reflects img2; NVM still img1's nodes
	tree.DropVolatile()
	// Full verify against the persistent root register must reject the
	// stale NVM path (this is why Anubis shadow-tracking is needed).
	if _, err := tree.VerifyLeafFull(3, &img2); err == nil {
		t.Fatal("stale NVM tree accepted against updated root")
	}
	// And the old image fails too: the root moved on.
	if _, err := tree.VerifyLeafFull(3, &img1); err == nil {
		t.Fatal("old image accepted against updated root")
	}
}

func TestShadowRestoreRecovers(t *testing.T) {
	tree, _ := newTestTree(64)
	img1 := leafImg(1)
	tree.UpdateLeaf(3, &img1, Eager)
	tree.PersistAll()
	img2 := leafImg(2)
	tree.UpdateLeaf(3, &img2, Eager)

	// Anubis: capture dirty node images (the shadow region contents).
	type saved struct {
		level int
		index uint64
		img   [NodeSize]byte
	}
	var shadow []saved
	for _, d := range tree.DirtyNodes() {
		shadow = append(shadow, saved{int(d[0]), d[1], tree.NodeImage(int(d[0]), d[1])})
	}

	tree.DropVolatile()
	for _, s := range shadow {
		tree.RestoreNode(s.level, s.index, s.img)
	}
	if _, err := tree.VerifyLeafFull(3, &img2); err != nil {
		t.Fatalf("shadow-restored tree rejects current image: %v", err)
	}
}

func TestLazyUpdateDefersRoot(t *testing.T) {
	tree, _ := newTestTree(512) // 512 leaves -> levels 64,8,1 = 3 interior
	img := leafImg(7)
	root0 := tree.Root()
	macs := tree.UpdateLeaf(100, &img, Lazy)
	if macs != 1 {
		t.Fatalf("lazy update took %d MACs, want 1 (leaf only)", macs)
	}
	if tree.Root() != root0 {
		t.Fatal("lazy update moved the root")
	}
	// Run-time verify succeeds via the trusted cached parent.
	if _, err := tree.VerifyLeaf(100, &img); err != nil {
		t.Fatalf("lazy run-time verify failed: %v", err)
	}
	// After propagation the full path verifies against the root.
	tree.PropagateDirty()
	if _, err := tree.VerifyLeafFull(100, &img); err != nil {
		t.Fatalf("post-propagation full verify failed: %v", err)
	}
}

func TestRebuildFromLeavesMatchesRoot(t *testing.T) {
	tree, _ := newTestTree(128)
	images := map[uint64][64]byte{}
	for _, idx := range []uint64{0, 9, 63, 127} {
		img := leafImg(byte(idx))
		images[idx] = img
		tree.UpdateLeaf(idx, &img, Eager)
	}
	// Osiris slow path: rebuild from recovered leaves on a fresh tree
	// sharing the same NVM (here: fresh overlay).
	tree.DropVolatile()
	// NVM has no interior nodes persisted; rebuild purely from leaves.
	got := tree.RebuildFromLeaves(images)
	if got != tree.Root() {
		t.Fatalf("rebuilt root %x != register root %x", got, tree.Root())
	}
}

func TestRebuildDetectsTamperedLeaf(t *testing.T) {
	tree, _ := newTestTree(128)
	img := leafImg(1)
	tree.UpdateLeaf(5, &img, Eager)
	tree.DropVolatile()
	tampered := leafImg(99)
	got := tree.RebuildFromLeaves(map[uint64][64]byte{5: tampered})
	if got == tree.Root() {
		t.Fatal("rebuild with tampered leaf matched root")
	}
}

func TestNodeAddressesDisjoint(t *testing.T) {
	tree, _ := newTestTree(4096)
	seen := map[uint64]bool{}
	for level := 1; level <= tree.Levels(); level++ {
		for idx := uint64(0); idx < 4; idx++ {
			a := tree.NodeNVMAddr(level, idx)
			if seen[a] {
				t.Fatalf("node address %#x reused", a)
			}
			seen[a] = true
		}
	}
}

func TestRegionBytes(t *testing.T) {
	tree, _ := newTestTree(64)
	// 64 leaves -> interior: 8 nodes + 1 node = 9 * 64 bytes.
	if got := tree.RegionBytes(); got != 9*NodeSize {
		t.Fatalf("RegionBytes = %d, want %d", got, 9*NodeSize)
	}
}

func TestUpdateVerifyProperty(t *testing.T) {
	// Property: any written image verifies; any different image fails.
	tree, _ := newTestTree(256)
	f := func(idx uint16, a, b [64]byte) bool {
		i := uint64(idx) % 256
		tree.UpdateLeaf(i, &a, Eager)
		if _, err := tree.VerifyLeaf(i, &a); err != nil {
			return false
		}
		if a == b {
			return true
		}
		_, err := tree.VerifyLeaf(i, &b)
		return err != nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestVerifyErrorMessage(t *testing.T) {
	tree, _ := newTestTree(64)
	img := leafImg(1)
	tree.UpdateLeaf(1, &img, Eager)
	bad := leafImg(2)
	_, err := tree.VerifyLeaf(1, &bad)
	ve, ok := err.(*VerifyError)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if ve.Error() == "" || ve.Level != 0 {
		t.Fatalf("unexpected VerifyError: %+v", ve)
	}
}
