// Package bmt implements the 8-ary Bonsai Merkle Tree protecting the
// encryption-counter region. Leaves are 64-byte counter blocks; each
// internal node holds the 8-byte MACs of its 8 children; the root MAC
// lives in a persistent in-processor register (the AGIT scheme of Anubis:
// the root is updated eagerly and persistently on every write, interior
// nodes are updated in the volatile metadata cache and persisted lazily).
//
// Sparse convention: an all-zero parent slot denotes a never-initialized
// child whose image is all zeroes. This lets a 16 GB tree exist without
// materializing untouched subtrees, while preserving verification
// semantics for every block that has ever been written.
package bmt

import (
	"fmt"

	"dolos/internal/crypt"
	"dolos/internal/dense"
	"dolos/internal/nvm"
)

// Arity is the tree fan-out.
const Arity = 8

// NodeSize is the NVM size of one interior node (8 child MACs).
const NodeSize = Arity * crypt.MACSize

// UpdateMode selects how interior levels are maintained.
type UpdateMode int

const (
	// Eager updates every level up to and including the root on each
	// leaf update (required for crash-consistent Merkle Trees).
	Eager UpdateMode = iota
	// Lazy updates only the leaf's parent; upper levels are refreshed
	// when a dirty node is evicted from the metadata cache. Usable for
	// conventional memory, unsafe alone for persistent memory (kept for
	// the comparison experiments).
	Lazy
)

// String returns the mode name.
func (m UpdateMode) String() string {
	if m == Eager {
		return "eager"
	}
	return "lazy"
}

// Tree is the Bonsai Merkle Tree state machine. Interior node images live
// in a volatile overlay (the metadata cache's architectural content) and
// are persisted to an NVM region on demand; the root register is modeled
// as persistent (battery-backed processor register, as in AGIT).
type Tree struct {
	eng      crypt.Dispatch
	dev      *nvm.Device
	nodeBase uint64
	leaves   uint64
	counts   []uint64 // counts[l] = number of nodes at level l (counts[0] = leaves)
	offsets  []uint64 // NVM offset of each interior level within the node region

	// volatile[l] and dirty[l] hold the overlay state of interior
	// level l (1..levels; slot 0 is unused — leaves live in the
	// counter region), indexed by node index within the level. Dense
	// per-level tables sized from counts[l] replaced the former
	// map[{level,index}] so the per-write path walk is array indexing
	// (DESIGN.md §12); dirtyCount tracks the number of true dirty
	// flags.
	volatile   []*dense.Table[*[NodeSize]byte]
	dirty      []*dense.Table[bool]
	dirtyCount int
	root       crypt.MAC
	rootSet    bool

	macOps  uint64
	updates uint64
}

// New creates a tree over `leaves` 64-byte leaf blocks, storing interior
// nodes at nodeBase in dev. leafImage must return the current image of a
// leaf; it is captured for verification and rebuild.
func New(eng crypt.Provider, dev *nvm.Device, nodeBase uint64, leaves uint64) *Tree {
	if leaves == 0 {
		panic("bmt: zero leaves")
	}
	t := &Tree{
		eng:      crypt.AsDispatch(eng),
		dev:      dev,
		nodeBase: nodeBase,
		leaves:   leaves,
	}
	t.counts = []uint64{leaves}
	n := leaves
	for n > 1 {
		n = (n + Arity - 1) / Arity
		t.counts = append(t.counts, n)
	}
	t.offsets = make([]uint64, len(t.counts))
	var off uint64
	for l := 1; l < len(t.counts); l++ {
		t.offsets[l] = off
		off += t.counts[l] * NodeSize
	}
	t.volatile = make([]*dense.Table[*[NodeSize]byte], len(t.counts))
	t.dirty = make([]*dense.Table[bool], len(t.counts))
	for l := 1; l < len(t.counts); l++ {
		t.volatile[l] = dense.NewTable[*[NodeSize]byte](t.counts[l])
		t.dirty[l] = dense.NewTable[bool](t.counts[l])
	}
	return t
}

// Levels returns the number of interior levels (excluding leaves,
// including the single top node whose MAC is the root register).
func (t *Tree) Levels() int { return len(t.counts) - 1 }

// Leaves returns the number of leaf slots.
func (t *Tree) Leaves() uint64 { return t.leaves }

// RegionBytes returns the NVM bytes needed for interior nodes.
func (t *Tree) RegionBytes() uint64 {
	var total uint64
	for l := 1; l < len(t.counts); l++ {
		total += t.counts[l] * NodeSize
	}
	return total
}

// MACOps returns the cumulative number of MAC computations performed,
// used by the timing model (160 cycles each).
func (t *Tree) MACOps() uint64 { return t.macOps }

// Updates returns the number of leaf updates applied.
func (t *Tree) Updates() uint64 { return t.updates }

// Root returns the current root MAC register value.
func (t *Tree) Root() crypt.MAC { return t.root }

// SetRoot forces the root register (recovery bootstrapping in tests).
func (t *Tree) SetRoot(m crypt.MAC) { t.root, t.rootSet = m, true }

// NodeNVMAddr returns the NVM address where the interior node at (level,
// index) is persisted; this is the address the MT metadata cache uses.
func (t *Tree) NodeNVMAddr(level int, index uint64) uint64 {
	if level < 1 || level >= len(t.counts) {
		panic(fmt.Sprintf("bmt: bad level %d", level))
	}
	return t.nodeBase + t.offsets[level] + index*NodeSize
}

// position tags a node for MAC domain separation.
func position(level int, index uint64) uint64 { return uint64(level)<<56 | index }

// node returns the live image of interior node (level, index), reading
// from NVM on first touch.
func (t *Tree) node(level int, index uint64) *[NodeSize]byte {
	slot := t.volatile[level].Ptr(index)
	if *slot == nil {
		line := t.dev.ReadLine(t.NodeNVMAddr(level, index))
		img := new([NodeSize]byte)
		*img = line
		*slot = img
	}
	return *slot
}

// markDirty flags (level, index) as newer in the overlay than in NVM.
func (t *Tree) markDirty(level int, index uint64) {
	p := t.dirty[level].Ptr(index)
	if !*p {
		*p = true
		t.dirtyCount++
	}
}

// clearDirty drops the dirty flag after a persist.
func (t *Tree) clearDirty(level int, index uint64) {
	if t.dirty[level].Get(index) {
		t.dirty[level].Set(index, false)
		t.dirtyCount--
	}
}

func isZero(b []byte) bool {
	for _, x := range b {
		if x != 0 {
			return false
		}
	}
	return true
}

// leafMAC computes the MAC of a leaf image.
func (t *Tree) leafMAC(index uint64, image *[64]byte) crypt.MAC {
	t.macOps++
	return t.eng.NodeMAC(image[:], position(0, index))
}

// nodeMAC computes the MAC of an interior node image.
func (t *Tree) nodeMAC(level int, index uint64, image *[NodeSize]byte) crypt.MAC {
	t.macOps++
	return t.eng.NodeMAC(image[:], position(level, index))
}

// UpdateLeaf applies a new leaf image at leaf `index`, propagating MAC
// updates. In Eager mode every level and the root are updated (levels+1
// MAC computations, 9 for a 16 GB tree — plus the data MAC this makes the
// paper's 10). In Lazy mode only the leaf's parent slot is updated and
// marked dirty; PropagateDirty or evictions push changes upward.
// It returns the number of MAC computations performed.
func (t *Tree) UpdateLeaf(index uint64, image *[64]byte, mode UpdateMode) int {
	if index >= t.leaves {
		panic(fmt.Sprintf("bmt: leaf %d out of range", index))
	}
	t.updates++
	before := t.macOps
	mac := t.leafMAC(index, image)
	child := index
	for level := 1; level < len(t.counts); level++ {
		idx := child / Arity
		slot := child % Arity
		img := t.node(level, idx)
		copy(img[slot*crypt.MACSize:], mac[:])
		t.markDirty(level, idx)
		if mode == Lazy && level == 1 {
			// Lazy: stop after the parent; upper levels refresh on
			// eviction. The root register is NOT updated.
			return int(t.macOps - before)
		}
		mac = t.nodeMAC(level, idx, img)
		child = idx
	}
	t.root, t.rootSet = mac, true
	return int(t.macOps - before)
}

// NodeUpdate is one interior-node image produced by PreparePathUpdate.
type NodeUpdate struct {
	Level int
	Index uint64
	Image [NodeSize]byte
}

// PreparePathUpdate computes — without installing — the interior-node
// images and root that UpdateLeaf(index, image, Eager) would produce.
// This is the Ma-SU's Figure 11 step 2: results go to the redo-log
// registers first; InstallPathUpdate is step 3.
func (t *Tree) PreparePathUpdate(index uint64, image *[64]byte) ([]NodeUpdate, crypt.MAC) {
	return t.AppendPathUpdate(make([]NodeUpdate, 0, len(t.counts)-1), index, image)
}

// AppendPathUpdate is PreparePathUpdate appending into a caller-owned
// slice (passed with length 0), so a steady-state writer reuses one
// backing array across writes instead of allocating per write. The
// returned slice is dst grown as needed.
func (t *Tree) AppendPathUpdate(dst []NodeUpdate, index uint64, image *[64]byte) ([]NodeUpdate, crypt.MAC) {
	if index >= t.leaves {
		panic(fmt.Sprintf("bmt: leaf %d out of range", index))
	}
	ups := dst
	mac := t.leafMAC(index, image)
	child := index
	for level := 1; level < len(t.counts); level++ {
		idx := child / Arity
		slot := child % Arity
		img := *t.node(level, idx) // copy
		copy(img[slot*crypt.MACSize:], mac[:])
		ups = append(ups, NodeUpdate{Level: level, Index: idx, Image: img})
		mac = t.nodeMAC(level, idx, &img)
		child = idx
	}
	return ups, mac
}

// InstallPathUpdate applies a prepared update: interior images are
// installed and, in Eager mode, the root register is set. In Lazy mode
// only the level-1 node is installed and the root is left alone.
func (t *Tree) InstallPathUpdate(ups []NodeUpdate, root crypt.MAC, mode UpdateMode) {
	t.updates++
	for i := range ups {
		up := &ups[i]
		if mode == Lazy && up.Level > 1 {
			break
		}
		slot := t.volatile[up.Level].Ptr(up.Index)
		if *slot == nil {
			*slot = new([NodeSize]byte)
		}
		**slot = up.Image
		t.markDirty(up.Level, up.Index)
	}
	if mode == Eager {
		t.root, t.rootSet = root, true
	}
}

// refreshNode recomputes the MAC of (level, index) and installs it in the
// parent (or root), recursing upward. Used by lazy-mode evictions.
func (t *Tree) refreshNode(level int, index uint64) {
	img := t.node(level, index)
	mac := t.nodeMAC(level, index, img)
	if level == len(t.counts)-1 {
		t.root, t.rootSet = mac, true
		return
	}
	parent := t.node(level+1, index/Arity)
	slot := index % Arity
	copy(parent[slot*crypt.MACSize:], mac[:])
	t.markDirty(level+1, index/Arity)
	t.refreshNode(level+1, index/Arity)
}

// PropagateDirty pushes all lazily-deferred updates to the root (used at
// clean shutdown or before crash-free verification in lazy mode), level
// by level in ascending index order. refreshNode only marks nodes at
// higher levels dirty, so iterating one level while it runs is safe.
func (t *Tree) PropagateDirty() {
	for l := 1; l < len(t.counts); l++ {
		t.dirty[l].Range(func(idx uint64, d *bool) bool {
			if *d {
				t.refreshNode(l, idx)
			}
			return true
		})
	}
}

// VerifyError describes an integrity-verification failure.
type VerifyError struct {
	Level int
	Index uint64
	Want  crypt.MAC
	Got   crypt.MAC
}

// Error implements the error interface.
func (e *VerifyError) Error() string {
	return fmt.Sprintf("bmt: integrity violation at level %d index %d: stored %x computed %x",
		e.Level, e.Index, e.Want, e.Got)
}

// VerifyLeaf checks a leaf image against the tree path, stopping early at
// the first trusted on-chip (dirty) node as hardware does at run time.
// It returns the number of MAC computations performed and an error
// describing the first mismatching level, if any.
func (t *Tree) VerifyLeaf(index uint64, image *[64]byte) (int, error) {
	return t.verify(index, image, true)
}

// VerifyLeafFull checks a leaf image along the entire path up to and
// including the root register, with no trusted-cache short-circuit. This
// is the recovery-time check: after a crash nothing on-chip is trusted
// except the root register itself.
func (t *Tree) VerifyLeafFull(index uint64, image *[64]byte) (int, error) {
	return t.verify(index, image, false)
}

func (t *Tree) verify(index uint64, image *[64]byte, trustCached bool) (int, error) {
	before := t.macOps
	mac := t.leafMAC(index, image)
	child := index
	level := 0
	for level = 1; level < len(t.counts); level++ {
		idx := child / Arity
		slot := child % Arity
		img := t.node(level, idx)
		var stored crypt.MAC
		copy(stored[:], img[slot*crypt.MACSize:])
		if stored != mac {
			// Zero-slot convention: untouched child must be all-zero.
			if isZero(stored[:]) && level == 1 && isZero(image[:]) {
				return int(t.macOps - before), nil
			}
			return int(t.macOps - before), &VerifyError{Level: level - 1, Index: child, Want: stored, Got: mac}
		}
		if trustCached && t.dirty[level].Get(idx) {
			// The node is live on-chip (metadata cache); once verified
			// against it the path is trusted without walking to the
			// root. This is what makes lazy updates sound at run time.
			return int(t.macOps - before), nil
		}
		mac = t.nodeMAC(level, idx, img)
		child = idx
	}
	if t.rootSet && mac != t.root {
		return int(t.macOps - before), &VerifyError{Level: level - 1, Index: 0, Want: t.root, Got: mac}
	}
	return int(t.macOps - before), nil
}

// PersistNode writes an interior node image to its NVM home (metadata
// cache eviction of a dirty block, or Anubis shadow replay).
func (t *Tree) PersistNode(level int, index uint64) {
	if level < 1 || level >= len(t.counts) {
		return
	}
	img := t.volatile[level].Get(index)
	if img == nil {
		return
	}
	t.dev.WriteLine(t.NodeNVMAddr(level, index), *img)
	t.clearDirty(level, index)
}

// PersistAll writes every live interior node to NVM (clean shutdown),
// level by level in ascending index order.
func (t *Tree) PersistAll() {
	for l := 1; l < len(t.counts); l++ {
		t.volatile[l].Range(func(idx uint64, img **[NodeSize]byte) bool {
			if *img != nil {
				t.PersistNode(l, idx)
			}
			return true
		})
	}
}

// DirtyNodes returns the (level, index) pairs of interior nodes whose
// live image is newer than their NVM copy, for the Anubis shadow tracker.
func (t *Tree) DirtyNodes() [][2]uint64 {
	out := make([][2]uint64, 0, t.dirtyCount)
	for l := 1; l < len(t.counts); l++ {
		t.dirty[l].Range(func(idx uint64, d *bool) bool {
			if *d {
				out = append(out, [2]uint64{uint64(l), idx})
			}
			return true
		})
	}
	return out
}

// NodeImage returns a copy of the live image of an interior node.
func (t *Tree) NodeImage(level int, index uint64) [NodeSize]byte {
	return *t.node(level, index)
}

// RestoreNode installs an interior node image directly (Anubis shadow
// replay during recovery).
func (t *Tree) RestoreNode(level int, index uint64, img [NodeSize]byte) {
	slot := t.volatile[level].Ptr(index)
	if *slot == nil {
		*slot = new([NodeSize]byte)
	}
	**slot = img
	t.markDirty(level, index)
}

// DropVolatile models power failure: the overlay (metadata cache content)
// is lost; NVM copies and the persistent root register survive.
func (t *Tree) DropVolatile() {
	for l := 1; l < len(t.counts); l++ {
		t.volatile[l].Reset()
		t.dirty[l].Reset()
	}
	t.dirtyCount = 0
}

// RebuildFromLeaves recomputes the tree bottom-up from the given leaf
// images (index -> image) — the Osiris slow-recovery path after counters
// have been re-identified. It returns the recomputed root without
// modifying the root register; the caller compares it against Root().
func (t *Tree) RebuildFromLeaves(leafImages map[uint64][64]byte) crypt.MAC {
	// Recompute affected paths; untouched subtrees stay under the
	// zero-slot convention.
	type pending struct {
		level int
		index uint64
	}
	touched := make(map[pending]bool)
	for idx, img := range leafImages {
		img := img
		mac := t.leafMAC(idx, &img)
		parent := t.node(1, idx/Arity)
		copy(parent[(idx%Arity)*crypt.MACSize:], mac[:])
		touched[pending{1, idx / Arity}] = true
	}
	for level := 1; level < len(t.counts)-1; level++ {
		next := make(map[pending]bool)
		for p := range touched {
			if p.level != level {
				next[p] = true
				continue
			}
			img := t.node(level, p.index)
			mac := t.nodeMAC(level, p.index, img)
			parent := t.node(level+1, p.index/Arity)
			copy(parent[(p.index%Arity)*crypt.MACSize:], mac[:])
			next[pending{level + 1, p.index / Arity}] = true
		}
		touched = next
	}
	top := t.node(len(t.counts)-1, 0)
	return t.nodeMAC(len(t.counts)-1, 0, top)
}
